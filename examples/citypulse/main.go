// Citypulse: the smart-city / emergency-response scenario the paper's
// introduction motivates. A day of network traffic is ingested; the
// operator then looks for drop-call hotspots — cells whose drop rate is
// anomalously high — and renders an ASCII heatmap of traffic intensity
// over the ~6000 km^2 service region (the SPATE-UI, terminal edition).
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"time"

	"spate"
)

func main() {
	dir, err := os.MkdirTemp("", "spate-citypulse-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := spate.NewCluster(dir, spate.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	g := spate.NewGenerator(spate.GeneratorConfig(0.01))
	eng, err := spate.Open(fs, g.CellTable(), spate.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// One full day.
	start := g.Config().Start
	first := spate.EpochOf(start)
	fmt.Println("ingesting one day of telco traffic...")
	for e := first; e < first+48; e++ {
		s := spate.NewSnapshot(e)
		s.Add(g.CDRTable(e))
		s.Add(g.NMSTable(e))
		if _, err := eng.Ingest(s); err != nil {
			log.Fatal(err)
		}
	}
	eng.FinishIngest()

	// Morning rush hour over the whole region.
	window := spate.NewTimeRange(start.Add(8*time.Hour), start.Add(11*time.Hour))
	res, err := eng.Explore(spate.Query{Window: window})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n08:00-11:00: %d records across %d active cells\n\n", res.Summary.Rows, len(res.Cells))

	// ASCII heatmap: bucket cell activity onto a 40x20 grid.
	const gw, gh = 40, 20
	grid := make([][]float64, gh)
	for i := range grid {
		grid[i] = make([]float64, gw)
	}
	region := g.Config().Region
	var maxV float64
	for _, cs := range res.Cells {
		gx := int((cs.Loc.X - region.MinX) / (region.MaxX - region.MinX) * gw)
		gy := int((cs.Loc.Y - region.MinY) / (region.MaxY - region.MinY) * gh)
		if gx >= gw {
			gx = gw - 1
		}
		if gy >= gh {
			gy = gh - 1
		}
		grid[gy][gx] += float64(cs.Rows)
		if grid[gy][gx] > maxV {
			maxV = grid[gy][gx]
		}
	}
	shades := []rune(" .:-=+*#%@")
	fmt.Println("traffic heatmap (each char ~ 2x3.75 km):")
	for y := gh - 1; y >= 0; y-- {
		for x := 0; x < gw; x++ {
			v := 0.0
			if maxV > 0 {
				v = math.Sqrt(grid[y][x] / maxV)
			}
			idx := int(v * float64(len(shades)-1))
			fmt.Print(string(shades[idx]))
		}
		fmt.Println()
	}

	// Drop-call hotspots: per-cell drop counters from the highlights cube.
	type hotspot struct {
		cell  int64
		loc   spate.Point
		drops float64
		rows  int64
	}
	dropAttr := spate.AttrRef{Table: "NMS", Attr: "drop_calls"}
	var hs []hotspot
	for _, cs := range res.Cells {
		if st, ok := cs.Attr[dropAttr]; ok && st.Sum > 0 {
			hs = append(hs, hotspot{cs.CellID, cs.Loc, st.Sum, cs.Rows})
		}
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].drops > hs[j].drops })
	fmt.Println("\ntop drop-call hotspots (morning window):")
	for i, h := range hs {
		if i >= 5 {
			break
		}
		fmt.Printf("  cell %d at (%.1f, %.1f) km: %.0f dropped calls over %d records\n",
			h.cell, h.loc.X, h.loc.Y, h.drops, h.rows)
	}

	// Zoom in on the worst hotspot — a narrowed query served from cache
	// context or fresh aggregates.
	if len(hs) > 0 {
		h := hs[0]
		box := spate.NewRect(h.loc.X-3, h.loc.Y-3, h.loc.X+3, h.loc.Y+3)
		zoom, err := eng.Explore(spate.Query{Window: window, Box: box})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nzoom on hotspot cell %d (6x6 km): %d records, %d cells\n",
			h.cell, zoom.Summary.Rows, len(zoom.Cells))
		for _, hl := range zoom.Highlights {
			if hl.Value != "" {
				fmt.Printf("  rare event: %s=%q x%d\n", hl.Attr, hl.Value, hl.Count)
			}
		}
	}
}
