// Sqltour: SPATE-SQL (paper §VI-B) walk-through. Six hours of traffic are
// ingested, then a sequence of declarative statements in the style of the
// paper's tasks T1–T4 runs directly against the compressed SPATE store,
// with the executor pushing timestamp predicates down into the temporal
// index.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"spate"
)

func main() {
	dir, err := os.MkdirTemp("", "spate-sqltour-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := spate.NewCluster(dir, spate.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	g := spate.NewGenerator(spate.GeneratorConfig(0.005))
	eng, err := spate.Open(fs, g.CellTable(), spate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	start := g.Config().Start.Add(8 * time.Hour)
	first := spate.EpochOf(start)
	for e := first; e < first+12; e++ {
		s := spate.NewSnapshot(e)
		s.Add(g.CDRTable(e))
		s.Add(g.NMSTable(e))
		if _, err := eng.Ingest(s); err != nil {
			log.Fatal(err)
		}
	}

	sql := spate.NewSQL(eng)
	ts := first.Start().Format("200601021504")
	statements := []struct {
		label string
		query string
	}{
		{"T1-style equality (one snapshot's flux)",
			fmt.Sprintf(`SELECT COUNT(*) AS calls, SUM(upflux) AS up, SUM(downflux) AS down
			             FROM CDR WHERE ts = '%s'`, ts[:12])},
		{"T2-style range (three hours)",
			fmt.Sprintf(`SELECT COUNT(*) AS calls FROM CDR
			             WHERE ts >= '%s' AND ts < '%s'`,
				first.Start().Format("20060102150405"),
				first.Start().Add(3*time.Hour).Format("20060102150405"))},
		{"T3-style aggregate (drop counters per cell, top 5)",
			`SELECT cell_id, SUM(drop_calls) AS drops, SUM(call_attempts) AS att
			 FROM NMS GROUP BY cell_id HAVING SUM(drop_calls) > 0
			 ORDER BY drops DESC LIMIT 5`},
		{"T4-style self-join (movers between cell towers, limit 5)",
			`SELECT DISTINCT a.caller FROM CDR a JOIN CDR b ON a.caller = b.caller
			 WHERE a.cell_id != b.cell_id ORDER BY a.caller LIMIT 5`},
		{"nested IN subquery (calls on high-drop cells)",
			`SELECT call_type, COUNT(*) AS n FROM CDR
			 WHERE cell_id IN (SELECT cell_id FROM NMS WHERE drop_calls >= 2)
			 GROUP BY call_type ORDER BY n DESC`},
		{"LIKE and BETWEEN (long voice calls of one number prefix)",
			`SELECT COUNT(*) AS n FROM CDR
			 WHERE caller LIKE '3570000%' AND duration BETWEEN 60 AND 600`},
	}
	for _, st := range statements {
		fmt.Printf("\n-- %s\n%s\n", st.label, reindent(st.query))
		t0 := time.Now()
		rs, err := sql.Query(st.query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", strings.Join(rs.Cols, " | "))
		for _, row := range rs.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.Format()
			}
			fmt.Println(strings.Join(cells, " | "))
		}
		fmt.Printf("(%d rows, %v)\n", len(rs.Rows), time.Since(t0).Round(time.Millisecond))
	}
}

func reindent(q string) string {
	lines := strings.Split(q, "\n")
	for i, l := range lines {
		lines[i] = "   " + strings.TrimSpace(l)
	}
	return strings.Join(lines, "\n")
}
