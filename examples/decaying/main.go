// Decaying: the retention story of the paper's §V-C. Three days of
// traffic are ingested under an aggressive decay policy (raw data lives
// 12 hours; epoch index entries collapse after a day), demonstrating that
// storage stays bounded while aggregate exploration over the decayed past
// keeps answering from day-level highlight summaries — "the highest
// possible data exploration resolution ... over extremely long time
// windows without consuming enormous amounts of storage".
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"spate"
)

func main() {
	dir, err := os.MkdirTemp("", "spate-decaying-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := spate.NewCluster(dir, spate.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	g := spate.NewGenerator(spate.GeneratorConfig(0.005))
	eng, err := spate.Open(fs, g.CellTable(), spate.Options{
		Policy: spate.DecayPolicy{
			KeepRaw:        12 * time.Hour,
			KeepEpochNodes: 24 * time.Hour,
		},
		Fungus: spate.EvictOldestIndividuals{},
	})
	if err != nil {
		log.Fatal(err)
	}

	start := g.Config().Start
	first := spate.EpochOf(start)
	fmt.Println("day  snapshots  raw-ingested  held-compressed  decayed-leaves")
	var raw int64
	for day := 0; day < 3; day++ {
		for i := 0; i < 48; i++ {
			e := first + spate.Epoch(day*48+i)
			s := spate.NewSnapshot(e)
			s.Add(g.CDRTable(e))
			s.Add(g.NMSTable(e))
			rep, err := eng.Ingest(s)
			if err != nil {
				log.Fatal(err)
			}
			raw += rep.RawBytes
		}
		st := eng.Tree().Stats()
		fmt.Printf("%3d  %9d  %10.1fMB  %13.1fMB  %14d\n",
			day+1, st.Leaves, mb(raw), mb(st.DataBytes), st.DecayedLeaves)
	}
	eng.FinishIngest()

	// Storage is bounded by the 12h horizon, not trace length.
	st := eng.Tree().Stats()
	fmt.Printf("\nafter 3 days: %.1fMB compressed held (of %.1fMB ingested), %d/%d leaves decayed\n",
		mb(st.DataBytes), mb(raw), st.DecayedLeaves, st.Leaves)

	// Aggregates over day 1 (fully decayed) still answer via the day
	// summary — the progressive loss of detail at work.
	day1 := spate.NewTimeRange(start, start.AddDate(0, 0, 1))
	res, err := eng.Explore(spate.Query{Window: day1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexploring decayed day 1: %d rows from %v-level summaries",
		res.Summary.Rows, res.CoveringLevel)
	fmt.Printf(" (%d decayed snapshots)\n", res.DecayedLeaves)
	for _, h := range res.Highlights {
		if h.Value != "" {
			fmt.Printf("  retained highlight: %s=%q x%d\n", h.Attr, h.Value, h.Count)
		}
	}

	// Exact rows are gone for day 1 but present for the recent window.
	old, err := eng.Explore(spate.Query{Window: day1, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		log.Fatal(err)
	}
	recent := spate.NewTimeRange(start.AddDate(0, 0, 3).Add(-6*time.Hour), start.AddDate(0, 0, 3))
	fresh, err := eng.Explore(spate.Query{Window: recent, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		log.Fatal(err)
	}
	oldRows, freshRows := 0, 0
	if t := old.Rows["CDR"]; t != nil {
		oldRows = t.Len()
	}
	if t := fresh.Rows["CDR"]; t != nil {
		freshRows = t.Len()
	}
	fmt.Printf("\nexact rows: decayed day 1 -> %d records; last 6 hours -> %d records\n",
		oldRows, freshRows)
	fmt.Println("(full resolution for recent data, summaries forever — the decaying trade)")
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
