// Privacyshare: privacy-aware data sharing for smart-city consumers
// (paper task T5 and §IX "Privacy"). A municipality requests the morning's
// call records; the telco releases a k-anonymized version in which caller
// number, cell and duration — the quasi-identifiers — are generalized so
// every released combination matches at least k subscriber records.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"spate"
)

func main() {
	dir, err := os.MkdirTemp("", "spate-privacy-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := spate.NewCluster(dir, spate.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	g := spate.NewGenerator(spate.GeneratorConfig(0.01))
	eng, err := spate.Open(fs, g.CellTable(), spate.Options{})
	if err != nil {
		log.Fatal(err)
	}

	start := g.Config().Start
	first := spate.EpochOf(start.Add(8 * time.Hour))
	for e := first; e < first+6; e++ { // 08:00 - 11:00
		s := spate.NewSnapshot(e)
		s.Add(g.CDRTable(e))
		if _, err := eng.Ingest(s); err != nil {
			log.Fatal(err)
		}
	}

	// Pull the window's raw CDR records.
	res, err := eng.Explore(spate.Query{
		Window:    spate.NewTimeRange(start.Add(8*time.Hour), start.Add(11*time.Hour)),
		ExactRows: true,
		Tables:    []string{"CDR"},
	})
	if err != nil {
		log.Fatal(err)
	}
	cdr := res.Rows["CDR"]
	fmt.Printf("raw window: %d CDR records\n", cdr.Len())
	fmt.Println("\nbefore (sensitive):")
	printSample(cdr, 3)

	quasi := []string{"caller", "cell_id", "duration"}
	for _, k := range []int{5, 25} {
		anon, rep, err := spate.Anonymize(cdr, spate.PrivacyOptions{
			K:                k,
			QuasiIdentifiers: quasi,
		})
		if err != nil {
			log.Fatal(err)
		}
		minClass, err := spate.VerifyK(anon, quasi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nk=%d: released %d rows in %d partitions (suppressed %d, info loss %.0f%%)\n",
			k, rep.ReleasedRows, rep.Partitions, rep.SuppressedRows, 100*rep.GeneralizationLoss)
		fmt.Printf("verified: smallest equivalence class = %d (>= k)\n", minClass)
		if k == 5 {
			fmt.Println("after (shareable):")
			printSample(anon, 3)
		}
	}
}

func printSample(t *spate.Table, n int) {
	cols := []string{"ts", "caller", "cell_id", "call_type", "duration"}
	for i, row := range t.Rows {
		if i >= n {
			break
		}
		fmt.Print("  ")
		for _, c := range cols {
			fmt.Printf("%s=%s ", c, row.Get(t.Schema, c).Format())
		}
		fmt.Println()
	}
}
