// Trafficmap: the "automated car traffic mapping system" the paper names
// as future work (§X). Cellular activity is a well-known traffic proxy
// (Reades et al., the paper's [3]): commuters' phones generate records in
// the cells along roads they move through. This example ingests a day,
// derives per-cell activity deltas between morning and night from the
// highlights cube, and reports the corridors with the strongest commuter
// signature plus subscriber flows detected via SPATE-SQL self-joins.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"time"

	"spate"
)

func main() {
	dir, err := os.MkdirTemp("", "spate-traffic-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := spate.NewCluster(dir, spate.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	g := spate.NewGenerator(spate.GeneratorConfig(0.01))
	eng, err := spate.Open(fs, g.CellTable(), spate.Options{CellIndex: "rtree"})
	if err != nil {
		log.Fatal(err)
	}

	start := g.Config().Start
	first := spate.EpochOf(start)
	fmt.Println("ingesting one day of traffic...")
	for e := first; e < first+48; e++ {
		s := spate.NewSnapshot(e)
		s.Add(g.CDRTable(e))
		s.Add(g.NMSTable(e))
		if _, err := eng.Ingest(s); err != nil {
			log.Fatal(err)
		}
	}
	eng.FinishIngest()

	// Activity per cell in the rush window vs the quiet window.
	rush, err := eng.Explore(spate.Query{
		Window: spate.NewTimeRange(start.Add(7*time.Hour), start.Add(10*time.Hour)),
	})
	if err != nil {
		log.Fatal(err)
	}
	quiet, err := eng.Explore(spate.Query{
		Window: spate.NewTimeRange(start.Add(1*time.Hour), start.Add(4*time.Hour)),
	})
	if err != nil {
		log.Fatal(err)
	}
	quietRows := map[int64]int64{}
	for _, cs := range quiet.Cells {
		quietRows[cs.CellID] = cs.Rows
	}
	type corridor struct {
		cell  int64
		loc   spate.Point
		ratio float64
		rush  int64
	}
	var cs []corridor
	for _, c := range rush.Cells {
		q := quietRows[c.CellID]
		if q == 0 {
			q = 1
		}
		if c.Rows >= 5 {
			cs = append(cs, corridor{c.CellID, c.Loc, float64(c.Rows) / float64(q), c.Rows})
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].ratio > cs[j].ratio })
	fmt.Printf("\ntop commuter corridors (rush 07-10h vs night 01-04h, %d candidate cells):\n", len(cs))
	for i, c := range cs {
		if i >= 8 {
			break
		}
		fmt.Printf("  cell %d at (%.1f, %.1f) km: %.1fx activity (%d rush records)\n",
			c.cell, c.loc.X, c.loc.Y, c.ratio, c.rush)
	}

	// Subscriber flows: movers between cell towers during the rush window,
	// via the T4-style self-join in SPATE-SQL.
	sql := spate.NewSQL(eng)
	from := start.Format("20060102150405")
	to := start.Add(24 * time.Hour).Format("20060102150405")
	rs, err := sql.Query(fmt.Sprintf(`
		SELECT a.cell_id, b.cell_id, COUNT(*) AS flows
		FROM CDR a JOIN CDR b ON a.caller = b.caller
		WHERE a.cell_id != b.cell_id
		  AND a.ts >= '%s' AND a.ts < '%s'
		  AND b.ts >= '%s' AND b.ts < '%s'
		  AND a.ts < b.ts
		GROUP BY a.cell_id, b.cell_id
		ORDER BY flows DESC LIMIT 5`, from, to, from, to))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstrongest origin->destination flows (whole day):")
	for _, row := range rs.Rows {
		a, b := row[0].Int64(), row[1].Int64()
		la, _ := eng.CellLocation(a)
		lb, _ := eng.CellLocation(b)
		dist := math.Hypot(la.X-lb.X, la.Y-lb.Y)
		fmt.Printf("  %d -> %d: %s trips (%.1f km apart)\n", a, b, row[2].Format(), dist)
	}
	fmt.Println("\n(cell-to-cell flow volumes are the raw material of an automated")
	fmt.Println(" road traffic map — the §X future-work scenario)")
}
