// Quickstart: synthesize a few hours of telco traffic, ingest it into
// SPATE (compression + indexing), and run a spatio-temporal exploration
// query Q(a, b, w) — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"spate"
)

func main() {
	// A scratch replicated file system (HDFS stand-in: 64MB blocks, 3x
	// replication over 4 datanodes).
	dir, err := os.MkdirTemp("", "spate-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := spate.NewCluster(dir, spate.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// A paper-shaped synthetic trace at 1% of the real volume.
	g := spate.NewGenerator(spate.GeneratorConfig(0.01))
	eng, err := spate.Open(fs, g.CellTable(), spate.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Ingest six hours of snapshots (every 30 minutes, as they "arrive").
	start := g.Config().Start
	first := spate.EpochOf(start)
	for e := first; e < first+12; e++ {
		s := spate.NewSnapshot(e)
		s.Add(g.CDRTable(e))
		s.Add(g.NMSTable(e))
		rep, err := eng.Ingest(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %s: %5d rows, %6.1fKB -> %5.1fKB (rc=%.1f) in %v\n",
			e, rep.Rows, kb(rep.RawBytes), kb(rep.CompBytes),
			float64(rep.RawBytes)/float64(rep.CompBytes), rep.Total.Round(time.Millisecond))
	}

	// Explore: all attributes (a=*), a 30x30km box (b), the first 3 hours (w).
	res, err := eng.Explore(spate.Query{
		Box:    spate.NewRect(20, 20, 50, 50),
		Window: spate.NewTimeRange(start, start.Add(3*time.Hour)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexplored %d rows across %d cells (covering level: %v)\n",
		res.Summary.Rows, len(res.Cells), res.CoveringLevel)
	for _, h := range res.Highlights {
		if h.Value != "" {
			fmt.Printf("highlight: rare %s = %q (%.2f%%, %d occurrences)\n",
				h.Attr, h.Value, 100*h.Frequency, h.Count)
		}
	}

	sp := eng.Space()
	fmt.Printf("\nstorage: %.1fKB raw -> %.1fKB compressed + %.1fKB index (O1 = %.1fx)\n",
		kb(sp.RawBytes), kb(sp.CompBytes), kb(sp.SummaryBytes), sp.O1)
}

func kb(b int64) float64 { return float64(b) / 1024 }
