// Disaster: the "emergency recovery system after natural disasters" the
// paper names as future work (§X). At 12:00 an earthquake silences every
// cell within 15 km of the epicenter and takes down one DFS datanode.
// The example shows both halves of the recovery story:
//
//   - data layer: the replicated file system detects under-replicated
//     blocks and re-replicates them from surviving copies, so exploration
//     keeps working through the infrastructure loss;
//   - analysis layer: comparing per-cell activity before and after the
//     event through SPATE's highlights cube pinpoints the silent cells —
//     the outage map an emergency response team needs.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"time"

	"spate"
)

const (
	quakeHour    = 12
	epiX, epiY   = 24.0, 30.0 // epicenter (inside the main urban cluster)
	blastRadius  = 15.0       // km
	silenceFrac  = 1.0        // all traffic lost inside the radius
	ingestedDays = 1
)

func main() {
	dir, err := os.MkdirTemp("", "spate-disaster-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := spate.NewCluster(dir, spate.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	g := spate.NewGenerator(spate.GeneratorConfig(0.01))
	eng, err := spate.Open(fs, g.CellTable(), spate.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Which cells are inside the blast radius?
	dead := map[int64]bool{}
	for _, c := range g.Cells() {
		if math.Hypot(c.Pt.X-epiX, c.Pt.Y-epiY) <= blastRadius {
			dead[c.ID] = true
		}
	}
	fmt.Printf("scenario: earthquake at 12:00, %d of %d cells inside %g km of (%g, %g)\n",
		len(dead), len(g.Cells()), blastRadius, epiX, epiY)

	start := g.Config().Start
	first := spate.EpochOf(start)
	quake := first + spate.Epoch(quakeHour*2)
	for e := first; e < first+spate.Epoch(ingestedDays*48); e++ {
		s := spate.NewSnapshot(e)
		cdr := g.CDRTable(e)
		nms := g.NMSTable(e)
		if e >= quake {
			cdr = dropDeadCells(cdr, dead)
			nms = dropDeadCells(nms, dead)
		}
		s.Add(cdr)
		s.Add(nms)
		if _, err := eng.Ingest(s); err != nil {
			log.Fatal(err)
		}
		// The quake also takes down a datanode.
		if e == quake {
			if err := fs.KillNode(1); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n12:00 — datanode 1 lost; %d blocks under-replicated\n", fs.UnderReplicated())
		}
	}
	eng.FinishIngest()

	// Data-layer recovery: re-replicate from surviving copies.
	created, err := fs.Rereplicate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-replication created %d replicas; %d blocks still under-replicated\n",
		created, fs.UnderReplicated())

	// Analysis-layer recovery: find the silent cells by comparing activity
	// across the event (both windows answered from the compressed store,
	// which survived the node loss).
	before, err := eng.Explore(spate.Query{
		Window: spate.NewTimeRange(start.Add(8*time.Hour), start.Add(12*time.Hour)),
	})
	if err != nil {
		log.Fatal(err)
	}
	after, err := eng.Explore(spate.Query{
		Window: spate.NewTimeRange(start.Add(12*time.Hour), start.Add(16*time.Hour)),
	})
	if err != nil {
		log.Fatal(err)
	}
	afterRows := map[int64]int64{}
	for _, cs := range after.Cells {
		afterRows[cs.CellID] = cs.Rows
	}
	type outage struct {
		cell   int64
		loc    spate.Point
		before int64
	}
	var silent []outage
	for _, cs := range before.Cells {
		if cs.Rows >= 3 && afterRows[cs.CellID] == 0 {
			silent = append(silent, outage{cs.CellID, cs.Loc, cs.Rows})
		}
	}
	sort.Slice(silent, func(i, j int) bool { return silent[i].before > silent[j].before })

	tp, fp := 0, 0
	for _, o := range silent {
		if dead[o.cell] {
			tp++
		} else {
			fp++
		}
	}
	fmt.Printf("\noutage map: %d silent cells detected (%d true, %d false alarms)\n",
		len(silent), tp, fp)
	for i, o := range silent {
		if i >= 6 {
			break
		}
		d := math.Hypot(o.loc.X-epiX, o.loc.Y-epiY)
		fmt.Printf("  cell %d at (%.1f, %.1f) km — %.1f km from epicenter, %d records before, 0 after\n",
			o.cell, o.loc.X, o.loc.Y, d, o.before)
	}
	if len(silent) > 0 {
		// Estimate the affected area's centroid as a deployment hint.
		var cx, cy float64
		for _, o := range silent {
			cx += o.loc.X
			cy += o.loc.Y
		}
		cx /= float64(len(silent))
		cy /= float64(len(silent))
		fmt.Printf("\nestimated impact centroid: (%.1f, %.1f) km — true epicenter (%g, %g)\n",
			cx, cy, epiX, epiY)
	}
}

// dropDeadCells removes the records of silenced cells from a table.
func dropDeadCells(t *spate.Table, dead map[int64]bool) *spate.Table {
	idx := t.Schema.FieldIndex("cell_id")
	out := &spate.Table{Schema: t.Schema}
	for _, r := range t.Rows {
		if !dead[r[idx].Int64()] {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}
