package spate_test

import (
	"fmt"
	"log"
	"os"
	"time"

	"spate"
)

// Example ingests two snapshots and runs one exploration query — the
// godoc-rendered quick start.
func Example() {
	dir, err := os.MkdirTemp("", "spate-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fs, err := spate.NewCluster(dir, spate.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := spate.GeneratorConfig(0.002)
	cfg.Antennas = 10
	cfg.Users = 50
	cfg.CDRPerEpoch = 30
	cfg.NMSReportsPerCell = 0.5
	g := spate.NewGenerator(cfg)

	eng, err := spate.Open(fs, g.CellTable(), spate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	first := spate.EpochOf(g.Config().Start)
	for e := first; e < first+2; e++ {
		s := spate.NewSnapshot(e)
		s.Add(g.CDRTable(e))
		s.Add(g.NMSTable(e))
		if _, err := eng.Ingest(s); err != nil {
			log.Fatal(err)
		}
	}
	res, err := eng.Explore(spate.Query{
		Window: spate.NewTimeRange(g.Config().Start, g.Config().Start.Add(time.Hour)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary.Rows > 0, res.CoveringLevel)
	// Output: true day
}

// ExampleNewSQL runs a declarative statement against an ingested store.
func ExampleNewSQL() {
	dir, err := os.MkdirTemp("", "spate-examplesql-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := spate.NewCluster(dir, spate.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	cfg := spate.GeneratorConfig(0.002)
	cfg.Antennas = 10
	cfg.Users = 50
	cfg.CDRPerEpoch = 30
	cfg.NMSReportsPerCell = 0.5
	g := spate.NewGenerator(cfg)
	eng, err := spate.Open(fs, g.CellTable(), spate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := spate.NewSnapshot(spate.EpochOf(g.Config().Start))
	s.Add(g.CDRTable(s.Epoch))
	if _, err := eng.Ingest(s); err != nil {
		log.Fatal(err)
	}
	rs, err := spate.NewSQL(eng).Query(`SELECT COUNT(*) AS n FROM CDR WHERE duration >= 0`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rs.Cols[0], len(rs.Rows))
	// Output: n 1
}
