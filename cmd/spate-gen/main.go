// Command spate-gen synthesizes a telco trace with the statistical shape
// of the paper's 5 GB dataset and writes it as a directory of 30-minute
// snapshot files (see internal/tracedir for the layout).
//
// Usage:
//
//	spate-gen -out /tmp/trace -scale 0.02 -days 2 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"

	"spate/internal/gen"
	"spate/internal/tracedir"
)

func main() {
	var (
		out   = flag.String("out", "", "output directory (required)")
		scale = flag.Float64("scale", 0.02, "trace scale in (0,1]; 1 ~ the paper's 5GB week")
		days  = flag.Int("days", 2, "trace length in days")
		seed  = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "spate-gen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := gen.DefaultConfig(*scale)
	cfg.Seed = *seed
	g := gen.New(cfg)
	n, err := tracedir.Write(*out, g, *days)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spate-gen:", err)
		os.Exit(1)
	}
	fmt.Printf("spate-gen: wrote %d snapshots (%d cells, %d users, start %s) to %s\n",
		n, len(g.Cells()), cfg.Users, cfg.Start.Format("2006-01-02"), *out)
}
