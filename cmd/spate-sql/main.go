// Command spate-sql is the SPATE-SQL declarative exploration interface
// (paper §VI-B, the Apache Hue role): a small REPL executing SELECT
// statements directly against the compressed SPATE representation of a
// trace. The trace is loaded (and compressed into an in-memory-rooted
// store) at startup.
//
// Usage:
//
//	spate-sql -trace /tmp/trace
//	spate-sql -scale 0.01 -days 1         # synthesize on the fly
//	echo "SELECT COUNT(*) FROM CDR" | spate-sql -scale 0.005 -days 1
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/snapshot"
	"spate/internal/sqlengine"
	"spate/internal/tasks"
	"spate/internal/telco"
	"spate/internal/tracedir"
)

func main() {
	var (
		trace   = flag.String("trace", "", "trace directory from spate-gen (optional)")
		scale   = flag.Float64("scale", 0.005, "synthesized trace scale when -trace is absent")
		days    = flag.Int("days", 1, "synthesized trace length in days")
		store   = flag.String("store", "", "store directory (default: a temp dir)")
		profile = flag.Bool("profile", false, "print the storage cost profile after each query")
		workers = flag.Int("scan-workers", 0,
			"goroutines per query for parallel leaf scans (0 = GOMAXPROCS; 1 = sequential)")
	)
	flag.Parse()

	dir := *store
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "spate-sql-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
	}
	fs, err := dfs.NewCluster(dir, dfs.Config{})
	if err != nil {
		fatal(err)
	}

	opts := core.Options{ScanWorkers: *workers}
	var eng *core.Engine
	start := time.Now()
	if *trace != "" {
		eng, err = loadTrace(fs, *trace, opts)
	} else {
		eng, err = synthesize(fs, *scale, *days, opts)
	}
	if err != nil {
		fatal(err)
	}
	cat := tasks.Catalog(tasks.Spate{E: eng})
	sql := sqlengine.NewEngine(cat)
	st := eng.Tree().Stats()
	fmt.Printf("spate-sql: %d snapshots loaded in %v; tables: CDR, NMS, CELL\n",
		st.Leaves, time.Since(start).Round(time.Millisecond))
	fmt.Println(`type SQL statements terminated by ';' — e.g.
  SELECT cell_id, SUM(drop_calls) FROM NMS GROUP BY cell_id ORDER BY cell_id LIMIT 5;
\q quits.`)

	repl(sql, cat, *profile)
}

func loadTrace(fs *dfs.Cluster, trace string, opts core.Options) (*core.Engine, error) {
	cells, err := tracedir.ReadCells(trace)
	if err != nil {
		return nil, err
	}
	eng, err := core.Open(fs, cells, opts)
	if err != nil {
		return nil, err
	}
	epochs, err := tracedir.Epochs(trace)
	if err != nil {
		return nil, err
	}
	for _, e := range epochs {
		sn, err := tracedir.ReadSnapshot(trace, e)
		if err != nil {
			return nil, err
		}
		if _, err := eng.Ingest(sn); err != nil {
			return nil, err
		}
	}
	eng.FinishIngest()
	return eng, nil
}

func synthesize(fs *dfs.Cluster, scale float64, days int, opts core.Options) (*core.Engine, error) {
	g := gen.New(gen.DefaultConfig(scale))
	eng, err := core.Open(fs, g.CellTable(), opts)
	if err != nil {
		return nil, err
	}
	e0 := telco.EpochOf(g.Config().Start)
	for i := 0; i < days*telco.EpochsPerDay; i++ {
		e := e0 + telco.Epoch(i)
		sn := snapshot.New(e)
		sn.Add(g.CDRTable(e))
		sn.Add(g.NMSTable(e))
		if _, err := eng.Ingest(sn); err != nil {
			return nil, err
		}
	}
	eng.FinishIngest()
	return eng, nil
}

func repl(sql *sqlengine.Engine, cat sqlengine.Catalog, profile bool) {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var stmt strings.Builder
	prompt := "spate-sql> "
	fmt.Print(prompt)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == `\q` {
			return
		}
		stmt.WriteString(line)
		stmt.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print("      ...> ")
			continue
		}
		run(sql, cat, profile, stmt.String())
		stmt.Reset()
		fmt.Print(prompt)
	}
}

func run(sql *sqlengine.Engine, cat sqlengine.Catalog, profile bool, stmt string) {
	stmt = strings.TrimSpace(stmt)
	stmt = strings.TrimSuffix(stmt, ";")
	if stmt == "" {
		return
	}
	ctx := context.Background()
	var render func() []string
	if profile {
		if pp, ok := cat.(sqlengine.ExplainProfiler); ok {
			ctx, render = pp.WithProfile(ctx)
		}
	}
	start := time.Now()
	rs, err := sql.QueryContext(ctx, stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(rs)
	fmt.Printf("(%d rows in %v)\n", len(rs.Rows), time.Since(start).Round(time.Millisecond))
	if render != nil {
		for _, l := range render() {
			fmt.Println("  -- " + l)
		}
	}
}

func printResult(rs *sqlengine.ResultSet) {
	widths := make([]int, len(rs.Cols))
	for i, c := range rs.Cols {
		widths[i] = len(c)
	}
	const maxRows = 50
	shown := rs.Rows
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	cells := make([][]string, len(shown))
	for r, row := range shown {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = v.Format()
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	line := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Printf("%-*s", widths[i], v)
		}
		fmt.Println()
	}
	line(rs.Cols)
	seps := make([]string, len(rs.Cols))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range cells {
		line(r)
	}
	if len(rs.Rows) > maxRows {
		fmt.Printf("... %d more rows\n", len(rs.Rows)-maxRows)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spate-sql:", err)
	os.Exit(1)
}
