// Command spate-bench regenerates the tables and figures of the SPATE
// paper's evaluation on a synthetic paper-shaped trace.
//
// Usage:
//
//	spate-bench -exp list
//	spate-bench -exp all     -scale 0.02 -days 2
//	spate-bench -exp fig11   -scale 0.05 -days 1 -iters 5
//	spate-bench -exp serving -clients 16 -zipf-s 1.4 -tenant-mix gold:2,bronze
//	spate-bench -exp serving -url http://localhost:8080
//
// Absolute numbers depend on the host; the comparative shape (who wins,
// by roughly what factor) is the reproduction target.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spate/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "list", "experiment name, 'all', or 'list'")
		scale   = flag.Float64("scale", 0.02, "generator scale in (0,1]; 1 ~ the 5GB paper trace")
		days    = flag.Int("days", 2, "trace length in days (weekday figures force >= 7)")
		iters   = flag.Int("iters", 3, "iterations per response-time measurement (paper: 5)")
		workers = flag.Int("workers", 0, "compute-pool parallelism (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 1, "generator seed")
		dir     = flag.String("dir", "", "scratch directory (default: system temp)")

		clients = flag.Int("clients", 8, "serving herd: concurrent clients")
		zipfS   = flag.Float64("zipf-s", 1.3, "serving herd: zipf skew (>1) over hot windows")
		mix     = flag.String("tenant-mix", "", "serving herd: client tenant mix, e.g. gold:2,bronze")
		url     = flag.String("url", "", "serving herd: target a live spate-server instead of in-process")
	)
	flag.Parse()

	o := bench.Options{
		Scale: *scale, Days: *days, Iterations: *iters,
		Workers: *workers, Seed: *seed, Dir: *dir,
		Clients: *clients, ZipfS: *zipfS, TenantMix: *mix, URL: *url,
	}

	switch *exp {
	case "list":
		fmt.Println("experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-17s %s\n", e.Name, e.Desc)
		}
		fmt.Println("  all               run everything")
		return
	case "all":
		for _, e := range bench.Experiments() {
			start := time.Now()
			fmt.Printf("\n########## %s — %s\n", e.Name, e.Desc)
			if err := e.Run(os.Stdout, o); err != nil {
				fmt.Fprintf(os.Stderr, "spate-bench: %s: %v\n", e.Name, err)
				os.Exit(1)
			}
			fmt.Printf("[%s done in %v]\n", e.Name, time.Since(start).Round(time.Millisecond))
		}
		return
	default:
		e, err := bench.Lookup(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spate-bench:", err)
			os.Exit(2)
		}
		if err := e.Run(os.Stdout, o); err != nil {
			fmt.Fprintf(os.Stderr, "spate-bench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
	}
}
