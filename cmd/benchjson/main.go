// Command benchjson converts `go test -bench` text output into a stable
// JSON report. It reads benchmark output on stdin, echoes every line so the
// console still shows progress, and writes one JSON document mapping each
// benchmark to its iteration count and metric set (ns/op, B/op, plus any
// custom b.ReportMetric units such as inflatedB/op and cache-hit-rate).
//
// Usage:
//
//	go test -bench Explore -run XXX ./internal/core/ | benchjson -o BENCH_segment.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH_segment.json", "output JSON file")
	flag.Parse()

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}

	doc := struct {
		Benchmarks []result `json:"benchmarks"`
	}{results}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmarks to %s", len(results), *out)
}

// parseLine decodes one benchmark result line of the form
//
//	BenchmarkName/sub-8   10   12345 ns/op   67 inflatedB/op   0.95 cache-hit-rate
//
// Non-result lines (headers, PASS, package summaries) report ok=false.
func parseLine(line string) (result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: trimProcSuffix(fields[0]), Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// trimProcSuffix drops the trailing -GOMAXPROCS decoration from a benchmark
// name, so reports compare across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
