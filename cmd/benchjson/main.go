// Command benchjson converts `go test -bench` text output into a stable
// JSON report. It reads benchmark output on stdin, echoes every line so the
// console still shows progress, and writes one JSON document mapping each
// benchmark to its iteration count and metric set (ns/op, B/op, plus any
// custom b.ReportMetric units such as inflatedB/op and cache-hit-rate).
//
// Usage:
//
//	go test -bench Explore -run XXX ./internal/core/ | benchjson -o BENCH_segment.json
//
// With -baseline and -candidate it instead compares two reports and exits
// non-zero when any shared benchmark's compared metric regressed beyond
// the tolerance ratio — the CI gate against committed BENCH_*.json
// baselines. The default metric, inflatedB/op, is a function of the data
// and format alone (not machine speed), so a tight tolerance is safe:
//
//	benchjson -baseline BENCH_scan.base.json -candidate BENCH_scan.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// envInfo stamps every report with the machine shape it ran on, so
// cross-machine trajectories (especially parallel-scan rows/sec, which
// scales with core count) stay interpretable. Compare mode ignores it.
type envInfo struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "BENCH_segment.json", "output JSON file")
	baseline := flag.String("baseline", "", "compare mode: baseline report to gate against")
	candidate := flag.String("candidate", "", "compare mode: freshly generated report")
	metricName := flag.String("metric", "inflatedB/op", "compare mode: metric to gate on")
	tolerance := flag.Float64("tolerance", 1.25, "compare mode: max allowed candidate/baseline ratio")
	flag.Parse()

	if *baseline != "" || *candidate != "" {
		if *baseline == "" || *candidate == "" {
			log.Fatal("compare mode needs both -baseline and -candidate")
		}
		compare(*baseline, *candidate, *metricName, *tolerance)
		return
	}

	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark result lines on stdin")
	}

	doc := struct {
		Env        envInfo  `json:"env"`
		Benchmarks []result `json:"benchmarks"`
	}{
		envInfo{
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GoVersion:  runtime.Version(),
		},
		results,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmarks to %s", len(results), *out)
}

// compare gates candidate against baseline on one metric: every baseline
// benchmark reporting it must still exist in the candidate and must not
// exceed baseline*tolerance. Zero-baseline entries (e.g. a fully cached
// variant inflating nothing) cannot form a ratio and are reported but not
// gated; benchmarks only present in the candidate are new and pass.
func compare(baselinePath, candidatePath, metric string, tolerance float64) {
	base := loadReport(baselinePath)
	cand := loadReport(candidatePath)
	failed := 0
	for _, b := range base.Benchmarks {
		bv, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		c, ok := cand.byName(b.Name)
		if !ok {
			log.Printf("FAIL %s: missing from %s", b.Name, candidatePath)
			failed++
			continue
		}
		cv, ok := c.Metrics[metric]
		if !ok {
			log.Printf("FAIL %s: candidate lacks metric %s", b.Name, metric)
			failed++
			continue
		}
		if bv == 0 {
			log.Printf("skip %s: baseline %s is 0 (candidate %g)", b.Name, metric, cv)
			continue
		}
		ratio := cv / bv
		status := "ok  "
		if ratio > tolerance {
			status = "FAIL"
			failed++
		}
		log.Printf("%s %s: %s %g -> %g (%.2fx, limit %.2fx)",
			status, b.Name, metric, bv, cv, ratio, tolerance)
	}
	if failed > 0 {
		log.Fatalf("%d benchmark(s) regressed on %s", failed, metric)
	}
	log.Printf("no regressions on %s (tolerance %.2fx)", metric, tolerance)
}

type report struct {
	Benchmarks []result `json:"benchmarks"`
}

func (r report) byName(name string) (result, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return result{}, false
}

func loadReport(path string) report {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	if len(r.Benchmarks) == 0 {
		log.Fatalf("%s: no benchmarks", path)
	}
	return r
}

// parseLine decodes one benchmark result line of the form
//
//	BenchmarkName/sub-8   10   12345 ns/op   67 inflatedB/op   0.95 cache-hit-rate
//
// Non-result lines (headers, PASS, package summaries) report ok=false.
func parseLine(line string) (result, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return result{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: trimProcSuffix(fields[0]), Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// trimProcSuffix drops the trailing -GOMAXPROCS decoration from a benchmark
// name, so reports compare across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
