// Command spate-server is the SPATE-UI stand-in (paper §VI-B): an HTTP
// exploration service over a SPATE store with a built-in map-style heatmap
// page (see internal/webui for the API surface).
//
// Usage:
//
//	spate-server -addr :8080 -scale 0.01 -days 1
//	spate-server -addr :8080 -trace /tmp/trace
//	spate-server -addr :8080 -cluster -shards 4 -replicas 2
//	spate-server -addr :8080 -join http://n1:9001,http://n2:9002 -shards 2
//	spate-server -addr :8080 -decay-interval 1h -keep-raw 720h -scrub-interval 6h -compact 24h
//	spate-server -addr :8080 -slow-query 100ms
//	spate-server -addr :8080 -stream
//	spate-server -addr :8080 -cluster -shards 4 -stream
//	spate-server -addr :8080 -rps 50 -max-concurrent 8 -tenants gold:4,bronze:1
//	spate-server -addr :8080 -cluster -result-cache-bytes 67108864
//
// Endpoints:
//
//	GET /                         heatmap UI (with a live stats panel)
//	GET /api/cells                static cell inventory
//	GET /api/explore?from=&to=&minx=&miny=&maxx=&maxy=&attr=&profile=1
//	POST /api/append              streaming row ingest (behind -stream)
//	GET /api/sql?q=SELECT...      (also EXPLAIN / EXPLAIN ANALYZE)
//	GET /api/space                storage accounting (single-engine mode)
//	GET /api/health               per-node probes (cluster modes)
//	GET /api/lifecycle            maintenance daemon status + run history
//	POST /api/lifecycle           ?job=decay|scrub|compact or ?action=pause|resume
//	GET /metrics                  Prometheus text exposition
//	GET /api/stats                JSON metrics mirror
//	GET /api/trace                recent request span trees (?id= fetches one)
//	GET /api/slowlog              recent slow queries
//	GET /rpc/...                  cluster node RPC (single-engine mode)
//	GET /debug/pprof/...          runtime profiles (behind -pprof)
//
// With -cluster the process boots an in-process cluster — shards×replicas
// engine nodes on loopback listeners — ingests through the coordinator and
// serves the cluster UI. With -join it runs the coordinator alone over
// existing nodes (started as plain spate-server instances, whose /rpc/
// surface is always mounted): URLs are grouped into replica sets of
// -replicas in slot order. Exploration degrades gracefully: answers carry
// partial:true plus the missing time-ranges when shards stay unreachable
// past their deadline and retries.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"spate/internal/cluster"
	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/decay"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/geo"
	"spate/internal/lifecycle"
	"spate/internal/obs"
	"spate/internal/serving"
	"spate/internal/snapshot"
	"spate/internal/telco"
	"spate/internal/tracedir"
	"spate/internal/webui"
)

func main() {
	os.Exit(run())
}

// run is main's body with a normal error return, so deferred cleanup (the
// temp store removal) executes on every exit path — a fatal log inside
// main would skip the defers and leak the store directory.
func run() int {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		trace     = flag.String("trace", "", "trace directory (optional; else synthesized)")
		scale     = flag.Float64("scale", 0.01, "synthesized trace scale")
		days      = flag.Int("days", 1, "synthesized trace length in days")
		withPprof = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		chunkSize = flag.Int("chunk-size", 0,
			"target uncompressed bytes per leaf segment chunk (0 = 256 KiB default; negative = legacy whole-blob leaves)")
		scanWorkers = flag.Int("scan-workers", 0,
			"goroutines per query for parallel leaf scans (0 = GOMAXPROCS; 1 = sequential)")

		decayEvery = flag.Duration("decay-interval", 0,
			"lifecycle: run scheduled decay this often (0 = disabled)")
		scrubEvery = flag.Duration("scrub-interval", 0,
			"lifecycle: run the DFS scrubber + re-replicator this often (0 = disabled)")
		compactEvery = flag.Duration("compact", 0,
			"lifecycle: run segment compaction this often (0 = disabled)")
		keepRaw = flag.Duration("keep-raw", 0,
			"decay horizon: evict full-resolution leaf data older than this (0 = keep forever)")
		slowQuery = flag.Duration("slow-query", obs.DefaultSlowThreshold,
			"slow-query log threshold (0 = disabled)")

		stream = flag.Bool("stream", false,
			"streaming ingest: keep the store open and serve POST /api/append (rows land in a WAL + memtable, queryable before their epoch seals)")
		walDir = flag.String("wal", "",
			"WAL directory for -stream (default: under the store directory)")

		rps = flag.Float64("rps", 0,
			"serving tier: sustained requests/second per tenant and endpoint class (0 = no rate limit)")
		maxConcurrent = flag.Int("max-concurrent", 0,
			"serving tier: concurrent requests per tenant and endpoint class; excess queues FIFO then sheds 503 (0 = no cap)")
		tenants = flag.String("tenants", "",
			"serving tier: comma-separated tenant name[:weight] entries scaling -rps/-max-concurrent per tenant (requests carry X-Spate-Tenant)")
		cacheBytes = flag.Int64("result-cache-bytes", 0,
			"serving tier: shared result-cache budget in bytes across every local engine (0 = per-engine default cache)")

		clusterMode = flag.Bool("cluster", false, "run an in-process sharded cluster behind the coordinator UI")
		shards      = flag.Int("shards", 4, "cluster: number of time shards")
		replicas    = flag.Int("replicas", 1, "cluster: replica nodes per shard slot")
		split       = flag.Int("spatial-split", 1, "cluster: vertical cell-plane bands per time shard")
		join        = flag.String("join", "", "cluster: comma-separated node base URLs; coordinator-only proxy mode")
	)
	flag.Parse()
	obs.DefaultSlowLog.SetThreshold(*slowQuery)

	// Bind before any expensive setup: a taken address should fail fast
	// with a non-zero exit, not after minutes of ingestion.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		slog.Error("spate-server: listen", "addr", *addr, "err", err)
		return 1
	}
	defer ln.Close()

	g := gen.New(gen.DefaultConfig(*scale))
	var cellTable *telco.Table
	var cells []gen.Cell
	if *trace != "" {
		cellTable, err = tracedir.ReadCells(*trace)
		if err != nil {
			slog.Error("spate-server: read cells", "err", err)
			return 1
		}
	} else {
		cellTable = g.CellTable()
		cells = g.Cells()
	}

	// forEachSnapshot streams the configured trace in epoch order and
	// returns its window.
	forEachSnapshot := func(ingest func(*snapshot.Snapshot) error) (telco.TimeRange, error) {
		var window telco.TimeRange
		if *trace != "" {
			epochs, err := tracedir.Epochs(*trace)
			if err != nil {
				return window, err
			}
			for _, e := range epochs {
				sn, err := tracedir.ReadSnapshot(*trace, e)
				if err != nil {
					return window, err
				}
				if err := ingest(sn); err != nil {
					return window, err
				}
			}
			if len(epochs) > 0 {
				window = telco.NewTimeRange(epochs[0].Start(), epochs[len(epochs)-1].End())
			}
			return window, nil
		}
		e0 := telco.EpochOf(g.Config().Start)
		n := *days * telco.EpochsPerDay
		for i := 0; i < n; i++ {
			e := e0 + telco.Epoch(i)
			sn := snapshot.New(e)
			sn.Add(g.CDRTable(e))
			sn.Add(g.NMSTable(e))
			if err := ingest(sn); err != nil {
				return window, err
			}
		}
		return telco.NewTimeRange(e0.Start(), (e0 + telco.Epoch(n)).Start()), nil
	}

	// Lifecycle maintenance (ISSUE 5): scheduled decay, DFS scrub and
	// segment compaction run inside the serving process. The run summaries
	// go through the structured logger so operators see them without
	// scraping /api/lifecycle.
	engOpts := core.Options{
		ChunkSize:   *chunkSize,
		ScanWorkers: *scanWorkers,
		Policy:      decay.Policy{KeepRaw: *keepRaw},
	}
	lcCfg := lifecycle.Config{
		DecayInterval:   *decayEvery,
		ScrubInterval:   *scrubEvery,
		CompactInterval: *compactEvery,
		Logf: func(format string, args ...any) {
			slog.Info(fmt.Sprintf(format, args...))
		},
	}
	lcEnabled := *decayEvery > 0 || *scrubEvery > 0 || *compactEvery > 0
	if lcEnabled {
		slog.Info("spate-server: lifecycle daemon enabled",
			"decay", *decayEvery, "scrub", *scrubEvery, "compact", *compactEvery)
	}

	// Serving tier (admission control + shared result cache). The
	// controller fronts whichever server mode runs below; the shared
	// cache pools every local engine's results under one byte budget.
	var admission *serving.Controller
	if *rps > 0 || *maxConcurrent > 0 {
		base := serving.Limits{RPS: *rps, MaxConcurrent: *maxConcurrent}
		perTenant, err := serving.ParseTenants(*tenants, base)
		if err != nil {
			slog.Error("spate-server: -tenants", "err", err)
			return 1
		}
		admission = serving.NewController(serving.Config{Default: base, Tenants: perTenant})
		slog.Info("spate-server: admission control enabled",
			"rps", *rps, "max_concurrent", *maxConcurrent, "tenants", len(perTenant))
	} else if *tenants != "" {
		slog.Error("spate-server: -tenants requires -rps or -max-concurrent")
		return 1
	}
	var sharedCache serving.Cache
	if *cacheBytes > 0 {
		sharedCache = serving.NewLRU(*cacheBytes, obs.Default)
		slog.Info("spate-server: shared result cache enabled", "bytes", *cacheBytes)
	}

	ccfg := cluster.Config{Shards: *shards, Replicas: *replicas, SpatialSplit: *split}
	var handler http.Handler
	switch {
	case *join != "":
		// Coordinator-only proxy: scatter-gather over already-running
		// nodes; no local ingest — the nodes carry the data.
		urls := strings.Split(*join, ",")
		m := cluster.NewShardMap(ccfg, cellPoints(cellTable))
		want := m.NumSlots() * *replicas
		if len(urls) != want {
			slog.Error("spate-server: -join node count mismatch",
				"want", want, "slots", m.NumSlots(), "replicas", *replicas, "got", len(urls))
			return 1
		}
		nodes := make([][]string, m.NumSlots())
		for i, u := range urls {
			nodes[i / *replicas] = append(nodes[i / *replicas], strings.TrimSpace(u))
		}
		coord, err := cluster.NewCoordinator(ccfg, m, nodes, cellTable)
		if err != nil {
			slog.Error("spate-server: coordinator", "err", err)
			return 1
		}
		window := defaultWindow(g, *days)
		for url, perr := range coord.Health(context.Background()) {
			if perr != nil {
				slog.Warn("spate-server: node unhealthy", "url", url, "err", perr)
			}
		}
		slog.Info("spate-server: coordinating", "nodes", len(urls), "shards", *shards)
		cs := webui.NewClusterServer(coord, cells, window)
		if admission != nil {
			cs.SetAdmission(admission)
		}
		handler = cs.Handler()

	case *clusterMode:
		lopt := cluster.LocalOptions{Engine: engOpts, ResultCache: sharedCache}
		if lcEnabled {
			lopt.Lifecycle = &lcCfg
		}
		if *stream {
			lopt.Streaming = &core.StreamerOptions{}
		}
		local, err := cluster.StartLocal(ccfg, cellTable, lopt)
		if err != nil {
			slog.Error("spate-server: start local cluster", "err", err)
			return 1
		}
		defer local.Close()
		slog.Info("spate-server: ingesting through coordinator",
			"shards", *shards, "replicas", *replicas)
		window, err := forEachSnapshot(func(sn *snapshot.Snapshot) error {
			return local.Coordinator.Ingest(context.Background(), sn)
		})
		if err != nil {
			slog.Error("spate-server: ingest", "err", err)
			return 1
		}
		if *stream {
			// Streaming mode keeps the store open: FinishIngest would
			// finalize the engines and refuse further appends.
			slog.Info("spate-server: streaming ingest enabled (POST /api/append)")
		} else if err := local.Coordinator.FinishIngest(context.Background()); err != nil {
			slog.Error("spate-server: finish ingest", "err", err)
			return 1
		}
		slog.Info("spate-server: cluster ready", "nodes", len(local.Nodes),
			"from", window.From.Format(telco.TimeLayout), "to", window.To.Format(telco.TimeLayout))
		cs := webui.NewClusterServer(local.Coordinator, cells, window)
		if admission != nil {
			cs.SetAdmission(admission)
		}
		handler = cs.Handler()

	default:
		dir, err := os.MkdirTemp("", "spate-server-*")
		if err != nil {
			slog.Error("spate-server: temp store", "err", err)
			return 1
		}
		defer os.RemoveAll(dir)
		fs, err := dfs.NewCluster(dir, dfs.Config{})
		if err != nil {
			slog.Error("spate-server: dfs", "err", err)
			return 1
		}
		if sharedCache != nil {
			engOpts.ResultCache = serving.Namespace(sharedCache, "engine")
		}
		eng, err := core.Open(fs, cellTable, engOpts)
		if err != nil {
			slog.Error("spate-server: open engine", "err", err)
			return 1
		}
		slog.Info("spate-server: ingesting...")
		window, err := forEachSnapshot(func(sn *snapshot.Snapshot) error {
			_, err := eng.Ingest(sn)
			return err
		})
		if err != nil {
			slog.Error("spate-server: ingest", "err", err)
			return 1
		}
		if !*stream {
			// Streaming mode keeps the store open: FinishIngest would
			// finalize the engine and refuse further appends.
			eng.FinishIngest()
		}
		slog.Info("spate-server: ready", "snapshots", eng.Tree().Len(),
			"from", window.From.Format(telco.TimeLayout), "to", window.To.Format(telco.TimeLayout))

		// Mount the node RPC surface alongside the UI so this process can
		// serve as a shard behind a -join coordinator.
		node := cluster.NewNode(eng)
		ui := webui.NewServer(eng, cells, window)
		if admission != nil {
			ui.SetAdmission(admission)
		}
		if *stream {
			wd := *walDir
			if wd == "" {
				wd = filepath.Join(dir, "wal")
			}
			st, err := eng.OpenStreamer(core.StreamerOptions{WALDir: wd})
			if err != nil {
				slog.Error("spate-server: open streamer", "err", err)
				return 1
			}
			defer st.Close()
			node.SetStreamer(st)
			ui.SetStreamer(st)
			slog.Info("spate-server: streaming ingest enabled (POST /api/append)", "wal", wd)
		}
		if lcEnabled {
			lm := lifecycle.New(eng, lcCfg)
			ui.SetLifecycle(lm)
			node.SetLifecycle(lm)
			lm.Start()
			defer lm.Close()
		}
		mux := http.NewServeMux()
		mux.Handle("/rpc/", node.Handler())
		mux.Handle("/", ui.Handler())
		handler = mux
	}

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		slog.Info("spate-server: pprof enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{Handler: mux}

	// Graceful shutdown: SIGINT/SIGTERM stop accepting connections, drain
	// in-flight requests for up to 10s, then the deferred temp-store
	// cleanup above runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		slog.Info("spate-server: listening", "addr", ln.Addr().String())
		errc <- httpSrv.Serve(ln)
	}()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			slog.Error("spate-server: serve", "err", err)
			return 1
		}
	case <-ctx.Done():
		slog.Info("spate-server: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			slog.Error("spate-server: shutdown", "err", err)
			return 1
		}
	}
	return 0
}

// defaultWindow is the synthesized trace span — the UI default when the
// coordinator itself holds no data to derive one from.
func defaultWindow(g *gen.Generator, days int) telco.TimeRange {
	e0 := telco.EpochOf(g.Config().Start)
	n := days * telco.EpochsPerDay
	return telco.NewTimeRange(e0.Start(), (e0 + telco.Epoch(n)).Start())
}

// cellPoints extracts planar cell locations for shard-map construction.
func cellPoints(t *telco.Table) []geo.Point {
	xIdx := t.Schema.FieldIndex("x_km")
	yIdx := t.Schema.FieldIndex("y_km")
	if xIdx < 0 || yIdx < 0 {
		return nil
	}
	pts := make([]geo.Point, 0, len(t.Rows))
	for _, r := range t.Rows {
		pts = append(pts, geo.Point{X: r[xIdx].Float64(), Y: r[yIdx].Float64()})
	}
	return pts
}
