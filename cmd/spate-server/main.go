// Command spate-server is the SPATE-UI stand-in (paper §VI-B): an HTTP
// exploration service over a SPATE store with a built-in map-style heatmap
// page (see internal/webui for the API surface).
//
// Usage:
//
//	spate-server -addr :8080 -scale 0.01 -days 1
//	spate-server -addr :8080 -trace /tmp/trace
//
// Endpoints:
//
//	GET /                         heatmap UI (with a live stats panel)
//	GET /api/cells                static cell inventory
//	GET /api/explore?from=&to=&minx=&miny=&maxx=&maxy=&attr=
//	GET /api/sql?q=SELECT...
//	GET /api/space                storage accounting
//	GET /metrics                  Prometheus text exposition
//	GET /api/stats                JSON metrics mirror
//	GET /api/trace                recent request span trees
//	GET /debug/pprof/...          runtime profiles (behind -pprof)
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/snapshot"
	"spate/internal/telco"
	"spate/internal/tracedir"
	"spate/internal/webui"
)

func main() {
	os.Exit(run())
}

// run is main's body with a normal error return, so deferred cleanup (the
// temp store removal) executes on every exit path — log.Fatal inside main
// would skip the defers and leak the store directory.
func run() int {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		trace     = flag.String("trace", "", "trace directory (optional; else synthesized)")
		scale     = flag.Float64("scale", 0.01, "synthesized trace scale")
		days      = flag.Int("days", 1, "synthesized trace length in days")
		withPprof = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	dir, err := os.MkdirTemp("", "spate-server-*")
	if err != nil {
		log.Print(err)
		return 1
	}
	defer os.RemoveAll(dir)
	fs, err := dfs.NewCluster(dir, dfs.Config{})
	if err != nil {
		log.Print(err)
		return 1
	}

	g := gen.New(gen.DefaultConfig(*scale))
	var cellTable *telco.Table
	var cells []gen.Cell
	if *trace != "" {
		cellTable, err = tracedir.ReadCells(*trace)
		if err != nil {
			log.Print(err)
			return 1
		}
	} else {
		cellTable = g.CellTable()
		cells = g.Cells()
	}
	eng, err := core.Open(fs, cellTable, core.Options{})
	if err != nil {
		log.Print(err)
		return 1
	}

	log.Printf("spate-server: ingesting...")
	var window telco.TimeRange
	if *trace != "" {
		epochs, err := tracedir.Epochs(*trace)
		if err != nil {
			log.Print(err)
			return 1
		}
		for _, e := range epochs {
			sn, err := tracedir.ReadSnapshot(*trace, e)
			if err != nil {
				log.Print(err)
				return 1
			}
			if _, err := eng.Ingest(sn); err != nil {
				log.Print(err)
				return 1
			}
		}
		if len(epochs) > 0 {
			window = telco.NewTimeRange(epochs[0].Start(), epochs[len(epochs)-1].End())
		}
	} else {
		e0 := telco.EpochOf(g.Config().Start)
		n := *days * telco.EpochsPerDay
		for i := 0; i < n; i++ {
			e := e0 + telco.Epoch(i)
			sn := snapshot.New(e)
			sn.Add(g.CDRTable(e))
			sn.Add(g.NMSTable(e))
			if _, err := eng.Ingest(sn); err != nil {
				log.Print(err)
				return 1
			}
		}
		window = telco.NewTimeRange(e0.Start(), (e0 + telco.Epoch(n)).Start())
	}
	eng.FinishIngest()

	srv := webui.NewServer(eng, cells, window)
	log.Printf("spate-server: %d snapshots ready, window %s .. %s",
		eng.Tree().Len(), window.From.Format(telco.TimeLayout), window.To.Format(telco.TimeLayout))

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	if *withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("spate-server: pprof enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	// Graceful shutdown: SIGINT/SIGTERM stop accepting connections, drain
	// in-flight requests for up to 10s, then the deferred temp-store
	// cleanup above runs.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("spate-server: listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Print(err)
			return 1
		}
	case <-ctx.Done():
		log.Printf("spate-server: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("spate-server: shutdown: %v", err)
			return 1
		}
	}
	return 0
}
