// Command spate-server is the SPATE-UI stand-in (paper §VI-B): an HTTP
// exploration service over a SPATE store with a built-in map-style heatmap
// page (see internal/webui for the API surface).
//
// Usage:
//
//	spate-server -addr :8080 -scale 0.01 -days 1
//	spate-server -addr :8080 -trace /tmp/trace
//
// Endpoints:
//
//	GET /                         heatmap UI
//	GET /api/cells                static cell inventory
//	GET /api/explore?from=&to=&minx=&miny=&maxx=&maxy=&attr=
//	GET /api/sql?q=SELECT...
//	GET /api/space                storage accounting
package main

import (
	"flag"
	"log"
	"net/http"
	"os"

	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/snapshot"
	"spate/internal/telco"
	"spate/internal/tracedir"
	"spate/internal/webui"
)

func main() {
	var (
		addr  = flag.String("addr", ":8080", "listen address")
		trace = flag.String("trace", "", "trace directory (optional; else synthesized)")
		scale = flag.Float64("scale", 0.01, "synthesized trace scale")
		days  = flag.Int("days", 1, "synthesized trace length in days")
	)
	flag.Parse()

	dir, err := os.MkdirTemp("", "spate-server-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fs, err := dfs.NewCluster(dir, dfs.Config{})
	if err != nil {
		log.Fatal(err)
	}

	g := gen.New(gen.DefaultConfig(*scale))
	var cellTable *telco.Table
	var cells []gen.Cell
	if *trace != "" {
		cellTable, err = tracedir.ReadCells(*trace)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cellTable = g.CellTable()
		cells = g.Cells()
	}
	eng, err := core.Open(fs, cellTable, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("spate-server: ingesting...")
	var window telco.TimeRange
	if *trace != "" {
		epochs, err := tracedir.Epochs(*trace)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range epochs {
			sn, err := tracedir.ReadSnapshot(*trace, e)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := eng.Ingest(sn); err != nil {
				log.Fatal(err)
			}
		}
		if len(epochs) > 0 {
			window = telco.NewTimeRange(epochs[0].Start(), epochs[len(epochs)-1].End())
		}
	} else {
		e0 := telco.EpochOf(g.Config().Start)
		n := *days * telco.EpochsPerDay
		for i := 0; i < n; i++ {
			e := e0 + telco.Epoch(i)
			sn := snapshot.New(e)
			sn.Add(g.CDRTable(e))
			sn.Add(g.NMSTable(e))
			if _, err := eng.Ingest(sn); err != nil {
				log.Fatal(err)
			}
		}
		window = telco.NewTimeRange(e0.Start(), (e0 + telco.Epoch(n)).Start())
	}
	eng.FinishIngest()

	srv := webui.NewServer(eng, cells, window)
	log.Printf("spate-server: %d snapshots ready, window %s .. %s",
		eng.Tree().Len(), window.From.Format(telco.TimeLayout), window.To.Format(telco.TimeLayout))
	log.Printf("spate-server: listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
