package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"time"

	"spate/internal/tracedir"
)

// streamTrace replays a trace directory as a paced firehose against a
// running spate-server: every table row POSTs to /api/append in batches,
// honoring 429 backpressure with the server's Retry-After hint. Rows are
// explorable on the server as soon as each request returns — the
// time-to-queryable is the append latency, not the epoch length.
func streamTrace(trace, server string, rate, batchSize int, seal, verbose bool) error {
	if batchSize <= 0 {
		batchSize = 500
	}
	epochs, err := tracedir.Epochs(trace)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	hc := &http.Client{Timeout: 30 * time.Second}

	// Pacing: each sent row earns 1/rate seconds of sleep debt, paid per
	// batch, so the steady-state throughput is rate rows/sec regardless of
	// batch size.
	var perRow time.Duration
	if rate > 0 {
		perRow = time.Duration(int64(time.Second) / int64(rate))
	}

	start := time.Now()
	sent, batches := 0, 0
	lines := make([]string, 0, batchSize)
	flush := func(table string) error {
		if len(lines) == 0 {
			return nil
		}
		t0 := time.Now()
		if err := postAppend(hc, server, table, lines, false); err != nil {
			return err
		}
		sent += len(lines)
		batches++
		if verbose {
			fmt.Printf("append %-12s rows=%-5d t=%v\n", table, len(lines), time.Since(t0).Round(time.Millisecond))
		}
		if perRow > 0 {
			debt := time.Duration(len(lines)) * perRow
			if spent := time.Since(t0); spent < debt {
				select {
				case <-time.After(debt - spent):
				case <-sig:
					return fmt.Errorf("interrupted")
				}
			}
		}
		lines = lines[:0]
		return nil
	}
	for _, e := range epochs {
		sn, err := tracedir.ReadSnapshot(trace, e)
		if err != nil {
			return err
		}
		for _, name := range sn.TableNames() {
			t := sn.Table(name)
			for _, row := range t.Rows {
				lines = append(lines, row.Line())
				if len(lines) == batchSize {
					if err := flush(name); err != nil {
						return err
					}
				}
			}
			if err := flush(name); err != nil {
				return err
			}
		}
	}
	if seal {
		if err := postAppend(hc, server, "", nil, true); err != nil {
			return fmt.Errorf("seal: %w", err)
		}
	}
	elapsed := time.Since(start)
	rps := float64(sent) / elapsed.Seconds()
	fmt.Printf("spate-ingest: streamed %d rows in %d batches over %v (%.0f rows/sec)\n",
		sent, batches, elapsed.Round(time.Millisecond), rps)
	return nil
}

// postAppend sends one /api/append request, retrying on 429 backpressure
// with the server's Retry-After hint (default 1s).
func postAppend(hc *http.Client, server, table string, rows []string, seal bool) error {
	body, err := json.Marshal(map[string]any{"table": table, "rows": rows, "seal": seal})
	if err != nil {
		return err
	}
	for {
		resp, err := hc.Post(server+"/api/append", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			wait := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				wait = time.Duration(s) * time.Second
			}
			time.Sleep(wait)
			continue
		}
		return fmt.Errorf("append: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
}
