// Command spate-ingest replays a trace directory (produced by spate-gen)
// into a SPATE store: each snapshot is compressed, replicated onto the
// embedded DFS cluster and incorporated into the spatio-temporal index,
// with optional decay. It prints the per-snapshot ingestion report stream
// and the final storage accounting (objectives O1/O2 of the paper).
//
// Usage:
//
//	spate-ingest -trace /tmp/trace -store /tmp/store -codec gzip -keepraw 24h
//
// With -stream the command becomes a paced firehose against a running
// spate-server (started with -stream): rows of the trace are POSTed to
// /api/append in batches at -rate rows/sec, backing off on 429
// backpressure, and are explorable on the server before their epoch seals.
//
//	spate-ingest -trace /tmp/trace -stream -server http://localhost:8080 -rate 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"spate/internal/compress"
	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/decay"
	"spate/internal/dfs"
	"spate/internal/telco"
	"spate/internal/tracedir"
)

func main() {
	var (
		trace   = flag.String("trace", "", "trace directory from spate-gen (required)")
		store   = flag.String("store", "", "DFS store directory (required unless -stream)")
		codec   = flag.String("codec", "gzip", "storage codec: gzip|sevenz|snappy|zstd")
		keepRaw = flag.Duration("keepraw", 0, "decay horizon for raw data (0 = keep forever)")
		grouped = flag.Bool("grouped", false, "use the EvictGroupedIndividuals fungus")
		verbose = flag.Bool("v", false, "print a line per ingested snapshot")
		follow  = flag.Bool("follow", false, "keep polling the trace directory for newly arriving snapshots (streaming mode)")
		poll    = flag.Duration("poll", 5*time.Second, "poll interval in -follow mode")

		stream = flag.Bool("stream", false, "firehose mode: POST trace rows to a spate-server's /api/append instead of writing a local store")
		server = flag.String("server", "http://localhost:8080", "spate-server base URL in -stream mode")
		rate   = flag.Int("rate", 0, "rows per second pacing in -stream mode (0 = unpaced)")
		batch  = flag.Int("batch", 500, "rows per append request in -stream mode")
		seal   = flag.Bool("seal", false, "request a seal of all buffered epochs after streaming")
	)
	flag.Parse()
	if *stream {
		if *trace == "" {
			fmt.Fprintln(os.Stderr, "spate-ingest: -trace is required")
			flag.Usage()
			os.Exit(2)
		}
		if err := streamTrace(*trace, *server, *rate, *batch, *seal, *verbose); err != nil {
			fatal(err)
		}
		return
	}
	if *trace == "" || *store == "" {
		fmt.Fprintln(os.Stderr, "spate-ingest: -trace and -store are required")
		flag.Usage()
		os.Exit(2)
	}
	c, err := compress.Lookup(*codec)
	if err != nil {
		fatal(err)
	}
	cells, err := tracedir.ReadCells(*trace)
	if err != nil {
		fatal(err)
	}
	epochs, err := tracedir.Epochs(*trace)
	if err != nil {
		fatal(err)
	}
	fs, err := dfs.NewCluster(*store, dfs.Config{})
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Codec: c, Policy: decay.Policy{KeepRaw: *keepRaw}}
	if *grouped {
		opts.Fungus = decay.EvictGroupedIndividuals{}
	}
	eng, err := core.Open(fs, cells, opts)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	var rows, ingested int
	consume := func(e telco.Epoch) {
		sn, err := tracedir.ReadSnapshot(*trace, e)
		if err != nil {
			fatal(err)
		}
		rep, err := eng.Ingest(sn)
		if err != nil {
			fatal(err)
		}
		rows += rep.Rows
		ingested++
		if *verbose {
			fmt.Printf("%s  rows=%-7d raw=%-9d comp=%-8d rc=%.2f  t=%v\n",
				e, rep.Rows, rep.RawBytes, rep.CompBytes,
				float64(rep.RawBytes)/float64(rep.CompBytes), rep.Total.Round(time.Millisecond))
		}
	}
	for _, e := range epochs {
		consume(e)
	}
	if *follow {
		// Streaming mode: poll for newly arriving snapshot directories —
		// the telco data-center ingestion loop, where snapshots land every
		// 30 minutes. Stop with SIGINT.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		last := telco.Epoch(0)
		if len(epochs) > 0 {
			last = epochs[len(epochs)-1]
		}
		fmt.Printf("spate-ingest: following %s (poll %v, ^C to stop)\n", *trace, *poll)
		ticker := time.NewTicker(*poll)
		defer ticker.Stop()
	followLoop:
		for {
			select {
			case <-sig:
				break followLoop
			case <-ticker.C:
			}
			current, err := tracedir.Epochs(*trace)
			if err != nil {
				fatal(err)
			}
			for _, e := range current {
				if e > last {
					consume(e)
					last = e
				}
			}
		}
	}
	eng.FinishIngest()

	sp := eng.Space()
	u := fs.Usage()
	st := eng.Tree().Stats()
	fmt.Printf("spate-ingest: %d snapshots, %d rows in %v\n", ingested, rows, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  raw ingested S   : %.2f MB\n", mb(sp.RawBytes))
	fmt.Printf("  compressed Sc    : %.2f MB\n", mb(sp.CompBytes))
	fmt.Printf("  index Si         : %.2f MB\n", mb(sp.SummaryBytes))
	fmt.Printf("  objective O1     : %.2fx (S / (Sc+Si))\n", sp.O1)
	fmt.Printf("  on-disk (x%d rep): %.2f MB over %d datanodes\n",
		fs.Config().Replication, mb(u.StoredBytes), u.LiveNodes)
	fmt.Printf("  index            : %d nodes, %d leaves (%d decayed)\n",
		st.Nodes, st.Leaves, st.DecayedLeaves)
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spate-ingest:", err)
	os.Exit(1)
}
