package spate_test

import (
	"testing"
	"time"

	"spate"
)

// TestPublicAPILifecycle exercises the facade end-to-end the way a
// downstream user would: cluster, generator, ingest, explore, SQL,
// privacy, analytics and decay — one integration pass over every exported
// surface.
func TestPublicAPILifecycle(t *testing.T) {
	fs, err := spate.NewCluster(t.TempDir(), spate.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := spate.GeneratorConfig(0.002)
	cfg.Antennas = 15
	cfg.Users = 100
	cfg.CDRPerEpoch = 60
	cfg.NMSReportsPerCell = 0.5
	g := spate.NewGenerator(cfg)

	eng, err := spate.Open(fs, g.CellTable(), spate.Options{
		Policy: spate.DecayPolicy{KeepRaw: 2 * time.Hour},
		Fungus: spate.EvictOldestIndividuals{},
	})
	if err != nil {
		t.Fatal(err)
	}

	start := g.Config().Start
	first := spate.EpochOf(start)
	for e := first; e < first+8; e++ { // 4 hours
		s := spate.NewSnapshot(e)
		s.Add(g.CDRTable(e))
		s.Add(g.NMSTable(e))
		rep, err := eng.Ingest(s)
		if err != nil {
			t.Fatal(err)
		}
		if rep.CompBytes >= rep.RawBytes {
			t.Fatal("no compression")
		}
	}

	// Exploration with box and window.
	res, err := eng.Explore(spate.Query{
		Box:    spate.NewRect(0, 0, 80, 75),
		Window: spate.NewTimeRange(start, start.Add(4*time.Hour)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows == 0 || len(res.Cells) == 0 {
		t.Fatal("empty exploration")
	}

	// Decay happened under the 2h policy.
	if eng.Tree().Stats().DecayedLeaves == 0 {
		t.Error("no leaves decayed")
	}

	// SPATE-SQL over the store.
	sql := spate.NewSQL(eng)
	rs, err := sql.Query(`SELECT call_type, COUNT(*) AS n FROM CDR GROUP BY call_type ORDER BY n DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) == 0 || rs.Cols[1] != "n" {
		t.Fatalf("sql = %+v", rs)
	}

	// Privacy-aware sharing of recent rows.
	recent, err := eng.Explore(spate.Query{
		Window:    spate.NewTimeRange(start.Add(3*time.Hour), start.Add(4*time.Hour)),
		ExactRows: true, Tables: []string{"CDR"},
	})
	if err != nil {
		t.Fatal(err)
	}
	quasi := []string{"caller", "cell_id", "duration"}
	anon, prep, err := spate.Anonymize(recent.Rows["CDR"], spate.PrivacyOptions{K: 3, QuasiIdentifiers: quasi})
	if err != nil {
		t.Fatal(err)
	}
	if prep.ReleasedRows == 0 {
		t.Fatal("nothing released")
	}
	if min, _ := spate.VerifyK(anon, quasi); min < 3 {
		t.Errorf("k-anonymity violated: %d", min)
	}

	// Parallel analytics over exact rows.
	pool := spate.NewPool(2)
	var rows [][]float64
	for _, r := range recent.Rows["CDR"].Rows {
		rows = append(rows, []float64{
			r.Get(recent.Rows["CDR"].Schema, "duration").Float64(),
			r.Get(recent.Rows["CDR"].Schema, "downflux").Float64(),
		})
	}
	stats, err := spate.ColStatsOf(pool, rows)
	if err != nil || len(stats) != 2 {
		t.Fatalf("ColStatsOf: %v", err)
	}
	if km, err := spate.KMeans(pool, rows, 2, 10); err != nil || len(km.Centers) != 2 {
		t.Fatalf("KMeans: %v", err)
	}

	// Codec registry is loaded via the facade import.
	if got := spate.CodecNames(); len(got) != 4 {
		t.Errorf("codecs = %v", got)
	}
	if _, err := spate.LookupCodec("sevenz"); err != nil {
		t.Error(err)
	}

	// Space accounting.
	sp := eng.Space()
	if sp.RawBytes == 0 || sp.CompBytes == 0 || sp.O1 <= 0 {
		t.Errorf("space = %+v", sp)
	}
}

// TestFacadeLevelsAndConstants pins the re-exported constants.
func TestFacadeLevelsAndConstants(t *testing.T) {
	if spate.EpochDuration != 30*time.Minute {
		t.Error("EpochDuration changed")
	}
	levels := []spate.Level{spate.LevelRoot, spate.LevelYear, spate.LevelMonth, spate.LevelDay, spate.LevelEpoch}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Error("levels not ordered")
		}
	}
}
