# SPATE build and verification targets.

GO ?= go

.PHONY: all build test race vet bench fmt check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The obs registry and tracer are lock-free/locked hot paths shared across
# goroutines; run the whole tree under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 10x -run XXX ./...

fmt:
	gofmt -l -w .

# Everything the CI gate runs.
check: build vet test
