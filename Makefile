# SPATE build and verification targets.

GO ?= go

.PHONY: all build test race vet bench bench-json bench-check fuzz fmt lint check

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The obs registry and tracer are lock-free/locked hot paths shared across
# goroutines; run the whole tree under the race detector. The parallel scan
# parity tests re-run at several GOMAXPROCS values so the order-preserving
# scheduler is exercised both starved and saturated.
race:
	$(GO) test -race ./...
	$(GO) test -race -run Parallel -cpu 1,2,4 ./internal/core/ ./internal/cluster/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench . -benchtime 10x -run XXX ./...

# Machine-readable report for the exploration benchmarks: ns/op, leaf bytes
# inflated per op and the chunk-cache hit rate land in BENCH_segment.json.
bench-json:
	$(GO) test -bench Explore -benchtime 5x -run XXX ./internal/core/ ./internal/cluster/ \
		| $(GO) run ./cmd/benchjson -o BENCH_segment.json
	$(GO) test -bench Lifecycle -benchtime 5x -run XXX ./internal/lifecycle/ \
		| $(GO) run ./cmd/benchjson -o BENCH_lifecycle.json
	$(GO) test -bench 'BenchmarkExplore$$/' -benchtime 2000x -run XXX ./internal/core/ \
		| $(GO) run ./cmd/benchjson -o BENCH_obs.json
	$(GO) test -bench Stream -benchtime 20x -run XXX ./internal/core/ \
		| $(GO) run ./cmd/benchjson -o BENCH_ingest.json
	$(GO) test -bench ColumnarScan -benchtime 5x -run XXX ./internal/core/ \
		| $(GO) run ./cmd/benchjson -o BENCH_scan.json
	$(GO) test -bench ParallelScan -benchtime 3x -run XXX ./internal/core/ \
		| $(GO) run ./cmd/benchjson -o BENCH_parallel.json
	$(GO) test -bench Serving -benchtime 5x -run XXX ./internal/bench/ \
		| $(GO) run ./cmd/benchjson -o BENCH_serving.json

# Regression gate: regenerate the reports, then compare the deterministic
# inflatedB/op numbers against the committed baselines — a format or
# pushdown regression shows up as more leaf bytes inflated per operation,
# independent of runner speed.
bench-check:
	cp BENCH_segment.json BENCH_segment.base.json
	cp BENCH_scan.json BENCH_scan.base.json
	cp BENCH_parallel.json BENCH_parallel.base.json
	cp BENCH_serving.json BENCH_serving.base.json
	$(MAKE) bench-json
	$(GO) run ./cmd/benchjson -baseline BENCH_segment.base.json -candidate BENCH_segment.json
	$(GO) run ./cmd/benchjson -baseline BENCH_scan.base.json -candidate BENCH_scan.json
	$(GO) run ./cmd/benchjson -baseline BENCH_parallel.base.json -candidate BENCH_parallel.json
	$(GO) run ./cmd/benchjson -baseline BENCH_serving.base.json -candidate BENCH_serving.json \
		-metric evals/window -tolerance 2.0
	rm -f BENCH_segment.base.json BENCH_scan.base.json BENCH_parallel.base.json BENCH_serving.base.json

# Fuzz the WAL record decoder and the v3 column-stream decoders for a
# short, CI-friendly budget.
fuzz:
	$(GO) test -fuzz FuzzRecordDecode -fuzztime 30s -run XXX ./internal/wal/
	$(GO) test -fuzz FuzzDecodeColumn -fuzztime 30s -run XXX ./internal/compress/

fmt:
	gofmt -l -w .

# Fails on unformatted files, then vets. CI runs this before the build.
lint:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...

# Everything the CI gate runs.
check: build vet test
