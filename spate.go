// Package spate is the public API of SPATE, a spatio-temporal framework
// for efficient exploration of telco big data with lossless compression
// and lossy decaying, reproducing Costa et al., "Efficient Exploration of
// Telco Big Data with Compression and Decaying" (ICDE 2017).
//
// SPATE ingests network snapshots arriving every 30 minutes, compresses
// them onto a replicated file system, maintains a multi-resolution
// temporal index (epoch → day → month → year) with materialized highlight
// summaries, progressively decays aged data under an operator-chosen
// policy, and answers exploration queries Q(a, b, w) — attributes a,
// bounding box b, time window w — in time independent of |w|.
//
// Quick start:
//
//	fs, _ := spate.NewCluster(dir, spate.ClusterConfig{})
//	g := spate.NewGenerator(spate.GeneratorConfig(0.01))
//	eng, _ := spate.Open(fs, g.CellTable(), spate.Options{})
//	for e := first; e < last; e++ {
//		s := spate.NewSnapshot(e)
//		s.Add(g.CDRTable(e))
//		s.Add(g.NMSTable(e))
//		eng.Ingest(s)
//	}
//	res, _ := eng.Explore(spate.Query{Window: w, Box: b})
package spate

import (
	"io"

	"spate/internal/cluster"
	"spate/internal/compress"
	_ "spate/internal/compress/all" // register every codec
	"spate/internal/compute"
	"spate/internal/compute/ml"
	"spate/internal/core"
	"spate/internal/decay"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/geo"
	"spate/internal/highlights"
	"spate/internal/index"
	"spate/internal/obs"
	"spate/internal/privacy"
	"spate/internal/snapshot"
	"spate/internal/sqlengine"
	"spate/internal/tasks"
	"spate/internal/telco"
)

// Engine is a SPATE instance. See core.Engine.
type Engine = core.Engine

// Options configures an Engine.
type Options = core.Options

// Query is a data exploration request Q(a, b, w).
type Query = core.Query

// Result is an exploration answer.
type Result = core.Result

// IngestReport describes one snapshot ingestion.
type IngestReport = core.IngestReport

// Snapshot is one epoch's batch of arriving telco tables.
type Snapshot = snapshot.Snapshot

// Epoch identifies a 30-minute ingestion cycle.
type Epoch = telco.Epoch

// TimeRange is a half-open time interval.
type TimeRange = telco.TimeRange

// Table is a batch of telco records under a schema.
type Table = telco.Table

// Record is one telco row.
type Record = telco.Record

// Rect is a planar bounding box in km.
type Rect = geo.Rect

// Point is a planar location in km.
type Point = geo.Point

// AttrRef names a table attribute for highlight selection.
type AttrRef = highlights.AttrRef

// Highlight is an interesting event summary.
type Highlight = highlights.Highlight

// Summary is a mergeable aggregate cube.
type Summary = highlights.Summary

// DecayPolicy sets retention horizons per index resolution.
type DecayPolicy = decay.Policy

// Level is a temporal index resolution.
type Level = index.Level

// Cluster is the replicated file system SPATE stores data on.
type Cluster = dfs.Cluster

// ClusterConfig parameterizes a Cluster.
type ClusterConfig = dfs.Config

// Generator synthesizes paper-shaped telco traces.
type Generator = gen.Generator

// Codec is a lossless block compressor.
type Codec = compress.Codec

// Re-exported constructors and helpers.
var (
	// Open creates an Engine over a cluster with a static cell inventory.
	Open = core.Open
	// NewCluster creates a replicated file system rooted at a directory.
	NewCluster = dfs.NewCluster
	// NewSnapshot creates an empty snapshot for an epoch.
	NewSnapshot = snapshot.New
	// NewGenerator builds a synthetic trace generator.
	NewGenerator = gen.New
	// GeneratorConfig returns the paper-shaped generator config at a scale.
	GeneratorConfig = gen.DefaultConfig
	// EpochOf returns the epoch containing a time instant.
	EpochOf = telco.EpochOf
	// NewTimeRange builds a normalized time range.
	NewTimeRange = telco.NewTimeRange
	// NewRect builds a normalized rectangle.
	NewRect = geo.NewRect
	// LookupCodec resolves a registered codec by name
	// ("gzip", "sevenz", "snappy", "zstd").
	LookupCodec = compress.Lookup
	// CodecNames lists the registered codecs.
	CodecNames = compress.Names
)

// Index levels (temporal resolutions).
const (
	LevelRoot  = index.LevelRoot
	LevelYear  = index.LevelYear
	LevelMonth = index.LevelMonth
	LevelDay   = index.LevelDay
	LevelEpoch = index.LevelEpoch
)

// EpochDuration is the ingestion cycle length (30 minutes).
const EpochDuration = telco.EpochDuration

// --- multi-node sharding (internal/cluster) ---

// Coordinator fronts a sharded multi-node SPATE deployment: it routes
// ingests to the replica group owning each epoch and scatters exploration
// queries across shards, gathering mergeable summary parts with per-shard
// deadlines, bounded retries and hedged replica reads. Shards that stay
// unreachable degrade the answer (ClusterResult.Partial + Missing) instead
// of failing it.
type Coordinator = cluster.Coordinator

// ShardConfig parameterizes a sharded deployment's topology and the
// coordinator's retry/hedging/deadline policies.
type ShardConfig = cluster.Config

// ShardMap assigns epochs to time shards (block round-robin) and cells to
// spatial bands.
type ShardMap = cluster.ShardMap

// ClusterNode serves one shard engine over the cluster RPC surface
// (/rpc/ingest, /rpc/explore, /rpc/finish, /rpc/health).
type ClusterNode = cluster.Node

// ClusterResult is a scatter-gathered exploration answer, including the
// partial-failure contract.
type ClusterResult = cluster.Result

// LocalCluster is an in-process multi-node cluster (loopback HTTP), for
// tests and the spate-server -cluster mode.
type LocalCluster = cluster.Local

// LocalClusterOptions tunes an in-process cluster.
type LocalClusterOptions = cluster.LocalOptions

// Re-exported cluster constructors.
var (
	// NewCoordinator wires a coordinator over slot-major node URL groups.
	NewCoordinator = cluster.NewCoordinator
	// NewShardMap derives the partitioning function of a shard config.
	NewShardMap = cluster.NewShardMap
	// NewClusterNode wraps an engine with the cluster RPC surface.
	NewClusterNode = cluster.NewNode
	// StartLocalCluster boots a full cluster in-process.
	StartLocalCluster = cluster.StartLocal
)

// --- SPATE-SQL (declarative exploration, paper §VI-B) ---

// SQLEngine executes SELECT statements against a SPATE store.
type SQLEngine = sqlengine.Engine

// SQLResult is a materialized SQL answer.
type SQLResult = sqlengine.ResultSet

// NewSQL returns a SPATE-SQL engine over an ingested store; statements
// scan the compressed representation with timestamp pushdown into the
// temporal index.
func NewSQL(e *Engine) *SQLEngine {
	return sqlengine.NewEngine(tasks.Catalog(tasks.Spate{E: e}))
}

// --- observability (internal/obs) ---

// MetricsRegistry is a set of named counters, gauges and histograms.
// Every SPATE subsystem reports into Obs (the process-wide default) unless
// an engine or cluster is configured with its own registry.
type MetricsRegistry = obs.Registry

// Metric is one metric family in a metrics snapshot.
type Metric = obs.Metric

// Stage is one named step of a request's per-stage timing breakdown
// (IngestReport.Stages, Result.Stages).
type Stage = obs.Stage

// Tracer retains recent request span trees.
type Tracer = obs.Tracer

// Obs is the process-wide metrics registry — scrape it programmatically
// via MetricsSnapshot, over HTTP at GET /metrics (Prometheus text) or
// GET /api/stats (JSON) on a spate-server.
var Obs = obs.Default

// Traces is the process-wide request tracer behind GET /api/trace.
var Traces = obs.DefaultTracer

// MetricsSnapshot returns a point-in-time copy of every metric in Obs.
func MetricsSnapshot() []Metric { return obs.Default.Snapshot() }

// WriteMetrics renders Obs in the Prometheus text exposition format.
func WriteMetrics(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// NewMetricsRegistry returns an empty registry, for embedders that want
// per-engine isolation (Options.Obs / ClusterConfig.Obs).
var NewMetricsRegistry = obs.NewRegistry

// NewNoopMetrics returns a registry that discards every update — it
// disables all instrumentation on the engine or cluster it is given to.
var NewNoopMetrics = obs.NewNoop

// --- decay fungi (paper §V-C) ---

// EvictOldestIndividuals is the paper's data fungus: aged entries decay
// individually, oldest first.
type EvictOldestIndividuals = decay.EvictOldestIndividuals

// EvictGroupedIndividuals decays whole-day groups at once.
type EvictGroupedIndividuals = decay.EvictGroupedIndividuals

// --- privacy-aware data sharing (paper task T5) ---

// PrivacyOptions configures k-anonymization.
type PrivacyOptions = privacy.Options

// PrivacyReport summarizes an anonymization run.
type PrivacyReport = privacy.Report

// Re-exported privacy functions.
var (
	// Anonymize releases a k-anonymized copy of a table.
	Anonymize = privacy.Anonymize
	// VerifyK checks the k-anonymity property of a released table.
	VerifyK = privacy.VerifyK
)

// --- parallel analytics (paper tasks T6-T8) ---

// Pool is a data-parallel worker pool.
type Pool = compute.Pool

// ColStats are the column-wise multivariate statistics of task T6.
type ColStats = ml.ColStats

// KMeansResult is a clustering outcome (task T7).
type KMeansResult = ml.KMeansResult

// LinReg is a fitted linear model (task T8).
type LinReg = ml.LinReg

// Re-exported analytics functions.
var (
	// NewPool creates a worker pool (n <= 0 selects GOMAXPROCS).
	NewPool = compute.NewPool
	// ColStatsOf computes per-column statistics in parallel.
	ColStatsOf = ml.ColStatsOf
	// KMeans clusters points with parallel Lloyd iterations.
	KMeans = ml.KMeans
	// LinearRegression fits ordinary least squares in parallel.
	LinearRegression = ml.LinearRegression
)
