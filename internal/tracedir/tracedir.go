// Package tracedir reads and writes telco traces as directory trees of
// plain-text snapshot files — the on-disk interchange format between the
// spate-gen, spate-ingest and spate-sql tools, mimicking how real network
// logs land on a collection server ("horizontally segmented files every 30
// minutes", paper §II-B):
//
//	<root>/CELL                   static cell inventory
//	<root>/<epoch>/CDR            one CDR batch per 30-min epoch
//	<root>/<epoch>/NMS            one NMS batch per epoch
package tracedir

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"spate/internal/gen"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// Write materializes days of a generated trace under root.
func Write(root string, g *gen.Generator, days int) (epochs int, err error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return 0, fmt.Errorf("tracedir: %w", err)
	}
	if err := writeTable(filepath.Join(root, "CELL"), g.CellTable()); err != nil {
		return 0, err
	}
	e0 := telco.EpochOf(g.Config().Start)
	n := days * telco.EpochsPerDay
	for i := 0; i < n; i++ {
		e := e0 + telco.Epoch(i)
		dir := filepath.Join(root, e.String())
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return i, fmt.Errorf("tracedir: %w", err)
		}
		if err := writeTable(filepath.Join(dir, "CDR"), g.CDRTable(e)); err != nil {
			return i, err
		}
		if err := writeTable(filepath.Join(dir, "NMS"), g.NMSTable(e)); err != nil {
			return i, err
		}
	}
	return n, nil
}

func writeTable(path string, t *telco.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tracedir: %w", err)
	}
	defer f.Close()
	if err := t.WriteText(f); err != nil {
		return fmt.Errorf("tracedir: write %s: %w", path, err)
	}
	return f.Close()
}

// ReadCells loads the trace's CELL inventory.
func ReadCells(root string) (*telco.Table, error) {
	return readTable(filepath.Join(root, "CELL"), "CELL")
}

func readTable(path, schema string) (*telco.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tracedir: %w", err)
	}
	defer f.Close()
	t, err := telco.ReadTable(telco.SchemaByName(schema), f)
	if err != nil {
		return nil, fmt.Errorf("tracedir: %s: %w", path, err)
	}
	return t, nil
}

// Epochs lists the trace's snapshot epochs in order.
func Epochs(root string) ([]telco.Epoch, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("tracedir: %w", err)
	}
	var out []telco.Epoch
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		t, err := time.ParseInLocation(telco.TimeLayout, e.Name(), time.UTC)
		if err != nil {
			continue // not an epoch directory
		}
		out = append(out, telco.EpochOf(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ReadSnapshot loads one epoch's snapshot (all table files present).
func ReadSnapshot(root string, e telco.Epoch) (*snapshot.Snapshot, error) {
	dir := filepath.Join(root, e.String())
	sn := snapshot.New(e)
	for _, name := range []string{"CDR", "NMS"} {
		path := filepath.Join(dir, name)
		if _, err := os.Stat(path); err != nil {
			continue // table absent for this epoch
		}
		t, err := readTable(path, name)
		if err != nil {
			return nil, err
		}
		sn.Add(t)
	}
	if len(sn.TableNames()) == 0 {
		return nil, fmt.Errorf("tracedir: epoch %s has no tables", e)
	}
	return sn, nil
}
