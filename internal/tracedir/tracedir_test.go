package tracedir

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"spate/internal/gen"
	"spate/internal/telco"
)

func smallGen() *gen.Generator {
	cfg := gen.DefaultConfig(0.002)
	cfg.Antennas = 10
	cfg.Users = 50
	cfg.CDRPerEpoch = 20
	cfg.NMSReportsPerCell = 0.5
	return gen.New(cfg)
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := smallGen()
	root := t.TempDir()
	n, err := Write(root, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n != telco.EpochsPerDay {
		t.Fatalf("wrote %d epochs", n)
	}
	cells, err := ReadCells(root)
	if err != nil {
		t.Fatal(err)
	}
	if cells.Len() != len(g.Cells()) {
		t.Errorf("cells = %d, want %d", cells.Len(), len(g.Cells()))
	}
	epochs, err := Epochs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != n {
		t.Fatalf("epochs = %d", len(epochs))
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatal("epochs out of order")
		}
	}
	sn, err := ReadSnapshot(root, epochs[18]) // 09:00
	if err != nil {
		t.Fatal(err)
	}
	want := g.CDRTable(epochs[18]).Len()
	if got := sn.Table("CDR").Len(); got != want {
		t.Errorf("CDR rows = %d, want %d", got, want)
	}
	if sn.Table("NMS") == nil {
		t.Error("NMS table missing")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadCells(t.TempDir()); err == nil {
		t.Error("missing CELL accepted")
	}
	if _, err := Epochs(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing root accepted")
	}
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "20160118000000"), 0o755); err != nil {
		t.Fatal(err)
	}
	e := telco.EpochOf(time.Date(2016, 1, 18, 0, 0, 0, 0, time.UTC))
	if _, err := ReadSnapshot(root, e); err == nil {
		t.Error("empty epoch dir accepted")
	}
}

func TestEpochsIgnoresStrayEntries(t *testing.T) {
	g := smallGen()
	root := t.TempDir()
	if _, err := Write(root, g, 1); err != nil {
		t.Fatal(err)
	}
	// CELL file and a stray directory must not be parsed as epochs.
	if err := os.MkdirAll(filepath.Join(root, "notes"), 0o755); err != nil {
		t.Fatal(err)
	}
	epochs, err := Epochs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != telco.EpochsPerDay {
		t.Errorf("epochs = %d", len(epochs))
	}
}
