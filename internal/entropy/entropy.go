// Package entropy computes Shannon entropy of telco attributes, reproducing
// the analysis behind Figure 4 of the SPATE paper: per Shannon's source
// coding theorem the entropy H = -sum p_i log2 p_i of an attribute bounds
// its achievable compression, and the paper's headline observation is that
// most CDR attributes have H < 1 bit (many exactly 0), which is why high
// compression ratios are achievable on telco big data.
package entropy

import (
	"math"

	"spate/internal/telco"
)

// OfStrings computes the Shannon entropy in bits of the empirical value
// distribution of a string sample. An empty sample has entropy 0.
func OfStrings(values []string) float64 {
	if len(values) == 0 {
		return 0
	}
	counts := make(map[string]int, 64)
	for _, v := range values {
		counts[v]++
	}
	return fromCounts(counts, len(values))
}

// OfValues computes attribute entropy over typed values using their wire
// form, so that blank optional attributes count as one symbol exactly as
// they would in the trace file.
func OfValues(values []telco.Value) float64 {
	if len(values) == 0 {
		return 0
	}
	counts := make(map[string]int, 64)
	for _, v := range values {
		counts[v.Format()]++
	}
	return fromCounts(counts, len(values))
}

// OfBytes computes the per-symbol (byte-level) entropy of raw data — the
// quantity that bounds the compression ratio of a byte-oriented codec.
func OfBytes(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	h := 0.0
	n := float64(len(data))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

func fromCounts(counts map[string]int, n int) float64 {
	h := 0.0
	fn := float64(n)
	for _, c := range counts {
		p := float64(c) / fn
		h -= p * math.Log2(p)
	}
	// -0 guard: a single-symbol distribution must report exactly 0.
	if h < 0 {
		h = 0
	}
	return h
}

// AttributeEntropy is the entropy of one attribute of a table.
type AttributeEntropy struct {
	Attr string
	Bits float64
}

// OfTable computes the entropy of every attribute of a table, in schema
// order — one Figure 4 panel.
func OfTable(t *telco.Table) []AttributeEntropy {
	out := make([]AttributeEntropy, t.Schema.NumFields())
	for i, f := range t.Schema.Fields {
		col := make([]telco.Value, len(t.Rows))
		for j, r := range t.Rows {
			col[j] = r[i]
		}
		out[i] = AttributeEntropy{Attr: f.Name, Bits: OfValues(col)}
	}
	return out
}

// Summary aggregates a Figure 4 panel for reporting.
type Summary struct {
	Attrs     int
	Zero      int // attributes with entropy exactly 0
	BelowOne  int // attributes with entropy < 1 bit
	Max, Mean float64
}

// Summarize reduces per-attribute entropies to the quantities the paper
// calls out ("most attributes have an entropy smaller than 1 and some even
// have an entropy of 0").
func Summarize(es []AttributeEntropy) Summary {
	s := Summary{Attrs: len(es)}
	for _, e := range es {
		if e.Bits == 0 {
			s.Zero++
		}
		if e.Bits < 1 {
			s.BelowOne++
		}
		if e.Bits > s.Max {
			s.Max = e.Bits
		}
		s.Mean += e.Bits
	}
	if s.Attrs > 0 {
		s.Mean /= float64(s.Attrs)
	}
	return s
}
