package entropy

import (
	"math"
	"testing"
	"testing/quick"

	"spate/internal/telco"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestOfStrings(t *testing.T) {
	tests := []struct {
		name string
		in   []string
		want float64
	}{
		{"empty", nil, 0},
		{"single symbol", []string{"a", "a", "a"}, 0},
		{"uniform binary", []string{"a", "b"}, 1},
		{"uniform quaternary", []string{"a", "b", "c", "d"}, 2},
		{"skewed", []string{"a", "a", "a", "b"}, 0.8112781244591328},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := OfStrings(tc.in); !almostEqual(got, tc.want) {
				t.Errorf("OfStrings = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestOfValuesBlanksCountAsSymbol(t *testing.T) {
	vals := []telco.Value{telco.Null, telco.Null, telco.String("x"), telco.String("x")}
	if got := OfValues(vals); !almostEqual(got, 1) {
		t.Errorf("entropy with nulls = %v, want 1", got)
	}
}

func TestOfBytes(t *testing.T) {
	if got := OfBytes(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := OfBytes([]byte{7, 7, 7}); got != 0 {
		t.Errorf("constant = %v", got)
	}
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	if got := OfBytes(all); !almostEqual(got, 8) {
		t.Errorf("uniform bytes = %v, want 8", got)
	}
}

func TestEntropyBounds(t *testing.T) {
	// 0 <= H <= log2(distinct symbols), for arbitrary samples.
	f := func(xs []uint8) bool {
		ss := make([]string, len(xs))
		distinct := map[uint8]bool{}
		for i, x := range xs {
			ss[i] = string(rune('a' + x%26))
			distinct[x%26] = true
		}
		h := OfStrings(ss)
		if h < 0 {
			return false
		}
		if len(distinct) > 0 && h > math.Log2(float64(len(distinct)))+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOfTableAndSummarize(t *testing.T) {
	s := telco.MustSchema("X", []telco.Field{
		{Name: "const", Kind: telco.KindString},
		{Name: "vary", Kind: telco.KindInt},
	})
	tab := telco.NewTable(s)
	for i := 0; i < 8; i++ {
		tab.Append(telco.Record{telco.String("k"), telco.Int(int64(i))})
	}
	es := OfTable(tab)
	if len(es) != 2 {
		t.Fatalf("len = %d", len(es))
	}
	if es[0].Bits != 0 {
		t.Errorf("const attr entropy = %v, want 0", es[0].Bits)
	}
	if !almostEqual(es[1].Bits, 3) {
		t.Errorf("vary attr entropy = %v, want 3", es[1].Bits)
	}
	sum := Summarize(es)
	if sum.Zero != 1 || sum.BelowOne != 1 || !almostEqual(sum.Max, 3) || sum.Attrs != 2 {
		t.Errorf("Summarize = %+v", sum)
	}
	if !almostEqual(sum.Mean, 1.5) {
		t.Errorf("Mean = %v, want 1.5", sum.Mean)
	}
}
