// Package highlights implements SPATE's highlights module (paper §V-B):
// materialized summaries of the underlying raw data computed for each
// internal node of the temporal index. Summaries behave like an OLAP cube
// whose construction cost is amortized over time — day summaries are built
// from snapshot data, month summaries from day summaries, year summaries
// from month summaries — and support the frequency-threshold highlight
// extraction the paper describes: values whose occurrence frequency falls
// below a per-level threshold θ are "highlights" (interesting rare events),
// reported with their type (categorical) or peaking point (continuous) and
// their duration.
package highlights

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"time"

	"spate/internal/telco"
)

// AttrRef names one attribute of one telco source table.
type AttrRef struct {
	Table string
	Attr  string
}

func (a AttrRef) String() string { return a.Table + "." + a.Attr }

// Config selects the attributes summarized into highlights — the
// "long-standing queries of users (e.g., the drop-call counters, bandwidth
// statistics)" the paper materializes.
type Config struct {
	Categorical []AttrRef
	Numeric     []AttrRef
	// CellAttrs are the numeric attributes additionally tracked per
	// spatial cell — the materialized per-cell counters a heatmap needs
	// (drop calls, bandwidth). Keeping this set small bounds the cube: a
	// summary costs O(cells x |CellAttrs|), which is the index-space term
	// S_i of the paper's storage objective.
	CellAttrs []AttrRef
	// MaxCatValues caps the tracked distinct values per categorical
	// attribute (default 512); beyond it, new values lump into an overflow
	// bucket so summaries stay bounded.
	MaxCatValues int
}

func (c Config) withDefaults() Config {
	if c.MaxCatValues <= 0 {
		c.MaxCatValues = 512
	}
	return c
}

// DefaultConfig summarizes the telco vitals driving the paper's example
// explorations: drop calls, call volumes and bandwidth.
func DefaultConfig() Config {
	return Config{
		Categorical: []AttrRef{
			{"CDR", telco.AttrCallType},
			{"CDR", telco.AttrResult},
		},
		Numeric: []AttrRef{
			{"CDR", telco.AttrDuration},
			{"CDR", telco.AttrUpflux},
			{"CDR", telco.AttrDownflux},
			{"NMS", "drop_calls"},
			{"NMS", "call_attempts"},
			{"NMS", "throughput_kbps"},
			{"NMS", "rssi_dbm"},
		},
		CellAttrs: []AttrRef{
			{"CDR", telco.AttrUpflux},
			{"CDR", telco.AttrDownflux},
			{"NMS", "drop_calls"},
			{"NMS", "rssi_dbm"},
		},
	}
}

// overflowValue lumps categorical values beyond MaxCatValues.
const overflowValue = "\x00other"

// Stats are mergeable aggregates of one numeric attribute.
type Stats struct {
	NonNull  int64
	Sum      float64
	SumSq    float64
	Min, Max float64
	PeakTime time.Time // when Max was observed
}

func (s *Stats) add(v float64, at time.Time) {
	if s.NonNull == 0 || v < s.Min {
		s.Min = v
	}
	if s.NonNull == 0 || v > s.Max {
		s.Max = v
		s.PeakTime = at
	}
	s.NonNull++
	s.Sum += v
	s.SumSq += v * v
}

// Merge folds another Stats value into s (exact, commutative).
func (s *Stats) Merge(o *Stats) { s.merge(o) }

func (s *Stats) merge(o *Stats) {
	if o.NonNull == 0 {
		return
	}
	if s.NonNull == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if s.NonNull == 0 || o.Max > s.Max {
		s.Max = o.Max
		s.PeakTime = o.PeakTime
	}
	s.NonNull += o.NonNull
	s.Sum += o.Sum
	s.SumSq += o.SumSq
}

// Mean returns the arithmetic mean (0 for empty stats).
func (s *Stats) Mean() float64 {
	if s.NonNull == 0 {
		return 0
	}
	return s.Sum / float64(s.NonNull)
}

// StdDev returns the population standard deviation.
func (s *Stats) StdDev() float64 {
	if s.NonNull == 0 {
		return 0
	}
	m := s.Mean()
	v := s.SumSq/float64(s.NonNull) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// ValStat tracks one categorical value's occurrences and observed lifespan
// (the highlight "duration").
type ValStat struct {
	Count       int64
	First, Last time.Time
}

func (v *ValStat) add(at time.Time) {
	if v.Count == 0 || at.Before(v.First) {
		v.First = at
	}
	if v.Count == 0 || at.After(v.Last) {
		v.Last = at
	}
	v.Count++
}

func (v *ValStat) merge(o *ValStat) {
	if o.Count == 0 {
		return
	}
	if v.Count == 0 || o.First.Before(v.First) {
		v.First = o.First
	}
	if v.Count == 0 || o.Last.After(v.Last) {
		v.Last = o.Last
	}
	v.Count += o.Count
}

// CellStats aggregates per spatial cell.
type CellStats struct {
	Rows int64
	Num  map[AttrRef]*Stats
}

// Summary is the mergeable highlight cube of one temporal-index node.
type Summary struct {
	Period telco.TimeRange
	Rows   int64
	Num    map[AttrRef]*Stats
	Cat    map[AttrRef]map[string]*ValStat
	Cells  map[int64]*CellStats
}

// NewSummary returns an empty summary over the given period.
func NewSummary(period telco.TimeRange) *Summary {
	return &Summary{
		Period: period,
		Num:    make(map[AttrRef]*Stats),
		Cat:    make(map[AttrRef]map[string]*ValStat),
		Cells:  make(map[int64]*CellStats),
	}
}

// AddTable folds one snapshot table into the summary.
func (s *Summary) AddTable(cfg Config, t *telco.Table) {
	cfg = cfg.withDefaults()
	tsIdx := t.Schema.FieldIndex(telco.AttrTS)
	cellIdx := t.Schema.FieldIndex(telco.AttrCellID)
	type numCol struct {
		ref     AttrRef
		idx     int
		perCell bool
	}
	var numCols, catCols []numCol
	perCell := make(map[AttrRef]bool, len(cfg.CellAttrs))
	for _, ref := range cfg.CellAttrs {
		perCell[ref] = true
	}
	for _, ref := range cfg.Numeric {
		if ref.Table == t.Schema.Name {
			if i := t.Schema.FieldIndex(ref.Attr); i >= 0 {
				numCols = append(numCols, numCol{ref, i, perCell[ref]})
			}
		}
	}
	for _, ref := range cfg.Categorical {
		if ref.Table == t.Schema.Name {
			if i := t.Schema.FieldIndex(ref.Attr); i >= 0 {
				catCols = append(catCols, numCol{ref, i, false})
			}
		}
	}
	for _, row := range t.Rows {
		s.Rows++
		var at time.Time
		if tsIdx >= 0 && !row[tsIdx].IsNull() {
			at = row[tsIdx].Time()
		}
		var cell *CellStats
		if cellIdx >= 0 && !row[cellIdx].IsNull() {
			id := row[cellIdx].Int64()
			cell = s.Cells[id]
			if cell == nil {
				cell = &CellStats{Num: make(map[AttrRef]*Stats)}
				s.Cells[id] = cell
			}
			cell.Rows++
		}
		for _, c := range numCols {
			v := row[c.idx]
			if v.IsNull() {
				continue
			}
			f := v.Float64()
			st := s.Num[c.ref]
			if st == nil {
				st = &Stats{}
				s.Num[c.ref] = st
			}
			st.add(f, at)
			if cell != nil && c.perCell {
				cst := cell.Num[c.ref]
				if cst == nil {
					cst = &Stats{}
					cell.Num[c.ref] = cst
				}
				cst.add(f, at)
			}
		}
		for _, c := range catCols {
			v := row[c.idx]
			if v.IsNull() {
				continue
			}
			vals := s.Cat[c.ref]
			if vals == nil {
				vals = make(map[string]*ValStat)
				s.Cat[c.ref] = vals
			}
			key := v.Format()
			vs := vals[key]
			if vs == nil {
				if len(vals) >= cfg.MaxCatValues {
					key = overflowValue
					vs = vals[key]
				}
				if vs == nil {
					vs = &ValStat{}
					vals[key] = vs
				}
			}
			vs.add(at)
		}
	}
}

// Merge combines child summaries into a parent over period — the rollup
// step that builds month highlights from days and year highlights from
// months. Merging is exact: Merge(parts...) equals a direct build over the
// concatenated underlying data.
func Merge(period telco.TimeRange, parts ...*Summary) *Summary {
	out := NewSummary(period)
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Rows += p.Rows
		for ref, st := range p.Num {
			dst := out.Num[ref]
			if dst == nil {
				dst = &Stats{}
				out.Num[ref] = dst
			}
			dst.merge(st)
		}
		for ref, vals := range p.Cat {
			dst := out.Cat[ref]
			if dst == nil {
				dst = make(map[string]*ValStat, len(vals))
				out.Cat[ref] = dst
			}
			for v, vs := range vals {
				d := dst[v]
				if d == nil {
					d = &ValStat{}
					dst[v] = d
				}
				d.merge(vs)
			}
		}
		for id, cs := range p.Cells {
			dst := out.Cells[id]
			if dst == nil {
				dst = &CellStats{Num: make(map[AttrRef]*Stats, len(cs.Num))}
				out.Cells[id] = dst
			}
			dst.Rows += cs.Rows
			for ref, st := range cs.Num {
				d := dst.Num[ref]
				if d == nil {
					d = &Stats{}
					dst.Num[ref] = d
				}
				d.merge(st)
			}
		}
	}
	return out
}

// Restrict filters the summary to the cells accepted by keep, rebuilding
// the window-level numeric aggregates from the per-cell breakdown (so the
// restricted Num carries the per-cell tracked attributes). Categorical
// counts are not cell-resolved (bounded-size cube) and carry through at
// window level. A nil keep returns the summary unchanged. Both the engine's
// spatial restriction and the cluster coordinator's post-merge restriction
// share this path.
func (s *Summary) Restrict(keep func(int64) bool) *Summary {
	if keep == nil {
		return s
	}
	out := NewSummary(s.Period)
	// Fold cells in id order: float accumulation order then matches across
	// runs and engines, so restricted summaries compare bit for bit.
	ids := make([]int64, 0, len(s.Cells))
	for id := range s.Cells {
		if keep(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cs := s.Cells[id]
		out.Rows += cs.Rows
		dst := &CellStats{Rows: cs.Rows, Num: cs.Num}
		out.Cells[id] = dst
		for ref, st := range cs.Num {
			agg := out.Num[ref]
			if agg == nil {
				agg = &Stats{}
				out.Num[ref] = agg
			}
			agg.Merge(st)
		}
	}
	out.Cat = s.Cat
	return out
}

// Kind distinguishes highlight shapes.
type Kind int

// Highlight kinds: a rare categorical value, or a numeric peaking point.
const (
	Categorical Kind = iota
	Peak
)

// Highlight is one interesting event summary (paper §V-B): a value whose
// occurrence frequency is below θ, described by its type or peaking point
// and its duration.
type Highlight struct {
	Attr      AttrRef
	Kind      Kind
	Value     string  // rare categorical value (Categorical)
	Count     int64   // occurrences of the value
	Frequency float64 // relative occurrence frequency
	PeakValue float64 // numeric peak (Peak)
	PeakTime  time.Time
	Start     time.Time // highlight duration
	End       time.Time
}

// peakZ is the z-score beyond which a numeric maximum counts as a peaking
// point worth reporting.
const peakZ = 3.0

// Extract computes the highlights of a summary under frequency threshold
// theta: categorical values with relative frequency < theta, and numeric
// attributes whose maximum deviates from the mean by more than 3 standard
// deviations. Results are ordered by attribute then value for determinism.
func (s *Summary) Extract(theta float64) []Highlight {
	var out []Highlight
	for ref, vals := range s.Cat {
		var total int64
		for _, vs := range vals {
			total += vs.Count
		}
		if total == 0 {
			continue
		}
		for v, vs := range vals {
			if v == overflowValue {
				continue
			}
			freq := float64(vs.Count) / float64(total)
			if freq < theta {
				out = append(out, Highlight{
					Attr: ref, Kind: Categorical, Value: v,
					Count: vs.Count, Frequency: freq,
					Start: vs.First, End: vs.Last,
				})
			}
		}
	}
	for ref, st := range s.Num {
		if st.NonNull < 2 {
			continue
		}
		sd := st.StdDev()
		if sd == 0 {
			continue
		}
		if (st.Max-st.Mean())/sd > peakZ {
			out = append(out, Highlight{
				Attr: ref, Kind: Peak,
				PeakValue: st.Max, PeakTime: st.PeakTime,
				Start: s.Period.From, End: s.Period.To,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr.String() < out[j].Attr.String()
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// SizeHint estimates the summary's in-memory footprint in bytes, used by
// storage accounting (index space S_i in the paper's O1 = S/(Sc+Si)).
func (s *Summary) SizeHint() int64 {
	var n int64 = 64
	n += int64(len(s.Num)) * 96
	for _, vals := range s.Cat {
		n += int64(len(vals)) * 80
	}
	for _, cs := range s.Cells {
		n += 32 + int64(len(cs.Num))*96
	}
	return n
}

// Encode serializes the summary (gob) for persistence in the index layer.
func (s *Summary) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("highlights: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a summary produced by Encode.
func Decode(data []byte) (*Summary, error) {
	var s Summary
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("highlights: decode: %w", err)
	}
	return &s, nil
}
