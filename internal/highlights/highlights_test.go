package highlights

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"spate/internal/telco"
)

var testSchema = telco.MustSchema("CDR", []telco.Field{
	{Name: "ts", Kind: telco.KindTime},
	{Name: "cell_id", Kind: telco.KindInt},
	{Name: "call_type", Kind: telco.KindString},
	{Name: "duration", Kind: telco.KindInt},
})

func testConfig() Config {
	return Config{
		Categorical: []AttrRef{{"CDR", "call_type"}},
		Numeric:     []AttrRef{{"CDR", "duration"}},
		CellAttrs:   []AttrRef{{"CDR", "duration"}},
	}
}

func mkTable(rows ...telco.Record) *telco.Table {
	t := telco.NewTable(testSchema)
	for _, r := range rows {
		t.Append(r)
	}
	return t
}

func rec(at time.Time, cell int64, typ string, dur int64) telco.Record {
	return telco.Record{telco.Time(at), telco.Int(cell), telco.String(typ), telco.Int(dur)}
}

var t0 = time.Date(2016, 1, 18, 0, 0, 0, 0, time.UTC)

func TestAddTableAggregates(t *testing.T) {
	s := NewSummary(telco.NewTimeRange(t0, t0.Add(time.Hour)))
	s.AddTable(testConfig(), mkTable(
		rec(t0, 1, "VOICE", 60),
		rec(t0.Add(time.Minute), 1, "VOICE", 120),
		rec(t0.Add(2*time.Minute), 2, "SMS", 0),
	))
	if s.Rows != 3 {
		t.Errorf("Rows = %d", s.Rows)
	}
	dur := s.Num[AttrRef{"CDR", "duration"}]
	if dur == nil || dur.NonNull != 3 || dur.Sum != 180 || dur.Min != 0 || dur.Max != 120 {
		t.Errorf("duration stats = %+v", dur)
	}
	if got := dur.Mean(); got != 60 {
		t.Errorf("Mean = %v", got)
	}
	if dur.PeakTime != t0.Add(time.Minute) {
		t.Errorf("PeakTime = %v", dur.PeakTime)
	}
	ct := s.Cat[AttrRef{"CDR", "call_type"}]
	if ct["VOICE"].Count != 2 || ct["SMS"].Count != 1 {
		t.Errorf("cat counts = %+v", ct)
	}
	if len(s.Cells) != 2 || s.Cells[1].Rows != 2 || s.Cells[2].Rows != 1 {
		t.Errorf("cells = %+v", s.Cells)
	}
	if s.Cells[1].Num[AttrRef{"CDR", "duration"}].Sum != 180 {
		t.Errorf("cell 1 duration sum wrong")
	}
}

func TestNullsAreSkipped(t *testing.T) {
	s := NewSummary(telco.NewTimeRange(t0, t0.Add(time.Hour)))
	s.AddTable(testConfig(), mkTable(
		telco.Record{telco.Time(t0), telco.Null, telco.Null, telco.Null},
	))
	if s.Rows != 1 {
		t.Errorf("Rows = %d", s.Rows)
	}
	if st := s.Num[AttrRef{"CDR", "duration"}]; st != nil && st.NonNull != 0 {
		t.Errorf("null duration counted: %+v", st)
	}
	if len(s.Cells) != 0 {
		t.Error("null cell created an entry")
	}
}

// TestMergeEqualsDirect is the rollup correctness property the whole
// highlights cube rests on: merging child summaries must equal building
// one summary over the concatenated data.
func TestMergeEqualsDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	types := []string{"VOICE", "SMS", "DATA", "MMS", "RARE"}
	mk := func(n int, base time.Time) *telco.Table {
		tab := telco.NewTable(testSchema)
		for i := 0; i < n; i++ {
			tab.Append(rec(
				base.Add(time.Duration(rng.Intn(3600))*time.Second),
				int64(rng.Intn(5)+1),
				types[rng.Intn(len(types))],
				int64(rng.Intn(600)),
			))
		}
		return tab
	}
	period := telco.NewTimeRange(t0, t0.Add(3*time.Hour))
	tables := []*telco.Table{mk(50, t0), mk(80, t0.Add(time.Hour)), mk(30, t0.Add(2*time.Hour))}

	var parts []*Summary
	for i, tab := range tables {
		p := NewSummary(telco.NewTimeRange(t0.Add(time.Duration(i)*time.Hour), t0.Add(time.Duration(i+1)*time.Hour)))
		p.AddTable(testConfig(), tab)
		parts = append(parts, p)
	}
	merged := Merge(period, parts...)

	direct := NewSummary(period)
	for _, tab := range tables {
		direct.AddTable(testConfig(), tab)
	}

	if merged.Rows != direct.Rows {
		t.Fatalf("Rows: merged %d, direct %d", merged.Rows, direct.Rows)
	}
	for ref, d := range direct.Num {
		m := merged.Num[ref]
		if m == nil {
			t.Fatalf("merged missing %v", ref)
		}
		if m.NonNull != d.NonNull || m.Min != d.Min || m.Max != d.Max ||
			math.Abs(m.Sum-d.Sum) > 1e-9 || math.Abs(m.SumSq-d.SumSq) > 1e-6 ||
			!m.PeakTime.Equal(d.PeakTime) {
			t.Errorf("%v: merged %+v != direct %+v", ref, m, d)
		}
	}
	for ref, dv := range direct.Cat {
		mv := merged.Cat[ref]
		if len(mv) != len(dv) {
			t.Fatalf("%v: %d values vs %d", ref, len(mv), len(dv))
		}
		for v, ds := range dv {
			ms := mv[v]
			if ms == nil || ms.Count != ds.Count || !ms.First.Equal(ds.First) || !ms.Last.Equal(ds.Last) {
				t.Errorf("%v=%q: merged %+v != direct %+v", ref, v, ms, ds)
			}
		}
	}
	if len(merged.Cells) != len(direct.Cells) {
		t.Fatalf("cells: %d vs %d", len(merged.Cells), len(direct.Cells))
	}
	for id, dc := range direct.Cells {
		mc := merged.Cells[id]
		if mc == nil || mc.Rows != dc.Rows {
			t.Errorf("cell %d rows mismatch", id)
		}
	}
}

func TestMergeIgnoresNil(t *testing.T) {
	p := NewSummary(telco.NewTimeRange(t0, t0.Add(time.Hour)))
	p.AddTable(testConfig(), mkTable(rec(t0, 1, "VOICE", 10)))
	m := Merge(p.Period, nil, p, nil)
	if m.Rows != 1 {
		t.Errorf("Rows = %d", m.Rows)
	}
}

func TestExtractCategoricalHighlights(t *testing.T) {
	s := NewSummary(telco.NewTimeRange(t0, t0.Add(time.Hour)))
	rows := make([]telco.Record, 0, 100)
	for i := 0; i < 97; i++ {
		rows = append(rows, rec(t0.Add(time.Duration(i)*time.Second), 1, "VOICE", 60))
	}
	// 3 rare EMERGENCY calls.
	for i := 0; i < 3; i++ {
		rows = append(rows, rec(t0.Add(time.Duration(30+i)*time.Minute), 2, "EMERGENCY", 60))
	}
	s.AddTable(testConfig(), mkTable(rows...))
	hs := s.Extract(0.10)
	var found *Highlight
	for i := range hs {
		if hs[i].Kind == Categorical && hs[i].Value == "EMERGENCY" {
			found = &hs[i]
		}
		if hs[i].Kind == Categorical && hs[i].Value == "VOICE" {
			t.Error("frequent value VOICE reported as highlight")
		}
	}
	if found == nil {
		t.Fatal("rare value EMERGENCY not reported")
	}
	if found.Count != 3 || found.Frequency != 0.03 {
		t.Errorf("highlight = %+v", found)
	}
	if !found.Start.Equal(t0.Add(30*time.Minute)) || !found.End.Equal(t0.Add(32*time.Minute)) {
		t.Errorf("duration = %v..%v", found.Start, found.End)
	}
	// With a tiny theta nothing is rare.
	if hs := s.Extract(0.001); len(extractCat(hs)) != 0 {
		t.Errorf("theta=0.001 still yields categorical highlights: %+v", hs)
	}
}

func extractCat(hs []Highlight) []Highlight {
	var out []Highlight
	for _, h := range hs {
		if h.Kind == Categorical {
			out = append(out, h)
		}
	}
	return out
}

func TestExtractPeakHighlights(t *testing.T) {
	s := NewSummary(telco.NewTimeRange(t0, t0.Add(time.Hour)))
	rows := make([]telco.Record, 0, 101)
	for i := 0; i < 100; i++ {
		rows = append(rows, rec(t0, 1, "VOICE", int64(60+i%5)))
	}
	peakAt := t0.Add(42 * time.Minute)
	rows = append(rows, rec(peakAt, 1, "VOICE", 100000))
	s.AddTable(testConfig(), mkTable(rows...))
	hs := s.Extract(0.0) // theta 0: no categorical highlights, peak only
	var peak *Highlight
	for i := range hs {
		if hs[i].Kind == Peak {
			peak = &hs[i]
		}
	}
	if peak == nil {
		t.Fatal("peak not detected")
	}
	if peak.PeakValue != 100000 || !peak.PeakTime.Equal(peakAt) {
		t.Errorf("peak = %+v", peak)
	}
	// Uniform data has no peaks.
	s2 := NewSummary(s.Period)
	s2.AddTable(testConfig(), mkTable(rec(t0, 1, "VOICE", 60), rec(t0, 1, "VOICE", 61)))
	for _, h := range s2.Extract(0) {
		if h.Kind == Peak {
			t.Error("uniform data produced a peak highlight")
		}
	}
}

func TestCatOverflowBucket(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCatValues = 4
	s := NewSummary(telco.NewTimeRange(t0, t0.Add(time.Hour)))
	tab := telco.NewTable(testSchema)
	for i := 0; i < 20; i++ {
		tab.Append(rec(t0, 1, string(rune('A'+i)), 1))
	}
	s.AddTable(cfg, tab)
	vals := s.Cat[AttrRef{"CDR", "call_type"}]
	if len(vals) > 5 { // 4 tracked + overflow
		t.Errorf("tracked %d values, cap is 4+overflow", len(vals))
	}
	var total int64
	for _, vs := range vals {
		total += vs.Count
	}
	if total != 20 {
		t.Errorf("counts lost in overflow: %d", total)
	}
	// Overflow bucket must never be reported as a highlight value.
	for _, h := range s.Extract(0.9) {
		if h.Value == overflowValue {
			t.Error("overflow bucket surfaced as highlight")
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSummary(telco.NewTimeRange(t0, t0.Add(time.Hour)))
	s.AddTable(testConfig(), mkTable(
		rec(t0, 1, "VOICE", 60),
		rec(t0.Add(time.Minute), 2, "SMS", 0),
	))
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != s.Rows || len(got.Cells) != len(s.Cells) || len(got.Cat) != len(s.Cat) {
		t.Errorf("decoded = %+v", got)
	}
	if _, err := Decode([]byte("garbage")); err == nil {
		t.Error("Decode(garbage) succeeded")
	}
}

func TestSizeHintGrowsWithContent(t *testing.T) {
	empty := NewSummary(telco.NewTimeRange(t0, t0.Add(time.Hour)))
	s := NewSummary(empty.Period)
	s.AddTable(testConfig(), mkTable(rec(t0, 1, "VOICE", 60), rec(t0, 2, "SMS", 30)))
	if s.SizeHint() <= empty.SizeHint() {
		t.Error("SizeHint did not grow with content")
	}
}

func TestStatsStdDev(t *testing.T) {
	var st Stats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		st.add(v, t0)
	}
	if got := st.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	var empty Stats
	if empty.StdDev() != 0 || empty.Mean() != 0 {
		t.Error("empty stats should be zero")
	}
}
