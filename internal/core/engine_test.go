package core

import (
	"testing"
	"time"

	"spate/internal/compress"
	_ "spate/internal/compress/all"
	"spate/internal/decay"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/geo"
	"spate/internal/highlights"
	"spate/internal/index"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// testRig is a small generated world plus an engine over a temp DFS.
type testRig struct {
	g   *gen.Generator
	e   *Engine
	fs  *dfs.Cluster
	cfg gen.Config
}

func newRig(t *testing.T, opts Options) *testRig {
	t.Helper()
	cfg := gen.DefaultConfig(0.004)
	cfg.Antennas = 30
	cfg.Users = 300
	cfg.CDRPerEpoch = 120
	cfg.NMSReportsPerCell = 0.8
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(fs, g.CellTable(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{g: g, e: e, fs: fs, cfg: cfg}
}

// ingestEpochs feeds n epochs starting at the config start time.
func (r *testRig) ingestEpochs(t *testing.T, n int) []IngestReport {
	t.Helper()
	e0 := telco.EpochOf(r.cfg.Start)
	reps := make([]IngestReport, 0, n)
	for i := 0; i < n; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(r.g.CDRTable(s.Epoch))
		s.Add(r.g.NMSTable(s.Epoch))
		rep, err := r.e.Ingest(s)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	return reps
}

func TestIngestStoresCompressedSnapshots(t *testing.T) {
	r := newRig(t, Options{})
	reps := r.ingestEpochs(t, 4)
	for _, rep := range reps {
		if rep.Rows == 0 || rep.RawBytes == 0 || rep.CompBytes == 0 {
			t.Fatalf("report = %+v", rep)
		}
		if rep.CompBytes >= rep.RawBytes {
			t.Errorf("no compression: %d >= %d", rep.CompBytes, rep.RawBytes)
		}
	}
	if r.e.Tree().Len() != 4 {
		t.Errorf("tree has %d leaves", r.e.Tree().Len())
	}
	files := r.fs.List("/spate/data/")
	if len(files) != 8 { // CDR+NMS per epoch
		t.Errorf("stored %d files, want 8", len(files))
	}
	sp := r.e.Space()
	if sp.O1 <= 0 {
		t.Errorf("O1 = %.2f", sp.O1)
	}
	if sp.CompBytes >= sp.RawBytes {
		t.Errorf("Sc %d >= S %d: storage layer did not compress", sp.CompBytes, sp.RawBytes)
	}
}

func TestIngestRejectsReplays(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 1)
	s := snapshot.New(telco.EpochOf(r.cfg.Start))
	s.Add(r.g.CDRTable(s.Epoch))
	if _, err := r.e.Ingest(s); err == nil {
		t.Error("replayed epoch accepted")
	}
}

func TestExploreAggregatesWholeRegion(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 6)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(3*time.Hour))
	res, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows == 0 {
		t.Fatal("empty summary")
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cell series")
	}
	if res.CoveringLevel != index.LevelDay {
		t.Errorf("covering level = %v, want day", res.CoveringLevel)
	}
	// Repeating the query hits the cache.
	res2, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.CacheHit {
		t.Error("second identical query missed cache")
	}
}

func TestExploreSpatialRestriction(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 4)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))
	all, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	// A box over a sub-region must see a subset of rows and cells.
	box := geo.NewRect(0, 0, 40, 38)
	sub, err := r.e.Explore(Query{Window: w, Box: box})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Summary.Rows == 0 || sub.Summary.Rows >= all.Summary.Rows {
		t.Errorf("box rows = %d vs all %d", sub.Summary.Rows, all.Summary.Rows)
	}
	for _, cs := range sub.Cells {
		if !box.Contains(cs.Loc) {
			t.Errorf("cell %d at %v outside box", cs.CellID, cs.Loc)
		}
	}
	// Empty box yields empty aggregates but not an error.
	far := geo.NewRect(1000, 1000, 1001, 1001)
	empty, err := r.e.Explore(Query{Window: w, Box: far})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Summary.Rows != 0 || len(empty.Cells) != 0 {
		t.Errorf("far box rows = %d", empty.Summary.Rows)
	}
}

func TestExploreExactRows(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 4)
	// Window cuts mid-epoch: rows outside it are filtered.
	w := telco.NewTimeRange(r.cfg.Start.Add(15*time.Minute), r.cfg.Start.Add(75*time.Minute))
	res, err := r.e.Explore(Query{Window: w, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}
	tab := res.Rows["CDR"]
	if tab == nil || tab.Len() == 0 {
		t.Fatal("no exact rows")
	}
	if res.Rows["NMS"] != nil {
		t.Error("table filter ignored")
	}
	for _, row := range tab.Rows {
		ts := row.Get(telco.CDRSchema, telco.AttrTS).Time()
		if !w.Contains(ts) {
			t.Fatalf("row ts %v outside window", ts)
		}
	}
	if res.ScannedLeaves == 0 {
		t.Error("no leaves scanned")
	}
}

func TestExploreExactRowsWithBox(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 2)
	box := geo.NewRect(0, 0, 40, 38)
	inBox := map[int64]bool{}
	for _, id := range r.e.CellsInBox(box) {
		inBox[id] = true
	}
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(time.Hour))
	res, err := r.e.Explore(Query{Window: w, Box: box, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows["CDR"].Rows {
		if !inBox[row.Get(telco.CDRSchema, telco.AttrCellID).Int64()] {
			t.Fatal("row outside box returned")
		}
	}
}

func TestLeafSpatialPruneSkipsIrrelevantSnapshots(t *testing.T) {
	r := newRig(t, Options{LeafSpatialPrune: true})
	r.ingestEpochs(t, 3)
	// A box containing no cells: every leaf prunes, nothing scanned.
	far := geo.NewRect(70, 70, 79, 74)
	if len(r.e.CellsInBox(far)) != 0 {
		t.Skip("random topology put a cell in the far corner")
	}
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(time.Hour))
	res, err := r.e.Explore(Query{Window: w, Box: far, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedLeaves == 0 || res.ScannedLeaves != 0 {
		t.Errorf("pruned=%d scanned=%d", res.PrunedLeaves, res.ScannedLeaves)
	}
}

func TestDayRollupSealsSummaries(t *testing.T) {
	r := newRig(t, Options{})
	reps := r.ingestEpochs(t, telco.EpochsPerDay+1)
	last := reps[len(reps)-1]
	if last.CompletedNodes != 1 {
		t.Fatalf("day rollover completed %d nodes", last.CompletedNodes)
	}
	days := r.e.Tree().NodesAtLevel(index.LevelDay)
	if days[0].Summary == nil {
		t.Fatal("completed day has no summary")
	}
	// The day summary equals the total rows ingested for that day.
	var want int64
	for _, rep := range reps[:telco.EpochsPerDay] {
		want += int64(rep.Rows)
	}
	if days[0].Summary.Rows != want {
		t.Errorf("day summary rows = %d, want %d", days[0].Summary.Rows, want)
	}
	// Sealed-day leaves drop their ephemeral summaries (paper keeps
	// highlights at day/month/year only).
	for _, l := range days[0].Children {
		if l.Summary != nil {
			t.Error("sealed-day leaf still carries a summary")
		}
	}
	// A sub-day window over the sealed day still answers by falling back
	// to the compressed data.
	w := telco.NewTimeRange(r.cfg.Start.Add(time.Hour), r.cfg.Start.Add(2*time.Hour))
	res, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows == 0 || res.ScannedLeaves == 0 {
		t.Errorf("sealed-day sub-window: rows=%d scanned=%d", res.Summary.Rows, res.ScannedLeaves)
	}
	// A window covering the whole day uses the day summary in O(1).
	dayW := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.AddDate(0, 0, 1))
	resDay, err := r.e.Explore(Query{Window: dayW})
	if err != nil {
		t.Fatal(err)
	}
	if resDay.ScannedLeaves != 0 {
		t.Errorf("full-day window scanned %d leaves instead of using the day summary", resDay.ScannedLeaves)
	}
	if resDay.Summary.Rows < want {
		t.Errorf("full-day rows = %d, want >= %d", resDay.Summary.Rows, want)
	}
}

func TestDecayFreesSpaceButKeepsAggregates(t *testing.T) {
	r := newRig(t, Options{
		Policy: decay.Policy{KeepRaw: 2 * time.Hour},
	})
	r.ingestEpochs(t, 10) // 5 hours
	sp := r.e.Space()
	st := r.e.Tree().Stats()
	if st.DecayedLeaves == 0 {
		t.Fatal("no leaves decayed under 2h policy after 5h of ingest")
	}
	// Physical storage excludes decayed snapshots.
	var files int
	for _, f := range r.fs.List("/spate/data/") {
		_ = f
		files++
	}
	if files >= 20 {
		t.Errorf("decay did not delete files: %d remain", files)
	}
	// Aggregate exploration over the decayed window still answers.
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(time.Hour))
	res, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows == 0 {
		t.Error("decayed window lost its aggregates")
	}
	if res.DecayedLeaves == 0 {
		t.Error("result does not mark decayed leaves")
	}
	// Exact rows over the decayed window are (partially) gone.
	resEx, err := r.e.Explore(Query{Window: w, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}
	if resEx.ScannedLeaves != 0 {
		t.Errorf("decayed leaves still scanned: %d", resEx.ScannedLeaves)
	}
	_ = sp
}

func TestDecayedSealedDayServesDaySummaryPrefetch(t *testing.T) {
	// A sub-day window over a sealed, fully decayed day must fall back to
	// the day summary (serving a larger period — the implicit prefetch).
	r := newRig(t, Options{Policy: decay.Policy{KeepRaw: 3 * time.Hour}})
	r.ingestEpochs(t, telco.EpochsPerDay+6) // day 1 sealed, decayed well past horizon
	w := telco.NewTimeRange(r.cfg.Start.Add(2*time.Hour), r.cfg.Start.Add(8*time.Hour))
	res, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows == 0 {
		t.Fatal("decayed sealed day lost aggregates for sub-day window")
	}
	// The served summary covers the whole day (prefetch), so it reports at
	// least the window's true rows.
	day := r.e.Tree().NodesAtLevel(index.LevelDay)[0]
	if res.Summary.Rows != day.Summary.Rows {
		t.Errorf("prefetch rows = %d, want day rows %d", res.Summary.Rows, day.Summary.Rows)
	}
}

func TestFinishIngestSealsOpenPeriods(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 3)
	r.e.FinishIngest()
	for _, l := range []index.Level{index.LevelDay, index.LevelMonth, index.LevelYear} {
		nodes := r.e.Tree().NodesAtLevel(l)
		if len(nodes) == 0 || nodes[len(nodes)-1].Summary == nil {
			t.Errorf("%v not sealed", l)
		}
	}
}

func TestDictionaryTrainingSwapsCodec(t *testing.T) {
	zc, err := compress.Lookup("zstd")
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, Options{Codec: zc, TrainDictionary: true, TrainAfter: 2})
	r.ingestEpochs(t, 4)
	if r.e.Codec().Name() != "zstd" {
		t.Fatalf("codec = %s", r.e.Codec().Name())
	}
	if !r.fs.Exists("/spate/meta/zstd-dict") {
		t.Error("trained dictionary not persisted")
	}
	// Old and new snapshots must both decode through exact-row queries.
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))
	res, err := r.e.Explore(Query{Window: w, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows["CDR"].Len() == 0 {
		t.Error("no rows across training boundary")
	}
}

func TestHighlightsSurfaceRareEvents(t *testing.T) {
	r := newRig(t, Options{Theta: map[index.Level]float64{
		index.LevelDay: 0.05, index.LevelEpoch: 0.05, index.LevelRoot: 0.05,
		index.LevelMonth: 0.05, index.LevelYear: 0.05,
	}})
	r.ingestEpochs(t, 4)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))
	res, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	// The generator makes DROP/FAIL results rare (<5%), so they surface.
	foundRare := false
	for _, h := range res.Highlights {
		if h.Kind == highlights.Categorical && (h.Value == "FAIL" || h.Value == "DROP" || h.Value == "BUSY") {
			foundRare = true
			if h.Frequency >= 0.05 {
				t.Errorf("highlight %q frequency %.3f above theta", h.Value, h.Frequency)
			}
		}
		if h.Value == "OK" {
			t.Error("dominant value OK reported as highlight")
		}
	}
	if !foundRare {
		t.Error("no rare call results surfaced as highlights")
	}
}

func TestFastPathServesCoveringSummary(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, telco.EpochsPerDay+2)
	r.e.FinishIngest()
	// Sub-day window over the sealed day: the fast path serves the whole
	// day from its summary, with zero decompression.
	w := telco.NewTimeRange(r.cfg.Start.Add(3*time.Hour), r.cfg.Start.Add(5*time.Hour))
	fast, err := r.e.Explore(Query{Window: w, Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.ScannedLeaves != 0 {
		t.Errorf("fast path scanned %d leaves", fast.ScannedLeaves)
	}
	if !fast.ServedPeriod.Covers(w) || fast.ServedPeriod.Duration() <= w.Duration() {
		t.Errorf("served period = %v, want the covering day", fast.ServedPeriod)
	}
	day := r.e.Tree().NodesAtLevel(index.LevelDay)[0]
	if fast.Summary.Rows != day.Summary.Rows {
		t.Errorf("fast rows = %d, want day rows %d", fast.Summary.Rows, day.Summary.Rows)
	}
	// The exact path for the same window reports fewer rows over exactly w.
	exact, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Summary.Rows >= fast.Summary.Rows {
		t.Errorf("exact rows %d >= fast rows %d", exact.Summary.Rows, fast.Summary.Rows)
	}
	if exact.ServedPeriod != w {
		t.Errorf("exact served period = %v, want %v", exact.ServedPeriod, w)
	}
	if exact.ScannedLeaves == 0 {
		t.Error("exact path should decompress the window's edges")
	}
}

func TestCellIndexVariantsAgree(t *testing.T) {
	// The quad-tree and R-tree cell indexes answer identical box queries
	// (§V-A names both as valid leaf spatial indexes).
	rq := newRig(t, Options{CellIndex: "quadtree"})
	rr := newRig(t, Options{CellIndex: "rtree"})
	boxes := []geo.Rect{
		geo.NewRect(0, 0, 40, 38),
		geo.NewRect(20, 20, 25, 25),
		geo.NewRect(-5, -5, 100, 100),
		geo.NewRect(70, 70, 80, 75),
	}
	for _, box := range boxes {
		a := rq.e.CellsInBox(box)
		b := rr.e.CellsInBox(box)
		if len(a) != len(b) {
			t.Errorf("box %v: quadtree %d cells, rtree %d", box, len(a), len(b))
			continue
		}
		seen := map[int64]bool{}
		for _, id := range a {
			seen[id] = true
		}
		for _, id := range b {
			if !seen[id] {
				t.Errorf("box %v: rtree returned extra cell %d", box, id)
			}
		}
	}
	// Unknown index names are rejected.
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.New(gen.DefaultConfig(0.001))
	if _, err := Open(fs, g.CellTable(), Options{CellIndex: "btree"}); err == nil {
		t.Error("unknown cell index accepted")
	}
}

func TestConcurrentIngestAndExplore(t *testing.T) {
	// One ingester plus several queriers, per the engine's contract.
	r := newRig(t, Options{})
	r.ingestEpochs(t, 2)
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for q := 0; q < 3; q++ {
		go func() {
			w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(24*time.Hour))
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				if _, err := r.e.Explore(Query{Window: w, ExactRows: true}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	e0 := telco.EpochOf(r.cfg.Start)
	for i := 2; i < 12; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(r.g.CDRTable(s.Epoch))
		s.Add(r.g.NMSTable(s.Epoch))
		if _, err := r.e.Ingest(s); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptedLeafSurfacesError(t *testing.T) {
	// With replication 1, a corrupted block has no healthy replica: the
	// exact-row path must fail loudly, not return wrong data.
	cfg := gen.DefaultConfig(0.002)
	cfg.Antennas = 10
	cfg.Users = 60
	cfg.CDRPerEpoch = 40
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 1, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(fs, g.CellTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := snapshot.New(telco.EpochOf(cfg.Start))
	s.Add(g.CDRTable(s.Epoch))
	if _, err := e.Ingest(s); err != nil {
		t.Fatal(err)
	}
	path := snapshot.DataPath(s.Epoch, "CDR")
	if _, err := fs.CorruptBlock(path); err != nil {
		t.Fatal(err)
	}
	w := telco.NewTimeRange(cfg.Start, cfg.Start.Add(time.Hour))
	if _, err := e.Explore(Query{Window: w, ExactRows: true}); err == nil {
		t.Error("exact rows over a corrupted leaf succeeded")
	}
}

func TestOpenValidatesCellTable(t *testing.T) {
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := telco.NewTable(telco.NMSSchema) // wrong schema
	if _, err := Open(fs, bad, Options{}); err == nil {
		t.Error("Open accepted a non-CELL table")
	}
}

func TestExploreOnEmptyEngine(t *testing.T) {
	r := newRig(t, Options{})
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(time.Hour))
	if _, err := r.e.Explore(Query{Window: w}); err == nil {
		t.Error("Explore on empty engine succeeded")
	}
}

func TestInvalidPolicyRejectedAtOpen(t *testing.T) {
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.New(gen.DefaultConfig(0.001))
	_, err = Open(fs, g.CellTable(), Options{
		Policy: decay.Policy{KeepRaw: time.Hour, KeepDayNodes: time.Minute},
	})
	if err == nil {
		t.Error("invalid policy accepted")
	}
}
