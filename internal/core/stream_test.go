package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"spate/internal/dfs"
	"spate/internal/highlights"
	"spate/internal/snapshot"
	"spate/internal/telco"
	"spate/internal/wal"
)

// streamOpts are fast test defaults: no fsync, tight group window.
func streamOpts(t *testing.T) StreamerOptions {
	t.Helper()
	return StreamerOptions{WALDir: t.TempDir(), Sync: wal.SyncNone, GroupWindow: time.Millisecond}
}

// openStreamer opens a streamer on the rig's engine, closed with the test.
func openStreamer(t *testing.T, r *testRig, opts StreamerOptions) *Streamer {
	t.Helper()
	st, err := r.e.OpenStreamer(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// epochSnapshots materializes n epochs of the rig's generated world.
func epochSnapshots(r *testRig, n int) []*snapshot.Snapshot {
	e0 := telco.EpochOf(r.cfg.Start)
	snaps := make([]*snapshot.Snapshot, 0, n)
	for i := 0; i < n; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(r.g.CDRTable(s.Epoch))
		s.Add(r.g.NMSTable(s.Epoch))
		snaps = append(snaps, s)
	}
	return snaps
}

// appendSnapshot streams every table of a snapshot through Append, rows in
// table order — the arrival order a batch ingest implies.
func appendSnapshot(t *testing.T, st *Streamer, sn *snapshot.Snapshot) {
	t.Helper()
	for _, name := range sn.TableNames() {
		tab := sn.Table(name)
		if err := st.Append(context.Background(), name, tab.Rows); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamSealParityWithBatchIngest is the tentpole invariant: sealing a
// streamed epoch produces segments bit-for-bit identical to a batch
// ingest of the same rows — same DFS files, same bytes, same answers.
func TestStreamSealParityWithBatchIngest(t *testing.T) {
	const epochs = 3
	batch := newRig(t, Options{})
	for _, sn := range epochSnapshots(batch, epochs) {
		if _, err := batch.e.Ingest(sn); err != nil {
			t.Fatal(err)
		}
	}

	streamed := newRig(t, Options{}) // same gen config -> identical rows
	st := openStreamer(t, streamed, streamOpts(t))
	for _, sn := range epochSnapshots(streamed, epochs) {
		appendSnapshot(t, st, sn)
	}
	if err := st.SealAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Memtable().Rows() != 0 {
		t.Fatalf("memtable holds %d rows after SealAll", st.Memtable().Rows())
	}

	assertStoresEqual(t, batch.fs, streamed.fs)

	// And the query surface agrees.
	w := telco.NewTimeRange(batch.cfg.Start, batch.cfg.Start.Add(epochs*30*time.Minute))
	rb, err := batch.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := streamed.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Summary.Rows != rs.Summary.Rows || len(rb.Cells) != len(rs.Cells) {
		t.Errorf("batch (%d rows, %d cells) != streamed (%d rows, %d cells)",
			rb.Summary.Rows, len(rb.Cells), rs.Summary.Rows, len(rs.Cells))
	}
}

// TestStreamQueryBeforeSeal: appended rows answer queries immediately,
// before any epoch seals, and the profile reports the memtable's share.
func TestStreamQueryBeforeSeal(t *testing.T) {
	r := newRig(t, Options{})
	st := openStreamer(t, r, streamOpts(t))
	sn := epochSnapshots(r, 1)[0]
	total := int64(sn.Rows())
	appendSnapshot(t, st, sn)

	// No seal happened: the engine's tree is still empty.
	if r.e.Snapshots() != 0 {
		t.Fatalf("tree has %d leaves before seal", r.e.Snapshots())
	}
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(30*time.Minute))
	res, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows != total {
		t.Errorf("summary rows = %d, want %d", res.Summary.Rows, total)
	}
	if res.Profile.MemEpochs == 0 {
		t.Error("profile reports no memtable epochs")
	}
	// Exact rows come from the memtable too.
	res, err = r.e.Explore(Query{Window: w, ExactRows: true, Tables: []string{"NMS"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows["NMS"] == nil || res.Rows["NMS"].Len() == 0 {
		t.Fatal("no exact rows before seal")
	}
	if res.Profile.MemRows == 0 {
		t.Error("profile reports no memtable rows on the exact-row path")
	}
	if res.Rows["NMS"].Len() != sn.Table("NMS").Len() {
		t.Errorf("exact rows = %d, want %d", res.Rows["NMS"].Len(), sn.Table("NMS").Len())
	}
}

// TestStreamFreshRowsInvalidateCache: a cached answer must not mask rows
// appended after it was cached.
func TestStreamFreshRowsInvalidateCache(t *testing.T) {
	r := newRig(t, Options{})
	st := openStreamer(t, r, streamOpts(t))
	sn := epochSnapshots(r, 1)[0]
	nms := sn.Table("NMS")
	half := nms.Len() / 2
	if err := st.Append(context.Background(), "NMS", nms.Rows[:half]); err != nil {
		t.Fatal(err)
	}
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(30*time.Minute))
	res1, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(context.Background(), "NMS", nms.Rows[half:]); err != nil {
		t.Fatal(err)
	}
	res2, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Error("stale cache hit after fresh appends")
	}
	if res2.Summary.Rows != int64(nms.Len()) || res2.Summary.Rows <= res1.Summary.Rows {
		t.Errorf("rows after second append = %d (first %d, want %d)",
			res2.Summary.Rows, res1.Summary.Rows, nms.Len())
	}
}

// TestStreamCrashRecoveryReplay: rows appended but not sealed survive a
// crash via WAL replay — explorable again right after reopen, and sealing
// then matches a batch ingest.
func TestStreamCrashRecoveryReplay(t *testing.T) {
	r := newRig(t, Options{})
	walDir := t.TempDir()
	st, err := r.e.OpenStreamer(StreamerOptions{WALDir: walDir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	snaps := epochSnapshots(r, 2)
	for _, sn := range snaps {
		appendSnapshot(t, st, sn)
	}
	// Seal the first epoch only; the second stays buffered.
	e0 := telco.EpochOf(r.cfg.Start)
	if err := st.SealTo(context.Background(), e0); err != nil {
		t.Fatal(err)
	}
	if r.e.Snapshots() != 1 {
		t.Fatalf("sealed %d leaves, want 1", r.e.Snapshots())
	}
	// "Crash": close the streamer without sealing the rest.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover: fresh engine over the same DFS, streamer over the same WAL.
	e2 := reopen(t, r, Options{})
	st2, err := e2.OpenStreamer(StreamerOptions{WALDir: walDir, Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, want := st2.Memtable().Rows(), int64(snaps[1].Rows()); got != want {
		t.Fatalf("replayed %d rows, want %d (epoch 0 must not double-replay)", got, want)
	}
	// The replayed rows answer queries before sealing...
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(time.Hour))
	res, err := e2.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(snaps[0].Rows() + snaps[1].Rows())
	if res.Summary.Rows != want {
		t.Errorf("recovered explore rows = %d, want %d", res.Summary.Rows, want)
	}
	// ...and seal into leaves identical to a batch ingest of the trace.
	if err := st2.SealAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	batch := newRig(t, Options{})
	for _, sn := range epochSnapshots(batch, 2) {
		if _, err := batch.e.Ingest(sn); err != nil {
			t.Fatal(err)
		}
	}
	assertStoresEqual(t, batch.fs, r.fs)
}

// assertStoresEqual compares two DFS stores: data leaves must match
// bit-for-bit; gob metadata (leaf metas, index summaries) is compared
// decoded, because gob writes map fields in nondeterministic order.
func assertStoresEqual(t *testing.T, want, got *dfs.Cluster) {
	t.Helper()
	wFiles := want.List("/spate/")
	gFiles := got.List("/spate/")
	if len(wFiles) == 0 || len(wFiles) != len(gFiles) {
		t.Fatalf("file count: want store %d, got store %d", len(wFiles), len(gFiles))
	}
	for _, fi := range wFiles {
		wb, err := want.ReadFile(fi.Path)
		if err != nil {
			t.Fatal(err)
		}
		gb, err := got.ReadFile(fi.Path)
		if err != nil {
			t.Fatalf("store lacks %s: %v", fi.Path, err)
		}
		switch {
		case strings.HasPrefix(fi.Path, "/spate/meta/leaf/"):
			var wm, gm leafMeta
			if err := gob.NewDecoder(bytes.NewReader(wb)).Decode(&wm); err != nil {
				t.Fatal(err)
			}
			if err := gob.NewDecoder(bytes.NewReader(gb)).Decode(&gm); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wm, gm) {
				t.Errorf("%s: leaf meta differs:\n  want %+v\n  got  %+v", fi.Path, wm, gm)
			}
		case strings.HasPrefix(fi.Path, "/spate/index/"):
			var ws, gs highlights.Summary
			if err := gob.NewDecoder(bytes.NewReader(wb)).Decode(&ws); err != nil {
				t.Fatal(err)
			}
			if err := gob.NewDecoder(bytes.NewReader(gb)).Decode(&gs); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ws, gs) {
				t.Errorf("%s: summary differs", fi.Path)
			}
		default:
			if !bytes.Equal(gb, wb) {
				t.Errorf("%s differs: %d vs %d bytes", fi.Path, len(gb), len(wb))
			}
		}
	}
}

// TestStreamBackpressure: an unsealed backlog over MaxPending fails
// further appends with the typed sentinel once the wait expires.
func TestStreamBackpressure(t *testing.T) {
	r := newRig(t, Options{})
	opts := streamOpts(t)
	opts.MaxPending = 16 << 10
	opts.BackpressureWait = 20 * time.Millisecond
	st := openStreamer(t, r, opts)

	sn := epochSnapshots(r, 1)[0]
	rows := sn.Table("CDR").Rows // one CDR table is itself over the bound
	// Fill the backlog past the bound (single trailing epoch: the sealer
	// will not relieve it), then expect the typed refusal.
	var err error
	for i := 0; i < 50 && err == nil; i++ {
		err = st.Append(context.Background(), "CDR", rows)
	}
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	// Relief: seal everything, then small appends of newer epochs flow.
	if err := st.SealAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	next := epochSnapshots(r, 2)[1]
	if err := st.Append(context.Background(), "NMS", next.Table("NMS").Rows); err != nil {
		t.Fatalf("append after seal relief: %v", err)
	}
}

// TestStreamStaleEpochRejected: rows of an already-sealed epoch are
// refused all-or-nothing with the typed sentinel.
func TestStreamStaleEpochRejected(t *testing.T) {
	r := newRig(t, Options{})
	st := openStreamer(t, r, streamOpts(t))
	snaps := epochSnapshots(r, 2)
	appendSnapshot(t, st, snaps[0])
	if err := st.SealAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := st.Append(context.Background(), "NMS", snaps[0].Table("NMS").Rows)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v, want ErrStaleEpoch", err)
	}
	if st.Memtable().Rows() != 0 {
		t.Errorf("stale batch left %d rows in the memtable", st.Memtable().Rows())
	}
	// Newer epochs still flow.
	if err := st.Append(context.Background(), "NMS", snaps[1].Table("NMS").Rows); err != nil {
		t.Fatal(err)
	}
}

// TestStreamBatchIngestAdvancesWatermark: a batch Ingest that lands
// AFTER the streamer opened (a cluster node bulk-loaded post-open) still
// closes its epochs to streamed writes — rows for them reject as stale
// instead of stranding in the memtable where no seal could ever land
// them behind the existing leaves.
func TestStreamBatchIngestAdvancesWatermark(t *testing.T) {
	r := newRig(t, Options{})
	st := openStreamer(t, r, streamOpts(t)) // watermark unset: engine empty
	snaps := epochSnapshots(r, 2)
	if _, err := r.e.Ingest(snaps[0]); err != nil {
		t.Fatal(err)
	}
	err := st.Append(context.Background(), "NMS", snaps[0].Table("NMS").Rows)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v, want ErrStaleEpoch", err)
	}
	if st.Memtable().Rows() != 0 {
		t.Errorf("stale batch left %d rows in the memtable", st.Memtable().Rows())
	}
	// The next epoch flows and seals cleanly on top of the batch leaf.
	appendSnapshot(t, st, snaps[1])
	if err := st.SealAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := r.e.Snapshots(); got != 2 {
		t.Fatalf("sealed %d leaves, want 2", got)
	}
}

// TestStreamSealerAdvancesWithDataTime: rows of a later epoch seal every
// earlier one automatically; the trailing epoch stays open and queryable.
func TestStreamSealerAdvancesWithDataTime(t *testing.T) {
	r := newRig(t, Options{})
	st := openStreamer(t, r, streamOpts(t))
	snaps := epochSnapshots(r, 3)
	for _, sn := range snaps {
		appendSnapshot(t, st, sn)
	}
	// Epochs 0 and 1 must seal (data time moved past them); epoch 2 stays.
	deadline := time.Now().Add(5 * time.Second)
	for r.e.Snapshots() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.e.Snapshots(); got != 2 {
		t.Fatalf("sealed %d leaves, want 2", got)
	}
	if got, want := st.Memtable().Rows(), int64(snaps[2].Rows()); got != want {
		t.Errorf("trailing epoch holds %d rows, want %d", got, want)
	}
	// The whole window still answers: sealed leaves + open memtable epoch.
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(90*time.Minute))
	res, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(snaps[0].Rows() + snaps[1].Rows() + snaps[2].Rows())
	if res.Summary.Rows != want {
		t.Errorf("explore rows = %d, want %d", res.Summary.Rows, want)
	}
}

// TestStreamWALPurgedAfterSeal: sealed epochs leave no WAL behind once
// their segments close.
func TestStreamWALPurgedAfterSeal(t *testing.T) {
	r := newRig(t, Options{})
	opts := streamOpts(t)
	opts.SegmentBytes = 32 << 10 // rotate often so sealed segments close
	st := openStreamer(t, r, opts)
	for _, sn := range epochSnapshots(r, 3) {
		appendSnapshot(t, st, sn)
	}
	if err := st.SealAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	segs := st.log.Segments()
	if len(segs) != 1 || !segs[0].Active {
		t.Errorf("segments after SealAll = %+v, want only the active one", segs)
	}
}

// TestStreamErrFinalized: the typed finalize sentinel gates both the batch
// ingest path and streamer open.
func TestStreamErrFinalized(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 1)
	r.e.FinishIngest()
	sn := epochSnapshots(r, 2)[1]
	if _, err := r.e.Ingest(sn); !errors.Is(err, ErrFinalized) {
		t.Errorf("Ingest after finish = %v, want ErrFinalized", err)
	}
	if _, err := r.e.OpenStreamer(streamOpts(t)); !errors.Is(err, ErrFinalized) {
		t.Errorf("OpenStreamer after finish = %v, want ErrFinalized", err)
	}
}

// TestStreamDoubleOpenRejected: one streamer per engine.
func TestStreamDoubleOpenRejected(t *testing.T) {
	r := newRig(t, Options{})
	openStreamer(t, r, streamOpts(t))
	if _, err := r.e.OpenStreamer(streamOpts(t)); err == nil {
		t.Fatal("second OpenStreamer accepted")
	}
}

// TestStreamConcurrentAppendExploreSeal exercises the writer, sealer and
// query paths together; run under -race it is the memtable/streamer
// synchronization proof.
func TestStreamConcurrentAppendExploreSeal(t *testing.T) {
	r := newRig(t, Options{})
	st := openStreamer(t, r, streamOpts(t))
	snaps := epochSnapshots(r, 4)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))

	stop := make(chan struct{})
	errc := make(chan error, 8)
	// Appender: streams all four epochs in chunks.
	appDone := make(chan struct{})
	go func() {
		defer close(appDone)
		for _, sn := range snaps {
			for _, name := range sn.TableNames() {
				rows := sn.Table(name).Rows
				for i := 0; i < len(rows); i += 32 {
					end := i + 32
					if end > len(rows) {
						end = len(rows)
					}
					if err := st.Append(context.Background(), name, rows[i:end]); err != nil {
						errc <- fmt.Errorf("append: %w", err)
						return
					}
				}
			}
		}
	}()
	var readers sync.WaitGroup
	// Explorers: hammer the window while rows move memtable -> leaves.
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// "no data ingested" is legitimate until the first append
				// lands; anything else is a bug.
				if _, err := r.e.Explore(Query{Window: w}); err != nil &&
					!strings.Contains(err.Error(), "no data ingested") {
					errc <- fmt.Errorf("explore: %w", err)
					return
				}
			}
		}()
	}
	// Scanner: exact-row path concurrently.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			err := r.e.ScanTables(w, []string{"NMS"},
				func(string, *telco.Table) error { return nil })
			if err != nil {
				errc <- fmt.Errorf("scan: %w", err)
				return
			}
		}
	}()

	// Wait for the appender, then stop the readers and seal everything.
	select {
	case err := <-errc:
		close(stop)
		readers.Wait()
		t.Fatal(err)
	case <-appDone:
	}
	close(stop)
	readers.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if err := st.SealAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sn := range snaps {
		total += sn.Rows()
	}
	res, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows != int64(total) {
		t.Errorf("final rows = %d, want %d", res.Summary.Rows, total)
	}
}
