package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"spate/internal/compress"
	"spate/internal/geo"
	"spate/internal/highlights"
	"spate/internal/index"
	"spate/internal/memtable"
	"spate/internal/obs"
	"spate/internal/telco"
)

// Query is a data exploration request Q(a, b, w): attribute selection a,
// spatial bounding box b and temporal window w (paper §VI-A). A box can
// cover a few hundred square meters up to hundreds of square kilometers;
// a window spans hours to years.
type Query struct {
	// Attrs selects the attributes of interest. Empty selects every
	// summarized attribute.
	Attrs []highlights.AttrRef
	// Box is the spatial predicate. The zero box means "everywhere".
	Box geo.Rect
	// Window is the temporal predicate.
	Window telco.TimeRange
	// Tables restricts exact-row retrieval (default: all stored tables).
	Tables []string
	// ExactRows requests the raw records of non-decayed snapshots in the
	// window, in addition to aggregates.
	ExactRows bool
	// Fast serves the query entirely from the materialized summary of the
	// temporal node whose period completely covers the window — the
	// paper's literal §VI-A evaluation ("the index is accessed to find the
	// temporal node whose period completely covers w ... the highlights of
	// year-node 2016 are retrieved"). The answer may describe a larger
	// period than requested (see Result.ServedPeriod) but costs no
	// decompression at all; with no covering summary sealed yet, the query
	// falls back to the exact path.
	Fast bool
}

// everywhere reports whether the box is the zero value (no spatial filter).
func (q Query) everywhere() bool { return q.Box == (geo.Rect{}) }

// CellSeries is the per-cell aggregate view a heatmap renders.
type CellSeries struct {
	CellID int64
	Loc    geo.Point
	Rows   int64
	Attr   map[highlights.AttrRef]*highlights.Stats
}

// Result is a data exploration answer.
type Result struct {
	// CoveringLevel is the resolution of the index node whose period
	// completely covered the window — the implicit-prefetch granularity.
	CoveringLevel index.Level
	// Summary aggregates the window restricted to the box's cells.
	Summary *highlights.Summary
	// Highlights are the interesting events extracted from the covering
	// node's resolution with its θ.
	Highlights []highlights.Highlight
	// Cells is the per-cell breakdown inside the box.
	Cells []CellSeries
	// Rows holds exact records per table when requested and available.
	Rows map[string]*telco.Table
	// DecayedLeaves counts window snapshots whose raw data has decayed;
	// those contribute aggregates only.
	DecayedLeaves int
	// ScannedLeaves counts snapshots decompressed for exact rows.
	ScannedLeaves int
	// PrunedLeaves counts snapshots skipped by leaf spatial pruning.
	PrunedLeaves int
	// ScannedChunks counts leaf chunks decompressed on the exact-row path
	// (a legacy whole-blob leaf counts as one chunk).
	ScannedChunks int
	// PrunedChunks counts leaf chunks skipped through segment zone maps
	// (window bounds and cell sketches) without being decompressed.
	PrunedChunks int
	// CacheHit marks answers served from the result cache (the UI-facing
	// behaviour for zoom-in queries with |w'| < |w|).
	CacheHit bool
	// ServedPeriod is the period the aggregates actually describe — equal
	// to the query window on the exact path, and the covering node's
	// (larger) period on the Fast path or under decay prefetch.
	ServedPeriod telco.TimeRange
	// Stages is the per-stage wall-time breakdown of the evaluation (plan,
	// collect, leaf_decode, merge, restrict, row_fetch). Cache hits carry
	// the breakdown of the evaluation that produced the cached answer.
	Stages []obs.Stage
	// Profile is the per-query cost breakdown of the evaluation (chunk
	// pruning split by reason, cache hits, inflated bytes, DFS reads).
	// Like Stages, a result-cache hit carries the profile of the
	// evaluation that produced the cached answer, with ResultCacheHit set.
	Profile Profile

	// leafDecode accrues snapshot decompress/decode time inside summary
	// collection, reported as the leaf_decode stage.
	leafDecode time.Duration
}

// Explore evaluates a data exploration query against the index: it finds
// the temporal node completely covering w, merges the summaries of the
// window's leaves (or coarser summaries where data has decayed), filters
// spatially through the cell inventory, and optionally decompresses the
// covered snapshots for exact rows.
func (e *Engine) Explore(q Query) (*Result, error) {
	return e.ExploreContext(context.Background(), q)
}

// ExploreContext is Explore with cancellation and span propagation: an
// expired or canceled ctx aborts the evaluation between leaf decodes (so
// abandoned HTTP requests stop burning CPU), and when ctx carries a live
// obs span the exploration span nests under it (e.g. under an HTTP
// request's span).
//
// Concurrent identical queries that miss the result cache dedupe through
// the result singleflight: one caller (the leader) evaluates, the rest
// wait and share its answer as a cache hit. A leader that fails — most
// often its own context canceling — publishes nothing, and each waiter
// retries from the cache check (possibly leading itself), so one
// abandoned request never fails an unrelated identical one.
func (e *Engine) ExploreContext(ctx context.Context, q Query) (*Result, error) {
	key := q.cacheKey()
	for {
		if r, ok := e.cache.Get(key); ok {
			e.met.cacheHits.Inc()
			return sharedResult(ctx, r), nil
		}
		call, leader := e.resFlight.begin(key)
		if leader {
			res, err := e.exploreUncached(ctx, q, key)
			if err != nil {
				e.resFlight.finish(key, call, nil)
				return nil, err
			}
			e.resFlight.finish(key, call, res)
			return res, nil
		}
		select {
		case <-call.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if call.res != nil {
			e.met.resShared.Inc()
			return sharedResult(ctx, call.res), nil
		}
	}
}

// sharedResult copies a cached (or singleflight-shared) result for one
// caller, marking it served without a scan.
func sharedResult(ctx context.Context, r *Result) *Result {
	out := *r
	out.CacheHit = true
	out.Profile.ResultCacheHit = true
	if p := ProfileFromContext(ctx); p != nil {
		p.ResultCacheHit = true
	}
	return &out
}

// exploreUncached is the result-cache miss path of ExploreContext: the
// full plan → collect → merge → restrict → rows evaluation, installing
// the answer under key on success.
func (e *Engine) exploreUncached(ctx context.Context, q Query, key string) (*Result, error) {
	e.met.cacheMisses.Inc()
	start := time.Now()
	sr := newStageRecorder()
	var span *obs.Span
	if e.met.tracer != nil {
		_, span = e.met.tracer.StartSpan(ctx, "explore")
	}
	defer span.End()
	// finish flushes stage accounting into the registry, the span and the
	// result, then installs the answer in the cache.
	finish := func(res *Result) {
		if res.leafDecode > 0 {
			sr.add(StageLeafDecode, res.leafDecode.Nanoseconds())
		}
		res.Stages = sr.flush(e.met.exploreStage, span)
		res.Profile.LeavesScanned = res.ScannedLeaves
		res.Profile.LeavesPruned = res.PrunedLeaves
		res.Profile.LeavesDecayed = res.DecayedLeaves
		res.Profile.TraceID = span.TraceID()
		if p := ProfileFromContext(ctx); p != nil {
			p.Add(res.Profile)
		}
		span.End()
		e.met.exploreSec.Observe(time.Since(start).Seconds())
		e.met.scannedLeaves.Add(int64(res.ScannedLeaves))
		e.met.prunedLeaves.Add(int64(res.PrunedLeaves))
		e.cache.Put(key, res)
	}

	// The query environment (table set, box cell membership, chunk prune
	// predicates) is derived once and shared by every later phase —
	// restriction, row fetch and the memtable union all read the same maps.
	env := e.newQueryEnv(&q.Window, q.Tables, q.Box)

	// Planning happens entirely under the engine read lock — tree nodes are
	// mutated by Ingest/Decay under the write lock, so no node field may be
	// read once it is released. The plan carries everything the lock-free
	// phases need: materialized summaries (immutable once built) and
	// rebuild jobs for leaves whose day seal dropped theirs.
	tPlan := time.Now()
	res := &Result{ServedPeriod: q.Window}
	e.mu.RLock()
	covering := e.tree.FindCovering(q.Window)
	// The streaming memtable's contribution is captured under the same
	// lock acquisition as the plan and the LastEpoch watermark: a seal
	// that lands afterwards either already put its leaf in our plan (and
	// the watermark excludes the memtable copy) or hasn't (and the copy
	// serves) — fresh rows are visible exactly once either way.
	memt, memAfter := e.memAfterLocked()
	var memParts []*highlights.Summary
	var memTabs []memTab
	if memt != nil {
		memParts = memt.Parts(q.Window, memAfter, e.opts.Highlights)
		if q.ExactRows {
			memTabs = collectMemTabs(memt, q.Window, q.Tables, memAfter)
		}
	}
	if covering == nil && len(memParts) == 0 && len(memTabs) == 0 {
		e.mu.RUnlock()
		return nil, fmt.Errorf("core: no data ingested")
	}
	var coveringPeriod telco.TimeRange
	var coveringSummary *highlights.Summary
	level := index.LevelEpoch
	if covering != nil {
		level = covering.Level
		coveringPeriod = covering.Period
		coveringSummary = covering.Summary
	}
	res.CoveringLevel = level
	theta := e.opts.theta(level)
	// Unsealed rows in the window disable the Fast path — a covering
	// node's materialized summary cannot know about them.
	fast := q.Fast && coveringSummary != nil && !q.ExactRows && len(memParts) == 0
	var srcs []partSrc
	var leaves []leafRef
	if !fast && covering != nil {
		srcs = e.planSummaries(e.tree.Root(), q.Window, nil, res)
		if q.ExactRows {
			leaves = e.rowLeaves(q.Window)
		}
	}
	e.mu.RUnlock()
	sr.add(StagePlan, time.Since(tPlan).Nanoseconds())

	// Fast path: answer from the covering node's materialized summary,
	// serving its whole (possibly larger) period.
	if fast {
		res.ServedPeriod = coveringPeriod
		t0 := time.Now()
		res.Summary, res.Cells = e.restrictToBox(coveringSummary, q, env)
		sr.add(StageRestrict, time.Since(t0).Nanoseconds())
		res.Highlights = coveringSummary.Extract(theta)
		finish(res)
		return res, nil
	}

	// Collect summary parts top-down: sealed nodes fully inside the window
	// contribute their materialized summary in O(1); partially covered
	// periods descend to leaves, whose summaries are rebuilt from the
	// compressed snapshot data when the day-seal dropped them (the paper's
	// "highlight summaries or actual available data ... are then
	// retrieved"). This makes response time depend on the window's *edges*,
	// not its length.
	tCollect := time.Now()
	parts, err := e.buildParts(ctx, srcs, res)
	sr.add(StageCollect, (time.Since(tCollect) - res.leafDecode).Nanoseconds())
	if err != nil {
		return nil, err
	}
	// Unsealed epochs merge after the sealed parts — they are strictly
	// newer than every sealed leaf, so the flat sequence stays
	// chronological.
	parts = append(parts, memParts...)
	res.Profile.MemEpochs = len(memParts)
	tMerge := time.Now()
	merged := highlights.Merge(q.Window, parts...)
	sr.add(StageMerge, time.Since(tMerge).Nanoseconds())

	// Spatial restriction: keep only cells inside the box and rebuild the
	// window aggregates from the per-cell breakdown.
	tRestrict := time.Now()
	res.Summary, res.Cells = e.restrictToBox(merged, q, env)
	sr.add(StageRestrict, time.Since(tRestrict).Nanoseconds())

	// Highlights come from the covering node's resolution — its θ — as in
	// the paper's drill-down description; fall back to the merged window.
	hsrc := coveringSummary
	if hsrc == nil {
		hsrc = merged
	}
	res.Highlights = hsrc.Extract(theta)

	if q.ExactRows {
		tRows := time.Now()
		err := e.fetchRows(ctx, q, env, leaves, res)
		if err == nil {
			e.appendMemRows(env, memTabs, res)
		}
		sr.add(StageRows, time.Since(tRows).Nanoseconds())
		if err != nil {
			return nil, err
		}
	}
	finish(res)
	return res, nil
}

// PartsDiag reports how a part collection was satisfied.
type PartsDiag struct {
	// ScannedLeaves counts snapshots decompressed to rebuild summaries.
	ScannedLeaves int
	// DecayedLeaves counts window snapshots whose raw data has decayed.
	DecayedLeaves int
}

// ExploreParts collects the summary parts answering window w in
// chronological order WITHOUT merging them. This is the unit a cluster
// coordinator transfers: gathering every shard's parts and folding them in
// one flat chronological Merge reproduces the exact association order a
// single engine uses, so scatter-gathered aggregates match the monolithic
// answer bit for bit.
func (e *Engine) ExploreParts(ctx context.Context, w telco.TimeRange) ([]*highlights.Summary, PartsDiag, error) {
	ctx, span := e.met.tracer.StartSpan(ctx, "explore_parts")
	defer span.End()
	res := &Result{}
	tPlan := time.Now()
	e.mu.RLock()
	memt, memAfter := e.memAfterLocked()
	var memParts []*highlights.Summary
	if memt != nil {
		memParts = memt.Parts(w, memAfter, e.opts.Highlights)
	}
	if e.tree.FindCovering(w) == nil && len(memParts) == 0 {
		e.mu.RUnlock()
		err := fmt.Errorf("core: no data ingested")
		span.SetError(err)
		return nil, PartsDiag{}, err
	}
	srcs := e.planSummaries(e.tree.Root(), w, nil, res)
	e.mu.RUnlock()
	tCollect := time.Now()
	parts, err := e.buildParts(ctx, srcs, res)
	if err != nil {
		span.SetError(err)
		return nil, PartsDiag{}, err
	}
	// Unsealed epochs follow the sealed parts; they are strictly newer,
	// and a coordinator's flat chronological merge slots them in with
	// every other shard's parts.
	parts = append(parts, memParts...)
	res.Profile.MemEpochs = len(memParts)
	if span != nil {
		span.AddStageAt(StagePlan, tPlan, tCollect.Sub(tPlan))
		span.AddStageAt(StageCollect, tCollect, time.Since(tCollect)-res.leafDecode)
		if res.leafDecode > 0 {
			span.AddStageAt(StageLeafDecode, tCollect, res.leafDecode)
		}
	}
	res.Profile.LeavesScanned = res.ScannedLeaves
	res.Profile.LeavesDecayed = res.DecayedLeaves
	if p := ProfileFromContext(ctx); p != nil {
		p.Add(res.Profile)
	}
	return parts, PartsDiag{ScannedLeaves: res.ScannedLeaves, DecayedLeaves: res.DecayedLeaves}, nil
}

// FetchRows runs the exact-row path alone: the window's non-decayed
// snapshots are decompressed and their records filtered by the query's
// window, box and table selection. Cluster shard nodes serve /rpc/explore
// row requests through this without paying for a summary merge.
func (e *Engine) FetchRows(ctx context.Context, q Query) (map[string]*telco.Table, error) {
	ctx, span := e.met.tracer.StartSpan(ctx, "row_fetch")
	defer span.End()
	t0 := time.Now()
	e.mu.RLock()
	leaves := e.rowLeaves(q.Window)
	memt, memAfter := e.memAfterLocked()
	var memTabs []memTab
	if memt != nil {
		memTabs = collectMemTabs(memt, q.Window, q.Tables, memAfter)
	}
	e.mu.RUnlock()
	env := e.newQueryEnv(&q.Window, q.Tables, q.Box)
	res := &Result{}
	if err := e.fetchRows(ctx, q, env, leaves, res); err != nil {
		span.SetError(err)
		return nil, err
	}
	e.appendMemRows(env, memTabs, res)
	e.met.scannedLeaves.Add(int64(res.ScannedLeaves))
	e.met.prunedLeaves.Add(int64(res.PrunedLeaves))
	res.Profile.LeavesScanned = res.ScannedLeaves
	res.Profile.LeavesPruned = res.PrunedLeaves
	if span != nil {
		// The I/O phases accrue across chunks; anchor them at the fetch
		// start so the waterfall keeps execution order.
		if d := time.Duration(res.Profile.LookupNS); d > 0 {
			span.AddStageAt(StageCacheLookup, t0, d)
		}
		if d := time.Duration(res.Profile.ReadNS); d > 0 {
			span.AddStageAt(StageDFSRead, t0, d)
		}
		if d := time.Duration(res.Profile.DecodeNS); d > 0 {
			span.AddStageAt(StageDecode, t0, d)
		}
	}
	if p := ProfileFromContext(ctx); p != nil {
		p.Add(res.Profile)
	}
	return res.Rows, nil
}

// queryEnv is the per-query derived state every scan phase shares: the
// table selection as a set (the old per-row linear search over q.Tables
// was O(tables) per leaf table), the box's cell membership map (built
// once instead of once per phase), and the chunk-prune predicates.
// It is immutable after construction, so parallel scan workers read it
// without synchronization.
type queryEnv struct {
	tables map[string]struct{} // nil = every table
	inBox  map[int64]bool      // nil = no spatial filter
	pr     leafPrune
}

// newQueryEnv derives the environment for one query. The window pointer
// must stay valid for the query's lifetime (the chunk pruner aliases it).
// Must not be called with e.mu held: CellsInBox takes the read lock.
func (e *Engine) newQueryEnv(w *telco.TimeRange, tables []string, box geo.Rect) *queryEnv {
	env := &queryEnv{pr: leafPrune{window: w}}
	if len(tables) > 0 {
		env.tables = make(map[string]struct{}, len(tables))
		for _, t := range tables {
			env.tables[t] = struct{}{}
		}
	}
	if box != (geo.Rect{}) {
		ids := e.CellsInBox(box)
		env.inBox = make(map[int64]bool, len(ids))
		for _, id := range ids {
			env.inBox[id] = true
		}
		if len(ids) <= maxPruneCells {
			env.pr.spatial, env.pr.cells = true, ids
		}
	}
	return env
}

// wantTable reports whether the query's table selection includes name.
func (env *queryEnv) wantTable(name string) bool {
	if env.tables == nil {
		return true
	}
	_, ok := env.tables[name]
	return ok
}

// partSrc is one planned contribution to a window's answer: a summary
// already materialized in the tree, or — when sum is nil — a leaf whose
// summary must be rebuilt from its compressed snapshot tables.
type partSrc struct {
	sum    *highlights.Summary
	period telco.TimeRange   // rebuild only: the leaf's period
	refs   map[string]string // rebuild only: table name -> DFS path
}

// leafRef is the lock-free snapshot of the leaf fields the exact-row path
// reads. Tree nodes are mutated under the engine write lock, so node
// pointers must not be dereferenced after the read lock is released; the
// captured summary and DataRefs map are safe to retain by reference —
// summaries are immutable once built, and decay replaces the refs map
// wholesale rather than mutating entries.
type leafRef struct {
	decayed bool
	refs    map[string]string
	sum     *highlights.Summary
}

// rowLeaves snapshots the window's leaves for the exact-row path. The
// caller must hold the engine lock.
func (e *Engine) rowLeaves(w telco.TimeRange) []leafRef {
	nodes := e.tree.LeavesIn(w, nil)
	out := make([]leafRef, len(nodes))
	for i, n := range nodes {
		out[i] = leafRef{decayed: n.Decayed, refs: n.DataRefs, sum: n.Summary}
	}
	return out
}

// planSummaries selects the parts answering window w, preferring coarse
// materialized summaries and descending only at the window's edges. It
// runs under the engine read lock (held by the caller) and performs no
// I/O: leaves whose summary the day seal dropped become rebuild jobs for
// buildParts to decompress after the lock is released, so a long query
// never stalls ingest behind block decodes.
func (e *Engine) planSummaries(n *index.Node, w telco.TimeRange, srcs []partSrc, res *Result) []partSrc {
	if n.Level != index.LevelRoot && !n.Period.Overlaps(w) {
		return srcs
	}
	if n.IsLeaf() {
		if n.Decayed {
			res.DecayedLeaves++
			if n.Summary != nil {
				// Open-day decayed leaf: its in-memory summary is all that
				// remains and still answers aggregates.
				srcs = append(srcs, partSrc{sum: n.Summary})
			}
			return srcs
		}
		if n.Summary != nil {
			return append(srcs, partSrc{sum: n.Summary})
		}
		return append(srcs, partSrc{period: n.Period, refs: n.DataRefs})
	}
	if n.Level != index.LevelRoot && n.Summary != nil {
		// Sealed internal node: use its materialized summary when the
		// window swallows it whole, or when its raw children are gone
		// (decay pruned the subtree) — the latter serves a larger period
		// than requested, the paper's implicit prefetch.
		if w.Covers(n.Period) || len(n.Children) == 0 {
			return append(srcs, partSrc{sum: n.Summary})
		}
	}
	before := len(srcs)
	for _, c := range n.Children {
		srcs = e.planSummaries(c, w, srcs, res)
	}
	// Prefetch fallback: when every overlapping descendant decayed without
	// leaving a summary (a sealed day whose raw data was evicted), serve
	// this node's materialized summary — a larger period than requested,
	// exactly the paper's implicit-prefetch behaviour.
	if len(srcs) == before && n.Summary != nil && n.Level != index.LevelRoot && n.Period.Overlaps(w) {
		srcs = append(srcs, partSrc{sum: n.Summary})
	}
	return srcs
}

// buildParts turns a query plan into summary parts in order, rebuilding
// the leaves the plan marked. ctx is consulted before every rebuild — the
// expensive step — so a canceled request abandons the collection promptly.
// With ScanWorkers > 1 and more than one rebuild, the rebuilds fan out
// across the parallel scheduler; materialized summaries are slotted
// directly and every part keeps its chronological plan position, so the
// flat Merge downstream associates identically to the sequential path.
func (e *Engine) buildParts(ctx context.Context, srcs []partSrc, res *Result) ([]*highlights.Summary, error) {
	rebuilds := 0
	for _, src := range srcs {
		if src.sum == nil {
			rebuilds++
		}
	}
	workers := e.scanWorkers()
	if workers <= 1 || rebuilds <= 1 {
		parts := make([]*highlights.Summary, 0, len(srcs))
		var c compress.Codec
		for _, src := range srcs {
			if src.sum != nil {
				parts = append(parts, src.sum)
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if c == nil {
				c = e.codec()
			}
			t0 := time.Now()
			s, err := e.buildLeafSummary(c, src.period, src.refs, &res.Profile)
			res.leafDecode += time.Since(t0)
			if err != nil {
				return nil, err
			}
			res.ScannedLeaves++
			parts = append(parts, s)
		}
		return parts, nil
	}

	type rebuilt struct {
		sum *highlights.Summary
		dur time.Duration
	}
	parts := make([]*highlights.Summary, len(srcs))
	c := e.codec()
	var units []scanUnit
	var slots []int // unit index -> srcs index
	for i, src := range srcs {
		if src.sum != nil {
			parts[i] = src.sum
			continue
		}
		src := src
		slots = append(slots, i)
		units = append(units, func(w *scanWorker) (any, error) {
			t0 := time.Now()
			s, err := e.buildLeafSummary(c, src.period, src.refs, w.prof)
			return rebuilt{sum: s, dur: time.Since(t0)}, err
		})
	}
	err := e.runUnits(ctx, workers, units, &res.Profile, func(i int, v any) error {
		rb := v.(rebuilt)
		parts[slots[i]] = rb.sum
		res.leafDecode += rb.dur
		res.ScannedLeaves++
		return nil
	})
	if err != nil {
		return nil, err
	}
	return parts, nil
}

// buildLeafSummary reconstructs an epoch summary by decoding the
// snapshot's stored tables — the exact-data path for recent windows whose
// day has sealed (and dropped its ephemeral leaf summaries). Every chunk
// contributes (summaries aggregate the whole leaf), so the scan prunes
// nothing; highlight accumulation is row-additive, so folding chunk by
// chunk reproduces the whole-table fold exactly. The codec is passed
// explicitly because some callers already hold the engine lock.
func (e *Engine) buildLeafSummary(c compress.Codec, period telco.TimeRange, refs map[string]string, prof *Profile) (*highlights.Summary, error) {
	s := highlights.NewSummary(period)
	for name, ref := range refs {
		_, _, err := e.scanLeafTable(name, ref, c, leafPrune{}, prof, func(tab *telco.Table) error {
			s.AddTable(e.opts.Highlights, tab)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// restrictToBox filters a merged summary to the query box using the
// environment's cell membership, producing both the filtered summary and
// per-cell series.
func (e *Engine) restrictToBox(m *highlights.Summary, q Query, env *queryEnv) (*highlights.Summary, []CellSeries) {
	if env.inBox == nil {
		cells := e.cellSeries(m, nil, q)
		return m, cells
	}
	out := m.Restrict(func(id int64) bool { return env.inBox[id] })
	return out, e.cellSeries(m, env.inBox, q)
}

// cellSeries renders the per-cell view, filtered by box membership and the
// query's attribute selection.
func (e *Engine) cellSeries(m *highlights.Summary, inBox map[int64]bool, q Query) []CellSeries {
	want := make(map[highlights.AttrRef]bool, len(q.Attrs))
	for _, a := range q.Attrs {
		want[a] = true
	}
	var out []CellSeries
	for id, cs := range m.Cells {
		if inBox != nil && !inBox[id] {
			continue
		}
		loc, ok := e.CellLocation(id)
		if !ok {
			continue
		}
		series := CellSeries{CellID: id, Loc: loc, Rows: cs.Rows,
			Attr: make(map[highlights.AttrRef]*highlights.Stats)}
		for ref, st := range cs.Num {
			if len(want) == 0 || want[ref] {
				series.Attr[ref] = st
			}
		}
		out = append(out, series)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CellID < out[j].CellID })
	return out
}

// memTab is one unsealed (epoch, table) contribution captured from the
// streaming memtable: a window-filtered, timestamp-ordered copy of its
// rows, safe to use after the engine lock is released.
type memTab struct {
	name string
	tab  *telco.Table
}

// collectMemTabs copies the memtable's window contribution out in epoch
// then table-name order. Caller holds e.mu (the watermark and the plan
// must come from one lock acquisition).
func collectMemTabs(memt *memtable.Memtable, w telco.TimeRange, tables []string, after telco.Epoch) []memTab {
	var out []memTab
	_ = memt.Scan(w, tables, after, func(name string, tab *telco.Table) error {
		out = append(out, memTab{name: name, tab: tab})
		return nil
	})
	return out
}

// appendMemRows folds captured memtable tables into an exact-row result,
// applying the query's spatial filter through the shared environment.
// Unsealed rows are strictly newer than every sealed leaf, so appending
// after the leaf scan keeps each table chronological.
func (e *Engine) appendMemRows(env *queryEnv, memTabs []memTab, res *Result) {
	if len(memTabs) == 0 {
		return
	}
	if res.Rows == nil {
		res.Rows = make(map[string]*telco.Table)
	}
	for _, mt := range memTabs {
		cellIdx := mt.tab.Schema.FieldIndex(telco.AttrCellID)
		dst := res.Rows[mt.name]
		if dst == nil {
			dst = telco.NewTable(mt.tab.Schema)
			res.Rows[mt.name] = dst
		}
		for _, r := range mt.tab.Rows {
			if env.inBox != nil && cellIdx >= 0 && !env.inBox[r[cellIdx].Int64()] {
				continue
			}
			dst.Append(r)
			res.Profile.MemRows++
		}
	}
}

// fetchRows streams the window's non-decayed snapshots and filters records
// by window, box and table selection. Segment leaves prune chunks through
// their zone maps (window bounds, cell sketch) before decompressing — the
// per-row filters below remain authoritative, pruning only skips chunks
// that provably hold no passing row. ctx is consulted before each snapshot.
//
// With ScanWorkers > 1 the leaf×table scans fan out across the parallel
// scheduler: each unit decodes and filters into a private table, and the
// order-preserving emit appends them leaf by leaf (table names sorted
// within a leaf), so every per-table row sequence is bit-for-bit the one
// the sequential path produces.
func (e *Engine) fetchRows(ctx context.Context, q Query, env *queryEnv, leaves []leafRef, res *Result) error {
	res.Rows = make(map[string]*telco.Table)
	c := e.codec()

	// keepLeaf applies the decay skip and §V-A leaf spatial pruning with
	// the sequential path's exact bookkeeping.
	keepLeaf := func(l leafRef) bool {
		if l.decayed || l.refs == nil {
			return false
		}
		if e.opts.LeafSpatialPrune && env.inBox != nil && l.sum != nil {
			hit := false
			for id := range l.sum.Cells {
				if env.inBox[id] {
					hit = true
					break
				}
			}
			if !hit {
				res.PrunedLeaves++
				return false
			}
		}
		return true
	}
	filterInto := func(dst *telco.Table, tab *telco.Table) {
		tsIdx := tab.Schema.FieldIndex(telco.AttrTS)
		cellIdx := tab.Schema.FieldIndex(telco.AttrCellID)
		for _, r := range tab.Rows {
			if tsIdx >= 0 && !r[tsIdx].IsNull() && !q.Window.Contains(r[tsIdx].Time()) {
				continue
			}
			if env.inBox != nil && cellIdx >= 0 && !env.inBox[r[cellIdx].Int64()] {
				continue
			}
			dst.Append(r)
		}
	}

	if e.scanWorkers() <= 1 {
		// Sequential path: the historical code shape, kept byte-for-byte
		// comparable for differential testing.
		for _, l := range leaves {
			if !keepLeaf(l) {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			for name, ref := range l.refs {
				if !env.wantTable(name) {
					continue
				}
				dst := res.Rows[name]
				if dst == nil {
					schema := telco.SchemaByName(name)
					if schema == nil {
						return fmt.Errorf("core: decode %s: unknown schema %q", ref, name)
					}
					dst = telco.NewTable(schema)
					res.Rows[name] = dst
				}
				scanned, pruned, err := e.scanLeafTable(name, ref, c, env.pr, &res.Profile, func(tab *telco.Table) error {
					filterInto(dst, tab)
					return nil
				})
				if err != nil {
					return err
				}
				res.ScannedChunks += scanned
				res.PrunedChunks += pruned
			}
			res.ScannedLeaves++
		}
		return nil
	}

	// Parallel path. The serial prepass applies the leaf-level skips (so
	// PrunedLeaves/ScannedLeaves count exactly as above) and lays out one
	// unit per surviving (leaf, table) pair, table names sorted within
	// each leaf for a deterministic unit order.
	type rowScan struct {
		tab     *telco.Table
		scanned int
		pruned  int
	}
	type rowUnitSpec struct {
		name, ref string
		schema    *telco.Schema
	}
	var specs []rowUnitSpec
	for _, l := range leaves {
		if !keepLeaf(l) {
			continue
		}
		names := make([]string, 0, len(l.refs))
		for name := range l.refs {
			if env.wantTable(name) {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			schema := telco.SchemaByName(name)
			if schema == nil {
				return fmt.Errorf("core: decode %s: unknown schema %q", l.refs[name], name)
			}
			specs = append(specs, rowUnitSpec{name: name, ref: l.refs[name], schema: schema})
		}
		res.ScannedLeaves++
	}
	units := make([]scanUnit, len(specs))
	for i, sp := range specs {
		sp := sp
		units[i] = func(w *scanWorker) (any, error) {
			out := rowScan{tab: telco.NewTable(sp.schema)}
			var err error
			out.scanned, out.pruned, err = e.scanLeafTable(sp.name, sp.ref, c, env.pr, w.prof, func(tab *telco.Table) error {
				filterInto(out.tab, tab)
				return nil
			})
			return out, err
		}
	}
	return e.runUnits(ctx, e.scanWorkers(), units, &res.Profile, func(i int, v any) error {
		out := v.(rowScan)
		name := specs[i].name
		dst := res.Rows[name]
		if dst == nil {
			res.Rows[name] = out.tab
		} else {
			dst.Rows = append(dst.Rows, out.tab.Rows...)
		}
		res.ScannedChunks += out.scanned
		res.PrunedChunks += out.pruned
		return nil
	})
}

// ScanTables streams the window's stored records table-by-table: snapshots
// are pruned through the temporal index, decompressed, parsed and filtered
// to the window. Decayed snapshots are skipped (their raw data is gone).
// This is the access path SPATE-SQL executes declarative queries over.
func (e *Engine) ScanTables(w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	return e.ScanTablesContext(context.Background(), w, tables, fn)
}

// ScanTablesContext is ScanTables with cancellation: a canceled ctx stops
// the scan between snapshot decompressions, so an abandoned SQL request
// does not keep reading and inflating blocks.
func (e *Engine) ScanTablesContext(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	return e.ScanTablesSpec(ctx, w, tables, nil, fn)
}

// ScanTablesSpec is ScanTablesContext with a pushdown spec. The spec is a
// prefilter — callers re-evaluate their own predicates — so it only makes
// the scan cheaper: v3 leaves decode just the referenced column streams
// (unprojected positions surface as NULL), per-column zone maps prune
// chunks, and rows failing the spec's predicates, exact time window or
// null-timestamp rule are dropped before fn sees them. A nil spec scans
// everything.
func (e *Engine) ScanTablesSpec(ctx context.Context, w telco.TimeRange, tables []string, spec *ScanSpec, fn func(string, *telco.Table) error) error {
	e.mu.RLock()
	leaves := e.rowLeaves(w)
	memt, memAfter := e.memAfterLocked()
	var memTabs []memTab
	if memt != nil {
		memTabs = collectMemTabs(memt, w, tables, memAfter)
	}
	e.mu.RUnlock()
	env := &queryEnv{pr: leafPrune{window: &w}}
	if len(tables) > 0 {
		env.tables = make(map[string]struct{}, len(tables))
		for _, t := range tables {
			env.tables[t] = struct{}{}
		}
	}
	c := e.codec()
	prof := ProfileFromContext(ctx)

	// scanOne decodes one (leaf, table) into a window/spec-filtered table.
	// Chunks outside the window are skipped before decompression; surviving
	// chunks still pass the per-row filter, and their rows accumulate into
	// one table per leaf so fn observes the same call sequence as with
	// whole-blob leaves.
	scanOne := func(name, ref string, schema *telco.Schema, p *Profile) (*telco.Table, error) {
		filtered := telco.NewTable(schema)
		_, _, err := e.scanLeafTableSpec(name, ref, c, env.pr, spec, p, func(tab *telco.Table) error {
			tsIdx := tab.Schema.FieldIndex(telco.AttrTS)
			for _, r := range tab.Rows {
				if keepRowTS(r, tsIdx, w, spec) {
					filtered.Rows = append(filtered.Rows, r)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return filtered, nil
	}

	if e.scanWorkers() <= 1 {
		// Sequential path: the historical code shape.
		for _, l := range leaves {
			if l.decayed || l.refs == nil {
				if prof != nil && l.decayed {
					prof.LeavesDecayed++
				}
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			if prof != nil {
				prof.LeavesScanned++
			}
			for name, ref := range l.refs {
				if !env.wantTable(name) {
					continue
				}
				schema := telco.SchemaByName(name)
				if schema == nil {
					return fmt.Errorf("core: decode %s: unknown schema %q", ref, name)
				}
				filtered, err := scanOne(name, ref, schema, prof)
				if err != nil {
					return err
				}
				if filtered.Len() == 0 {
					continue
				}
				if err := fn(name, filtered); err != nil {
					return err
				}
			}
		}
	} else {
		// Parallel path: one unit per surviving (leaf, table), emitted to
		// fn in leaf order with table names sorted within each leaf —
		// per-table call order matches the sequential path exactly.
		type specUnit struct {
			name, ref string
			schema    *telco.Schema
		}
		var specs []specUnit
		for _, l := range leaves {
			if l.decayed || l.refs == nil {
				if prof != nil && l.decayed {
					prof.LeavesDecayed++
				}
				continue
			}
			if prof != nil {
				prof.LeavesScanned++
			}
			names := make([]string, 0, len(l.refs))
			for name := range l.refs {
				if env.wantTable(name) {
					names = append(names, name)
				}
			}
			sort.Strings(names)
			for _, name := range names {
				schema := telco.SchemaByName(name)
				if schema == nil {
					return fmt.Errorf("core: decode %s: unknown schema %q", l.refs[name], name)
				}
				specs = append(specs, specUnit{name: name, ref: l.refs[name], schema: schema})
			}
		}
		units := make([]scanUnit, len(specs))
		for i, sp := range specs {
			sp := sp
			units[i] = func(sw *scanWorker) (any, error) {
				t, err := scanOne(sp.name, sp.ref, sp.schema, sw.prof)
				return t, err
			}
		}
		err := e.runUnits(ctx, e.scanWorkers(), units, prof, func(i int, v any) error {
			filtered := v.(*telco.Table)
			if filtered.Len() == 0 {
				return nil
			}
			return fn(specs[i].name, filtered)
		})
		if err != nil {
			return err
		}
	}
	// Unsealed rows stream last — strictly newer than every sealed leaf,
	// one window-filtered table per buffered (epoch, table), the same
	// call shape a sealed-leaf scan produces. The union path honors the
	// spec too: memtable rows pass the same predicate and time prefilter
	// sealed leaves apply, so fresh rows never leak around a pushdown.
	for _, mt := range memTabs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if spec != nil {
			tsIdx := mt.tab.Schema.FieldIndex(telco.AttrTS)
			rows := mt.tab.Rows[:0]
			for _, r := range mt.tab.Rows {
				if keepRowTS(r, tsIdx, w, spec) {
					rows = append(rows, r)
				}
			}
			mt.tab.Rows = rows
			newSpecScan(spec, mt.tab.Schema).filter(mt.tab)
			if mt.tab.Len() == 0 {
				continue
			}
		}
		if prof != nil {
			prof.MemRows += mt.tab.Len()
		}
		if err := fn(mt.name, mt.tab); err != nil {
			return err
		}
	}
	return nil
}

// keepRowTS is the row-level time filter of a (possibly spec-carrying)
// table scan: rows inside the window pass, rows without a timestamp pass
// unless the spec's WHERE clause carried a timestamp conjunct, and the
// spec's exact window narrows the scan window when present.
func keepRowTS(r telco.Record, tsIdx int, w telco.TimeRange, spec *ScanSpec) bool {
	if tsIdx < 0 || r[tsIdx].IsNull() {
		return spec == nil || !spec.RequireTS
	}
	t := r[tsIdx].Time()
	if !w.Contains(t) {
		return false
	}
	return spec == nil || spec.Window.Contains(t.UnixNano())
}

// cacheKey renders a deterministic key for the result cache.
func (q Query) cacheKey() string {
	var b strings.Builder
	for _, a := range q.Attrs {
		b.WriteString(a.String())
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "|%v|%d|%d|%v|%v|%v", q.Box,
		q.Window.From.Unix(), q.Window.To.Unix(), q.Tables, q.ExactRows, q.Fast)
	return b.String()
}

// ResultCache is the engine's pluggable result-cache contract — the
// mechanism behind the paper's zoom-in behaviour, where a narrowed window
// |w'| < |w| "can be served directly from the cache". The engine calls
// Put on every uncached evaluation, Get before evaluating, Invalidate
// when decay or fresh streamed rows change what a period's answer would
// be, and Clear on ingest. Implementations must be safe for concurrent
// use and must honor the invalidation contract: every entry whose
// ServedPeriod overlaps a given (half-open) range is dropped.
//
// The built-in implementation is a small count-bounded map; the serving
// tier (internal/serving) plugs a shared bytes-bounded LRU in through
// Options.ResultCache so every engine in a process draws on one budget.
type ResultCache interface {
	Get(key string) (*Result, bool)
	Put(key string, r *Result)
	Invalidate(ranges []telco.TimeRange)
	Clear()
}

// resultCache is the built-in count-bounded ResultCache. Entries
// remember the period their answer describes, so decay can invalidate
// only the results its evictions could have changed instead of dropping
// the whole cache.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	bytes int64
	items map[string]*Result
	sizes map[string]int64
	order []string

	evictions     *obs.Counter
	invalidations *obs.Counter
}

// newResultCache builds the built-in cache and registers its occupancy
// gauges and churn counters (tier="engine") on reg. GaugeFunc
// re-registration replaces the callback, so with several engines in one
// process the newest engine's built-in cache reports — processes that
// want one coherent view plug a shared serving cache in instead.
func newResultCache(capacity int, reg *obs.Registry) *resultCache {
	c := &resultCache{cap: capacity, items: make(map[string]*Result), sizes: make(map[string]int64)}
	c.evictions = reg.Counter("spate_result_cache_evictions_total",
		"Cached results evicted to stay within bounds.", "tier", "engine")
	c.invalidations = reg.Counter("spate_result_cache_invalidations_total",
		"Cached results dropped by decay/ingest invalidation.", "tier", "engine")
	reg.GaugeFunc("spate_result_cache_entries",
		"Cached exploration results.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.items))
		}, "tier", "engine")
	reg.GaugeFunc("spate_result_cache_bytes",
		"Estimated bytes held by cached exploration results.", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.bytes)
		}, "tier", "engine")
	return c
}

func (c *resultCache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.items[key]
	return r, ok
}

func (c *resultCache) Put(key string, r *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.items[key]; !exists {
		for len(c.items) >= c.cap && len(c.order) > 0 {
			oldest := c.order[0]
			c.order = c.order[1:]
			c.dropLocked(oldest)
			c.evictions.Inc()
		}
		c.order = append(c.order, key)
	} else {
		c.bytes -= c.sizes[key]
	}
	c.items[key] = r
	c.sizes[key] = r.SizeBytes()
	c.bytes += c.sizes[key]
}

// dropLocked removes one entry with its byte accounting; caller holds
// c.mu.
func (c *resultCache) dropLocked(key string) {
	c.bytes -= c.sizes[key]
	delete(c.items, key)
	delete(c.sizes, key)
}

// Invalidate drops every cached result whose served period intersects any
// of the given ranges. ServedPeriod always covers the data a result was
// computed from (it equals the query window on the exact path and the
// covering node's larger period under Fast/prefetch), so a disjoint entry
// provably cannot observe the evicted data and survives. Ranges are
// half-open like telco.TimeRange: an entry exactly adjacent to a range
// does not overlap it and stays.
func (c *resultCache) Invalidate(ranges []telco.TimeRange) {
	if len(ranges) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	keep := c.order[:0]
	for _, key := range c.order {
		r := c.items[key]
		stale := false
		for _, tr := range ranges {
			if r.ServedPeriod.Overlaps(tr) {
				stale = true
				break
			}
		}
		if stale {
			c.dropLocked(key)
			c.invalidations.Inc()
		} else {
			keep = append(keep, key)
		}
	}
	c.order = keep
}

func (c *resultCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items = make(map[string]*Result)
	c.sizes = make(map[string]int64)
	c.order = nil
	c.bytes = 0
}

// SizeBytes estimates the retained heap footprint of a result — the unit
// bytes-bounded result caches (the serving tier's shared LRU, and the
// built-in cache's occupancy gauge) budget by. It costs maps and slices
// at shallow per-element sizes, so it is an estimate, but a
// deterministic one, and cheap enough to run once per cache Put.
func (r *Result) SizeBytes() int64 {
	size := int64(512) // struct shell: periods, counters, profile
	size += summarySizeBytes(r.Summary)
	for i := range r.Cells {
		cs := &r.Cells[i]
		size += 64
		for ref := range cs.Attr {
			size += int64(len(ref.Table)+len(ref.Attr)) + 96
		}
	}
	for _, h := range r.Highlights {
		size += int64(len(h.Attr.Table)+len(h.Attr.Attr)+len(h.Value)) + 64
	}
	for name, t := range r.Rows {
		size += int64(len(name)) + 96
		for _, rec := range t.Rows {
			size += memtable.Size(rec)
		}
	}
	size += int64(len(r.Stages)) * 48
	return size
}

// summarySizeBytes estimates a highlight summary's footprint.
func summarySizeBytes(s *highlights.Summary) int64 {
	if s == nil {
		return 0
	}
	size := int64(128)
	for ref := range s.Num {
		size += int64(len(ref.Table)+len(ref.Attr)) + 112
	}
	for ref, vals := range s.Cat {
		size += int64(len(ref.Table)+len(ref.Attr)) + 48
		for v := range vals {
			size += int64(len(v)) + 72
		}
	}
	for _, cs := range s.Cells {
		size += 64 + int64(len(cs.Num))*112
	}
	return size
}
