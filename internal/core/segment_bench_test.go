package core

import (
	"testing"
	"time"

	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// reportChunkMetrics folds the engine's chunk-level counters into the
// benchmark output: bytes inflated from the DFS per operation, and the
// chunk-cache hit rate over the whole run. benchjson picks these up for
// BENCH_segment.json.
func reportChunkMetrics(b *testing.B, reg *obs.Registry) {
	b.ReportMetric(float64(reg.Counter("spate_leaf_decompressed_bytes_total", "").Value())/float64(b.N),
		"inflatedB/op")
	hits := float64(reg.Counter("spate_chunk_cache_hits_total", "").Value())
	misses := float64(reg.Counter("spate_chunk_cache_misses_total", "").Value())
	if hits+misses > 0 {
		b.ReportMetric(hits/(hits+misses), "cache-hit-rate")
	}
}

// BenchmarkExploreWindowPruning measures what the chunked segment format
// buys a narrow windowed scan. Chunks cluster by timestamp, so a 10-minute
// window over half-hour epochs lets the zone maps prune most of each leaf
// before decompression; legacy whole-blob leaves must inflate everything
// the index hands them. The nocache variants disable the chunk cache so
// inflatedB/op isolates pruning alone; the cached variant shows the steady
// state where repeats are absorbed entirely.
func BenchmarkExploreWindowPruning(b *testing.B) {
	run := func(b *testing.B, chunkSize int, cacheBytes int64) {
		reg := obs.NewRegistry()
		cfg := gen.DefaultConfig(0.004)
		cfg.Antennas = 30
		cfg.Users = 300
		cfg.CDRPerEpoch = 600
		g := gen.New(cfg)
		fs, err := dfs.NewCluster(b.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
		if err != nil {
			b.Fatal(err)
		}
		e, err := Open(fs, g.CellTable(), Options{ChunkSize: chunkSize, ChunkCacheBytes: cacheBytes, Obs: reg})
		if err != nil {
			b.Fatal(err)
		}
		e0 := telco.EpochOf(cfg.Start)
		for i := 0; i < 4; i++ {
			s := snapshot.New(e0 + telco.Epoch(i))
			s.Add(g.CDRTable(s.Epoch))
			if _, err := e.Ingest(s); err != nil {
				b.Fatal(err)
			}
		}
		q := Query{
			Window:    telco.NewTimeRange(cfg.Start.Add(10*time.Minute), cfg.Start.Add(20*time.Minute)),
			ExactRows: true,
			Tables:    []string{"CDR"},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.cache.Clear() // defeat the result cache; chunk cache behaves per variant
			if _, err := e.Explore(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		reportChunkMetrics(b, reg)
	}
	b.Run("segment", func(b *testing.B) { run(b, 4<<10, 0) })
	b.Run("segment-nocache", func(b *testing.B) { run(b, 4<<10, -1) })
	b.Run("legacy-nocache", func(b *testing.B) { run(b, -1, -1) })
}
