package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"spate/internal/obs"
	"spate/internal/telco"
)

func rcWindow(fromHour, toHour int) telco.TimeRange {
	base := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	return telco.NewTimeRange(base.Add(time.Duration(fromHour)*time.Hour), base.Add(time.Duration(toHour)*time.Hour))
}

// TestResultCacheInvalidateBoundaries pins the half-open invalidation
// contract: an entry whose served period is exactly adjacent to a stale
// range shares a boundary instant but no data, so it must survive, while
// any true overlap — even a single shared hour — drops the entry.
func TestResultCacheInvalidateBoundaries(t *testing.T) {
	cases := []struct {
		name    string
		served  telco.TimeRange
		stale   telco.TimeRange
		dropped bool
	}{
		{"identical", rcWindow(0, 4), rcWindow(0, 4), true},
		{"contained", rcWindow(1, 3), rcWindow(0, 4), true},
		{"containing", rcWindow(0, 4), rcWindow(1, 3), true},
		{"overlap_left", rcWindow(0, 2), rcWindow(1, 4), true},
		{"overlap_right", rcWindow(2, 6), rcWindow(0, 3), true},
		{"adjacent_before", rcWindow(0, 2), rcWindow(2, 4), false},
		{"adjacent_after", rcWindow(4, 6), rcWindow(2, 4), false},
		{"disjoint", rcWindow(0, 1), rcWindow(5, 6), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newResultCache(8, obs.NewRegistry())
			c.Put("k", &Result{ServedPeriod: tc.served})
			c.Invalidate([]telco.TimeRange{tc.stale})
			_, ok := c.Get("k")
			if ok == tc.dropped {
				t.Errorf("served %v vs stale %v: survived=%v, want dropped=%v",
					tc.served, tc.stale, ok, tc.dropped)
			}
		})
	}
}

// TestResultCacheInvalidateMultiRange checks that one sweep with several
// stale ranges drops exactly the overlapping entries and keeps eviction
// order intact for the survivors.
func TestResultCacheInvalidateMultiRange(t *testing.T) {
	reg := obs.NewRegistry()
	c := newResultCache(8, reg)
	c.Put("a", &Result{ServedPeriod: rcWindow(0, 2)})
	c.Put("b", &Result{ServedPeriod: rcWindow(2, 4)})
	c.Put("c", &Result{ServedPeriod: rcWindow(4, 6)})
	c.Invalidate([]telco.TimeRange{rcWindow(1, 2), rcWindow(5, 6)})
	if _, ok := c.Get("a"); ok {
		t.Error("a overlaps [1,2): should be dropped")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b is adjacent to both ranges: should survive")
	}
	if _, ok := c.Get("c"); ok {
		t.Error("c overlaps [5,6): should be dropped")
	}
	if got := c.invalidations.Value(); got != 2 {
		t.Errorf("invalidations = %d, want 2", got)
	}
}

// TestResultCacheEvictionAccounting checks the FIFO bound, the eviction
// counter and the byte accounting through put/evict/clear.
func TestResultCacheEvictionAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	c := newResultCache(2, reg)
	c.Put("a", &Result{ServedPeriod: rcWindow(0, 1)})
	c.Put("b", &Result{ServedPeriod: rcWindow(1, 2)})
	c.Put("c", &Result{ServedPeriod: rcWindow(2, 3)}) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("a should have been evicted (FIFO)")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b should still be cached")
	}
	if got := c.evictions.Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	// Replacing an existing key must not evict or leak byte accounting.
	c.Put("b", &Result{ServedPeriod: rcWindow(1, 2)})
	if got := c.evictions.Value(); got != 1 {
		t.Errorf("evictions after replace = %d, want 1", got)
	}
	var want int64
	c.mu.Lock()
	for _, s := range c.sizes {
		want += s
	}
	if c.bytes != want {
		t.Errorf("bytes = %d, want sum of sizes %d", c.bytes, want)
	}
	c.mu.Unlock()
	c.Clear()
	c.mu.Lock()
	if c.bytes != 0 || len(c.items) != 0 || len(c.order) != 0 {
		t.Errorf("clear left bytes=%d items=%d order=%d", c.bytes, len(c.items), len(c.order))
	}
	c.mu.Unlock()
}

// TestResultCacheConcurrent hammers get/put/invalidate/clear from many
// goroutines; run under -race it pins the cache's concurrency contract.
func TestResultCacheConcurrent(t *testing.T) {
	c := newResultCache(16, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24)
				switch i % 5 {
				case 0, 1:
					c.Put(key, &Result{ServedPeriod: rcWindow(i%6, i%6+2)})
				case 2, 3:
					c.Get(key)
				case 4:
					if i%20 == 4 {
						c.Invalidate([]telco.TimeRange{rcWindow(i%4, i%4+1)})
					} else if i%50 == 24 {
						c.Clear()
					} else {
						c.Get(key)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
