package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/geo"
	"spate/internal/obs"
	"spate/internal/scanspec"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// normalizeParallel strips the fields that legitimately differ between a
// sequential and a parallel evaluation of the same query: wall-clock
// timings, trace ids, and the parallelism shape itself. Everything else —
// rows, aggregates, highlights, and every scan/prune/cache counter — must
// be bit-for-bit identical.
func normalizeParallel(res *Result) {
	res.Stages = nil
	res.leafDecode = 0
	res.Profile.TraceID = ""
	res.Profile.ReadNS = 0
	res.Profile.DecodeNS = 0
	res.Profile.LookupNS = 0
	res.Profile.ScanWorkers = 0
	res.Profile.ParallelUnits = 0
	res.Profile.Workers = nil
}

// TestParallelExploreParity is the PR's core property test: the same store
// queried with 1, 4 and 8 scan workers must produce identical results —
// same rows in the same per-table order, same aggregates, and the same
// deterministic cost counters. The engines are opened fresh over one
// shared DFS (the recovery path), so sealed days force parallel summary
// rebuilds too.
func TestParallelExploreParity(t *testing.T) {
	r := newRig(t, Options{LeafSpatialPrune: true})
	r.ingestEpochs(t, telco.EpochsPerDay+4) // one sealed day + an open tail
	r.e.FinishIngest()

	open := func(workers int) *Engine {
		e, err := Open(r.fs, r.g.CellTable(), Options{
			ScanWorkers:      workers,
			LeafSpatialPrune: true,
			Obs:              obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	wFull := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(30*time.Hour))
	wSub := telco.NewTimeRange(r.cfg.Start.Add(2*time.Hour), r.cfg.Start.Add(9*time.Hour))
	queries := []Query{
		{Window: wFull, ExactRows: true},
		{Window: wSub, Box: geo.NewRect(0, 0, 40, 38), ExactRows: true, Tables: []string{"CDR"}},
		{Window: wSub, Box: geo.NewRect(70, 70, 79, 74), ExactRows: true},
		{Window: wSub},
	}

	type observation struct {
		explores []*Result
		rows     map[string][]telco.Record
		parts    []scanspec.Partial
	}
	spec := &scanspec.Spec{
		Preds:     []scanspec.Pred{{Col: "duration", Op: ">=", Kind: "int", Val: "60"}},
		Aggs:      []scanspec.Agg{{Fn: "COUNT"}, {Fn: "SUM", Col: "duration"}},
		RequireTS: true,
	}
	observe := func(e *Engine) observation {
		var o observation
		for _, q := range queries {
			res, err := e.Explore(q)
			if err != nil {
				t.Fatal(err)
			}
			normalizeParallel(res)
			o.explores = append(o.explores, res)
		}
		// Row streams: emit order across tables is unspecified (the
		// sequential path walks each leaf's tables in map order), but the
		// per-table concatenation is the parity contract.
		o.rows = make(map[string][]telco.Record)
		err := e.ScanTablesSpec(context.Background(), wSub, nil, nil,
			func(name string, tab *telco.Table) error {
				o.rows[name] = append(o.rows[name], tab.Rows...)
				return nil
			})
		if err != nil {
			t.Fatal(err)
		}
		parts, err := e.AggregatePartials(context.Background(), wFull, "CDR", spec)
		if err != nil {
			t.Fatal(err)
		}
		o.parts = parts
		return o
	}

	seq := observe(open(1))
	for _, workers := range []int{4, 8} {
		par := observe(open(workers))
		for i := range queries {
			if !reflect.DeepEqual(seq.explores[i], par.explores[i]) {
				t.Errorf("workers=%d query %d diverged from sequential:\nseq: %+v\npar: %+v",
					workers, i, seq.explores[i], par.explores[i])
			}
		}
		if !reflect.DeepEqual(seq.rows, par.rows) {
			t.Errorf("workers=%d ScanTablesSpec row streams diverged", workers)
		}
		if !reflect.DeepEqual(seq.parts, par.parts) {
			t.Errorf("workers=%d aggregate partials diverged:\nseq: %+v\npar: %+v",
				workers, seq.parts, par.parts)
		}
	}
}

// TestParallelProfileShape checks the new profile fields: a parallel
// exact-row query reports its fan-out, its dispatched units, and
// per-worker stats that sum to the unit count.
func TestParallelProfileShape(t *testing.T) {
	r := newRig(t, Options{ScanWorkers: 4})
	r.ingestEpochs(t, 6)
	r.e.FinishIngest()
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(3*time.Hour))
	res, err := r.e.Explore(Query{Window: w, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile.ScanWorkers != 4 {
		t.Errorf("ScanWorkers = %d, want 4", res.Profile.ScanWorkers)
	}
	if res.Profile.ParallelUnits == 0 {
		t.Error("ParallelUnits = 0 on a parallel exact-row query")
	}
	units := 0
	for i, wp := range res.Profile.Workers {
		units += wp.Units
		if i > 0 && wp.Worker <= res.Profile.Workers[i-1].Worker {
			t.Errorf("Workers not sorted by id: %+v", res.Profile.Workers)
		}
	}
	if units != res.Profile.ParallelUnits {
		t.Errorf("per-worker units sum to %d, want %d", units, res.Profile.ParallelUnits)
	}
}

// TestParallelScanCancellation cancels the context from inside the emit
// callback of a parallel scan; the scan must stop claiming units and
// surface context.Canceled instead of completing.
func TestParallelScanCancellation(t *testing.T) {
	r := newRig(t, Options{ScanWorkers: 4})
	// Enough leaves that units remain unclaimed past the scheduler's
	// bounded lookahead when the first table is emitted.
	r.ingestEpochs(t, 24)
	r.e.FinishIngest()
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(12*time.Hour))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	emits := 0
	err := r.e.ScanTablesSpec(ctx, w, nil, nil, func(string, *telco.Table) error {
		emits++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanTablesSpec after mid-scan cancel = %v, want context.Canceled", err)
	}
	if emits == 0 {
		t.Fatal("callback never ran")
	}
}

// TestRunUnitsOrderAndErrors drives the scheduler directly: emits must
// arrive in unit order whatever order workers finish in, and the
// lowest-index failure wins deterministically.
func TestRunUnitsOrderAndErrors(t *testing.T) {
	r := newRig(t, Options{ScanWorkers: 4})
	const n = 64
	units := make([]scanUnit, n)
	for i := range units {
		i := i
		units[i] = func(*scanWorker) (any, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // scramble completion order
			}
			return i, nil
		}
	}
	var got []int
	err := r.e.runUnits(context.Background(), 4, units, nil, func(i int, v any) error {
		got = append(got, v.(int))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("emit order broken at %d: got %v", i, got[:i+1])
		}
	}
	if len(got) != n {
		t.Fatalf("emitted %d units, want %d", len(got), n)
	}

	errLow := errors.New("low")
	errHigh := errors.New("high")
	for i := range units {
		i := i
		units[i] = func(*scanWorker) (any, error) {
			switch i {
			case 3:
				time.Sleep(5 * time.Millisecond)
				return nil, errLow
			case 10:
				return nil, errHigh
			default:
				return i, nil
			}
		}
	}
	err = r.e.runUnits(context.Background(), 4, units, nil, func(int, any) error { return nil })
	if !errors.Is(err, errLow) {
		t.Fatalf("error = %v, want lowest-index error %v", err, errLow)
	}
}

// TestFlightGroupDedupes pins the chunk singleflight contract: callers
// that arrive while a computation is in flight share its result without
// recomputing, and the entry is dropped afterwards so later callers
// compute afresh (the chunk cache, not the flight group, is the store).
func TestFlightGroupDedupes(t *testing.T) {
	var g flightGroup
	var computes atomic.Int32
	gate := make(chan struct{})
	entered := make(chan struct{})
	fn := func() ([]byte, error) {
		computes.Add(1)
		close(entered)
		<-gate
		return []byte("chunk"), nil
	}

	type outcome struct {
		data   []byte
		shared bool
		err    error
	}
	leaderDone := make(chan outcome, 1)
	go func() {
		d, s, err := g.do("k", fn)
		leaderDone <- outcome{d, s, err}
	}()
	<-entered // the leader is inside fn and holds the flight entry

	const followers = 7
	followerDone := make(chan outcome, followers)
	for i := 0; i < followers; i++ {
		go func() {
			d, s, err := g.do("k", func() ([]byte, error) {
				t.Error("follower ran fn while leader was in flight")
				return nil, nil
			})
			followerDone <- outcome{d, s, err}
		}()
	}
	// Give every follower time to reach the in-flight entry, then release
	// the leader. A follower that raced past registration would run its fn
	// and trip the t.Error above.
	time.Sleep(100 * time.Millisecond)
	close(gate)

	lead := <-leaderDone
	if lead.shared || string(lead.data) != "chunk" || lead.err != nil {
		t.Fatalf("leader outcome = %+v", lead)
	}
	for i := 0; i < followers; i++ {
		f := <-followerDone
		if !f.shared || string(f.data) != "chunk" || f.err != nil {
			t.Fatalf("follower outcome = %+v", f)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}

	// The entry is gone: a fresh caller computes again.
	d, shared, err := g.do("k", func() ([]byte, error) { return []byte("again"), nil })
	if shared || string(d) != "again" || err != nil {
		t.Fatalf("post-flight call = (%q, %v, %v)", d, shared, err)
	}
}

// TestResultFlightLeaderFailure pins the retry contract: a leader that
// fails publishes nil, and its waiters see that and retry rather than
// inheriting the failure.
func TestResultFlightLeaderFailure(t *testing.T) {
	var f resultFlight
	c1, leader := f.begin("q")
	if !leader {
		t.Fatal("first caller is not the leader")
	}
	begun := make(chan *resultCall)
	got := make(chan *Result)
	go func() {
		c2, leader2 := f.begin("q")
		if leader2 {
			t.Error("second caller became leader while first was in flight")
		}
		begun <- c2
		<-c2.done
		got <- c2.res
	}()
	<-begun
	f.finish("q", c1, nil) // the leader failed (e.g. its ctx canceled)
	if res := <-got; res != nil {
		t.Fatalf("waiter received %+v from a failed leader, want nil", res)
	}
	// The key is free again: the retrying waiter can lead.
	if _, leader := f.begin("q"); !leader {
		t.Fatal("key still held after finish")
	}
}

// TestExploreResultSingleflight exercises the wired-up result flight: a
// herd of identical queries arriving while the first one is still
// scanning costs exactly one evaluation, and the sharers are counted in
// spate_result_singleflight_shared_total.
func TestExploreResultSingleflight(t *testing.T) {
	cfg := gen.DefaultConfig(0.004)
	cfg.Antennas = 30
	cfg.Users = 300
	cfg.CDRPerEpoch = 120
	cfg.NMSReportsPerCell = 0.8
	g := gen.New(cfg)
	// Throttled reads keep the leader's scan in flight long enough for the
	// herd to pile onto it.
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{
		BlockSize: 1 << 20, DataNodes: 3, Replication: 2, ReadMBps: 1,
		Obs: obs.NewNoop(),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	e, err := Open(fs, g.CellTable(), Options{ScanWorkers: 2, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	e0 := telco.EpochOf(cfg.Start)
	for i := 0; i < 3; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(g.CDRTable(s.Epoch))
		if _, err := e.Ingest(s); err != nil {
			t.Fatal(err)
		}
	}
	e.FinishIngest()

	q := Query{
		Window:    telco.NewTimeRange(cfg.Start, cfg.Start.Add(2*time.Hour)),
		ExactRows: true,
	}
	misses := reg.Counter("spate_explore_cache_misses_total", "")
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.Explore(q)
		leaderErr <- err
	}()
	// Wait for the leader to enter the uncached path, then unleash the
	// herd while it is still reading at 1 MB/s.
	for i := 0; misses.Value() == 0; i++ {
		if i > 5000 {
			t.Fatal("leader never started scanning")
		}
		time.Sleep(time.Millisecond)
	}
	const herd = 4
	var wg sync.WaitGroup
	var rows atomic.Int64
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Explore(q)
			if err != nil {
				t.Error(err)
				return
			}
			rows.Add(int64(res.Summary.Rows))
		}()
	}
	wg.Wait()
	if err := <-leaderErr; err != nil {
		t.Fatal(err)
	}
	if v := misses.Value(); v != 1 {
		t.Errorf("cache misses = %d, want 1 (herd caused extra scans)", v)
	}
	sharedN := reg.Counter("spate_result_singleflight_shared_total", "").Value()
	hits := reg.Counter("spate_explore_cache_hits_total", "").Value()
	if sharedN+hits != herd {
		t.Errorf("shared (%d) + cache hits (%d) != herd size %d", sharedN, hits, herd)
	}
	if sharedN == 0 {
		t.Error("no query shared the in-flight result")
	}
	if rows.Load() == 0 {
		t.Error("herd answers were empty")
	}
}

// TestScanWorkersDefault pins the fan-out defaulting: 0 resolves to
// GOMAXPROCS (at least 1) and explicit values pass through.
func TestScanWorkersDefault(t *testing.T) {
	r := newRig(t, Options{})
	if got := r.e.scanWorkers(); got < 1 {
		t.Errorf("default scan workers = %d, want >= 1", got)
	}
	r2 := newRig(t, Options{ScanWorkers: 7})
	if got := r2.e.scanWorkers(); got != 7 {
		t.Errorf("scan workers = %d, want 7", got)
	}
}
