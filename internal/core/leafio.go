package core

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spate/internal/compress"
	"spate/internal/segment"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// This file is the engine's leaf I/O layer: the write path that renders a
// snapshot table into its on-disk leaf form (a chunked segment, or a legacy
// whole-blob when Options.ChunkSize is negative), and the read path that
// streams a stored leaf back out, pruning segment chunks by window and cell
// candidates before paying for decompression. Both formats flow through the
// same scan entry point so recovery, queries, SQL scans and the cluster RPC
// handlers never care which one a file carries.

// encBufPool recycles wire-text accumulation buffers across the per-table
// encode workers — two tables per epoch forever would otherwise churn the
// allocator with multi-megabyte buffers.
var encBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// encodedLeaf is one table rendered to its on-disk leaf form by an encode
// worker, with the per-stage wall times the ingest report folds in.
type encodedLeaf struct {
	data []byte // segment, or legacy compressed blob
	raw  int64  // uncompressed wire-text bytes

	// colNames and colStats report the v3 per-column codec choices and
	// entropy for the ingest stats feed (nil for v2/blob leaves).
	colNames []string
	colStats []segment.ColumnStat

	encodeNS   int64
	trainNS    int64
	compressNS int64

	err error
}

// encodeLeafTable renders one snapshot table into its leaf bytes. It is
// the body of an ingest encode worker and touches no engine state beyond
// maybeTrain (self-locking) and the codec read.
func (e *Engine) encodeLeafTable(s *snapshot.Snapshot, name string) encodedLeaf {
	var out encodedLeaf
	tab := s.Table(name)
	if tab == nil {
		out.err = fmt.Errorf("no table %q", name)
		return out
	}

	// Cluster rows by timestamp before rendering: records do not arrive
	// time-ordered within an epoch, and chunk zone maps only prune when
	// each chunk covers a narrow slice of the epoch's half hour. The sort
	// is stable and in place, so the in-memory table (summary folds), the
	// wire text and the stored leaf all agree on one canonical order —
	// legacy whole-blob writes share it, keeping both formats
	// row-for-row identical.
	t0 := time.Now()
	tsIdx := tab.Schema.FieldIndex(telco.AttrTS)
	cellIdx := tab.Schema.FieldIndex(telco.AttrCellID)
	if tsIdx >= 0 {
		sort.SliceStable(tab.Rows, func(i, j int) bool {
			a, b := tab.Rows[i][tsIdx], tab.Rows[j][tsIdx]
			if a.IsNull() || b.IsNull() {
				return false
			}
			return a.Time().Before(b.Time())
		})
	}

	// Wire-text render, remembering each row's end offset and pruning
	// metadata so the segment writer can re-walk the text row by row.
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		encBufPool.Put(buf)
	}()
	buf.Reset()
	ends := make([]int, len(tab.Rows))
	metas := make([]segment.RowMeta, len(tab.Rows))
	var lb strings.Builder
	for i, r := range tab.Rows {
		lb.Reset()
		r.EncodeLine(&lb)
		lb.WriteByte('\n')
		buf.WriteString(lb.String())
		ends[i] = buf.Len()
		var m segment.RowMeta
		if tsIdx >= 0 && !r[tsIdx].IsNull() {
			m.TS, m.HasTS = r[tsIdx].Time().UnixNano(), true
		}
		if cellIdx >= 0 {
			// Null cells hash as id 0 — the same value the row filters
			// compare against — so the sketch stays free of false negatives.
			m.Cell, m.HasCell = r[cellIdx].Int64(), true
		}
		metas[i] = m
	}
	out.raw = int64(buf.Len())
	out.encodeNS = time.Since(t0).Nanoseconds()

	t0 = time.Now()
	e.maybeTrain(buf.Bytes())
	out.trainNS = time.Since(t0).Nanoseconds()

	t0 = time.Now()
	c := e.codec()
	switch {
	case e.opts.ChunkSize < 0:
		// Legacy whole-blob leaf: one compressed run of the wire text.
		out.data = c.Compress(nil, buf.Bytes())
	case e.opts.SegmentVersion == segment.RowVersion:
		w := segment.NewWriter(c, e.opts.ChunkSize)
		text := buf.Bytes()
		start := 0
		for i := range tab.Rows {
			if err := w.AppendRow(text[start:ends[i]], metas[i]); err != nil {
				out.err = err
				return out
			}
			start = ends[i]
		}
		data, _, err := w.Finish()
		if err != nil {
			out.err = err
			return out
		}
		out.data = data
	default:
		// v3 column-major segment: the same rows in the same canonical
		// order, stored as per-column streams of escaped wire fields.
		w := segment.NewColumnWriter(c, e.opts.ChunkSize, tab.Schema.NumFields())
		fields := make([]string, 0, tab.Schema.NumFields())
		for i, r := range tab.Rows {
			fields = r.AppendFields(fields[:0])
			if err := w.AppendRowFields(fields, metas[i]); err != nil {
				out.err = err
				return out
			}
		}
		data, _, err := w.Finish()
		if err != nil {
			out.err = err
			return out
		}
		out.data = data
		out.colNames = tab.Schema.FieldNames()
		out.colStats = w.ColumnStats()
	}
	out.compressNS = time.Since(t0).Nanoseconds()
	return out
}

// maxPruneCells caps the cell candidate list handed to chunk sketches: a
// box covering more cells than this probes the bloom filter so often that
// scanning the chunk is cheaper, so spatial chunk pruning switches off and
// the per-row filter alone applies.
const maxPruneCells = 512

// leafPrune carries a scan's chunk-level predicates. The zero value prunes
// nothing (every chunk decompresses), which is what summary rebuilds need.
type leafPrune struct {
	// window skips chunks whose [MinTS, MaxTS] cannot intersect it; nil
	// applies no temporal pruning.
	window *telco.TimeRange
	// spatial marks an active box filter; cells lists the candidate cell
	// ids inside the box (possibly none — then only chunks holding rows
	// without cell ids survive).
	spatial bool
	cells   []int64
}

// pruneReason says which chunk predicate fired: the timestamp zone map or
// the cell-id bloom sketch.
type pruneReason int

const (
	pruneNone pruneReason = iota
	pruneZone
	pruneBloom
)

// skip reports whether a chunk provably holds no row the scan's per-row
// filters would keep, and which predicate proved it. It is conservative:
// metadata-less rows defeat it.
func (pr leafPrune) skip(ch segment.Chunk) pruneReason {
	if pr.window != nil && !ch.OverlapsWindow(*pr.window) {
		return pruneZone
	}
	if pr.spatial {
		if len(pr.cells) == 0 {
			if !ch.HasCellGaps() {
				return pruneBloom
			}
			return pruneNone
		}
		if !ch.MayContainAnyCell(pr.cells) {
			return pruneBloom
		}
	}
	return pruneNone
}

// chunkCacheKey names one inflated chunk in the leaf cache; decay and
// compaction invalidate by the "<ref>#" prefix. The key pins the segment
// format version and the decoded column subset (cols is empty for a full
// row reconstruction), so a leaf rewritten under another layout — a v2→v3
// compaction upgrade — can never serve a stale decoded chunk, and scans
// projecting different column subsets never alias each other's text.
func chunkCacheKey(ref string, version, i int, cols string) string {
	k := ref + "#v" + strconv.Itoa(version) + "." + strconv.Itoa(i)
	if cols != "" {
		k += "?" + cols
	}
	return k
}

// legacyCacheSuffix keys a legacy whole-blob leaf's inflated text under the
// same "<ref>#" prefix segment chunks use, so prefix invalidation covers
// both formats.
const legacyCacheSuffix = "#blob"

// specScan is the schema-resolved view of a row-path ScanSpec: which
// column streams a v3 chunk must decode, the cache signature of that
// subset, and each predicate's schema position. The row path treats the
// spec as a prefilter — the SQL engine re-evaluates its WHERE clause — so
// unresolvable predicates are skipped (kept rows stay a superset) and
// row-major leaves simply decode in full.
type specScan struct {
	spec    *ScanSpec
	schema  *telco.Schema
	want    []int  // sorted schema indices to decode; nil = every column
	sig     string // cache signature of want ("" = every column)
	predIdx []int  // schema index per spec predicate, -1 when absent
}

func newSpecScan(spec *ScanSpec, schema *telco.Schema) *specScan {
	ss := &specScan{spec: spec, schema: schema}
	ss.predIdx = make([]int, len(spec.Preds))
	for i, p := range spec.Preds {
		ss.predIdx[i] = schema.FieldIndex(p.Col)
	}
	if spec.Columns == nil {
		return ss // caller materializes every column
	}
	need := make(map[int]bool)
	for _, col := range spec.Referenced() {
		if i := schema.FieldIndex(col); i >= 0 {
			need[i] = true
		}
	}
	// The engine's own row filters read the timestamp and cell id, so a
	// projected scan always materializes them too.
	if i := schema.FieldIndex(telco.AttrTS); i >= 0 {
		need[i] = true
	}
	if i := schema.FieldIndex(telco.AttrCellID); i >= 0 {
		need[i] = true
	}
	if len(need) >= schema.NumFields() {
		return ss
	}
	ss.want = make([]int, 0, len(need))
	for i := range need {
		ss.want = append(ss.want, i)
	}
	sort.Ints(ss.want)
	var b strings.Builder
	for i, ci := range ss.want {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(ci))
	}
	ss.sig = b.String()
	return ss
}

// zonePrune reports whether a v3 chunk's per-column integer zone maps
// prove one of the spec's predicates unsatisfiable for every row.
func (ss *specScan) zonePrune(ch segment.Chunk) bool {
	if ss == nil || len(ch.Cols) == 0 {
		return false
	}
	for pi, p := range ss.spec.Preds {
		ci := ss.predIdx[pi]
		if ci < 0 || ci >= len(ch.Cols) || ss.schema.Fields[ci].Kind != telco.KindInt {
			continue
		}
		if cm := ch.Cols[ci]; cm.HasZone && p.ZonePrune(cm.Min, cm.Max) {
			return true
		}
	}
	return false
}

// filter drops rows failing the spec's resolvable predicates, in place.
func (ss *specScan) filter(tab *telco.Table) {
	if ss == nil || len(ss.spec.Preds) == 0 {
		return
	}
	rows := tab.Rows[:0]
	for _, r := range tab.Rows {
		keep := true
		for pi, p := range ss.spec.Preds {
			if ci := ss.predIdx[pi]; ci >= 0 && !p.Eval(r[ci]) {
				keep = false
				break
			}
		}
		if keep {
			rows = append(rows, r)
		}
	}
	tab.Rows = rows
}

// blobText returns a legacy whole-blob leaf's inflated wire text through
// the chunk cache, accruing I/O costs into prof. Cache misses dedupe
// through the chunk singleflight: when another goroutine is already
// inflating this blob, the call waits and shares its text, charging
// nothing (the leader's profile carries the cost).
func (e *Engine) blobText(ref string, c compress.Codec, prof *Profile) ([]byte, error) {
	key := ref + legacyCacheSuffix
	text, ok := e.chunkCache.Get(key)
	if prof != nil {
		if ok {
			prof.CacheHits++
		} else {
			prof.CacheMisses++
		}
	}
	if ok {
		return text, nil
	}
	text, shared, err := e.chunkFlight.do(key, func() ([]byte, error) {
		t0 := time.Now()
		comp, err := e.fs.ReadFile(ref)
		if err != nil {
			return nil, fmt.Errorf("core: read %s: %w", ref, err)
		}
		t1 := time.Now()
		text, err := c.Decompress(nil, comp)
		if err != nil {
			return nil, fmt.Errorf("core: decompress %s: %w", ref, err)
		}
		e.met.leafBytes.Add(int64(len(text)))
		e.chunkCache.Put(key, text)
		if prof != nil {
			prof.DFSReads++
			prof.InflatedBytes += int64(len(text))
			prof.ReadNS += t1.Sub(t0).Nanoseconds()
			prof.DecodeNS += time.Since(t1).Nanoseconds()
		}
		return text, nil
	})
	if shared {
		e.met.sfShared.Inc()
	}
	return text, err
}

// chunkText returns chunk i's wire text through the chunk cache. On a v3
// segment with a narrowing projection only the needed column streams
// inflate and the reconstruction carries empty fields (SQL NULL) in the
// unprojected positions; every other shape reconstructs the full rows.
func (e *Engine) chunkText(r *segment.Reader, ref string, i int, ch segment.Chunk, ss *specScan, prof *Profile) ([]byte, error) {
	var want []int
	var sig string
	if ss != nil && ss.want != nil && r.Columnar() {
		want, sig = ss.want, ss.sig
	}
	key := chunkCacheKey(ref, r.Version(), i, sig)
	var t0 time.Time
	if prof != nil {
		t0 = time.Now()
	}
	text, ok := e.chunkCache.Get(key)
	if prof != nil {
		prof.LookupNS += time.Since(t0).Nanoseconds()
		if ok {
			prof.CacheHits++
		} else {
			prof.CacheMisses++
		}
	}
	if ok {
		return text, nil
	}
	// Miss: fetch and inflate through the singleflight, so concurrent scan
	// workers (or concurrent queries) needing the same chunk pay for one
	// decode. The leader charges its profile; sharers charge nothing.
	text, shared, err := e.chunkFlight.do(key, func() ([]byte, error) {
		t1 := time.Now()
		var text []byte
		if want == nil {
			var err error
			text, err = r.ChunkData(i)
			if err != nil {
				return nil, fmt.Errorf("core: read %s: %w", ref, err)
			}
			if prof != nil {
				prof.InflatedBytes += int64(len(text))
				if r.Columnar() {
					prof.ColumnsDecoded += len(ch.Cols)
				}
			}
			e.met.leafBytes.Add(int64(len(text)))
		} else {
			cols, inflated, err := r.ChunkColumns(i, want)
			if err != nil {
				return nil, fmt.Errorf("core: read %s: %w", ref, err)
			}
			text = subsetText(cols, want, ss.schema.NumFields(), int(ch.Rows))
			if prof != nil {
				prof.InflatedBytes += inflated
				prof.ColumnsDecoded += len(want)
				prof.ColumnsSkipped += len(ch.Cols) - len(want)
			}
			e.met.leafBytes.Add(inflated)
		}
		if prof != nil {
			// The chunk fetch issues one ranged DFS read and inflates in one
			// step; charge the wall time to read, the bytes to inflate.
			prof.DFSReads++
			prof.ReadNS += time.Since(t1).Nanoseconds()
		}
		e.chunkCache.Put(key, text)
		return text, nil
	})
	if shared {
		e.met.sfShared.Inc()
	}
	return text, err
}

// subsetText reconstructs chunk wire text from a decoded column subset:
// rows of ncols fields joined by the delimiter, the unprojected positions
// left empty (they parse as NULL).
func subsetText(cols [][]string, want []int, ncols, rows int) []byte {
	pos := make([]int, ncols)
	for i := range pos {
		pos[i] = -1
	}
	for wi, ci := range want {
		pos[ci] = wi
	}
	var b bytes.Buffer
	for j := 0; j < rows; j++ {
		for ci := 0; ci < ncols; ci++ {
			if ci > 0 {
				b.WriteByte('|')
			}
			if wi := pos[ci]; wi >= 0 {
				b.WriteString(cols[wi][j])
			}
		}
		b.WriteByte('\n')
	}
	return b.Bytes()
}

// scanLeafTable streams one stored leaf table through fn. Segment files
// are pruned chunk by chunk — only surviving chunks are fetched (ranged),
// inflated and parsed, and fn runs once per chunk in row order; legacy
// whole-blob leaves decompress in full and fn runs once. Inflated text is
// served from and installed into the engine's chunk cache. The returned
// counts cover segment chunks (a legacy blob counts as one scanned chunk).
// A non-nil prof accrues the per-query cost split (prune reasons, cache
// hits, inflated bytes, ranged reads, phase timings) alongside the fleet
// counters.
func (e *Engine) scanLeafTable(name, ref string, c compress.Codec, pr leafPrune, prof *Profile, fn func(*telco.Table) error) (scanned, pruned int, err error) {
	return e.scanLeafTableSpec(name, ref, c, pr, nil, prof, fn)
}

// scanLeafTableSpec is scanLeafTable with a pushdown spec: on v3 leaves
// only the spec's referenced column streams decode (plus the engine's
// bookkeeping columns), per-column zone maps prune chunks no row of which
// can satisfy a predicate, and surviving rows are prefiltered through the
// predicates before fn sees them. A nil spec scans everything.
func (e *Engine) scanLeafTableSpec(name, ref string, c compress.Codec, pr leafPrune, spec *ScanSpec, prof *Profile, fn func(*telco.Table) error) (scanned, pruned int, err error) {
	defer func() {
		e.met.chunksScanned.Add(int64(scanned))
		e.met.chunksPruned.Add(int64(pruned))
		if prof != nil {
			prof.ChunksScanned += scanned
		}
	}()
	var ss *specScan
	if spec != nil {
		if schema := telco.SchemaByName(name); schema != nil {
			ss = newSpecScan(spec, schema)
		}
	}
	f, err := e.fs.Open(ref)
	if err != nil {
		return 0, 0, fmt.Errorf("core: open %s: %w", ref, err)
	}
	if !segment.IsSegment(f, f.Size()) {
		// Legacy whole-blob leaf: no chunk metadata exists, so the whole
		// table inflates regardless of the scan's predicates.
		text, err := e.blobText(ref, c, prof)
		if err != nil {
			return 0, 0, err
		}
		tab, err := snapshot.DecodeTable(name, text)
		if err != nil {
			return 0, 0, fmt.Errorf("core: decode %s: %w", ref, err)
		}
		ss.filter(tab)
		return 1, 0, fn(tab)
	}
	r, err := segment.Open(f, f.Size(), c)
	if err != nil {
		return 0, 0, fmt.Errorf("core: open segment %s: %w", ref, err)
	}
	for i, ch := range r.Chunks() {
		if reason := pr.skip(ch); reason != pruneNone {
			pruned++
			if prof != nil {
				if reason == pruneZone {
					prof.ChunksPrunedZone++
				} else {
					prof.ChunksPrunedBloom++
				}
			}
			continue
		}
		if ss.zonePrune(ch) {
			pruned++
			if prof != nil {
				prof.ChunksPrunedPred++
			}
			continue
		}
		text, err := e.chunkText(r, ref, i, ch, ss, prof)
		if err != nil {
			return scanned, pruned, err
		}
		var t2 time.Time
		if prof != nil {
			t2 = time.Now()
		}
		tab, err := snapshot.DecodeTable(name, text)
		if prof != nil {
			prof.DecodeNS += time.Since(t2).Nanoseconds()
		}
		if err != nil {
			return scanned, pruned, fmt.Errorf("core: decode %s: %w", ref, err)
		}
		ss.filter(tab)
		scanned++
		if err := fn(tab); err != nil {
			return scanned, pruned, err
		}
	}
	return scanned, pruned, nil
}
