package core

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spate/internal/compress"
	"spate/internal/segment"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// This file is the engine's leaf I/O layer: the write path that renders a
// snapshot table into its on-disk leaf form (a chunked segment, or a legacy
// whole-blob when Options.ChunkSize is negative), and the read path that
// streams a stored leaf back out, pruning segment chunks by window and cell
// candidates before paying for decompression. Both formats flow through the
// same scan entry point so recovery, queries, SQL scans and the cluster RPC
// handlers never care which one a file carries.

// encBufPool recycles wire-text accumulation buffers across the per-table
// encode workers — two tables per epoch forever would otherwise churn the
// allocator with multi-megabyte buffers.
var encBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// encodedLeaf is one table rendered to its on-disk leaf form by an encode
// worker, with the per-stage wall times the ingest report folds in.
type encodedLeaf struct {
	data []byte // segment, or legacy compressed blob
	raw  int64  // uncompressed wire-text bytes

	encodeNS   int64
	trainNS    int64
	compressNS int64

	err error
}

// encodeLeafTable renders one snapshot table into its leaf bytes. It is
// the body of an ingest encode worker and touches no engine state beyond
// maybeTrain (self-locking) and the codec read.
func (e *Engine) encodeLeafTable(s *snapshot.Snapshot, name string) encodedLeaf {
	var out encodedLeaf
	tab := s.Table(name)
	if tab == nil {
		out.err = fmt.Errorf("no table %q", name)
		return out
	}

	// Cluster rows by timestamp before rendering: records do not arrive
	// time-ordered within an epoch, and chunk zone maps only prune when
	// each chunk covers a narrow slice of the epoch's half hour. The sort
	// is stable and in place, so the in-memory table (summary folds), the
	// wire text and the stored leaf all agree on one canonical order —
	// legacy whole-blob writes share it, keeping both formats
	// row-for-row identical.
	t0 := time.Now()
	tsIdx := tab.Schema.FieldIndex(telco.AttrTS)
	cellIdx := tab.Schema.FieldIndex(telco.AttrCellID)
	if tsIdx >= 0 {
		sort.SliceStable(tab.Rows, func(i, j int) bool {
			a, b := tab.Rows[i][tsIdx], tab.Rows[j][tsIdx]
			if a.IsNull() || b.IsNull() {
				return false
			}
			return a.Time().Before(b.Time())
		})
	}

	// Wire-text render, remembering each row's end offset and pruning
	// metadata so the segment writer can re-walk the text row by row.
	buf := encBufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		encBufPool.Put(buf)
	}()
	buf.Reset()
	ends := make([]int, len(tab.Rows))
	metas := make([]segment.RowMeta, len(tab.Rows))
	var lb strings.Builder
	for i, r := range tab.Rows {
		lb.Reset()
		r.EncodeLine(&lb)
		lb.WriteByte('\n')
		buf.WriteString(lb.String())
		ends[i] = buf.Len()
		var m segment.RowMeta
		if tsIdx >= 0 && !r[tsIdx].IsNull() {
			m.TS, m.HasTS = r[tsIdx].Time().UnixNano(), true
		}
		if cellIdx >= 0 {
			// Null cells hash as id 0 — the same value the row filters
			// compare against — so the sketch stays free of false negatives.
			m.Cell, m.HasCell = r[cellIdx].Int64(), true
		}
		metas[i] = m
	}
	out.raw = int64(buf.Len())
	out.encodeNS = time.Since(t0).Nanoseconds()

	t0 = time.Now()
	e.maybeTrain(buf.Bytes())
	out.trainNS = time.Since(t0).Nanoseconds()

	t0 = time.Now()
	c := e.codec()
	if e.opts.ChunkSize < 0 {
		// Legacy whole-blob leaf: one compressed run of the wire text.
		out.data = c.Compress(nil, buf.Bytes())
	} else {
		w := segment.NewWriter(c, e.opts.ChunkSize)
		text := buf.Bytes()
		start := 0
		for i := range tab.Rows {
			if err := w.AppendRow(text[start:ends[i]], metas[i]); err != nil {
				out.err = err
				return out
			}
			start = ends[i]
		}
		data, _, err := w.Finish()
		if err != nil {
			out.err = err
			return out
		}
		out.data = data
	}
	out.compressNS = time.Since(t0).Nanoseconds()
	return out
}

// maxPruneCells caps the cell candidate list handed to chunk sketches: a
// box covering more cells than this probes the bloom filter so often that
// scanning the chunk is cheaper, so spatial chunk pruning switches off and
// the per-row filter alone applies.
const maxPruneCells = 512

// leafPrune carries a scan's chunk-level predicates. The zero value prunes
// nothing (every chunk decompresses), which is what summary rebuilds need.
type leafPrune struct {
	// window skips chunks whose [MinTS, MaxTS] cannot intersect it; nil
	// applies no temporal pruning.
	window *telco.TimeRange
	// spatial marks an active box filter; cells lists the candidate cell
	// ids inside the box (possibly none — then only chunks holding rows
	// without cell ids survive).
	spatial bool
	cells   []int64
}

// pruneReason says which chunk predicate fired: the timestamp zone map or
// the cell-id bloom sketch.
type pruneReason int

const (
	pruneNone pruneReason = iota
	pruneZone
	pruneBloom
)

// skip reports whether a chunk provably holds no row the scan's per-row
// filters would keep, and which predicate proved it. It is conservative:
// metadata-less rows defeat it.
func (pr leafPrune) skip(ch segment.Chunk) pruneReason {
	if pr.window != nil && !ch.OverlapsWindow(*pr.window) {
		return pruneZone
	}
	if pr.spatial {
		if len(pr.cells) == 0 {
			if !ch.HasCellGaps() {
				return pruneBloom
			}
			return pruneNone
		}
		if !ch.MayContainAnyCell(pr.cells) {
			return pruneBloom
		}
	}
	return pruneNone
}

// chunkCacheKey names one inflated chunk in the leaf cache; decay
// invalidates by the "<ref>#" prefix.
func chunkCacheKey(ref string, i int) string {
	return ref + "#" + strconv.Itoa(i)
}

// legacyCacheSuffix keys a legacy whole-blob leaf's inflated text under the
// same "<ref>#" prefix segment chunks use, so prefix invalidation covers
// both formats.
const legacyCacheSuffix = "#blob"

// scanLeafTable streams one stored leaf table through fn. Segment files
// are pruned chunk by chunk — only surviving chunks are fetched (ranged),
// inflated and parsed, and fn runs once per chunk in row order; legacy
// whole-blob leaves decompress in full and fn runs once. Inflated text is
// served from and installed into the engine's chunk cache. The returned
// counts cover segment chunks (a legacy blob counts as one scanned chunk).
// A non-nil prof accrues the per-query cost split (prune reasons, cache
// hits, inflated bytes, ranged reads, phase timings) alongside the fleet
// counters.
func (e *Engine) scanLeafTable(name, ref string, c compress.Codec, pr leafPrune, prof *Profile, fn func(*telco.Table) error) (scanned, pruned int, err error) {
	defer func() {
		e.met.chunksScanned.Add(int64(scanned))
		e.met.chunksPruned.Add(int64(pruned))
		if prof != nil {
			prof.ChunksScanned += scanned
		}
	}()
	f, err := e.fs.Open(ref)
	if err != nil {
		return 0, 0, fmt.Errorf("core: open %s: %w", ref, err)
	}
	if !segment.IsSegment(f, f.Size()) {
		// Legacy whole-blob leaf: no chunk metadata exists, so the whole
		// table inflates regardless of the scan's predicates.
		text, ok := e.chunkCache.Get(ref + legacyCacheSuffix)
		if prof != nil {
			if ok {
				prof.CacheHits++
			} else {
				prof.CacheMisses++
			}
		}
		if !ok {
			t0 := time.Now()
			comp, err := e.fs.ReadFile(ref)
			if err != nil {
				return 0, 0, fmt.Errorf("core: read %s: %w", ref, err)
			}
			t1 := time.Now()
			text, err = c.Decompress(nil, comp)
			if err != nil {
				return 0, 0, fmt.Errorf("core: decompress %s: %w", ref, err)
			}
			e.met.leafBytes.Add(int64(len(text)))
			e.chunkCache.Put(ref+legacyCacheSuffix, text)
			if prof != nil {
				prof.DFSReads++
				prof.InflatedBytes += int64(len(text))
				prof.ReadNS += t1.Sub(t0).Nanoseconds()
				prof.DecodeNS += time.Since(t1).Nanoseconds()
			}
		}
		tab, err := snapshot.DecodeTable(name, text)
		if err != nil {
			return 0, 0, fmt.Errorf("core: decode %s: %w", ref, err)
		}
		return 1, 0, fn(tab)
	}
	r, err := segment.Open(f, f.Size(), c)
	if err != nil {
		return 0, 0, fmt.Errorf("core: open segment %s: %w", ref, err)
	}
	for i, ch := range r.Chunks() {
		if reason := pr.skip(ch); reason != pruneNone {
			pruned++
			if prof != nil {
				if reason == pruneZone {
					prof.ChunksPrunedZone++
				} else {
					prof.ChunksPrunedBloom++
				}
			}
			continue
		}
		key := chunkCacheKey(ref, i)
		var t0 time.Time
		if prof != nil {
			t0 = time.Now()
		}
		text, ok := e.chunkCache.Get(key)
		if prof != nil {
			prof.LookupNS += time.Since(t0).Nanoseconds()
			if ok {
				prof.CacheHits++
			} else {
				prof.CacheMisses++
			}
		}
		if !ok {
			t1 := time.Now()
			text, err = r.ChunkData(i)
			if err != nil {
				return scanned, pruned, fmt.Errorf("core: read %s: %w", ref, err)
			}
			e.met.leafBytes.Add(int64(len(text)))
			e.chunkCache.Put(key, text)
			if prof != nil {
				// ChunkData issues one ranged DFS read and inflates in one
				// step; charge the wall time to read, the bytes to inflate.
				prof.DFSReads++
				prof.InflatedBytes += int64(len(text))
				prof.ReadNS += time.Since(t1).Nanoseconds()
			}
		}
		var t2 time.Time
		if prof != nil {
			t2 = time.Now()
		}
		tab, err := snapshot.DecodeTable(name, text)
		if prof != nil {
			prof.DecodeNS += time.Since(t2).Nanoseconds()
		}
		if err != nil {
			return scanned, pruned, fmt.Errorf("core: decode %s: %w", ref, err)
		}
		scanned++
		if err := fn(tab); err != nil {
			return scanned, pruned, err
		}
	}
	return scanned, pruned, nil
}
