package core

import (
	"context"
	"sync"
	"time"
)

// This file is the engine's parallel scan pipeline: a bounded-worker
// scheduler that fans independent leaf×table scan units out across
// Options.ScanWorkers goroutines while emitting their results to the
// caller strictly in unit order (so parallel scans stay bit-for-bit
// identical to the sequential, chronological output the cluster parity
// contract depends on), plus the two singleflight layers that keep a
// parallel read side from duplicating work: a per-chunk-key flight group
// so concurrent workers (and concurrent queries) inflating the same chunk
// decompress it once, and a per-query-key result flight so a thundering
// herd of identical explorations costs one scan.

// scanWorker is the per-goroutine state a scan unit runs under: a stable
// worker id (call sites key per-worker fold state off it) and a private
// profile accumulator, merged into the query profile after the fan-out so
// workers never contend on shared counters mid-scan.
type scanWorker struct {
	id   int
	prof *Profile // nil on unprofiled scans
}

// scanUnit is one independent piece of a scan — typically one (leaf,
// table) pair. Units must not touch shared mutable state: everything they
// produce is handed back through the return value and emitted in order.
type scanUnit func(w *scanWorker) (any, error)

// unitOut is one unit's completion record, filled by a worker and consumed
// by the in-order emitter.
type unitOut struct {
	v    any
	err  error
	done bool
}

// scanScheduler coordinates one fan-out: workers claim unit indices in
// order (bounded to maxAhead beyond the emit cursor, so a slow head unit
// cannot pile up unbounded decoded tables behind it), and the calling
// goroutine emits completed units strictly in index order.
type scanScheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	out     []unitOut
	next    int // next unclaimed unit index
	emitted int // units already handed to emit
	stopped bool
}

// runUnits executes units on up to `workers` goroutines, calling emit(i, v)
// on the calling goroutine in strict unit order. The first error — a unit
// failure, an emit failure, or ctx expiring (checked before every unit) —
// wins: no further units are claimed, in-flight workers drain, and the
// lowest-index error is returned. Per-worker profiles and wall/decode
// timings fold into prof (worker entries merged by id), so parallel scans
// report the same summed counters the sequential path would.
func (e *Engine) runUnits(ctx context.Context, workers int, units []scanUnit, prof *Profile, emit func(i int, v any) error) error {
	n := len(units)
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	s := &scanScheduler{out: make([]unitOut, n)}
	s.cond = sync.NewCond(&s.mu)
	// maxAhead bounds how far claims may run past the emit cursor, keeping
	// the memory held by completed-but-unemitted units proportional to the
	// worker count rather than the scan length.
	maxAhead := workers * 4

	wprofs := make([]*Profile, workers)
	wstats := make([]WorkerProfile, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sw := &scanWorker{id: w}
			if prof != nil {
				sw.prof = &Profile{}
				wprofs[w] = sw.prof
			}
			st := &wstats[w]
			st.Worker = w
			for {
				s.mu.Lock()
				for !s.stopped && s.next < n && s.next-s.emitted >= maxAhead {
					s.cond.Wait()
				}
				if s.stopped || s.next >= n {
					s.mu.Unlock()
					return
				}
				i := s.next
				s.next++
				s.mu.Unlock()

				var v any
				err := ctx.Err()
				if err == nil {
					t0 := time.Now()
					v, err = units[i](sw)
					st.WallNS += time.Since(t0).Nanoseconds()
					st.Units++
				}
				s.mu.Lock()
				s.out[i] = unitOut{v: v, err: err, done: true}
				if err != nil {
					s.stopped = true
				}
				s.cond.Broadcast()
				s.mu.Unlock()
				if err != nil {
					return
				}
			}
		}(w)
	}

	// Emit loop: wait for each unit in order, hand it to emit, release its
	// slot. A stop observed while unit i is still in flight falls through
	// to the post-drain error scan below.
	var firstErr error
	s.mu.Lock()
	for i := 0; i < n; i++ {
		for !s.out[i].done && !s.stopped {
			s.cond.Wait()
		}
		if !s.out[i].done {
			break // stopped with i mid-flight or never claimed
		}
		o := s.out[i]
		if o.err != nil {
			firstErr = o.err
			s.stopped = true
			break
		}
		s.out[i] = unitOut{done: true} // release the value early
		s.emitted++
		s.cond.Broadcast()
		s.mu.Unlock()
		err := emit(i, o.v)
		s.mu.Lock()
		if err != nil {
			firstErr = err
			s.stopped = true
			break
		}
	}
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	wg.Wait()
	if firstErr == nil {
		// A worker stopped the run while the emitter was waiting on an
		// earlier unit: the lowest-index error wins deterministically.
		for i := range s.out {
			if s.out[i].err != nil {
				firstErr = s.out[i].err
				break
			}
		}
	}

	if prof != nil {
		if workers > prof.ScanWorkers {
			prof.ScanWorkers = workers
		}
		prof.ParallelUnits += n
		for w, wp := range wprofs {
			if wp != nil {
				wstats[w].DecodeNS = wp.DecodeNS
				prof.Add(*wp)
			}
		}
		prof.Workers = mergeWorkers(prof.Workers, wstats)
	}
	e.met.parallelScans.Inc()
	e.met.parallelUnits.Add(int64(n))
	return firstErr
}

// scanWorkers returns the configured fan-out (immutable after Open).
func (e *Engine) scanWorkers() int { return e.opts.ScanWorkers }

// flightGroup deduplicates concurrent byte-producing computations by key:
// the first caller for a key runs fn, every caller that arrives while it
// is in flight blocks and shares the result. The entry is dropped once fn
// returns, so later callers recompute (the chunk cache, not the flight
// group, is the steady-state store).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

// do returns fn's result for key, computing it at most once across
// concurrent callers; shared reports whether this caller received another
// caller's in-flight result instead of running fn itself.
func (g *flightGroup) do(key string, fn func() ([]byte, error)) (data []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.data, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()
	c.data, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.data, false, c.err
}

// resultFlight deduplicates concurrent identical explorations that miss
// the result cache. Unlike flightGroup, failures do not propagate: a
// leader that errors publishes nil and its waiters retry (re-checking the
// cache and possibly leading themselves), so one canceled request never
// fails an unrelated concurrent query.
type resultFlight struct {
	mu sync.Mutex
	m  map[string]*resultCall
}

type resultCall struct {
	done chan struct{}
	res  *Result // nil when the leader failed
}

// begin registers interest in key: the first caller becomes the leader
// (leader=true) and must call finish exactly once; every other caller
// receives the in-flight call to wait on.
func (f *resultFlight) begin(key string) (c *resultCall, leader bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.m == nil {
		f.m = make(map[string]*resultCall)
	}
	if c, ok := f.m[key]; ok {
		return c, false
	}
	c = &resultCall{done: make(chan struct{})}
	f.m[key] = c
	return c, true
}

// finish publishes the leader's outcome (res nil on failure) and wakes
// every waiter.
func (f *resultFlight) finish(key string, c *resultCall, res *Result) {
	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	c.res = res
	close(c.done)
}

// mergeWorkers folds src's per-worker stats into dst by worker id, keeping
// the result sorted — repeated fan-outs within one query (summary rebuild,
// then row fetch) accumulate per worker instead of duplicating entries.
func mergeWorkers(dst, src []WorkerProfile) []WorkerProfile {
	if len(src) == 0 {
		return dst
	}
	byID := make(map[int]int, len(dst))
	for i := range dst {
		byID[dst[i].Worker] = i
	}
	for _, s := range src {
		if s.Units == 0 && s.WallNS == 0 {
			continue
		}
		if i, ok := byID[s.Worker]; ok {
			dst[i].Units += s.Units
			dst[i].WallNS += s.WallNS
			dst[i].DecodeNS += s.DecodeNS
			continue
		}
		byID[s.Worker] = len(dst)
		dst = append(dst, s)
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].Worker < dst[j-1].Worker; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}
