package core

import (
	"context"
	"testing"
	"time"

	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// BenchmarkParallelScan measures the parallel leaf-scan pipeline against
// an I/O-bound store: the DFS models the paper's slow virtualized disks
// (throttled block reads), so a sequential scan spends most of its wall
// clock waiting on one read at a time while the worker pool overlaps
// them. The chunk cache is disabled so every iteration pays the full read
// path, and inflatedB/op — a function of the data alone — stays identical
// across worker counts, which is what the bench-check gate compares.
func BenchmarkParallelScan(b *testing.B) {
	const epochs = 12
	run := func(b *testing.B, workers int) {
		reg := obs.NewRegistry()
		cfg := gen.DefaultConfig(0.004)
		cfg.Antennas = 30
		cfg.Users = 300
		cfg.CDRPerEpoch = 400
		g := gen.New(cfg)
		fs, err := dfs.NewCluster(b.TempDir(), dfs.Config{
			BlockSize: 1 << 20, DataNodes: 3, Replication: 2,
			ReadMBps: 4, // paper-testbed-style slow reads; ingest is unthrottled
			Obs:      obs.NewNoop(),
		})
		if err != nil {
			b.Fatal(err)
		}
		e, err := Open(fs, g.CellTable(), Options{
			ScanWorkers:     workers,
			ChunkCacheBytes: -1, // every iteration reads through the throttle
			Obs:             reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		e0 := telco.EpochOf(cfg.Start)
		for i := 0; i < epochs; i++ {
			s := snapshot.New(e0 + telco.Epoch(i))
			s.Add(g.CDRTable(s.Epoch))
			s.Add(g.NMSTable(s.Epoch))
			if _, err := e.Ingest(s); err != nil {
				b.Fatal(err)
			}
		}
		e.FinishIngest()
		w := telco.NewTimeRange(cfg.Start, cfg.Start.Add(time.Duration(epochs)*30*time.Minute))
		ctx := context.Background()
		rows := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := e.ScanTablesSpec(ctx, w, nil, nil, func(_ string, t *telco.Table) error {
				rows += t.Len()
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if rows == 0 {
			b.Fatal("scan matched no rows")
		}
		b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/sec")
		reportChunkMetrics(b, reg)
	}
	b.Run("workers=1", func(b *testing.B) { run(b, 1) })
	b.Run("workers=8", func(b *testing.B) { run(b, 8) })
}
