package core

import (
	"context"
	"fmt"
	"strconv"

	"spate/internal/compress"
	"spate/internal/index"
	"spate/internal/segment"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// The segment compactor rewrites stored leaves without changing what they
// say: a legacy whole-blob leaf becomes a chunked SPSG segment (so window
// and cell pruning start working on it), and a segment fragmented into
// undersized chunks merges back toward the target chunk size (fewer footer
// entries, fewer compression-stream restarts). Both rewrites reproduce the
// leaf's wire text byte for byte — the inflated concatenation of the new
// file equals the old one — so every query answer is bit-for-bit
// unchanged. Rewrites also re-compress through the engine's *current*
// codec: a store whose dictionary trained after its first snapshots were
// ingested wins back the difference on those cold leaves.

// CompactOptions bounds one compaction sweep.
type CompactOptions struct {
	// MaxLeaves caps how many leaves one sweep may rewrite (0 = no cap);
	// the remainder waits for the next run.
	MaxLeaves int
	// ChunkSize is the rewrite target in uncompressed bytes per chunk.
	// 0 uses the engine's configured chunk size, or the format default
	// when the engine writes legacy blobs.
	ChunkSize int
	// Effort selects the codec effort level for recompression (0 picks
	// DefaultCompactEffort). Compaction runs in the background, so unlike
	// ingest it can afford a deep match search; the stream format is
	// unchanged and the query path keeps reading with the engine codec.
	Effort int
}

// DefaultCompactEffort is the codec effort compaction rewrites at — for
// the zstd codec, a 16x deeper match search than the ingest path.
const DefaultCompactEffort = 3

// CompactReport describes one compaction sweep. Byte counts cover
// rewritten leaves only.
type CompactReport struct {
	LeavesExamined   int
	LeavesRewritten  int
	BlobsConverted   int   // legacy whole-blob tables converted to segments
	SegmentsUpgraded int   // row-major (v1/v2) segments upgraded to columnar v3
	ChunksMerged     int   // net chunk-count reduction across merged segments
	BytesBefore      int64 // compressed bytes of rewritten tables, before
	BytesAfter       int64
}

// compactCandidate snapshots one leaf under the read lock.
type compactCandidate struct {
	node  *index.Node
	epoch telco.Epoch
	refs  map[string]string
}

// Compact sweeps stored leaves, rewriting those that benefit. Like decay
// it holds the engine lock only in short bursts: candidate discovery under
// RLock, the ref swap per leaf under a brief write lock, and all DFS I/O
// with no engine lock held at all. Sweeps serialize with decay via
// decayMu. A leaf that decays between discovery and swap is skipped; its
// freshly written files are removed again.
func (e *Engine) Compact(ctx context.Context, opts CompactOptions) (CompactReport, error) {
	e.decayMu.Lock()
	defer e.decayMu.Unlock()
	var rep CompactReport

	chunkSize := opts.ChunkSize
	if chunkSize <= 0 {
		chunkSize = e.opts.ChunkSize
		if chunkSize <= 0 {
			chunkSize = segment.DefaultChunkSize
		}
	}
	effort := opts.Effort
	if effort <= 0 {
		effort = DefaultCompactEffort
	}

	e.mu.RLock()
	var cands []compactCandidate
	e.tree.Walk(func(n *index.Node) bool {
		if n.IsLeaf() && !n.Decayed && len(n.DataRefs) > 0 {
			refs := make(map[string]string, len(n.DataRefs))
			for name, ref := range n.DataRefs {
				refs[name] = ref
			}
			cands = append(cands, compactCandidate{node: n, epoch: n.Epoch, refs: refs})
		}
		return true
	})
	e.mu.RUnlock()

	for _, cand := range cands {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if opts.MaxLeaves > 0 && rep.LeavesRewritten >= opts.MaxLeaves {
			break
		}
		rep.LeavesExamined++
		if err := e.compactLeaf(cand, chunkSize, effort, &rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// rewrittenTable is one table's pending rewrite within a leaf.
type rewrittenTable struct {
	name      string
	oldRef    string
	newRef    string
	oldSize   int64
	data      []byte
	wasBlob   bool
	wasRowSeg bool // row-major segment upgraded to columnar v3
	oldCount  int  // chunk count before (blobs count 1)
	newCount  int
}

func (e *Engine) compactLeaf(cand compactCandidate, chunkSize, effort int, rep *CompactReport) error {
	var rewrites []rewrittenTable
	for name, ref := range cand.refs {
		rw, err := e.planRewrite(name, ref, chunkSize, effort)
		if err != nil {
			return err
		}
		if rw != nil {
			rewrites = append(rewrites, *rw)
		}
	}
	if len(rewrites) == 0 {
		return nil
	}

	// Write the replacement files while no lock is held. The DFS is
	// write-once, so the new leaf lives at "<ref>.cN" for the first free N.
	for i := range rewrites {
		rw := &rewrites[i]
		newRef := rw.oldRef + ".c1"
		for n := 2; e.fs.Exists(newRef); n++ {
			newRef = rw.oldRef + ".c" + strconv.Itoa(n)
		}
		if err := e.fs.WriteFile(newRef, rw.data); err != nil {
			return fmt.Errorf("core: compact write %s: %w", newRef, err)
		}
		rw.newRef = newRef
	}

	// Swap the refs under the write lock, re-checking that the leaf still
	// carries exactly the refs the rewrite was planned against.
	e.mu.Lock()
	n := cand.node
	stale := n.Decayed
	for _, rw := range rewrites {
		if n.DataRefs[rw.name] != rw.oldRef {
			stale = true
		}
	}
	if stale {
		e.mu.Unlock()
		for _, rw := range rewrites {
			_ = e.fs.Delete(rw.newRef)
		}
		return nil
	}
	newRefs := make(map[string]string, len(n.DataRefs))
	for name, ref := range n.DataRefs {
		newRefs[name] = ref
	}
	var delta int64
	for _, rw := range rewrites {
		newRefs[rw.name] = rw.newRef
		delta += int64(len(rw.data)) - rw.oldSize
	}
	// Queries snapshot the refs map by reference, so swap it wholesale
	// rather than mutating entries (the decay contract).
	n.DataRefs = newRefs
	n.DataBytes += delta
	e.compBytes += delta
	meta := leafMeta{Epoch: n.Epoch, Refs: newRefs, RawBytes: n.RawBytes, CompBytes: n.DataBytes}
	e.mu.Unlock()

	// Persist the new refs, then drop the old files and their cached
	// chunks. A query that planned against the old map just before the
	// swap can still race the delete — the same narrow window decay has.
	if err := e.replaceLeafMeta(meta); err != nil {
		return err
	}
	for _, rw := range rewrites {
		e.chunkCache.InvalidatePrefix(rw.oldRef + "#")
		if err := e.fs.Delete(rw.oldRef); err != nil {
			return fmt.Errorf("core: compact delete %s: %w", rw.oldRef, err)
		}
		rep.BytesBefore += rw.oldSize
		rep.BytesAfter += int64(len(rw.data))
		if rw.wasBlob {
			rep.BlobsConverted++
		}
		if rw.wasRowSeg {
			rep.SegmentsUpgraded++
		}
		if d := rw.oldCount - rw.newCount; d > 0 {
			rep.ChunksMerged += d
		}
	}
	rep.LeavesRewritten++
	return nil
}

// planRewrite decides whether one stored table benefits from a rewrite and
// renders the replacement bytes if so. Returns nil when the file is fine
// as stored.
func (e *Engine) planRewrite(name, ref string, chunkSize, effort int) (*rewrittenTable, error) {
	f, err := e.fs.Open(ref)
	if err != nil {
		return nil, fmt.Errorf("core: compact open %s: %w", ref, err)
	}
	codec := e.codec()
	// Rewrites decompress through the engine codec but recompress at
	// background effort: same stream format, deeper match search.
	wcodec := compress.WithEffort(codec, effort)
	toV3 := e.opts.SegmentVersion != segment.RowVersion
	if !segment.IsSegment(f, f.Size()) {
		// Legacy whole-blob leaf → chunked segment. The stored wire text
		// re-renders row by row in stored order (no re-sort: equivalence
		// means reproducing the bytes, not re-deriving them).
		comp, err := e.fs.ReadFile(ref)
		if err != nil {
			return nil, fmt.Errorf("core: compact read %s: %w", ref, err)
		}
		text, err := codec.Decompress(nil, comp)
		if err != nil {
			return nil, fmt.Errorf("core: compact decompress %s: %w", ref, err)
		}
		tab, err := snapshot.DecodeTable(name, text)
		if err != nil {
			return nil, fmt.Errorf("core: compact decode %s: %w", ref, err)
		}
		var data []byte
		var st segment.Stats
		if toV3 {
			w := segment.NewColumnWriter(wcodec, chunkSize, tab.Schema.NumFields())
			if err := appendColumnarRows(w, tab, text); err != nil {
				return nil, fmt.Errorf("core: compact rewrite %s: %w", ref, err)
			}
			data, st, err = w.Finish()
			if err != nil {
				return nil, fmt.Errorf("core: compact rewrite %s: %w", ref, err)
			}
		} else {
			w := segment.NewWriter(wcodec, chunkSize)
			tsIdx := tab.Schema.FieldIndex(telco.AttrTS)
			cellIdx := tab.Schema.FieldIndex(telco.AttrCellID)
			start := 0
			for _, r := range tab.Rows {
				end := start
				for end < len(text) && text[end] != '\n' {
					end++
				}
				if end < len(text) {
					end++ // keep the newline
				}
				if err := w.AppendRow(text[start:end], rowMetaOf(r, tsIdx, cellIdx)); err != nil {
					return nil, fmt.Errorf("core: compact rewrite %s: %w", ref, err)
				}
				start = end
			}
			data, st, err = w.Finish()
			if err != nil {
				return nil, fmt.Errorf("core: compact rewrite %s: %w", ref, err)
			}
		}
		return &rewrittenTable{
			name: name, oldRef: ref, oldSize: f.Size(), data: data,
			wasBlob: true, oldCount: 1, newCount: st.Chunks,
		}, nil
	}

	r, err := segment.Open(f, f.Size(), codec)
	if err != nil {
		return nil, fmt.Errorf("core: compact open segment %s: %w", ref, err)
	}
	chunks := r.Chunks()
	var totalULen int64
	for _, ch := range chunks {
		totalULen += ch.ULen
	}
	ideal := int((totalULen + int64(chunkSize) - 1) / int64(chunkSize))
	if ideal < 1 {
		ideal = 1
	}
	// A v3-targeting sweep upgrades every row-major segment regardless of
	// fragmentation, so old leaves gain per-column streams and zone maps.
	upgrade := toV3 && !r.Columnar()
	if !upgrade && len(chunks) <= ideal {
		return nil, nil // already at (or below) the target chunk count
	}
	if !toV3 {
		w := segment.NewWriter(wcodec, chunkSize)
		for i, ch := range chunks {
			text, err := r.ChunkData(i)
			if err != nil {
				return nil, fmt.Errorf("core: compact read %s: %w", ref, err)
			}
			if err := w.AppendChunk(text, ch); err != nil {
				return nil, fmt.Errorf("core: compact merge %s: %w", ref, err)
			}
		}
		data, st, err := w.Finish()
		if err != nil {
			return nil, fmt.Errorf("core: compact merge %s: %w", ref, err)
		}
		return &rewrittenTable{
			name: name, oldRef: ref, oldSize: f.Size(), data: data,
			oldCount: len(chunks), newCount: st.Chunks,
		}, nil
	}
	schema := telco.SchemaByName(name)
	if schema == nil {
		return nil, fmt.Errorf("core: compact %s: unknown schema %q", ref, name)
	}
	w := segment.NewColumnWriter(wcodec, chunkSize, schema.NumFields())
	for i := range chunks {
		text, err := r.ChunkData(i)
		if err != nil {
			return nil, fmt.Errorf("core: compact read %s: %w", ref, err)
		}
		tab, err := snapshot.DecodeTable(name, text)
		if err != nil {
			return nil, fmt.Errorf("core: compact decode %s: %w", ref, err)
		}
		if err := appendColumnarRows(w, tab, text); err != nil {
			return nil, fmt.Errorf("core: compact rewrite %s: %w", ref, err)
		}
	}
	data, st, err := w.Finish()
	if err != nil {
		return nil, fmt.Errorf("core: compact rewrite %s: %w", ref, err)
	}
	return &rewrittenTable{
		name: name, oldRef: ref, oldSize: f.Size(), data: data,
		wasRowSeg: upgrade, oldCount: len(chunks), newCount: st.Chunks,
	}, nil
}

// rowMetaOf extracts one row's chunk pruning metadata.
func rowMetaOf(r telco.Record, tsIdx, cellIdx int) segment.RowMeta {
	var m segment.RowMeta
	if tsIdx >= 0 && !r[tsIdx].IsNull() {
		m.TS, m.HasTS = r[tsIdx].Time().UnixNano(), true
	}
	if cellIdx >= 0 {
		m.Cell, m.HasCell = r[cellIdx].Int64(), true
	}
	return m
}

// appendColumnarRows re-renders stored wire text into a v3 writer row by
// row: fields split straight off the stored lines (byte-exact — decoded
// values never re-render), pruning metadata from the decoded rows.
func appendColumnarRows(w *segment.ColumnWriter, tab *telco.Table, text []byte) error {
	tsIdx := tab.Schema.FieldIndex(telco.AttrTS)
	cellIdx := tab.Schema.FieldIndex(telco.AttrCellID)
	start := 0
	for _, r := range tab.Rows {
		end := start
		for end < len(text) && text[end] != '\n' {
			end++
		}
		fields := telco.SplitFields(string(text[start:end]))
		if end < len(text) {
			end++ // past the newline
		}
		if err := w.AppendRowFields(fields, rowMetaOf(r, tsIdx, cellIdx)); err != nil {
			return err
		}
		start = end
	}
	return nil
}
