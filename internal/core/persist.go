package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"spate/internal/highlights"
	"spate/internal/index"
	"spate/internal/telco"
)

// The engine persists enough state on the DFS to survive a restart:
//
//	/spate/meta/leaf/<epoch>      gob leafMeta per ingested snapshot
//	/spate/index/<level>/<start>  gob highlight summary per sealed node
//
// Open detects leaf metadata on the cluster and rebuilds the temporal
// index from it (recovery), loading sealed summaries back into the tree.
// The data files themselves are already durable (replicated blocks), so a
// recovered engine serves the same queries as the original.

// leafMeta is the per-snapshot ingestion record.
type leafMeta struct {
	Epoch     telco.Epoch
	Refs      map[string]string
	RawBytes  int64
	CompBytes int64
}

func leafMetaPath(e telco.Epoch) string {
	return "/spate/meta/leaf/" + e.String()
}

func summaryPath(level index.Level, start time.Time) string {
	return fmt.Sprintf("/spate/index/%s/%s", level, start.Format(telco.TimeLayout))
}

// persistLeafMeta records one ingested snapshot.
func (e *Engine) persistLeafMeta(m leafMeta) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("core: encode leaf meta: %w", err)
	}
	if err := e.fs.WriteFile(leafMetaPath(m.Epoch), buf.Bytes()); err != nil {
		return fmt.Errorf("core: persist leaf meta: %w", err)
	}
	return nil
}

// persistSummary stores a sealed node's summary; existing files (e.g. a
// day re-sealed after FinishIngest) are replaced.
func (e *Engine) persistSummary(n *index.Node) error {
	data, err := n.Summary.Encode()
	if err != nil {
		return err
	}
	path := summaryPath(n.Level, n.Period.From)
	if e.fs.Exists(path) {
		if err := e.fs.Delete(path); err != nil {
			return fmt.Errorf("core: replace summary: %w", err)
		}
	}
	if err := e.fs.WriteFile(path, data); err != nil {
		return fmt.Errorf("core: persist summary: %w", err)
	}
	return nil
}

// summaryFileInfo parses one persisted summary path.
type summaryFileInfo struct {
	level index.Level
	start time.Time
	path  string
}

// listSummaryFiles parses /spate/index/<level>/<start> paths.
func (e *Engine) listSummaryFiles() []summaryFileInfo {
	var out []summaryFileInfo
	for _, name := range []struct {
		prefix string
		level  index.Level
	}{
		{"/spate/index/year/", index.LevelYear},
		{"/spate/index/month/", index.LevelMonth},
		{"/spate/index/day/", index.LevelDay},
	} {
		for _, fi := range e.fs.List(name.prefix) {
			stamp := fi.Path[len(name.prefix):]
			t, err := time.ParseInLocation(telco.TimeLayout, stamp, time.UTC)
			if err != nil {
				continue
			}
			out = append(out, summaryFileInfo{level: name.level, start: t, path: fi.Path})
		}
	}
	// Temporal order; coarser levels first at equal starts so ancestors
	// graft before descendants.
	sort.Slice(out, func(i, j int) bool {
		if !out[i].start.Equal(out[j].start) {
			return out[i].start.Before(out[j].start)
		}
		return out[i].level < out[j].level
	})
	return out
}

// recover rebuilds the index from persisted metadata. Called by Open when
// the cluster already carries SPATE state.
func (e *Engine) recover() error {
	metas := e.fs.List("/spate/meta/leaf/")
	summaries := e.listSummaryFiles()
	if len(metas) == 0 && len(summaries) == 0 {
		return nil
	}
	// Graft summary-only nodes first (they are never newer than surviving
	// leaves: decay prunes oldest-first).
	for _, sf := range summaries {
		if _, err := e.tree.EnsurePeriod(sf.level, sf.start); err != nil {
			return fmt.Errorf("core: recover graft %s: %w", sf.path, err)
		}
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].Path < metas[j].Path })
	for _, fi := range metas {
		data, err := e.fs.ReadFile(fi.Path)
		if err != nil {
			return fmt.Errorf("core: recover %s: %w", fi.Path, err)
		}
		var m leafMeta
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
			return fmt.Errorf("core: recover %s: %w", fi.Path, err)
		}
		leaf, _, err := e.tree.Append(m.Epoch, m.Refs, m.CompBytes, m.RawBytes)
		if err != nil {
			return fmt.Errorf("core: recover %s: %w", fi.Path, err)
		}
		// Snapshots whose data decayed after the meta was written recover
		// as decayed leaves.
		decayed := false
		for _, ref := range m.Refs {
			if !e.fs.Exists(ref) {
				decayed = true
				break
			}
		}
		if decayed {
			leaf.Decayed = true
			leaf.DataRefs = nil
		}
		e.rawBytes += m.RawBytes
		e.compBytes += m.CompBytes
	}
	// Reload sealed summaries.
	var loadErr error
	e.tree.Walk(func(n *index.Node) bool {
		if n.IsLeaf() || n.Level == index.LevelRoot {
			return true
		}
		path := summaryPath(n.Level, n.Period.From)
		if !e.fs.Exists(path) {
			return true
		}
		data, err := e.fs.ReadFile(path)
		if err != nil {
			loadErr = fmt.Errorf("core: recover summary %s: %w", path, err)
			return false
		}
		s, err := highlights.Decode(data)
		if err != nil {
			loadErr = fmt.Errorf("core: recover summary %s: %w", path, err)
			return false
		}
		n.Summary = s
		return true
	})
	if loadErr != nil {
		return loadErr
	}
	// The right-most path may still grow after recovery (the trace can
	// continue); drop any summaries loaded for those open periods — they
	// could be stale partial seals from a FinishIngest — and let the next
	// rollover re-seal them from data.
	for _, n := range e.tree.FinishIngest() {
		n.Summary = nil
	}
	return nil
}

// cleanupLeafMeta removes the persisted metadata of pruned epochs so a
// recovery after deep decay does not resurrect pruned subtrees' leaves as
// index entries beyond what the live tree holds. Leaves that merely
// decayed keep their meta (the index entry survives decay). Safe without
// the caller holding the engine lock: the listing is taken before the
// live-set walk, and ingest appends a leaf to the tree before persisting
// its meta — so every listed meta's leaf is in the walked tree unless a
// decay sweep (serialized by decayMu) pruned it.
func (e *Engine) cleanupLeafMeta() error {
	listing := e.fs.List("/spate/meta/leaf/")
	live := make(map[string]bool)
	e.mu.RLock()
	e.tree.Walk(func(n *index.Node) bool {
		if n.IsLeaf() {
			live[leafMetaPath(n.Epoch)] = true
		}
		return true
	})
	e.mu.RUnlock()
	for _, fi := range listing {
		if !live[fi.Path] {
			if err := e.fs.Delete(fi.Path); err != nil {
				return fmt.Errorf("core: cleanup %s: %w", fi.Path, err)
			}
		}
	}
	return nil
}

// replaceLeafMeta rewrites one leaf's persisted metadata in place (the DFS
// is write-once, so replace = delete + write).
func (e *Engine) replaceLeafMeta(m leafMeta) error {
	path := leafMetaPath(m.Epoch)
	if e.fs.Exists(path) {
		if err := e.fs.Delete(path); err != nil {
			return fmt.Errorf("core: replace leaf meta: %w", err)
		}
	}
	return e.persistLeafMeta(m)
}
