package core

import (
	"sync"
	"testing"
	"time"

	"spate/internal/decay"
	"spate/internal/telco"
)

// TestDecayRunDryRunAndBudget drives the lock-split decay path by hand:
// the dry run estimates without mutating, the budget clamps a sweep to a
// bounded slice of the plan, and a follow-up unbudgeted run finishes the
// job — the lifecycle daemon's steady-state pattern.
func TestDecayRunDryRunAndBudget(t *testing.T) {
	// Ingest under the zero policy (nothing decays inline), then reopen
	// with a 2h horizon so every sweep is explicit.
	r := newRig(t, Options{})
	r.ingestEpochs(t, 10) // 5 hours
	e := reopen(t, r, Options{Policy: decay.Policy{KeepRaw: 2 * time.Hour}})
	now := telco.EpochOf(r.cfg.Start).Start().Add(5 * time.Hour)
	filesBefore := len(r.fs.List("/spate/data/"))

	dry, err := e.DecayRun(now, DecayBudget{DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if !dry.DryRun || dry.Planned == 0 || dry.LeavesDecayed == 0 || dry.BytesFreed == 0 {
		t.Fatalf("dry run = %+v", dry)
	}
	if st := e.Tree().Stats(); st.DecayedLeaves != 0 {
		t.Fatalf("dry run decayed %d leaves", st.DecayedLeaves)
	}
	if got := len(r.fs.List("/spate/data/")); got != filesBefore {
		t.Fatalf("dry run deleted files: %d -> %d", filesBefore, got)
	}

	// A one-leaf budget applies exactly the head of the plan.
	rep1, err := e.DecayRun(now, DecayBudget{MaxLeaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Clamped || rep1.LeavesDecayed != 1 || rep1.Planned != dry.Planned {
		t.Fatalf("budgeted run = %+v (planned %d)", rep1, dry.Planned)
	}

	// The unbudgeted follow-up drains the remainder; together the two runs
	// decay exactly what the dry run promised.
	rep2, err := e.DecayRun(now, DecayBudget{BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Clamped {
		t.Errorf("unbudgeted run clamped: %+v", rep2)
	}
	if got := rep1.LeavesDecayed + rep2.LeavesDecayed; got != dry.LeavesDecayed {
		t.Errorf("decayed %d leaves across runs, dry run promised %d", got, dry.LeavesDecayed)
	}
	if st := e.Tree().Stats(); st.DecayedLeaves != dry.LeavesDecayed {
		t.Errorf("tree has %d decayed leaves, want %d", st.DecayedLeaves, dry.LeavesDecayed)
	}

	// The decayed window still answers (marking its decayed leaves), and a
	// third sweep finds nothing left to do. (Rows are not asserted: these
	// leaves sit in an unsealed day, whose ephemeral summaries recovery
	// does not rebuild — realistic horizons decay only sealed days, served
	// by their persisted day summaries.)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(time.Hour))
	res, err := e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecayedLeaves == 0 {
		t.Errorf("decayed window reports %d decayed leaves", res.DecayedLeaves)
	}
	rep3, err := e.DecayRun(now, DecayBudget{})
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Planned != 0 {
		t.Errorf("idempotent sweep planned %d evictions", rep3.Planned)
	}
}

// TestDecayByteBudget bounds a sweep by bytes instead of leaves.
func TestDecayByteBudget(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 8)
	e := reopen(t, r, Options{Policy: decay.Policy{KeepRaw: time.Hour}})
	now := telco.EpochOf(r.cfg.Start).Start().Add(4 * time.Hour)
	rep, err := e.DecayRun(now, DecayBudget{MaxBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The budget always admits the first eviction (progress guarantee) but
	// nothing more at 1 byte.
	if !rep.Clamped || rep.Applied != 1 {
		t.Fatalf("1-byte budget applied %d evictions (clamped=%v)", rep.Applied, rep.Clamped)
	}
}

// TestConcurrentDecayExplore runs budgeted decay sweeps against live
// explorers under -race: the sweep plans under the read lock and applies
// in short write-locked batches, so queries on recent windows proceed
// while old leaves decay.
func TestConcurrentDecayExplore(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 16) // 8 hours
	e := reopen(t, r, Options{Policy: decay.Policy{KeepRaw: 4 * time.Hour}})
	e0 := telco.EpochOf(r.cfg.Start)
	now := e0.Start().Add(8 * time.Hour)
	// Explorers live in the freshest two hours — disjoint from the decay
	// horizon, so their answers must never change mid-sweep.
	recent := telco.NewTimeRange(e0.Start().Add(6*time.Hour), e0.Start().Add(8*time.Hour))
	want, err := e.Explore(Query{Window: recent})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := e.Explore(Query{Window: recent, ExactRows: i%2 == 0})
				if err != nil {
					t.Errorf("explore during decay: %v", err)
					return
				}
				if res.Summary.Rows != want.Summary.Rows {
					t.Errorf("recent window changed mid-decay: %d != %d", res.Summary.Rows, want.Summary.Rows)
					return
				}
			}
		}(i)
	}

	// Drain the decay plan one leaf and one batch at a time, maximizing
	// lock handoffs with the explorers.
	for {
		rep, err := e.DecayRun(now, DecayBudget{MaxLeaves: 1, BatchSize: 1})
		if err != nil {
			t.Errorf("decay: %v", err)
			break
		}
		if rep.Applied == 0 {
			break
		}
	}
	close(done)
	wg.Wait()

	if st := e.Tree().Stats(); st.DecayedLeaves == 0 {
		t.Fatal("no leaves decayed")
	}
}

// TestRecoveryAfterDecayParity is the recovery acceptance test: an engine
// reopened over a decayed-and-pruned store (including legacy whole-blob
// leaves) serves the same results and does not resurrect pruned leaf
// metadata.
func TestRecoveryAfterDecayParity(t *testing.T) {
	opts := Options{
		ChunkSize: -1, // legacy whole-blob leaves
		Policy:    decay.Policy{KeepRaw: 2 * time.Hour, KeepEpochNodes: 12 * time.Hour},
	}
	r := newRig(t, opts)
	r.ingestEpochs(t, 2*telco.EpochsPerDay) // day 1 decays and fully collapses

	oldW := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(6*time.Hour))
	newW := telco.NewTimeRange(r.cfg.Start.Add(46*time.Hour), r.cfg.Start.Add(48*time.Hour))
	wantOld, err := r.e.Explore(Query{Window: oldW})
	if err != nil {
		t.Fatal(err)
	}
	wantNew, err := r.e.Explore(Query{Window: newW, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}
	stBefore := r.e.Tree().Stats()
	metasBefore := len(r.fs.List("/spate/meta/leaf/"))
	if stBefore.Leaves >= 2*telco.EpochsPerDay {
		t.Fatalf("day 1 not pruned: %d leaves", stBefore.Leaves)
	}
	if metasBefore >= 2*telco.EpochsPerDay {
		t.Fatalf("pruned leaf metadata not cleaned: %d metas", metasBefore)
	}

	e2 := reopen(t, r, opts)
	stAfter := e2.Tree().Stats()
	if stAfter.Leaves != stBefore.Leaves || stAfter.DecayedLeaves != stBefore.DecayedLeaves {
		t.Errorf("recovered stats %+v, want %+v (pruned leaves resurrected?)", stAfter, stBefore)
	}
	if metasAfter := len(r.fs.List("/spate/meta/leaf/")); metasAfter != metasBefore {
		t.Errorf("leaf metas %d -> %d across recovery", metasBefore, metasAfter)
	}
	gotOld, err := e2.Explore(Query{Window: oldW})
	if err != nil {
		t.Fatal(err)
	}
	if gotOld.Summary.Rows != wantOld.Summary.Rows {
		t.Errorf("pruned-day rows = %d, want %d", gotOld.Summary.Rows, wantOld.Summary.Rows)
	}
	gotNew, err := e2.Explore(Query{Window: newW, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}
	if gotNew.Summary.Rows != wantNew.Summary.Rows ||
		gotNew.Rows["CDR"].Len() != wantNew.Rows["CDR"].Len() {
		t.Errorf("recent window: rows %d/%d, want %d/%d",
			gotNew.Summary.Rows, gotNew.Rows["CDR"].Len(),
			wantNew.Summary.Rows, wantNew.Rows["CDR"].Len())
	}
}
