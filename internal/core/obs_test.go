package core

import (
	"context"
	"testing"
	"time"

	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

func stageSet(stages []obs.Stage) map[string]time.Duration {
	m := make(map[string]time.Duration, len(stages))
	for _, s := range stages {
		m[s.Name] = s.Duration
	}
	return m
}

func TestIngestReportStages(t *testing.T) {
	reg := obs.NewRegistry()
	r := newRig(t, Options{Obs: reg, Tracer: obs.NewTracer(8)})
	reps := r.ingestEpochs(t, 2)

	for _, rep := range reps {
		got := stageSet(rep.Stages)
		for _, want := range []string{StageEncode, StageCompress, StageDFSWrite, StageHighlight, StageIndex} {
			if _, ok := got[want]; !ok {
				t.Errorf("epoch %d: missing stage %q in %v", rep.Epoch, want, rep.Stages)
			}
		}
		for _, d := range got {
			if d < 0 {
				t.Errorf("epoch %d: negative stage duration %v", rep.Epoch, got)
			}
		}
		// Encode, train and compress run in per-table workers, so those
		// stages aggregate CPU time across goroutines and may exceed the
		// wall clock. The serial stages cannot.
		serial := got[StageDFSWrite] + got[StageHighlight] + got[StageIndex]
		if serial > rep.Total+time.Millisecond {
			t.Errorf("epoch %d: serial stages sum %v exceeds total %v", rep.Epoch, serial, rep.Total)
		}
	}

	// The same breakdown feeds the per-stage histograms and counters.
	if n := reg.Histogram("spate_ingest_stage_seconds", "", nil, "stage", StageCompress).Count(); n != 2 {
		t.Errorf("compress stage observations = %d, want 2", n)
	}
	if v := reg.Counter("spate_ingest_snapshots_total", "").Value(); v != 2 {
		t.Errorf("snapshots counter = %d, want 2", v)
	}
	if v := reg.Counter("spate_ingest_rows_total", "").Value(); v == 0 {
		t.Error("rows counter did not advance")
	}
	if v := reg.Counter("spate_ingest_raw_bytes_total", "").Value(); v == 0 {
		t.Error("raw bytes counter did not advance")
	}
}

func TestExploreResultStages(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(8)
	r := newRig(t, Options{Obs: reg, Tracer: tr})
	r.ingestEpochs(t, 4)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))

	res, err := r.e.Explore(Query{Window: w, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}
	got := stageSet(res.Stages)
	for _, want := range []string{StagePlan, StageCollect, StageMerge, StageRestrict, StageRows} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing stage %q in %v", want, res.Stages)
		}
	}

	// A cache hit carries the original evaluation's breakdown.
	hit, err := r.e.Explore(Query{Window: w, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("second identical query missed cache")
	}
	if len(hit.Stages) != len(res.Stages) {
		t.Errorf("cache hit stages = %v, want %v", hit.Stages, res.Stages)
	}
	if reg.Counter("spate_explore_cache_hits_total", "").Value() != 1 ||
		reg.Counter("spate_explore_cache_misses_total", "").Value() != 1 {
		t.Error("cache counters did not record one hit and one miss")
	}
	if n := reg.Histogram("spate_explore_seconds", "", nil).Count(); n != 1 {
		t.Errorf("explore latency observations = %d, want 1 (uncached only)", n)
	}
	if n := reg.Histogram("spate_explore_stage_seconds", "", nil, "stage", StagePlan).Count(); n != 1 {
		t.Errorf("plan stage observations = %d, want 1", n)
	}

	// The tracer retained the request trees: 4 ingests + 1 uncached explore.
	traces := tr.Traces()
	if len(traces) != 5 {
		t.Fatalf("tracer kept %d traces, want 5: %+v", len(traces), traces)
	}
	last := traces[len(traces)-1]
	if last.Name != "explore" || len(last.Children) == 0 {
		t.Errorf("explore trace = %+v", last)
	}
}

func TestNoopRegistryDisablesAccounting(t *testing.T) {
	reg := obs.NewNoop()
	r := newRig(t, Options{Obs: reg})
	r.ingestEpochs(t, 1)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(time.Hour))
	res, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	// Stage breakdowns still come back on the report/result — only the
	// registry and tracer sinks are disabled.
	if len(res.Stages) == 0 {
		t.Error("noop registry suppressed the result's stage breakdown")
	}
	if n := reg.Histogram("spate_explore_seconds", "", nil).Count(); n != 0 {
		t.Errorf("noop histogram advanced to %d", n)
	}
}

// BenchmarkExplore compares a fully instrumented engine (tracing spans,
// metrics registry, and a per-query profile attached via context) against
// one wired to a no-op registry; the delta is the observability overhead,
// which must stay marginal (<5%) because hot-path updates are single
// atomics and plain counter increments.
func BenchmarkExplore(b *testing.B) {
	run := func(b *testing.B, opts Options, reg *obs.Registry, profiled bool) {
		cfg := gen.DefaultConfig(0.004)
		cfg.Antennas = 30
		cfg.Users = 300
		cfg.CDRPerEpoch = 120
		g := gen.New(cfg)
		fs, err := dfs.NewCluster(b.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
		if err != nil {
			b.Fatal(err)
		}
		e, err := Open(fs, g.CellTable(), opts)
		if err != nil {
			b.Fatal(err)
		}
		e0 := telco.EpochOf(cfg.Start)
		for i := 0; i < 4; i++ {
			s := snapshot.New(e0 + telco.Epoch(i))
			s.Add(g.CDRTable(s.Epoch))
			if _, err := e.Ingest(s); err != nil {
				b.Fatal(err)
			}
		}
		q := Query{Window: telco.NewTimeRange(cfg.Start, cfg.Start.Add(2*time.Hour))}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.cache.Clear() // measure the full evaluation path every time
			ctx := context.Background()
			if profiled {
				ctx, _ = ContextWithProfile(ctx)
			}
			if _, err := e.ExploreContext(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if reg != nil {
			reportChunkMetrics(b, reg)
		}
	}
	b.Run("instrumented", func(b *testing.B) {
		reg := obs.NewRegistry()
		run(b, Options{Obs: reg, Tracer: obs.NewTracer(16)}, reg, true)
	})
	b.Run("noop", func(b *testing.B) {
		run(b, Options{Obs: obs.NewNoop()}, nil, false)
	})
}
