package core

import "context"

// Profile is the per-query cost breakdown accumulated along the scan path:
// which chunks the zone maps and cell blooms pruned, what the chunk cache
// absorbed, how many bytes inflated out of the codec, and how many ranged
// DFS reads were issued. On a cluster result the totals sum the surviving
// shards and Shards carries the per-shard split.
type Profile struct {
	TraceID string `json:"trace_id,omitempty"`

	LeavesScanned int `json:"leaves_scanned,omitempty"`
	LeavesPruned  int `json:"leaves_pruned,omitempty"`
	LeavesDecayed int `json:"leaves_decayed,omitempty"`

	ChunksScanned     int `json:"chunks_scanned,omitempty"`
	ChunksPrunedZone  int `json:"chunks_pruned_zone,omitempty"`
	ChunksPrunedBloom int `json:"chunks_pruned_bloom,omitempty"`
	// ChunksPrunedPred counts chunks skipped by per-column integer zone
	// maps proving a pushed-down predicate unsatisfiable; ChunksAggMeta
	// counts chunks a pushed-down aggregate answered from chunk metadata
	// without decoding any column stream.
	ChunksPrunedPred int `json:"chunks_pruned_pred,omitempty"`
	ChunksAggMeta    int `json:"chunks_agg_meta,omitempty"`

	// ColumnsDecoded and ColumnsSkipped count per-chunk column streams a v3
	// columnar scan inflated versus left untouched thanks to projection or
	// aggregate pushdown.
	ColumnsDecoded int `json:"columns_decoded,omitempty"`
	ColumnsSkipped int `json:"columns_skipped,omitempty"`

	// AggPartials counts partial-aggregate groups produced by pushed-down
	// aggregation (per shard on a cluster profile).
	AggPartials int `json:"agg_partials,omitempty"`

	CacheHits   int `json:"cache_hits,omitempty"`
	CacheMisses int `json:"cache_misses,omitempty"`

	InflatedBytes int64 `json:"inflated_bytes,omitempty"`
	DFSReads      int   `json:"dfs_reads,omitempty"`

	// MemEpochs and MemRows count the streaming memtable's contribution:
	// unsealed epochs that supplied summary parts, and fresh rows that
	// made it into the exact-row answer before their epoch sealed.
	MemEpochs int `json:"mem_epochs,omitempty"`
	MemRows   int `json:"mem_rows,omitempty"`

	ReadNS   int64 `json:"read_ns,omitempty"`
	DecodeNS int64 `json:"decode_ns,omitempty"`
	LookupNS int64 `json:"lookup_ns,omitempty"`

	// ScanWorkers is the widest fan-out any parallel scan phase in this
	// query ran with (1 on the sequential path); ParallelUnits counts the
	// leaf×table scan units dispatched through the scheduler across all
	// phases. Workers carries the per-worker wall/decode split. On a cluster
	// profile, ScanWorkers is the max across shards and ParallelUnits the
	// sum; Workers stays per-shard (under Shards) since worker ids only
	// mean something within one engine.
	ScanWorkers   int             `json:"scan_workers,omitempty"`
	ParallelUnits int             `json:"parallel_units,omitempty"`
	Workers       []WorkerProfile `json:"workers,omitempty"`

	// ResultCacheHit marks a query answered wholly from the result cache:
	// the scan counters are zero because nothing was scanned.
	ResultCacheHit bool `json:"result_cache_hit,omitempty"`

	Shards []ShardProfile `json:"shards,omitempty"`
}

// WorkerProfile is one scan worker's share of a parallel query: how many
// units it executed and how long it spent in them overall versus decoding.
type WorkerProfile struct {
	Worker   int   `json:"worker"`
	Units    int   `json:"units"`
	WallNS   int64 `json:"wall_ns"`
	DecodeNS int64 `json:"decode_ns,omitempty"`
}

// ShardProfile is one shard slot's contribution to a cluster query.
type ShardProfile struct {
	Shard     int     `json:"shard"`
	Band      int     `json:"band"`
	LatencyMS float64 `json:"latency_ms"`
	Retries   int     `json:"retries,omitempty"`
	HedgeWin  bool    `json:"hedge_win,omitempty"`
	Missing   bool    `json:"missing,omitempty"`
	Error     string  `json:"error,omitempty"`
	Profile   Profile `json:"profile"`
}

// Add folds o's scan counters into p. Identity fields (TraceID,
// ResultCacheHit, Shards) are left alone — they describe a whole query,
// not a summable cost.
func (p *Profile) Add(o Profile) {
	if p == nil {
		return
	}
	p.LeavesScanned += o.LeavesScanned
	p.LeavesPruned += o.LeavesPruned
	p.LeavesDecayed += o.LeavesDecayed
	p.ChunksScanned += o.ChunksScanned
	p.ChunksPrunedZone += o.ChunksPrunedZone
	p.ChunksPrunedBloom += o.ChunksPrunedBloom
	p.ChunksPrunedPred += o.ChunksPrunedPred
	p.ChunksAggMeta += o.ChunksAggMeta
	p.ColumnsDecoded += o.ColumnsDecoded
	p.ColumnsSkipped += o.ColumnsSkipped
	p.AggPartials += o.AggPartials
	p.CacheHits += o.CacheHits
	p.CacheMisses += o.CacheMisses
	p.InflatedBytes += o.InflatedBytes
	p.DFSReads += o.DFSReads
	p.MemEpochs += o.MemEpochs
	p.MemRows += o.MemRows
	p.ReadNS += o.ReadNS
	p.DecodeNS += o.DecodeNS
	p.LookupNS += o.LookupNS
	if o.ScanWorkers > p.ScanWorkers {
		p.ScanWorkers = o.ScanWorkers
	}
	p.ParallelUnits += o.ParallelUnits
}

type profileKey struct{}

// ContextWithProfile arranges for scans under the returned context to
// accrue into a Profile, and returns it. A context already carrying a
// profile is returned unchanged, so nested calls share one accumulator.
func ContextWithProfile(ctx context.Context) (context.Context, *Profile) {
	if p := ProfileFromContext(ctx); p != nil {
		return ctx, p
	}
	p := &Profile{}
	return context.WithValue(ctx, profileKey{}, p), p
}

// ProfileFromContext returns the profile accumulator carried by ctx, or
// nil when the query is unprofiled.
func ProfileFromContext(ctx context.Context) *Profile {
	p, _ := ctx.Value(profileKey{}).(*Profile)
	return p
}
