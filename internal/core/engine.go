// Package core implements the SPATE engine — the paper's primary
// contribution (§III–§VI): a telco big-data exploration framework that
// ingests 30-minute snapshots through lossless compression onto a
// replicated file system (storage layer), incrementally maintains a
// multi-resolution spatio-temporal index with materialized highlight
// summaries and progressive decay (indexing layer), and answers data
// exploration queries Q(a, b, w) — attribute selection a, spatial bounding
// box b, temporal window w — with response times independent of the
// queried window (application layer).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"spate/internal/compress"
	"spate/internal/compress/zst"
	"spate/internal/decay"
	"spate/internal/dfs"
	"spate/internal/geo"
	"spate/internal/highlights"
	"spate/internal/index"
	"spate/internal/memtable"
	"spate/internal/obs"
	"spate/internal/segment"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// ErrFinalized is returned by Ingest (and OpenStreamer) on a store whose
// open periods FinishIngest sealed: further ingestion would leave the
// sealed rollups silently stale. Open a new engine over the same cluster
// to re-enter an appendable state. Callers branch on it with errors.Is —
// cluster nodes map it to a distinct RPC status, the streamer refuses to
// open over it.
var ErrFinalized = errors.New("core: store was finalized by FinishIngest; open a new engine to continue")

// Options configures an engine. The zero value selects the paper's
// defaults: gzip compression, the default highlight attributes, per-level
// thresholds, the EvictOldestIndividuals fungus and no decay horizons
// (retain everything).
type Options struct {
	// Codec is the storage-layer compressor (default: registered "gzip").
	Codec compress.Codec
	// Highlights selects summarized attributes.
	Highlights highlights.Config
	// Theta holds per-resolution highlight thresholds θ_i; the paper allows
	// "lower thresholds for higher levels of resolution". Missing levels
	// default to DefaultTheta.
	Theta map[index.Level]float64
	// Fungus chooses the decay strategy (default EvictOldestIndividuals).
	Fungus decay.Fungus
	// Policy sets the decay horizons; the zero policy retains everything.
	Policy decay.Policy
	// LeafSpatialPrune enables the per-leaf spatial pruning discussed in
	// §V-A: exact-row queries consult leaf summaries to skip decompressing
	// snapshots with no data in the query box.
	LeafSpatialPrune bool
	// TrainDictionary switches the codec to a zstd dictionary trained on
	// the first TrainAfter snapshots (the §IX-B differential-compression
	// direction). Ignored unless the codec is zstd.
	TrainDictionary bool
	// TrainAfter is the number of snapshots sampled before training
	// (default 4).
	TrainAfter int
	// CacheSize bounds the query result cache (default 128 entries).
	CacheSize int
	// ResultCache, when non-nil, replaces the built-in per-engine result
	// cache — the hook a process-wide serving tier uses to pool every
	// engine's results under one byte budget (serving.Namespace binds one
	// namespace of a shared cache to this contract). The cache must honor
	// the decay/epoch invalidation contract: Invalidate drops entries
	// whose served period overlaps a stale range, Clear drops everything
	// on ingest. CacheSize is ignored when set.
	ResultCache ResultCache
	// ChunkSize is the target uncompressed bytes per leaf segment chunk
	// (default segment.DefaultChunkSize). A negative value writes legacy
	// whole-blob leaves instead of segments — the pre-segment format kept
	// for equivalence tests and downgrade compatibility; both formats are
	// always readable.
	ChunkSize int
	// ChunkCacheBytes bounds the in-memory cache of inflated leaf chunks
	// (default 64 MiB). A negative value disables the cache.
	ChunkCacheBytes int64
	// SegmentVersion selects the leaf segment layout for new writes: 0 or
	// segment.Version (3) writes column-major v3 chunks, segment.RowVersion
	// (2) keeps the row-major layout for equivalence benchmarks. Every
	// version stays readable regardless of this setting.
	SegmentVersion int
	// CellIndex selects the spatial index over the cell inventory:
	// "quadtree" (default) or "rtree" — the two variants §V-A names.
	CellIndex string
	// ScanWorkers bounds the goroutines a single query fans leaf×table
	// scan units out to (default GOMAXPROCS). 1 selects the sequential
	// scan path unchanged from earlier releases; results are bit-for-bit
	// identical at any width.
	ScanWorkers int
	// Obs selects the metrics registry the engine reports into (default
	// obs.Default). obs.NewNoop() disables all accounting — the baseline
	// the instrumentation-overhead benchmark compares against.
	Obs *obs.Registry
	// Tracer records per-request span trees (default obs.DefaultTracer;
	// forced off when Obs is a noop registry).
	Tracer *obs.Tracer
}

// DefaultTheta is the highlight threshold used when Options.Theta has no
// entry for a level.
const DefaultTheta = 0.05

func (o Options) withDefaults() (Options, error) {
	if o.Codec == nil {
		c, err := compress.Lookup("gzip")
		if err != nil {
			return o, fmt.Errorf("core: default codec: %w", err)
		}
		o.Codec = c
	}
	if o.Highlights.Categorical == nil && o.Highlights.Numeric == nil {
		o.Highlights = highlights.DefaultConfig()
	}
	if o.Fungus == nil {
		o.Fungus = decay.EvictOldestIndividuals{}
	}
	if o.TrainAfter <= 0 {
		o.TrainAfter = 4
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.ChunkSize == 0 {
		o.ChunkSize = segment.DefaultChunkSize
	}
	if o.ChunkCacheBytes == 0 {
		o.ChunkCacheBytes = 64 << 20
	}
	switch o.SegmentVersion {
	case 0:
		o.SegmentVersion = segment.Version
	case segment.RowVersion, segment.Version:
	default:
		return o, fmt.Errorf("core: unsupported segment version %d", o.SegmentVersion)
	}
	if o.ScanWorkers == 0 {
		o.ScanWorkers = runtime.GOMAXPROCS(0)
	}
	if o.ScanWorkers < 1 {
		o.ScanWorkers = 1
	}
	if o.Obs == nil {
		o.Obs = obs.Default
	}
	if o.Obs.Noop() {
		o.Tracer = nil
	} else if o.Tracer == nil {
		o.Tracer = obs.DefaultTracer
	}
	if err := o.Policy.Validate(); err != nil {
		return o, err
	}
	return o, nil
}

// theta returns the threshold for a level.
func (o Options) theta(l index.Level) float64 {
	if v, ok := o.Theta[l]; ok {
		return v
	}
	return DefaultTheta
}

// Engine is a SPATE instance. It is safe for one concurrent ingester plus
// any number of concurrent queriers.
type Engine struct {
	opts Options
	fs   *dfs.Cluster

	mu    sync.RWMutex
	tree  *index.Tree
	cells map[int64]geo.Point
	cellQ geo.SpatialIndex

	// decayMu serializes decay and compaction sweeps with each other.
	// Sweeps take e.mu only in short bursts (plan under RLock, batched
	// mutations under Lock) so explorations keep flowing while one runs;
	// two sweeps interleaving with each other, however, could double-apply
	// evictions or swap refs a concurrent sweep just planned against.
	decayMu sync.Mutex

	// dictionary training state
	trainSamples [][]byte
	trained      bool

	// finished marks a store whose open periods were sealed; further
	// ingestion is rejected (summaries would be stale otherwise).
	finished bool

	// memt is the streaming memtable of unsealed rows, attached by
	// OpenStreamer; queries union it with sealed-leaf scans. Nil on a
	// batch-only engine.
	memt *memtable.Memtable

	cache ResultCache

	// chunkCache holds inflated leaf chunks across queries, bounded by
	// bytes; see Options.ChunkCacheBytes.
	chunkCache *segment.Cache

	// chunkFlight deduplicates concurrent inflations of the same chunk
	// (across scan workers and across queries); resFlight deduplicates
	// whole identical explorations that miss the result cache.
	chunkFlight flightGroup
	resFlight   resultFlight

	// met holds the engine's pre-resolved obs series and tracer.
	met *engineMetrics

	// cumulative ingest accounting
	rawBytes  int64
	compBytes int64

	// colStats feeds /api/stats with per-column codec choices (self-locking).
	colStats colStatsBook
}

// Open creates an engine over a DFS cluster with the given static cell
// inventory (the CELL table). The inventory is persisted to the DFS so the
// store is self-describing.
func Open(fs *dfs.Cluster, cellTable *telco.Table, opts Options) (*Engine, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	opts.Codec = compress.Instrument(opts.Codec, opts.Obs)
	e := &Engine{
		opts:       opts,
		fs:         fs,
		tree:       index.New(),
		cells:      make(map[int64]geo.Point),
		chunkCache: segment.NewCache(opts.ChunkCacheBytes, opts.Obs),
		met:        newEngineMetrics(opts.Obs, opts.Tracer),
	}
	if opts.ResultCache != nil {
		e.cache = opts.ResultCache
	} else {
		e.cache = newResultCache(opts.CacheSize, opts.Obs)
	}
	opts.Obs.Gauge("spate_scan_parallel_workers",
		"Configured per-query scan worker fan-out.").Set(float64(opts.ScanWorkers))
	bounds := geo.NewRect(0, 0, 1, 1)
	first := true
	idIdx := cellTable.Schema.FieldIndex(telco.AttrCellID)
	xIdx := cellTable.Schema.FieldIndex("x_km")
	yIdx := cellTable.Schema.FieldIndex("y_km")
	if idIdx < 0 || xIdx < 0 || yIdx < 0 {
		return nil, fmt.Errorf("core: cell table %q lacks cell_id/x_km/y_km", cellTable.Schema.Name)
	}
	for _, r := range cellTable.Rows {
		id := r[idIdx].Int64()
		pt := geo.Point{X: r[xIdx].Float64(), Y: r[yIdx].Float64()}
		e.cells[id] = pt
		if first {
			bounds = geo.NewRect(pt.X, pt.Y, pt.X+1e-6, pt.Y+1e-6)
			first = false
		} else {
			bounds = bounds.Expand(pt)
		}
	}
	items := make([]geo.Item, 0, len(e.cells))
	for id, pt := range e.cells {
		items = append(items, geo.Item{Pt: pt, ID: id, Weight: 1})
	}
	switch opts.CellIndex {
	case "", "quadtree":
		qt := geo.NewQuadTree(bounds, 0)
		for _, it := range items {
			qt.Insert(it)
		}
		e.cellQ = qt
	case "rtree":
		e.cellQ = geo.BulkLoadRTree(items, 16)
	default:
		return nil, fmt.Errorf("core: unknown cell index %q (quadtree|rtree)", opts.CellIndex)
	}
	// Persist the inventory (idempotent across engine restarts on the same
	// cluster).
	if !fs.Exists("/spate/meta/CELL") {
		var data []byte
		text := cellTable.Text()
		data = opts.Codec.Compress(data, []byte(text))
		if err := fs.WriteFile("/spate/meta/CELL", data); err != nil {
			return nil, fmt.Errorf("core: persist cell table: %w", err)
		}
	}
	// A cluster that already carries SPATE state recovers its index: leaf
	// metadata rebuilds the temporal tree and persisted summaries reload.
	if err := e.recover(); err != nil {
		return nil, err
	}
	// A previously trained dictionary re-arms the codec.
	if opts.TrainDictionary && fs.Exists("/spate/meta/zstd-dict") {
		if dict, err := fs.ReadFile("/spate/meta/zstd-dict"); err == nil {
			e.opts.Codec = compress.Instrument(zst.New(dict), e.opts.Obs)
			e.trained = true
		}
	}
	return e, nil
}

// Tree exposes the temporal index for inspection (benchmarks, UI). It is
// not synchronized with ingest — callers that may run concurrently with
// Ingest should use Snapshots / LastEpoch instead.
func (e *Engine) Tree() *index.Tree { return e.tree }

// Snapshots returns the number of epoch leaves currently indexed.
func (e *Engine) Snapshots() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tree.Len()
}

// LastEpoch returns the most recently ingested epoch, and false when the
// store is empty.
func (e *Engine) LastEpoch() (telco.Epoch, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tree.LastEpoch()
}

// FS returns the underlying DFS cluster.
func (e *Engine) FS() *dfs.Cluster { return e.fs }

// Codec returns the active storage codec (which may be a trained
// dictionary codec after TrainDictionary kicks in).
func (e *Engine) Codec() compress.Codec {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts.Codec
}

// CellsInBox returns the IDs of cells located inside box.
func (e *Engine) CellsInBox(box geo.Rect) []int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	items := e.cellQ.Query(box, nil)
	out := make([]int64, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}

// CellLocation returns a cell's planar location.
func (e *Engine) CellLocation(id int64) (geo.Point, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	pt, ok := e.cells[id]
	return pt, ok
}

// IngestReport describes one snapshot ingestion — the quantities behind
// the paper's ingestion-time (Fig. 7/9) and space (Fig. 8/10) series.
type IngestReport struct {
	Epoch          telco.Epoch
	Rows           int
	RawBytes       int64
	CompBytes      int64
	CompressTime   time.Duration
	IndexTime      time.Duration
	Total          time.Duration
	CompletedNodes int
	// Stages is the fine-grained wall-time breakdown (encode, train,
	// compress, dfs_write, highlight, index_insert, seal, persist_meta,
	// decay) that also feeds the spate_ingest_stage_seconds histograms.
	Stages []obs.Stage
}

// Ingest runs the storage layer (compress + DFS write) and the Incremence
// module for one arriving snapshot, computing highlight summaries for any
// day/month/year that the arrival completes and then running the decay
// fungus. Snapshot tables are re-clustered by record timestamp in place
// before encoding, so stored leaves carry time-ordered rows — the property
// segment chunk zone maps prune by.
func (e *Engine) Ingest(s *snapshot.Snapshot) (IngestReport, error) {
	return e.IngestContext(context.Background(), s)
}

// IngestContext is Ingest with span propagation: when ctx carries a live
// obs span the ingest span nests under it.
func (e *Engine) IngestContext(ctx context.Context, s *snapshot.Snapshot) (rep IngestReport, err error) {
	start := time.Now()
	rep = IngestReport{Epoch: s.Epoch, Rows: s.Rows()}
	sr := newStageRecorder()
	var span *obs.Span
	if e.met.tracer != nil {
		_, span = e.met.tracer.StartSpan(ctx, "ingest")
	}
	defer func() {
		rep.Total = time.Since(start)
		rep.Stages = sr.flush(e.met.ingestStage, span)
		span.End()
		if err != nil {
			e.met.ingestErrors.Inc()
			return
		}
		e.met.ingestSec.Observe(rep.Total.Seconds())
		e.met.ingestSnaps.Inc()
		e.met.ingestRows.Add(int64(rep.Rows))
		e.met.ingestRawB.Add(rep.RawBytes)
		e.met.ingestCompB.Add(rep.CompBytes)
	}()

	// Validate before the storage layer writes anything, so a rejected
	// snapshot leaves no orphan files behind.
	e.mu.RLock()
	finished := e.finished
	last, hasLeaf := e.tree.LastEpoch()
	e.mu.RUnlock()
	if finished {
		return rep, ErrFinalized
	}
	if hasLeaf && s.Epoch <= last {
		return rep, fmt.Errorf("core: epoch %v arrives out of order (last %v)", s.Epoch, last)
	}

	// Storage layer: every table encodes and compresses in its own worker
	// (wire-text rendering and chunk compression dominate ingest time and
	// are independent across tables), then the replicated DFS writes and
	// the highlight fold run serially in name order so reports, stage
	// accounting and summaries stay deterministic.
	refs := make(map[string]string)
	period := telco.TimeRange{From: s.Epoch.Start(), To: s.Epoch.End()}
	leafSummary := highlights.NewSummary(period)
	tCompress := time.Now()
	names := s.TableNames()
	encoded := make([]encodedLeaf, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			encoded[i] = e.encodeLeafTable(s, name)
		}(i, name)
	}
	wg.Wait()
	for i, name := range names {
		enc := &encoded[i]
		sr.add(StageEncode, enc.encodeNS)
		sr.add(StageTrain, enc.trainNS)
		sr.add(StageCompress, enc.compressNS)
		if enc.err != nil {
			return rep, fmt.Errorf("core: encode %s: %w", name, enc.err)
		}
		rep.RawBytes += enc.raw
		rep.CompBytes += int64(len(enc.data))
		e.colStats.add(name, enc.colNames, enc.colStats)
		path := snapshot.DataPath(s.Epoch, name)
		t0 := time.Now()
		werr := e.fs.WriteFile(path, enc.data)
		sr.add(StageDFSWrite, time.Since(t0).Nanoseconds())
		if werr != nil {
			return rep, fmt.Errorf("core: store %s: %w", name, werr)
		}
		refs[name] = path
		t0 = time.Now()
		leafSummary.AddTable(e.opts.Highlights, s.Table(name))
		sr.add(StageHighlight, time.Since(t0).Nanoseconds())
	}
	rep.CompressTime = time.Since(tCompress)

	// Indexing layer: incremence on the right-most path.
	tIndex := time.Now()
	e.mu.Lock()
	leaf, completed, err := e.tree.Append(s.Epoch, refs, rep.CompBytes, rep.RawBytes)
	if err != nil {
		e.mu.Unlock()
		return rep, err
	}
	leaf.Summary = leafSummary
	sr.add(StageIndex, time.Since(tIndex).Nanoseconds())
	tSeal := time.Now()
	var sealErr error
	for _, n := range completed {
		if err := e.sealLocked(n); err != nil && sealErr == nil {
			sealErr = err
		}
	}
	sr.add(StageSeal, time.Since(tSeal).Nanoseconds())
	e.rawBytes += rep.RawBytes
	e.compBytes += rep.CompBytes
	e.cache.Clear()
	e.mu.Unlock()
	if sealErr != nil {
		return rep, sealErr
	}
	tPersist := time.Now()
	if err := e.persistLeafMeta(leafMeta{
		Epoch: s.Epoch, Refs: refs,
		RawBytes: rep.RawBytes, CompBytes: rep.CompBytes,
	}); err != nil {
		return rep, err
	}
	sr.add(StagePersist, time.Since(tPersist).Nanoseconds())
	rep.IndexTime = time.Since(tIndex)
	rep.CompletedNodes = len(completed)

	// Decaying: purge aged entries under the configured policy.
	tDecay := time.Now()
	_, err = e.Decay(s.Epoch.End())
	sr.add(StageDecay, time.Since(tDecay).Nanoseconds())
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// sealLocked computes and stores a completed node's summary by merging its
// children's summaries (days merge epoch leaves; months merge days; years
// merge months) — the highlights rollup of §V-B — and persists the sealed
// summary to the DFS so the index survives restarts. Leaves whose
// ephemeral summary is gone (a recovered open day) are rebuilt from their
// compressed data first.
func (e *Engine) sealLocked(n *index.Node) error {
	parts := make([]*highlights.Summary, 0, len(n.Children))
	for _, c := range n.Children {
		if c.Summary == nil && c.IsLeaf() && !c.Decayed {
			// e.mu is held: read the codec directly.
			s, err := e.buildLeafSummary(e.opts.Codec, c.Period, c.DataRefs, nil)
			if err != nil {
				return fmt.Errorf("core: seal %s %v: %w", n.Level, n.Period.From, err)
			}
			c.Summary = s
		}
		parts = append(parts, c.Summary)
	}
	n.Summary = highlights.Merge(n.Period, parts...)
	if err := e.persistSummary(n); err != nil {
		return err
	}
	// Epoch-level summaries are ephemeral ingestion state: once the day is
	// sealed, the paper's index keeps highlights at day/month/year nodes
	// only, and sub-day queries fall back to the compressed data itself.
	if n.Level == index.LevelDay {
		for _, c := range n.Children {
			c.Summary = nil
		}
	}
	return nil
}

// FinishIngest seals the still-open right-most path, for use when a trace
// ends mid-day: subsequent queries can then use day/month summaries for
// the final partial periods. The store becomes read-only: further Ingest
// calls fail (their rollups would silently miss the sealed partial
// periods); open a fresh engine over the same cluster to re-enter an
// appendable state.
func (e *Engine) FinishIngest() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, n := range e.tree.FinishIngest() {
		// Best-effort: sealing failures degrade queries to the data path.
		_ = e.sealLocked(n)
	}
	e.finished = true
	e.cache.Clear()
}

// attachMemtable wires the streaming memtable into the query path. The
// cache is cleared because cached "no newer data" answers may now be
// wrong the moment rows land.
func (e *Engine) attachMemtable(m *memtable.Memtable) {
	e.mu.Lock()
	e.memt = m
	e.mu.Unlock()
	e.cache.Clear()
}

// memAfterLocked returns the attached memtable and the epoch watermark
// its query contributions start after: buffered epochs at or below the
// tree's last leaf are excluded, because a seal makes the leaf visible
// before dropping the memtable copy — without the filter such an epoch
// would briefly count double. Caller holds e.mu (either mode); the
// watermark and the query plan must be captured under the same lock
// acquisition.
func (e *Engine) memAfterLocked() (*memtable.Memtable, telco.Epoch) {
	if e.memt == nil {
		return nil, 0
	}
	last, ok := e.tree.LastEpoch()
	if !ok {
		last = telco.Epoch(minEpoch)
	}
	return e.memt, last
}

// minEpoch sorts before every real epoch (math.MinInt64).
const minEpoch = -1 << 63

// codec returns the active codec without locking (reads e.opts.Codec which
// only changes under e.mu during training).
func (e *Engine) codec() compress.Codec {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.opts.Codec
}

// maybeTrain accumulates early snapshots and, once enough arrived, swaps
// in a dictionary-trained zstd codec for all subsequent snapshots. The
// dictionary is persisted so readers of old data are unaffected (old
// blocks carry no dict flag; new blocks do).
func (e *Engine) maybeTrain(text []byte) {
	if !e.opts.TrainDictionary {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.trained {
		return
	}
	if _, ok := compress.Unwrap(e.opts.Codec).(zst.Codec); !ok {
		e.trained = true // not applicable
		return
	}
	sample := text
	if len(sample) > 256<<10 {
		sample = sample[:256<<10]
	}
	e.trainSamples = append(e.trainSamples, append([]byte(nil), sample...))
	if len(e.trainSamples) < e.opts.TrainAfter {
		return
	}
	dict := zst.Train(e.trainSamples, 64<<10)
	e.trainSamples = nil
	e.trained = true
	if len(dict) == 0 {
		return
	}
	if err := e.fs.WriteFile("/spate/meta/zstd-dict", dict); err == nil {
		e.opts.Codec = compress.Instrument(zst.New(dict), e.opts.Obs)
	}
}

// ClearCache drops the query result cache (benchmarks use this to measure
// uncached response times; normal operation never needs it).
func (e *Engine) ClearCache() { e.cache.Clear() }

// Decay plans and applies the data fungus at the given instant with no
// budget — the ingest-path housekeeping call. See DecayRun.
func (e *Engine) Decay(now time.Time) (decay.Result, error) {
	rep, err := e.DecayRun(now, DecayBudget{})
	return rep.Result, err
}

// DecayBudget bounds one decay sweep. The zero value applies the whole
// plan in default-sized batches.
type DecayBudget struct {
	// MaxLeaves caps the number of leaves whose raw data one sweep may
	// evict (subtree prunes count every undecayed leaf beneath). 0 = no
	// cap. At least one eviction is always admitted so sweeps make
	// progress.
	MaxLeaves int
	// MaxBytes stops admitting evictions once the planned reclaim reaches
	// this many compressed bytes. 0 = no cap.
	MaxBytes int64
	// DryRun plans (and clamps) without touching the tree or the DFS —
	// the report carries what a real sweep would have reclaimed.
	DryRun bool
	// BatchSize is how many evictions apply per write-lock acquisition
	// (default 32). Smaller batches yield to concurrent explorations more
	// often at the cost of more lock traffic.
	BatchSize int
}

// DecayReport describes one decay sweep.
type DecayReport struct {
	decay.Result
	// Planned counts the evictions the fungus proposed; Applied counts
	// those admitted by the budget (and, unless DryRun, executed).
	Planned int
	Applied int
	// Clamped marks a sweep the budget cut short; the remainder stays for
	// the next run.
	Clamped bool
	DryRun  bool
}

// evictionCost sizes one planned eviction for budget accounting. Caller
// holds at least the read lock.
func evictionCost(ev decay.Eviction) (leaves int, bytes int64) {
	switch ev.Action {
	case decay.EvictLeafData:
		if !ev.Node.Decayed {
			return 1, ev.Node.DataBytes
		}
		return 0, 0
	case decay.PruneChildren:
		var walk func(n *index.Node)
		walk = func(n *index.Node) {
			if n.IsLeaf() {
				if !n.Decayed {
					leaves++
					bytes += n.DataBytes
				}
				return
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(ev.Node)
	}
	return leaves, bytes
}

// DecayRun plans and applies the data fungus at the given instant under a
// budget. Planning happens under the engine read lock; evictions then
// apply in bounded batches under short write-lock acquisitions, with the
// DFS deletes deferred outside the lock entirely — a concurrent Explore
// is never blocked for the whole sweep. Cache damage is targeted: deleted
// leaf files drop their inflated chunks from the chunk cache by path
// prefix, and only cached results whose served period intersects a
// decayed node's period are invalidated — a cached query over a disjoint
// window keeps serving hits through decay runs.
//
// A delete that fails leaves an orphaned file behind (the index entry is
// already gone); the first such error is reported after the sweep
// finishes applying.
func (e *Engine) DecayRun(now time.Time, b DecayBudget) (DecayReport, error) {
	e.decayMu.Lock()
	defer e.decayMu.Unlock()
	if b.BatchSize <= 0 {
		b.BatchSize = 32
	}

	// Plan under the read lock: the fungus walks the tree, and budget
	// accounting reads leaf payload fields, but nothing mutates.
	e.mu.RLock()
	evs := e.opts.Fungus.Plan(now, e.tree, e.opts.Policy)
	rep := DecayReport{Planned: len(evs), DryRun: b.DryRun}
	var planLeaves int
	var planBytes int64
	kept := evs
	for i, ev := range evs {
		l, by := evictionCost(ev)
		if i > 0 && ((b.MaxLeaves > 0 && planLeaves+l > b.MaxLeaves) ||
			(b.MaxBytes > 0 && planBytes+by > b.MaxBytes)) {
			kept, rep.Clamped = evs[:i], true
			break
		}
		planLeaves += l
		planBytes += by
	}
	rep.Applied = len(kept)
	e.mu.RUnlock()
	if len(kept) == 0 {
		return rep, nil
	}
	if b.DryRun {
		for _, ev := range kept {
			if ev.Action == decay.PruneChildren {
				rep.NodesPruned += len(ev.Node.Children)
			}
		}
		rep.LeavesDecayed = planLeaves
		rep.BytesFreed = planBytes
		return rep, nil
	}

	// Apply in bounded batches. The tree only grows between plan and
	// apply (ingest appends on the right-most path; other sweeps are
	// serialized by decayMu), so the planned nodes stay valid.
	var pending []string // DFS paths to delete once the lock is down
	var delErr error
	structural := false
	for start := 0; start < len(kept); start += b.BatchSize {
		batch := kept[start:min(start+b.BatchSize, len(kept))]
		e.mu.Lock()
		stale := make([]telco.TimeRange, len(batch))
		for i, ev := range batch {
			stale[i] = ev.Node.Period
		}
		res, err := decay.Apply(e.tree, batch, func(path string) error {
			e.chunkCache.InvalidatePrefix(path + "#")
			pending = append(pending, path)
			return nil
		})
		rep.LeavesDecayed += res.LeavesDecayed
		rep.NodesPruned += res.NodesPruned
		rep.BytesFreed += res.BytesFreed
		rep.RefsDeleted += res.RefsDeleted
		e.cache.Invalidate(stale)
		e.mu.Unlock()
		if err != nil {
			return rep, fmt.Errorf("core: decay: %w", err)
		}
		if res.NodesPruned > 0 {
			structural = true
		}
		for _, p := range pending {
			if derr := e.fs.Delete(p); derr != nil && delErr == nil {
				delErr = derr
			}
		}
		pending = pending[:0]
	}
	if rep.LeavesDecayed > 0 || rep.NodesPruned > 0 {
		e.met.decayRuns.Inc()
		e.met.decayLeaves.Add(int64(rep.LeavesDecayed))
		e.met.decayPruned.Add(int64(rep.NodesPruned))
		e.met.decayBytes.Add(rep.BytesFreed)
	}
	if structural {
		// Drop leaf metadata of pruned subtrees so a recovery does not
		// resurrect index entries beyond the live tree.
		if err := e.cleanupLeafMeta(); err != nil {
			return rep, err
		}
	}
	if delErr != nil {
		return rep, fmt.Errorf("core: decay delete: %w", delErr)
	}
	return rep, nil
}

// SpaceReport quantifies the paper's first objective O1 = S / (Sc + Si).
type SpaceReport struct {
	RawBytes     int64 // S: bytes before compression (all ingested)
	CompBytes    int64 // Sc: compressed bytes currently held (logical)
	SummaryBytes int64 // Si: index/highlight footprint estimate
	StoredBytes  int64 // physical bytes on the DFS incl. replication
	O1           float64
}

// Space returns current storage accounting.
func (e *Engine) Space() SpaceReport {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := e.tree.Stats()
	u := e.fs.Usage()
	rep := SpaceReport{
		RawBytes:     e.rawBytes,
		CompBytes:    st.DataBytes,
		SummaryBytes: st.SummaryBytes,
		StoredBytes:  u.StoredBytes,
	}
	if d := rep.CompBytes + rep.SummaryBytes; d > 0 {
		rep.O1 = float64(rep.RawBytes) / float64(d)
	}
	return rep
}
