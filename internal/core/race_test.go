package core

import (
	"sync"
	"testing"

	"spate/internal/snapshot"
	"spate/internal/telco"
)

// TestConcurrentIngestExplore drives one ingester against several
// explorers. Every ingest clears the result cache while explorations
// populate and hit it, so under -race this exercises the cache's
// clear/get/put interleavings along with the engine's reader/writer
// locking (the cluster's node RPC path runs exactly this mix).
func TestConcurrentIngestExplore(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 4)

	e0 := telco.EpochOf(r.cfg.Start)
	window := telco.TimeRange{From: e0.Start(), To: (e0 + 64).Start()}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-done:
					return
				default:
				}
				// Two explorers share a window (cache hits), two vary it
				// (cache fills), and one clears — every cache transition
				// stays hot while the ingester clears concurrently.
				w := window
				if i%2 == 1 {
					w.To = (e0 + telco.Epoch(5+n%16)).Start()
				}
				if _, err := r.e.Explore(Query{Window: w}); err != nil {
					t.Errorf("explore: %v", err)
					return
				}
				if i == 0 && n%8 == 0 {
					r.e.ClearCache()
				}
			}
		}(i)
	}

	// The single permitted ingester appends epochs while the explorers run;
	// each ingest clears the result cache.
	for i := 4; i < 20; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(r.g.CDRTable(s.Epoch))
		s.Add(r.g.NMSTable(s.Epoch))
		if _, err := r.e.Ingest(s); err != nil {
			t.Errorf("ingest: %v", err)
			break
		}
	}
	close(done)
	wg.Wait()
	r.e.FinishIngest()

	res, err := r.e.Explore(Query{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows == 0 {
		t.Fatal("no rows after concurrent ingest")
	}
}
