package core

import (
	"sort"
	"sync"

	"spate/internal/segment"
)

// ColumnCodecStat is one (table, column) row of the ingest-side codec
// selection feed: how many chunks each column codec won and the mean
// per-chunk entropy that drove the choices. Served through /api/stats so
// the UI can show which attributes dictionary-, delta- or plain-encode.
type ColumnCodecStat struct {
	Table       string  `json:"table"`
	Column      string  `json:"column"`
	PlainChunks int     `json:"plain_chunks"`
	DictChunks  int     `json:"dict_chunks"`
	DeltaChunks int     `json:"delta_chunks"`
	EntropyBits float64 `json:"entropy_bits"`
}

// colStatsBook accumulates per-(table, column) codec-selection stats
// across ingests. Encode workers report per-segment stats; the book keeps
// chunk counts and an entropy mean weighted by segment count.
type colStatsBook struct {
	mu     sync.Mutex
	tables map[string]*tableColStats
}

type tableColStats struct {
	names      []string
	plain      []int
	dict       []int
	delta      []int
	entropySum []float64
	segments   int
}

func (b *colStatsBook) add(table string, names []string, stats []segment.ColumnStat) {
	if len(names) == 0 || len(names) != len(stats) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tables == nil {
		b.tables = make(map[string]*tableColStats)
	}
	ts := b.tables[table]
	if ts == nil || len(ts.names) != len(names) {
		ts = &tableColStats{
			names:      append([]string(nil), names...),
			plain:      make([]int, len(names)),
			dict:       make([]int, len(names)),
			delta:      make([]int, len(names)),
			entropySum: make([]float64, len(names)),
		}
		b.tables[table] = ts
	}
	ts.segments++
	for i, st := range stats {
		ts.plain[i] += st.Plain
		ts.dict[i] += st.Dict
		ts.delta[i] += st.Delta
		ts.entropySum[i] += st.EntropyBits
	}
}

func (b *colStatsBook) snapshot() []ColumnCodecStat {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []ColumnCodecStat
	tables := make([]string, 0, len(b.tables))
	for t := range b.tables {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		ts := b.tables[t]
		for i, name := range ts.names {
			st := ColumnCodecStat{
				Table:       t,
				Column:      name,
				PlainChunks: ts.plain[i],
				DictChunks:  ts.dict[i],
				DeltaChunks: ts.delta[i],
			}
			if ts.segments > 0 {
				st.EntropyBits = ts.entropySum[i] / float64(ts.segments)
			}
			out = append(out, st)
		}
	}
	return out
}

// ColumnCodecStats reports the per-column codec choices and entropy
// observed by v3 ingest so far, in (table, schema-position) order.
func (e *Engine) ColumnCodecStats() []ColumnCodecStat {
	return e.colStats.snapshot()
}
