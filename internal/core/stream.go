package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spate/internal/memtable"
	"spate/internal/obs"
	"spate/internal/telco"
	"spate/internal/wal"
)

// ErrBackpressure is returned by Streamer.Append when the unsealed
// backlog (memtable plus queued batches) stays over StreamerOptions.
// MaxPending for longer than BackpressureWait. The caller should slow
// down and retry; nothing of the rejected batch was applied.
var ErrBackpressure = errors.New("core: streamer backpressure: unsealed backlog over limit")

// BackpressureError is the typed form of ErrBackpressure: it carries how
// long the producer should back off before retrying, derived from the
// backlog the rejected append actually saw. errors.Is(err,
// ErrBackpressure) keeps working through Unwrap, so existing callers
// branch unchanged; HTTP layers use errors.As to surface RetryAfter as
// an honest Retry-After header instead of a constant.
type BackpressureError struct {
	// RetryAfter is the suggested backoff before the next attempt.
	RetryAfter time.Duration
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("%v (retry in %v)", ErrBackpressure, e.RetryAfter)
}

func (e *BackpressureError) Unwrap() error { return ErrBackpressure }

// ErrStaleEpoch is returned by Streamer.Append for rows whose epoch has
// already sealed into compressed segments — the streaming counterpart of
// the batch path's out-of-order rejection. Nothing of the rejected batch
// was applied.
var ErrStaleEpoch = errors.New("core: row epoch already sealed")

// ErrStreamerClosed is returned by operations on a closed Streamer.
var ErrStreamerClosed = errors.New("core: streamer closed")

// StreamerOptions configures the continuous ingest path.
type StreamerOptions struct {
	// WALDir is the local directory holding the write-ahead log. Required:
	// the DFS is write-once, so the WAL lives beside it on the plain file
	// system.
	WALDir string
	// SegmentBytes, Sync and GroupWindow pass through to the WAL (see
	// wal.Options).
	SegmentBytes int64
	Sync         wal.SyncPolicy
	GroupWindow  time.Duration
	// QueueDepth bounds the append queue in batches (default 256).
	QueueDepth int
	// MaxPending bounds the unsealed backlog in bytes — buffered memtable
	// rows plus queued batches (default 64 MiB). Appends over the bound
	// block up to BackpressureWait, then fail with ErrBackpressure.
	MaxPending int64
	// BackpressureWait is how long an Append blocks for the backlog to
	// drop below MaxPending before giving up (default 2 s).
	BackpressureWait time.Duration
}

func (o StreamerOptions) withDefaults() StreamerOptions {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 64 << 20
	}
	if o.BackpressureWait <= 0 {
		o.BackpressureWait = 2 * time.Second
	}
	return o
}

// appendBatch is one Append call in flight between the caller and the
// writer goroutine. A batch with no records is a barrier: it flows
// through the pipeline and completes once everything before it applied.
type appendBatch struct {
	table   string
	recs    []telco.Record
	eps     []telco.Epoch // per-record epoch, precomputed by Append
	bytes   int64
	applied bool
	err     error
	done    chan error
}

type streamMetrics struct {
	rows       *obs.Counter
	batches    *obs.Counter
	bpWaits    *obs.Counter
	bpErrors   *obs.Counter
	stale      *obs.Counter
	seals      *obs.Counter
	sealedRows *obs.Counter
	appendSec  *obs.Histogram
}

// Streamer is the engine's continuous ingest front end: Append logs rows
// to the WAL, makes them durable through one group commit per writer
// cycle, and inserts them into the memtable — from which queries serve
// them immediately (see the memtable union in ExploreContext). A sealer
// turns each epoch into compressed SPSG segments through the very same
// Ingest path batch snapshots take, bit-for-bit, once data time moves
// past it.
//
// One Streamer may be open per Engine. All methods are safe for
// concurrent use.
type Streamer struct {
	eng  *Engine
	log  *wal.Log
	mem  *memtable.Memtable
	opts StreamerOptions

	queue  chan *appendBatch
	queued atomic.Int64 // bytes accepted but not yet applied

	// sendMu makes {closed check; enqueue} atomic against Close closing
	// the queue channel.
	sendMu sync.RWMutex
	closed bool

	// mu orders the writer's {stale check; WAL append; memtable insert}
	// against the sealer's watermark advance: a row is either inserted
	// before its epoch seals (and the seal snapshot includes it) or
	// rejected as stale — never silently stranded in a sealed epoch.
	mu        sync.Mutex
	sealed    telco.Epoch // epochs <= sealed are closed to writes
	hasSealed bool
	maxSeen   telco.Epoch // newest row epoch appended or replayed
	hasSeen   bool
	segMax    map[uint64]telco.Epoch // per WAL segment: max epoch logged
	err       error                  // sticky I/O error; fails all later appends

	sealMu   sync.Mutex // serializes seals
	sealKick chan struct{}
	done     chan struct{}
	wg       sync.WaitGroup

	met streamMetrics
}

// OpenStreamer opens the streaming ingest path over the engine: the WAL
// in opts.WALDir is created or recovered — surviving records of unsealed
// epochs replay into a fresh memtable and are immediately explorable
// again — and the writer and sealer goroutines start. Epochs the WAL
// still holds but the engine already sealed (the crash hit between seal
// and purge) are skipped, so replay never double-ingests.
func (e *Engine) OpenStreamer(opts StreamerOptions) (*Streamer, error) {
	opts = opts.withDefaults()
	if opts.WALDir == "" {
		return nil, fmt.Errorf("core: streamer: WALDir is required")
	}
	e.mu.RLock()
	finished := e.finished
	streaming := e.memt != nil
	e.mu.RUnlock()
	if finished {
		return nil, ErrFinalized
	}
	if streaming {
		return nil, fmt.Errorf("core: streamer: engine already has an open streamer")
	}
	log, err := wal.Open(opts.WALDir, wal.Options{
		SegmentBytes: opts.SegmentBytes,
		Sync:         opts.Sync,
		GroupWindow:  opts.GroupWindow,
		Obs:          e.opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	s := &Streamer{
		eng:      e,
		log:      log,
		mem:      memtable.New(e.opts.Obs),
		opts:     opts,
		queue:    make(chan *appendBatch, opts.QueueDepth),
		segMax:   make(map[uint64]telco.Epoch),
		sealKick: make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	r := e.opts.Obs
	s.met = streamMetrics{
		rows:       r.Counter("spate_stream_append_rows_total", "Rows accepted by the streaming ingest path."),
		batches:    r.Counter("spate_stream_append_batches_total", "Append batches accepted by the streaming ingest path."),
		bpWaits:    r.Counter("spate_stream_backpressure_waits_total", "Appends that blocked on the unsealed-backlog bound."),
		bpErrors:   r.Counter("spate_stream_backpressure_errors_total", "Appends rejected with ErrBackpressure."),
		stale:      r.Counter("spate_stream_stale_rows_total", "Rows rejected because their epoch had already sealed."),
		seals:      r.Counter("spate_stream_seals_total", "Epochs sealed from the memtable into compressed segments."),
		sealedRows: r.Counter("spate_stream_sealed_rows_total", "Rows sealed from the memtable into compressed segments."),
		appendSec:  r.Histogram("spate_stream_append_seconds", "Append latency: enqueue to durable + explorable.", obs.ExpBuckets(1e-5, 4, 10)),
	}
	r.GaugeFunc("spate_stream_pending_bytes", "Unsealed backlog: memtable plus queued batches.", func() float64 {
		return float64(s.pending())
	})
	last, sealedBefore := e.LastEpoch()
	if sealedBefore {
		s.sealed, s.hasSealed = last, true
	}
	// Crash recovery: replay the surviving WAL records of unsealed epochs.
	err = log.Replay(func(pos wal.Pos, payload []byte) error {
		table, rec, derr := decodeStreamPayload(payload)
		if derr != nil {
			return derr
		}
		ep, ierr := recordEpoch(table, rec)
		if ierr != nil {
			return ierr
		}
		if sealedBefore && ep <= last {
			return nil // sealed before the crash; the leaf already has it
		}
		if _, ierr := s.mem.Insert(table, rec); ierr != nil {
			return ierr
		}
		if ep > s.segMax[pos.Seg] {
			s.segMax[pos.Seg] = ep
		}
		if !s.hasSeen || ep > s.maxSeen {
			s.maxSeen, s.hasSeen = ep, true
		}
		return nil
	})
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("core: streamer recovery: %w", err)
	}
	e.attachMemtable(s.mem)
	s.wg.Add(2)
	go s.writer()
	go s.sealer()
	return s, nil
}

// Memtable exposes the unsealed-row table (tests, UI counters).
func (s *Streamer) Memtable() *memtable.Memtable { return s.mem }

// pending is the unsealed backlog the backpressure bound applies to.
func (s *Streamer) pending() int64 { return s.queued.Load() + s.mem.Bytes() }

// recordEpoch derives a record's epoch from its timestamp attribute.
func recordEpoch(table string, rec telco.Record) (telco.Epoch, error) {
	schema := telco.SchemaByName(table)
	if schema == nil {
		return 0, fmt.Errorf("core: streamer: unknown schema %q", table)
	}
	if len(rec) != len(schema.Fields) {
		return 0, fmt.Errorf("core: streamer: %s row has %d fields, want %d", table, len(rec), len(schema.Fields))
	}
	tsIdx := schema.FieldIndex(telco.AttrTS)
	if tsIdx < 0 || rec[tsIdx].IsNull() {
		return 0, fmt.Errorf("core: streamer: %s row lacks a timestamp", table)
	}
	return telco.EpochOf(rec[tsIdx].Time()), nil
}

// encodeStreamPayload renders one WAL record payload: the table name, a
// newline, then the row's wire-text line (which escapes raw newlines).
func encodeStreamPayload(table string, rec telco.Record) []byte {
	var b strings.Builder
	b.Grow(len(table) + 1 + 16*len(rec))
	b.WriteString(table)
	b.WriteByte('\n')
	rec.EncodeLine(&b)
	return []byte(b.String())
}

// decodeStreamPayload parses a WAL record payload back into its row.
func decodeStreamPayload(payload []byte) (table string, rec telco.Record, err error) {
	i := bytes.IndexByte(payload, '\n')
	if i < 0 {
		return "", nil, fmt.Errorf("core: streamer: malformed WAL payload (no table header)")
	}
	table = string(payload[:i])
	schema := telco.SchemaByName(table)
	if schema == nil {
		return "", nil, fmt.Errorf("core: streamer: WAL payload for unknown schema %q", table)
	}
	rec, err = telco.DecodeLine(schema, string(payload[i+1:]))
	if err != nil {
		return "", nil, fmt.Errorf("core: streamer: decode WAL payload: %w", err)
	}
	return table, rec, nil
}

// Append accepts one batch of rows of the named table. It returns once
// every row is logged to the WAL, made durable under the configured sync
// policy (one group commit covers the whole writer cycle) and visible to
// queries through the memtable — time-to-queryable is the latency of
// this call. Batches are all-or-nothing: a validation or stale-epoch
// failure applies none of the rows.
//
// When the unsealed backlog exceeds MaxPending the call blocks up to
// BackpressureWait for the sealer to catch up, then fails with
// ErrBackpressure. A canceled ctx abandons the wait; rows already
// handed to the writer may still apply (at-least-once under
// cancellation).
func (s *Streamer) Append(ctx context.Context, table string, recs []telco.Record) error {
	if len(recs) == 0 {
		return nil
	}
	start := time.Now()
	b := &appendBatch{
		table: table,
		recs:  recs,
		eps:   make([]telco.Epoch, len(recs)),
		done:  make(chan error, 1),
	}
	for i, rec := range recs {
		ep, err := recordEpoch(table, rec)
		if err != nil {
			return err
		}
		b.eps[i] = ep
		b.bytes += memtable.Size(rec)
	}
	if err := s.waitBackpressure(ctx, b.bytes); err != nil {
		return err
	}
	s.queued.Add(b.bytes)
	if err := s.enqueue(ctx, b); err != nil {
		s.queued.Add(-b.bytes)
		return err
	}
	select {
	case err := <-b.done:
		if err == nil {
			s.met.rows.Add(int64(len(recs)))
			s.met.batches.Inc()
			s.met.appendSec.Observe(time.Since(start).Seconds())
		}
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// waitBackpressure blocks while the backlog is over the bound, up to
// BackpressureWait.
func (s *Streamer) waitBackpressure(ctx context.Context, add int64) error {
	if s.pending()+add <= s.opts.MaxPending {
		return nil
	}
	s.met.bpWaits.Inc()
	deadline := time.NewTimer(s.opts.BackpressureWait)
	defer deadline.Stop()
	poll := time.NewTicker(time.Millisecond)
	defer poll.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-s.done:
			return ErrStreamerClosed
		case <-deadline.C:
			s.met.bpErrors.Inc()
			return &BackpressureError{RetryAfter: s.retryAfterHint(add)}
		case <-poll.C:
			if s.pending()+add <= s.opts.MaxPending {
				return nil
			}
		}
	}
}

// retryAfterHint sizes the backoff handed to a backpressured producer:
// a half-wait floor plus a term proportional to how far over the bound
// the backlog is, clamped so a wedged sealer never hints hours. A deeper
// overage hints a longer absence, so producers thin out in proportion to
// the congestion they caused.
func (s *Streamer) retryAfterHint(add int64) time.Duration {
	wait := s.opts.BackpressureWait
	hint := wait / 2
	if over := s.pending() + add - s.opts.MaxPending; over > 0 {
		hint += time.Duration(float64(wait) * float64(over) / float64(s.opts.MaxPending))
	}
	if max := 8 * wait; hint > max {
		hint = max
	}
	return hint
}

// enqueue hands a batch to the writer, atomically with the closed check.
func (s *Streamer) enqueue(ctx context.Context, b *appendBatch) error {
	s.sendMu.RLock()
	defer s.sendMu.RUnlock()
	if s.closed {
		return ErrStreamerClosed
	}
	select {
	case s.queue <- b:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// writer is the single goroutine draining the append queue. Each cycle
// applies every batch it could gather, so one WAL group commit covers
// them all.
func (s *Streamer) writer() {
	defer s.wg.Done()
	for {
		b, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*appendBatch{b}
	gather:
		for len(batch) < 128 {
			select {
			case nb, more := <-s.queue:
				if !more {
					s.apply(batch)
					return
				}
				batch = append(batch, nb)
			default:
				break gather
			}
		}
		s.apply(batch)
	}
}

// apply runs one writer cycle: stale-check, WAL-append and
// memtable-insert each batch under s.mu (one critical section, so a
// sealer watermark can never slip between check and insert), then one
// group commit for durability, then completion. Rows become visible to
// queries at insert — up to one group-commit window before they are
// durable — but Append only returns after both.
func (s *Streamer) apply(batch []*appendBatch) {
	var maxPos wal.Pos
	havePos := false
	touched := make(map[telco.Epoch]struct{})
	s.mu.Lock()
	// Batch ingests bypass the streamer, so the engine's newest leaf can
	// run ahead of the stream watermark (a node bulk-loaded after its
	// streamer opened). Raise the watermark first: rows for such epochs
	// must reject as stale — the sealer could never ingest them behind
	// the existing leaves, and the query path would never surface them.
	if last, ok := s.eng.LastEpoch(); ok && (!s.hasSealed || last > s.sealed) {
		s.sealed, s.hasSealed = last, true
	}
	sticky := s.err
	for _, b := range batch {
		if sticky != nil {
			b.err = sticky
			continue
		}
		skip := false
		for _, ep := range b.eps {
			if s.hasSealed && ep <= s.sealed {
				b.err = fmt.Errorf("%w: epoch %v (sealed through %v)", ErrStaleEpoch, ep, s.sealed)
				s.met.stale.Add(int64(len(b.recs)))
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		for i, rec := range b.recs {
			pos, err := s.log.Append(encodeStreamPayload(b.table, rec))
			if err != nil {
				b.err = err
				s.err, sticky = err, err
				break
			}
			if ep := b.eps[i]; ep > s.segMax[pos.Seg] {
				s.segMax[pos.Seg] = ep
			}
			maxPos, havePos = pos, true
		}
		if b.err != nil {
			continue
		}
		for _, rec := range b.recs {
			if _, err := s.mem.Insert(b.table, rec); err != nil {
				b.err = err // unreachable after recordEpoch validation
				break
			}
		}
		if b.err != nil {
			continue
		}
		for _, ep := range b.eps {
			if !s.hasSeen || ep > s.maxSeen {
				s.maxSeen, s.hasSeen = ep, true
			}
			touched[ep] = struct{}{}
		}
		b.applied = true
	}
	s.mu.Unlock()

	var commitErr error
	if havePos {
		commitErr = s.log.Commit(maxPos)
		if commitErr != nil {
			s.mu.Lock()
			if s.err == nil {
				s.err = commitErr
			}
			s.mu.Unlock()
		}
	}
	// Fresh rows change answers: drop cached results whose served period
	// intersects a touched epoch.
	if len(touched) > 0 {
		ranges := make([]telco.TimeRange, 0, len(touched))
		for ep := range touched {
			ranges = append(ranges, telco.TimeRange{From: ep.Start(), To: ep.End()})
		}
		s.eng.cache.Invalidate(ranges)
	}
	for _, b := range batch {
		err := b.err
		if err == nil && b.applied {
			err = commitErr
		}
		s.queued.Add(-b.bytes)
		b.done <- err
	}
	select {
	case s.sealKick <- struct{}{}:
	default:
	}
}

// sealer seals epochs as data time moves past them.
func (s *Streamer) sealer() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.sealKick:
		}
		s.sealReady()
	}
}

// sealReady seals every buffered epoch strictly older than the newest
// row epoch observed — once rows of a later epoch arrive, the earlier
// epoch's period is over in data time. The trailing epoch stays open
// (and queryable) until newer data or an explicit SealAll closes it.
func (s *Streamer) sealReady() {
	for {
		s.mu.Lock()
		maxSeen, hasSeen := s.maxSeen, s.hasSeen
		s.mu.Unlock()
		if !hasSeen {
			return
		}
		e, ok := s.mem.MinEpoch()
		if !ok || e >= maxSeen {
			return
		}
		if err := s.sealEpoch(e); err != nil {
			return
		}
	}
}

// sealEpoch turns one buffered epoch into compressed segments: advance
// the watermark (no new writes land in the epoch), snapshot the
// memtable rows in arrival order, run them through the batch Ingest
// path — producing segments bit-for-bit identical to a batch ingest of
// the same rows — and only then drop the memtable copy. Queries observe
// either the memtable copy (before the leaf lands, filtered by
// LastEpoch) or the sealed leaf (after), never both and never neither.
func (s *Streamer) sealEpoch(e telco.Epoch) error {
	s.sealMu.Lock()
	defer s.sealMu.Unlock()
	s.mu.Lock()
	if s.hasSealed && e <= s.sealed {
		s.mu.Unlock()
		return nil
	}
	s.sealed, s.hasSealed = e, true
	s.mu.Unlock()
	if snap := s.mem.SnapshotEpoch(e); snap != nil {
		if _, err := s.eng.Ingest(snap); err != nil {
			s.mu.Lock()
			if s.err == nil {
				s.err = err
			}
			s.mu.Unlock()
			return err
		}
		s.met.seals.Inc()
		s.met.sealedRows.Add(int64(snap.Rows()))
	}
	s.mem.DropEpoch(e)
	s.purgeWAL()
	return nil
}

// purgeWAL deletes the closed WAL segments whose every record now lives
// in sealed leaves: the contiguous prefix of closed segments whose
// maximum logged epoch is at or below the seal watermark.
func (s *Streamer) purgeWAL() {
	s.mu.Lock()
	if !s.hasSealed {
		s.mu.Unlock()
		return
	}
	var upTo uint64
	found := false
	for _, seg := range s.log.Segments() {
		if seg.Active {
			break
		}
		if mx, ok := s.segMax[seg.ID]; ok && mx > s.sealed {
			break
		}
		upTo, found = seg.ID, true
	}
	if found {
		for id := range s.segMax {
			if id <= upTo {
				delete(s.segMax, id)
			}
		}
	}
	s.mu.Unlock()
	if found {
		_ = s.log.Purge(upTo)
	}
}

// Flush blocks until every Append accepted before the call has applied
// (durable and visible). It does not seal anything.
func (s *Streamer) Flush(ctx context.Context) error {
	b := &appendBatch{applied: true, done: make(chan error, 1)}
	if err := s.enqueue(ctx, b); err != nil {
		return err
	}
	select {
	case err := <-b.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SealTo flushes the pipeline and seals every buffered epoch up to and
// including e, oldest first.
func (s *Streamer) SealTo(ctx context.Context, e telco.Epoch) error {
	if err := s.Flush(ctx); err != nil {
		return err
	}
	for {
		oldest, ok := s.mem.MinEpoch()
		if !ok || oldest > e {
			return nil
		}
		if err := s.sealEpoch(oldest); err != nil {
			return err
		}
	}
}

// SealAll flushes the pipeline and seals every buffered epoch — the
// clean-shutdown and test-parity entry point. Afterwards the memtable is
// empty and the WAL's sealed segments are purged.
func (s *Streamer) SealAll(ctx context.Context) error {
	if err := s.Flush(ctx); err != nil {
		return err
	}
	for {
		oldest, ok := s.mem.MinEpoch()
		if !ok {
			return nil
		}
		if err := s.sealEpoch(oldest); err != nil {
			return err
		}
	}
}

// Close stops the streamer: new appends are rejected, already-accepted
// batches finish applying, and the WAL flushes and closes. Buffered
// unsealed rows are NOT sealed — they stay in the WAL and replay on the
// next OpenStreamer; call SealAll first for a clean shutdown that leaves
// no log behind. The memtable stays attached to the engine, so unsealed
// rows remain explorable in-process.
func (s *Streamer) Close() error {
	s.sendMu.Lock()
	if s.closed {
		s.sendMu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.sendMu.Unlock()
	close(s.done)
	s.wg.Wait()
	return s.log.Close()
}
