package core

import (
	"reflect"
	"testing"
	"time"

	"spate/internal/decay"
	"spate/internal/geo"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// TestSegmentLegacyEquivalence is the format-refactor acceptance gate: the
// same generated world stored as chunked segments (small chunks, so leaves
// really split) and as legacy whole-blob leaves must answer a windowed and
// boxed exploration with bit-identical rows, summaries and cell series.
func TestSegmentLegacyEquivalence(t *testing.T) {
	seg := newRig(t, Options{ChunkSize: 1 << 10})
	leg := newRig(t, Options{ChunkSize: -1})
	seg.ingestEpochs(t, 6)
	leg.ingestEpochs(t, 6)

	queries := []Query{
		{Window: telco.NewTimeRange(seg.cfg.Start.Add(15*time.Minute), seg.cfg.Start.Add(75*time.Minute)),
			ExactRows: true},
		{Window: telco.NewTimeRange(seg.cfg.Start, seg.cfg.Start.Add(2*time.Hour)),
			Box: geo.NewRect(0, 0, 40, 38), ExactRows: true},
		{Window: telco.NewTimeRange(seg.cfg.Start.Add(45*time.Minute), seg.cfg.Start.Add(100*time.Minute)),
			Box: geo.NewRect(10, 10, 50, 50), ExactRows: true, Tables: []string{"CDR"}},
		{Window: telco.NewTimeRange(seg.cfg.Start, seg.cfg.Start.Add(3*time.Hour))},
	}
	for qi, q := range queries {
		rs, err := seg.e.Explore(q)
		if err != nil {
			t.Fatalf("query %d over segments: %v", qi, err)
		}
		rl, err := leg.e.Explore(q)
		if err != nil {
			t.Fatalf("query %d over legacy blobs: %v", qi, err)
		}
		if !reflect.DeepEqual(rs.Summary, rl.Summary) {
			t.Errorf("query %d: summaries differ (segment rows=%d legacy rows=%d)",
				qi, rs.Summary.Rows, rl.Summary.Rows)
		}
		if !reflect.DeepEqual(rs.Cells, rl.Cells) {
			t.Errorf("query %d: cell series differ", qi)
		}
		if len(rs.Rows) != len(rl.Rows) {
			t.Fatalf("query %d: %d row tables vs %d", qi, len(rs.Rows), len(rl.Rows))
		}
		for name, ts := range rs.Rows {
			tl := rl.Rows[name]
			if tl == nil {
				t.Fatalf("query %d: legacy path lost table %s", qi, name)
			}
			if ts.Text() != tl.Text() {
				t.Errorf("query %d: table %s rows differ (%d vs %d)", qi, name, ts.Len(), tl.Len())
			}
		}
	}

	// The SQL access path sees identical per-table row streams. (The order
	// of tables within one leaf follows map iteration, so the comparison
	// keys by table name; leaf order within each table is chronological.)
	w := telco.NewTimeRange(seg.cfg.Start, seg.cfg.Start.Add(2*time.Hour))
	collect := func(e *Engine) map[string]string {
		out := make(map[string]string)
		if err := e.ScanTables(w, nil, func(name string, tab *telco.Table) error {
			out[name] += tab.Text()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got, want := collect(seg.e), collect(leg.e); !reflect.DeepEqual(got, want) {
		t.Errorf("ScanTables row streams differ: %d tables vs %d", len(got), len(want))
	}
}

// TestLegacyLeavesRecoverAndQuery covers the downgrade/upgrade story: a
// store written entirely in the pre-segment whole-blob format must recover
// under a segment-writing engine and keep answering, and new epochs
// appended in segment form must coexist with the old leaves in one window.
func TestLegacyLeavesRecoverAndQuery(t *testing.T) {
	r := newRig(t, Options{ChunkSize: -1})
	r.ingestEpochs(t, 4)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))
	want, err := r.e.Explore(Query{Window: w, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}

	e2 := reopen(t, r, Options{ChunkSize: 1 << 10}) // segment-writing engine
	got, err := e2.Explore(Query{Window: w, ExactRows: true})
	if err != nil {
		t.Fatalf("explore over recovered legacy leaves: %v", err)
	}
	if !reflect.DeepEqual(got.Summary, want.Summary) {
		t.Errorf("recovered summary rows = %d, want %d", got.Summary.Rows, want.Summary.Rows)
	}
	for name, tw := range want.Rows {
		if tg := got.Rows[name]; tg == nil || tg.Text() != tw.Text() {
			t.Errorf("recovered rows for %s differ", name)
		}
	}

	// Append new epochs (segment format) and query across the boundary.
	e0 := telco.EpochOf(r.cfg.Start)
	for i := 4; i < 6; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(r.g.CDRTable(s.Epoch))
		s.Add(r.g.NMSTable(s.Epoch))
		if _, err := e2.Ingest(s); err != nil {
			t.Fatal(err)
		}
	}
	mixed := telco.NewTimeRange(r.cfg.Start.Add(90*time.Minute), r.cfg.Start.Add(150*time.Minute))
	res, err := e2.Explore(Query{Window: mixed, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows["CDR"].Len() == 0 || res.ScannedLeaves < 2 {
		t.Errorf("mixed-format window: %d rows over %d leaves", res.Rows["CDR"].Len(), res.ScannedLeaves)
	}
	for _, row := range res.Rows["CDR"].Rows {
		if ts := row.Get(telco.CDRSchema, telco.AttrTS).Time(); !mixed.Contains(ts) {
			t.Fatalf("row ts %v outside window", ts)
		}
	}
}

// TestChunkPruningSkipsChunks verifies that narrow windows and boxes skip
// chunk decompression through the zone maps, and that the chunk cache
// reports its traffic.
func TestChunkPruningSkipsChunks(t *testing.T) {
	reg := obs.NewRegistry()
	r := newRig(t, Options{ChunkSize: 1 << 10, Obs: reg})
	r.ingestEpochs(t, 4)

	// A 10-minute slice of a 30-minute epoch: most of the leaf's chunks
	// fall wholly outside the window and must not inflate.
	w := telco.NewTimeRange(r.cfg.Start.Add(10*time.Minute), r.cfg.Start.Add(20*time.Minute))
	res, err := r.e.Explore(Query{Window: w, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedChunks == 0 {
		t.Errorf("no chunks pruned for a 10-minute window (scanned %d)", res.ScannedChunks)
	}
	if res.ScannedChunks == 0 || res.Rows["CDR"].Len() == 0 {
		t.Errorf("scanned=%d rows=%d", res.ScannedChunks, res.Rows["CDR"].Len())
	}
	for _, row := range res.Rows["CDR"].Rows {
		if ts := row.Get(telco.CDRSchema, telco.AttrTS).Time(); !w.Contains(ts) {
			t.Fatalf("row ts %v outside window", ts)
		}
	}
	if v := reg.Counter("spate_explore_pruned_chunks_total", "").Value(); v == 0 {
		t.Error("pruned-chunks counter not reported")
	}
	if v := reg.Counter("spate_chunk_cache_misses_total", "").Value(); v == 0 {
		t.Error("chunk cache saw no traffic")
	}

	// Repeating the query with a cold result cache serves chunks from the
	// chunk cache: no new decompressed bytes.
	r.e.ClearCache()
	before := reg.Counter("spate_leaf_decompressed_bytes_total", "").Value()
	if _, err := r.e.Explore(Query{Window: w, ExactRows: true, Tables: []string{"CDR"}}); err != nil {
		t.Fatal(err)
	}
	if after := reg.Counter("spate_leaf_decompressed_bytes_total", "").Value(); after != before {
		t.Errorf("repeat query inflated %d new bytes; want chunk-cache hits", after-before)
	}
	if v := reg.Counter("spate_chunk_cache_hits_total", "").Value(); v == 0 {
		t.Error("no chunk cache hits on repeat query")
	}
}

// TestDecayKeepsDisjointCachedResults is the satellite regression: decay
// must only invalidate cached results whose served period intersects a
// decayed node, so a cached query over a disjoint window keeps hitting.
func TestDecayKeepsDisjointCachedResults(t *testing.T) {
	r := newRig(t, Options{Policy: decay.Policy{KeepRaw: 2 * time.Hour}})
	r.ingestEpochs(t, 6) // 3h of data; leaves ending <= 1h decayed already

	// Prime the cache: one window about to decay, one disjoint recent one.
	wOld := telco.NewTimeRange(r.cfg.Start.Add(time.Hour), r.cfg.Start.Add(90*time.Minute))
	wNew := telco.NewTimeRange(r.cfg.Start.Add(2*time.Hour), r.cfg.Start.Add(3*time.Hour))
	if _, err := r.e.Explore(Query{Window: wOld, ExactRows: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.e.Explore(Query{Window: wNew, ExactRows: true}); err != nil {
		t.Fatal(err)
	}

	// Advance time so exactly the [1h, 1h30m) leaf ages out.
	res, err := r.e.Decay(r.cfg.Start.Add(3*time.Hour + 30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesDecayed == 0 {
		t.Fatal("no leaves decayed; the regression cannot trigger")
	}

	hit, err := r.e.Explore(Query{Window: wNew, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Error("cached query over a window disjoint from decay was invalidated")
	}
	stale, err := r.e.Explore(Query{Window: wOld, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if stale.CacheHit {
		t.Error("cached query over the decayed window served stale data")
	}
	if stale.DecayedLeaves == 0 {
		t.Error("fresh answer does not see the decayed leaf")
	}
}
