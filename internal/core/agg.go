package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"spate/internal/compress"
	"spate/internal/scanspec"
	"spate/internal/segment"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// ScanSpec is the pushdown contract the SQL layer compiles WHERE clauses
// and simple aggregates into; see package scanspec for the semantics.
type ScanSpec = scanspec.Spec

// AggregatePartials evaluates a pushed-down aggregate spec over the
// window's stored rows and the unsealed memtable, returning per-group
// partial aggregates sorted by group key. It scans exactly the leaves the
// row path (ScanTables) would and applies the same row-level filters, so
// finalizing the partials reproduces row-materialized execution bit for
// bit — but on v3 leaves only the spec's referenced column streams
// decode, zone-decidable chunks are answered from metadata alone, and no
// row is ever materialized.
func (e *Engine) AggregatePartials(ctx context.Context, w telco.TimeRange, table string, spec *ScanSpec) ([]scanspec.Partial, error) {
	if !spec.IsAggregate() {
		return nil, fmt.Errorf("core: AggregatePartials needs an aggregate spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	schema := telco.SchemaByName(table)
	if schema == nil {
		return nil, fmt.Errorf("core: unknown schema %q", table)
	}
	e.mu.RLock()
	leaves := e.rowLeaves(w)
	memt, memAfter := e.memAfterLocked()
	var memTabs []memTab
	if memt != nil {
		memTabs = collectMemTabs(memt, w, []string{table}, memAfter)
	}
	e.mu.RUnlock()
	prof := ProfileFromContext(ctx)
	c := e.codec()
	workers := e.scanWorkers()

	var parts []scanspec.Partial
	if workers <= 1 {
		// Sequential path: one accumulator folds every leaf in order.
		acc, err := newAggAcc(spec, schema)
		if err != nil {
			return nil, err
		}
		for _, l := range leaves {
			if l.decayed || l.refs == nil {
				if prof != nil && l.decayed {
					prof.LeavesDecayed++
				}
				continue
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if prof != nil {
				prof.LeavesScanned++
			}
			ref, ok := l.refs[table]
			if !ok {
				continue
			}
			if err := e.aggLeafTable(table, ref, c, w, acc, prof); err != nil {
				return nil, err
			}
		}
		for _, mt := range memTabs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if prof != nil {
				prof.MemRows += mt.tab.Len()
			}
			acc.foldTable(mt.tab, w)
		}
		parts = acc.partials()
	} else {
		// Parallel path: partial-aggregate merge is associative and
		// commutative over the pushdown-eligible aggregates (COUNT, integer
		// SUM, MIN, MAX), so each worker folds its units into a private
		// accumulator with no locking at all and the per-worker partial
		// sets Merge at the end — the lock-free fast path. The worker-order
		// merge and the final sort-by-key make the output independent of
		// scheduling.
		accs := make([]*aggAcc, workers)
		var refs []string
		for _, l := range leaves {
			if l.decayed || l.refs == nil {
				if prof != nil && l.decayed {
					prof.LeavesDecayed++
				}
				continue
			}
			if prof != nil {
				prof.LeavesScanned++
			}
			if ref, ok := l.refs[table]; ok {
				refs = append(refs, ref)
			}
		}
		units := make([]scanUnit, len(refs))
		for i, ref := range refs {
			ref := ref
			units[i] = func(sw *scanWorker) (any, error) {
				acc := accs[sw.id]
				if acc == nil {
					var err error
					acc, err = newAggAcc(spec, schema)
					if err != nil {
						return nil, err
					}
					accs[sw.id] = acc
				}
				return nil, e.aggLeafTable(table, ref, c, w, acc, sw.prof)
			}
		}
		err := e.runUnits(ctx, workers, units, prof, func(int, any) error { return nil })
		if err != nil {
			return nil, err
		}
		if accs[0] == nil {
			accs[0], err = newAggAcc(spec, schema)
			if err != nil {
				return nil, err
			}
		}
		for _, mt := range memTabs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if prof != nil {
				prof.MemRows += mt.tab.Len()
			}
			accs[0].foldTable(mt.tab, w)
		}
		for _, acc := range accs {
			if acc != nil {
				parts = scanspec.Merge(parts, acc.partials())
			}
		}
	}
	if prof != nil {
		prof.AggPartials += len(parts)
	}
	return parts, nil
}

// aggAcc is the schema-resolved fold state of one pushed-down aggregate:
// which schema positions the timestamp, predicates, aggregate arguments
// and group key live at, which v3 column streams a per-row fold must
// decode, and the per-group partials accumulated so far.
type aggAcc struct {
	spec   *ScanSpec
	schema *telco.Schema

	tsIdx   int
	grpIdx  int   // -1 when ungrouped
	predIdx []int // schema index per predicate
	aggIdx  []int // schema index per aggregate argument, -1 for COUNT(*)

	want   []int // column streams a per-row fold decodes, without the ts
	wantTS []int // same, with the ts column for window filtering

	groups map[string]*scanspec.Partial
}

// newAggAcc resolves the spec against the table schema. Unlike the row
// path — where the spec is a prefilter and the SQL engine re-evaluates —
// the aggregate path is authoritative, so an unresolvable column is an
// error rather than a skipped predicate.
func newAggAcc(spec *ScanSpec, schema *telco.Schema) (*aggAcc, error) {
	a := &aggAcc{
		spec:   spec,
		schema: schema,
		tsIdx:  schema.FieldIndex(telco.AttrTS),
		grpIdx: -1,
		groups: make(map[string]*scanspec.Partial),
	}
	need := make(map[int]bool)
	resolve := func(col string) (int, error) {
		i := schema.FieldIndex(col)
		if i < 0 {
			return -1, fmt.Errorf("core: aggregate pushdown: no column %q in %s", col, schema.Name)
		}
		need[i] = true
		return i, nil
	}
	a.predIdx = make([]int, len(spec.Preds))
	for i, p := range spec.Preds {
		ci, err := resolve(p.Col)
		if err != nil {
			return nil, err
		}
		a.predIdx[i] = ci
	}
	a.aggIdx = make([]int, len(spec.Aggs))
	for i, g := range spec.Aggs {
		if g.Col == "" {
			a.aggIdx[i] = -1
			continue
		}
		ci, err := resolve(g.Col)
		if err != nil {
			return nil, err
		}
		if g.Fn == "SUM" && schema.Fields[ci].Kind != telco.KindInt {
			// Integer sums are exact under any association order;
			// floating-point sums are not, so they never push down.
			return nil, fmt.Errorf("core: aggregate pushdown: SUM over non-integer column %q", g.Col)
		}
		a.aggIdx[i] = ci
	}
	if spec.GroupBy != "" {
		ci, err := resolve(spec.GroupBy)
		if err != nil {
			return nil, err
		}
		a.grpIdx = ci
	}
	a.want = make([]int, 0, len(need))
	for i := range need {
		a.want = append(a.want, i)
	}
	sort.Ints(a.want)
	a.wantTS = a.want
	if a.tsIdx >= 0 && !need[a.tsIdx] {
		a.wantTS = append(append([]int(nil), a.want...), a.tsIdx)
		sort.Ints(a.wantTS)
	}
	return a, nil
}

// aggLeafTable folds one stored leaf table into the accumulator. v3
// chunks prune through window and per-column zone maps, answer from
// metadata when every row provably passes and the aggregates are
// zone-derivable, and otherwise decode only the needed column streams;
// v1/v2 and legacy blob leaves decode rows in full and fold row-wise.
func (e *Engine) aggLeafTable(name, ref string, c compress.Codec, w telco.TimeRange, acc *aggAcc, prof *Profile) error {
	scanned, pruned := 0, 0
	defer func() {
		e.met.chunksScanned.Add(int64(scanned))
		e.met.chunksPruned.Add(int64(pruned))
		if prof != nil {
			prof.ChunksScanned += scanned
		}
	}()
	f, err := e.fs.Open(ref)
	if err != nil {
		return fmt.Errorf("core: open %s: %w", ref, err)
	}
	if !segment.IsSegment(f, f.Size()) {
		text, err := e.blobText(ref, c, prof)
		if err != nil {
			return err
		}
		tab, err := snapshot.DecodeTable(name, text)
		if err != nil {
			return fmt.Errorf("core: decode %s: %w", ref, err)
		}
		scanned = 1
		acc.foldTable(tab, w)
		return nil
	}
	r, err := segment.Open(f, f.Size(), c)
	if err != nil {
		return fmt.Errorf("core: open segment %s: %w", ref, err)
	}
	pr := leafPrune{window: &w}
	for i, ch := range r.Chunks() {
		if pr.skip(ch) != pruneNone || acc.exactWindowSkip(ch) {
			pruned++
			if prof != nil {
				prof.ChunksPrunedZone++
			}
			continue
		}
		if !r.Columnar() {
			text, err := e.chunkText(r, ref, i, ch, nil, prof)
			if err != nil {
				return err
			}
			tab, err := snapshot.DecodeTable(name, text)
			if err != nil {
				return fmt.Errorf("core: decode %s: %w", ref, err)
			}
			scanned++
			acc.foldTable(tab, w)
			continue
		}
		if acc.zonePrune(ch) {
			pruned++
			if prof != nil {
				prof.ChunksPrunedPred++
			}
			continue
		}
		allIn := acc.chunkAllInWindow(ch, w)
		if allIn && acc.chunkAllMatch(ch) && acc.metaOK(ch) {
			acc.addMeta(ch)
			scanned++
			if prof != nil {
				prof.ChunksAggMeta++
				prof.ColumnsSkipped += len(ch.Cols)
			}
			continue
		}
		want := acc.want
		if !allIn {
			want = acc.wantTS
		}
		t0 := time.Now()
		cols, inflated, err := r.ChunkColumns(i, want)
		if err != nil {
			return fmt.Errorf("core: read %s: %w", ref, err)
		}
		e.met.leafBytes.Add(inflated)
		if prof != nil {
			prof.DFSReads++
			prof.InflatedBytes += inflated
			prof.ReadNS += time.Since(t0).Nanoseconds()
			prof.ColumnsDecoded += len(want)
			prof.ColumnsSkipped += len(ch.Cols) - len(want)
		}
		scanned++
		if err := acc.foldColumns(cols, want, int(ch.Rows), !allIn, w); err != nil {
			return fmt.Errorf("core: decode %s: %w", ref, err)
		}
	}
	return nil
}

// exactWindowSkip reports whether the spec's exact row window (and its
// null-timestamp rule) proves no row of the chunk passes the row-level
// time filter.
func (a *aggAcc) exactWindowSkip(ch segment.Chunk) bool {
	if ch.HasTimeGaps() {
		if !a.spec.RequireTS {
			return false // null-ts rows pass unconditionally
		}
		if ch.MinTS > ch.MaxTS {
			return true // only null-ts rows, all dropped
		}
	} else if ch.Rows == 0 {
		return false
	}
	return !a.spec.Window.OverlapsRange(ch.MinTS, ch.MaxTS)
}

// chunkAllInWindow reports whether every row of the chunk provably passes
// the row-level time filter (scan window, exact window and the
// null-timestamp rule), so per-row timestamp checks can be skipped.
func (a *aggAcc) chunkAllInWindow(ch segment.Chunk, w telco.TimeRange) bool {
	if ch.HasTimeGaps() {
		if a.spec.RequireTS {
			return false
		}
		if ch.MinTS > ch.MaxTS {
			return true // no timestamped rows at all
		}
	} else if ch.Rows == 0 {
		return true
	}
	if !w.Contains(time.Unix(0, ch.MinTS)) || !w.Contains(time.Unix(0, ch.MaxTS)) {
		return false
	}
	return a.spec.Window.ContainsRange(ch.MinTS, ch.MaxTS)
}

// zonePrune reports whether a per-column integer zone map proves one of
// the predicates unsatisfiable for every row of the chunk.
func (a *aggAcc) zonePrune(ch segment.Chunk) bool {
	if len(ch.Cols) == 0 {
		return false
	}
	for pi, p := range a.spec.Preds {
		ci := a.predIdx[pi]
		if ci >= len(ch.Cols) || a.schema.Fields[ci].Kind != telco.KindInt {
			continue
		}
		if cm := ch.Cols[ci]; cm.HasZone && p.ZonePrune(cm.Min, cm.Max) {
			return true
		}
	}
	return false
}

// chunkAllMatch reports whether the zone maps prove every row satisfies
// every predicate (vacuously true without predicates).
func (a *aggAcc) chunkAllMatch(ch segment.Chunk) bool {
	for pi, p := range a.spec.Preds {
		ci := a.predIdx[pi]
		if ci >= len(ch.Cols) || a.schema.Fields[ci].Kind != telco.KindInt {
			return false
		}
		cm := ch.Cols[ci]
		if !cm.HasZone || !p.ZoneAllMatch(cm.Min, cm.Max) {
			return false
		}
	}
	return true
}

// metaOK reports whether the chunk's metadata alone answers every
// aggregate (see Spec.CanUseMeta).
func (a *aggAcc) metaOK(ch segment.Chunk) bool {
	return a.spec.CanUseMeta(func(col string) bool {
		ci := a.schema.FieldIndex(col)
		if ci < 0 || ci >= len(ch.Cols) || !ch.Cols[ci].HasZone {
			return false
		}
		switch a.schema.Fields[ci].Kind {
		case telco.KindInt, telco.KindFloat, telco.KindTime:
			// Integer zone bounds lift exactly into these kinds.
			return true
		}
		return false
	})
}

// addMeta folds a whole chunk from its metadata.
func (a *aggAcc) addMeta(ch segment.Chunk) {
	n := len(a.spec.Aggs)
	mins, maxs := make([]int64, n), make([]int64, n)
	kinds := make([]telco.Kind, n)
	for i, ci := range a.aggIdx {
		if ci < 0 {
			continue
		}
		mins[i], maxs[i] = ch.Cols[ci].Min, ch.Cols[ci].Max
		kinds[i] = a.schema.Fields[ci].Kind
	}
	a.spec.AddMeta(a.group(telco.Null), ch.Rows, mins, maxs, kinds)
}

// foldColumns folds decoded v3 column streams row by row. want maps the
// cols slices back to schema positions; checkTS applies the row-level
// time filter (skipped when chunkAllInWindow proved it).
func (a *aggAcc) foldColumns(cols [][]string, want []int, rows int, checkTS bool, w telco.TimeRange) error {
	pos := make([]int, a.schema.NumFields())
	for i := range pos {
		pos[i] = -1
	}
	for wi, ci := range want {
		pos[ci] = wi
	}
	field := func(ci, j int) string {
		if ci < 0 || pos[ci] < 0 {
			return ""
		}
		return cols[pos[ci]][j]
	}
	parse := func(ci, j int) (telco.Value, error) {
		return telco.ParseField(a.schema.Fields[ci].Kind, field(ci, j))
	}
	vals := make([]telco.Value, len(a.spec.Aggs))
	for j := 0; j < rows; j++ {
		if checkTS {
			if fTS := field(a.tsIdx, j); fTS == "" {
				if a.spec.RequireTS {
					continue
				}
			} else {
				v, err := telco.ParseField(telco.KindTime, fTS)
				if err != nil {
					return err
				}
				t := v.Time()
				if !w.Contains(t) || !a.spec.Window.Contains(t.UnixNano()) {
					continue
				}
			}
		}
		ok := true
		for pi, p := range a.spec.Preds {
			v, err := parse(a.predIdx[pi], j)
			if err != nil {
				return err
			}
			if !p.Eval(v) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		g := telco.Null
		if a.grpIdx >= 0 {
			v, err := parse(a.grpIdx, j)
			if err != nil {
				return err
			}
			g = v
		}
		for i, ci := range a.aggIdx {
			if ci < 0 {
				vals[i] = telco.Null
				continue
			}
			v, err := parse(ci, j)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		a.spec.AddRow(a.group(g), vals)
	}
	return nil
}

// foldTable folds fully materialized rows (v1/v2 chunks, legacy blobs and
// memtable tables) with the same row-level filters as foldColumns.
func (a *aggAcc) foldTable(tab *telco.Table, w telco.TimeRange) {
	vals := make([]telco.Value, len(a.spec.Aggs))
	for _, r := range tab.Rows {
		if a.tsIdx >= 0 && !r[a.tsIdx].IsNull() {
			t := r[a.tsIdx].Time()
			if !w.Contains(t) || !a.spec.Window.Contains(t.UnixNano()) {
				continue
			}
		} else if a.spec.RequireTS {
			continue
		}
		ok := true
		for pi, p := range a.spec.Preds {
			if !p.Eval(r[a.predIdx[pi]]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		g := telco.Null
		if a.grpIdx >= 0 {
			g = r[a.grpIdx]
		}
		for i, ci := range a.aggIdx {
			if ci < 0 {
				vals[i] = telco.Null
				continue
			}
			vals[i] = r[ci]
		}
		a.spec.AddRow(a.group(g), vals)
	}
}

// group returns (creating on first use) the partial for one group value.
func (a *aggAcc) group(g telco.Value) *scanspec.Partial {
	key := g.Format()
	p := a.groups[key]
	if p == nil {
		p = a.spec.NewPartial(g)
		a.groups[key] = p
	}
	return p
}

// partials returns the accumulated groups sorted by group key.
func (a *aggAcc) partials() []scanspec.Partial {
	out := make([]scanspec.Partial, 0, len(a.groups))
	for _, p := range a.groups {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
