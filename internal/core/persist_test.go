package core

import (
	"testing"
	"time"

	"spate/internal/decay"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/index"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// reopen builds a second engine over the same cluster (recovery path).
func reopen(t *testing.T, r *testRig, opts Options) *Engine {
	t.Helper()
	e, err := Open(r.fs, r.g.CellTable(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRecoveryRebuildsIndex(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, telco.EpochsPerDay+3) // one sealed day + open day

	e2 := reopen(t, r, Options{})
	if got, want := e2.Tree().Len(), r.e.Tree().Len(); got != want {
		t.Fatalf("recovered %d leaves, want %d", got, want)
	}
	// The sealed day's summary must have been reloaded from the DFS.
	days := e2.Tree().NodesAtLevel(index.LevelDay)
	if len(days) != 2 {
		t.Fatalf("recovered %d days", len(days))
	}
	if days[0].Summary == nil {
		t.Fatal("sealed day summary not recovered")
	}
	orig := r.e.Tree().NodesAtLevel(index.LevelDay)[0].Summary
	if days[0].Summary.Rows != orig.Rows {
		t.Errorf("recovered day rows = %d, want %d", days[0].Summary.Rows, orig.Rows)
	}
	// The open day has no summary (it may still grow).
	if days[1].Summary != nil {
		t.Error("open day carries a (possibly stale) summary after recovery")
	}
	// Queries over the recovered store answer identically.
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(4*time.Hour))
	res1, err := r.e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := e2.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Summary.Rows != res2.Summary.Rows {
		t.Errorf("recovered query rows = %d, want %d", res2.Summary.Rows, res1.Summary.Rows)
	}
}

func TestRecoveryContinuesIngestAcrossDaySeal(t *testing.T) {
	r := newRig(t, Options{})
	reports := r.ingestEpochs(t, telco.EpochsPerDay-2) // open day, 2 short

	e2 := reopen(t, r, Options{})
	// Continue the same day and roll it over on the fresh engine.
	e0 := telco.EpochOf(r.cfg.Start)
	var rows int64
	for _, rep := range reports {
		rows += int64(rep.Rows)
	}
	for i := telco.EpochsPerDay - 2; i < telco.EpochsPerDay+1; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(r.g.CDRTable(s.Epoch))
		s.Add(r.g.NMSTable(s.Epoch))
		rep, err := e2.Ingest(s)
		if err != nil {
			t.Fatal(err)
		}
		if i < telco.EpochsPerDay {
			rows += int64(rep.Rows)
		}
	}
	day := e2.Tree().NodesAtLevel(index.LevelDay)[0]
	if day.Summary == nil {
		t.Fatal("day not sealed after rollover on recovered engine")
	}
	// The re-seal must cover pre-recovery epochs (rebuilt from data).
	if day.Summary.Rows != rows {
		t.Errorf("resealed day rows = %d, want %d (pre-recovery rows lost?)", day.Summary.Rows, rows)
	}
}

func TestRecoveryMarksDecayedLeaves(t *testing.T) {
	r := newRig(t, Options{Policy: decay.Policy{KeepRaw: 2 * time.Hour}})
	r.ingestEpochs(t, 8) // 4h: the first leaves decay
	beforeStats := r.e.Tree().Stats()
	if beforeStats.DecayedLeaves == 0 {
		t.Fatal("no decay happened")
	}
	e2 := reopen(t, r, Options{})
	st := e2.Tree().Stats()
	if st.DecayedLeaves != beforeStats.DecayedLeaves {
		t.Errorf("recovered %d decayed leaves, want %d", st.DecayedLeaves, beforeStats.DecayedLeaves)
	}
	if st.Leaves != beforeStats.Leaves {
		t.Errorf("recovered %d leaves, want %d", st.Leaves, beforeStats.Leaves)
	}
}

func TestRecoveryAfterSubtreePrune(t *testing.T) {
	r := newRig(t, Options{Policy: decay.Policy{
		KeepRaw: 2 * time.Hour, KeepEpochNodes: 12 * time.Hour,
	}})
	r.ingestEpochs(t, 2*telco.EpochsPerDay) // day 1 fully collapses
	before := r.e.Tree().Stats()
	e2 := reopen(t, r, Options{})
	after := e2.Tree().Stats()
	if after.Leaves != before.Leaves {
		t.Errorf("recovered %d leaves, want %d (pruned leaves resurrected?)", after.Leaves, before.Leaves)
	}
	// Day 1 aggregates still answer from the persisted day summary.
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(6*time.Hour))
	res, err := e2.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows == 0 {
		t.Error("pruned day lost its aggregates after recovery")
	}
}

func TestFinishIngestMakesStoreReadOnly(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 3)
	r.e.FinishIngest()
	s := snapshot.New(telco.EpochOf(r.cfg.Start) + 10)
	s.Add(r.g.CDRTable(s.Epoch))
	if _, err := r.e.Ingest(s); err == nil {
		t.Fatal("ingest after FinishIngest accepted")
	}
	// A reopened engine accepts new snapshots again.
	e2 := reopen(t, r, Options{})
	if _, err := e2.Ingest(s); err != nil {
		t.Fatalf("recovered engine rejected ingest: %v", err)
	}
}

func TestFullProcessRestartRecoversStore(t *testing.T) {
	// End-to-end durability: a brand-new DFS cluster object over the same
	// directory (fsimage recovery) plus a brand-new engine (index
	// recovery) serves the same queries as the original process would.
	dir := t.TempDir()
	fs1, err := dfs.NewCluster(dir, dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := gen.DefaultConfig(0.002)
	cfg.Antennas = 12
	cfg.Users = 80
	cfg.CDRPerEpoch = 40
	cfg.NMSReportsPerCell = 0.5
	g := gen.New(cfg)
	e1, err := Open(fs1, g.CellTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0 := telco.EpochOf(cfg.Start)
	for i := 0; i < 5; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(g.CDRTable(s.Epoch))
		s.Add(g.NMSTable(s.Epoch))
		if _, err := e1.Ingest(s); err != nil {
			t.Fatal(err)
		}
	}
	w := telco.NewTimeRange(cfg.Start, cfg.Start.Add(2*time.Hour))
	want, err := e1.Explore(Query{Window: w, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}

	// "Restart the process": fresh cluster + fresh engine over dir.
	fs2, err := dfs.NewCluster(dir, dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Open(fs2, g.CellTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e2.Tree().Len() != 5 {
		t.Fatalf("recovered %d leaves", e2.Tree().Len())
	}
	got, err := e2.Explore(Query{Window: w, ExactRows: true, Tables: []string{"CDR"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary.Rows != want.Summary.Rows {
		t.Errorf("rows = %d, want %d", got.Summary.Rows, want.Summary.Rows)
	}
	if got.Rows["CDR"].Len() != want.Rows["CDR"].Len() {
		t.Errorf("exact rows = %d, want %d", got.Rows["CDR"].Len(), want.Rows["CDR"].Len())
	}
	// Ingestion continues seamlessly after the restart.
	s := snapshot.New(e0 + 5)
	s.Add(g.CDRTable(s.Epoch))
	s.Add(g.NMSTable(s.Epoch))
	if _, err := e2.Ingest(s); err != nil {
		t.Fatalf("post-restart ingest: %v", err)
	}
}

func TestFreshClusterHasNothingToRecover(t *testing.T) {
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{})
	if err != nil {
		t.Fatal(err)
	}
	g := gen.New(gen.DefaultConfig(0.001))
	e, err := Open(fs, g.CellTable(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Tree().Len() != 0 {
		t.Errorf("fresh engine has %d leaves", e.Tree().Len())
	}
}
