package core

import (
	"context"
	"testing"
	"time"

	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/scanspec"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// BenchmarkColumnarScan measures what the v3 column-major layout buys a
// selective query. All variants run with the chunk cache disabled so
// inflatedB/op isolates the format: v2-selective must inflate whole
// row-major chunks to answer a two-column predicate scan, v3-selective
// decodes only the referenced column streams, v3-fullrow pays the full
// decode as the no-win baseline, and v3-aggregate answers the same
// predicate as pushed-down partials (zone-decidable chunks never decode).
// benchjson lands the numbers in BENCH_scan.json.
func BenchmarkColumnarScan(b *testing.B) {
	build := func(b *testing.B, version int) (*Engine, *obs.Registry, gen.Config) {
		reg := obs.NewRegistry()
		cfg := gen.DefaultConfig(0.004)
		cfg.Antennas = 30
		cfg.Users = 300
		cfg.CDRPerEpoch = 600
		g := gen.New(cfg)
		fs, err := dfs.NewCluster(b.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
		if err != nil {
			b.Fatal(err)
		}
		e, err := Open(fs, g.CellTable(), Options{
			SegmentVersion: version, ChunkCacheBytes: -1, Obs: reg,
		})
		if err != nil {
			b.Fatal(err)
		}
		e0 := telco.EpochOf(cfg.Start)
		for i := 0; i < 4; i++ {
			s := snapshot.New(e0 + telco.Epoch(i))
			s.Add(g.CDRTable(s.Epoch))
			if _, err := e.Ingest(s); err != nil {
				b.Fatal(err)
			}
		}
		e.FinishIngest()
		return e, reg, cfg
	}
	window := func(cfg gen.Config) telco.TimeRange {
		return telco.NewTimeRange(cfg.Start, cfg.Start.Add(2*time.Hour))
	}
	selSpec := func() *scanspec.Spec {
		return &scanspec.Spec{
			Columns: []string{"caller", "duration"},
			Preds: []scanspec.Pred{{
				Col: "duration", Op: ">=", Kind: "int", Val: "120",
			}},
		}
	}
	scan := func(b *testing.B, version int) {
		e, reg, cfg := build(b, version)
		w := window(cfg)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows := 0
			err := e.ScanTablesSpec(ctx, w, []string{"CDR"}, selSpec(), func(_ string, t *telco.Table) error {
				rows += t.Len()
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if rows == 0 {
				b.Fatal("selective scan matched no rows")
			}
		}
		b.StopTimer()
		reportChunkMetrics(b, reg)
	}
	b.Run("v2-selective", func(b *testing.B) { scan(b, 2) })
	b.Run("v3-selective", func(b *testing.B) { scan(b, 3) })
	b.Run("v3-fullrow", func(b *testing.B) {
		e, reg, cfg := build(b, 3)
		w := window(cfg)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows := 0
			err := e.ScanTablesSpec(ctx, w, []string{"CDR"}, nil, func(_ string, t *telco.Table) error {
				rows += t.Len()
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if rows == 0 {
				b.Fatal("full scan matched no rows")
			}
		}
		b.StopTimer()
		reportChunkMetrics(b, reg)
	})
	b.Run("v3-aggregate", func(b *testing.B) {
		e, reg, cfg := build(b, 3)
		w := window(cfg)
		ctx := context.Background()
		spec := &scanspec.Spec{
			Preds: []scanspec.Pred{{
				Col: "duration", Op: ">=", Kind: "int", Val: "120",
			}},
			Aggs:      []scanspec.Agg{{Fn: "COUNT"}, {Fn: "SUM", Col: "duration"}},
			RequireTS: true,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			parts, err := e.AggregatePartials(ctx, w, "CDR", spec)
			if err != nil {
				b.Fatal(err)
			}
			if len(parts) == 0 {
				b.Fatal("aggregate matched no rows")
			}
		}
		b.StopTimer()
		reportChunkMetrics(b, reg)
	})
}
