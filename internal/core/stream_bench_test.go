package core

import (
	"context"
	"testing"
	"time"

	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/telco"
	"spate/internal/wal"
)

// benchStreamer opens an empty engine with a streamer in the given sync
// mode and a backlog bound high enough that the benchmark never blocks on
// the sealer.
func benchStreamer(b *testing.B, sync wal.SyncPolicy) (*Streamer, *Engine, gen.Config) {
	b.Helper()
	cfg := gen.DefaultConfig(0.004)
	cfg.Antennas = 30
	cfg.Users = 300
	cfg.CDRPerEpoch = 600
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(b.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
	if err != nil {
		b.Fatal(err)
	}
	e, err := Open(fs, g.CellTable(), Options{Obs: obs.NewNoop()})
	if err != nil {
		b.Fatal(err)
	}
	st, err := e.OpenStreamer(StreamerOptions{
		WALDir:     b.TempDir(),
		Sync:       sync,
		MaxPending: 1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st, e, cfg
}

// BenchmarkStreamAppend measures the streaming write path — WAL append,
// group commit, memtable insert — in records per second. The group-commit
// variants show what durability costs: SyncNone skips fsync entirely,
// SyncGroup amortizes one fsync over every batch in a writer cycle.
func BenchmarkStreamAppend(b *testing.B) {
	for _, mode := range []struct {
		name string
		sync wal.SyncPolicy
	}{
		{"nosync", wal.SyncNone},
		{"groupcommit", wal.SyncGroup},
	} {
		b.Run(mode.name, func(b *testing.B) {
			st, _, cfg := benchStreamer(b, mode.sync)
			g := gen.New(cfg)
			rows := g.CDRTable(telco.EpochOf(cfg.Start)).Rows
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := st.Append(ctx, "CDR", rows); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			total := float64(b.N * len(rows))
			b.ReportMetric(total/b.Elapsed().Seconds(), "rows/sec")
			b.ReportMetric(float64(len(rows)), "rows/batch")
		})
	}
}

// BenchmarkStreamTimeToQueryable measures the full freshness path: one
// batch append followed by an exploration that must already see the new
// rows. ttq-ms is the wall-clock from handing rows to Append until a
// query answers with them included — the paper-facing "how stale is the
// dashboard" number for the streaming mode.
func BenchmarkStreamTimeToQueryable(b *testing.B) {
	st, e, cfg := benchStreamer(b, wal.SyncGroup)
	g := gen.New(cfg)
	rows := g.NMSTable(telco.EpochOf(cfg.Start)).Rows
	w := telco.NewTimeRange(cfg.Start, cfg.Start.Add(30*time.Minute))
	ctx := context.Background()
	var seen int64
	var ttq time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if err := st.Append(ctx, "NMS", rows); err != nil {
			b.Fatal(err)
		}
		res, err := e.Explore(Query{Window: w})
		if err != nil {
			b.Fatal(err)
		}
		if res.Summary.Rows <= seen {
			b.Fatalf("appended rows not visible: %d <= %d", res.Summary.Rows, seen)
		}
		seen = res.Summary.Rows
		ttq += time.Since(start)
	}
	b.StopTimer()
	b.ReportMetric(float64(ttq.Milliseconds())/float64(b.N), "ttq-ms")
}
