package core

import (
	"time"

	"spate/internal/obs"
)

// Ingest and exploration stage names, shared by the metrics registry, the
// span tracer and the per-report Stages breakdowns.
const (
	StageEncode    = "encode"       // table → wire text
	StageTrain     = "train"        // dictionary sampling/training
	StageCompress  = "compress"     // codec Compress calls
	StageDFSWrite  = "dfs_write"    // replicated block writes
	StageHighlight = "highlight"    // leaf summary build
	StageIndex     = "index_insert" // temporal-tree append
	StageSeal      = "seal"         // completed-period summary rollup
	StagePersist   = "persist_meta" // leaf metadata journal
	StageDecay     = "decay"        // fungus plan + apply

	StagePlan       = "plan"        // covering node + leaf lookup
	StageCollect    = "collect"     // summary part gathering
	StageLeafDecode = "leaf_decode" // snapshot decompress/decode for summaries
	StageMerge      = "merge"       // summary merge
	StageRestrict   = "restrict"    // spatial restriction to the box
	StageRows       = "row_fetch"   // exact-row decompression

	StageCacheLookup = "cache_lookup" // chunk-cache probes
	StageDFSRead     = "dfs_read"     // ranged DFS chunk reads + inflate
	StageDecode      = "decode"       // wire-text table parsing
)

var ingestStageNames = []string{
	StageEncode, StageTrain, StageCompress, StageDFSWrite, StageHighlight,
	StageIndex, StageSeal, StagePersist, StageDecay,
}

var exploreStageNames = []string{
	StagePlan, StageCollect, StageLeafDecode, StageMerge, StageRestrict, StageRows,
}

// engineMetrics pre-resolves every series the engine's hot paths touch, so
// per-request cost is a handful of atomic adds.
type engineMetrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	ingestStage   map[string]*obs.Histogram
	ingestSec     *obs.Histogram
	ingestSnaps   *obs.Counter
	ingestRows    *obs.Counter
	ingestRawB    *obs.Counter
	ingestCompB   *obs.Counter
	ingestErrors  *obs.Counter
	exploreStage  map[string]*obs.Histogram
	exploreSec    *obs.Histogram
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	scannedLeaves *obs.Counter
	prunedLeaves  *obs.Counter
	chunksScanned *obs.Counter
	chunksPruned  *obs.Counter
	leafBytes     *obs.Counter
	parallelScans *obs.Counter
	parallelUnits *obs.Counter
	sfShared      *obs.Counter
	resShared     *obs.Counter
	decayRuns     *obs.Counter
	decayLeaves   *obs.Counter
	decayPruned   *obs.Counter
	decayBytes    *obs.Counter
}

func newEngineMetrics(r *obs.Registry, t *obs.Tracer) *engineMetrics {
	m := &engineMetrics{
		reg:    r,
		tracer: t,

		ingestStage:   make(map[string]*obs.Histogram, len(ingestStageNames)),
		ingestSec:     r.Histogram("spate_ingest_seconds", "End-to-end snapshot ingestion latency.", nil),
		ingestSnaps:   r.Counter("spate_ingest_snapshots_total", "Snapshots ingested."),
		ingestRows:    r.Counter("spate_ingest_rows_total", "Rows ingested across all tables."),
		ingestRawB:    r.Counter("spate_ingest_raw_bytes_total", "Uncompressed snapshot bytes ingested."),
		ingestCompB:   r.Counter("spate_ingest_stored_bytes_total", "Compressed snapshot bytes written to the DFS (logical)."),
		ingestErrors:  r.Counter("spate_ingest_errors_total", "Failed ingestions."),
		exploreStage:  make(map[string]*obs.Histogram, len(exploreStageNames)),
		exploreSec:    r.Histogram("spate_explore_seconds", "End-to-end exploration latency (uncached).", nil),
		cacheHits:     r.Counter("spate_explore_cache_hits_total", "Explorations served from the result cache."),
		cacheMisses:   r.Counter("spate_explore_cache_misses_total", "Explorations that missed the result cache."),
		scannedLeaves: r.Counter("spate_explore_scanned_leaves_total", "Snapshots decompressed during exploration."),
		prunedLeaves:  r.Counter("spate_explore_pruned_leaves_total", "Snapshots skipped by leaf spatial pruning."),
		chunksScanned: r.Counter("spate_explore_scanned_chunks_total", "Leaf chunks decompressed during scans."),
		chunksPruned:  r.Counter("spate_explore_pruned_chunks_total", "Leaf chunks skipped through segment zone maps."),
		leafBytes:     r.Counter("spate_leaf_decompressed_bytes_total", "Leaf bytes inflated from the DFS (chunk-cache misses only)."),
		parallelScans: r.Counter("spate_scan_parallel_fanouts_total", "Parallel scan fan-outs dispatched through the scheduler."),
		parallelUnits: r.Counter("spate_scan_parallel_units_total", "Leaf-by-table scan units executed by the parallel scheduler."),
		sfShared:      r.Counter("spate_scan_singleflight_shared_total", "Chunk decodes shared from a concurrent in-flight inflate."),
		resShared:     r.Counter("spate_result_singleflight_shared_total", "Explorations served from a concurrent identical in-flight query."),
		decayRuns:     r.Counter("spate_decay_runs_total", "Decay runs that evicted at least one entry."),
		decayLeaves:   r.Counter("spate_decay_leaves_total", "Leaves whose raw data the fungus evicted."),
		decayPruned:   r.Counter("spate_decay_pruned_nodes_total", "Index nodes pruned into coarser summaries."),
		decayBytes:    r.Counter("spate_decay_bytes_freed_total", "Compressed bytes reclaimed by decay."),
	}
	for _, s := range ingestStageNames {
		m.ingestStage[s] = r.Histogram("spate_ingest_stage_seconds",
			"Ingestion stage latency by stage.", nil, "stage", s)
	}
	for _, s := range exploreStageNames {
		m.exploreStage[s] = r.Histogram("spate_explore_stage_seconds",
			"Exploration stage latency by stage.", nil, "stage", s)
	}
	return m
}

// stageRecorder accumulates named stage wall times for one request and
// flushes them to histograms, a Stages slice and (optionally) a span.
// Each stage remembers the wall clock of its first add: flush attaches the
// stage to the span at that real start, so the trace waterfall keeps
// execution order instead of back-dating every stage from flush time
// (which would sort them by duration).
type stageRecorder struct {
	names  []string
	durs   map[string]int64 // nanoseconds
	starts map[string]time.Time
}

func newStageRecorder() *stageRecorder {
	return &stageRecorder{durs: make(map[string]int64, 8), starts: make(map[string]time.Time, 8)}
}

// add accrues d nanoseconds under name (stages may run multiple times, e.g.
// per-table compression). The stage's first add fixes its start time: the
// accrued duration d is assumed to have just elapsed.
func (sr *stageRecorder) add(name string, ns int64) {
	if _, ok := sr.durs[name]; !ok {
		sr.names = append(sr.names, name)
		sr.starts[name] = time.Now().Add(-time.Duration(ns))
	}
	sr.durs[name] += ns
}

// flush records every stage into hists, attaches them to span (if any) and
// returns the breakdown in first-seen order.
func (sr *stageRecorder) flush(hists map[string]*obs.Histogram, span *obs.Span) []obs.Stage {
	out := make([]obs.Stage, 0, len(sr.names))
	for _, n := range sr.names {
		d := sr.durs[n]
		out = append(out, obs.Stage{Name: n, Duration: time.Duration(d)})
		if h := hists[n]; h != nil {
			h.Observe(float64(d) / 1e9)
		}
		span.AddStageAt(n, sr.starts[n], time.Duration(d))
	}
	return out
}

// Tracer exposes the engine's span tracer (nil when tracing is disabled),
// so RPC handlers can root shard-side spans on the same ring the engine's
// own spans land in.
func (e *Engine) Tracer() *obs.Tracer { return e.met.tracer }

// Obs exposes the engine's metrics registry, so the layers serving the
// engine (cluster nodes, the serving tier) account into the same
// registry the engine reports to.
func (e *Engine) Obs() *obs.Registry { return e.opts.Obs }
