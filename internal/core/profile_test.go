package core

import (
	"context"
	"testing"
	"time"

	"spate/internal/obs"
	"spate/internal/telco"
)

// TestExploreProfileCounters drives a cold then chunk-cache-warm exploration
// and checks the per-query profile accounts for the storage work: leaves and
// chunks scanned, DFS ranged reads with inflated bytes on the cold pass,
// chunk-cache hits on the warm one, and the trace id linking the profile to
// its span tree.
func TestExploreProfileCounters(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(16)
	r := newRig(t, Options{Obs: reg, Tracer: tr})
	r.ingestEpochs(t, 4)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))
	q := Query{Window: w, ExactRows: true}

	ctx, prof := ContextWithProfile(context.Background())
	res, err := r.e.ExploreContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.LeavesScanned == 0 {
		t.Error("LeavesScanned = 0")
	}
	if p.ChunksScanned == 0 {
		t.Error("ChunksScanned = 0")
	}
	if p.DFSReads == 0 || p.InflatedBytes == 0 {
		t.Errorf("cold pass did no DFS work: reads=%d bytes=%d", p.DFSReads, p.InflatedBytes)
	}
	if p.CacheMisses == 0 {
		t.Errorf("cold pass reported no chunk-cache misses: %+v", p)
	}
	if p.ReadNS == 0 || p.DecodeNS == 0 {
		t.Errorf("io timers did not advance: read=%d decode=%d", p.ReadNS, p.DecodeNS)
	}
	if p.TraceID == "" {
		t.Error("profile carries no trace id")
	}
	if _, ok := tr.Find(p.TraceID); !ok {
		t.Errorf("trace %s not retained by the tracer", p.TraceID)
	}

	// The context profile accrued the same counters the result carries.
	if prof.ChunksScanned != p.ChunksScanned || prof.InflatedBytes != p.InflatedBytes {
		t.Errorf("context profile diverged: ctx=%+v res=%+v", *prof, p)
	}

	// Result-cache hit: the answer carries the producing evaluation's
	// profile, flagged as a cache hit.
	hit, err := r.e.ExploreContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || !hit.Profile.ResultCacheHit {
		t.Fatalf("cache hit not flagged: CacheHit=%v profile=%+v", hit.CacheHit, hit.Profile)
	}

	// Clear the result cache but keep the chunk cache warm: the re-run must
	// hit chunks instead of re-reading the DFS.
	r.e.cache.Clear()
	warm, err := r.e.ExploreContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	wp := warm.Profile
	if wp.CacheHits == 0 {
		t.Errorf("warm pass had no chunk-cache hits: %+v", wp)
	}
	if wp.DFSReads != 0 {
		t.Errorf("warm pass still read the DFS %d times", wp.DFSReads)
	}
	if wp.ChunksScanned != p.ChunksScanned {
		t.Errorf("warm pass scanned %d chunks, cold scanned %d", wp.ChunksScanned, p.ChunksScanned)
	}
}

// TestExploreProfileZonePruning forces many small chunks per leaf and asks
// for a thin slice of one epoch: the zone maps must prune out-of-window
// chunks, and the profile must attribute the pruning to them.
func TestExploreProfileZonePruning(t *testing.T) {
	r := newRig(t, Options{Obs: obs.NewNoop(), ChunkSize: 2048})
	r.ingestEpochs(t, 2)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(5*time.Minute))
	res, err := r.e.ExploreContext(context.Background(), Query{Window: w, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p.ChunksScanned == 0 {
		t.Fatalf("no chunks scanned: %+v", p)
	}
	if p.ChunksPrunedZone == 0 {
		t.Errorf("thin window pruned no chunks via zone maps: %+v", p)
	}
	if p.ChunksPrunedBloom != 0 {
		t.Errorf("unboxed query charged bloom pruning: %+v", p)
	}
}

// TestScanTablesContextProfile checks the framework scan path (SQL's
// storage entry point) accrues into a context profile.
func TestScanTablesContextProfile(t *testing.T) {
	r := newRig(t, Options{Obs: obs.NewNoop()})
	r.ingestEpochs(t, 2)
	ctx, prof := ContextWithProfile(context.Background())
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(time.Hour))
	rows := 0
	err := r.e.ScanTablesContext(ctx, w, []string{"CDR"}, func(_ string, tab *telco.Table) error {
		rows += tab.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows == 0 {
		t.Fatal("scan yielded no rows")
	}
	if prof.LeavesScanned == 0 || prof.ChunksScanned == 0 {
		t.Errorf("scan profile did not advance: %+v", *prof)
	}
}
