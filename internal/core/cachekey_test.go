package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"spate/internal/segment"
	"spate/internal/telco"
)

// TestChunkCacheKeyPinsVersionAndColumns is the regression guard for the
// cache-key contract: the same leaf chunk decoded under a different
// segment version or a different projected column subset must never land
// on the same key, and every key keeps the "<ref>#" prefix that decay and
// compaction invalidate by.
func TestChunkCacheKeyPinsVersionAndColumns(t *testing.T) {
	keys := []string{
		chunkCacheKey("leaf/42", 2, 0, ""),
		chunkCacheKey("leaf/42", 3, 0, ""),
		chunkCacheKey("leaf/42", 3, 0, "0,2,5"),
		chunkCacheKey("leaf/42", 3, 0, "0,2,6"),
		chunkCacheKey("leaf/42", 3, 1, "0,2,5"),
		chunkCacheKey("leaf/43", 3, 0, ""),
	}
	seen := make(map[string]string)
	for _, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("key %q aliases %q", k, prev)
		}
		seen[k] = k
	}
	for _, k := range keys[:5] {
		if !strings.HasPrefix(k, "leaf/42#") {
			t.Fatalf("key %q escapes the %q invalidation prefix", k, "leaf/42#")
		}
	}
	if strings.HasPrefix(keys[5], "leaf/42#") {
		t.Fatalf("key %q of another leaf shares the prefix", keys[5])
	}
}

// TestCompactUpgradeKeepsWarmCacheCoherent upgrades a v2 row-major store
// to v3 under a warm chunk cache and never clears it: the version pinned
// in the cache key (plus per-ref prefix invalidation) must keep the old
// decoded text from answering for the rewritten leaves, so every query
// stays bit-for-bit identical across the upgrade.
func TestCompactUpgradeKeepsWarmCacheCoherent(t *testing.T) {
	r := newRig(t, Options{SegmentVersion: segment.RowVersion})
	r.ingestEpochs(t, 4)

	// Recovery under v3 options: the store still holds v2 leaves, but
	// compaction on this engine will rewrite them columnar.
	e := reopen(t, r, Options{})
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))
	wantAgg, wantExact := exploreAll(t, e, w) // warms the cache with v2 chunk text

	rep, err := e.Compact(context.Background(), CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SegmentsUpgraded == 0 || rep.LeavesRewritten == 0 {
		t.Fatalf("report = %+v, want v2 leaves upgraded", rep)
	}

	// Deliberately no ClearCache: stale entries must be unreachable.
	gotAgg, gotExact := exploreAll(t, e, w)
	if gotAgg.Summary.Rows != wantAgg.Summary.Rows {
		t.Errorf("aggregate rows = %d, want %d", gotAgg.Summary.Rows, wantAgg.Summary.Rows)
	}
	sameRows(t, wantExact, gotExact)

	// The sweep converged: a second pass finds every leaf already v3.
	rep2, err := e.Compact(context.Background(), CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.SegmentsUpgraded != 0 {
		t.Errorf("second sweep upgraded %d segments", rep2.SegmentsUpgraded)
	}
}

// TestSpecScanSubsetsDoNotAlias runs two projected scans with different
// column subsets back-to-back on a warm cache. The subset signature in
// the cache key must keep each projection's reconstructed text separate:
// a scan may never surface another projection's columns, or NULLs where
// its own projection decoded values.
func TestSpecScanSubsetsDoNotAlias(t *testing.T) {
	r := newRig(t, Options{})
	r.ingestEpochs(t, 3)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(90*time.Minute))
	schema := telco.SchemaByName("CDR")
	callerIdx := schema.FieldIndex(telco.AttrCaller)
	durIdx := schema.FieldIndex(telco.AttrDuration)

	// Ground truth from a full-row scan on a cold cache.
	scan := func(spec *ScanSpec) (callers, durations []string) {
		err := r.e.ScanTablesSpec(context.Background(), w, []string{"CDR"}, spec, func(_ string, tab *telco.Table) error {
			for _, row := range tab.Rows {
				callers = append(callers, row[callerIdx].Format())
				durations = append(durations, row[durIdx].Format())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return callers, durations
	}
	wantCallers, wantDurations := scan(nil)
	if len(wantCallers) == 0 {
		t.Fatal("full scan returned no rows")
	}

	sameStrings := func(what string, got, want []string) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s row %d = %q, want %q", what, i, got[i], want[i])
			}
		}
	}
	allNull := func(what string, vals []string) {
		t.Helper()
		for i, v := range vals {
			if v != "" { // null renders as the empty wire string
				t.Fatalf("%s row %d = %q, want NULL for an unprojected column", what, i, v)
			}
		}
	}

	// Projection A decodes caller (duration must surface as NULL), then
	// projection B decodes duration on the now-warm cache. If the subset
	// signature were missing from the key, B would be served A's text.
	specA := &ScanSpec{Columns: []string{telco.AttrCaller}}
	specB := &ScanSpec{Columns: []string{telco.AttrDuration}}
	for pass := 0; pass < 2; pass++ { // second pass runs fully cached
		gotCallers, gotDurations := scan(specA)
		sameStrings("projection A caller", gotCallers, wantCallers)
		allNull("projection A duration", gotDurations)

		gotCallers, gotDurations = scan(specB)
		allNull("projection B caller", gotCallers)
		sameStrings("projection B duration", gotDurations, wantDurations)
	}

	// The second identical scan must have been answered from the cache —
	// distinct keys, not a disabled cache, is what kept A and B separate.
	ctx, prof := ContextWithProfile(context.Background())
	err := r.e.ScanTablesSpec(ctx, w, []string{"CDR"}, specB, func(string, *telco.Table) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if prof.CacheHits == 0 || prof.CacheMisses != 0 {
		t.Fatalf("warm projected scan: hits=%d misses=%d, want all hits", prof.CacheHits, prof.CacheMisses)
	}
}
