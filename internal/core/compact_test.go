package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"spate/internal/compress"
	"spate/internal/telco"
)

// exploreAll captures an aggregate answer plus exact rows for one window.
func exploreAll(t *testing.T, e *Engine, w telco.TimeRange) (*Result, *Result) {
	t.Helper()
	agg, err := e.Explore(Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := e.Explore(Query{Window: w, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}
	return agg, exact
}

// sameRows compares exact-row answers table by table, row by row.
func sameRows(t *testing.T, want, got *Result) {
	t.Helper()
	if len(want.Rows) != len(got.Rows) {
		t.Fatalf("tables %d != %d", len(got.Rows), len(want.Rows))
	}
	for name, wt := range want.Rows {
		gt := got.Rows[name]
		if gt == nil || gt.Len() != wt.Len() {
			t.Fatalf("%s: rows differ (want %d)", name, wt.Len())
		}
		for i := range wt.Rows {
			if !reflect.DeepEqual(wt.Rows[i], gt.Rows[i]) {
				t.Fatalf("%s row %d differs after compaction", name, i)
			}
		}
	}
}

// TestCompactConvertsLegacyBlobs is the compaction acceptance test: on a
// store of legacy whole-blob leaves under a dictionary-trained codec, a
// sweep converts every blob to a chunked segment, shrinks the stored
// bytes (the dictionary wins back the pre-training leaves), and leaves
// every query answer bit-for-bit identical — including after recovery.
func TestCompactConvertsLegacyBlobs(t *testing.T) {
	zc, err := compress.Lookup("zstd")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Codec: zc, TrainDictionary: true, TrainAfter: 4, ChunkSize: -1}
	r := newRig(t, opts)
	r.ingestEpochs(t, 6)

	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(3*time.Hour))
	wantAgg, wantExact := exploreAll(t, r.e, w)
	spBefore := r.e.Space()

	rep, err := r.e.Compact(context.Background(), CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BlobsConverted == 0 || rep.LeavesRewritten == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.BytesAfter >= rep.BytesBefore {
		t.Errorf("compaction grew the store: %d -> %d bytes", rep.BytesBefore, rep.BytesAfter)
	}
	if sp := r.e.Space(); sp.CompBytes >= spBefore.CompBytes {
		t.Errorf("Space().CompBytes %d -> %d, want a reduction", spBefore.CompBytes, sp.CompBytes)
	}

	r.e.ClearCache() // force the comparison through the rewritten files
	gotAgg, gotExact := exploreAll(t, r.e, w)
	if gotAgg.Summary.Rows != wantAgg.Summary.Rows {
		t.Errorf("aggregate rows = %d, want %d", gotAgg.Summary.Rows, wantAgg.Summary.Rows)
	}
	sameRows(t, wantExact, gotExact)

	// A second sweep finds everything already in segment form.
	rep2, err := r.e.Compact(context.Background(), CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.LeavesRewritten != 0 {
		t.Errorf("second sweep rewrote %d leaves", rep2.LeavesRewritten)
	}

	// Recovery over the compacted store picks the new refs up from the
	// rewritten leaf metadata.
	e2 := reopen(t, r, opts)
	if e2.Tree().Len() != r.e.Tree().Len() {
		t.Fatalf("recovered %d leaves, want %d", e2.Tree().Len(), r.e.Tree().Len())
	}
	recAgg, recExact := exploreAll(t, e2, w)
	if recAgg.Summary.Rows != wantAgg.Summary.Rows {
		t.Errorf("recovered aggregate rows = %d, want %d", recAgg.Summary.Rows, wantAgg.Summary.Rows)
	}
	sameRows(t, wantExact, recExact)
}

// TestCompactMergesUndersizedChunks rewrites a fragmented segment store
// toward a larger chunk target and proves the merge is invisible to
// queries.
func TestCompactMergesUndersizedChunks(t *testing.T) {
	r := newRig(t, Options{ChunkSize: 256}) // absurdly small: many chunks per leaf
	r.ingestEpochs(t, 4)

	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))
	wantAgg, wantExact := exploreAll(t, r.e, w)

	rep, err := r.e.Compact(context.Background(), CompactOptions{ChunkSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChunksMerged == 0 || rep.LeavesRewritten == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.BlobsConverted != 0 {
		t.Errorf("merge sweep converted %d blobs on a segment store", rep.BlobsConverted)
	}

	r.e.ClearCache()
	gotAgg, gotExact := exploreAll(t, r.e, w)
	if gotAgg.Summary.Rows != wantAgg.Summary.Rows {
		t.Errorf("aggregate rows = %d, want %d", gotAgg.Summary.Rows, wantAgg.Summary.Rows)
	}
	sameRows(t, wantExact, gotExact)
}

// TestCompactRespectsMaxLeaves bounds a sweep and resumes it.
func TestCompactRespectsMaxLeaves(t *testing.T) {
	r := newRig(t, Options{ChunkSize: -1})
	r.ingestEpochs(t, 4)
	rep1, err := r.e.Compact(context.Background(), CompactOptions{MaxLeaves: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.LeavesRewritten != 1 {
		t.Fatalf("capped sweep rewrote %d leaves", rep1.LeavesRewritten)
	}
	rep2, err := r.e.Compact(context.Background(), CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.LeavesRewritten != 3 {
		t.Errorf("follow-up rewrote %d leaves, want 3", rep2.LeavesRewritten)
	}
}

// TestCompactCanceledContext stops a sweep between leaves.
func TestCompactCanceledContext(t *testing.T) {
	r := newRig(t, Options{ChunkSize: -1})
	r.ingestEpochs(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.e.Compact(ctx, CompactOptions{}); err == nil {
		t.Error("canceled compaction returned nil error")
	}
}
