// Package compute is the data-parallel processing substrate standing in
// for Apache Spark in the paper's testbed: datasets are split into
// partitions processed concurrently by a worker pool, with the map /
// filter / reduce / aggregate operators the evaluation's heavy tasks
// (T6–T8) are built from. Both SPATE and the baselines run on the same
// substrate, so relative task timings are preserved.
package compute

import (
	"runtime"
	"sync"
)

// Pool is a bounded worker pool shared by dataset operations.
type Pool struct {
	workers int
}

// NewPool creates a pool with the given parallelism; n <= 0 selects
// GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers returns the pool's parallelism degree.
func (p *Pool) Workers() int { return p.workers }

// Dataset is a partitioned in-memory collection.
type Dataset[T any] struct {
	pool  *Pool
	parts [][]T
}

// Parallelize splits items into nparts partitions (nparts <= 0 selects the
// pool's worker count).
func Parallelize[T any](pool *Pool, items []T, nparts int) *Dataset[T] {
	if nparts <= 0 {
		nparts = pool.workers
	}
	if nparts > len(items) {
		nparts = len(items)
	}
	if nparts <= 0 {
		nparts = 1
	}
	parts := make([][]T, nparts)
	chunk := (len(items) + nparts - 1) / nparts
	for i := 0; i < nparts; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(items) {
			lo = len(items)
		}
		if hi > len(items) {
			hi = len(items)
		}
		parts[i] = items[lo:hi]
	}
	return &Dataset[T]{pool: pool, parts: parts}
}

// NumPartitions returns the partition count.
func (d *Dataset[T]) NumPartitions() int { return len(d.parts) }

// Count returns the element count.
func (d *Dataset[T]) Count() int {
	n := 0
	for _, p := range d.parts {
		n += len(p)
	}
	return n
}

// Collect concatenates all partitions.
func (d *Dataset[T]) Collect() []T {
	out := make([]T, 0, d.Count())
	for _, p := range d.parts {
		out = append(out, p...)
	}
	return out
}

// forEachPartition runs fn concurrently over partitions.
func forEachPartition[T any](d *Dataset[T], fn func(pi int, part []T)) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, d.pool.workers)
	for i := range d.parts {
		wg.Add(1)
		sem <- struct{}{}
		go func(pi int) {
			defer wg.Done()
			fn(pi, d.parts[pi])
			<-sem
		}(i)
	}
	wg.Wait()
}

// Map applies f to every element in parallel.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	out := &Dataset[U]{pool: d.pool, parts: make([][]U, len(d.parts))}
	forEachPartition(d, func(pi int, part []T) {
		res := make([]U, len(part))
		for i, v := range part {
			res[i] = f(v)
		}
		out.parts[pi] = res
	})
	return out
}

// Filter keeps elements satisfying pred, in parallel.
func Filter[T any](d *Dataset[T], pred func(T) bool) *Dataset[T] {
	out := &Dataset[T]{pool: d.pool, parts: make([][]T, len(d.parts))}
	forEachPartition(d, func(pi int, part []T) {
		var res []T
		for _, v := range part {
			if pred(v) {
				res = append(res, v)
			}
		}
		out.parts[pi] = res
	})
	return out
}

// Reduce combines all elements with an associative, commutative op.
// The zero value seeds each partition. It returns zero for empty datasets.
func Reduce[T any](d *Dataset[T], zero T, op func(T, T) T) T {
	partials := make([]T, len(d.parts))
	forEachPartition(d, func(pi int, part []T) {
		acc := zero
		for _, v := range part {
			acc = op(acc, v)
		}
		partials[pi] = acc
	})
	acc := zero
	for _, p := range partials {
		acc = op(acc, p)
	}
	return acc
}

// Aggregate folds each partition with seq (per-element) and merges the
// per-partition accumulators with comb — Spark's aggregate().
func Aggregate[T, A any](d *Dataset[T], newAcc func() A, seq func(A, T) A, comb func(A, A) A) A {
	partials := make([]A, len(d.parts))
	forEachPartition(d, func(pi int, part []T) {
		acc := newAcc()
		for _, v := range part {
			acc = seq(acc, v)
		}
		partials[pi] = acc
	})
	acc := newAcc()
	for _, p := range partials {
		acc = comb(acc, p)
	}
	return acc
}

// TopK returns the k largest elements under less (ascending order among
// the returned slice), computed with per-partition heaps and a final merge
// — Spark's top() primitive, used for hotspot rankings.
func TopK[T any](d *Dataset[T], k int, less func(a, b T) bool) []T {
	if k <= 0 {
		return nil
	}
	partials := make([][]T, len(d.parts))
	forEachPartition(d, func(pi int, part []T) {
		partials[pi] = topOfSlice(part, k, less)
	})
	var all []T
	for _, p := range partials {
		all = append(all, p...)
	}
	return topOfSlice(all, k, less)
}

// topOfSlice selects the k largest elements of s, ascending.
func topOfSlice[T any](s []T, k int, less func(a, b T) bool) []T {
	out := make([]T, 0, k)
	for _, v := range s {
		// Insertion into a small sorted buffer (k is small in practice).
		pos := len(out)
		for pos > 0 && less(v, out[pos-1]) {
			pos--
		}
		if len(out) < k {
			out = append(out, v)
			copy(out[pos+1:], out[pos:len(out)-1])
			out[pos] = v
		} else if pos > 0 {
			copy(out[:pos-1], out[1:pos])
			out[pos-1] = v
		}
	}
	return out
}

// Sample returns a deterministic pseudo-random sample of approximately
// fraction*Count() elements (seeded, without replacement) — the cheap
// approximate-analytics primitive.
func Sample[T any](d *Dataset[T], fraction float64, seed int64) []T {
	if fraction <= 0 {
		return nil
	}
	if fraction >= 1 {
		return d.Collect()
	}
	var out []T
	// xorshift over a per-element counter keeps selection deterministic
	// regardless of partitioning.
	state := uint64(seed)*2654435761 + 1
	for _, p := range d.parts {
		for _, v := range p {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			if float64(state%1_000_000)/1_000_000 < fraction {
				out = append(out, v)
			}
		}
	}
	return out
}

// GroupReduce shuffles elements by key and reduces values per key —
// the reduceByKey primitive behind per-cell analytics.
func GroupReduce[T any, K comparable, V any](d *Dataset[T], keyOf func(T) K, valOf func(T) V, op func(V, V) V) map[K]V {
	partials := make([]map[K]V, len(d.parts))
	forEachPartition(d, func(pi int, part []T) {
		m := make(map[K]V)
		for _, t := range part {
			k, v := keyOf(t), valOf(t)
			if old, ok := m[k]; ok {
				m[k] = op(old, v)
			} else {
				m[k] = v
			}
		}
		partials[pi] = m
	})
	out := make(map[K]V)
	for _, m := range partials {
		for k, v := range m {
			if old, ok := out[k]; ok {
				out[k] = op(old, v)
			} else {
				out[k] = v
			}
		}
	}
	return out
}
