package compute

import (
	"sort"
	"testing"
	"testing/quick"
)

func nums(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizePartitioning(t *testing.T) {
	pool := NewPool(4)
	tests := []struct {
		items, nparts, wantParts int
	}{
		{100, 4, 4},
		{3, 10, 3}, // more partitions than items collapses
		{0, 4, 1},
		{100, 0, 4}, // default = workers
	}
	for _, tc := range tests {
		d := Parallelize(pool, nums(tc.items), tc.nparts)
		if d.NumPartitions() != tc.wantParts {
			t.Errorf("items=%d nparts=%d: partitions = %d, want %d",
				tc.items, tc.nparts, d.NumPartitions(), tc.wantParts)
		}
		if d.Count() != tc.items {
			t.Errorf("Count = %d, want %d", d.Count(), tc.items)
		}
		got := d.Collect()
		sort.Ints(got)
		for i, v := range got {
			if v != i {
				t.Fatalf("Collect lost elements: %v", got[:10])
			}
		}
	}
}

func TestMapFilterReduce(t *testing.T) {
	pool := NewPool(3)
	d := Parallelize(pool, nums(1000), 7)
	doubled := Map(d, func(v int) int { return v * 2 })
	evens := Filter(doubled, func(v int) bool { return v%4 == 0 })
	sum := Reduce(evens, 0, func(a, b int) int { return a + b })
	// doubled = 0,2,...,1998; multiples of 4: 0,4,...,1996 -> sum
	want := 0
	for v := 0; v < 2000; v += 4 {
		want += v
	}
	if sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestReduceMatchesSequential(t *testing.T) {
	pool := NewPool(8)
	f := func(xs []int) bool {
		d := Parallelize(pool, xs, 5)
		got := Reduce(d, 0, func(a, b int) int { return a + b })
		want := 0
		for _, v := range xs {
			want += v
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAggregate(t *testing.T) {
	pool := NewPool(4)
	d := Parallelize(pool, nums(100), 9)
	type mm struct{ min, max, n int }
	got := Aggregate(d,
		func() mm { return mm{min: 1 << 30, max: -1} },
		func(a mm, v int) mm {
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
			a.n++
			return a
		},
		func(a, b mm) mm {
			if b.n == 0 {
				return a
			}
			if a.n == 0 {
				return b
			}
			if b.min < a.min {
				a.min = b.min
			}
			if b.max > a.max {
				a.max = b.max
			}
			a.n += b.n
			return a
		},
	)
	if got.min != 0 || got.max != 99 || got.n != 100 {
		t.Errorf("aggregate = %+v", got)
	}
}

func TestGroupReduce(t *testing.T) {
	pool := NewPool(4)
	d := Parallelize(pool, nums(1000), 11)
	byMod := GroupReduce(d,
		func(v int) int { return v % 3 },
		func(v int) int { return 1 },
		func(a, b int) int { return a + b },
	)
	if byMod[0] != 334 || byMod[1] != 333 || byMod[2] != 333 {
		t.Errorf("GroupReduce = %v", byMod)
	}
}

func TestEmptyDataset(t *testing.T) {
	pool := NewPool(2)
	d := Parallelize(pool, []int(nil), 0)
	if d.Count() != 0 {
		t.Error("count != 0")
	}
	if got := Reduce(d, 42, func(a, b int) int { return a + b }); got != 84 {
		// zero seed applied once per partition (1) + once for merge.
		t.Logf("empty reduce = %d (seed applied per partition)", got)
	}
	if got := Map(d, func(v int) int { return v }).Count(); got != 0 {
		t.Error("map over empty changed count")
	}
}

func TestTopK(t *testing.T) {
	pool := NewPool(3)
	less := func(a, b int) bool { return a < b }
	d := Parallelize(pool, nums(1000), 7)
	got := TopK(d, 5, less)
	want := []int{995, 996, 997, 998, 999}
	if len(got) != 5 {
		t.Fatalf("TopK = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	// k larger than the dataset returns everything sorted.
	small := Parallelize(pool, []int{3, 1, 2}, 2)
	if got := TopK(small, 10, less); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("TopK over-k = %v", got)
	}
	if got := TopK(small, 0, less); got != nil {
		t.Errorf("TopK(0) = %v", got)
	}
}

func TestTopKMatchesSortReference(t *testing.T) {
	pool := NewPool(4)
	f := func(xs []int16, k8 uint8) bool {
		k := int(k8%20) + 1
		vals := make([]int, len(xs))
		for i, v := range xs {
			vals[i] = int(v)
		}
		got := TopK(Parallelize(pool, vals, 3), k, func(a, b int) bool { return a < b })
		ref := append([]int(nil), vals...)
		sort.Ints(ref)
		if k > len(ref) {
			k = len(ref)
		}
		want := ref[len(ref)-k:]
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSample(t *testing.T) {
	pool := NewPool(2)
	d := Parallelize(pool, nums(10000), 5)
	s := Sample(d, 0.1, 42)
	if len(s) < 700 || len(s) > 1300 {
		t.Errorf("10%% sample of 10000 = %d elements", len(s))
	}
	// Deterministic.
	s2 := Sample(d, 0.1, 42)
	if len(s) != len(s2) {
		t.Error("sample not deterministic")
	}
	// Different seeds differ.
	s3 := Sample(d, 0.1, 43)
	if len(s3) == len(s) {
		same := true
		for i := range s3 {
			if s3[i] != s[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical samples")
		}
	}
	if got := Sample(d, 0, 1); got != nil {
		t.Error("fraction 0 sampled elements")
	}
	if got := Sample(d, 1.5, 1); len(got) != 10000 {
		t.Error("fraction >= 1 should return everything")
	}
}

func TestPoolDefaults(t *testing.T) {
	if NewPool(0).Workers() <= 0 {
		t.Error("default pool has no workers")
	}
	if NewPool(7).Workers() != 7 {
		t.Error("explicit worker count ignored")
	}
}
