package ml

import (
	"math"
	"math/rand"
	"testing"

	"spate/internal/compute"
)

var pool = compute.NewPool(4)

func TestColStatsBasic(t *testing.T) {
	rows := [][]float64{
		{1, 10, 0},
		{2, 20, 0},
		{3, 30, 5},
		{4, 40, 0},
	}
	st, err := ColStatsOf(pool, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 3 {
		t.Fatalf("cols = %d", len(st))
	}
	c0 := st[0]
	if c0.Count != 4 || c0.Min != 1 || c0.Max != 4 || c0.Mean != 2.5 || c0.NonZeros != 4 {
		t.Errorf("col0 = %+v", c0)
	}
	if math.Abs(c0.Variance-1.25) > 1e-9 {
		t.Errorf("variance = %v, want 1.25", c0.Variance)
	}
	if st[2].NonZeros != 1 {
		t.Errorf("col2 nonzeros = %d", st[2].NonZeros)
	}
}

func TestColStatsMatchesSequentialOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 5000)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 10, rng.Float64()}
	}
	st, err := ColStatsOf(pool, rows)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for _, r := range rows {
		sum += r[0]
		sumSq += r[0] * r[0]
	}
	mean := sum / 5000
	variance := sumSq/5000 - mean*mean
	if math.Abs(st[0].Mean-mean) > 1e-9 || math.Abs(st[0].Variance-variance) > 1e-6 {
		t.Errorf("parallel stats diverge: %+v vs mean=%v var=%v", st[0], mean, variance)
	}
}

func TestColStatsErrors(t *testing.T) {
	if st, err := ColStatsOf(pool, nil); err != nil || st != nil {
		t.Errorf("empty input: %v %v", st, err)
	}
	if _, err := ColStatsOf(pool, [][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestKMeansSeparatesObviousClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var pts [][]float64
	centers := [][]float64{{0, 0}, {100, 100}, {-100, 100}}
	for i := 0; i < 600; i++ {
		c := centers[i%3]
		pts = append(pts, []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()})
	}
	res, err := KMeans(pool, pts, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 3 {
		t.Fatalf("centers = %d", len(res.Centers))
	}
	// Every found center is within 1 unit of a true center.
	for _, c := range res.Centers {
		best := math.MaxFloat64
		for _, tc := range centers {
			d := math.Hypot(c[0]-tc[0], c[1]-tc[1])
			if d < best {
				best = d
			}
		}
		if best > 1.0 {
			t.Errorf("center %v far from any true center (%.2f)", c, best)
		}
	}
	// Points sharing a true cluster share an assignment.
	for i := 3; i < len(pts); i++ {
		if res.Assignment[i] != res.Assignment[i%3] {
			t.Fatalf("point %d assigned %d, seed point assigned %d", i, res.Assignment[i], res.Assignment[i%3])
		}
	}
	if res.WithinSS <= 0 {
		t.Error("WithinSS not computed")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	a, err := KMeans(pool, pts, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(pool, pts, 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Centers {
		for j := range a.Centers[i] {
			if a.Centers[i][j] != b.Centers[i][j] {
				t.Fatal("k-means is nondeterministic across runs")
			}
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(pool, [][]float64{{1}}, 0, 5); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(pool, [][]float64{{1}}, 2, 5); err == nil {
		t.Error("k > points accepted")
	}
	if _, err := KMeans(pool, [][]float64{{1, 2}, {1}}, 1, 5); err == nil {
		t.Error("ragged points accepted")
	}
}

func TestLinearRegressionRecoversModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// y = 3 + 2*x1 - 0.5*x2 + noise
	var xs [][]float64
	var ys []float64
	for i := 0; i < 4000; i++ {
		x1, x2 := rng.Float64()*10, rng.Float64()*10
		xs = append(xs, []float64{x1, x2})
		ys = append(ys, 3+2*x1-0.5*x2+rng.NormFloat64()*0.01)
	}
	m, err := LinearRegression(pool, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Intercept-3) > 0.01 || math.Abs(m.Coef[0]-2) > 0.01 || math.Abs(m.Coef[1]+0.5) > 0.01 {
		t.Errorf("model = %+v", m)
	}
	if m.R2 < 0.999 {
		t.Errorf("R2 = %v", m.R2)
	}
	if got := m.Predict([]float64{1, 2}); math.Abs(got-4) > 0.05 {
		t.Errorf("Predict = %v, want ~4", got)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression(pool, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := LinearRegression(pool, [][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	// Perfectly collinear features -> singular system.
	xs := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, err := LinearRegression(pool, xs, []float64{1, 2, 3}); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := LinearRegression(pool, [][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged features accepted")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x - y = 1  => x=2, y=1
	sol, err := solve([][]float64{{2, 1}, {1, -1}}, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol[0]-2) > 1e-12 || math.Abs(sol[1]-1) > 1e-12 {
		t.Errorf("sol = %v", sol)
	}
}
