// Package ml provides the machine-learning kernels the paper's heavy tasks
// use from Spark MLlib: multivariate column statistics
// (Statistics.colStats, task T6), k-means clustering (task T7) and linear
// regression (regression.LinearRegression, task T8). All three run
// data-parallel on the compute substrate.
package ml

import (
	"fmt"
	"math"

	"spate/internal/compute"
)

// ColStats are multivariate statistics of a column — exactly the set T6
// reports: "column-wise max, min, mean, variance, number of non-zeros and
// the total count".
type ColStats struct {
	Count    int64
	NonZeros int64
	Min, Max float64
	Mean     float64
	Variance float64 // population variance
}

type colAcc struct {
	n        int64
	nz       int64
	min, max float64
	sum      float64
	sumSq    float64
}

// ColStatsOf computes per-column statistics of a row dataset in parallel.
// All rows must have the same width; the width of the first row wins and
// ragged rows surface as an error.
func ColStatsOf(pool *compute.Pool, rows [][]float64) ([]ColStats, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	width := len(rows[0])
	ds := compute.Parallelize(pool, rows, 0)
	type acc struct {
		cols []colAcc
		err  error
	}
	res := compute.Aggregate(ds,
		func() acc { return acc{cols: make([]colAcc, width)} },
		func(a acc, row []float64) acc {
			if a.err != nil {
				return a
			}
			if len(row) != width {
				a.err = fmt.Errorf("ml: ragged row width %d, want %d", len(row), width)
				return a
			}
			for i, v := range row {
				c := &a.cols[i]
				if c.n == 0 || v < c.min {
					c.min = v
				}
				if c.n == 0 || v > c.max {
					c.max = v
				}
				c.n++
				if v != 0 {
					c.nz++
				}
				c.sum += v
				c.sumSq += v * v
			}
			return a
		},
		func(a, b acc) acc {
			if a.err != nil {
				return a
			}
			if b.err != nil {
				return b
			}
			for i := range a.cols {
				ca, cb := &a.cols[i], &b.cols[i]
				if cb.n == 0 {
					continue
				}
				if ca.n == 0 || cb.min < ca.min {
					ca.min = cb.min
				}
				if ca.n == 0 || cb.max > ca.max {
					ca.max = cb.max
				}
				ca.n += cb.n
				ca.nz += cb.nz
				ca.sum += cb.sum
				ca.sumSq += cb.sumSq
			}
			return a
		},
	)
	if res.err != nil {
		return nil, res.err
	}
	out := make([]ColStats, width)
	for i, c := range res.cols {
		st := ColStats{Count: c.n, NonZeros: c.nz, Min: c.min, Max: c.max}
		if c.n > 0 {
			st.Mean = c.sum / float64(c.n)
			st.Variance = c.sumSq/float64(c.n) - st.Mean*st.Mean
			if st.Variance < 0 {
				st.Variance = 0
			}
		}
		out[i] = st
	}
	return out, nil
}

// KMeansResult holds a clustering outcome.
type KMeansResult struct {
	Centers    [][]float64
	Assignment []int
	Iterations int
	// WithinSS is the total within-cluster sum of squared distances.
	WithinSS float64
}

// KMeans clusters points into k clusters with Lloyd's algorithm, running
// the assignment step data-parallel. Initial centers are chosen
// deterministically by a k-means++-style farthest-point heuristic seeded
// from the dataset itself.
func KMeans(pool *compute.Pool, points [][]float64, k, maxIter int) (*KMeansResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("ml: k = %d", k)
	}
	if len(points) < k {
		return nil, fmt.Errorf("ml: %d points for k=%d", len(points), k)
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("ml: ragged point width %d, want %d", len(p), dim)
		}
	}
	if maxIter <= 0 {
		maxIter = 20
	}

	centers := initCenters(points, k)
	ds := compute.Parallelize(pool, points, 0)

	assign := make([]int, len(points))
	res := &KMeansResult{}
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		type acc struct {
			sum   [][]float64
			count []int64
			ss    float64
		}
		a := compute.Aggregate(ds,
			func() acc {
				s := make([][]float64, k)
				for i := range s {
					s[i] = make([]float64, dim)
				}
				return acc{sum: s, count: make([]int64, k)}
			},
			func(a acc, p []float64) acc {
				best, bd := nearest(centers, p)
				a.ss += bd
				a.count[best]++
				for j, v := range p {
					a.sum[best][j] += v
				}
				return a
			},
			func(a, b acc) acc {
				a.ss += b.ss
				for i := range a.sum {
					a.count[i] += b.count[i]
					for j := range a.sum[i] {
						a.sum[i][j] += b.sum[i][j]
					}
				}
				return a
			},
		)
		res.WithinSS = a.ss
		moved := false
		for i := 0; i < k; i++ {
			if a.count[i] == 0 {
				continue // empty cluster keeps its center
			}
			for j := 0; j < dim; j++ {
				nv := a.sum[i][j] / float64(a.count[i])
				if math.Abs(nv-centers[i][j]) > 1e-9 {
					moved = true
				}
				centers[i][j] = nv
			}
		}
		if !moved {
			break
		}
	}
	// Final assignment pass.
	for i, p := range points {
		assign[i], _ = nearest(centers, p)
	}
	res.Centers = centers
	res.Assignment = assign
	return res, nil
}

// initCenters picks the first center as point 0 and each next center as
// the point farthest from its nearest chosen center (deterministic).
func initCenters(points [][]float64, k int) [][]float64 {
	centers := make([][]float64, 0, k)
	centers = append(centers, append([]float64(nil), points[0]...))
	for len(centers) < k {
		bestIdx, bestDist := 0, -1.0
		for i, p := range points {
			_, d := nearest(centers, p)
			if d > bestDist {
				bestDist, bestIdx = d, i
			}
		}
		centers = append(centers, append([]float64(nil), points[bestIdx]...))
	}
	return centers
}

func nearest(centers [][]float64, p []float64) (int, float64) {
	best, bd := 0, math.MaxFloat64
	for i, c := range centers {
		d := 0.0
		for j := range c {
			diff := p[j] - c[j]
			d += diff * diff
		}
		if d < bd {
			bd, best = d, i
		}
	}
	return best, bd
}

// LinReg is a fitted linear model y = Intercept + sum Coef[i]*x[i].
type LinReg struct {
	Coef      []float64
	Intercept float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
}

// LinearRegression fits ordinary least squares via the normal equations
// (X'X solved with Gaussian elimination + partial pivoting), computing the
// moment matrices data-parallel — the shape of Spark's
// regression.LinearRegression for modest feature counts.
func LinearRegression(pool *compute.Pool, xs [][]float64, ys []float64) (*LinReg, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return nil, fmt.Errorf("ml: %d rows vs %d targets", len(xs), len(ys))
	}
	d := len(xs[0])
	type row struct {
		x []float64
		y float64
	}
	rows := make([]row, len(xs))
	for i := range xs {
		if len(xs[i]) != d {
			return nil, fmt.Errorf("ml: ragged feature width")
		}
		rows[i] = row{xs[i], ys[i]}
	}
	n := d + 1 // with intercept column
	ds := compute.Parallelize(pool, rows, 0)
	type acc struct {
		xtx [][]float64
		xty []float64
		sy  float64
		syy float64
		cnt int64
	}
	a := compute.Aggregate(ds,
		func() acc {
			m := make([][]float64, n)
			for i := range m {
				m[i] = make([]float64, n)
			}
			return acc{xtx: m, xty: make([]float64, n)}
		},
		func(a acc, r row) acc {
			// Augmented feature vector (1, x...).
			v := make([]float64, n)
			v[0] = 1
			copy(v[1:], r.x)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a.xtx[i][j] += v[i] * v[j]
				}
				a.xty[i] += v[i] * r.y
			}
			a.sy += r.y
			a.syy += r.y * r.y
			a.cnt++
			return a
		},
		func(a, b acc) acc {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a.xtx[i][j] += b.xtx[i][j]
				}
				a.xty[i] += b.xty[i]
			}
			a.sy += b.sy
			a.syy += b.syy
			a.cnt += b.cnt
			return a
		},
	)
	beta, err := solve(a.xtx, a.xty)
	if err != nil {
		return nil, err
	}
	m := &LinReg{Intercept: beta[0], Coef: beta[1:]}
	// R^2 = 1 - SSE/SST.
	var sse float64
	for i := range xs {
		sse += sq(ys[i] - m.Predict(xs[i]))
	}
	mean := a.sy / float64(a.cnt)
	sst := a.syy - float64(a.cnt)*mean*mean
	if sst > 0 {
		m.R2 = 1 - sse/sst
	}
	return m, nil
}

// Predict evaluates the model on one feature vector.
func (m *LinReg) Predict(x []float64) float64 {
	y := m.Intercept
	for i, c := range m.Coef {
		y += c * x[i]
	}
	return y
}

func sq(v float64) float64 { return v * v }

// solve performs Gaussian elimination with partial pivoting on a copy.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return nil, fmt.Errorf("ml: singular system (column %d)", col)
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m[i][n] / m[i][i]
	}
	return out, nil
}
