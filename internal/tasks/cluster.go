package tasks

import (
	"context"
	"fmt"
	"sort"
	"time"

	"spate/internal/cluster"
	"spate/internal/core"
	"spate/internal/scanspec"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// Cluster adapts a cluster.Coordinator to the Framework surface, which in
// turn makes the sharded deployment queryable through SPATE-SQL via
// Catalog: scans fan out as exact-row explorations and the shard rows
// merge coordinator-side. A partial answer (failed shards after retries)
// fails the scan rather than silently returning a subset of rows — SQL
// results must be complete or absent.
type Cluster struct{ C *cluster.Coordinator }

// Name implements Framework.
func (Cluster) Name() string { return "SPATE-CLUSTER" }

// Ingest implements Framework, routing the snapshot through the
// coordinator's write-all replication.
func (c Cluster) Ingest(sn *snapshot.Snapshot) (IngestStats, error) {
	t0 := time.Now()
	err := c.C.Ingest(context.Background(), sn)
	rows := 0
	for _, name := range sn.TableNames() {
		rows += sn.Table(name).Len()
	}
	return IngestStats{Epoch: sn.Epoch, Rows: rows, Total: time.Since(t0)}, err
}

// Finish implements Framework.
func (c Cluster) Finish() { _ = c.C.FinishIngest(context.Background()) }

// Scan implements Framework: one scatter-gather exact-row exploration per
// window, streamed to fn table by table in name order.
func (c Cluster) Scan(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	res, err := c.C.Explore(ctx, core.Query{Window: w, Tables: tables, ExactRows: true})
	if err != nil {
		return err
	}
	if res.Partial {
		return fmt.Errorf("tasks: cluster scan degraded: %d/%d shards failed (missing %d ranges)",
			res.ShardsFailed, res.ShardsQueried, len(res.Missing))
	}
	names := make([]string, 0, len(res.Rows))
	for name := range res.Rows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if res.Rows[name].Len() == 0 {
			continue
		}
		if err := fn(name, res.Rows[name]); err != nil {
			return err
		}
	}
	return nil
}

// ScanSpec implements SpecScanner: the spec rides the explore RPC, shards
// pre-filter rows on its predicates and ship only referenced columns (v3
// leaves), and the merged tables stream to fn in name order. The row-only
// scatter skips the summary merge Scan pays for. Like Scan, any shard
// failing all retries fails the call.
func (c Cluster) ScanSpec(ctx context.Context, w telco.TimeRange, tables []string, spec *scanspec.Spec, fn func(string, *telco.Table) error) error {
	rows, err := c.C.ScanRows(ctx, w, tables, spec)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if rows[name].Len() == 0 {
			continue
		}
		if err := fn(name, rows[name]); err != nil {
			return err
		}
	}
	return nil
}

// AggregatePartials implements PartialAggregator: shards fold the spec's
// aggregates locally and ship partials, which the coordinator merges
// key-wise — the sharded answer matches a single engine bit for bit.
func (c Cluster) AggregatePartials(ctx context.Context, w telco.TimeRange, table string, spec *scanspec.Spec) ([]scanspec.Partial, error) {
	return c.C.AggregatePartials(ctx, w, table, spec)
}

// Space implements Framework. Shard nodes own their storage accounting;
// the coordinator has no aggregate view, so the cluster reports zeros.
func (Cluster) Space() (int64, int64) { return 0, 0 }
