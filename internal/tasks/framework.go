// Package tasks implements the paper's eight telco-specific evaluation
// workloads (§VII-E) — T1 equality, T2 range, T3 aggregate, T4 self-join,
// T5 privacy sanitization, T6 multivariate statistics, T7 k-means
// clustering, T8 linear regression — uniformly over the three compared
// frameworks (RAW, SHAHED, SPATE), so that Fig. 11 and Fig. 12 response
// times and the storage totals of §VIII-C come from the same code paths.
package tasks

import (
	"context"
	"time"

	"spate/internal/core"
	"spate/internal/raw"
	"spate/internal/shahed"
	"spate/internal/snapshot"
	"spate/internal/sqlengine"
	"spate/internal/telco"
)

// IngestStats reports one snapshot ingestion uniformly across frameworks.
type IngestStats struct {
	Epoch telco.Epoch
	Rows  int
	Total time.Duration
}

// Framework is the uniform surface the tasks run against.
type Framework interface {
	// Name returns "RAW", "SHAHED" or "SPATE".
	Name() string
	// Ingest stores one arriving snapshot.
	Ingest(*snapshot.Snapshot) (IngestStats, error)
	// Finish seals any open index periods after the trace ends.
	Finish()
	// Scan streams the window's records per table. Implementations honor
	// ctx where their storage layer supports it (SPATE stops between
	// snapshot decompressions; RAW and SHAHED scans are not interruptible
	// mid-table).
	Scan(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error
	// Space returns (data bytes, index bytes), logical (pre-replication).
	Space() (data, index int64)
}

// Catalog adapts a framework to SPATE-SQL: CDR and NMS tables are scanned
// through the framework, honoring the executor's timestamp pushdown.
func Catalog(f Framework) sqlengine.Catalog {
	return fwCatalog{f}
}

type fwCatalog struct{ f Framework }

func (c fwCatalog) Table(name string) (sqlengine.Provider, error) {
	schema := telco.SchemaByName(name)
	if schema == nil {
		return nil, &unknownTableError{name}
	}
	return fwProvider{f: c.f, name: name, schema: schema}, nil
}

type unknownTableError struct{ name string }

func (e *unknownTableError) Error() string { return "tasks: unknown table " + e.name }

type fwProvider struct {
	f      Framework
	name   string
	schema *telco.Schema
}

func (p fwProvider) Schema() *telco.Schema { return p.schema }

// allTime is the scan window when the executor derived no ts bounds.
var allTime = telco.TimeRange{
	From: time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC),
	To:   time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC),
}

func (p fwProvider) Scan(ctx context.Context, hint sqlengine.ScanHint, fn func(telco.Record) error) error {
	w := allTime
	if hint.Constrained {
		w = hint.Window
	}
	return p.f.Scan(ctx, w, []string{p.name}, func(_ string, tab *telco.Table) error {
		for _, r := range tab.Rows {
			if err := fn(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// --- SPATE adapter ---

// Spate wraps a core.Engine as a Framework.
type Spate struct{ E *core.Engine }

// Name implements Framework.
func (Spate) Name() string { return "SPATE" }

// Ingest implements Framework.
func (s Spate) Ingest(sn *snapshot.Snapshot) (IngestStats, error) {
	rep, err := s.E.Ingest(sn)
	return IngestStats{Epoch: sn.Epoch, Rows: rep.Rows, Total: rep.Total}, err
}

// Finish implements Framework.
func (s Spate) Finish() { s.E.FinishIngest() }

// Scan implements Framework.
func (s Spate) Scan(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	return s.E.ScanTablesContext(ctx, w, tables, fn)
}

// Space implements Framework.
func (s Spate) Space() (int64, int64) {
	sp := s.E.Space()
	return sp.CompBytes, sp.SummaryBytes
}

// --- SHAHED adapter ---

// Shahed wraps a shahed.Store as a Framework.
type Shahed struct{ S *shahed.Store }

// Name implements Framework.
func (Shahed) Name() string { return "SHAHED" }

// Ingest implements Framework.
func (s Shahed) Ingest(sn *snapshot.Snapshot) (IngestStats, error) {
	rep, err := s.S.Ingest(sn)
	return IngestStats{Epoch: sn.Epoch, Rows: rep.Rows, Total: rep.Total}, err
}

// Finish implements Framework.
func (s Shahed) Finish() { s.S.FinishIngest() }

// Scan implements Framework. The SHAHED store has no context plumbing;
// cancellation is checked once up front.
func (s Shahed) Scan(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.S.Scan(w, tables, fn)
}

// Space implements Framework.
func (s Shahed) Space() (int64, int64) {
	return s.S.Space()
}

// --- RAW adapter ---

// Raw wraps a raw.Store as a Framework.
type Raw struct{ S *raw.Store }

// Name implements Framework.
func (Raw) Name() string { return "RAW" }

// Ingest implements Framework.
func (r Raw) Ingest(sn *snapshot.Snapshot) (IngestStats, error) {
	rep, err := r.S.Ingest(sn)
	return IngestStats{Epoch: sn.Epoch, Rows: rep.Rows, Total: rep.Total}, err
}

// Finish implements Framework.
func (Raw) Finish() {}

// Scan implements Framework. The RAW store has no context plumbing;
// cancellation is checked once up front.
func (r Raw) Scan(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.S.Scan(w, tables, fn)
}

// Space implements Framework.
func (r Raw) Space() (int64, int64) {
	return r.S.Space(), 0
}
