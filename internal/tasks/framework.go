// Package tasks implements the paper's eight telco-specific evaluation
// workloads (§VII-E) — T1 equality, T2 range, T3 aggregate, T4 self-join,
// T5 privacy sanitization, T6 multivariate statistics, T7 k-means
// clustering, T8 linear regression — uniformly over the three compared
// frameworks (RAW, SHAHED, SPATE), so that Fig. 11 and Fig. 12 response
// times and the storage totals of §VIII-C come from the same code paths.
package tasks

import (
	"context"
	"fmt"
	"time"

	"spate/internal/core"
	"spate/internal/raw"
	"spate/internal/scanspec"
	"spate/internal/shahed"
	"spate/internal/snapshot"
	"spate/internal/sqlengine"
	"spate/internal/telco"
)

// IngestStats reports one snapshot ingestion uniformly across frameworks.
type IngestStats struct {
	Epoch telco.Epoch
	Rows  int
	Total time.Duration
}

// Framework is the uniform surface the tasks run against.
type Framework interface {
	// Name returns "RAW", "SHAHED" or "SPATE".
	Name() string
	// Ingest stores one arriving snapshot.
	Ingest(*snapshot.Snapshot) (IngestStats, error)
	// Finish seals any open index periods after the trace ends.
	Finish()
	// Scan streams the window's records per table. Implementations honor
	// ctx where their storage layer supports it (SPATE stops between
	// snapshot decompressions; RAW and SHAHED scans are not interruptible
	// mid-table).
	Scan(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error
	// Space returns (data bytes, index bytes), logical (pre-replication).
	Space() (data, index int64)
}

// SpecScanner is the optional Framework capability for column-projected,
// predicate-filtered scans: the storage layer decodes only the spec's
// referenced column streams and pre-applies its conjuncts (advisory — the
// SQL engine still re-evaluates the full WHERE clause). Frameworks without
// it fall back to full-row scans.
type SpecScanner interface {
	ScanSpec(ctx context.Context, w telco.TimeRange, tables []string, spec *scanspec.Spec, fn func(string, *telco.Table) error) error
}

// PartialAggregator is the optional Framework capability for aggregate
// pushdown: the storage layer folds the spec's aggregates chunk-side
// (authoritative — window, RequireTS and predicates applied exactly) and
// returns merged partials instead of rows.
type PartialAggregator interface {
	AggregatePartials(ctx context.Context, w telco.TimeRange, table string, spec *scanspec.Spec) ([]scanspec.Partial, error)
}

// Catalog adapts a framework to SPATE-SQL: CDR and NMS tables are scanned
// through the framework, honoring the executor's timestamp pushdown. When
// the framework supports columnar pushdown (SPATE, SPATE-CLUSTER), the
// returned providers additionally implement sqlengine.Aggregator and route
// column/predicate specs into the storage layer.
func Catalog(f Framework) sqlengine.Catalog {
	return fwCatalog{f}
}

type fwCatalog struct{ f Framework }

func (c fwCatalog) Table(name string) (sqlengine.Provider, error) {
	schema := telco.SchemaByName(name)
	if schema == nil {
		return nil, &unknownTableError{name}
	}
	p := fwProvider{f: c.f, name: name, schema: schema}
	if agg, ok := c.f.(PartialAggregator); ok {
		return aggProvider{fwProvider: p, agg: agg}, nil
	}
	return p, nil
}

// WithProfile implements sqlengine.ExplainProfiler: scans under the
// returned context accrue into a core.Profile (the SPATE engine and the
// cluster coordinator both honor it; RAW/SHAHED scans leave it zero), and
// the render function reports it as EXPLAIN ANALYZE lines.
func (c fwCatalog) WithProfile(ctx context.Context) (context.Context, func() []string) {
	ctx, prof := core.ContextWithProfile(ctx)
	return ctx, func() []string { return RenderProfile(prof) }
}

// RenderProfile renders a query profile as human-readable report lines in
// a stable order (the EXPLAIN ANALYZE tail).
func RenderProfile(p *core.Profile) []string {
	if p == nil {
		return nil
	}
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	if p.ResultCacheHit {
		add("result cache: hit")
	}
	add("leaves: %d scanned, %d pruned, %d decayed",
		p.LeavesScanned, p.LeavesPruned, p.LeavesDecayed)
	add("chunks: %d scanned, %d pruned (zone map), %d pruned (bloom)",
		p.ChunksScanned, p.ChunksPrunedZone, p.ChunksPrunedBloom)
	if p.ChunksPrunedPred+p.ChunksAggMeta > 0 {
		add("pushdown: %d chunks pruned (predicate), %d answered from zone meta",
			p.ChunksPrunedPred, p.ChunksAggMeta)
	}
	if p.ColumnsDecoded+p.ColumnsSkipped > 0 {
		add("columns: %d decoded, %d skipped", p.ColumnsDecoded, p.ColumnsSkipped)
	}
	if p.AggPartials > 0 {
		add("aggregate: %d partial rows", p.AggPartials)
	}
	add("chunk cache: %d hits, %d misses", p.CacheHits, p.CacheMisses)
	add("dfs: %d ranged reads, %d bytes inflated", p.DFSReads, p.InflatedBytes)
	if p.ReadNS+p.DecodeNS+p.LookupNS > 0 {
		add("io time: read %.3f ms, decode %.3f ms, cache lookup %.3f ms",
			float64(p.ReadNS)/1e6, float64(p.DecodeNS)/1e6, float64(p.LookupNS)/1e6)
	}
	if p.TraceID != "" {
		add("trace: %s", p.TraceID)
	}
	for _, s := range p.Shards {
		if s.Missing {
			add("shard %d band %d: MISSING after %d retries (%.1f ms): %s",
				s.Shard, s.Band, s.Retries, s.LatencyMS, s.Error)
			continue
		}
		extra := ""
		if s.HedgeWin {
			extra = ", hedge win"
		}
		if s.Retries > 0 {
			extra += fmt.Sprintf(", %d retries", s.Retries)
		}
		if s.Profile.AggPartials > 0 {
			extra += fmt.Sprintf(", %d partial rows", s.Profile.AggPartials)
		}
		add("shard %d band %d: %.1f ms, %d chunks scanned, %d pruned, %d cache hits, %d bytes%s",
			s.Shard, s.Band, s.LatencyMS, s.Profile.ChunksScanned,
			s.Profile.ChunksPrunedZone+s.Profile.ChunksPrunedBloom,
			s.Profile.CacheHits, s.Profile.InflatedBytes, extra)
	}
	return lines
}

type unknownTableError struct{ name string }

func (e *unknownTableError) Error() string { return "tasks: unknown table " + e.name }

type fwProvider struct {
	f      Framework
	name   string
	schema *telco.Schema
}

func (p fwProvider) Schema() *telco.Schema { return p.schema }

// allTime is the scan window when the executor derived no ts bounds.
var allTime = telco.TimeRange{
	From: time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC),
	To:   time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC),
}

func (p fwProvider) Scan(ctx context.Context, hint sqlengine.ScanHint, fn func(telco.Record) error) error {
	w := allTime
	if hint.Constrained {
		w = hint.Window
	}
	emit := func(_ string, tab *telco.Table) error {
		for _, r := range tab.Rows {
			if err := fn(r); err != nil {
				return err
			}
		}
		return nil
	}
	if hint.Spec != nil {
		if ss, ok := p.f.(SpecScanner); ok {
			return ss.ScanSpec(ctx, w, []string{p.name}, hint.Spec, emit)
		}
	}
	return p.f.Scan(ctx, w, []string{p.name}, emit)
}

// aggProvider is the provider returned for pushdown-capable frameworks: it
// additionally satisfies sqlengine.Aggregator, answering whole aggregate
// queries from storage-side partials.
type aggProvider struct {
	fwProvider
	agg PartialAggregator
}

func (p aggProvider) Aggregate(ctx context.Context, hint sqlengine.ScanHint, spec *scanspec.Spec) ([]scanspec.Partial, error) {
	w := allTime
	if hint.Constrained {
		w = hint.Window
	}
	return p.agg.AggregatePartials(ctx, w, p.name, spec)
}

// --- SPATE adapter ---

// Spate wraps a core.Engine as a Framework.
type Spate struct{ E *core.Engine }

// Name implements Framework.
func (Spate) Name() string { return "SPATE" }

// Ingest implements Framework.
func (s Spate) Ingest(sn *snapshot.Snapshot) (IngestStats, error) {
	rep, err := s.E.Ingest(sn)
	return IngestStats{Epoch: sn.Epoch, Rows: rep.Rows, Total: rep.Total}, err
}

// Finish implements Framework.
func (s Spate) Finish() { s.E.FinishIngest() }

// Scan implements Framework.
func (s Spate) Scan(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	return s.E.ScanTablesContext(ctx, w, tables, fn)
}

// ScanSpec implements SpecScanner: v3 leaves decode only the spec's
// referenced column streams and pre-filter rows on its predicates.
func (s Spate) ScanSpec(ctx context.Context, w telco.TimeRange, tables []string, spec *scanspec.Spec, fn func(string, *telco.Table) error) error {
	return s.E.ScanTablesSpec(ctx, w, tables, spec, fn)
}

// AggregatePartials implements PartialAggregator: simple aggregates fold
// chunk-side, answering zone-decidable chunks without decoding any column.
func (s Spate) AggregatePartials(ctx context.Context, w telco.TimeRange, table string, spec *scanspec.Spec) ([]scanspec.Partial, error) {
	return s.E.AggregatePartials(ctx, w, table, spec)
}

// Space implements Framework.
func (s Spate) Space() (int64, int64) {
	sp := s.E.Space()
	return sp.CompBytes, sp.SummaryBytes
}

// --- SHAHED adapter ---

// Shahed wraps a shahed.Store as a Framework.
type Shahed struct{ S *shahed.Store }

// Name implements Framework.
func (Shahed) Name() string { return "SHAHED" }

// Ingest implements Framework.
func (s Shahed) Ingest(sn *snapshot.Snapshot) (IngestStats, error) {
	rep, err := s.S.Ingest(sn)
	return IngestStats{Epoch: sn.Epoch, Rows: rep.Rows, Total: rep.Total}, err
}

// Finish implements Framework.
func (s Shahed) Finish() { s.S.FinishIngest() }

// Scan implements Framework. The SHAHED store has no context plumbing;
// cancellation is checked once up front.
func (s Shahed) Scan(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return s.S.Scan(w, tables, fn)
}

// Space implements Framework.
func (s Shahed) Space() (int64, int64) {
	return s.S.Space()
}

// --- RAW adapter ---

// Raw wraps a raw.Store as a Framework.
type Raw struct{ S *raw.Store }

// Name implements Framework.
func (Raw) Name() string { return "RAW" }

// Ingest implements Framework.
func (r Raw) Ingest(sn *snapshot.Snapshot) (IngestStats, error) {
	rep, err := r.S.Ingest(sn)
	return IngestStats{Epoch: sn.Epoch, Rows: rep.Rows, Total: rep.Total}, err
}

// Finish implements Framework.
func (Raw) Finish() {}

// Scan implements Framework. The RAW store has no context plumbing;
// cancellation is checked once up front.
func (r Raw) Scan(ctx context.Context, w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.S.Scan(w, tables, fn)
}

// Space implements Framework.
func (r Raw) Space() (int64, int64) {
	return r.S.Space(), 0
}
