package tasks

import (
	"reflect"
	"testing"
	"time"

	"spate/internal/compute"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/privacy"
	"spate/internal/raw"
	"spate/internal/shahed"
	"spate/internal/snapshot"
	"spate/internal/telco"

	_ "spate/internal/compress/all"
)

// world builds all three frameworks over the same generated trace.
type world struct {
	g    *gen.Generator
	cfg  gen.Config
	fws  []Framework
	pool *compute.Pool
}

func newWorld(t *testing.T, epochs int) *world {
	t.Helper()
	cfg := gen.DefaultConfig(0.003)
	cfg.Antennas = 25
	cfg.Users = 200
	cfg.CDRPerEpoch = 80
	cfg.NMSReportsPerCell = 0.6
	g := gen.New(cfg)

	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(fs, g.CellTable(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shahed.Open(fs, g.CellTable())
	if err != nil {
		t.Fatal(err)
	}
	rw, err := raw.Open(fs, g.CellTable())
	if err != nil {
		t.Fatal(err)
	}
	w := &world{g: g, cfg: cfg, pool: compute.NewPool(2),
		fws: []Framework{Raw{rw}, Shahed{sh}, Spate{eng}}}

	e0 := telco.EpochOf(cfg.Start)
	for i := 0; i < epochs; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		for _, f := range w.fws {
			if _, err := f.Ingest(cloneSnapshot(sn)); err != nil {
				t.Fatalf("%s: %v", f.Name(), err)
			}
		}
	}
	for _, f := range w.fws {
		f.Finish()
	}
	return w
}

// cloneSnapshot lets each framework consume its own snapshot instance.
func cloneSnapshot(s *snapshot.Snapshot) *snapshot.Snapshot {
	out := snapshot.New(s.Epoch)
	for _, name := range s.TableNames() {
		out.Add(s.Table(name))
	}
	return out
}

func (w *world) window(hours int) telco.TimeRange {
	return telco.NewTimeRange(w.cfg.Start, w.cfg.Start.Add(time.Duration(hours)*time.Hour))
}

func TestT1SameAnswerAcrossFrameworks(t *testing.T) {
	w := newWorld(t, 3)
	e := telco.EpochOf(w.cfg.Start) + 1
	var prints [][]string
	for _, f := range w.fws {
		rs, err := T1Equality(f, e)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if len(rs.Rows) == 0 {
			t.Fatalf("%s: empty T1 result", f.Name())
		}
		prints = append(prints, ResultFingerprint(rs))
	}
	if !reflect.DeepEqual(prints[0], prints[1]) || !reflect.DeepEqual(prints[1], prints[2]) {
		t.Error("frameworks disagree on T1")
	}
}

func TestT2SameAnswerAcrossFrameworks(t *testing.T) {
	w := newWorld(t, 4)
	var prints [][]string
	for _, f := range w.fws {
		rs, err := T2Range(f, w.window(1))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		prints = append(prints, ResultFingerprint(rs))
	}
	if !reflect.DeepEqual(prints[0], prints[1]) || !reflect.DeepEqual(prints[1], prints[2]) {
		t.Error("frameworks disagree on T2")
	}
}

func TestT3DropRatesAgree(t *testing.T) {
	w := newWorld(t, 3)
	var prints [][]string
	for _, f := range w.fws {
		rs, err := T3Aggregate(f, w.window(1))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if len(rs.Cols) != 4 || rs.Cols[3] != "drop_rate" {
			t.Fatalf("%s: cols = %v", f.Name(), rs.Cols)
		}
		if len(rs.Rows) == 0 {
			t.Fatalf("%s: no groups", f.Name())
		}
		prints = append(prints, ResultFingerprint(rs))
	}
	if !reflect.DeepEqual(prints[0], prints[2]) {
		t.Error("frameworks disagree on T3")
	}
}

func TestT4MoversAgree(t *testing.T) {
	w := newWorld(t, 2)
	var prints [][]string
	for _, f := range w.fws {
		rs, err := T4Join(f, w.window(1))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		prints = append(prints, ResultFingerprint(rs))
	}
	if !reflect.DeepEqual(prints[0], prints[2]) {
		t.Error("frameworks disagree on T4")
	}
	// The generator roams 20% of calls, so movers exist.
	if len(prints[0]) == 0 {
		t.Error("no movers found")
	}
}

func TestT5PrivacyHoldsAcrossFrameworks(t *testing.T) {
	w := newWorld(t, 2)
	const k = 4
	for _, f := range w.fws {
		anon, rep, err := T5Privacy(f, w.window(1), k)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if rep.ReleasedRows == 0 {
			t.Fatalf("%s: everything suppressed", f.Name())
		}
		min, err := privacy.VerifyK(anon, []string{telco.AttrCaller, telco.AttrCellID, telco.AttrDuration})
		if err != nil {
			t.Fatal(err)
		}
		if min < k {
			t.Errorf("%s: k-anonymity violated: min class %d", f.Name(), min)
		}
	}
}

func TestT6StatisticsAgree(t *testing.T) {
	w := newWorld(t, 2)
	var all [][]float64
	for _, f := range w.fws {
		st, err := T6Statistics(f, w.pool, w.window(1))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if len(st) != 3 {
			t.Fatalf("%s: %d columns", f.Name(), len(st))
		}
		row := []float64{st[0].Mean, st[0].Max, float64(st[0].Count), st[2].Mean}
		all = append(all, row)
	}
	if !reflect.DeepEqual(all[0], all[1]) || !reflect.DeepEqual(all[1], all[2]) {
		t.Errorf("frameworks disagree on T6: %v", all)
	}
}

func TestT7ClusteringRuns(t *testing.T) {
	w := newWorld(t, 2)
	for _, f := range w.fws {
		res, err := T7Clustering(f, w.pool, w.window(1), 4)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if len(res.Centers) != 4 || res.Iterations == 0 {
			t.Errorf("%s: result = %d centers, %d iters", f.Name(), len(res.Centers), res.Iterations)
		}
	}
}

func TestT8RegressionRuns(t *testing.T) {
	w := newWorld(t, 2)
	var intercepts []float64
	for _, f := range w.fws {
		m, err := T8Regression(f, w.pool, w.window(1))
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if len(m.Coef) != 4 {
			t.Fatalf("%s: coef = %v", f.Name(), m.Coef)
		}
		intercepts = append(intercepts, m.Intercept)
	}
	if intercepts[0] != intercepts[1] || intercepts[1] != intercepts[2] {
		t.Errorf("frameworks disagree on T8: %v", intercepts)
	}
}

func TestSpaceOrderingMatchesPaper(t *testing.T) {
	// §VIII-C: SPATE 0.49GB vs SHAHED 5.37GB vs RAW 5.32GB — SPATE needs
	// several times less storage; SHAHED slightly above RAW (index).
	w := newWorld(t, 4)
	data := map[string]int64{}
	idx := map[string]int64{}
	for _, f := range w.fws {
		d, i := f.Space()
		data[f.Name()] = d
		idx[f.Name()] = i
		if d == 0 {
			t.Fatalf("%s: zero data bytes", f.Name())
		}
	}
	// Compressed data is several times smaller than the uncompressed
	// baselines (at trace scale the full-system gap reaches ~10x, Fig. 8).
	if data["SPATE"]*3 > data["RAW"] {
		t.Errorf("SPATE %d not well below RAW %d", data["SPATE"], data["RAW"])
	}
	if data["SHAHED"] < data["RAW"] {
		t.Errorf("SHAHED %d below RAW %d", data["SHAHED"], data["RAW"])
	}
	// Both index-bearing frameworks report an index footprint.
	if idx["SPATE"] == 0 || idx["SHAHED"] == 0 {
		t.Errorf("index bytes: SPATE=%d SHAHED=%d", idx["SPATE"], idx["SHAHED"])
	}
}

func TestCatalogUnknownTable(t *testing.T) {
	w := newWorld(t, 1)
	if _, err := Catalog(w.fws[0]).Table("NOPE"); err == nil {
		t.Error("unknown table accepted")
	}
}
