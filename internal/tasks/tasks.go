package tasks

import (
	"context"
	"fmt"
	"sort"

	"spate/internal/compute"
	"spate/internal/compute/ml"
	"spate/internal/privacy"
	"spate/internal/sqlengine"
	"spate/internal/telco"
)

// T1Equality retrieves the download and upload bytes for one requested
// snapshot, e.g. SELECT upflux, downflux FROM CDR WHERE ts='201601221530'
// (paper task T1). The literal selects the epoch containing it.
func T1Equality(f Framework, e telco.Epoch) (*sqlengine.ResultSet, error) {
	// A minute-resolution literal at the epoch boundary selects the first
	// minute; use the epoch's containment semantics via a range instead so
	// the whole 30-minute snapshot is retrieved, as the task intends.
	sql := fmt.Sprintf(
		`SELECT upflux, downflux FROM CDR WHERE ts >= '%s' AND ts < '%s'`,
		e.Start().Format(telco.TimeLayout), e.End().Format(telco.TimeLayout))
	return sqlengine.NewEngine(Catalog(f)).Query(sql)
}

// T2Range retrieves the download and upload bytes for a time window,
// e.g. SELECT upflux, downflux FROM CDR WHERE ts>='2015' AND ts<='2016'
// (paper task T2).
func T2Range(f Framework, w telco.TimeRange) (*sqlengine.ResultSet, error) {
	sql := fmt.Sprintf(
		`SELECT upflux, downflux FROM CDR WHERE ts >= '%s' AND ts < '%s'`,
		w.From.Format(telco.TimeLayout), w.To.Format(telco.TimeLayout))
	return sqlengine.NewEngine(Catalog(f)).Query(sql)
}

// T3Aggregate retrieves the NMS drop-call counters per cell tower and
// computes each cell's drop-call rate: SELECT cellid, SUM(val) FROM NMS
// WHERE ... GROUP BY cellid (paper task T3).
func T3Aggregate(f Framework, w telco.TimeRange) (*sqlengine.ResultSet, error) {
	sql := fmt.Sprintf(
		`SELECT cell_id, SUM(drop_calls) AS drops, SUM(call_attempts) AS attempts
		 FROM NMS WHERE ts >= '%s' AND ts < '%s'
		 GROUP BY cell_id ORDER BY cell_id`,
		w.From.Format(telco.TimeLayout), w.To.Format(telco.TimeLayout))
	rs, err := sqlengine.NewEngine(Catalog(f)).Query(sql)
	if err != nil {
		return nil, err
	}
	// Derive the drop rate column client-side (drops/attempts).
	rs.Cols = append(rs.Cols, "drop_rate")
	for i, r := range rs.Rows {
		drops, attempts := r[1].Float64(), r[2].Float64()
		rate := 0.0
		if attempts > 0 {
			rate = drops / attempts
		}
		rs.Rows[i] = append(r, telco.Float(rate))
	}
	return rs, nil
}

// T4Join self-joins CDR to identify subscribers that changed location
// (appear at two different cell towers) within the window (paper task T4).
func T4Join(f Framework, w telco.TimeRange) (*sqlengine.ResultSet, error) {
	sql := fmt.Sprintf(
		`SELECT DISTINCT a.caller FROM CDR a JOIN CDR b ON a.caller = b.caller
		 WHERE a.cell_id != b.cell_id
		   AND a.ts >= '%s' AND a.ts < '%s'
		   AND b.ts >= '%s' AND b.ts < '%s'
		 ORDER BY a.caller`,
		w.From.Format(telco.TimeLayout), w.To.Format(telco.TimeLayout),
		w.From.Format(telco.TimeLayout), w.To.Format(telco.TimeLayout))
	return sqlengine.NewEngine(Catalog(f)).Query(sql)
}

// T5Privacy retrieves the window's CDR records and releases a
// k-anonymized version (paper task T5, the ARX role).
func T5Privacy(f Framework, w telco.TimeRange, k int) (*telco.Table, privacy.Report, error) {
	var all *telco.Table
	err := f.Scan(context.Background(), w, []string{"CDR"}, func(_ string, tab *telco.Table) error {
		if all == nil {
			all = telco.NewTable(tab.Schema)
		}
		all.Rows = append(all.Rows, tab.Rows...)
		return nil
	})
	if err != nil {
		return nil, privacy.Report{}, err
	}
	if all == nil {
		return nil, privacy.Report{}, fmt.Errorf("tasks: no CDR data in window")
	}
	return privacy.Anonymize(all, privacy.Options{
		K:                k,
		QuasiIdentifiers: []string{telco.AttrCaller, telco.AttrCellID, telco.AttrDuration},
	})
}

// cdrFeatures extracts the numeric CDR feature matrix used by the heavy
// tasks: duration, upflux, downflux.
func cdrFeatures(f Framework, w telco.TimeRange) ([][]float64, error) {
	var rows [][]float64
	err := f.Scan(context.Background(), w, []string{"CDR"}, func(_ string, tab *telco.Table) error {
		di := tab.Schema.FieldIndex(telco.AttrDuration)
		ui := tab.Schema.FieldIndex(telco.AttrUpflux)
		wi := tab.Schema.FieldIndex(telco.AttrDownflux)
		for _, r := range tab.Rows {
			rows = append(rows, []float64{
				r[di].Float64(), r[ui].Float64(), r[wi].Float64(),
			})
		}
		return nil
	})
	return rows, err
}

// nmsFeatures extracts the NMS feature matrix: drop_calls, call_attempts,
// rssi_dbm, avg_duration plus the throughput target.
func nmsFeatures(f Framework, w telco.TimeRange) (xs [][]float64, ys []float64, err error) {
	err = f.Scan(context.Background(), w, []string{"NMS"}, func(_ string, tab *telco.Table) error {
		di := tab.Schema.FieldIndex("drop_calls")
		ai := tab.Schema.FieldIndex("call_attempts")
		ri := tab.Schema.FieldIndex("rssi_dbm")
		vi := tab.Schema.FieldIndex("avg_duration")
		ti := tab.Schema.FieldIndex("throughput_kbps")
		for _, r := range tab.Rows {
			xs = append(xs, []float64{
				r[di].Float64(), r[ai].Float64(), r[ri].Float64(), r[vi].Float64(),
			})
			ys = append(ys, r[ti].Float64())
		}
		return nil
	})
	return xs, ys, err
}

// T6Statistics computes the column-wise max, min, mean, variance, number
// of non-zeros and total count over the window's CDR features with the
// parallel compute substrate (paper task T6, Spark's colStats).
func T6Statistics(f Framework, pool *compute.Pool, w telco.TimeRange) ([]ml.ColStats, error) {
	rows, err := cdrFeatures(f, w)
	if err != nil {
		return nil, err
	}
	return ml.ColStatsOf(pool, rows)
}

// T7Clustering clusters the window's snapshots with k-means over CDR
// features (paper task T7).
func T7Clustering(f Framework, pool *compute.Pool, w telco.TimeRange, k int) (*ml.KMeansResult, error) {
	rows, err := cdrFeatures(f, w)
	if err != nil {
		return nil, err
	}
	return ml.KMeans(pool, rows, k, 20)
}

// T8Regression fits a linear model over the window's NMS counters —
// throughput as a function of drops, attempts, signal and duration (paper
// task T8, Spark's regression.LinearRegression).
func T8Regression(f Framework, pool *compute.Pool, w telco.TimeRange) (*ml.LinReg, error) {
	xs, ys, err := nmsFeatures(f, w)
	if err != nil {
		return nil, err
	}
	return ml.LinearRegression(pool, xs, ys)
}

// ResultFingerprint canonicalizes a result set for cross-framework
// equivalence checks: sorted formatted rows.
func ResultFingerprint(rs *sqlengine.ResultSet) []string {
	out := make([]string, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		line := ""
		for i, v := range r {
			if i > 0 {
				line += "|"
			}
			line += v.Format()
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}
