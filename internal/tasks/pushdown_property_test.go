package tasks

import (
	"context"
	"fmt"
	"testing"
	"time"

	"spate/internal/cluster"
	"spate/internal/core"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/sqlengine"
)

// pushdownPropertyQueries is the battery for the pushdown ≡ row-path
// property: aggregate statements the compiler answers from partials, and
// row statements whose spec pre-filters shard-side. Grouped statements
// carry ORDER BY on the group column and row statements select exactly
// their sort keys, so every engine's answer is bit-for-bit comparable.
func pushdownPropertyQueries(start time.Time) []string {
	t1 := start.Add(time.Hour).Format("200601021504")
	t2 := start.Add(3 * time.Hour).Format("200601021504")
	return []string{
		`SELECT COUNT(*) FROM CDR`,
		`SELECT COUNT(*), SUM(duration), MIN(duration), MAX(duration) FROM CDR`,
		`SELECT COUNT(caller) FROM CDR`,
		`SELECT SUM(upflux), SUM(downflux) FROM CDR WHERE call_type='DATA'`,
		fmt.Sprintf(`SELECT COUNT(*) FROM CDR WHERE duration>=60 AND ts>='%s' AND ts<'%s'`, t1, t2),
		fmt.Sprintf(`SELECT MIN(duration), MAX(duration) FROM CDR WHERE ts BETWEEN '%s' AND '%s'`, t1, t2),
		`SELECT COUNT(*) FROM CDR WHERE caller='nobody'`,
		`SELECT cell_id, COUNT(*) FROM CDR GROUP BY cell_id ORDER BY cell_id`,
		`SELECT cell_id, COUNT(*), SUM(duration) FROM CDR WHERE call_type='VOICE' GROUP BY cell_id ORDER BY cell_id LIMIT 5`,
		`SELECT call_type, COUNT(*) FROM CDR GROUP BY call_type ORDER BY call_type DESC`,
		`SELECT COUNT(*), SUM(drop_calls) FROM NMS`,
		`SELECT caller, ts, duration FROM CDR WHERE duration>=120 ORDER BY caller, ts, duration LIMIT 40`,
		fmt.Sprintf(`SELECT caller, ts FROM CDR WHERE ts>='%s' AND ts<'%s' AND call_type='SMS' ORDER BY caller, ts`, t1, t2),
	}
}

func assertSameResultSet(t *testing.T, q, label string, got, want *sqlengine.ResultSet) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s [%s]: cols %v, want %v", q, label, got.Cols, want.Cols)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s [%s]: %d rows, want %d", q, label, len(got.Rows), len(want.Rows))
	}
	for r := range got.Rows {
		for c := range got.Rows[r] {
			g, w := got.Rows[r][c], want.Rows[r][c]
			if g.IsNull() != w.IsNull() || g.Kind() != w.Kind() || g.Format() != w.Format() {
				t.Errorf("%s [%s]: row %d col %d = %q, want %q", q, label, r, c, g.Format(), w.Format())
			}
		}
	}
}

// TestPushdownEquivalenceSingleEngine is the single-engine half of the
// property: every query answers identically with pushdown on (partial
// aggregates, spec-filtered column scans) and off (full row
// materialization through the unchanged scan path).
func TestPushdownEquivalenceSingleEngine(t *testing.T) {
	eng, _, _ := spateWorld(t, 8)
	start := gen.DefaultConfig(0.003).Start
	cat := Catalog(Spate{E: eng})
	fast := sqlengine.NewEngine(cat)
	slow := sqlengine.NewEngine(cat)
	slow.DisablePushdown = true
	for _, q := range pushdownPropertyQueries(start) {
		got, err := fast.Query(q)
		if err != nil {
			t.Fatalf("%s (pushdown): %v", q, err)
		}
		want, err := slow.Query(q)
		if err != nil {
			t.Fatalf("%s (row path): %v", q, err)
		}
		assertSameResultSet(t, q, "single", got, want)
	}
}

// TestPushdownDecodesOnlyRequiredColumns pins the tentpole's core win: a
// pushed-down aggregate touching two of CDR's columns must leave the
// other column streams undecoded.
func TestPushdownDecodesOnlyRequiredColumns(t *testing.T) {
	eng, _, _ := spateWorld(t, 4)
	sql := sqlengine.NewEngine(Catalog(Spate{E: eng}))
	ctx, prof := core.ContextWithProfile(context.Background())
	if _, err := sql.QueryContext(ctx, `SELECT SUM(duration) FROM CDR`); err != nil {
		t.Fatal(err)
	}
	if prof.AggPartials == 0 {
		t.Fatalf("aggregate did not push down: %+v", prof)
	}
	if prof.ColumnsDecoded == 0 && prof.ChunksAggMeta == 0 {
		t.Fatalf("no columnar work recorded: %+v", prof)
	}
	// CDR has 7 columns and the query references 2 (ts, duration), so the
	// skipped stream count must dominate the decoded one.
	if prof.ColumnsSkipped <= prof.ColumnsDecoded {
		t.Fatalf("columns decoded %d, skipped %d — non-required columns were decoded",
			prof.ColumnsDecoded, prof.ColumnsSkipped)
	}
}

// TestPushdownEquivalenceCluster is the sharded half of the property: a
// 4-shard cluster ingesting the same snapshots must answer the whole
// battery bit-for-bit identically to the single engine, with partial
// aggregates merged coordinator-side.
func TestPushdownEquivalenceCluster(t *testing.T) {
	eng, g, snaps := spateWorld(t, 8)
	lc, err := cluster.StartLocal(
		cluster.Config{Shards: 4, Obs: obs.NewRegistry(), Tracer: obs.NewTracer(16)},
		g.CellTable(),
		cluster.LocalOptions{Dir: t.TempDir(), Engine: core.Options{Obs: obs.NewRegistry(), Tracer: obs.NewTracer(64)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	ctx := context.Background()
	for _, sn := range snaps {
		if err := lc.Coordinator.Ingest(ctx, sn); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.Coordinator.FinishIngest(ctx); err != nil {
		t.Fatal(err)
	}
	start := gen.DefaultConfig(0.003).Start
	single := sqlengine.NewEngine(Catalog(Spate{E: eng}))
	clustered := sqlengine.NewEngine(Catalog(Cluster{C: lc.Coordinator}))
	for _, q := range pushdownPropertyQueries(start) {
		want, err := single.Query(q)
		if err != nil {
			t.Fatalf("%s (single): %v", q, err)
		}
		got, err := clustered.Query(q)
		if err != nil {
			t.Fatalf("%s (cluster): %v", q, err)
		}
		assertSameResultSet(t, q, "cluster", got, want)
	}
}
