package tasks

import (
	"context"
	"strings"
	"testing"
	"time"

	"spate/internal/cluster"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/sqlengine"
	"spate/internal/telco"
)

// spateWorld builds one SPATE engine over a short generated trace and
// returns it with the snapshots, so a cluster can ingest identical input.
func spateWorld(t *testing.T, epochs int) (*core.Engine, *gen.Generator, []*snapshot.Snapshot) {
	t.Helper()
	cfg := gen.DefaultConfig(0.003)
	cfg.Antennas = 20
	cfg.Users = 150
	cfg.CDRPerEpoch = 60
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 2, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(fs, g.CellTable(), core.Options{Obs: obs.NewRegistry(), Tracer: obs.NewTracer(16)})
	if err != nil {
		t.Fatal(err)
	}
	e0 := telco.EpochOf(cfg.Start)
	snaps := make([]*snapshot.Snapshot, 0, epochs)
	for i := 0; i < epochs; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		if _, err := eng.Ingest(sn); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, sn)
	}
	eng.FinishIngest()
	return eng, g, snaps
}

// TestExplainAnalyzeSpateProfile runs EXPLAIN ANALYZE through the SPATE
// framework catalog: the report must carry the storage profile lines the
// engine accrued — leaves, chunks, cache, DFS.
func TestExplainAnalyzeSpateProfile(t *testing.T) {
	eng, _, _ := spateWorld(t, 4)
	sql := sqlengine.NewEngine(Catalog(Spate{E: eng}))
	start := telco.EpochOf(gen.DefaultConfig(0.003).Start).Start()
	q := `EXPLAIN ANALYZE SELECT COUNT(*) FROM CDR WHERE ts >= '` +
		start.Format("200601021504") + `' AND ts < '` +
		start.Add(time.Hour).Format("200601021504") + `'`
	rs, err := sql.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range rs.Rows {
		got = append(got, r[0].Format())
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{"SCAN CDR [ts pushdown", "rows: 1", "leaves: ", "chunks: ", "chunk cache: ", "dfs: "} {
		if !strings.Contains(joined, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, joined)
		}
	}
	// The storage numbers must be real: at least one leaf scanned.
	var sawWork bool
	for _, ln := range got {
		if strings.HasPrefix(ln, "leaves: ") && !strings.HasPrefix(ln, "leaves: 0 ") {
			sawWork = true
		}
	}
	if !sawWork {
		t.Errorf("profile reports no leaf scans:\n%s", joined)
	}
}

// TestSQLOverCluster runs the same query through a single engine and a
// 2-shard cluster catalog: row answers must agree, and EXPLAIN ANALYZE over
// the cluster must carry per-shard profile lines.
func TestSQLOverCluster(t *testing.T) {
	eng, g, snaps := spateWorld(t, 2*telco.EpochsPerDay)
	lc, err := cluster.StartLocal(
		cluster.Config{Shards: 2, Obs: obs.NewRegistry(), Tracer: obs.NewTracer(16)},
		g.CellTable(),
		cluster.LocalOptions{Dir: t.TempDir(), Engine: core.Options{Obs: obs.NewRegistry(), Tracer: obs.NewTracer(64)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	ctx := context.Background()
	for _, sn := range snaps {
		if err := lc.Coordinator.Ingest(ctx, sn); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.Coordinator.FinishIngest(ctx); err != nil {
		t.Fatal(err)
	}

	q := `SELECT COUNT(*) FROM CDR`
	single, err := sqlengine.NewEngine(Catalog(Spate{E: eng})).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	csql := sqlengine.NewEngine(Catalog(Cluster{C: lc.Coordinator}))
	clustered, err := csql.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	sv := single.Rows[0][0].Int64()
	cv := clustered.Rows[0][0].Int64()
	if sv == 0 || sv != cv {
		t.Fatalf("COUNT over cluster = %d, single engine = %d", cv, sv)
	}

	rs, err := csql.Query(`EXPLAIN ANALYZE ` + q)
	if err != nil {
		t.Fatal(err)
	}
	var joined strings.Builder
	for _, r := range rs.Rows {
		joined.WriteString(r[0].Format())
		joined.WriteString("\n")
	}
	out := joined.String()
	if !strings.Contains(out, "shard 0 band 0: ") || !strings.Contains(out, "shard 1 band 0: ") {
		t.Errorf("cluster EXPLAIN ANALYZE missing per-shard lines:\n%s", out)
	}
}
