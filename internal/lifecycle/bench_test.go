package lifecycle_test

import (
	"testing"
	"time"

	"spate/internal/core"
	"spate/internal/decay"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/lifecycle"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// benchRig builds an engine with n ingested epochs for maintenance
// benchmarks, outside the timed region.
func benchRig(b *testing.B, opts core.Options, epochs int) (*lifecycle.Manager, *core.Engine) {
	b.Helper()
	cfg := gen.DefaultConfig(0.004)
	cfg.Antennas = 30
	cfg.Users = 300
	cfg.CDRPerEpoch = 120
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(b.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
	if err != nil {
		b.Fatal(err)
	}
	e, err := core.Open(fs, g.CellTable(), opts)
	if err != nil {
		b.Fatal(err)
	}
	e0 := telco.EpochOf(cfg.Start)
	for i := 0; i < epochs; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(g.CDRTable(s.Epoch))
		s.Add(g.NMSTable(s.Epoch))
		if _, err := e.Ingest(s); err != nil {
			b.Fatal(err)
		}
	}
	m := lifecycle.New(e, lifecycle.Config{Obs: obs.NewNoop()})
	b.Cleanup(m.Close)
	return m, e
}

// BenchmarkLifecycleScrub measures one full cluster scrub — checksum every
// replica of every block — on a healthy store.
func BenchmarkLifecycleScrub(b *testing.B) {
	m, _ := benchRig(b, core.Options{}, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Trigger(lifecycle.JobScrub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLifecycleCompactSweep measures a no-op compaction sweep over an
// already-chunked store: the steady-state cost of the scheduled job.
func BenchmarkLifecycleCompactSweep(b *testing.B) {
	m, _ := benchRig(b, core.Options{}, 6)
	if _, err := m.Trigger(lifecycle.JobCompact); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Trigger(lifecycle.JobCompact); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLifecycleDecaySweep measures a decay sweep that finds nothing to
// age out — the common scheduled case between policy horizons.
func BenchmarkLifecycleDecaySweep(b *testing.B) {
	m, _ := benchRig(b, core.Options{Policy: decay.Policy{KeepRaw: 100000 * time.Hour}}, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Trigger(lifecycle.JobDecay); err != nil {
			b.Fatal(err)
		}
	}
}
