package lifecycle_test

import (
	"strings"
	"testing"
	"time"

	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/decay"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/lifecycle"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// rig is a generated world, an engine over a temp DFS, and the pieces a
// lifecycle test needs to fault and inspect it.
type rig struct {
	g   *gen.Generator
	e   *core.Engine
	fs  *dfs.Cluster
	cfg gen.Config
}

func newRig(t *testing.T, opts core.Options) *rig {
	t.Helper()
	cfg := gen.DefaultConfig(0.004)
	cfg.Antennas = 30
	cfg.Users = 300
	cfg.CDRPerEpoch = 120
	cfg.NMSReportsPerCell = 0.8
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 3, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.Open(fs, g.CellTable(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{g: g, e: e, fs: fs, cfg: cfg}
}

func (r *rig) ingestEpochs(t *testing.T, n int) {
	t.Helper()
	e0 := telco.EpochOf(r.cfg.Start)
	for i := 0; i < n; i++ {
		s := snapshot.New(e0 + telco.Epoch(i))
		s.Add(r.g.CDRTable(s.Epoch))
		s.Add(r.g.NMSTable(s.Epoch))
		if _, err := r.e.Ingest(s); err != nil {
			t.Fatal(err)
		}
	}
}

func jobStatus(st lifecycle.Status, name string) lifecycle.JobStatus {
	for _, j := range st.Jobs {
		if j.Name == name {
			return j
		}
	}
	return lifecycle.JobStatus{}
}

// TestScheduledDecayRuns is the scheduler acceptance: a manager with a
// decay interval performs sweeps on its own clock (against an injected
// "months later" now) and records what each sweep did.
func TestScheduledDecayRuns(t *testing.T) {
	r := newRig(t, core.Options{Policy: decay.Policy{KeepRaw: 2 * time.Hour}})
	r.ingestEpochs(t, 8) // 4 hours
	now := telco.EpochOf(r.cfg.Start).Start().Add(24 * time.Hour)

	m := lifecycle.New(r.e, lifecycle.Config{
		DecayInterval: 10 * time.Millisecond,
		Jitter:        -1, // deterministic cadence
		Now:           func() time.Time { return now },
		Obs:           obs.NewNoop(),
	})
	m.Start()
	defer m.Close()

	deadline := time.Now().Add(10 * time.Second)
	var js lifecycle.JobStatus
	for {
		js = jobStatus(m.Status(), lifecycle.JobDecay)
		if js.Runs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no scheduled decay run; status %+v", m.Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if js.LastRun == nil || js.LastRun.Err != "" {
		t.Fatalf("last run = %+v", js.LastRun)
	}
	if js.LastRun.Details["leaves_decayed"] == 0 || js.LastRun.Details["bytes_freed"] == 0 {
		t.Errorf("first sweep details = %v, want decayed leaves and freed bytes", js.LastRun.Details)
	}
	if st := r.e.Tree().Stats(); st.DecayedLeaves == 0 {
		t.Error("scheduler ran but no leaves decayed")
	}
	// Scrub and compact were configured without intervals: manual-only.
	if got := jobStatus(m.Status(), lifecycle.JobScrub).Interval; got != 0 {
		t.Errorf("scrub interval = %v, want 0", got)
	}
}

// TestScrubRestoresClusterHealth is the ISSUE acceptance path: with an
// injected corrupt replica AND a killed datanode, a triggered scrub
// quarantines the damage, restores full replication, and a follow-up
// explore answers exactly what it answered before the faults.
func TestScrubRestoresClusterHealth(t *testing.T) {
	r := newRig(t, core.Options{})
	r.ingestEpochs(t, 4)
	w := telco.NewTimeRange(r.cfg.Start, r.cfg.Start.Add(2*time.Hour))
	want, err := r.e.Explore(core.Query{Window: w, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}

	files := r.fs.List("/spate/data/")
	if len(files) == 0 {
		t.Fatal("no data files")
	}
	m := lifecycle.New(r.e, lifecycle.Config{Obs: obs.NewNoop()})

	// Round one: a corrupt replica. The scrub quarantines it and re-copies
	// from the healthy replica.
	corruptNode, err := r.fs.CorruptBlock(files[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := m.Trigger(lifecycle.JobScrub)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Details["corrupt_replicas"] != 1 {
		t.Errorf("scrub details = %v, want 1 corrupt replica", rec.Details)
	}
	if rec.Details["replicas_restored"] == 0 || rec.Details["unrecoverable"] != 0 {
		t.Errorf("scrub details = %v, want restored replicas and no unrecoverable blocks", rec.Details)
	}

	// Round two: a dead datanode. With full replication restored above, no
	// block can lose both copies, and the scrub re-replicates everything
	// the node held onto the survivors.
	if err := r.fs.KillNode((corruptNode + 1) % 3); err != nil {
		t.Fatal(err)
	}
	if r.fs.UnderReplicated() == 0 {
		t.Fatal("rig broken: killing a node left nothing under-replicated")
	}
	rec, err = m.Trigger(lifecycle.JobScrub)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Details["replicas_restored"] == 0 || rec.Details["unrecoverable"] != 0 {
		t.Errorf("scrub details = %v, want restored replicas and no unrecoverable blocks", rec.Details)
	}
	if n := r.fs.UnderReplicated(); n != 0 {
		t.Fatalf("%d blocks under-replicated after scrub", n)
	}

	r.e.ClearCache() // force the explore through repaired storage
	got, err := r.e.Explore(core.Query{Window: w, ExactRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary.Rows != want.Summary.Rows {
		t.Errorf("post-repair rows = %d, want %d", got.Summary.Rows, want.Summary.Rows)
	}
	for name, wt := range want.Rows {
		if gt := got.Rows[name]; gt == nil || gt.Len() != wt.Len() {
			t.Errorf("%s: row count changed across repair", name)
		}
	}
}

// TestTriggerCompactConvertsBlobs drives the compactor through the manager
// and checks the run record the UI will render.
func TestTriggerCompactConvertsBlobs(t *testing.T) {
	r := newRig(t, core.Options{ChunkSize: -1}) // legacy whole-blob leaves
	r.ingestEpochs(t, 3)
	m := lifecycle.New(r.e, lifecycle.Config{Obs: obs.NewNoop()})

	rec, err := m.Trigger(lifecycle.JobCompact)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Details["blobs_converted"] == 0 || rec.Details["leaves_rewritten"] != 3 {
		t.Fatalf("compact details = %v", rec.Details)
	}
	rec2, err := m.Trigger(lifecycle.JobCompact)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Details["leaves_rewritten"] != 0 {
		t.Errorf("second sweep rewrote %d leaves", rec2.Details["leaves_rewritten"])
	}
}

// TestPauseTriggerAndHistory covers the operator surface: pause gates the
// schedule but not Trigger, unknown jobs fail with the roster, the history
// ring stays bounded newest-first, and a closed manager refuses work.
func TestPauseTriggerAndHistory(t *testing.T) {
	r := newRig(t, core.Options{})
	r.ingestEpochs(t, 1)
	m := lifecycle.New(r.e, lifecycle.Config{History: 3, Obs: obs.NewNoop()})
	m.Start() // no intervals: nothing schedules, Start is harmless

	if _, err := m.Trigger("defrag"); err == nil || !strings.Contains(err.Error(), "defrag") {
		t.Fatalf("unknown job error = %v", err)
	}

	m.Pause()
	if !m.Status().Paused {
		t.Fatal("status not paused")
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Trigger(lifecycle.JobScrub); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Status()
	if js := jobStatus(st, lifecycle.JobScrub); js.Runs != 5 || js.Errors != 0 {
		t.Fatalf("scrub job status = %+v", js)
	}
	if len(st.History) != 3 {
		t.Fatalf("history holds %d records, want ring of 3", len(st.History))
	}
	for _, h := range st.History {
		if h.Job != lifecycle.JobScrub {
			t.Errorf("history entry for %q", h.Job)
		}
	}
	if !st.History[0].Start.After(st.History[2].Start) && st.History[0].Start != st.History[2].Start {
		t.Error("history not newest-first")
	}
	m.Resume()
	if m.Status().Paused {
		t.Fatal("resume did not lift pause")
	}

	m.Close()
	if _, err := m.Trigger(lifecycle.JobScrub); err == nil {
		t.Fatal("closed manager accepted a trigger")
	}
	m.Close() // idempotent
}
