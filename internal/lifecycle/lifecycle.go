// Package lifecycle is SPATE's background maintenance daemon — the first
// component of the system that acts on its own clock. A Manager supervises
// three job families over one engine:
//
//   - decay: runs the data fungus on a schedule with a per-run budget, so
//     the paper's storage objective O1 stays bounded over months of ingest
//     without an operator ever calling Engine.Decay.
//   - scrub: walks DFS blocks verifying replica checksums, quarantines
//     corrupt copies and restores the replication factor.
//   - compact: rewrites legacy whole-blob leaves into chunked segments and
//     merges undersized chunks, bit-for-bit query-equivalent.
//
// Each enabled job runs on its own jittered ticker (jitter keeps a fleet
// of shard nodes from scrubbing in lockstep), can be paused and resumed as
// a group, and can be triggered synchronously — the /api/lifecycle POST
// path. Every run lands in a bounded history ring with its duration,
// summary line and detail counters, and feeds the spate_lifecycle_*
// metrics. A panicking job is caught and recorded as a failed run; the
// scheduler survives.
package lifecycle

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"spate/internal/core"
	"spate/internal/obs"
)

// Config parameterizes a Manager. The zero value disables every job (each
// job runs only when its interval is positive).
type Config struct {
	// DecayInterval is the cadence of scheduled decay sweeps (0 disables).
	DecayInterval time.Duration
	// ScrubInterval is the cadence of DFS scrub + re-replication passes.
	ScrubInterval time.Duration
	// CompactInterval is the cadence of segment compaction sweeps.
	CompactInterval time.Duration
	// Jitter spreads each sleep uniformly into ±Jitter×interval (default
	// 0.1; negative disables). Keeps shard fleets from sweeping in phase.
	Jitter float64
	// DecayBudget bounds each scheduled decay sweep.
	DecayBudget core.DecayBudget
	// Compact bounds each compaction sweep.
	Compact core.CompactOptions
	// History is the number of run records retained (default 32).
	History int
	// Now supplies the decay instant (default time.Now) — tests inject a
	// fake clock to age data without sleeping.
	Now func() time.Time
	// Obs selects the metrics registry (default obs.Default).
	Obs *obs.Registry
	// Logf, when set, receives a one-line summary of every run (e.g.
	// log.Printf) — the operator-visible trail the server wires up.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.History <= 0 {
		c.History = 32
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
	if c.Jitter == 0 {
		c.Jitter = 0.1
	}
	return c
}

// RunRecord is one completed (or failed) job run.
type RunRecord struct {
	Job      string           `json:"job"`
	Start    time.Time        `json:"start"`
	Duration time.Duration    `json:"duration"`
	Summary  string           `json:"summary"`
	Err      string           `json:"error,omitempty"`
	Details  map[string]int64 `json:"details,omitempty"`
}

// JobStatus describes one job family in Status.
type JobStatus struct {
	Name     string        `json:"name"`
	Interval time.Duration `json:"interval"` // 0 = manual-only
	Runs     int64         `json:"runs"`
	Errors   int64         `json:"errors"`
	LastRun  *RunRecord    `json:"last_run,omitempty"`
}

// Status is the manager's observable state — the /api/lifecycle GET body.
type Status struct {
	Paused  bool        `json:"paused"`
	Jobs    []JobStatus `json:"jobs"`
	History []RunRecord `json:"history"`
}

// job is one supervised job family.
type job struct {
	name     string
	interval time.Duration
	run      func(ctx context.Context) (string, map[string]int64, error)

	runs   int64
	errors int64
	last   *RunRecord
}

// Manager supervises the background jobs of one engine.
type Manager struct {
	eng *core.Engine
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	met managerMetrics

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	paused  bool
	started bool
	closed  bool
	history []RunRecord // ring, newest last
	rng     *rand.Rand
}

type managerMetrics struct {
	runs    map[string]*obs.Counter
	errs    map[string]*obs.Counter
	seconds map[string]*obs.Histogram

	bytesFreed     *obs.Counter
	blocksRepaired *obs.Counter
	chunksMerged   *obs.Counter
}

// Jobs the manager knows, in display order.
const (
	JobDecay   = "decay"
	JobScrub   = "scrub"
	JobCompact = "compact"
)

// New builds a manager over eng. Jobs whose interval is zero never fire on
// their own but remain available to Trigger. Call Start to begin
// scheduling and Close to stop.
func New(eng *core.Engine, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		eng:    eng,
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	m.met = managerMetrics{
		runs:    make(map[string]*obs.Counter),
		errs:    make(map[string]*obs.Counter),
		seconds: make(map[string]*obs.Histogram),
		bytesFreed: cfg.Obs.Counter("spate_lifecycle_bytes_freed_total",
			"Compressed bytes reclaimed by scheduled decay."),
		blocksRepaired: cfg.Obs.Counter("spate_lifecycle_blocks_repaired_total",
			"DFS replicas restored by the scrubber."),
		chunksMerged: cfg.Obs.Counter("spate_lifecycle_chunks_merged_total",
			"Segment chunks merged away by the compactor."),
	}
	add := func(name string, interval time.Duration, run func(context.Context) (string, map[string]int64, error)) {
		m.jobs[name] = &job{name: name, interval: interval, run: run}
		m.order = append(m.order, name)
		m.met.runs[name] = cfg.Obs.Counter("spate_lifecycle_runs_total",
			"Completed lifecycle job runs by job.", "job", name)
		m.met.errs[name] = cfg.Obs.Counter("spate_lifecycle_errors_total",
			"Failed lifecycle job runs by job.", "job", name)
		m.met.seconds[name] = cfg.Obs.Histogram("spate_lifecycle_run_seconds",
			"Lifecycle job run duration by job.", nil, "job", name)
	}
	add(JobDecay, cfg.DecayInterval, m.runDecay)
	add(JobScrub, cfg.ScrubInterval, m.runScrub)
	add(JobCompact, cfg.CompactInterval, m.runCompact)
	return m
}

// Start launches one scheduler goroutine per job with a positive interval.
// Idempotent; a closed manager does not restart.
func (m *Manager) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.started || m.closed {
		return
	}
	m.started = true
	for _, name := range m.order {
		j := m.jobs[name]
		if j.interval <= 0 {
			continue
		}
		m.wg.Add(1)
		go m.schedule(j)
	}
}

// Close stops the schedulers and waits for in-flight runs to finish.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
}

// Pause suspends scheduled runs (a fire that lands while paused is
// skipped, not queued). Trigger still works — an operator can run a job by
// hand while the schedule is held.
func (m *Manager) Pause() {
	m.mu.Lock()
	m.paused = true
	m.mu.Unlock()
}

// Resume lifts a Pause.
func (m *Manager) Resume() {
	m.mu.Lock()
	m.paused = false
	m.mu.Unlock()
}

// Trigger runs the named job synchronously, regardless of pause state, and
// returns its record.
func (m *Manager) Trigger(name string) (RunRecord, error) {
	m.mu.Lock()
	j, ok := m.jobs[name]
	closed := m.closed
	m.mu.Unlock()
	if !ok {
		names := make([]string, 0, len(m.jobs))
		names = append(names, m.order...)
		sort.Strings(names)
		return RunRecord{}, fmt.Errorf("lifecycle: unknown job %q (have %v)", name, names)
	}
	if closed {
		return RunRecord{}, fmt.Errorf("lifecycle: manager closed")
	}
	rec := m.runJob(j)
	if rec.Err != "" {
		return rec, fmt.Errorf("lifecycle: %s: %s", name, rec.Err)
	}
	return rec, nil
}

// Status snapshots the manager's state, newest history first.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{Paused: m.paused}
	for _, name := range m.order {
		j := m.jobs[name]
		js := JobStatus{Name: j.name, Interval: j.interval, Runs: j.runs, Errors: j.errors}
		if j.last != nil {
			cp := *j.last
			js.LastRun = &cp
		}
		st.Jobs = append(st.Jobs, js)
	}
	st.History = make([]RunRecord, 0, len(m.history))
	for i := len(m.history) - 1; i >= 0; i-- {
		st.History = append(st.History, m.history[i])
	}
	return st
}

// schedule is one job's ticker loop.
func (m *Manager) schedule(j *job) {
	defer m.wg.Done()
	for {
		t := time.NewTimer(m.jittered(j.interval))
		select {
		case <-m.ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		m.mu.Lock()
		paused := m.paused
		m.mu.Unlock()
		if paused {
			continue
		}
		m.runJob(j)
	}
}

// jittered spreads an interval into [interval×(1−j), interval×(1+j)].
func (m *Manager) jittered(interval time.Duration) time.Duration {
	j := m.cfg.Jitter
	if j <= 0 {
		return interval
	}
	if j > 1 {
		j = 1
	}
	m.mu.Lock()
	f := 1 + (m.rng.Float64()*2-1)*j
	m.mu.Unlock()
	d := time.Duration(float64(interval) * f)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// runJob executes one run with panic supervision and records the result.
func (m *Manager) runJob(j *job) RunRecord {
	rec := RunRecord{Job: j.name, Start: time.Now()}
	func() {
		defer func() {
			if p := recover(); p != nil {
				rec.Err = fmt.Sprintf("panic: %v", p)
			}
		}()
		summary, details, err := j.run(m.ctx)
		rec.Summary, rec.Details = summary, details
		if err != nil {
			rec.Err = err.Error()
		}
	}()
	rec.Duration = time.Since(rec.Start)

	m.met.seconds[j.name].Observe(rec.Duration.Seconds())
	if rec.Err != "" {
		m.met.errs[j.name].Inc()
	} else {
		m.met.runs[j.name].Inc()
	}
	if m.cfg.Logf != nil {
		if rec.Err != "" {
			m.cfg.Logf("lifecycle: %s failed after %s: %s", j.name, rec.Duration.Round(time.Millisecond), rec.Err)
		} else {
			m.cfg.Logf("lifecycle: %s: %s (%s)", j.name, rec.Summary, rec.Duration.Round(time.Millisecond))
		}
	}

	m.mu.Lock()
	if rec.Err != "" {
		j.errors++
	} else {
		j.runs++
	}
	cp := rec
	j.last = &cp
	m.history = append(m.history, rec)
	if over := len(m.history) - m.cfg.History; over > 0 {
		m.history = append(m.history[:0], m.history[over:]...)
	}
	m.mu.Unlock()
	return rec
}

func (m *Manager) runDecay(context.Context) (string, map[string]int64, error) {
	rep, err := m.eng.DecayRun(m.cfg.Now(), m.cfg.DecayBudget)
	m.met.bytesFreed.Add(rep.BytesFreed)
	summary := fmt.Sprintf("%d leaves decayed, %d nodes pruned, %d bytes freed (%d/%d evictions applied)",
		rep.LeavesDecayed, rep.NodesPruned, rep.BytesFreed, rep.Applied, rep.Planned)
	if rep.Clamped {
		summary += " [budget clamped]"
	}
	details := map[string]int64{
		"leaves_decayed": int64(rep.LeavesDecayed),
		"nodes_pruned":   int64(rep.NodesPruned),
		"bytes_freed":    rep.BytesFreed,
		"refs_deleted":   int64(rep.RefsDeleted),
		"planned":        int64(rep.Planned),
		"applied":        int64(rep.Applied),
	}
	return summary, details, err
}

func (m *Manager) runScrub(context.Context) (string, map[string]int64, error) {
	res, err := m.eng.FS().Scrub()
	m.met.blocksRepaired.Add(int64(res.ReplicasRestored))
	summary := fmt.Sprintf("%d blocks checked, %d corrupt + %d missing replicas quarantined, %d replicas restored (%d bytes)",
		res.BlocksChecked, res.CorruptReplicas, res.MissingReplicas, res.ReplicasRestored, res.BytesRepaired)
	if res.UnrecoverableBlocks > 0 {
		summary += fmt.Sprintf(", %d blocks UNRECOVERABLE", res.UnrecoverableBlocks)
	}
	details := map[string]int64{
		"blocks_checked":    int64(res.BlocksChecked),
		"replicas_checked":  int64(res.ReplicasChecked),
		"corrupt_replicas":  int64(res.CorruptReplicas),
		"missing_replicas":  int64(res.MissingReplicas),
		"replicas_restored": int64(res.ReplicasRestored),
		"bytes_repaired":    res.BytesRepaired,
		"unrecoverable":     int64(res.UnrecoverableBlocks),
	}
	return summary, details, err
}

func (m *Manager) runCompact(ctx context.Context) (string, map[string]int64, error) {
	rep, err := m.eng.Compact(ctx, m.cfg.Compact)
	m.met.chunksMerged.Add(int64(rep.ChunksMerged))
	summary := fmt.Sprintf("%d/%d leaves rewritten (%d blobs converted, %d chunks merged), %d -> %d bytes",
		rep.LeavesRewritten, rep.LeavesExamined, rep.BlobsConverted, rep.ChunksMerged,
		rep.BytesBefore, rep.BytesAfter)
	details := map[string]int64{
		"leaves_examined":  int64(rep.LeavesExamined),
		"leaves_rewritten": int64(rep.LeavesRewritten),
		"blobs_converted":  int64(rep.BlobsConverted),
		"chunks_merged":    int64(rep.ChunksMerged),
		"bytes_before":     rep.BytesBefore,
		"bytes_after":      rep.BytesAfter,
	}
	return summary, details, err
}
