package telco

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Table is an in-memory batch of records under one schema — the unit in
// which telco data arrives ("a snapshot di can be seen as a table of records
// with a predefined set of attributes", paper §II-B).
type Table struct {
	Schema *Schema
	Rows   []Record
}

// NewTable returns an empty table for schema s.
func NewTable(s *Schema) *Table { return &Table{Schema: s} }

// Append adds a record to the table. The record length must match the
// schema; mismatches indicate a programming error and panic.
func (t *Table) Append(r Record) {
	if len(r) != t.Schema.NumFields() {
		panic(fmt.Sprintf("telco: append %d values to schema %q with %d fields",
			len(r), t.Schema.Name, t.Schema.NumFields()))
	}
	t.Rows = append(t.Rows, r)
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.Rows) }

// WriteText streams the table in its wire form: one delimiter-separated
// line per record, newline-terminated. This is the format RAW stores on the
// distributed file system and SPATE compresses.
func (t *Table) WriteText(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	var b strings.Builder
	for _, r := range t.Rows {
		b.Reset()
		r.EncodeLine(&b)
		b.WriteByte('\n')
		if _, err := bw.WriteString(b.String()); err != nil {
			return fmt.Errorf("telco: write table %q: %w", t.Schema.Name, err)
		}
	}
	return bw.Flush()
}

// Text renders the table to a string; mainly for small tables and tests.
func (t *Table) Text() string {
	var sb strings.Builder
	var b strings.Builder
	for _, r := range t.Rows {
		b.Reset()
		r.EncodeLine(&b)
		sb.WriteString(b.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ReadTable parses a wire-form stream into a table under schema s.
func ReadTable(s *Schema, r io.Reader) (*Table, error) {
	t := NewTable(s)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		rec, err := DecodeLine(s, sc.Text())
		if err != nil {
			return nil, fmt.Errorf("telco: line %d: %w", line, err)
		}
		t.Rows = append(t.Rows, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telco: read table %q: %w", s.Name, err)
	}
	return t, nil
}

// Column extracts the values of the named field across all rows.
// Unknown fields yield an all-null column.
func (t *Table) Column(name string) []Value {
	i := t.Schema.FieldIndex(name)
	out := make([]Value, len(t.Rows))
	if i < 0 {
		return out
	}
	for j, r := range t.Rows {
		out[j] = r[i]
	}
	return out
}
