package telco

import (
	"fmt"
	"strings"
)

// Field describes one attribute of a telco record.
type Field struct {
	Name string
	Kind Kind
	// Optional marks attributes that are frequently blank in real traces.
	// Such attributes drive the near-zero entropy columns of Figure 4.
	Optional bool
}

// Schema is an ordered set of fields with unique names.
type Schema struct {
	Name   string
	Fields []Field
	byName map[string]int
}

// NewSchema builds a schema and validates field-name uniqueness.
func NewSchema(name string, fields []Field) (*Schema, error) {
	s := &Schema{Name: name, Fields: fields, byName: make(map[string]int, len(fields))}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("telco: schema %q: field %d has empty name", name, i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("telco: schema %q: duplicate field %q", name, f.Name)
		}
		s.byName[f.Name] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for package-level schemas.
func MustSchema(name string, fields []Field) *Schema {
	s, err := NewSchema(name, fields)
	if err != nil {
		panic(err)
	}
	return s
}

// NumFields returns the number of attributes.
func (s *Schema) NumFields() int { return len(s.Fields) }

// FieldIndex returns the position of the named field, or -1.
func (s *Schema) FieldIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Field returns the field at position i.
func (s *Schema) Field(i int) Field { return s.Fields[i] }

// FieldNames returns the attribute names in order.
func (s *Schema) FieldNames() []string {
	names := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		names[i] = f.Name
	}
	return names
}

// String renders the schema as name(field:kind, ...), truncated for wide
// schemas such as the ~200-attribute CDR.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		if i == 8 && len(s.Fields) > 10 {
			fmt.Fprintf(&b, "... %d more", len(s.Fields)-i)
			break
		}
		fmt.Fprintf(&b, "%s:%s", f.Name, f.Kind)
	}
	b.WriteByte(')')
	return b.String()
}
