// Package telco defines the data model of a telecommunication provider's
// big-data streams as described in the SPATE paper (ICDE 2017): Call Detail
// Records (CDR), Network Measurement System reports (NMS) and the static
// cell inventory (CELL).
//
// Records are typed rows under a fixed Schema. The value domains mirror the
// paper's observation that telco data "mostly contains string and integer
// values" with a large number (~200) of attributes, many of which are
// optional and frequently blank (entropy 0 in Figure 4 of the paper).
package telco

import (
	"fmt"
	"strconv"
	"time"
)

// Kind enumerates the primitive types a telco attribute can take.
type Kind uint8

// Supported value kinds. KindTime values carry second resolution, which is
// enough for 30-minute ingestion epochs.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindTime
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindTime:
		return "time"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// TimeLayout is the wire format for KindTime values: the paper's compact
// timestamp literals (e.g. ts="201601221530" in task T1) extended to second
// resolution, which real CDR streams carry.
const TimeLayout = "20060102150405"

// Value is a single attribute value: a tagged union over the telco kinds.
// The zero Value is the null value.
type Value struct {
	kind Kind
	str  string
	num  int64 // int payload, or unix seconds for KindTime
	f    float64
}

// Null is the null value.
var Null = Value{}

// String wraps s as a string value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int wraps i as an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: i} }

// Float wraps f as a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Time wraps t as a time value with second resolution.
func Time(t time.Time) Value { return Value{kind: KindTime, num: t.Unix()} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.str }

// Int64 returns the integer payload. It is only meaningful for KindInt.
func (v Value) Int64() int64 { return v.num }

// Float64 returns the numeric payload as a float64 for KindInt and
// KindFloat values, and 0 otherwise.
func (v Value) Float64() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.num)
	default:
		return 0
	}
}

// Time returns the time payload. It is only meaningful for KindTime.
func (v Value) Time() time.Time { return time.Unix(v.num, 0).UTC() }

// Format renders the value in its wire (text) form. Null renders as the
// empty string, matching the blank optional attributes of real CDR files.
func (v Value) Format() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindString:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindTime:
		return v.Time().Format(TimeLayout)
	default:
		return ""
	}
}

// ParseValue parses the wire form s into a value of kind k. An empty string
// parses as Null for any kind, mirroring blank optional attributes.
func ParseValue(k Kind, s string) (Value, error) {
	if s == "" {
		return Null, nil
	}
	switch k {
	case KindString:
		return String(s), nil
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("telco: parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("telco: parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindTime:
		t, err := time.ParseInLocation(TimeLayout, s, time.UTC)
		if err != nil {
			return Null, fmt.Errorf("telco: parse time %q: %w", s, err)
		}
		return Time(t), nil
	case KindNull:
		return Null, nil
	default:
		return Null, fmt.Errorf("telco: unknown kind %v", k)
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.str == w.str
	case KindInt, KindTime:
		return v.num == w.num
	case KindFloat:
		return v.f == w.f
	default:
		return true
	}
}

// Compare orders two values. Nulls sort first; values of different kinds
// order by kind; otherwise by natural order. It returns -1, 0 or +1.
func (v Value) Compare(w Value) int {
	if v.kind != w.kind {
		// Numeric kinds compare cross-kind by numeric value.
		if v.isNumeric() && w.isNumeric() {
			return cmpFloat(v.Float64(), w.Float64())
		}
		return cmpInt(int64(v.kind), int64(w.kind))
	}
	switch v.kind {
	case KindString:
		switch {
		case v.str < w.str:
			return -1
		case v.str > w.str:
			return 1
		}
		return 0
	case KindInt, KindTime:
		return cmpInt(v.num, w.num)
	case KindFloat:
		return cmpFloat(v.f, w.f)
	default:
		return 0
	}
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}
