package telco

import (
	"fmt"
	"strings"
)

// Record is one row of attribute values under a Schema. Positions align
// with Schema.Fields.
type Record []Value

// sep is the wire delimiter between attribute values. Telco trace files are
// delimiter-separated text; values containing the delimiter, backslashes or
// newlines are escaped so every record round-trips through one text line.
const sep = '|'

// EncodeLine renders the record as one delimiter-separated text line
// (without the trailing newline).
func (r Record) EncodeLine(b *strings.Builder) {
	for i, v := range r {
		if i > 0 {
			b.WriteByte(sep)
		}
		escapeInto(b, v.Format())
	}
}

// Line is a convenience wrapper around EncodeLine.
func (r Record) Line() string {
	var b strings.Builder
	r.EncodeLine(&b)
	return b.String()
}

// AppendFields appends each attribute's escaped wire field to dst — the
// per-column pieces EncodeLine joins with the delimiter. Escaped fields
// contain no raw delimiter or newline, so column-major storage can re-join
// them into the exact wire line.
func (r Record) AppendFields(dst []string) []string {
	var b strings.Builder
	for _, v := range r {
		s := v.Format()
		if !strings.ContainsAny(s, "|\\\n") {
			dst = append(dst, s)
			continue
		}
		b.Reset()
		escapeInto(&b, s)
		dst = append(dst, b.String())
	}
	return dst
}

// ParseField parses one escaped wire field (as AppendFields renders) into
// a value of kind k.
func ParseField(k Kind, field string) (Value, error) {
	return ParseValue(k, unescape(field))
}

// SplitFields splits one wire line (without its trailing newline) into its
// escaped fields — the inverse of joining AppendFields output with the
// delimiter. Rewriting stored rows through SplitFields + column storage
// reproduces the original line byte for byte, which re-rendering decoded
// values cannot guarantee.
func SplitFields(line string) []string { return splitEscaped(line) }

func escapeInto(b *strings.Builder, s string) {
	if !strings.ContainsAny(s, "|\\\n") {
		b.WriteString(s)
		return
	}
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '|':
			b.WriteString(`\p`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '\\' || i+1 == len(s) {
			b.WriteByte(c)
			continue
		}
		i++
		switch s[i] {
		case 'p':
			b.WriteByte('|')
		case 'n':
			b.WriteByte('\n')
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// DecodeLine parses one text line into a record under schema s.
func DecodeLine(s *Schema, line string) (Record, error) {
	parts := splitEscaped(line)
	if len(parts) != len(s.Fields) {
		return nil, fmt.Errorf("telco: schema %q: line has %d fields, want %d", s.Name, len(parts), len(s.Fields))
	}
	rec := make(Record, len(parts))
	for i, p := range parts {
		v, err := ParseValue(s.Fields[i].Kind, unescape(p))
		if err != nil {
			return nil, fmt.Errorf("telco: field %q: %w", s.Fields[i].Name, err)
		}
		rec[i] = v
	}
	return rec, nil
}

// splitEscaped splits on the delimiter while respecting backslash escapes.
func splitEscaped(line string) []string {
	// Fast path: no escapes at all.
	if !strings.ContainsRune(line, '\\') {
		return strings.Split(line, string(sep))
	}
	var parts []string
	start := 0
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			i++ // skip the escaped byte
		case sep:
			parts = append(parts, line[start:i])
			start = i + 1
		}
	}
	return append(parts, line[start:])
}

// Get returns the value of the named field, or Null when absent.
func (r Record) Get(s *Schema, name string) Value {
	i := s.FieldIndex(name)
	if i < 0 || i >= len(r) {
		return Null
	}
	return r[i]
}

// Clone returns a copy of the record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	copy(out, r)
	return out
}
