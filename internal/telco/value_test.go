package telco

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	now := time.Date(2016, 1, 22, 15, 30, 0, 0, time.UTC)
	tests := []struct {
		name string
		v    Value
		kind Kind
		text string
	}{
		{"null", Null, KindNull, ""},
		{"string", String("voice"), KindString, "voice"},
		{"int", Int(42), KindInt, "42"},
		{"negative int", Int(-7), KindInt, "-7"},
		{"float", Float(2.5), KindFloat, "2.5"},
		{"time", Time(now), KindTime, "20160122153000"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.v.Kind(); got != tc.kind {
				t.Errorf("Kind() = %v, want %v", got, tc.kind)
			}
			if got := tc.v.Format(); got != tc.text {
				t.Errorf("Format() = %q, want %q", got, tc.text)
			}
		})
	}
}

func TestValueFormatParseRoundTrip(t *testing.T) {
	now := time.Date(2020, 6, 1, 10, 0, 0, 0, time.UTC)
	values := []Value{
		String("hello world"), String(""), Int(0), Int(1 << 40),
		Float(3.14159), Float(-0.001), Time(now), Null,
	}
	for _, v := range values {
		s := v.Format()
		got, err := ParseValue(v.Kind(), s)
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", v.Kind(), s, err)
		}
		// Empty string round-trips to Null by design.
		want := v
		if s == "" {
			want = Null
		}
		if !got.Equal(want) {
			t.Errorf("round trip %v -> %q -> %v, want %v", v, s, got, want)
		}
	}
}

func TestParseValueErrors(t *testing.T) {
	tests := []struct {
		kind Kind
		in   string
	}{
		{KindInt, "abc"},
		{KindFloat, "1.2.3"},
		{KindTime, "not-a-time"},
		{KindTime, "2016"},
	}
	for _, tc := range tests {
		if _, err := ParseValue(tc.kind, tc.in); err == nil {
			t.Errorf("ParseValue(%v, %q): want error", tc.kind, tc.in)
		}
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{String("a"), String("b"), -1},
		{Float(1.5), Float(1.5), 0},
		{Int(2), Float(2.5), -1}, // cross numeric kinds
		{Float(3.0), Int(2), 1},  // cross numeric kinds
		{Null, Int(0), -1},       // null sorts first
		{Time(time.Unix(10, 0)), Time(time.Unix(20, 0)), -1},
	}
	for _, tc := range tests {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntStringPropertyRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		v, err := ParseValue(KindInt, Int(i).Format())
		return err == nil && v.Int64() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "null", KindString: "string", KindInt: "int",
		KindFloat: "float", KindTime: "time", Kind(99): "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
