package telco

import "fmt"

// NumCDRAttrs is the total CDR attribute count. The paper reports that CDR
// files carry "a large number (~200) of attributes" of which Figure 3 shows
// the first 10; the remainder here are synthetic counters/flags, most of
// them optional (blank), reproducing the near-zero entropy tail of Figure 4.
const NumCDRAttrs = 200

// Canonical attribute names shared across the code base.
const (
	AttrTS       = "ts"
	AttrCaller   = "caller"
	AttrCallee   = "callee"
	AttrCellID   = "cell_id"
	AttrCallType = "call_type"
	AttrDuration = "duration"
	AttrUpflux   = "upflux"
	AttrDownflux = "downflux"
	AttrResult   = "result"
	AttrIMEI     = "imei"
)

// newCDRSchema builds the ~200-attribute CDR schema: the 10 documented
// attributes of Figure 3 followed by 190 synthetic operational attributes.
func newCDRSchema() *Schema {
	fields := []Field{
		{Name: AttrTS, Kind: KindTime},
		{Name: AttrCaller, Kind: KindString},
		{Name: AttrCallee, Kind: KindString},
		{Name: AttrCellID, Kind: KindInt},
		{Name: AttrCallType, Kind: KindString},
		{Name: AttrDuration, Kind: KindInt},
		{Name: AttrUpflux, Kind: KindInt},
		{Name: AttrDownflux, Kind: KindInt},
		{Name: AttrResult, Kind: KindString},
		{Name: AttrIMEI, Kind: KindString},
	}
	for i := len(fields); i < NumCDRAttrs; i++ {
		f := Field{Name: fmt.Sprintf("attr_%03d", i+1)}
		switch i % 4 {
		case 0, 1:
			// Optional nominal flags: usually blank -> entropy near 0.
			f.Kind = KindString
			f.Optional = true
		case 2:
			// Low-cardinality counters.
			f.Kind = KindInt
		default:
			// Constant-ish config fields -> entropy exactly 0.
			f.Kind = KindString
		}
		fields = append(fields, f)
	}
	return MustSchema("CDR", fields)
}

// newNMSSchema builds the 8-attribute NMS schema: aggregated performance
// counters per cell per epoch (call drops, durations, throughput, signal).
func newNMSSchema() *Schema {
	return MustSchema("NMS", []Field{
		{Name: AttrTS, Kind: KindTime},
		{Name: AttrCellID, Kind: KindInt},
		{Name: "drop_calls", Kind: KindInt},
		{Name: "call_attempts", Kind: KindInt},
		{Name: "avg_duration", Kind: KindFloat},
		{Name: "throughput_kbps", Kind: KindInt},
		{Name: "rssi_dbm", Kind: KindFloat},
		{Name: "handover_failures", Kind: KindInt},
	})
}

// newCellSchema builds the 10-attribute CELL schema: the static antenna
// inventory (3660 cells on 1192 2G/3G/LTE antennas in the paper's trace).
func newCellSchema() *Schema {
	return MustSchema("CELL", []Field{
		{Name: AttrCellID, Kind: KindInt},
		{Name: "antenna_id", Kind: KindInt},
		{Name: "tech", Kind: KindString}, // GSM | UMTS | LTE
		{Name: "x_km", Kind: KindFloat},
		{Name: "y_km", Kind: KindFloat},
		{Name: "azimuth_deg", Kind: KindInt},
		{Name: "range_m", Kind: KindInt},
		{Name: "height_m", Kind: KindInt},
		{Name: "power_dbm", Kind: KindInt},
		{Name: "bsc_id", Kind: KindInt},
	})
}

// Package-level singleton schemas. They are immutable by convention.
var (
	CDRSchema  = newCDRSchema()
	NMSSchema  = newNMSSchema()
	CellSchema = newCellSchema()
)

// SchemaByName resolves one of the three canonical schemas by its
// case-sensitive name, returning nil when unknown.
func SchemaByName(name string) *Schema {
	switch name {
	case "CDR":
		return CDRSchema
	case "NMS":
		return NMSSchema
	case "CELL":
		return CellSchema
	default:
		return nil
	}
}
