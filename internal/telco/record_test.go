package telco

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("T", []Field{
		{Name: "ts", Kind: KindTime},
		{Name: "name", Kind: KindString},
		{Name: "n", Kind: KindInt},
		{Name: "f", Kind: KindFloat},
		{Name: "opt", Kind: KindString, Optional: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRecordLineRoundTrip(t *testing.T) {
	s := testSchema(t)
	now := time.Date(2016, 9, 15, 12, 0, 0, 0, time.UTC)
	tests := []struct {
		name string
		rec  Record
	}{
		{"plain", Record{Time(now), String("alice"), Int(5), Float(1.25), String("x")}},
		{"nulls", Record{Null, Null, Null, Null, Null}},
		{"delimiter in value", Record{Time(now), String("a|b"), Int(0), Float(0), Null}},
		{"backslash in value", Record{Time(now), String(`a\b`), Int(0), Float(0), Null}},
		{"newline in value", Record{Time(now), String("a\nb"), Int(0), Float(0), Null}},
		{"mixed escapes", Record{Time(now), String(`|\|` + "\n"), Int(-1), Float(-2.5), String("|")}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			line := tc.rec.Line()
			if strings.ContainsRune(line, '\n') {
				t.Fatalf("encoded line contains newline: %q", line)
			}
			got, err := DecodeLine(s, line)
			if err != nil {
				t.Fatalf("DecodeLine(%q): %v", line, err)
			}
			if len(got) != len(tc.rec) {
				t.Fatalf("got %d values, want %d", len(got), len(tc.rec))
			}
			for i := range got {
				want := tc.rec[i]
				// Empty strings decode as Null by design.
				if want.Kind() == KindString && want.Str() == "" {
					want = Null
				}
				if !got[i].Equal(want) {
					t.Errorf("field %d: got %v, want %v", i, got[i], want)
				}
			}
		})
	}
}

func TestRecordStringPropertyRoundTrip(t *testing.T) {
	s, err := NewSchema("P", []Field{{Name: "a", Kind: KindString}, {Name: "b", Kind: KindString}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b string) bool {
		rec := Record{String(a), String(b)}
		got, err := DecodeLine(s, rec.Line())
		if err != nil {
			return false
		}
		wa, wb := rec[0], rec[1]
		if a == "" {
			wa = Null
		}
		if b == "" {
			wb = Null
		}
		return got[0].Equal(wa) && got[1].Equal(wb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeLineErrors(t *testing.T) {
	s := testSchema(t)
	tests := []struct {
		name string
		line string
	}{
		{"too few fields", "201601221530|x|1"},
		{"too many fields", "201601221530|x|1|2.0|o|extra"},
		{"bad int", "201601221530|x|notanint|2.0|o"},
		{"bad time", "xxxx|x|1|2.0|o"},
	}
	for _, tc := range tests {
		if _, err := DecodeLine(s, tc.line); err == nil {
			t.Errorf("%s: DecodeLine(%q): want error", tc.name, tc.line)
		}
	}
}

func TestRecordGetAndClone(t *testing.T) {
	s := testSchema(t)
	rec := Record{Time(time.Unix(0, 0)), String("bob"), Int(9), Float(1), Null}
	if got := rec.Get(s, "name"); !got.Equal(String("bob")) {
		t.Errorf("Get(name) = %v", got)
	}
	if got := rec.Get(s, "missing"); !got.IsNull() {
		t.Errorf("Get(missing) = %v, want Null", got)
	}
	cl := rec.Clone()
	cl[1] = String("eve")
	if rec[1].Str() != "bob" {
		t.Error("Clone aliases the original record")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("D", []Field{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}); err == nil {
		t.Error("duplicate field names: want error")
	}
	if _, err := NewSchema("E", []Field{{Name: "", Kind: KindInt}}); err == nil {
		t.Error("empty field name: want error")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := testSchema(t)
	if got := s.FieldIndex("n"); got != 2 {
		t.Errorf("FieldIndex(n) = %d, want 2", got)
	}
	if got := s.FieldIndex("zzz"); got != -1 {
		t.Errorf("FieldIndex(zzz) = %d, want -1", got)
	}
	if got := s.NumFields(); got != 5 {
		t.Errorf("NumFields = %d, want 5", got)
	}
	names := s.FieldNames()
	if len(names) != 5 || names[0] != "ts" || names[4] != "opt" {
		t.Errorf("FieldNames = %v", names)
	}
}

func TestCanonicalSchemas(t *testing.T) {
	if got := CDRSchema.NumFields(); got != NumCDRAttrs {
		t.Errorf("CDR schema has %d fields, want %d", got, NumCDRAttrs)
	}
	if got := NMSSchema.NumFields(); got != 8 {
		t.Errorf("NMS schema has %d fields, want 8", got)
	}
	if got := CellSchema.NumFields(); got != 10 {
		t.Errorf("CELL schema has %d fields, want 10", got)
	}
	for _, name := range []string{"CDR", "NMS", "CELL"} {
		if SchemaByName(name) == nil {
			t.Errorf("SchemaByName(%q) = nil", name)
		}
	}
	if SchemaByName("nope") != nil {
		t.Error("SchemaByName(nope) != nil")
	}
	// The wide CDR schema must truncate its String() rendering.
	if s := CDRSchema.String(); !strings.Contains(s, "more") {
		t.Errorf("CDR String() not truncated: %q", s)
	}
}

func TestEpochArithmetic(t *testing.T) {
	tm := time.Date(2016, 1, 22, 15, 47, 12, 0, time.UTC)
	e := EpochOf(tm)
	if !e.Contains(tm) {
		t.Error("epoch does not contain its own timestamp")
	}
	if got := e.Start().Minute(); got != 30 && got != 0 {
		t.Errorf("epoch start minute = %d, want 0 or 30", got)
	}
	if got := e.End().Sub(e.Start()); got != EpochDuration {
		t.Errorf("epoch length = %v", got)
	}
	if EpochsPerDay != 48 {
		t.Errorf("EpochsPerDay = %d, want 48", EpochsPerDay)
	}
}

func TestTimeRange(t *testing.T) {
	a := time.Date(2016, 9, 15, 0, 0, 0, 0, time.UTC)
	b := a.Add(2 * time.Hour)
	r := NewTimeRange(b, a) // swapped on purpose
	if r.From != a || r.To != b {
		t.Fatalf("NewTimeRange did not normalize: %v", r)
	}
	if !r.Contains(a) || r.Contains(b) {
		t.Error("half-open interval semantics violated")
	}
	if !r.Covers(NewTimeRange(a, a.Add(time.Hour))) {
		t.Error("Covers(subrange) = false")
	}
	if r.Covers(NewTimeRange(a.Add(-time.Second), b)) {
		t.Error("Covers(superrange) = true")
	}
	if !r.Overlaps(NewTimeRange(a.Add(time.Hour), b.Add(time.Hour))) {
		t.Error("Overlaps = false for intersecting ranges")
	}
	if r.Overlaps(NewTimeRange(b, b.Add(time.Hour))) {
		t.Error("Overlaps = true for touching ranges")
	}
	if got := len(r.Epochs()); got != 4 {
		t.Errorf("Epochs over 2h = %d, want 4", got)
	}
	if got := NewTimeRange(a, a).Epochs(); got != nil {
		t.Errorf("empty range epochs = %v, want nil", got)
	}
}
