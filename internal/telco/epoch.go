package telco

import "time"

// EpochDuration is the ingestion cycle: telco snapshots arrive in
// horizontally segmented files every 30 minutes (paper §II-B).
const EpochDuration = 30 * time.Minute

// EpochsPerDay is the number of snapshot leaves under each day node.
const EpochsPerDay = int(24 * time.Hour / EpochDuration) // 48

// Epoch identifies one 30-minute ingestion cycle as the number of cycles
// since the Unix epoch.
type Epoch int64

// EpochOf returns the epoch containing t.
func EpochOf(t time.Time) Epoch {
	return Epoch(t.Unix() / int64(EpochDuration/time.Second))
}

// Start returns the inclusive start time of the epoch.
func (e Epoch) Start() time.Time {
	return time.Unix(int64(e)*int64(EpochDuration/time.Second), 0).UTC()
}

// End returns the exclusive end time of the epoch.
func (e Epoch) End() time.Time { return e.Start().Add(EpochDuration) }

// Contains reports whether t falls inside the epoch.
func (e Epoch) Contains(t time.Time) bool {
	return !t.Before(e.Start()) && t.Before(e.End())
}

// String renders the epoch by its start time in the wire layout.
func (e Epoch) String() string { return e.Start().Format(TimeLayout) }

// TimeRange is a half-open interval [From, To).
type TimeRange struct {
	From time.Time
	To   time.Time
}

// NewTimeRange builds a range, swapping the endpoints if needed.
func NewTimeRange(a, b time.Time) TimeRange {
	if b.Before(a) {
		a, b = b, a
	}
	return TimeRange{From: a, To: b}
}

// Contains reports whether t is inside the range.
func (r TimeRange) Contains(t time.Time) bool {
	return !t.Before(r.From) && t.Before(r.To)
}

// Covers reports whether r fully contains s.
func (r TimeRange) Covers(s TimeRange) bool {
	return !s.From.Before(r.From) && !r.To.Before(s.To)
}

// Overlaps reports whether the two ranges intersect.
func (r TimeRange) Overlaps(s TimeRange) bool {
	return r.From.Before(s.To) && s.From.Before(r.To)
}

// Duration returns the length of the range.
func (r TimeRange) Duration() time.Duration { return r.To.Sub(r.From) }

// Epochs returns every epoch that overlaps the range, in order.
func (r TimeRange) Epochs() []Epoch {
	if !r.From.Before(r.To) {
		return nil
	}
	var out []Epoch
	for e := EpochOf(r.From); e.Start().Before(r.To); e++ {
		out = append(out, e)
	}
	return out
}
