// Package index implements SPATE's multi-resolution spatio-temporal index
// (paper §V-A): a temporal tree with four resolutions — year, month, day
// and 30-minute epoch — whose leaves reference compressed snapshot files on
// the distributed file system and whose internal nodes carry highlight
// summaries. New snapshots are incorporated by the Incremence module:
// the tree only ever grows along its right-most path, with dummy day/month/
// year nodes created on period rollover.
package index

import (
	"fmt"
	"time"

	"spate/internal/highlights"
	"spate/internal/telco"
)

// Level is a temporal resolution of the index.
type Level int

// Levels from coarsest to finest.
const (
	LevelRoot Level = iota
	LevelYear
	LevelMonth
	LevelDay
	LevelEpoch
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelRoot:
		return "root"
	case LevelYear:
		return "year"
	case LevelMonth:
		return "month"
	case LevelDay:
		return "day"
	case LevelEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Node is one entry of the temporal index. Epoch-level nodes are leaves
// referencing compressed snapshot data; internal nodes aggregate children
// and, once their period completes, carry a highlight summary.
type Node struct {
	Level    Level
	Period   telco.TimeRange
	Children []*Node

	// Summary holds the node's highlights. For internal nodes it is set
	// when the period completes (sealed); leaves carry their snapshot's
	// summary immediately.
	Summary *highlights.Summary

	// Leaf payload (Level == LevelEpoch).
	Epoch     telco.Epoch
	DataRefs  map[string]string // table name -> DFS path of compressed data
	DataBytes int64             // compressed bytes on the DFS (logical)
	RawBytes  int64             // pre-compression bytes, for accounting
	Decayed   bool              // raw data evicted by the decaying module
}

// IsLeaf reports whether the node is an epoch leaf.
func (n *Node) IsLeaf() bool { return n.Level == LevelEpoch }

// rightmost returns the last child, or nil.
func (n *Node) rightmost() *Node {
	if len(n.Children) == 0 {
		return nil
	}
	return n.Children[len(n.Children)-1]
}

// Tree is the multi-resolution temporal index.
type Tree struct {
	root      *Node
	lastEpoch telco.Epoch
	hasLeaf   bool
	leafCount int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &Node{Level: LevelRoot}}
}

// Root returns the root node. The root's period spans all ingested data.
func (t *Tree) Root() *Node { return t.root }

// Len returns the number of epoch leaves currently in the tree.
func (t *Tree) Len() int { return t.leafCount }

// LastEpoch returns the most recently appended epoch and whether any leaf
// exists.
func (t *Tree) LastEpoch() (telco.Epoch, bool) { return t.lastEpoch, t.hasLeaf }

// periodOf computes the covering period of level l for a time instant.
func periodOf(l Level, at time.Time) telco.TimeRange {
	at = at.UTC()
	switch l {
	case LevelYear:
		from := time.Date(at.Year(), 1, 1, 0, 0, 0, 0, time.UTC)
		return telco.TimeRange{From: from, To: from.AddDate(1, 0, 0)}
	case LevelMonth:
		from := time.Date(at.Year(), at.Month(), 1, 0, 0, 0, 0, time.UTC)
		return telco.TimeRange{From: from, To: from.AddDate(0, 1, 0)}
	case LevelDay:
		from := time.Date(at.Year(), at.Month(), at.Day(), 0, 0, 0, 0, time.UTC)
		return telco.TimeRange{From: from, To: from.AddDate(0, 0, 1)}
	default:
		e := telco.EpochOf(at)
		return telco.TimeRange{From: e.Start(), To: e.End()}
	}
}

// Append incorporates the snapshot of epoch e into the index on the
// right-most path (the Incremence module). Snapshots must arrive in
// strictly increasing epoch order. It returns the new leaf together with
// the internal nodes whose period was completed by this arrival — newest
// first day, then month, then year — so the caller can compute and store
// their highlights.
func (t *Tree) Append(e telco.Epoch, refs map[string]string, dataBytes, rawBytes int64) (leaf *Node, completed []*Node, err error) {
	if t.hasLeaf && e <= t.lastEpoch {
		return nil, nil, fmt.Errorf("index: epoch %v arrives out of order (last %v)", e, t.lastEpoch)
	}
	at := e.Start()

	year := t.root.rightmost()
	if year == nil || !year.Period.Contains(at) {
		if year != nil {
			completed = append(completed, t.sealSubtree(year)...)
		}
		year = &Node{Level: LevelYear, Period: periodOf(LevelYear, at)}
		t.root.Children = append(t.root.Children, year)
	}
	month := year.rightmost()
	if month == nil || !month.Period.Contains(at) {
		if month != nil {
			completed = append(completed, t.sealSubtree(month)...)
		}
		month = &Node{Level: LevelMonth, Period: periodOf(LevelMonth, at)}
		year.Children = append(year.Children, month)
	}
	day := month.rightmost()
	if day == nil || !day.Period.Contains(at) {
		if day != nil {
			completed = append(completed, t.sealSubtree(day)...)
		}
		day = &Node{Level: LevelDay, Period: periodOf(LevelDay, at)}
		month.Children = append(month.Children, day)
	}

	leaf = &Node{
		Level:     LevelEpoch,
		Period:    telco.TimeRange{From: e.Start(), To: e.End()},
		Epoch:     e,
		DataRefs:  refs,
		DataBytes: dataBytes,
		RawBytes:  rawBytes,
	}
	day.Children = append(day.Children, leaf)
	t.lastEpoch = e
	t.hasLeaf = true
	t.leafCount++

	// Extend the root's covering period.
	if t.root.Period.From.IsZero() {
		t.root.Period.From = leaf.Period.From
	}
	t.root.Period.To = leaf.Period.To

	// Order completions finest-first (day before month before year) so
	// summary rollups can build on each other.
	reverse(completed)
	return leaf, completed, nil
}

// sealSubtree returns the nodes of a just-closed subtree that still need
// sealing, deepest first is NOT guaranteed here; Append reverses to get
// day < month < year ordering.
func (t *Tree) sealSubtree(n *Node) []*Node {
	var out []*Node
	out = append(out, n)
	if r := n.rightmost(); r != nil && !r.IsLeaf() {
		out = append(out, t.sealSubtree(r)...)
	}
	return out
}

func reverse(ns []*Node) {
	for i, j := 0, len(ns)-1; i < j; i, j = i+1, j-1 {
		ns[i], ns[j] = ns[j], ns[i]
	}
}

// EnsurePeriod creates (if absent) the right-most-path node of level l
// whose period contains at, materializing missing ancestors — the recovery
// hook that resurrects summary-only nodes for subtrees the decaying module
// pruned. Like Append, it only ever grows the right-most path, so calls
// must arrive in temporal order and precede newer appends.
func (t *Tree) EnsurePeriod(l Level, at time.Time) (*Node, error) {
	if l != LevelYear && l != LevelMonth && l != LevelDay {
		return nil, fmt.Errorf("index: EnsurePeriod at level %v", l)
	}
	n := t.root
	for _, lv := range []Level{LevelYear, LevelMonth, LevelDay} {
		p := periodOf(lv, at)
		r := n.rightmost()
		if r == nil || !r.Period.Contains(at) {
			if r != nil && !r.Period.From.Before(p.From) {
				return nil, fmt.Errorf("index: period %v at %v arrives out of order", lv, at)
			}
			r = &Node{Level: lv, Period: p}
			n.Children = append(n.Children, r)
			if t.root.Period.From.IsZero() || p.From.Before(t.root.Period.From) {
				t.root.Period.From = p.From
			}
			if p.To.After(t.root.Period.To) {
				t.root.Period.To = p.To
			}
		}
		if lv == l {
			return r, nil
		}
		n = r
	}
	return nil, fmt.Errorf("index: unreachable level %v", l)
}

// FinishIngest returns every still-unsealed internal node on the
// right-most path (deepest first), for callers that want to finalize
// summaries when a trace ends mid-period.
func (t *Tree) FinishIngest() []*Node {
	var out []*Node
	n := t.root
	for {
		r := n.rightmost()
		if r == nil || r.IsLeaf() {
			break
		}
		out = append(out, r)
		n = r
	}
	reverse(out)
	return out
}

// FindCovering returns the deepest node whose period completely covers w —
// the paper's query entry point ("the index is accessed to find the
// temporal node whose period completely covers w"). The root is returned
// when no year covers w; nil when the tree is empty.
func (t *Tree) FindCovering(w telco.TimeRange) *Node {
	if !t.hasLeaf {
		return nil
	}
	n := t.root
	for {
		var next *Node
		for _, c := range n.Children {
			if c.Period.Covers(w) {
				next = c
				break
			}
		}
		if next == nil {
			return n
		}
		n = next
	}
}

// LeavesIn appends every leaf whose period overlaps w, in temporal order.
func (t *Tree) LeavesIn(w telco.TimeRange, dst []*Node) []*Node {
	return leavesIn(t.root, w, dst)
}

func leavesIn(n *Node, w telco.TimeRange, dst []*Node) []*Node {
	if n.IsLeaf() {
		if n.Period.Overlaps(w) {
			dst = append(dst, n)
		}
		return dst
	}
	for _, c := range n.Children {
		if n.Level == LevelRoot || c.Period.Overlaps(w) {
			dst = leavesIn(c, w, dst)
		}
	}
	return dst
}

// Walk visits every node pre-order until fn returns false.
func (t *Tree) Walk(fn func(*Node) bool) { walk(t.root, fn) }

func walk(n *Node, fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, c := range n.Children {
		if !walk(c, fn) {
			return false
		}
	}
	return true
}

// NodesAtLevel collects nodes of one level in temporal order.
func (t *Tree) NodesAtLevel(l Level) []*Node {
	var out []*Node
	t.Walk(func(n *Node) bool {
		if n.Level == l {
			out = append(out, n)
		}
		return true
	})
	return out
}

// Stats summarizes the tree for storage accounting.
type Stats struct {
	Leaves        int
	DecayedLeaves int
	DataBytes     int64 // compressed leaf bytes still held
	RawBytes      int64 // original bytes represented (including decayed)
	SummaryBytes  int64 // estimated highlight summary footprint (index S_i)
	Nodes         int
}

// Stats walks the tree and aggregates storage accounting.
func (t *Tree) Stats() Stats {
	var s Stats
	t.Walk(func(n *Node) bool {
		s.Nodes++
		// Leaf summaries are ephemeral ingestion state, not persisted
		// access-method information; only internal-node summaries count
		// toward the index footprint S_i.
		if n.Summary != nil && !n.IsLeaf() {
			s.SummaryBytes += n.Summary.SizeHint()
		}
		if n.IsLeaf() {
			s.Leaves++
			if n.Decayed {
				s.DecayedLeaves++
			} else {
				s.DataBytes += n.DataBytes
			}
			s.RawBytes += n.RawBytes
		}
		return true
	})
	return s
}

// RemoveChild detaches child c from n (used by the decaying module when
// pruning aged subtrees). It reports whether the child was found.
func (n *Node) RemoveChild(c *Node) bool {
	for i, ch := range n.Children {
		if ch == c {
			n.Children = append(n.Children[:i], n.Children[i+1:]...)
			return true
		}
	}
	return false
}

// RecountLeaves refreshes the cached leaf count after structural pruning.
func (t *Tree) RecountLeaves() {
	n := 0
	t.Walk(func(nd *Node) bool {
		if nd.IsLeaf() {
			n++
		}
		return true
	})
	t.leafCount = n
}
