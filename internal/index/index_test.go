package index

import (
	"testing"
	"testing/quick"
	"time"

	"spate/internal/telco"
)

var base = time.Date(2016, 1, 18, 0, 0, 0, 0, time.UTC)

func appendN(t *testing.T, tr *Tree, start time.Time, n int) (completed []*Node) {
	t.Helper()
	e := telco.EpochOf(start)
	for i := 0; i < n; i++ {
		_, done, err := tr.Append(e+telco.Epoch(i), map[string]string{"CDR": "/p"}, 100, 1000)
		if err != nil {
			t.Fatal(err)
		}
		completed = append(completed, done...)
	}
	return completed
}

func TestAppendBuildsFourLevels(t *testing.T) {
	tr := New()
	appendN(t, tr, base, 3)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	years := tr.NodesAtLevel(LevelYear)
	months := tr.NodesAtLevel(LevelMonth)
	days := tr.NodesAtLevel(LevelDay)
	leaves := tr.NodesAtLevel(LevelEpoch)
	if len(years) != 1 || len(months) != 1 || len(days) != 1 || len(leaves) != 3 {
		t.Fatalf("levels = %d/%d/%d/%d", len(years), len(months), len(days), len(leaves))
	}
	if years[0].Period.From != time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC) {
		t.Errorf("year period = %v", years[0].Period)
	}
	if days[0].Period.From != base {
		t.Errorf("day period = %v", days[0].Period)
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	tr := New()
	e := telco.EpochOf(base)
	if _, _, err := tr.Append(e, nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Append(e, nil, 0, 0); err == nil {
		t.Error("duplicate epoch accepted")
	}
	if _, _, err := tr.Append(e-1, nil, 0, 0); err == nil {
		t.Error("past epoch accepted")
	}
	// Gaps are fine (missing snapshots).
	if _, _, err := tr.Append(e+10, nil, 0, 0); err != nil {
		t.Errorf("gap rejected: %v", err)
	}
}

func TestDayCompletionSignals(t *testing.T) {
	tr := New()
	// Two full days: appending the first epoch of day 2 completes day 1.
	done := appendN(t, tr, base, telco.EpochsPerDay+1)
	if len(done) != 1 {
		t.Fatalf("completed = %d nodes, want 1", len(done))
	}
	if done[0].Level != LevelDay || done[0].Period.From != base {
		t.Errorf("completed = %v %v", done[0].Level, done[0].Period)
	}
	if got := len(done[0].Children); got != telco.EpochsPerDay {
		t.Errorf("completed day has %d epochs", got)
	}
}

func TestMonthAndYearCompletionSignals(t *testing.T) {
	tr := New()
	// End of January into February: day then month complete, finest first.
	jan31 := time.Date(2016, 1, 31, 23, 30, 0, 0, time.UTC)
	appendN(t, tr, jan31, 1)
	done := appendN(t, tr, jan31.Add(30*time.Minute), 1) // Feb 1 00:00
	if len(done) != 2 {
		t.Fatalf("completed %d nodes, want 2 (day, month)", len(done))
	}
	if done[0].Level != LevelDay || done[1].Level != LevelMonth {
		t.Errorf("completion order = %v, %v; want day, month", done[0].Level, done[1].Level)
	}
	// End of December into January: day, month, year.
	tr2 := New()
	dec31 := time.Date(2016, 12, 31, 23, 30, 0, 0, time.UTC)
	appendN(t, tr2, dec31, 1)
	done2 := appendN(t, tr2, dec31.Add(30*time.Minute), 1)
	if len(done2) != 3 || done2[0].Level != LevelDay || done2[1].Level != LevelMonth || done2[2].Level != LevelYear {
		levels := make([]Level, len(done2))
		for i, n := range done2 {
			levels[i] = n.Level
		}
		t.Errorf("completion levels = %v, want [day month year]", levels)
	}
}

func TestRightMostPathOnlyGrowth(t *testing.T) {
	tr := New()
	appendN(t, tr, base, 2*telco.EpochsPerDay) // two full days
	days := tr.NodesAtLevel(LevelDay)
	if len(days) != 2 {
		t.Fatalf("days = %d", len(days))
	}
	// Every non-rightmost day must be full; the rightmost may be partial.
	if len(days[0].Children) != telco.EpochsPerDay {
		t.Errorf("closed day has %d children", len(days[0].Children))
	}
	// Leaves strictly increasing.
	leaves := tr.NodesAtLevel(LevelEpoch)
	for i := 1; i < len(leaves); i++ {
		if leaves[i].Epoch <= leaves[i-1].Epoch {
			t.Fatalf("leaf order violated at %d", i)
		}
	}
}

func TestFindCovering(t *testing.T) {
	tr := New()
	appendN(t, tr, base, 3*telco.EpochsPerDay) // Jan 18-20
	tests := []struct {
		name  string
		w     telco.TimeRange
		level Level
	}{
		{"within one epoch", telco.NewTimeRange(base.Add(5*time.Minute), base.Add(10*time.Minute)), LevelEpoch},
		{"within one day", telco.NewTimeRange(base.Add(time.Hour), base.Add(5*time.Hour)), LevelDay},
		{"across days", telco.NewTimeRange(base.Add(20*time.Hour), base.Add(30*time.Hour)), LevelMonth},
		{"across years", telco.NewTimeRange(time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC), base.Add(time.Hour)), LevelRoot},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			n := tr.FindCovering(tc.w)
			if n == nil {
				t.Fatal("nil node")
			}
			if n.Level != tc.level {
				t.Errorf("level = %v, want %v", n.Level, tc.level)
			}
			if n.Level != LevelRoot && !n.Period.Covers(tc.w) {
				t.Errorf("node %v does not cover %v", n.Period, tc.w)
			}
		})
	}
	if New().FindCovering(telco.NewTimeRange(base, base.Add(time.Hour))) != nil {
		t.Error("empty tree should return nil")
	}
}

func TestLeavesIn(t *testing.T) {
	tr := New()
	appendN(t, tr, base, telco.EpochsPerDay)
	w := telco.NewTimeRange(base.Add(time.Hour), base.Add(3*time.Hour))
	got := tr.LeavesIn(w, nil)
	if len(got) != 4 { // epochs 02:00.. wait: 1h..3h = epochs at 1:00,1:30,2:00,2:30
		t.Fatalf("LeavesIn = %d leaves, want 4", len(got))
	}
	for _, l := range got {
		if !l.Period.Overlaps(w) {
			t.Errorf("leaf %v outside window", l.Period)
		}
	}
	// A window partially overlapping an epoch still selects it.
	w2 := telco.NewTimeRange(base.Add(10*time.Minute), base.Add(20*time.Minute))
	if got := tr.LeavesIn(w2, nil); len(got) != 1 {
		t.Errorf("partial overlap = %d leaves", len(got))
	}
	// Disjoint window.
	w3 := telco.NewTimeRange(base.AddDate(1, 0, 0), base.AddDate(1, 0, 1))
	if got := tr.LeavesIn(w3, nil); len(got) != 0 {
		t.Errorf("disjoint window = %d leaves", len(got))
	}
}

func TestFinishIngest(t *testing.T) {
	tr := New()
	appendN(t, tr, base, 3) // partial day
	open := tr.FinishIngest()
	if len(open) != 3 { // day, month, year still open
		t.Fatalf("open = %d nodes", len(open))
	}
	if open[0].Level != LevelDay || open[2].Level != LevelYear {
		t.Errorf("order = %v..%v", open[0].Level, open[2].Level)
	}
	if got := New().FinishIngest(); len(got) != 0 {
		t.Errorf("empty tree open nodes = %d", len(got))
	}
}

func TestStatsAndDecayAccounting(t *testing.T) {
	tr := New()
	appendN(t, tr, base, 4)
	s := tr.Stats()
	if s.Leaves != 4 || s.DataBytes != 400 || s.RawBytes != 4000 || s.DecayedLeaves != 0 {
		t.Fatalf("stats = %+v", s)
	}
	// Mark one leaf decayed: its data bytes leave the accounting.
	leaf := tr.NodesAtLevel(LevelEpoch)[0]
	leaf.Decayed = true
	leaf.DataRefs = nil
	s = tr.Stats()
	if s.DataBytes != 300 || s.DecayedLeaves != 1 {
		t.Errorf("after decay stats = %+v", s)
	}
}

func TestRemoveChildAndRecount(t *testing.T) {
	tr := New()
	appendN(t, tr, base, 5)
	day := tr.NodesAtLevel(LevelDay)[0]
	leaf := day.Children[0]
	if !day.RemoveChild(leaf) {
		t.Fatal("RemoveChild failed")
	}
	if day.RemoveChild(leaf) {
		t.Error("RemoveChild removed twice")
	}
	tr.RecountLeaves()
	if tr.Len() != 4 {
		t.Errorf("Len after prune = %d", tr.Len())
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New()
	appendN(t, tr, base, 10)
	count := 0
	tr.Walk(func(n *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("Walk visited %d nodes after early stop", count)
	}
}

func TestEnsurePeriodGraftsAndIntegratesWithAppend(t *testing.T) {
	tr := New()
	// Graft a pruned day (summary-only) before appending newer leaves.
	day, err := tr.EnsurePeriod(LevelDay, base)
	if err != nil {
		t.Fatal(err)
	}
	if day.Level != LevelDay || day.Period.From != base {
		t.Fatalf("grafted = %v %v", day.Level, day.Period)
	}
	// Idempotent.
	day2, err := tr.EnsurePeriod(LevelDay, base.Add(3*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if day2 != day {
		t.Error("EnsurePeriod duplicated the day node")
	}
	// Appending a leaf the next day reuses the grafted ancestors.
	next := base.AddDate(0, 0, 1)
	appendN(t, tr, next, 1)
	months := tr.NodesAtLevel(LevelMonth)
	if len(months) != 1 {
		t.Fatalf("months = %d (grafted ancestor not reused)", len(months))
	}
	days := tr.NodesAtLevel(LevelDay)
	if len(days) != 2 || len(days[0].Children) != 0 || len(days[1].Children) != 1 {
		t.Fatalf("day layout wrong: %d days", len(days))
	}
	// Out-of-order graft is rejected.
	if _, err := tr.EnsurePeriod(LevelDay, base.AddDate(0, 0, -5)); err == nil {
		t.Error("past graft accepted")
	}
	// Leaf-level grafts are rejected.
	if _, err := tr.EnsurePeriod(LevelEpoch, next); err == nil {
		t.Error("epoch-level graft accepted")
	}
	// FindCovering still works over the grafted region.
	if n := tr.FindCovering(telco.NewTimeRange(base.Add(time.Hour), base.Add(2*time.Hour))); n == nil || n.Level != LevelDay {
		t.Errorf("FindCovering over grafted day = %v", n)
	}
}

func TestTreeInvariantsUnderRandomIngestion(t *testing.T) {
	// Property: for any increasing epoch sequence with gaps, the tree keeps
	// its structural invariants — every leaf sits under the day containing
	// it, children are temporally ordered, and the leaf count matches.
	f := func(gaps []uint8) bool {
		tr := New()
		e := telco.EpochOf(base)
		n := 0
		for _, g := range gaps {
			e += telco.Epoch(g%50) + 1 // strictly increasing, gaps up to 50
			if _, _, err := tr.Append(e, nil, 1, 1); err != nil {
				return false
			}
			n++
		}
		if tr.Len() != n {
			return false
		}
		ok := true
		tr.Walk(func(nd *Node) bool {
			for i := 1; i < len(nd.Children); i++ {
				if !nd.Children[i-1].Period.To.After(nd.Children[i].Period.From) &&
					nd.Children[i-1].Period.To != nd.Children[i].Period.From {
					// gaps allowed; ordering must hold
				}
				if nd.Children[i].Period.From.Before(nd.Children[i-1].Period.From) {
					ok = false
					return false
				}
			}
			if nd.IsLeaf() {
				return true
			}
			for _, c := range nd.Children {
				if nd.Level != LevelRoot && !nd.Period.Covers(c.Period) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		LevelRoot: "root", LevelYear: "year", LevelMonth: "month",
		LevelDay: "day", LevelEpoch: "epoch", Level(9): "level(9)",
	} {
		if got := l.String(); got != want {
			t.Errorf("%d.String() = %q", l, got)
		}
	}
}
