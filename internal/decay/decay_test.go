package decay

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"spate/internal/index"
	"spate/internal/telco"
)

var base = time.Date(2016, 1, 18, 0, 0, 0, 0, time.UTC)

// buildTree ingests n consecutive epochs starting at base, each with one
// data ref of 100 compressed bytes.
func buildTree(t *testing.T, n int) *index.Tree {
	t.Helper()
	tr := index.New()
	e := telco.EpochOf(base)
	for i := 0; i < n; i++ {
		refs := map[string]string{"CDR": fmt.Sprintf("/data/%d", i)}
		if _, _, err := tr.Append(e+telco.Epoch(i), refs, 100, 1000); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

type fakeStore struct {
	deleted map[string]bool
	failOn  string
}

func newFakeStore() *fakeStore { return &fakeStore{deleted: map[string]bool{}} }

func (f *fakeStore) del(path string) error {
	if path == f.failOn {
		return errors.New("disk error")
	}
	f.deleted[path] = true
	return nil
}

func TestPolicyValidate(t *testing.T) {
	good := Policy{KeepRaw: time.Hour, KeepEpochNodes: 2 * time.Hour, KeepDayNodes: 3 * time.Hour}
	if err := good.Validate(); err != nil {
		t.Errorf("valid policy rejected: %v", err)
	}
	bad := Policy{KeepRaw: 3 * time.Hour, KeepEpochNodes: time.Hour}
	if err := bad.Validate(); err == nil {
		t.Error("decreasing horizons accepted")
	}
	// Zero horizons (retain forever) are always fine.
	if err := (Policy{}).Validate(); err != nil {
		t.Errorf("zero policy rejected: %v", err)
	}
}

func TestEvictOldestIndividualsLeafData(t *testing.T) {
	tr := buildTree(t, 6) // epochs 00:00 .. 03:00
	now := base.Add(4 * time.Hour)
	p := Policy{KeepRaw: 2 * time.Hour}
	evs := EvictOldestIndividuals{}.Plan(now, tr, p)
	// Leaves ending at or before now-2h = 02:00: epochs 0..3 (ends 00:30..02:00).
	if len(evs) != 4 {
		t.Fatalf("planned %d evictions, want 4", len(evs))
	}
	for _, e := range evs {
		if e.Action != EvictLeafData {
			t.Errorf("action = %v", e.Action)
		}
	}
	st := newFakeStore()
	res, err := Apply(tr, evs, st.del)
	if err != nil {
		t.Fatal(err)
	}
	if res.LeavesDecayed != 4 || res.BytesFreed != 400 || res.RefsDeleted != 4 {
		t.Errorf("result = %+v", res)
	}
	if len(st.deleted) != 4 {
		t.Errorf("deleted %d refs", len(st.deleted))
	}
	stats := tr.Stats()
	if stats.DecayedLeaves != 4 || stats.DataBytes != 200 {
		t.Errorf("tree stats = %+v", stats)
	}
	// Re-planning immediately is a no-op (idempotent decay).
	if evs2 := (EvictOldestIndividuals{}).Plan(now, tr, p); len(evs2) != 0 {
		t.Errorf("second plan = %d evictions", len(evs2))
	}
}

func TestZeroPolicyEvictsNothing(t *testing.T) {
	tr := buildTree(t, 10)
	evs := EvictOldestIndividuals{}.Plan(base.AddDate(10, 0, 0), tr, Policy{})
	if len(evs) != 0 {
		t.Errorf("zero policy planned %d evictions", len(evs))
	}
}

func TestEpochNodeCollapse(t *testing.T) {
	tr := buildTree(t, 2*telco.EpochsPerDay) // two full days: Jan 18, 19
	now := base.AddDate(0, 0, 5)
	p := Policy{KeepRaw: 24 * time.Hour, KeepEpochNodes: 48 * time.Hour}
	evs := EvictOldestIndividuals{}.Plan(now, tr, p)
	st := newFakeStore()
	res, err := Apply(tr, evs, st.del)
	if err != nil {
		t.Fatal(err)
	}
	// Both days aged past KeepEpochNodes: children pruned, data deleted.
	if res.NodesPruned == 0 {
		t.Fatal("no nodes pruned")
	}
	days := tr.NodesAtLevel(index.LevelDay)
	for _, d := range days {
		if len(d.Children) != 0 {
			t.Errorf("day %v still has %d children", d.Period.From, len(d.Children))
		}
	}
	if tr.Len() != 0 {
		t.Errorf("leaf count = %d after collapse", tr.Len())
	}
	if res.RefsDeleted != 2*telco.EpochsPerDay {
		t.Errorf("refs deleted = %d", res.RefsDeleted)
	}
}

func TestProgressiveDecayIsMonotone(t *testing.T) {
	// As time advances, the retained data volume never increases.
	tr := buildTree(t, 3*telco.EpochsPerDay)
	p := Policy{KeepRaw: 12 * time.Hour, KeepEpochNodes: 36 * time.Hour, KeepDayNodes: 72 * time.Hour}
	fungus := EvictOldestIndividuals{}
	st := newFakeStore()
	prevData := tr.Stats().DataBytes
	prevNodes := tr.Stats().Nodes
	for h := 0; h <= 120; h += 6 {
		now := base.Add(time.Duration(h) * time.Hour)
		if _, err := Apply(tr, fungus.Plan(now, tr, p), st.del); err != nil {
			t.Fatal(err)
		}
		s := tr.Stats()
		if s.DataBytes > prevData {
			t.Fatalf("data bytes grew during decay at h=%d", h)
		}
		if s.Nodes > prevNodes {
			t.Fatalf("node count grew during decay at h=%d", h)
		}
		prevData, prevNodes = s.DataBytes, s.Nodes
	}
	if prevData != 0 {
		t.Errorf("after 120h, %d data bytes remain (KeepRaw=12h)", prevData)
	}
}

func TestGroupedVsIndividualGranularity(t *testing.T) {
	// Midway through a day's aging, the individual fungus has started
	// evicting that day's epochs while the grouped fungus has not.
	mk := func() *index.Tree { return buildTree(t, telco.EpochsPerDay) }
	p := Policy{KeepRaw: 6 * time.Hour}
	now := base.Add(12 * time.Hour) // epochs ending <= 06:00 are aged

	indiv := mk()
	st1 := newFakeStore()
	res1, err := Apply(indiv, EvictOldestIndividuals{}.Plan(now, indiv, p), st1.del)
	if err != nil {
		t.Fatal(err)
	}
	grouped := mk()
	st2 := newFakeStore()
	res2, err := Apply(grouped, EvictGroupedIndividuals{}.Plan(now, grouped, p), st2.del)
	if err != nil {
		t.Fatal(err)
	}
	if res1.LeavesDecayed == 0 {
		t.Error("individual fungus evicted nothing mid-day")
	}
	if res2.LeavesDecayed != 0 {
		t.Errorf("grouped fungus evicted %d leaves before the day aged out", res2.LeavesDecayed)
	}
	// Once the whole day has aged, both have evicted everything.
	later := base.Add(31 * time.Hour) // day ends 24:00 + 6h horizon + margin
	if _, err := Apply(indiv, EvictOldestIndividuals{}.Plan(later, indiv, p), st1.del); err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(grouped, EvictGroupedIndividuals{}.Plan(later, grouped, p), st2.del); err != nil {
		t.Fatal(err)
	}
	if a, b := indiv.Stats().DataBytes, grouped.Stats().DataBytes; a != 0 || b != 0 {
		t.Errorf("after full aging: indiv=%d grouped=%d bytes", a, b)
	}
}

func TestApplyPropagatesDeleteErrors(t *testing.T) {
	tr := buildTree(t, 4)
	p := Policy{KeepRaw: time.Hour}
	evs := EvictOldestIndividuals{}.Plan(base.Add(24*time.Hour), tr, p)
	st := newFakeStore()
	st.failOn = "/data/1"
	if _, err := Apply(tr, evs, st.del); err == nil {
		t.Error("Apply swallowed delete error")
	}
}

func TestDedupeDropsLeafEvictionsUnderPrunes(t *testing.T) {
	tr := buildTree(t, telco.EpochsPerDay+2)
	// Both horizons passed: day prune covers the leaf evictions.
	p := Policy{KeepRaw: time.Hour, KeepEpochNodes: 2 * time.Hour}
	now := base.AddDate(0, 1, 0)
	evs := EvictOldestIndividuals{}.Plan(now, tr, p)
	for _, e := range evs {
		if e.Action == EvictLeafData {
			// The leaf's day must not also be pruned in this plan.
			for _, e2 := range evs {
				if e2.Action == PruneChildren {
					for _, c := range e2.Node.Children {
						if c == e.Node {
							t.Fatal("leaf eviction planned under a pruned day")
						}
					}
				}
			}
		}
	}
	st := newFakeStore()
	if _, err := Apply(tr, evs, st.del); err != nil {
		t.Fatal(err)
	}
	// Every ref deleted exactly once despite overlapping plans.
	if len(st.deleted) != telco.EpochsPerDay+2 {
		t.Errorf("deleted %d refs, want %d", len(st.deleted), telco.EpochsPerDay+2)
	}
}

func TestFungusNames(t *testing.T) {
	if (EvictOldestIndividuals{}).Name() == "" || (EvictGroupedIndividuals{}).Name() == "" {
		t.Error("empty fungus name")
	}
}
