// Package decay implements SPATE's decaying module (paper §V-C): the
// progressive loss of detail in information as data ages, realized as a
// "data fungus" (Kersten, CIDR 2015) that prunes leaf and non-leaf entries
// of the spatio-temporal index in a sliding-window manner.
//
// A Policy expresses the operator-chosen retention horizons: raw snapshot
// data survives KeepRaw; after that only the day/month/year highlight
// summaries remain, each with its own horizon, until even the yearly
// summary disappears. The schema of the database never decays.
//
// Two fungi are provided:
//
//   - EvictOldestIndividuals — the paper's choice: each leaf decays
//     individually as soon as it ages past the horizon, because "more
//     recent signals contain more important operational value".
//   - EvictGroupedIndividuals — the alternative Kersten names: eviction
//     happens in whole-period groups (a day's 48 snapshots decay together
//     once the entire day has aged out), trading retention granularity for
//     fewer, larger purges.
package decay

import (
	"fmt"
	"time"

	"spate/internal/index"
)

// Policy sets retention horizons per resolution. A zero duration means
// "retain forever" at that resolution.
type Policy struct {
	// KeepRaw is how long full-resolution compressed snapshot data remains
	// on the DFS (the paper's example: one year of full resolution).
	KeepRaw time.Duration
	// KeepEpochNodes is how long decayed epoch leaves remain as index
	// entries before the whole day subtree collapses into its summary.
	KeepEpochNodes time.Duration
	// KeepDayNodes is how long day nodes (and their summaries) survive
	// before collapsing into month summaries.
	KeepDayNodes time.Duration
	// KeepMonthNodes is how long month nodes survive before collapsing
	// into year summaries.
	KeepMonthNodes time.Duration
}

// Validate checks that horizons are monotonically non-decreasing where set.
func (p Policy) Validate() error {
	prev := time.Duration(0)
	for _, h := range []struct {
		name string
		d    time.Duration
	}{
		{"KeepRaw", p.KeepRaw},
		{"KeepEpochNodes", p.KeepEpochNodes},
		{"KeepDayNodes", p.KeepDayNodes},
		{"KeepMonthNodes", p.KeepMonthNodes},
	} {
		if h.d == 0 {
			continue
		}
		if h.d < prev {
			return fmt.Errorf("decay: %s=%v shorter than a finer horizon %v", h.name, h.d, prev)
		}
		prev = h.d
	}
	return nil
}

// Action is what an eviction does to its node.
type Action int

// Actions, in increasing severity.
const (
	// EvictLeafData deletes a leaf's compressed data from the DFS and marks
	// the leaf decayed; the index entry survives.
	EvictLeafData Action = iota
	// PruneChildren removes a node's entire child subtree, leaving only
	// the node's own summary.
	PruneChildren
)

// Eviction is one planned decay step.
type Eviction struct {
	Action Action
	Node   *index.Node
	Parent *index.Node // set for PruneChildren bookkeeping (may be nil)
}

// Fungus plans which index entries decay at a given instant.
type Fungus interface {
	// Name identifies the fungus in logs and benchmarks.
	Name() string
	// Plan returns the evictions due at time now under policy p.
	Plan(now time.Time, t *index.Tree, p Policy) []Eviction
}

// aged reports whether the node's period ended more than horizon ago.
// A zero horizon never ages.
func aged(now time.Time, n *index.Node, horizon time.Duration) bool {
	if horizon == 0 {
		return false
	}
	return n.Period.To.Add(horizon).Before(now) || n.Period.To.Add(horizon).Equal(now)
}

// EvictOldestIndividuals is the paper's data fungus: it walks the index
// oldest-first and evicts each aged entry individually.
type EvictOldestIndividuals struct{}

// Name implements Fungus.
func (EvictOldestIndividuals) Name() string { return "evict-oldest-individuals" }

// Plan implements Fungus.
func (EvictOldestIndividuals) Plan(now time.Time, t *index.Tree, p Policy) []Eviction {
	var evs []Eviction
	// Collapse aged months into their year summary.
	for _, m := range t.NodesAtLevel(index.LevelMonth) {
		if len(m.Children) > 0 && aged(now, m, p.KeepMonthNodes) {
			evs = append(evs, Eviction{Action: PruneChildren, Node: m})
		}
	}
	// Collapse aged days into their summary.
	for _, d := range t.NodesAtLevel(index.LevelDay) {
		if len(d.Children) > 0 && (aged(now, d, p.KeepDayNodes) || aged(now, d, p.KeepEpochNodes)) {
			// KeepEpochNodes collapses the day's epoch children;
			// KeepDayNodes is handled at the month level above, so here a
			// day prunes its leaves once either horizon passes.
			evs = append(evs, Eviction{Action: PruneChildren, Node: d})
		}
	}
	// Evict raw data of aged individual leaves.
	for _, l := range t.NodesAtLevel(index.LevelEpoch) {
		if !l.Decayed && aged(now, l, p.KeepRaw) {
			evs = append(evs, Eviction{Action: EvictLeafData, Node: l})
		}
	}
	return dedupe(evs)
}

// EvictGroupedIndividuals evicts raw data in whole-day groups: a day's
// snapshots decay together only when the *youngest* of them has aged out.
type EvictGroupedIndividuals struct{}

// Name implements Fungus.
func (EvictGroupedIndividuals) Name() string { return "evict-grouped-individuals" }

// Plan implements Fungus.
func (EvictGroupedIndividuals) Plan(now time.Time, t *index.Tree, p Policy) []Eviction {
	var evs []Eviction
	for _, m := range t.NodesAtLevel(index.LevelMonth) {
		if len(m.Children) > 0 && aged(now, m, p.KeepMonthNodes) {
			evs = append(evs, Eviction{Action: PruneChildren, Node: m})
		}
	}
	for _, d := range t.NodesAtLevel(index.LevelDay) {
		if len(d.Children) == 0 {
			continue
		}
		if aged(now, d, p.KeepDayNodes) || aged(now, d, p.KeepEpochNodes) {
			evs = append(evs, Eviction{Action: PruneChildren, Node: d})
			continue
		}
		// Group rule: the day's raw data goes only when the whole day aged.
		if aged(now, d, p.KeepRaw) {
			for _, l := range d.Children {
				if l.IsLeaf() && !l.Decayed {
					evs = append(evs, Eviction{Action: EvictLeafData, Node: l})
				}
			}
		}
	}
	return dedupe(evs)
}

// dedupe removes leaf evictions already covered by a subtree prune.
func dedupe(evs []Eviction) []Eviction {
	pruned := make(map[*index.Node]bool)
	for _, e := range evs {
		if e.Action == PruneChildren {
			for _, c := range e.Node.Children {
				pruned[c] = true
				for _, cc := range c.Children {
					pruned[cc] = true
				}
			}
		}
	}
	out := evs[:0]
	for _, e := range evs {
		if e.Action == EvictLeafData && pruned[e.Node] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// DeleteFunc removes one stored object (a DFS path) during Apply.
type DeleteFunc func(path string) error

// Result summarizes an Apply run.
type Result struct {
	LeavesDecayed int
	NodesPruned   int
	BytesFreed    int64
	RefsDeleted   int
}

// Apply executes planned evictions against the tree, deleting stored data
// through del. The tree's leaf count is refreshed when structure changes.
func Apply(t *index.Tree, evs []Eviction, del DeleteFunc) (Result, error) {
	var res Result
	structural := false
	for _, e := range evs {
		switch e.Action {
		case EvictLeafData:
			n := e.Node
			if n.Decayed {
				continue
			}
			for _, ref := range n.DataRefs {
				if err := del(ref); err != nil {
					return res, fmt.Errorf("decay: evict %s: %w", ref, err)
				}
				res.RefsDeleted++
			}
			res.BytesFreed += n.DataBytes
			n.DataRefs = nil
			n.Decayed = true
			res.LeavesDecayed++
		case PruneChildren:
			n := e.Node
			// Delete any raw data still referenced underneath.
			var gather func(*index.Node) error
			gather = func(c *index.Node) error {
				if c.IsLeaf() {
					if !c.Decayed {
						for _, ref := range c.DataRefs {
							if err := del(ref); err != nil {
								return fmt.Errorf("decay: prune %s: %w", ref, err)
							}
							res.RefsDeleted++
						}
						res.BytesFreed += c.DataBytes
						res.LeavesDecayed++
					}
					return nil
				}
				for _, cc := range c.Children {
					if err := gather(cc); err != nil {
						return err
					}
				}
				return nil
			}
			for _, c := range n.Children {
				if err := gather(c); err != nil {
					return res, err
				}
			}
			res.NodesPruned += len(n.Children)
			n.Children = nil
			structural = true
		}
	}
	if structural {
		t.RecountLeaves()
	}
	return res, nil
}
