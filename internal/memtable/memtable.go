// Package memtable holds the unsealed rows of SPATE's streaming ingest
// path: records that have been appended (and logged to the WAL) but whose
// 30-minute epoch has not yet sealed into compressed SPSG segments. It is
// the structure that closes the paper's ingestion blind spot — a row
// becomes explorable the moment it lands here, epochs before any seal.
//
// The table is lock-split: a top-level RWMutex guards only the
// epoch/table topology, while every (epoch, table) bucket carries its own
// lock, so appends to the current epoch, scans over older unsealed epochs
// and a seal draining one epoch proceed without serializing on one lock.
// Within a bucket rows stay in arrival order, with an index of
// time-ordered runs on top: records arrive roughly time-ordered, so runs
// stay few, and merging them streams the bucket in the same stable
// timestamp order the sealed leaf encoder produces — which is what makes
// pre-seal answers identical to post-seal answers for the same rows.
package memtable

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"spate/internal/highlights"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// run is one maximal ascending-timestamp range of a bucket's arrival
// order: positions [start, end).
type run struct{ start, end int }

// bucket holds one table's unsealed rows of one epoch.
type bucket struct {
	mu     sync.RWMutex
	schema *telco.Schema
	rows   []telco.Record // arrival order
	ts     []int64        // per-row unix seconds, aligned with rows
	runs   []run
	bytes  int64
	minTS  int64
	maxTS  int64
}

// Memtable is the in-memory table of unsealed rows, keyed by epoch and
// table name. All methods are safe for concurrent use.
type Memtable struct {
	mu  sync.RWMutex
	eps map[telco.Epoch]map[string]*bucket

	rows  atomic.Int64
	bytes atomic.Int64

	inserts *obs.Counter
}

// New returns an empty memtable reporting into reg (obs.Default when nil).
func New(reg *obs.Registry) *Memtable {
	if reg == nil {
		reg = obs.Default
	}
	m := &Memtable{eps: make(map[telco.Epoch]map[string]*bucket)}
	m.inserts = reg.Counter("spate_memtable_inserts_total", "Rows inserted into the streaming memtable.")
	reg.GaugeFunc("spate_memtable_rows", "Unsealed rows currently buffered.", func() float64 {
		return float64(m.rows.Load())
	})
	reg.GaugeFunc("spate_memtable_bytes", "Approximate bytes of unsealed rows currently buffered.", func() float64 {
		return float64(m.bytes.Load())
	})
	reg.GaugeFunc("spate_memtable_epochs", "Unsealed epochs currently buffered.", func() float64 {
		m.mu.RLock()
		defer m.mu.RUnlock()
		return float64(len(m.eps))
	})
	return m
}

// Size approximates one record's memory footprint — the Value headers
// plus string payloads — the unit the streamer's backpressure accounting
// and the memtable byte gauge both count in.
func Size(r telco.Record) int64 {
	n := int64(len(r)) * 24
	for _, v := range r {
		n += int64(len(v.Str()))
	}
	return n
}

// Insert appends one record of the named table. The record must carry a
// non-null timestamp — it determines the row's epoch, returned to the
// caller. Rows within a bucket keep arrival order.
func (m *Memtable) Insert(table string, rec telco.Record) (telco.Epoch, error) {
	schema := telco.SchemaByName(table)
	if schema == nil {
		return 0, fmt.Errorf("memtable: unknown schema %q", table)
	}
	tsIdx := schema.FieldIndex(telco.AttrTS)
	if tsIdx < 0 || tsIdx >= len(rec) || rec[tsIdx].IsNull() {
		return 0, fmt.Errorf("memtable: %s row lacks a timestamp", table)
	}
	if len(rec) != len(schema.Fields) {
		return 0, fmt.Errorf("memtable: %s row has %d fields, want %d", table, len(rec), len(schema.Fields))
	}
	at := rec[tsIdx].Time()
	e := telco.EpochOf(at)
	b := m.bucketFor(e, table, schema)
	ts := at.Unix()
	sz := Size(rec)
	b.mu.Lock()
	n := len(b.rows)
	b.rows = append(b.rows, rec)
	b.ts = append(b.ts, ts)
	if n == 0 {
		b.runs = append(b.runs, run{0, 1})
		b.minTS, b.maxTS = ts, ts
	} else {
		if last := &b.runs[len(b.runs)-1]; b.ts[last.end-1] <= ts {
			last.end++
		} else {
			b.runs = append(b.runs, run{n, n + 1})
		}
		if ts < b.minTS {
			b.minTS = ts
		}
		if ts > b.maxTS {
			b.maxTS = ts
		}
	}
	b.bytes += sz
	b.mu.Unlock()
	m.rows.Add(1)
	m.bytes.Add(sz)
	m.inserts.Inc()
	return e, nil
}

// bucketFor returns (creating if needed) the bucket of one epoch + table.
func (m *Memtable) bucketFor(e telco.Epoch, table string, schema *telco.Schema) *bucket {
	m.mu.RLock()
	tabs := m.eps[e]
	var b *bucket
	if tabs != nil {
		b = tabs[table]
	}
	m.mu.RUnlock()
	if b != nil {
		return b
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	tabs = m.eps[e]
	if tabs == nil {
		tabs = make(map[string]*bucket)
		m.eps[e] = tabs
	}
	b = tabs[table]
	if b == nil {
		b = &bucket{schema: schema}
		tabs[table] = b
	}
	return b
}

// Rows returns the number of buffered rows.
func (m *Memtable) Rows() int64 { return m.rows.Load() }

// Bytes returns the approximate buffered byte footprint.
func (m *Memtable) Bytes() int64 { return m.bytes.Load() }

// Epochs lists the buffered epochs strictly after `after`, ascending.
func (m *Memtable) Epochs(after telco.Epoch) []telco.Epoch {
	m.mu.RLock()
	out := make([]telco.Epoch, 0, len(m.eps))
	for e := range m.eps {
		if e > after {
			out = append(out, e)
		}
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MinEpoch returns the oldest buffered epoch, and false when empty.
func (m *Memtable) MinEpoch() (telco.Epoch, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	first := true
	var min telco.Epoch
	for e := range m.eps {
		if first || e < min {
			min, first = e, false
		}
	}
	return min, !first
}

// Overlaps reports whether any buffered epoch after `after` intersects w.
func (m *Memtable) Overlaps(w telco.TimeRange, after telco.Epoch) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for e := range m.eps {
		if e > after && e.Start().Before(w.To) && w.From.Before(e.End()) {
			return true
		}
	}
	return false
}

// orderedRows copies a bucket's rows out in stable timestamp order by
// merging its ascending runs (ties resolve to the earlier-created run,
// i.e. earlier arrival — the same order a stable sort by timestamp
// yields, which is exactly how the sealed leaf encoder clusters rows).
// Rows outside w are skipped; the zero range keeps everything.
func (b *bucket) orderedRows(w *telco.TimeRange, dst *telco.Table) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if w != nil && (b.maxTS < w.From.Unix() || b.minTS >= w.To.Unix()) && len(b.rows) > 0 {
		return
	}
	heads := make([]int, len(b.runs))
	for i, r := range b.runs {
		heads[i] = r.start
	}
	for {
		best := -1
		for i, r := range b.runs {
			if heads[i] >= r.end {
				continue
			}
			if best < 0 || b.ts[heads[i]] < b.ts[heads[best]] {
				best = i
			}
		}
		if best < 0 {
			return
		}
		pos := heads[best]
		heads[best]++
		if w != nil {
			at := b.ts[pos]
			if at < w.From.Unix() || at >= w.To.Unix() {
				continue
			}
		}
		dst.Append(b.rows[pos])
	}
}

// tableNames lists an epoch's buffered tables in sorted order. Caller
// must not hold m.mu.
func (m *Memtable) epochTables(e telco.Epoch) (names []string, tabs map[string]*bucket) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	src := m.eps[e]
	if src == nil {
		return nil, nil
	}
	tabs = make(map[string]*bucket, len(src))
	for name, b := range src {
		names = append(names, name)
		tabs[name] = b
	}
	sort.Strings(names)
	return names, tabs
}

// Scan streams the buffered rows of every epoch after `after` overlapping
// w through fn, one timestamp-ordered window-filtered table per
// (epoch, table) in epoch then table-name order — mirroring the call
// sequence a sealed-leaf scan produces. Empty tables are skipped. tables
// restricts the table selection (nil selects all).
func (m *Memtable) Scan(w telco.TimeRange, tables []string, after telco.Epoch, fn func(name string, tab *telco.Table) error) error {
	want := func(name string) bool {
		if len(tables) == 0 {
			return true
		}
		for _, t := range tables {
			if t == name {
				return true
			}
		}
		return false
	}
	for _, e := range m.Epochs(after) {
		if !e.Start().Before(w.To) || !w.From.Before(e.End()) {
			continue
		}
		names, tabs := m.epochTables(e)
		for _, name := range names {
			if !want(name) {
				continue
			}
			b := tabs[name]
			out := telco.NewTable(b.schema)
			b.orderedRows(&w, out)
			if out.Len() == 0 {
				continue
			}
			if err := fn(name, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// Parts builds one highlight summary per buffered epoch after `after`
// overlapping w, in chronological order — the unsealed counterpart of the
// sealed leaves' summary parts. Each part covers its epoch's whole period
// and folds tables in sorted name order over timestamp-ordered rows,
// reproducing the fold the ingest path runs at seal time, so the part an
// epoch contributes before sealing equals the leaf summary it contributes
// after.
func (m *Memtable) Parts(w telco.TimeRange, after telco.Epoch, cfg highlights.Config) []*highlights.Summary {
	var parts []*highlights.Summary
	for _, e := range m.Epochs(after) {
		if !e.Start().Before(w.To) || !w.From.Before(e.End()) {
			continue
		}
		s := highlights.NewSummary(telco.TimeRange{From: e.Start(), To: e.End()})
		names, tabs := m.epochTables(e)
		for _, name := range names {
			b := tabs[name]
			tab := telco.NewTable(b.schema)
			b.orderedRows(nil, tab)
			s.AddTable(cfg, tab)
		}
		if s.Rows > 0 {
			parts = append(parts, s)
		}
	}
	return parts
}

// SnapshotEpoch copies one epoch's buckets out as the snapshot the seal
// path ingests, rows in arrival order per table — the same snapshot a
// batch ingest of the stream would have built, so the sealed segments
// come out bit-for-bit identical. The buckets stay in place (the sealer
// drops them with DropEpoch only after the sealed leaf is visible, so
// queries never find the rows in neither structure). It returns nil when
// the epoch holds no rows.
func (m *Memtable) SnapshotEpoch(e telco.Epoch) *snapshot.Snapshot {
	names, tabs := m.epochTables(e)
	if len(names) == 0 {
		return nil
	}
	sn := snapshot.New(e)
	rows := 0
	for _, name := range names {
		b := tabs[name]
		b.mu.RLock()
		t := telco.NewTable(b.schema)
		t.Rows = append(make([]telco.Record, 0, len(b.rows)), b.rows...)
		b.mu.RUnlock()
		rows += t.Len()
		sn.Add(t)
	}
	if rows == 0 {
		return nil
	}
	return sn
}

// DropEpoch removes one epoch's buckets, returning how many rows and
// approximate bytes were released.
func (m *Memtable) DropEpoch(e telco.Epoch) (rows, bytes int64) {
	m.mu.Lock()
	tabs := m.eps[e]
	delete(m.eps, e)
	m.mu.Unlock()
	for _, b := range tabs {
		b.mu.Lock()
		rows += int64(len(b.rows))
		bytes += b.bytes
		b.rows, b.ts, b.runs = nil, nil, nil
		b.bytes = 0
		b.mu.Unlock()
	}
	m.rows.Add(-rows)
	m.bytes.Add(-bytes)
	return rows, bytes
}
