package memtable

import (
	"testing"
	"time"

	"spate/internal/highlights"
	"spate/internal/obs"
	"spate/internal/telco"
)

// nmsRow builds one NMS record at the given timestamp.
func nmsRow(ts time.Time, cell int64) telco.Record {
	return telco.Record{
		telco.Time(ts), telco.Int(cell), telco.Int(1), telco.Int(10),
		telco.Float(30), telco.Int(1000), telco.Float(-70), telco.Int(0),
	}
}

func newTestMemtable() *Memtable { return New(obs.NewRegistry()) }

var (
	t0 = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	// wide covers every epoch the tests touch; Scan and Parts select
	// epochs by window overlap, so "everything" needs a real range.
	wide = telco.NewTimeRange(t0.Add(-24*time.Hour), t0.Add(24*time.Hour))
)

func TestInsertCountsAndEpochs(t *testing.T) {
	m := newTestMemtable()
	e0 := telco.EpochOf(t0)
	for i := 0; i < 5; i++ {
		ep, err := m.Insert("NMS", nmsRow(t0.Add(time.Duration(i)*time.Minute), int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if ep != e0 {
			t.Fatalf("epoch = %v, want %v", ep, e0)
		}
	}
	// A row 30 minutes later lands in the next epoch.
	if ep, err := m.Insert("NMS", nmsRow(t0.Add(30*time.Minute), 9)); err != nil || ep != e0+1 {
		t.Fatalf("Insert = (%v, %v), want epoch %v", ep, err, e0+1)
	}
	if m.Rows() != 6 {
		t.Errorf("Rows = %d, want 6", m.Rows())
	}
	if m.Bytes() <= 0 {
		t.Errorf("Bytes = %d", m.Bytes())
	}
	if got := m.Epochs(e0 - 1); len(got) != 2 || got[0] != e0 || got[1] != e0+1 {
		t.Errorf("Epochs(after=%v) = %v", e0-1, got)
	}
	if got := m.Epochs(e0); len(got) != 1 || got[0] != e0+1 {
		t.Errorf("Epochs(after=%v) = %v (strictly-after contract)", e0, got)
	}
	if min, ok := m.MinEpoch(); !ok || min != e0 {
		t.Errorf("MinEpoch = (%v, %v)", min, ok)
	}
}

func TestInsertRejectsBadRows(t *testing.T) {
	m := newTestMemtable()
	if _, err := m.Insert("NOPE", nmsRow(t0, 1)); err == nil {
		t.Error("unknown schema accepted")
	}
	if _, err := m.Insert("NMS", telco.Record{telco.Time(t0)}); err == nil {
		t.Error("short row accepted")
	}
	bad := nmsRow(t0, 1)
	bad[0] = telco.Value{} // null timestamp
	if _, err := m.Insert("NMS", bad); err == nil {
		t.Error("null-timestamp row accepted")
	}
	if m.Rows() != 0 {
		t.Errorf("Rows = %d after rejected inserts", m.Rows())
	}
}

func TestScanOrdersOutOfOrderArrivals(t *testing.T) {
	m := newTestMemtable()
	// Arrival order deliberately shuffled in time within one epoch.
	offsets := []int{5, 1, 9, 1, 3, 0, 7}
	for i, off := range offsets {
		if _, err := m.Insert("NMS", nmsRow(t0.Add(time.Duration(off)*time.Minute), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var got []int64
	err := m.Scan(wide, nil, telco.EpochOf(t0)-1, func(table string, tab *telco.Table) error {
		if table != "NMS" {
			t.Fatalf("table = %q", table)
		}
		for _, r := range tab.Rows {
			got = append(got, r[0].Int64()) // unix seconds
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(offsets) {
		t.Fatalf("scanned %d rows, want %d", len(got), len(offsets))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("scan out of order at %d: %v", i, got)
		}
	}
}

func TestScanWindowAndAfterFilter(t *testing.T) {
	m := newTestMemtable()
	e0 := telco.EpochOf(t0)
	for i := 0; i < 4; i++ { // one row in each of 4 epochs
		if _, err := m.Insert("NMS", nmsRow(t0.Add(time.Duration(i)*30*time.Minute), 1)); err != nil {
			t.Fatal(err)
		}
	}
	count := func(w telco.TimeRange, after telco.Epoch) int {
		n := 0
		if err := m.Scan(w, nil, after, func(_ string, tab *telco.Table) error {
			n += tab.Len()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := count(wide, e0-1); n != 4 {
		t.Errorf("unfiltered scan = %d rows, want 4", n)
	}
	// after filter: epochs <= after are sealed and must not be scanned.
	if n := count(wide, e0+1); n != 2 {
		t.Errorf("after=%v scan = %d rows, want 2", e0+1, n)
	}
	// window filter: half-open [t0+30m, t0+60m) holds exactly epoch e0+1.
	w := telco.NewTimeRange(t0.Add(30*time.Minute), t0.Add(60*time.Minute))
	if n := count(w, e0-1); n != 1 {
		t.Errorf("windowed scan = %d rows, want 1", n)
	}
	if !m.Overlaps(w, e0-1) {
		t.Error("Overlaps = false for covered window")
	}
	if m.Overlaps(w, e0+2) {
		t.Error("Overlaps = true past the after watermark")
	}
}

func TestPartsSummarizePerEpoch(t *testing.T) {
	m := newTestMemtable()
	e0 := telco.EpochOf(t0)
	for i := 0; i < 3; i++ {
		if _, err := m.Insert("NMS", nmsRow(t0.Add(time.Duration(i)*time.Minute), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Insert("NMS", nmsRow(t0.Add(30*time.Minute), 7)); err != nil {
		t.Fatal(err)
	}
	parts := m.Parts(wide, e0-1, highlights.Config{})
	if len(parts) != 2 {
		t.Fatalf("%d parts, want 2 (one per epoch)", len(parts))
	}
	if parts[0].Rows != 3 || parts[1].Rows != 1 {
		t.Errorf("part rows = %d, %d; want 3, 1", parts[0].Rows, parts[1].Rows)
	}
	if !parts[0].Period.From.Equal(e0.Start()) || !parts[0].Period.To.Equal(e0.End()) {
		t.Errorf("part 0 period = %v", parts[0].Period)
	}
	// The after watermark hides sealed epochs from the summary path too.
	if parts := m.Parts(wide, e0, highlights.Config{}); len(parts) != 1 {
		t.Errorf("%d parts past watermark, want 1", len(parts))
	}
}

func TestSnapshotEpochIsNonDestructiveAndDropAdjusts(t *testing.T) {
	m := newTestMemtable()
	e0 := telco.EpochOf(t0)
	// Shuffled arrival order: the snapshot must preserve it (the engine's
	// encoder stable-sorts by ts itself, so arrival order in = batch
	// parity out).
	offsets := []int{3, 1, 2}
	for i, off := range offsets {
		if _, err := m.Insert("NMS", nmsRow(t0.Add(time.Duration(off)*time.Minute), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := m.SnapshotEpoch(e0)
	if snap == nil || snap.Epoch != e0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	tab := snap.Table("NMS")
	if tab == nil || tab.Len() != 3 {
		t.Fatalf("snapshot table = %+v", tab)
	}
	for i, off := range offsets {
		if got := tab.Rows[i][0].Time(); !got.Equal(t0.Add(time.Duration(off) * time.Minute)) {
			t.Fatalf("row %d ts = %v: arrival order not preserved", i, got)
		}
	}
	// Non-destructive: the rows are still queryable after the snapshot.
	if m.Rows() != 3 {
		t.Errorf("Rows = %d after snapshot, want 3", m.Rows())
	}
	rows, bytes := m.DropEpoch(e0)
	if rows != 3 || bytes <= 0 {
		t.Errorf("DropEpoch = (%d, %d)", rows, bytes)
	}
	if m.Rows() != 0 || m.Bytes() != 0 {
		t.Errorf("after drop: rows=%d bytes=%d", m.Rows(), m.Bytes())
	}
	if m.SnapshotEpoch(e0) != nil {
		t.Error("snapshot of dropped epoch is not nil")
	}
}

func TestSizeAccountsStringPayloads(t *testing.T) {
	small := Size(telco.Record{telco.Int(1)})
	big := Size(telco.Record{telco.String("a considerably longer string payload")})
	if small <= 0 || big <= small {
		t.Errorf("Size: small=%d big=%d", small, big)
	}
}
