package sqlengine

import (
	"context"
	"sort"
	"strings"
	"testing"

	"spate/internal/scanspec"
	"spate/internal/telco"
)

// aggCatalog wraps the shared test tables in providers that implement
// Aggregator the way a real storage layer must: the spec is authoritative,
// so Window, RequireTS and every predicate are applied exactly during the
// fold. Row scans behave like MemCatalog.
type aggCatalog map[string]*telco.Table

func (c aggCatalog) Table(name string) (Provider, error) {
	t, ok := c[name]
	if !ok {
		return nil, &testUnknownTable{name}
	}
	return aggProvider{t}, nil
}

type testUnknownTable struct{ name string }

func (e *testUnknownTable) Error() string { return "test: unknown table " + e.name }

type aggProvider struct{ t *telco.Table }

func (p aggProvider) Schema() *telco.Schema { return p.t.Schema }

func (p aggProvider) Scan(ctx context.Context, hint ScanHint, fn func(telco.Record) error) error {
	return memProvider{p.t}.Scan(ctx, hint, fn)
}

func (p aggProvider) Aggregate(_ context.Context, _ ScanHint, spec *scanspec.Spec) ([]scanspec.Partial, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	schema := p.t.Schema
	tsIdx := schema.FieldIndex(telco.AttrTS)
	groups := make(map[string]*scanspec.Partial)
	var order []string
	vals := make([]telco.Value, len(spec.Aggs))
	for _, r := range p.t.Rows {
		if tsIdx >= 0 && !r[tsIdx].IsNull() {
			if !spec.Window.Contains(r[tsIdx].Time().UnixNano()) {
				continue
			}
		} else if spec.RequireTS {
			continue
		}
		ok := true
		for _, pd := range spec.Preds {
			if !pd.Eval(r[schema.FieldIndex(pd.Col)]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		g := telco.Null
		if spec.GroupBy != "" {
			g = r[schema.FieldIndex(spec.GroupBy)]
		}
		key := g.Format()
		part := groups[key]
		if part == nil {
			part = spec.NewPartial(g)
			groups[key] = part
			order = append(order, key)
		}
		for i, a := range spec.Aggs {
			vals[i] = telco.Null
			if a.Col != "" {
				vals[i] = r[schema.FieldIndex(a.Col)]
			}
		}
		spec.AddRow(part, vals)
	}
	sort.Strings(order)
	out := make([]scanspec.Partial, 0, len(order))
	for _, k := range order {
		out = append(out, *groups[k])
	}
	return out, nil
}

// pushdownCatalog mirrors testCatalog's tables behind Aggregator providers.
func pushdownCatalog() aggCatalog {
	mem := testCatalog()
	return aggCatalog{"CDR": mem["CDR"], "NMS": mem["NMS"]}
}

// parityQueries are aggregate statements that must produce identical
// results through the partial-aggregate fast path and the row path.
var parityQueries = []string{
	`SELECT COUNT(*) FROM CDR`,
	`SELECT COUNT(*), SUM(duration), MIN(duration), MAX(duration) FROM CDR`,
	`SELECT COUNT(caller) FROM CDR`,
	`SELECT SUM(upflux) FROM CDR WHERE call_type='DATA'`,
	`SELECT COUNT(*) FROM CDR WHERE duration>=60`,
	`SELECT COUNT(*) FROM CDR WHERE cell_id!=1 AND duration<100`,
	`SELECT COUNT(*) FROM CDR WHERE ts>='201601221530' AND ts<'201601221600'`,
	`SELECT COUNT(*), MAX(duration) FROM CDR WHERE ts='2016012215'`,
	`SELECT COUNT(*) FROM CDR WHERE ts BETWEEN '201601221530' AND '201601221610'`,
	`SELECT MIN(caller), MAX(caller) FROM CDR`,
	`SELECT SUM(duration) FROM CDR WHERE duration>1000`, // empty: NULL sum
	`SELECT COUNT(*) FROM CDR WHERE caller='nobody'`,    // empty: zero count
	`SELECT cell_id, COUNT(*) FROM CDR GROUP BY cell_id ORDER BY cell_id`,
	`SELECT cell_id, COUNT(*), SUM(duration) FROM CDR GROUP BY cell_id ORDER BY cell_id DESC`,
	`SELECT call_type, MIN(duration), MAX(upflux) FROM CDR GROUP BY call_type ORDER BY call_type`,
	`SELECT cell_id, COUNT(*) FROM CDR WHERE call_type='VOICE' GROUP BY cell_id ORDER BY cell_id LIMIT 2`,
	`SELECT COUNT(*) FROM NMS WHERE val<=3`,
}

func TestAggregatePushdownParity(t *testing.T) {
	for _, q := range parityQueries {
		fast := NewEngine(pushdownCatalog())
		slow := NewEngine(pushdownCatalog())
		slow.DisablePushdown = true
		got, err := fast.Query(q)
		if err != nil {
			t.Fatalf("%s (pushdown): %v", q, err)
		}
		want, err := slow.Query(q)
		if err != nil {
			t.Fatalf("%s (row path): %v", q, err)
		}
		assertSameResult(t, q, got, want)
	}
}

// TestAggregatePushdownTaken proves the fast path actually runs for
// eligible statements (rather than both sides silently using rows): the
// provider counts Aggregate calls.
func TestAggregatePushdownTaken(t *testing.T) {
	calls := 0
	cat := countingCatalog{inner: pushdownCatalog(), calls: &calls}
	if _, err := NewEngine(cat).Query(`SELECT COUNT(*) FROM CDR WHERE duration>=60`); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("Aggregate calls = %d, want 1", calls)
	}
	// An ineligible statement (AVG cannot push down) must not call it.
	calls = 0
	if _, err := NewEngine(cat).Query(`SELECT AVG(duration) FROM CDR`); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("Aggregate calls for AVG = %d, want 0", calls)
	}
}

type countingCatalog struct {
	inner aggCatalog
	calls *int
}

func (c countingCatalog) Table(name string) (Provider, error) {
	p, err := c.inner.Table(name)
	if err != nil {
		return nil, err
	}
	return countingProvider{p.(aggProvider), c.calls}, nil
}

type countingProvider struct {
	aggProvider
	calls *int
}

func (p countingProvider) Aggregate(ctx context.Context, hint ScanHint, spec *scanspec.Spec) ([]scanspec.Partial, error) {
	*p.calls++
	return p.aggProvider.Aggregate(ctx, hint, spec)
}

func assertSameResult(t *testing.T, q string, got, want *ResultSet) {
	t.Helper()
	if len(got.Cols) != len(want.Cols) {
		t.Fatalf("%s: cols = %v, want %v", q, got.Cols, want.Cols)
	}
	for i := range got.Cols {
		if got.Cols[i] != want.Cols[i] {
			t.Fatalf("%s: cols = %v, want %v", q, got.Cols, want.Cols)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: rows = %d, want %d", q, len(got.Rows), len(want.Rows))
	}
	for r := range got.Rows {
		for c := range got.Rows[r] {
			g, w := got.Rows[r][c], want.Rows[r][c]
			if g.IsNull() != w.IsNull() || g.Kind() != w.Kind() || g.Format() != w.Format() {
				t.Errorf("%s: row %d col %d = %s (%v), want %s (%v)",
					q, r, c, g.Format(), g.Kind(), w.Format(), w.Kind())
			}
		}
	}
}

// TestAggPlanEligibility pins the statements the compiler must refuse to
// answer from partials (they would break row-path semantics).
func TestAggPlanEligibility(t *testing.T) {
	cat := pushdownCatalog()
	schema := cat["CDR"].Schema
	b := binding{name: "CDR", schema: schema}
	eligible := []string{
		`SELECT COUNT(*) FROM CDR`,
		`SELECT cell_id, COUNT(*) FROM CDR GROUP BY cell_id ORDER BY cell_id`,
		`SELECT MIN(duration) FROM CDR WHERE ts>'2016' AND cell_id=1`,
		`SELECT COUNT(*) FROM CDR WHERE duration BETWEEN 10 AND 100`,
	}
	for _, q := range eligible {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := compileAggPlan(stmt, b); !ok {
			t.Errorf("%s: expected eligible for aggregate pushdown", q)
		}
	}
	ineligible := []string{
		`SELECT AVG(duration) FROM CDR`,                                                       // AVG not pushable
		`SELECT COUNT(DISTINCT caller) FROM CDR`,                                              // DISTINCT arg
		`SELECT SUM(duration+1) FROM CDR`,                                                     // non-bare arg
		`SELECT COUNT(*) FROM CDR WHERE caller LIKE 'a%'`,                                     // undecomposable WHERE
		`SELECT COUNT(*) FROM CDR WHERE duration>60 OR upflux>0`,                              // disjunction
		`SELECT cell_id, COUNT(*) FROM CDR GROUP BY cell_id`,                                  // grouped w/o ORDER BY group
		`SELECT cell_id, COUNT(*) FROM CDR GROUP BY cell_id ORDER BY COUNT(*)`,                // ORDER BY non-group
		`SELECT cell_id, caller, COUNT(*) FROM CDR GROUP BY cell_id, caller ORDER BY cell_id`, // two keys
		`SELECT COUNT(*) FROM CDR GROUP BY cell_id HAVING COUNT(*)>1 ORDER BY cell_id`,        // HAVING
		`SELECT COUNT(*) FROM CDR WHERE ts!='2016'`,                                           // uncapturable ts op
	}
	for _, q := range ineligible {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := compileAggPlan(stmt, b); ok {
			t.Errorf("%s: expected ineligible for aggregate pushdown", q)
		}
	}
}

// TestCompileScanSpecShape pins the WHERE decomposition: which conjuncts
// become predicates, which become the exact time window, and which columns
// a projection needs.
func TestCompileScanSpecShape(t *testing.T) {
	cat := pushdownCatalog()
	b := binding{name: "CDR", schema: cat["CDR"].Schema}
	stmt, err := Parse(`SELECT caller FROM CDR WHERE duration>=60 AND ts>='201601221530' AND caller!='x'`)
	if err != nil {
		t.Fatal(err)
	}
	spec := compileScanSpec(stmt, b)
	if spec == nil {
		t.Fatal("spec = nil")
	}
	cols := spec.Referenced()
	wantCols := map[string]bool{"caller": true, "duration": true, "ts": true}
	if len(cols) != len(wantCols) {
		t.Fatalf("referenced = %v", cols)
	}
	for _, c := range cols {
		if !wantCols[c] {
			t.Fatalf("referenced = %v", cols)
		}
	}
	if len(spec.Preds) != 2 {
		t.Fatalf("preds = %v", spec.Preds)
	}
	if !spec.RequireTS || spec.Window == nil || !spec.Window.HasFrom || spec.Window.HasTo {
		t.Fatalf("window = %+v requireTS=%v", spec.Window, spec.RequireTS)
	}
	if spec.Window.From != t0.UnixNano() {
		t.Fatalf("window.From = %d, want %d", spec.Window.From, t0.UnixNano())
	}

	// An OR disables predicate capture but projection survives.
	stmt, err = Parse(`SELECT caller FROM CDR WHERE duration>=60 OR upflux>0`)
	if err != nil {
		t.Fatal(err)
	}
	spec = compileScanSpec(stmt, b)
	if spec == nil {
		t.Fatal("spec = nil")
	}
	if len(spec.Preds) != 0 || spec.RequireTS || spec.Window != nil {
		t.Fatalf("OR spec = %+v", spec)
	}
	if got := spec.Referenced(); len(got) != 3 { // caller, duration, upflux
		t.Fatalf("referenced = %v", got)
	}
}

// TestExplainShowsPushdown asserts EXPLAIN surfaces the pushdown decision
// for Aggregator-backed catalogs.
func TestExplainShowsPushdown(t *testing.T) {
	eng := NewEngine(pushdownCatalog())
	rs, err := eng.Query(`EXPLAIN SELECT cell_id, COUNT(*) FROM CDR WHERE duration>=60 GROUP BY cell_id ORDER BY cell_id`)
	if err != nil {
		t.Fatal(err)
	}
	var found string
	for _, r := range rs.Rows {
		if strings.HasPrefix(r[0].Str(), "PUSHDOWN aggregate:") {
			found = r[0].Str()
		}
	}
	if found == "" {
		t.Fatalf("no PUSHDOWN aggregate line in %v", rs.Rows)
	}
	for _, frag := range []string{"COUNT(*)", "group cell_id", "duration>=60"} {
		if !strings.Contains(found, frag) {
			t.Errorf("line %q lacks %q", found, frag)
		}
	}

	rs, err = eng.Query(`EXPLAIN SELECT caller FROM CDR WHERE duration>=60`)
	if err != nil {
		t.Fatal(err)
	}
	foundScan := false
	for _, r := range rs.Rows {
		if strings.HasPrefix(r[0].Str(), "PUSHDOWN scan:") {
			foundScan = true
		}
	}
	if !foundScan {
		t.Fatalf("no PUSHDOWN scan line in %v", rs.Rows)
	}
}

// TestRowPathSpecIsAdvisory runs non-aggregate statements whose WHERE only
// partially decomposes: the provider pre-filters on the captured conjuncts
// and the engine must still apply the rest.
func TestRowPathSpecIsAdvisory(t *testing.T) {
	for _, q := range []string{
		`SELECT caller FROM CDR WHERE duration>=60 AND caller LIKE 'a%' ORDER BY caller`,
		`SELECT caller, duration FROM CDR WHERE cell_id=2 ORDER BY caller`,
		`SELECT caller FROM CDR WHERE ts>='201601221540' ORDER BY caller`,
	} {
		fast := NewEngine(pushdownCatalog())
		slow := NewEngine(pushdownCatalog())
		slow.DisablePushdown = true
		got, err := fast.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := slow.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		assertSameResult(t, q, got, want)
	}
}
