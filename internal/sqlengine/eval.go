package sqlengine

import (
	"fmt"
	"math"
	"strings"

	"spate/internal/telco"
)

// evaluator computes expression values over combined rows.
type evaluator struct {
	scope *scope
	// subs holds pre-computed IN-subquery value sets.
	subs map[*InExpr]map[string]bool
	// aggValues holds the current group's aggregate results during
	// projection of aggregated queries.
	aggValues map[*AggFunc]telco.Value
	// rowAggs keeps each result row's aggregate map for ORDER BY.
	rowAggs []map[*AggFunc]telco.Value
}

// eval computes x over row.
func (ev *evaluator) eval(x Expr, row []telco.Value) (telco.Value, error) {
	switch v := x.(type) {
	case *Literal:
		switch {
		case v.IsNull:
			return telco.Null, nil
		case v.IsStr:
			return telco.String(v.Str), nil
		case v.IsInt:
			return telco.Int(v.Int), nil
		case v.IsBool:
			return boolVal(v.Bool), nil
		default:
			return telco.Float(v.Float), nil
		}
	case *ColumnRef:
		i, err := ev.scope.resolve(v)
		if err != nil {
			return telco.Null, err
		}
		if i >= len(row) {
			return telco.Null, nil
		}
		return row[i], nil
	case *AggFunc:
		if ev.aggValues == nil {
			return telco.Null, fmt.Errorf("sql: aggregate %s outside aggregation", v.Name)
		}
		val, ok := ev.aggValues[v]
		if !ok {
			return telco.Null, fmt.Errorf("sql: unresolved aggregate %s", v.Name)
		}
		return val, nil
	case *Unary:
		inner, err := ev.eval(v.X, row)
		if err != nil {
			return telco.Null, err
		}
		switch v.Op {
		case "-":
			switch inner.Kind() {
			case telco.KindInt:
				return telco.Int(-inner.Int64()), nil
			case telco.KindFloat:
				return telco.Float(-inner.Float64()), nil
			case telco.KindNull:
				return telco.Null, nil
			}
			return telco.Null, fmt.Errorf("sql: cannot negate %v", inner.Kind())
		case "NOT":
			if inner.IsNull() {
				return telco.Null, nil
			}
			return boolVal(!truthy(inner)), nil
		}
		return telco.Null, fmt.Errorf("sql: unknown unary %q", v.Op)
	case *Binary:
		return ev.evalBinary(v, row)
	case *IsNullExpr:
		inner, err := ev.eval(v.X, row)
		if err != nil {
			return telco.Null, err
		}
		return boolVal(inner.IsNull() != v.Negate), nil
	case *InExpr:
		return ev.evalIn(v, row)
	case *BetweenExpr:
		iv, err := ev.eval(v.X, row)
		if err != nil {
			return telco.Null, err
		}
		lo, err := ev.eval(v.Lo, row)
		if err != nil {
			return telco.Null, err
		}
		hi, err := ev.eval(v.Hi, row)
		if err != nil {
			return telco.Null, err
		}
		if iv.IsNull() || lo.IsNull() || hi.IsNull() {
			return telco.Null, nil
		}
		in := compare(iv, lo) >= 0 && compare(iv, hi) <= 0
		return boolVal(in != v.Negate), nil
	case *LikeExpr:
		iv, err := ev.eval(v.X, row)
		if err != nil {
			return telco.Null, err
		}
		if iv.IsNull() {
			return telco.Null, nil
		}
		m := likeMatch(iv.Format(), v.Pattern)
		return boolVal(m != v.Negate), nil
	case *FuncExpr:
		return ev.evalFunc(v, row)
	}
	return telco.Null, fmt.Errorf("sql: cannot evaluate %T", x)
}

// evalFunc computes a scalar function. Supported: time-part extraction
// (YEAR/MONTH/DAY/HOUR/MINUTE over time values), string functions (LENGTH,
// UPPER, LOWER, SUBSTR), numeric ABS and ROUND, and COALESCE.
func (ev *evaluator) evalFunc(f *FuncExpr, row []telco.Value) (telco.Value, error) {
	wantArgs := func(n int) error {
		if len(f.Args) != n {
			return fmt.Errorf("sql: %s wants %d argument(s), got %d", f.Name, n, len(f.Args))
		}
		return nil
	}
	// COALESCE short-circuits per argument.
	if f.Name == "COALESCE" {
		for _, a := range f.Args {
			v, err := ev.eval(a, row)
			if err != nil {
				return telco.Null, err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return telco.Null, nil
	}
	args := make([]telco.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := ev.eval(a, row)
		if err != nil {
			return telco.Null, err
		}
		args[i] = v
	}
	switch f.Name {
	case "YEAR", "MONTH", "DAY", "HOUR", "MINUTE":
		if err := wantArgs(1); err != nil {
			return telco.Null, err
		}
		if args[0].IsNull() {
			return telco.Null, nil
		}
		if args[0].Kind() != telco.KindTime {
			return telco.Null, fmt.Errorf("sql: %s wants a time value", f.Name)
		}
		t := args[0].Time()
		switch f.Name {
		case "YEAR":
			return telco.Int(int64(t.Year())), nil
		case "MONTH":
			return telco.Int(int64(t.Month())), nil
		case "DAY":
			return telco.Int(int64(t.Day())), nil
		case "HOUR":
			return telco.Int(int64(t.Hour())), nil
		default:
			return telco.Int(int64(t.Minute())), nil
		}
	case "LENGTH":
		if err := wantArgs(1); err != nil {
			return telco.Null, err
		}
		if args[0].IsNull() {
			return telco.Null, nil
		}
		return telco.Int(int64(len(args[0].Format()))), nil
	case "UPPER", "LOWER":
		if err := wantArgs(1); err != nil {
			return telco.Null, err
		}
		if args[0].IsNull() {
			return telco.Null, nil
		}
		s := args[0].Format()
		if f.Name == "UPPER" {
			return telco.String(strings.ToUpper(s)), nil
		}
		return telco.String(strings.ToLower(s)), nil
	case "SUBSTR":
		if err := wantArgs(3); err != nil {
			return telco.Null, err
		}
		if args[0].IsNull() {
			return telco.Null, nil
		}
		s := args[0].Format()
		start := int(args[1].Int64()) - 1 // SQL is 1-based
		n := int(args[2].Int64())
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := start + n
		if n < 0 || end > len(s) {
			end = len(s)
		}
		return telco.String(s[start:end]), nil
	case "ABS":
		if err := wantArgs(1); err != nil {
			return telco.Null, err
		}
		switch args[0].Kind() {
		case telco.KindNull:
			return telco.Null, nil
		case telco.KindInt:
			v := args[0].Int64()
			if v < 0 {
				v = -v
			}
			return telco.Int(v), nil
		case telco.KindFloat:
			return telco.Float(math.Abs(args[0].Float64())), nil
		}
		return telco.Null, fmt.Errorf("sql: ABS wants a number")
	case "ROUND":
		if err := wantArgs(1); err != nil {
			return telco.Null, err
		}
		switch args[0].Kind() {
		case telco.KindNull:
			return telco.Null, nil
		case telco.KindInt:
			return args[0], nil
		case telco.KindFloat:
			return telco.Float(math.Round(args[0].Float64())), nil
		}
		return telco.Null, fmt.Errorf("sql: ROUND wants a number")
	}
	return telco.Null, fmt.Errorf("sql: unknown function %s", f.Name)
}

func (ev *evaluator) evalBinary(b *Binary, row []telco.Value) (telco.Value, error) {
	// Short-circuit logical operators.
	switch b.Op {
	case "AND":
		l, err := ev.eval(b.Left, row)
		if err != nil {
			return telco.Null, err
		}
		if !l.IsNull() && !truthy(l) {
			return boolVal(false), nil
		}
		r, err := ev.eval(b.Right, row)
		if err != nil {
			return telco.Null, err
		}
		if !r.IsNull() && !truthy(r) {
			return boolVal(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return telco.Null, nil
		}
		return boolVal(true), nil
	case "OR":
		l, err := ev.eval(b.Left, row)
		if err != nil {
			return telco.Null, err
		}
		if !l.IsNull() && truthy(l) {
			return boolVal(true), nil
		}
		r, err := ev.eval(b.Right, row)
		if err != nil {
			return telco.Null, err
		}
		if !r.IsNull() && truthy(r) {
			return boolVal(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return telco.Null, nil
		}
		return boolVal(false), nil
	}
	l, err := ev.eval(b.Left, row)
	if err != nil {
		return telco.Null, err
	}
	r, err := ev.eval(b.Right, row)
	if err != nil {
		return telco.Null, err
	}
	switch b.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return telco.Null, nil
		}
		c := compare(l, r)
		switch b.Op {
		case "=":
			// Time = short-string-literal means containment in the
			// literal's covered interval (the paper's T1 semantics:
			// ts='201601221530' selects that minute).
			if eq, ok := timePrefixEqual(l, r); ok {
				return boolVal(eq), nil
			}
			return boolVal(c == 0), nil
		case "!=":
			if eq, ok := timePrefixEqual(l, r); ok {
				return boolVal(!eq), nil
			}
			return boolVal(c != 0), nil
		case "<":
			return boolVal(c < 0), nil
		case "<=":
			return boolVal(c <= 0), nil
		case ">":
			return boolVal(c > 0), nil
		default:
			return boolVal(c >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		if l.IsNull() || r.IsNull() {
			return telco.Null, nil
		}
		return arith(b.Op, l, r)
	}
	return telco.Null, fmt.Errorf("sql: unknown operator %q", b.Op)
}

func (ev *evaluator) evalIn(v *InExpr, row []telco.Value) (telco.Value, error) {
	iv, err := ev.eval(v.X, row)
	if err != nil {
		return telco.Null, err
	}
	if iv.IsNull() {
		return telco.Null, nil
	}
	if v.Sub != nil {
		set := ev.subs[v]
		if set == nil {
			return telco.Null, fmt.Errorf("sql: unresolved subquery")
		}
		return boolVal(set[iv.Format()] != v.Negate), nil
	}
	for _, le := range v.List {
		lv, err := ev.eval(le, row)
		if err != nil {
			return telco.Null, err
		}
		if !lv.IsNull() && compare(iv, lv) == 0 {
			return boolVal(!v.Negate), nil
		}
	}
	return boolVal(v.Negate), nil
}

// evalBool evaluates a predicate; NULL counts as false.
func (ev *evaluator) evalBool(x Expr, row []telco.Value) (bool, error) {
	v, err := ev.eval(x, row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && truthy(v), nil
}

// boolVal encodes booleans as integers (1/0), Hive-style.
func boolVal(b bool) telco.Value {
	if b {
		return telco.Int(1)
	}
	return telco.Int(0)
}

func truthy(v telco.Value) bool {
	switch v.Kind() {
	case telco.KindInt:
		return v.Int64() != 0
	case telco.KindFloat:
		return v.Float64() != 0
	case telco.KindString:
		return v.Str() != ""
	case telco.KindTime:
		return true
	default:
		return false
	}
}

// compare orders two values with cross-kind coercion: numerics compare
// numerically, and times compare with strings lexicographically on the
// wire form (Hive string-timestamp semantics).
func compare(a, b telco.Value) int {
	ak, bk := a.Kind(), b.Kind()
	if (ak == telco.KindTime && bk == telco.KindString) ||
		(ak == telco.KindString && bk == telco.KindTime) {
		return strings.Compare(a.Format(), b.Format())
	}
	return a.Compare(b)
}

// timePrefixEqual implements equality between a time value and a shorter
// timestamp literal as interval containment. The bool result reports
// whether this rule applied.
func timePrefixEqual(a, b telco.Value) (eq, ok bool) {
	var tv telco.Value
	var lit string
	switch {
	case a.Kind() == telco.KindTime && b.Kind() == telco.KindString:
		tv, lit = a, b.Str()
	case b.Kind() == telco.KindTime && a.Kind() == telco.KindString:
		tv, lit = b, a.Str()
	default:
		return false, false
	}
	if len(lit) >= len(telco.TimeLayout) {
		return tv.Format() == lit, true
	}
	lo, hi, valid := parseTimeLit(lit)
	if !valid {
		return false, true
	}
	t := tv.Time()
	return !t.Before(lo) && t.Before(hi), true
}

func arith(op string, l, r telco.Value) (telco.Value, error) {
	bothInt := l.Kind() == telco.KindInt && r.Kind() == telco.KindInt
	if bothInt {
		a, b := l.Int64(), r.Int64()
		switch op {
		case "+":
			return telco.Int(a + b), nil
		case "-":
			return telco.Int(a - b), nil
		case "*":
			return telco.Int(a * b), nil
		case "/":
			if b == 0 {
				return telco.Null, nil
			}
			return telco.Int(a / b), nil
		case "%":
			if b == 0 {
				return telco.Null, nil
			}
			return telco.Int(a % b), nil
		}
	}
	a, b := l.Float64(), r.Float64()
	if (l.Kind() != telco.KindInt && l.Kind() != telco.KindFloat) ||
		(r.Kind() != telco.KindInt && r.Kind() != telco.KindFloat) {
		return telco.Null, fmt.Errorf("sql: arithmetic on non-numeric values")
	}
	switch op {
	case "+":
		return telco.Float(a + b), nil
	case "-":
		return telco.Float(a - b), nil
	case "*":
		return telco.Float(a * b), nil
	case "/":
		if b == 0 {
			return telco.Null, nil
		}
		return telco.Float(a / b), nil
	case "%":
		return telco.Null, fmt.Errorf("sql: %% on floats")
	}
	return telco.Null, fmt.Errorf("sql: unknown arithmetic %q", op)
}

// likeMatch implements SQL LIKE with % (any run) and _ (any byte).
func likeMatch(s, pattern string) bool {
	// Dynamic programming over pattern/string positions, iterative
	// two-pointer with backtracking on the last %.
	var si, pi int
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			starSi = si
			pi++
		case star >= 0:
			pi = star + 1
			starSi++
			si = starSi
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// aggState accumulates one aggregate function.
type aggState interface {
	add(v telco.Value, star bool)
	value() telco.Value
}

func newAggState(a *AggFunc) aggState {
	switch a.Name {
	case "COUNT":
		if a.Distinct {
			return &countState{distinct: map[string]bool{}}
		}
		return &countState{}
	case "SUM":
		return &sumState{}
	case "AVG":
		return &avgState{}
	case "MIN":
		return &minMaxState{min: true}
	case "MAX":
		return &minMaxState{}
	default:
		panic("sql: unknown aggregate " + a.Name)
	}
}

type countState struct {
	n        int64
	distinct map[string]bool // non-nil for COUNT(DISTINCT x)
}

func (s *countState) add(v telco.Value, star bool) {
	if s.distinct != nil {
		if !v.IsNull() {
			s.distinct[v.Format()] = true
		}
		return
	}
	if star || !v.IsNull() {
		s.n++
	}
}

func (s *countState) value() telco.Value {
	if s.distinct != nil {
		return telco.Int(int64(len(s.distinct)))
	}
	return telco.Int(s.n)
}

type sumState struct {
	sum     float64
	intSum  int64
	allInts bool
	seen    bool
}

func (s *sumState) add(v telco.Value, _ bool) {
	if v.IsNull() {
		return
	}
	if !s.seen {
		s.allInts = true
	}
	s.seen = true
	if v.Kind() != telco.KindInt {
		s.allInts = false
	}
	s.intSum += v.Int64()
	s.sum += v.Float64()
}

func (s *sumState) value() telco.Value {
	if !s.seen {
		return telco.Null
	}
	if s.allInts {
		return telco.Int(s.intSum)
	}
	return telco.Float(s.sum)
}

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) add(v telco.Value, _ bool) {
	if v.IsNull() {
		return
	}
	s.sum += v.Float64()
	s.n++
}

func (s *avgState) value() telco.Value {
	if s.n == 0 {
		return telco.Null
	}
	return telco.Float(s.sum / float64(s.n))
}

type minMaxState struct {
	min  bool
	best telco.Value
	seen bool
}

func (s *minMaxState) add(v telco.Value, _ bool) {
	if v.IsNull() {
		return
	}
	if !s.seen {
		s.best = v
		s.seen = true
		return
	}
	c := compare(v, s.best)
	if (s.min && c < 0) || (!s.min && c > 0) {
		s.best = v
	}
}

func (s *minMaxState) value() telco.Value {
	if !s.seen {
		return telco.Null
	}
	return s.best
}
