package sqlengine

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse compiles one SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	explain := p.acceptKeyword("EXPLAIN")
	analyze := explain && p.acceptKeyword("ANALYZE")
	stmt, err := p.selectStmt()
	if err != nil {
		return nil, err
	}
	stmt.Explain, stmt.Analyze = explain, analyze
	// Optional trailing semicolon.
	if p.peek().kind == tokPunct && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at %d: %q", p.peek().pos, p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sql: expected %s at %d, got %q", kw, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if p.peek().kind == tokPunct && p.peek().text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("sql: expected %q at %d, got %q", s, p.peek().pos, p.peek().text)
	}
	return nil
}

func (p *parser) selectStmt() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")

	// Select list.
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tr, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = tr

	// JOIN ... ON ...
	for p.acceptKeyword("INNER") || p.peek().text == "JOIN" {
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		jt, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, JoinClause{Table: jt, On: on})
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.expr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.expr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: LIMIT wants a number at %d", t.pos)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.peek().kind == tokOp && p.peek().text == "*" {
		p.next()
		return SelectItem{Star: true}, nil
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.kind != tokIdent {
			return item, fmt.Errorf("sql: expected alias at %d", t.pos)
		}
		item.Alias = t.text
	} else if p.peek().kind == tokIdent {
		item.Alias = p.next().text
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return TableRef{}, fmt.Errorf("sql: expected table name at %d, got %q", t.pos, t.text)
	}
	tr := TableRef{Name: t.text}
	if p.acceptKeyword("AS") {
		a := p.next()
		if a.kind != tokIdent {
			return tr, fmt.Errorf("sql: expected alias at %d", a.pos)
		}
		tr.Alias = a.text
	} else if p.peek().kind == tokIdent {
		tr.Alias = p.next().text
	}
	return tr, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := [NOT] predicate
//	predicate := addExpr [cmpOp addExpr | IS [NOT] NULL | [NOT] IN (...) |
//	             [NOT] BETWEEN addExpr AND addExpr | [NOT] LIKE 'pat']
//	addExpr := mulExpr (('+'|'-') mulExpr)*
//	mulExpr := unary (('*'|'/'|'%') unary)*
//	unary   := ['-'] primary
//	primary := literal | column | agg | '(' expr | subquery ')'
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.predicate()
}

func (p *parser) predicate() (Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// Comparison?
	if p.peek().kind == tokOp {
		switch op := p.peek().text; op {
		case "=", "!=", "<>", "<", "<=", ">", ">=":
			p.next()
			right, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			if op == "<>" {
				op = "!="
			}
			return &Binary{Op: op, Left: left, Right: right}, nil
		}
	}
	negate := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		// Look ahead for NOT IN / NOT BETWEEN / NOT LIKE.
		if p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokKeyword {
			switch p.toks[p.i+1].text {
			case "IN", "BETWEEN", "LIKE":
				p.next()
				negate = true
			}
		}
	}
	switch {
	case p.acceptKeyword("IS"):
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: left, Negate: neg}, nil
	case p.acceptKeyword("IN"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &InExpr{X: left, Sub: sub, Negate: negate}, nil
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &InExpr{X: left, List: list, Negate: negate}, nil
	case p.acceptKeyword("BETWEEN"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: left, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.acceptKeyword("LIKE"):
		t := p.next()
		if t.kind != tokString {
			return nil, fmt.Errorf("sql: LIKE wants a string pattern at %d", t.pos)
		}
		return &LikeExpr{X: left, Pattern: t.text, Negate: negate}, nil
	}
	return left, nil
}

func (p *parser) addExpr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "*" || p.peek().text == "/" || p.peek().text == "%") {
		op := p.next().text
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) unary() (Expr, error) {
	if p.peek().kind == tokOp && p.peek().text == "-" {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return &Literal{IsInt: true, Int: i}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return &Literal{Float: f}, nil
	case tokString:
		p.next()
		return &Literal{IsStr: true, Str: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{IsNull: true}, nil
		case "TRUE":
			p.next()
			return &Literal{IsBool: true, Bool: true}, nil
		case "FALSE":
			p.next()
			return &Literal{IsBool: true, Bool: false}, nil
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			p.next()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			agg := &AggFunc{Name: t.text}
			if p.peek().kind == tokOp && p.peek().text == "*" {
				p.next()
				agg.Star = true
			} else {
				agg.Distinct = p.acceptKeyword("DISTINCT")
				arg, err := p.expr()
				if err != nil {
					return nil, err
				}
				agg.Arg = arg
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return agg, nil
		}
		return nil, fmt.Errorf("sql: unexpected keyword %q at %d", t.text, t.pos)
	case tokIdent:
		p.next()
		// Scalar function call?
		if p.peek().kind == tokPunct && p.peek().text == "(" {
			p.next()
			fn := &FuncExpr{Name: strings.ToUpper(t.text)}
			if !p.acceptPunct(")") {
				for {
					arg, err := p.expr()
					if err != nil {
						return nil, err
					}
					fn.Args = append(fn.Args, arg)
					if !p.acceptPunct(",") {
						break
					}
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			return fn, nil
		}
		if p.acceptPunct(".") {
			col := p.next()
			if col.kind != tokIdent {
				return nil, fmt.Errorf("sql: expected column after %q.", t.text)
			}
			return &ColumnRef{Qualifier: t.text, Name: col.text}, nil
		}
		return &ColumnRef{Name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("sql: unexpected token %q at %d", t.text, t.pos)
}
