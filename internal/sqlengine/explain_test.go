package sqlengine

import (
	"strings"
	"testing"
)

func planOf(t *testing.T, sql string) []string {
	t.Helper()
	rs := mustQuery(t, sql)
	if len(rs.Cols) != 1 || rs.Cols[0] != "plan" {
		t.Fatalf("explain columns = %v", rs.Cols)
	}
	lines := make([]string, 0, len(rs.Rows))
	for _, r := range rs.Rows {
		lines = append(lines, r[0].Format())
	}
	return lines
}

func TestExplainPlanLines(t *testing.T) {
	lines := planOf(t, `EXPLAIN SELECT caller, SUM(duration) FROM CDR
		WHERE ts >= '201601221530' AND ts < '201601221630' AND call_type = 'VOICE'
		GROUP BY caller HAVING SUM(duration) > 10 ORDER BY caller LIMIT 5`)
	wantPrefixes := []string{
		"SCAN CDR [ts pushdown ",
		"FILTER ",
		"AGGREGATE GROUP BY caller",
		"HAVING ",
		"ORDER BY caller",
		"LIMIT 5",
	}
	if len(lines) != len(wantPrefixes) {
		t.Fatalf("plan = %q, want %d lines", lines, len(wantPrefixes))
	}
	for i, p := range wantPrefixes {
		if !strings.HasPrefix(lines[i], p) {
			t.Errorf("plan line %d = %q, want prefix %q", i, lines[i], p)
		}
	}
}

func TestExplainFullScanWithoutPushdown(t *testing.T) {
	lines := planOf(t, `EXPLAIN SELECT caller FROM CDR`)
	if len(lines) != 1 || lines[0] != "SCAN CDR [full scan]" {
		t.Fatalf("plan = %q", lines)
	}
}

func TestExplainJoinPlan(t *testing.T) {
	lines := planOf(t, `EXPLAIN SELECT c.caller FROM CDR AS c JOIN NMS AS n ON c.cell_id = n.cell_id`)
	if len(lines) < 2 {
		t.Fatalf("plan = %q", lines)
	}
	if !strings.HasPrefix(lines[0], "SCAN CDR AS c") {
		t.Errorf("line 0 = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "JOIN NMS AS n") || !strings.Contains(lines[1], " ON ") {
		t.Errorf("line 1 = %q", lines[1])
	}
}

// TestExplainAnalyzeExecutes checks ANALYZE actually runs the statement and
// appends rows and wall time; MemCatalog has no profiler, so no storage
// lines appear.
func TestExplainAnalyzeExecutes(t *testing.T) {
	lines := planOf(t, `EXPLAIN ANALYZE SELECT caller FROM CDR WHERE call_type = 'VOICE'`)
	var rows, timing bool
	for _, ln := range lines {
		if ln == "rows: 3" {
			rows = true
		}
		if strings.HasPrefix(ln, "time: ") && strings.HasSuffix(ln, " ms") {
			timing = true
		}
	}
	if !rows || !timing {
		t.Fatalf("analyze output missing rows/time lines: %q", lines)
	}
}

// TestExplainIsNotAnalyze: plain EXPLAIN must not execute the query, so no
// rows/time report appears.
func TestExplainIsNotAnalyze(t *testing.T) {
	for _, ln := range planOf(t, `EXPLAIN SELECT caller FROM CDR`) {
		if strings.HasPrefix(ln, "rows: ") || strings.HasPrefix(ln, "time: ") {
			t.Fatalf("EXPLAIN executed the query: %q", ln)
		}
	}
}
