package sqlengine

import (
	"context"
	"fmt"
	"time"

	"spate/internal/telco"
)

// ExplainProfiler is implemented by catalogs whose storage layer can
// account per-query scan cost. EXPLAIN ANALYZE asks the catalog for a
// profiled context before executing and renders the returned report lines
// after; catalogs without one (e.g. MemCatalog) analyze with rows and wall
// time only.
type ExplainProfiler interface {
	// WithProfile returns a context under which scans accrue cost, and a
	// render function producing the report lines once execution finishes.
	WithProfile(ctx context.Context) (context.Context, func() []string)
}

// explain serves EXPLAIN and EXPLAIN ANALYZE: the plan alone, or the plan
// plus an execution report (rows, wall time, storage profile).
func (e *Engine) explain(ctx context.Context, stmt *SelectStmt) (*ResultSet, error) {
	lines := planLines(stmt)
	lines = append(lines, e.pushdownLines(stmt)...)
	rs := &ResultSet{Cols: []string{"plan"}}
	if stmt.Analyze {
		inner := *stmt
		inner.Explain, inner.Analyze = false, false
		var render func() []string
		if pp, ok := e.cat.(ExplainProfiler); ok {
			ctx, render = pp.WithProfile(ctx)
		}
		t0 := time.Now()
		res, err := e.RunContext(ctx, &inner)
		if err != nil {
			return nil, err
		}
		lines = append(lines,
			fmt.Sprintf("rows: %d", len(res.Rows)),
			fmt.Sprintf("time: %.3f ms", float64(time.Since(t0))/float64(time.Millisecond)),
		)
		if render != nil {
			lines = append(lines, render()...)
		}
	}
	for _, ln := range lines {
		rs.Rows = append(rs.Rows, []telco.Value{telco.String(ln)})
	}
	return rs, nil
}

// pushdownLines reports what the columnar storage layer will consume for a
// single-table statement. Lines appear only for providers that implement
// Aggregator (i.e. spec-aware storage): either the whole aggregate is
// answered from partials, or the scan ships a column/predicate spec.
// Catalogs without pushdown-capable storage keep their plans unchanged.
func (e *Engine) pushdownLines(stmt *SelectStmt) []string {
	if e.DisablePushdown || len(stmt.Joins) > 0 {
		return nil
	}
	p, err := e.cat.Table(stmt.From.Name)
	if err != nil {
		return nil
	}
	if _, isAgg := p.(Aggregator); !isAgg {
		return nil
	}
	b := binding{name: stmt.From.binding(), schema: p.Schema()}
	if plan, ok := compileAggPlan(stmt, b); ok {
		return []string{"PUSHDOWN aggregate: " + plan.spec.String()}
	}
	if spec := compileScanSpec(stmt, b); spec != nil {
		return []string{"PUSHDOWN scan: " + spec.String()}
	}
	return nil
}

// planLines renders the statement's evaluation plan, one step per line, in
// execution order. The scan lines surface the planner's only real
// decision: whether a ts predicate was pushed down into the storage index.
func planLines(stmt *SelectStmt) []string {
	var lines []string
	scanLine := func(tr TableRef, bindingName string) string {
		s := "SCAN " + tr.Name
		if tr.Alias != "" {
			s += " AS " + tr.Alias
		}
		if w, ok := extractWindow(stmt.Where, bindingName); ok {
			s += fmt.Sprintf(" [ts pushdown %s .. %s]",
				w.From.UTC().Format("2006-01-02T15:04:05"),
				w.To.UTC().Format("2006-01-02T15:04:05"))
		} else {
			s += " [full scan]"
		}
		return s
	}
	lines = append(lines, scanLine(stmt.From, stmt.From.binding()))
	for _, j := range stmt.Joins {
		lines = append(lines, "JOIN "+scanLine(j.Table, j.Table.binding())[len("SCAN "):]+
			" ON "+j.On.exprString())
	}
	if stmt.Where != nil {
		lines = append(lines, "FILTER "+stmt.Where.exprString())
	}
	if len(stmt.GroupBy) > 0 || containsAgg(stmt) {
		s := "AGGREGATE"
		if len(stmt.GroupBy) > 0 {
			s += " GROUP BY"
			for i, g := range stmt.GroupBy {
				if i > 0 {
					s += ","
				}
				s += " " + g.exprString()
			}
		}
		lines = append(lines, s)
	}
	if stmt.Having != nil {
		lines = append(lines, "HAVING "+stmt.Having.exprString())
	}
	if stmt.Distinct {
		lines = append(lines, "DISTINCT")
	}
	if len(stmt.OrderBy) > 0 {
		s := "ORDER BY"
		for i, k := range stmt.OrderBy {
			if i > 0 {
				s += ","
			}
			s += " " + k.Expr.exprString()
			if k.Desc {
				s += " DESC"
			}
		}
		lines = append(lines, s)
	}
	if stmt.Limit >= 0 {
		lines = append(lines, fmt.Sprintf("LIMIT %d", stmt.Limit))
	}
	return lines
}
