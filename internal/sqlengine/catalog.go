package sqlengine

import (
	"context"
	"fmt"
	"time"

	"spate/internal/scanspec"
	"spate/internal/telco"
)

// ScanHint carries predicates the executor pushed down to storage: SPATE
// and SHAHED prune snapshots through their temporal index, RAW ignores it.
type ScanHint struct {
	// Window bounds the ts attribute when Constrained is true. It is a
	// conservative superset of the matching rows.
	Window      telco.TimeRange
	Constrained bool
	// Spec, when non-nil, is the compiled pushdown spec for the scan: the
	// columns the engine will read and the WHERE conjuncts storage may
	// pre-apply. It is advisory — the engine re-evaluates the full WHERE
	// clause — so providers may ignore it, apply only the predicates, or
	// return rows holding null in every column outside Spec.Referenced().
	Spec *scanspec.Spec
}

// Provider streams the rows of one table. Scan honors ctx: a canceled
// context stops the stream with ctx.Err() (SPATE prunes between snapshot
// decompressions; in-memory providers check between rows).
type Provider interface {
	Schema() *telco.Schema
	Scan(ctx context.Context, hint ScanHint, fn func(telco.Record) error) error
}

// Aggregator is implemented by providers whose storage layer can fold a
// Spec's simple aggregates chunk-side and return partial aggregates instead
// of rows. Unlike ScanHint.Spec, the spec here is authoritative: the
// provider must apply Window, RequireTS and every predicate exactly as the
// engine's row path would, because the engine renders the partials straight
// into the result set.
type Aggregator interface {
	Aggregate(ctx context.Context, hint ScanHint, spec *scanspec.Spec) ([]scanspec.Partial, error)
}

// Catalog resolves table names.
type Catalog interface {
	Table(name string) (Provider, error)
}

// MemCatalog is an in-memory catalog over materialized tables; the unit-
// test harness and small tools use it.
type MemCatalog map[string]*telco.Table

// Table implements Catalog.
func (m MemCatalog) Table(name string) (Provider, error) {
	t, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", name)
	}
	return memProvider{t}, nil
}

type memProvider struct{ t *telco.Table }

func (p memProvider) Schema() *telco.Schema { return p.t.Schema }

func (p memProvider) Scan(ctx context.Context, hint ScanHint, fn func(telco.Record) error) error {
	tsIdx := p.t.Schema.FieldIndex(telco.AttrTS)
	for _, r := range p.t.Rows {
		if err := ctx.Err(); err != nil {
			return err
		}
		if hint.Constrained && tsIdx >= 0 && !r[tsIdx].IsNull() && !hint.Window.Contains(r[tsIdx].Time()) {
			continue
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// parseTimeLit interprets a (possibly truncated) timestamp literal like the
// paper's '2015' or '201601221530' as the covered time interval
// [lo, hi): '2016' covers the year, '20160122' the day, and so on.
// Accepted lengths: 4 (year), 6 (month), 8 (day), 10 (hour), 12 (minute),
// 14 (second).
func parseTimeLit(s string) (lo, hi time.Time, ok bool) {
	layouts := map[int]string{
		4: "2006", 6: "200601", 8: "20060102",
		10: "2006010215", 12: "200601021504", 14: "20060102150405",
	}
	layout, found := layouts[len(s)]
	if !found {
		return lo, hi, false
	}
	t, err := time.ParseInLocation(layout, s, time.UTC)
	if err != nil {
		return lo, hi, false
	}
	switch len(s) {
	case 4:
		return t, t.AddDate(1, 0, 0), true
	case 6:
		return t, t.AddDate(0, 1, 0), true
	case 8:
		return t, t.AddDate(0, 0, 1), true
	case 10:
		return t, t.Add(time.Hour), true
	case 12:
		return t, t.Add(time.Minute), true
	default:
		return t, t.Add(time.Second), true
	}
}

// extractWindow walks a WHERE tree's conjunctions and derives a pushdown
// window from comparisons between the ts column of the given binding and
// time literals. The result is a conservative superset.
func extractWindow(where Expr, binding string) (telco.TimeRange, bool) {
	var lo, hi time.Time
	haveLo, haveHi := false, false

	var visit func(e Expr)
	visit = func(e Expr) {
		b, isBin := e.(*Binary)
		if !isBin {
			if bt, isBetween := e.(*BetweenExpr); isBetween && !bt.Negate {
				if isTSCol(bt.X, binding) {
					if l, _, ok := litTime(bt.Lo); ok {
						tightenLo(&lo, &haveLo, l)
					}
					if _, h, ok := litTime(bt.Hi); ok {
						tightenHi(&hi, &haveHi, h)
					}
				}
			}
			return
		}
		if b.Op == "AND" {
			visit(b.Left)
			visit(b.Right)
			return
		}
		col, lit := b.Left, b.Right
		op := b.Op
		if !isTSCol(col, binding) {
			// Allow literal-on-the-left comparisons by flipping.
			if isTSCol(lit, binding) {
				col, lit = lit, col
				op = flip(op)
			} else {
				return
			}
		}
		l, h, ok := litTime(lit)
		if !ok {
			return
		}
		switch op {
		case "=":
			tightenLo(&lo, &haveLo, l)
			tightenHi(&hi, &haveHi, h)
		case ">", ">=":
			tightenLo(&lo, &haveLo, l)
		case "<":
			tightenHi(&hi, &haveHi, h)
		case "<=":
			tightenHi(&hi, &haveHi, h)
		}
		_ = col
	}
	if where != nil {
		visit(where)
	}
	if !haveLo && !haveHi {
		return telco.TimeRange{}, false
	}
	if !haveLo {
		lo = time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if !haveHi {
		hi = time.Date(2100, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return telco.TimeRange{From: lo, To: hi}, true
}

func tightenLo(lo *time.Time, have *bool, t time.Time) {
	if !*have || t.After(*lo) {
		*lo = t
		*have = true
	}
}

func tightenHi(hi *time.Time, have *bool, t time.Time) {
	if !*have || t.Before(*hi) {
		*hi = t
		*have = true
	}
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

func isTSCol(e Expr, binding string) bool {
	c, ok := e.(*ColumnRef)
	if !ok || c.Name != telco.AttrTS {
		return false
	}
	return c.Qualifier == "" || c.Qualifier == binding
}

func litTime(e Expr) (lo, hi time.Time, ok bool) {
	l, isLit := e.(*Literal)
	if !isLit || !l.IsStr {
		return lo, hi, false
	}
	return parseTimeLit(l.Str)
}
