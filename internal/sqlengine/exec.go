package sqlengine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"spate/internal/obs"
	"spate/internal/scanspec"
	"spate/internal/telco"
)

// Engine executes SELECT statements against a catalog.
type Engine struct {
	cat Catalog
	// DisablePushdown forces row-path execution even when the provider
	// supports aggregate pushdown — the escape hatch parity tests use to
	// compare both paths bit for bit.
	DisablePushdown bool
}

// NewEngine returns an executor over cat.
func NewEngine(cat Catalog) *Engine { return &Engine{cat: cat} }

// ResultSet is a materialized query answer.
type ResultSet struct {
	Cols []string
	Rows [][]telco.Value
}

// SPATE-SQL observability: statement counts and latency, reported into the
// process-wide registry (bound lazily so noop test registries elsewhere are
// unaffected).
var (
	sqlMetOnce sync.Once
	sqlQueries *obs.Counter
	sqlErrors  *obs.Counter
	sqlSeconds *obs.Histogram
)

func sqlMetrics() (*obs.Counter, *obs.Counter, *obs.Histogram) {
	sqlMetOnce.Do(func() {
		sqlQueries = obs.Default.Counter("spate_sql_queries_total", "SPATE-SQL statements executed.")
		sqlErrors = obs.Default.Counter("spate_sql_errors_total", "SPATE-SQL statements that failed to parse or run.")
		sqlSeconds = obs.Default.Histogram("spate_sql_query_seconds", "SPATE-SQL statement latency.", nil)
	})
	return sqlQueries, sqlErrors, sqlSeconds
}

// Query parses and runs one statement.
func (e *Engine) Query(sql string) (*ResultSet, error) {
	return e.QueryContext(context.Background(), sql)
}

// QueryContext parses and runs one statement under ctx: cancellation
// propagates through the storage scans, so an abandoned client request
// stops consuming the engine (webui handlers pass r.Context()).
func (e *Engine) QueryContext(ctx context.Context, sql string) (*ResultSet, error) {
	queries, errs, sec := sqlMetrics()
	t0 := time.Now()
	queries.Inc()
	rs, err := func() (*ResultSet, error) {
		stmt, err := Parse(sql)
		if err != nil {
			return nil, err
		}
		return e.RunContext(ctx, stmt)
	}()
	sec.ObserveSince(t0)
	if err != nil {
		errs.Inc()
	}
	return rs, err
}

// binding maps one FROM/JOIN table into the combined row.
type binding struct {
	name   string // alias or table name
	schema *telco.Schema
	offset int
}

// scope resolves column references against the combined row layout.
type scope struct {
	bindings []binding
}

func (s *scope) resolve(c *ColumnRef) (int, error) {
	found := -1
	for _, b := range s.bindings {
		if c.Qualifier != "" && c.Qualifier != b.name {
			continue
		}
		if i := b.schema.FieldIndex(c.Name); i >= 0 {
			if found >= 0 {
				return 0, fmt.Errorf("sql: ambiguous column %q", c.exprString())
			}
			found = b.offset + i
		}
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %q", c.exprString())
	}
	return found, nil
}

// width returns the combined row width.
func (s *scope) width() int {
	last := s.bindings[len(s.bindings)-1]
	return last.offset + last.schema.NumFields()
}

// Run executes a parsed statement.
func (e *Engine) Run(stmt *SelectStmt) (*ResultSet, error) {
	return e.RunContext(context.Background(), stmt)
}

// RunContext executes a parsed statement under ctx.
func (e *Engine) RunContext(ctx context.Context, stmt *SelectStmt) (*ResultSet, error) {
	if stmt.Explain {
		return e.explain(ctx, stmt)
	}
	// Bind FROM and JOIN tables.
	sc := &scope{}
	providers := make([]Provider, 0, 1+len(stmt.Joins))
	add := func(tr TableRef) error {
		p, err := e.cat.Table(tr.Name)
		if err != nil {
			return err
		}
		off := 0
		if len(sc.bindings) > 0 {
			off = sc.width()
		}
		sc.bindings = append(sc.bindings, binding{name: tr.binding(), schema: p.Schema(), offset: off})
		providers = append(providers, p)
		return nil
	}
	if err := add(stmt.From); err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		if err := add(j.Table); err != nil {
			return nil, err
		}
	}

	// Single-table statements compile into a pushdown spec: fully eligible
	// aggregates skip row materialization entirely when the provider folds
	// partials itself; everything else ships the spec as an advisory
	// prefilter with the scan hint.
	var spec *scanspec.Spec
	if !e.DisablePushdown && len(stmt.Joins) == 0 {
		if plan, ok := compileAggPlan(stmt, sc.bindings[0]); ok {
			if agg, isAgg := providers[0].(Aggregator); isAgg {
				parts, err := agg.Aggregate(ctx, baseHint(stmt, sc), plan.spec)
				if err != nil {
					return nil, err
				}
				return plan.result(parts), nil
			}
		}
		spec = compileScanSpec(stmt, sc.bindings[0])
	}

	// Resolve uncorrelated IN-subqueries up front.
	subs := map[*InExpr]map[string]bool{}
	if err := e.resolveSubqueries(ctx, stmt, subs); err != nil {
		return nil, err
	}

	ev := &evaluator{scope: sc, subs: subs}

	// Produce the joined row stream.
	rows, err := e.scanJoin(ctx, stmt, sc, providers, ev, spec)
	if err != nil {
		return nil, err
	}

	// WHERE.
	if stmt.Where != nil {
		filtered := rows[:0]
		for _, r := range rows {
			keep, err := ev.evalBool(stmt.Where, r)
			if err != nil {
				return nil, err
			}
			if keep {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	// Aggregate or plain projection.
	if stmt.GroupBy != nil || containsAgg(stmt) {
		return e.aggregate(stmt, ev, rows)
	}
	return e.project(stmt, ev, rows)
}

// baseHint builds the FROM table's scan hint: the conservative ts window
// the temporal index prunes with.
func baseHint(stmt *SelectStmt, sc *scope) ScanHint {
	hint := ScanHint{}
	if w, ok := extractWindow(stmt.Where, sc.bindings[0].name); ok {
		hint = ScanHint{Window: w, Constrained: true}
	}
	return hint
}

// scanJoin scans the FROM table (with ts pushdown) and nested-loop joins
// the rest (the paper's T4 self-join path).
func (e *Engine) scanJoin(ctx context.Context, stmt *SelectStmt, sc *scope, providers []Provider, ev *evaluator, spec *scanspec.Spec) ([][]telco.Value, error) {
	hint := baseHint(stmt, sc)
	hint.Spec = spec
	var rows [][]telco.Value
	base := providers[0]
	err := base.Scan(ctx, hint, func(r telco.Record) error {
		row := make([]telco.Value, len(r), sc.width())
		copy(row, r)
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ji, j := range stmt.Joins {
		p := providers[ji+1]
		jhint := ScanHint{}
		if w, ok := extractWindow(stmt.Where, sc.bindings[ji+1].name); ok {
			jhint = ScanHint{Window: w, Constrained: true}
		}
		var right [][]telco.Value
		err := p.Scan(ctx, jhint, func(r telco.Record) error {
			right = append(right, append([]telco.Value(nil), r...))
			return nil
		})
		if err != nil {
			return nil, err
		}
		var joined [][]telco.Value
		for _, l := range rows {
			for _, r := range right {
				combined := make([]telco.Value, 0, len(l)+len(r))
				combined = append(combined, l...)
				combined = append(combined, r...)
				keep, err := ev.evalBool(j.On, combined)
				if err != nil {
					return nil, err
				}
				if keep {
					joined = append(joined, combined)
				}
			}
		}
		rows = joined
	}
	return rows, nil
}

// resolveSubqueries evaluates every uncorrelated IN (SELECT ...) once and
// stores its value set.
func (e *Engine) resolveSubqueries(ctx context.Context, stmt *SelectStmt, subs map[*InExpr]map[string]bool) error {
	var visit func(x Expr) error
	visit = func(x Expr) error {
		switch v := x.(type) {
		case *FuncExpr:
			for _, a := range v.Args {
				if err := visit(a); err != nil {
					return err
				}
			}
		case *Binary:
			if err := visit(v.Left); err != nil {
				return err
			}
			return visit(v.Right)
		case *Unary:
			return visit(v.X)
		case *InExpr:
			if err := visit(v.X); err != nil {
				return err
			}
			if v.Sub == nil {
				return nil
			}
			rs, err := e.RunContext(ctx, v.Sub)
			if err != nil {
				return fmt.Errorf("sql: subquery: %w", err)
			}
			if len(rs.Cols) != 1 {
				return fmt.Errorf("sql: IN subquery must yield one column, got %d", len(rs.Cols))
			}
			set := make(map[string]bool, len(rs.Rows))
			for _, r := range rs.Rows {
				set[r[0].Format()] = true
			}
			subs[v] = set
		case *BetweenExpr:
			if err := visit(v.X); err != nil {
				return err
			}
			if err := visit(v.Lo); err != nil {
				return err
			}
			return visit(v.Hi)
		case *IsNullExpr:
			return visit(v.X)
		case *LikeExpr:
			return visit(v.X)
		case *AggFunc:
			if v.Arg != nil {
				return visit(v.Arg)
			}
		}
		return nil
	}
	if stmt.Where != nil {
		if err := visit(stmt.Where); err != nil {
			return err
		}
	}
	if stmt.Having != nil {
		return visit(stmt.Having)
	}
	return nil
}

func containsAgg(stmt *SelectStmt) bool {
	found := false
	var visit func(Expr)
	visit = func(x Expr) {
		switch v := x.(type) {
		case *AggFunc:
			found = true
		case *Binary:
			visit(v.Left)
			visit(v.Right)
		case *Unary:
			visit(v.X)
		case *FuncExpr:
			for _, a := range v.Args {
				visit(a)
			}
		}
	}
	for _, it := range stmt.Items {
		if it.Expr != nil {
			visit(it.Expr)
		}
	}
	if stmt.Having != nil {
		visit(stmt.Having)
	}
	return found
}

// project handles non-aggregated SELECTs.
func (e *Engine) project(stmt *SelectStmt, ev *evaluator, rows [][]telco.Value) (*ResultSet, error) {
	cols, exprs, err := outputColumns(stmt, ev.scope)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Cols: cols}
	for _, r := range rows {
		out := make([]telco.Value, len(exprs))
		for i, ex := range exprs {
			v, err := ev.eval(ex, r)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		rs.Rows = append(rs.Rows, out)
	}
	return finishResult(stmt, ev, rs, rows)
}

// outputColumns expands * and names output columns.
func outputColumns(stmt *SelectStmt, sc *scope) ([]string, []Expr, error) {
	var cols []string
	var exprs []Expr
	for _, it := range stmt.Items {
		if it.Star {
			for _, b := range sc.bindings {
				for _, f := range b.schema.Fields {
					cols = append(cols, f.Name)
					exprs = append(exprs, &ColumnRef{Qualifier: b.name, Name: f.Name})
				}
			}
			continue
		}
		name := it.Alias
		if name == "" {
			name = it.Expr.exprString()
		}
		cols = append(cols, name)
		exprs = append(exprs, it.Expr)
	}
	return cols, exprs, nil
}

// aggregate executes GROUP BY / aggregate queries with hash grouping.
func (e *Engine) aggregate(stmt *SelectStmt, ev *evaluator, rows [][]telco.Value) (*ResultSet, error) {
	// Collect every aggregate instance referenced by the statement.
	var aggs []*AggFunc
	var collect func(Expr)
	collect = func(x Expr) {
		switch v := x.(type) {
		case *AggFunc:
			aggs = append(aggs, v)
		case *Binary:
			collect(v.Left)
			collect(v.Right)
		case *Unary:
			collect(v.X)
		case *FuncExpr:
			for _, a := range v.Args {
				collect(a)
			}
		}
	}
	for _, it := range stmt.Items {
		if it.Expr != nil {
			collect(it.Expr)
		}
	}
	if stmt.Having != nil {
		collect(stmt.Having)
	}
	for _, k := range stmt.OrderBy {
		collect(k.Expr)
	}

	type group struct {
		first  []telco.Value
		states []aggState
	}
	groups := map[string]*group{}
	var orderKeys []string

	for _, r := range rows {
		var kb strings.Builder
		for _, g := range stmt.GroupBy {
			v, err := ev.eval(g, r)
			if err != nil {
				return nil, err
			}
			kb.WriteString(v.Format())
			kb.WriteByte('\x00')
		}
		key := kb.String()
		grp := groups[key]
		if grp == nil {
			grp = &group{first: r, states: make([]aggState, len(aggs))}
			for i, a := range aggs {
				grp.states[i] = newAggState(a)
			}
			groups[key] = grp
			orderKeys = append(orderKeys, key)
		}
		for i, a := range aggs {
			if a.Star {
				grp.states[i].add(telco.Int(1), true)
				continue
			}
			v, err := ev.eval(a.Arg, r)
			if err != nil {
				return nil, err
			}
			grp.states[i].add(v, false)
		}
	}
	// A global aggregate over zero rows still yields one group.
	if len(groups) == 0 && len(stmt.GroupBy) == 0 {
		grp := &group{first: make([]telco.Value, ev.scope.width()), states: make([]aggState, len(aggs))}
		for i, a := range aggs {
			grp.states[i] = newAggState(a)
		}
		groups[""] = grp
		orderKeys = append(orderKeys, "")
	}

	cols, exprs, err := outputColumns(stmt, ev.scope)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Cols: cols}
	var resultContexts [][]telco.Value
	for _, key := range orderKeys {
		grp := groups[key]
		ev.aggValues = make(map[*AggFunc]telco.Value, len(aggs))
		for i, a := range aggs {
			ev.aggValues[a] = grp.states[i].value()
		}
		if stmt.Having != nil {
			keep, err := ev.evalBool(stmt.Having, grp.first)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		out := make([]telco.Value, len(exprs))
		for i, ex := range exprs {
			v, err := ev.eval(ex, grp.first)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		rs.Rows = append(rs.Rows, out)
		resultContexts = append(resultContexts, grp.first)
		// Keep agg values alive for ORDER BY evaluation of this row.
		ev.rowAggs = append(ev.rowAggs, ev.aggValues)
	}
	return finishResult(stmt, ev, rs, resultContexts)
}

// finishResult applies DISTINCT, ORDER BY and LIMIT.
func finishResult(stmt *SelectStmt, ev *evaluator, rs *ResultSet, contexts [][]telco.Value) (*ResultSet, error) {
	if stmt.Distinct {
		seen := map[string]bool{}
		var rows [][]telco.Value
		var ctxs [][]telco.Value
		for i, r := range rs.Rows {
			var kb strings.Builder
			for _, v := range r {
				kb.WriteString(v.Format())
				kb.WriteByte('\x00')
			}
			if !seen[kb.String()] {
				seen[kb.String()] = true
				rows = append(rows, r)
				if contexts != nil && i < len(contexts) {
					ctxs = append(ctxs, contexts[i])
				}
			}
		}
		rs.Rows = rows
		contexts = ctxs
	}
	if len(stmt.OrderBy) > 0 {
		// Pre-compute sort keys in row order.
		keys := make([][]telco.Value, len(rs.Rows))
		for i := range rs.Rows {
			ctx := []telco.Value(nil)
			if contexts != nil && i < len(contexts) {
				ctx = contexts[i]
			}
			if ev.rowAggs != nil && i < len(ev.rowAggs) {
				ev.aggValues = ev.rowAggs[i]
			}
			ks := make([]telco.Value, len(stmt.OrderBy))
			for j, ok := range stmt.OrderBy {
				// Try output alias first.
				if c, isCol := ok.Expr.(*ColumnRef); isCol && c.Qualifier == "" {
					found := false
					for ci, name := range rs.Cols {
						if name == c.Name {
							ks[j] = rs.Rows[i][ci]
							found = true
							break
						}
					}
					if found {
						continue
					}
				}
				v, err := ev.eval(ok.Expr, ctx)
				if err != nil {
					return nil, err
				}
				ks[j] = v
			}
			keys[i] = ks
		}
		idx := make([]int, len(rs.Rows))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			for j, ok := range stmt.OrderBy {
				c := keys[idx[a]][j].Compare(keys[idx[b]][j])
				if c != 0 {
					if ok.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		sorted := make([][]telco.Value, len(rs.Rows))
		for i, id := range idx {
			sorted[i] = rs.Rows[id]
		}
		rs.Rows = sorted
	}
	if stmt.Limit >= 0 && len(rs.Rows) > stmt.Limit {
		rs.Rows = rs.Rows[:stmt.Limit]
	}
	return rs, nil
}
