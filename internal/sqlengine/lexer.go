// Package sqlengine implements SPATE-SQL (paper §VI-B): a declarative data
// exploration interface supporting "all basic SELECT-FROM-WHERE block
// queries, nested queries, joins, aggregates, etc." executed directly
// against the compressed SPATE representation (or against the RAW/SHAHED
// baselines, for the paper's task comparisons T1–T4).
//
// The engine is a classic pipeline: lexer → recursive-descent parser →
// planner (timestamp-predicate pushdown into the storage index) →
// row-at-a-time executor with hash aggregation and nested-loop joins.
package sqlengine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // operators: = != <> < <= > >= + - * / ||
	tokPunct // ( ) , . ;
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

// keywords recognized by the parser (upper-case canonical form).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"LIKE": true, "AS": true, "JOIN": true, "ON": true, "INNER": true,
	"DISTINCT": true, "NULL": true, "IS": true, "COUNT": true, "SUM": true,
	"MIN": true, "MAX": true, "AVG": true, "TRUE": true, "FALSE": true,
	"EXPLAIN": true, "ANALYZE": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes a statement.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			l.ident()
		case unicode.IsDigit(rune(c)):
			if err := l.number(); err != nil {
				return nil, err
			}
		case c == '\'' || c == '"':
			if err := l.str(c); err != nil {
				return nil, err
			}
		case strings.ContainsRune("(),.;", rune(c)):
			l.emit(tokPunct, string(c))
			l.pos++
		case strings.ContainsRune("=<>!+-*/%", rune(c)):
			l.op()
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(k tokKind, text string) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: l.pos})
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
}

func (l *lexer) number() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				return fmt.Errorf("sql: malformed number at %d", start)
			}
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) str(quote byte) error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// Doubled quote escapes itself.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string at %d", start)
}

func (l *lexer) op() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	if l.pos < len(l.src) {
		two := string(c) + string(l.src[l.pos])
		switch two {
		case "<=", ">=", "!=", "<>":
			l.pos++
			l.toks = append(l.toks, token{kind: tokOp, text: two, pos: start})
			return
		}
	}
	l.toks = append(l.toks, token{kind: tokOp, text: string(c), pos: start})
}
