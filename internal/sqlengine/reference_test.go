package sqlengine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"spate/internal/telco"
)

// This file cross-checks the SQL executor against an independent Go
// reference implementation on randomly generated predicate trees — the
// property-based guard for the WHERE evaluation semantics.

// refPred is a predicate evaluated two ways: rendered to SQL for the
// engine and applied directly in Go.
type refPred interface {
	sql() string
	eval(row map[string]int64) bool
}

type refCmp struct {
	col string
	op  string
	val int64
}

func (c refCmp) sql() string { return fmt.Sprintf("%s %s %d", c.col, c.op, c.val) }

func (c refCmp) eval(row map[string]int64) bool {
	v := row[c.col]
	switch c.op {
	case "=":
		return v == c.val
	case "!=":
		return v != c.val
	case "<":
		return v < c.val
	case "<=":
		return v <= c.val
	case ">":
		return v > c.val
	default:
		return v >= c.val
	}
}

type refLogic struct {
	op   string // AND | OR
	l, r refPred
}

func (l refLogic) sql() string {
	return "(" + l.l.sql() + " " + l.op + " " + l.r.sql() + ")"
}

func (l refLogic) eval(row map[string]int64) bool {
	if l.op == "AND" {
		return l.l.eval(row) && l.r.eval(row)
	}
	return l.l.eval(row) || l.r.eval(row)
}

type refNot struct{ x refPred }

func (n refNot) sql() string                    { return "NOT (" + n.x.sql() + ")" }
func (n refNot) eval(row map[string]int64) bool { return !n.x.eval(row) }

type refBetween struct {
	col    string
	lo, hi int64
}

func (b refBetween) sql() string {
	return fmt.Sprintf("%s BETWEEN %d AND %d", b.col, b.lo, b.hi)
}

func (b refBetween) eval(row map[string]int64) bool {
	v := row[b.col]
	return v >= b.lo && v <= b.hi
}

type refIn struct {
	col  string
	vals []int64
}

func (i refIn) sql() string {
	parts := make([]string, len(i.vals))
	for j, v := range i.vals {
		parts[j] = fmt.Sprint(v)
	}
	return fmt.Sprintf("%s IN (%s)", i.col, strings.Join(parts, ", "))
}

func (i refIn) eval(row map[string]int64) bool {
	for _, v := range i.vals {
		if row[i.col] == v {
			return true
		}
	}
	return false
}

var refCols = []string{"a", "b", "c"}

func randPred(rng *rand.Rand, depth int) refPred {
	if depth > 0 && rng.Float64() < 0.6 {
		switch rng.Intn(3) {
		case 0:
			return refLogic{"AND", randPred(rng, depth-1), randPred(rng, depth-1)}
		case 1:
			return refLogic{"OR", randPred(rng, depth-1), randPred(rng, depth-1)}
		default:
			return refNot{randPred(rng, depth-1)}
		}
	}
	col := refCols[rng.Intn(len(refCols))]
	switch rng.Intn(3) {
	case 0:
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		return refCmp{col, ops[rng.Intn(len(ops))], int64(rng.Intn(20))}
	case 1:
		lo := int64(rng.Intn(15))
		return refBetween{col, lo, lo + int64(rng.Intn(8))}
	default:
		n := 1 + rng.Intn(4)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(20))
		}
		return refIn{col, vals}
	}
}

func TestExecutorMatchesReferenceOnRandomPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	schema := telco.MustSchema("T", []telco.Field{
		{Name: "id", Kind: telco.KindInt},
		{Name: "a", Kind: telco.KindInt},
		{Name: "b", Kind: telco.KindInt},
		{Name: "c", Kind: telco.KindInt},
	})
	tab := telco.NewTable(schema)
	rows := make([]map[string]int64, 200)
	for i := range rows {
		r := map[string]int64{
			"id": int64(i),
			"a":  int64(rng.Intn(20)),
			"b":  int64(rng.Intn(20)),
			"c":  int64(rng.Intn(20)),
		}
		rows[i] = r
		tab.Append(telco.Record{telco.Int(r["id"]), telco.Int(r["a"]), telco.Int(r["b"]), telco.Int(r["c"])})
	}
	eng := NewEngine(MemCatalog{"T": tab})

	for trial := 0; trial < 300; trial++ {
		pred := randPred(rng, 3)
		sql := "SELECT id FROM T WHERE " + pred.sql() + " ORDER BY id"
		rs, err := eng.Query(sql)
		if err != nil {
			t.Fatalf("trial %d: %s: %v", trial, sql, err)
		}
		var want []int64
		for _, r := range rows {
			if pred.eval(r) {
				want = append(want, r["id"])
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(rs.Rows) != len(want) {
			t.Fatalf("trial %d: %s\n engine %d rows, reference %d", trial, sql, len(rs.Rows), len(want))
		}
		for i := range want {
			if rs.Rows[i][0].Int64() != want[i] {
				t.Fatalf("trial %d: %s\n row %d: engine id %d, reference %d",
					trial, sql, i, rs.Rows[i][0].Int64(), want[i])
			}
		}
	}
}

func TestAggregatesMatchReferenceOnRandomGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schema := telco.MustSchema("G", []telco.Field{
		{Name: "k", Kind: telco.KindInt},
		{Name: "v", Kind: telco.KindInt},
	})
	tab := telco.NewTable(schema)
	type agg struct {
		n        int64
		sum      int64
		min, max int64
	}
	ref := map[int64]*agg{}
	for i := 0; i < 500; i++ {
		k, v := int64(rng.Intn(10)), int64(rng.Intn(1000))
		tab.Append(telco.Record{telco.Int(k), telco.Int(v)})
		a := ref[k]
		if a == nil {
			a = &agg{min: v, max: v}
			ref[k] = a
		} else {
			if v < a.min {
				a.min = v
			}
			if v > a.max {
				a.max = v
			}
		}
		a.n++
		a.sum += v
	}
	eng := NewEngine(MemCatalog{"G": tab})
	rs, err := eng.Query(`SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v), AVG(v) FROM G GROUP BY k ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != len(ref) {
		t.Fatalf("groups = %d, want %d", len(rs.Rows), len(ref))
	}
	for _, row := range rs.Rows {
		k := row[0].Int64()
		a := ref[k]
		if row[1].Int64() != a.n || row[2].Int64() != a.sum ||
			row[3].Int64() != a.min || row[4].Int64() != a.max {
			t.Errorf("group %d: engine %v, reference %+v", k, row, a)
		}
		wantAvg := float64(a.sum) / float64(a.n)
		if got := row[5].Float64(); got != wantAvg {
			t.Errorf("group %d: avg %v, want %v", k, got, wantAvg)
		}
	}
}
