package sqlengine

import (
	"strings"
	"testing"
	"time"

	"spate/internal/telco"
)

var cdrSchema = telco.MustSchema("CDR", []telco.Field{
	{Name: "ts", Kind: telco.KindTime},
	{Name: "caller", Kind: telco.KindString},
	{Name: "cell_id", Kind: telco.KindInt},
	{Name: "call_type", Kind: telco.KindString},
	{Name: "duration", Kind: telco.KindInt},
	{Name: "upflux", Kind: telco.KindInt},
	{Name: "downflux", Kind: telco.KindInt},
})

var nmsSchema = telco.MustSchema("NMS", []telco.Field{
	{Name: "ts", Kind: telco.KindTime},
	{Name: "cell_id", Kind: telco.KindInt},
	{Name: "val", Kind: telco.KindInt},
})

var t0 = time.Date(2016, 1, 22, 15, 30, 0, 0, time.UTC)

func testCatalog() MemCatalog {
	cdr := telco.NewTable(cdrSchema)
	rows := []struct {
		min      int
		caller   string
		cell     int64
		typ      string
		dur      int64
		up, down int64
	}{
		{0, "alice", 1, "VOICE", 60, 0, 0},
		{1, "bob", 1, "DATA", 0, 100, 1000},
		{2, "carol", 2, "SMS", 0, 0, 0},
		{40, "alice", 2, "VOICE", 120, 0, 0},
		{41, "dave", 3, "DATA", 0, 50, 700},
		{90, "alice", 3, "VOICE", 30, 0, 0},
	}
	for _, r := range rows {
		cdr.Append(telco.Record{
			telco.Time(t0.Add(time.Duration(r.min) * time.Minute)),
			telco.String(r.caller), telco.Int(r.cell), telco.String(r.typ),
			telco.Int(r.dur), telco.Int(r.up), telco.Int(r.down),
		})
	}
	nms := telco.NewTable(nmsSchema)
	for i, v := range []int64{5, 0, 7, 3} {
		nms.Append(telco.Record{
			telco.Time(t0.Add(time.Duration(i) * time.Minute)),
			telco.Int(int64(i%3 + 1)), telco.Int(v),
		})
	}
	return MemCatalog{"CDR": cdr, "NMS": nms}
}

func mustQuery(t *testing.T, sql string) *ResultSet {
	t.Helper()
	rs, err := NewEngine(testCatalog()).Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return rs
}

func TestT1EqualitySnapshotQuery(t *testing.T) {
	// Paper task T1: SELECT upflux, downflux FROM CDR WHERE ts='...';
	// A minute-resolution literal selects that minute's records.
	rs := mustQuery(t, `SELECT upflux, downflux FROM CDR WHERE ts='201601221531'`)
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rs.Rows))
	}
	if rs.Rows[0][0].Int64() != 100 || rs.Rows[0][1].Int64() != 1000 {
		t.Errorf("row = %v", rs.Rows[0])
	}
	if rs.Cols[0] != "upflux" || rs.Cols[1] != "downflux" {
		t.Errorf("cols = %v", rs.Cols)
	}
}

func TestT2RangeQuery(t *testing.T) {
	// Paper task T2: WHERE ts>='2015' AND ts<='2016' — truncated literals.
	rs := mustQuery(t, `SELECT upflux, downflux FROM CDR WHERE ts>='2016' AND ts<='2017'`)
	if len(rs.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rs.Rows))
	}
	rs = mustQuery(t, `SELECT caller FROM CDR WHERE ts>='201601221600'`)
	if len(rs.Rows) != 3 { // 16:10, 16:11 and 17:00
		t.Fatalf("post-16:00 rows = %d, want 3", len(rs.Rows))
	}
}

func TestT3AggregateGroupBy(t *testing.T) {
	// Paper task T3: SELECT cellid, SUM(val) FROM NMS ... GROUP BY cellid.
	rs := mustQuery(t, `SELECT cell_id, SUM(val) AS total FROM NMS GROUP BY cell_id ORDER BY cell_id`)
	if len(rs.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(rs.Rows))
	}
	want := map[int64]int64{1: 8, 2: 0, 3: 7}
	for _, r := range rs.Rows {
		if got := r[1].Int64(); got != want[r[0].Int64()] {
			t.Errorf("cell %d sum = %d, want %d", r[0].Int64(), got, want[r[0].Int64()])
		}
	}
}

func TestT4SelfJoin(t *testing.T) {
	// Paper task T4: self-join identifying movers (same caller, different
	// cell towers).
	rs := mustQuery(t, `SELECT DISTINCT a.caller FROM CDR a JOIN CDR b
		ON a.caller = b.caller WHERE a.cell_id != b.cell_id ORDER BY a.caller`)
	if len(rs.Rows) != 1 || rs.Rows[0][0].Str() != "alice" {
		t.Fatalf("movers = %v", rs.Rows)
	}
}

func TestNestedInSubquery(t *testing.T) {
	rs := mustQuery(t, `SELECT caller FROM CDR WHERE cell_id IN
		(SELECT cell_id FROM NMS WHERE val > 4) ORDER BY caller`)
	// NMS val>4: cells 1 (5) and 3 (7); CDR rows on those cells:
	// alice,bob (cell 1), dave,alice (cell 3).
	if len(rs.Rows) != 4 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestAggregatesAll(t *testing.T) {
	rs := mustQuery(t, `SELECT COUNT(*), COUNT(duration), SUM(duration),
		MIN(duration), MAX(duration), AVG(duration) FROM CDR`)
	r := rs.Rows[0]
	if r[0].Int64() != 6 || r[1].Int64() != 6 {
		t.Errorf("counts = %v", r)
	}
	if r[2].Int64() != 210 || r[3].Int64() != 0 || r[4].Int64() != 120 {
		t.Errorf("sum/min/max = %v %v %v", r[2], r[3], r[4])
	}
	if avg := r[5].Float64(); avg != 35 {
		t.Errorf("avg = %v", avg)
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	rs := mustQuery(t, `SELECT call_type, COUNT(*) AS n FROM CDR
		GROUP BY call_type HAVING COUNT(*) >= 2 ORDER BY n DESC`)
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if rs.Rows[0][0].Str() != "VOICE" || rs.Rows[0][1].Int64() != 3 {
		t.Errorf("first = %v", rs.Rows[0])
	}
}

func TestWhereOperators(t *testing.T) {
	tests := []struct {
		sql  string
		want int
	}{
		{`SELECT * FROM CDR WHERE call_type = 'VOICE'`, 3},
		{`SELECT * FROM CDR WHERE call_type != 'VOICE'`, 3},
		{`SELECT * FROM CDR WHERE duration > 50`, 2},
		{`SELECT * FROM CDR WHERE duration BETWEEN 30 AND 60`, 2},
		{`SELECT * FROM CDR WHERE duration NOT BETWEEN 30 AND 60`, 4},
		{`SELECT * FROM CDR WHERE caller LIKE 'a%'`, 3},
		{`SELECT * FROM CDR WHERE caller LIKE '%o%'`, 2},
		{`SELECT * FROM CDR WHERE caller LIKE '_ob'`, 1},
		{`SELECT * FROM CDR WHERE caller NOT LIKE 'a%'`, 3},
		{`SELECT * FROM CDR WHERE call_type IN ('SMS', 'DATA')`, 3},
		{`SELECT * FROM CDR WHERE call_type NOT IN ('SMS', 'DATA')`, 3},
		{`SELECT * FROM CDR WHERE NOT (call_type = 'VOICE')`, 3},
		{`SELECT * FROM CDR WHERE call_type = 'VOICE' OR call_type = 'SMS'`, 4},
		{`SELECT * FROM CDR WHERE call_type = 'VOICE' AND duration > 100`, 1},
		{`SELECT * FROM CDR WHERE duration IS NULL`, 0},
		{`SELECT * FROM CDR WHERE duration IS NOT NULL`, 6},
		{`SELECT * FROM CDR WHERE upflux + downflux > 700`, 2},
		{`SELECT * FROM CDR WHERE duration * 2 = 120`, 1},
		{`SELECT * FROM CDR WHERE -duration < 0`, 3},
		{`SELECT * FROM CDR LIMIT 2`, 2},
	}
	for _, tc := range tests {
		rs := mustQuery(t, tc.sql)
		if len(rs.Rows) != tc.want {
			t.Errorf("%s: rows = %d, want %d", tc.sql, len(rs.Rows), tc.want)
		}
	}
}

func TestOrderByDirections(t *testing.T) {
	rs := mustQuery(t, `SELECT caller, duration FROM CDR WHERE call_type='VOICE' ORDER BY duration DESC`)
	if rs.Rows[0][1].Int64() != 120 || rs.Rows[2][1].Int64() != 30 {
		t.Errorf("desc order = %v", rs.Rows)
	}
	rs = mustQuery(t, `SELECT caller, duration FROM CDR WHERE call_type='VOICE' ORDER BY duration ASC`)
	if rs.Rows[0][1].Int64() != 30 {
		t.Errorf("asc order = %v", rs.Rows)
	}
}

func TestSelectStarExpands(t *testing.T) {
	rs := mustQuery(t, `SELECT * FROM NMS LIMIT 1`)
	if len(rs.Cols) != 3 || rs.Cols[0] != "ts" || rs.Cols[2] != "val" {
		t.Errorf("cols = %v", rs.Cols)
	}
}

func TestDistinct(t *testing.T) {
	rs := mustQuery(t, `SELECT DISTINCT call_type FROM CDR ORDER BY call_type`)
	if len(rs.Rows) != 3 {
		t.Fatalf("distinct types = %v", rs.Rows)
	}
}

func TestQualifiedAndAmbiguousColumns(t *testing.T) {
	eng := NewEngine(testCatalog())
	// cell_id exists in both tables of a join: unqualified is ambiguous.
	_, err := eng.Query(`SELECT cell_id FROM CDR a JOIN NMS b ON a.cell_id = b.cell_id`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column err = %v", err)
	}
	rs, err := eng.Query(`SELECT a.cell_id FROM CDR a JOIN NMS b ON a.cell_id = b.cell_id LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 3 {
		t.Errorf("rows = %d", len(rs.Rows))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM CDR`,
		`SELECT * FORM CDR`,
		`SELECT * FROM CDR WHERE`,
		`SELECT * FROM CDR GROUP`,
		`SELECT * FROM CDR LIMIT x`,
		`SELECT * FROM CDR; SELECT 1`,
		`SELECT * FROM CDR WHERE caller LIKE 5`,
		`SELECT * FROM CDR WHERE ts = 'x' AND`,
		`SELECT * FROM 42`,
		`SELECT * FROM CDR WHERE a ==== b`,
		`SELECT * FROM CDR WHERE name = 'unterminated`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): want error", sql)
		}
	}
}

func TestRunErrors(t *testing.T) {
	eng := NewEngine(testCatalog())
	bad := []string{
		`SELECT nosuchcol FROM CDR`,
		`SELECT * FROM NoSuchTable`,
		`SELECT caller FROM CDR WHERE cell_id IN (SELECT cell_id, val FROM NMS)`,
	}
	for _, sql := range bad {
		if _, err := eng.Query(sql); err == nil {
			t.Errorf("Query(%q): want error", sql)
		}
	}
}

func TestWindowPushdown(t *testing.T) {
	stmt, err := Parse(`SELECT * FROM CDR WHERE ts >= '2016' AND ts <= '201601221630' AND duration > 0`)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := extractWindow(stmt.Where, "CDR")
	if !ok {
		t.Fatal("no window extracted")
	}
	wantLo := time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC)
	wantHi := time.Date(2016, 1, 22, 16, 31, 0, 0, time.UTC)
	if !w.From.Equal(wantLo) || !w.To.Equal(wantHi) {
		t.Errorf("window = %v..%v", w.From, w.To)
	}
	// Equality pins a single-minute window.
	stmt2, _ := Parse(`SELECT * FROM CDR WHERE ts = '201601221530'`)
	w2, ok := extractWindow(stmt2.Where, "CDR")
	if !ok || w2.Duration() != time.Minute {
		t.Errorf("equality window = %v (%v)", w2, w2.Duration())
	}
	// OR disables pushdown (not a pure conjunction on ts).
	stmt3, _ := Parse(`SELECT * FROM CDR WHERE ts = '2016' OR duration > 5`)
	if _, ok := extractWindow(stmt3.Where, "CDR"); ok {
		t.Error("window extracted from OR")
	}
}

func TestGlobalAggregateOverEmptyInput(t *testing.T) {
	rs := mustQuery(t, `SELECT COUNT(*), SUM(duration) FROM CDR WHERE duration > 99999`)
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	if rs.Rows[0][0].Int64() != 0 || !rs.Rows[0][1].IsNull() {
		t.Errorf("empty agg = %v", rs.Rows[0])
	}
}

func TestLikeMatcher(t *testing.T) {
	tests := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "x%", false},
		{"hello", "", false},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%b%c", true},
		{"ab", "a_b", false},
	}
	for _, tc := range tests {
		if got := likeMatch(tc.s, tc.p); got != tc.want {
			t.Errorf("likeMatch(%q, %q) = %v", tc.s, tc.p, got)
		}
	}
}

func TestParseTimeLit(t *testing.T) {
	lo, hi, ok := parseTimeLit("2016")
	if !ok || lo.Year() != 2016 || hi.Year() != 2017 {
		t.Errorf("year literal = %v..%v", lo, hi)
	}
	if _, _, ok := parseTimeLit("20"); ok {
		t.Error("bad length accepted")
	}
	if _, _, ok := parseTimeLit("abcd"); ok {
		t.Error("non-numeric accepted")
	}
	lo, hi, ok = parseTimeLit("20160122153000")
	if !ok || hi.Sub(lo) != time.Second {
		t.Errorf("full literal = %v..%v", lo, hi)
	}
}
