package sqlengine

import (
	"sort"
	"strconv"

	"spate/internal/scanspec"
	"spate/internal/telco"
)

// Pushdown compilation: translating an eligible statement (or its WHERE
// clause) into a scanspec.Spec the storage layer can evaluate against
// column streams. Two levels exist:
//
//   - Row-scan specs (compileScanSpec) are prefilters. Conjuncts that do
//     not decompose are simply dropped — the engine still evaluates the
//     full WHERE clause over the returned rows — so the spec only has to
//     be a superset-preserving filter plus the column set the engine reads.
//
//   - Aggregate plans (compileAggPlan) replace execution entirely: the
//     provider folds partial aggregates and the engine renders them into
//     the result set. Every eligibility rule here exists to keep that
//     rendering bit-for-bit identical to the row path, including output
//     order (which is why grouped plans demand an ORDER BY on the group
//     column: partials merge in key order, rows group in first-seen order,
//     and only a total order reconciles the two).

// decomposeWhere splits a WHERE tree into conjuncts the storage layer can
// evaluate: plain column-op-literal predicates over non-time columns, and
// timestamp comparisons against (possibly truncated) time literals, which
// tighten the exact row-membership window. full reports that every conjunct
// was captured — the precondition for aggregate pushdown, where storage
// filtering is authoritative rather than advisory.
func decomposeWhere(where Expr, bindingName string, schema *telco.Schema) (preds []scanspec.Pred, win *scanspec.TimeWindow, requireTS, full bool) {
	full = true
	if where == nil {
		return nil, nil, false, true
	}
	var visit func(e Expr)
	visit = func(e Expr) {
		switch v := e.(type) {
		case *Binary:
			if v.Op == "AND" {
				visit(v.Left)
				visit(v.Right)
				return
			}
			col, lit, op := v.Left, v.Right, v.Op
			if !isTSCol(col, bindingName) && isTSCol(lit, bindingName) {
				col, lit, op = lit, col, flip(op)
			}
			if isTSCol(col, bindingName) {
				// A timestamp conjunct: capture it exactly or give up on
				// full decomposition (e.g. ts != ..., ts vs non-literal).
				l, isLit := lit.(*Literal)
				if !isLit || !l.IsStr {
					full = false
					return
				}
				w, ok := applyTSOp(win, op, l.Str)
				if !ok {
					full = false
					return
				}
				win, requireTS = w, true
				return
			}
			if _, isCol := col.(*ColumnRef); !isCol {
				if _, litIsCol := lit.(*ColumnRef); litIsCol {
					col, lit, op = lit, col, flip(op)
				}
			}
			if p, ok := predConjunct(col, lit, op, bindingName, schema); ok {
				preds = append(preds, p)
				return
			}
			full = false
		case *BetweenExpr:
			if v.Negate {
				full = false
				return
			}
			if isTSCol(v.X, bindingName) {
				// ts BETWEEN a AND b evaluates as ts >= a AND ts <= b
				// under the engine's lexicographic time-vs-string compare.
				lo, okLo := v.Lo.(*Literal)
				hi, okHi := v.Hi.(*Literal)
				if !okLo || !okHi || !lo.IsStr || !hi.IsStr {
					full = false
					return
				}
				w, ok := applyTSOp(win, ">=", lo.Str)
				if ok {
					w, ok = applyTSOp(w, "<=", hi.Str)
				}
				if !ok {
					full = false
					return
				}
				win, requireTS = w, true
				return
			}
			pLo, okLo := predConjunct(v.X, v.Lo, ">=", bindingName, schema)
			pHi, okHi := predConjunct(v.X, v.Hi, "<=", bindingName, schema)
			if !okLo || !okHi {
				full = false
				return
			}
			preds = append(preds, pLo, pHi)
		default:
			full = false
		}
	}
	visit(where)
	return preds, win, requireTS, full
}

// applyTSOp tightens win with one "ts <op> literal" comparison, mapping the
// engine's lexicographic wire-form compare onto an exact half-open window.
// A truncated literal denotes its covered interval [lo, hi): equality means
// containment, and order comparisons resolve against the interval start
// (every stored timestamp formats to the full layout, so it can never
// compare equal to a shorter literal).
func applyTSOp(win *scanspec.TimeWindow, op, lit string) (*scanspec.TimeWindow, bool) {
	lo, hi, ok := parseTimeLit(lit)
	if !ok {
		return win, false
	}
	sec := len(lit) >= len(telco.TimeLayout)
	switch op {
	case "=":
		win = win.TightenFrom(lo.UnixNano())
		win = win.TightenTo(hi.UnixNano())
	case ">=":
		win = win.TightenFrom(lo.UnixNano())
	case ">":
		if sec {
			win = win.TightenFrom(hi.UnixNano())
		} else {
			win = win.TightenFrom(lo.UnixNano())
		}
	case "<":
		win = win.TightenTo(lo.UnixNano())
	case "<=":
		if sec {
			win = win.TightenTo(hi.UnixNano())
		} else {
			win = win.TightenTo(lo.UnixNano())
		}
	default:
		return win, false
	}
	return win, true
}

// predConjunct captures one "column <op> literal" comparison as a storage
// predicate when scanspec.Pred.Eval would agree with the engine's row
// evaluation: bare non-time column of the scanned table, non-null literal,
// plain comparison operator. Literal-on-the-left comparisons arrive here
// already flipped by the caller; BETWEEN bounds come in with their implied
// operators.
func predConjunct(colE, litE Expr, op, bindingName string, schema *telco.Schema) (scanspec.Pred, bool) {
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
	default:
		return scanspec.Pred{}, false
	}
	c, ok := colE.(*ColumnRef)
	if !ok || (c.Qualifier != "" && c.Qualifier != bindingName) {
		return scanspec.Pred{}, false
	}
	fi := schema.FieldIndex(c.Name)
	if fi < 0 || schema.Fields[fi].Kind == telco.KindTime {
		// Time columns use the engine's lexicographic/containment
		// semantics, which Pred.Eval does not reproduce.
		return scanspec.Pred{}, false
	}
	l, ok := litE.(*Literal)
	if !ok {
		return scanspec.Pred{}, false
	}
	kind, val, ok := litWire(l)
	if !ok {
		return scanspec.Pred{}, false
	}
	return scanspec.Pred{Col: c.Name, Op: op, Kind: kind, Val: val}, true
}

// litWire renders a literal in scanspec wire form. Booleans travel as the
// integers the evaluator coerces them to; NULL literals are not capturable
// (the conjunct is three-valued and filters every row in the engine).
func litWire(l *Literal) (kind, val string, ok bool) {
	switch {
	case l.IsNull:
		return "", "", false
	case l.IsStr:
		return "str", l.Str, true
	case l.IsInt:
		return "int", strconv.FormatInt(l.Int, 10), true
	case l.IsBool:
		if l.Bool {
			return "int", "1", true
		}
		return "int", "0", true
	default:
		return "float", strconv.FormatFloat(l.Float, 'g', -1, 64), true
	}
}

// collectColumns gathers every base-table column the statement reads, in
// first-use order. all reports a SELECT * — the scan must materialize every
// column. Bare ORDER BY references that name an output column resolve
// against the projected row (finishResult tries output names first), so
// they do not demand the column from storage.
func collectColumns(stmt *SelectStmt, b binding) (cols []string, all bool) {
	for _, it := range stmt.Items {
		if it.Star {
			return nil, true
		}
	}
	outNames := make(map[string]bool, len(stmt.Items))
	for _, it := range stmt.Items {
		name := it.Alias
		if name == "" {
			name = it.Expr.exprString()
		}
		outNames[name] = true
	}
	seen := map[string]bool{}
	cols = []string{}
	var walk func(x Expr)
	walk = func(x Expr) {
		switch v := x.(type) {
		case *ColumnRef:
			if v.Qualifier != "" && v.Qualifier != b.name {
				return
			}
			if b.schema.FieldIndex(v.Name) >= 0 && !seen[v.Name] {
				seen[v.Name] = true
				cols = append(cols, v.Name)
			}
		case *Binary:
			walk(v.Left)
			walk(v.Right)
		case *Unary:
			walk(v.X)
		case *FuncExpr:
			for _, a := range v.Args {
				walk(a)
			}
		case *AggFunc:
			if v.Arg != nil {
				walk(v.Arg)
			}
		case *InExpr:
			// Subquery columns belong to the subquery's own scan.
			walk(v.X)
			for _, le := range v.List {
				walk(le)
			}
		case *BetweenExpr:
			walk(v.X)
			walk(v.Lo)
			walk(v.Hi)
		case *IsNullExpr:
			walk(v.X)
		case *LikeExpr:
			walk(v.X)
		}
	}
	for _, it := range stmt.Items {
		walk(it.Expr)
	}
	if stmt.Where != nil {
		walk(stmt.Where)
	}
	for _, g := range stmt.GroupBy {
		walk(g)
	}
	if stmt.Having != nil {
		walk(stmt.Having)
	}
	for _, ok := range stmt.OrderBy {
		if c, isCol := ok.Expr.(*ColumnRef); isCol && c.Qualifier == "" && outNames[c.Name] {
			continue
		}
		walk(ok.Expr)
	}
	return cols, false
}

// compileScanSpec builds the advisory row-scan spec for a single-table
// statement. It returns nil when the spec would carry no information (every
// column needed, no capturable conjuncts).
func compileScanSpec(stmt *SelectStmt, b binding) *scanspec.Spec {
	preds, win, requireTS, _ := decomposeWhere(stmt.Where, b.name, b.schema)
	cols, all := collectColumns(stmt, b)
	if all {
		cols = nil
	}
	if cols == nil && len(preds) == 0 && win == nil && !requireTS {
		return nil
	}
	return &scanspec.Spec{Columns: cols, Preds: preds, Window: win, RequireTS: requireTS}
}

// aggPlan is a fully pushed-down aggregate statement: the spec the provider
// folds, plus the rendering recipe turning its partials into the result set.
type aggPlan struct {
	spec *scanspec.Spec
	cols []string
	// group marks items projecting the group column; others index spec.Aggs
	// through aggIdx.
	group  []bool
	aggIdx []int
	// orderIdx/orderDesc are ORDER BY keys as output column indexes.
	orderIdx  []int
	orderDesc []bool
	limit     int
}

// compileAggPlan recognizes statements the storage layer can answer with
// partial aggregates: a single table, conjunctive fully-decomposable WHERE,
// items that are bare COUNT/SUM/MIN/MAX aggregates or the single bare GROUP
// BY column, no HAVING/DISTINCT, and an ORDER BY over output columns that
// totally orders grouped results (it must include the group column — group
// values are unique, so the sort then reconciles the row path's first-seen
// emission order with the merge's key order). SUM pushes down only over
// integer columns so partial sums stay exact in any association order.
func compileAggPlan(stmt *SelectStmt, b binding) (*aggPlan, bool) {
	if len(stmt.Joins) > 0 || stmt.Distinct || stmt.Having != nil || len(stmt.Items) == 0 {
		return nil, false
	}
	if len(stmt.GroupBy) == 0 && !containsAgg(stmt) {
		return nil, false
	}
	preds, win, requireTS, full := decomposeWhere(stmt.Where, b.name, b.schema)
	if !full {
		return nil, false
	}
	group := ""
	if len(stmt.GroupBy) > 1 {
		return nil, false
	}
	if len(stmt.GroupBy) == 1 {
		c, ok := stmt.GroupBy[0].(*ColumnRef)
		if !ok || (c.Qualifier != "" && c.Qualifier != b.name) || b.schema.FieldIndex(c.Name) < 0 {
			return nil, false
		}
		group = c.Name
	}
	spec := &scanspec.Spec{Preds: preds, Window: win, RequireTS: requireTS, GroupBy: group}
	plan := &aggPlan{limit: stmt.Limit}
	for _, it := range stmt.Items {
		if it.Star {
			return nil, false
		}
		name := it.Alias
		if name == "" {
			name = it.Expr.exprString()
		}
		switch v := it.Expr.(type) {
		case *ColumnRef:
			if group == "" || v.Name != group || (v.Qualifier != "" && v.Qualifier != b.name) {
				return nil, false
			}
			plan.group = append(plan.group, true)
			plan.aggIdx = append(plan.aggIdx, -1)
		case *AggFunc:
			a, ok := pushAgg(v, b)
			if !ok {
				return nil, false
			}
			plan.group = append(plan.group, false)
			plan.aggIdx = append(plan.aggIdx, len(spec.Aggs))
			spec.Aggs = append(spec.Aggs, a)
		default:
			return nil, false
		}
		plan.cols = append(plan.cols, name)
	}
	if len(spec.Aggs) == 0 {
		return nil, false
	}
	groupOrdered := group == ""
	for _, ok := range stmt.OrderBy {
		c, isCol := ok.Expr.(*ColumnRef)
		if !isCol || c.Qualifier != "" {
			return nil, false
		}
		idx := -1
		for i, name := range plan.cols {
			if name == c.Name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, false
		}
		plan.orderIdx = append(plan.orderIdx, idx)
		plan.orderDesc = append(plan.orderDesc, ok.Desc)
		if plan.group[idx] {
			groupOrdered = true
		}
	}
	if !groupOrdered {
		return nil, false
	}
	plan.spec = spec
	return plan, true
}

// pushAgg maps one SELECT-list aggregate onto its pushdown form.
func pushAgg(v *AggFunc, b binding) (scanspec.Agg, bool) {
	if v.Distinct {
		return scanspec.Agg{}, false
	}
	switch v.Name {
	case "COUNT":
		if v.Star {
			return scanspec.Agg{Fn: "COUNT"}, true
		}
	case "SUM", "MIN", "MAX":
	default:
		return scanspec.Agg{}, false
	}
	c, ok := v.Arg.(*ColumnRef)
	if !ok || (c.Qualifier != "" && c.Qualifier != b.name) {
		return scanspec.Agg{}, false
	}
	fi := b.schema.FieldIndex(c.Name)
	if fi < 0 {
		return scanspec.Agg{}, false
	}
	if v.Name == "SUM" && b.schema.Fields[fi].Kind != telco.KindInt {
		return scanspec.Agg{}, false
	}
	return scanspec.Agg{Fn: v.Name, Col: c.Name}, true
}

// result renders merged partials into the statement's result set, mirroring
// the row path: a zero-row ungrouped aggregate still yields one row, ORDER
// BY keys compare output values, and LIMIT truncates last.
func (p *aggPlan) result(parts []scanspec.Partial) *ResultSet {
	if len(parts) == 0 && p.spec.GroupBy == "" {
		parts = []scanspec.Partial{*p.spec.NewPartial(telco.Null)}
	}
	rs := &ResultSet{Cols: p.cols}
	for _, part := range parts {
		row := make([]telco.Value, len(p.cols))
		for i := range p.cols {
			if p.group[i] {
				row[i] = part.Group.Value()
			} else {
				ai := p.aggIdx[i]
				row[i] = p.spec.Aggs[ai].Finalize(part.Cells[ai])
			}
		}
		rs.Rows = append(rs.Rows, row)
	}
	if len(p.orderIdx) > 0 {
		sort.SliceStable(rs.Rows, func(a, b int) bool {
			for j, ci := range p.orderIdx {
				c := rs.Rows[a][ci].Compare(rs.Rows[b][ci])
				if c != 0 {
					if p.orderDesc[j] {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
	}
	if p.limit >= 0 && len(rs.Rows) > p.limit {
		rs.Rows = rs.Rows[:p.limit]
	}
	return rs
}
