package sqlengine

import (
	"fmt"
	"strings"
)

// Expr is a SQL expression node.
type Expr interface {
	exprString() string
}

// ColumnRef names a column, optionally qualified (t.col).
type ColumnRef struct {
	Qualifier string
	Name      string
}

func (c *ColumnRef) exprString() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// Literal is a constant.
type Literal struct {
	IsNull bool
	IsStr  bool
	Str    string
	IsInt  bool
	Int    int64
	Float  float64
	IsBool bool
	Bool   bool
}

func (l *Literal) exprString() string {
	switch {
	case l.IsNull:
		return "NULL"
	case l.IsStr:
		return "'" + l.Str + "'"
	case l.IsInt:
		return fmt.Sprint(l.Int)
	case l.IsBool:
		return fmt.Sprint(l.Bool)
	default:
		return fmt.Sprint(l.Float)
	}
}

// Binary is a binary operation (comparison, arithmetic, AND/OR).
type Binary struct {
	Op          string
	Left, Right Expr
}

func (b *Binary) exprString() string {
	return "(" + b.Left.exprString() + " " + b.Op + " " + b.Right.exprString() + ")"
}

// Unary is NOT or unary minus.
type Unary struct {
	Op string
	X  Expr
}

func (u *Unary) exprString() string { return u.Op + " " + u.X.exprString() }

// IsNullExpr tests x IS [NOT] NULL.
type IsNullExpr struct {
	X      Expr
	Negate bool
}

func (e *IsNullExpr) exprString() string {
	if e.Negate {
		return e.X.exprString() + " IS NOT NULL"
	}
	return e.X.exprString() + " IS NULL"
}

// InExpr tests membership in a literal list or a subquery.
type InExpr struct {
	X      Expr
	List   []Expr
	Sub    *SelectStmt
	Negate bool
}

func (e *InExpr) exprString() string {
	var b strings.Builder
	b.WriteString(e.X.exprString())
	if e.Negate {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (...)")
	return b.String()
}

// BetweenExpr tests x BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Negate    bool
}

func (e *BetweenExpr) exprString() string {
	return e.X.exprString() + " BETWEEN " + e.Lo.exprString() + " AND " + e.Hi.exprString()
}

// LikeExpr tests x LIKE pattern (with % and _ wildcards).
type LikeExpr struct {
	X       Expr
	Pattern string
	Negate  bool
}

func (e *LikeExpr) exprString() string {
	return e.X.exprString() + " LIKE '" + e.Pattern + "'"
}

// AggFunc is an aggregate invocation: COUNT/SUM/MIN/MAX/AVG, with
// DISTINCT supported for COUNT.
type AggFunc struct {
	Name     string // upper-case
	Star     bool   // COUNT(*)
	Distinct bool   // COUNT(DISTINCT x)
	Arg      Expr
}

func (a *AggFunc) exprString() string {
	if a.Star {
		return a.Name + "(*)"
	}
	if a.Distinct {
		return a.Name + "(DISTINCT " + a.Arg.exprString() + ")"
	}
	return a.Name + "(" + a.Arg.exprString() + ")"
}

// FuncExpr is a scalar function call: HOUR(ts), SUBSTR(s, 1, 3), ...
type FuncExpr struct {
	Name string // upper-case
	Args []Expr
}

func (f *FuncExpr) exprString() string {
	s := f.Name + "("
	for i, a := range f.Args {
		if i > 0 {
			s += ", "
		}
		s += a.exprString()
	}
	return s + ")"
}

// SelectItem is one projection of the SELECT list.
type SelectItem struct {
	Star  bool // SELECT *
	Expr  Expr
	Alias string
}

// TableRef names a source table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

func (t TableRef) binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinClause is an INNER JOIN with an ON predicate.
type JoinClause struct {
	Table TableRef
	On    Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT statement, optionally wrapped in
// EXPLAIN [ANALYZE].
type SelectStmt struct {
	// Explain requests the query plan instead of the rows; Analyze
	// additionally executes the statement and reports row counts, wall
	// time and the storage profile (chunks pruned, cache hits, bytes).
	Explain bool
	Analyze bool

	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderKey
	Limit    int // -1 when absent
}
