package sqlengine

import (
	"testing"
)

func TestScalarFunctions(t *testing.T) {
	tests := []struct {
		sql  string
		want string // formatted first column of first row
	}{
		{`SELECT HOUR(ts) FROM CDR LIMIT 1`, "15"},
		{`SELECT YEAR(ts) FROM CDR LIMIT 1`, "2016"},
		{`SELECT MONTH(ts) FROM CDR LIMIT 1`, "1"},
		{`SELECT DAY(ts) FROM CDR LIMIT 1`, "22"},
		{`SELECT MINUTE(ts) FROM CDR LIMIT 1`, "30"},
		{`SELECT LENGTH(caller) FROM CDR LIMIT 1`, "5"},
		{`SELECT UPPER(caller) FROM CDR LIMIT 1`, "ALICE"},
		{`SELECT LOWER(call_type) FROM CDR LIMIT 1`, "voice"},
		{`SELECT SUBSTR(caller, 1, 3) FROM CDR LIMIT 1`, "ali"},
		{`SELECT SUBSTR(caller, 3, 100) FROM CDR LIMIT 1`, "ice"},
		{`SELECT ABS(0 - duration) FROM CDR LIMIT 1`, "60"},
		{`SELECT ROUND(duration / 7.0) FROM CDR LIMIT 1`, "9"},
		{`SELECT COALESCE(NULL, caller) FROM CDR LIMIT 1`, "alice"},
		{`SELECT COALESCE(caller, 'x') FROM CDR LIMIT 1`, "alice"},
	}
	for _, tc := range tests {
		rs := mustQuery(t, tc.sql)
		if len(rs.Rows) != 1 {
			t.Fatalf("%s: rows = %d", tc.sql, len(rs.Rows))
		}
		if got := rs.Rows[0][0].Format(); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.sql, got, tc.want)
		}
	}
}

func TestGroupByHourOfDay(t *testing.T) {
	// The canonical telco time-of-day rollup.
	rs := mustQuery(t, `SELECT HOUR(ts) AS h, COUNT(*) AS n FROM CDR GROUP BY HOUR(ts) ORDER BY h`)
	// Test rows at minutes 0,1,2 (15h), 40,41 (16h), 90 (17h).
	if len(rs.Rows) != 3 {
		t.Fatalf("hours = %v", rs.Rows)
	}
	want := map[int64]int64{15: 3, 16: 2, 17: 1}
	for _, r := range rs.Rows {
		if r[1].Int64() != want[r[0].Int64()] {
			t.Errorf("hour %d count = %d, want %d", r[0].Int64(), r[1].Int64(), want[r[0].Int64()])
		}
	}
}

func TestCountDistinct(t *testing.T) {
	rs := mustQuery(t, `SELECT COUNT(DISTINCT caller), COUNT(caller), COUNT(DISTINCT cell_id) FROM CDR`)
	r := rs.Rows[0]
	if r[0].Int64() != 4 { // alice, bob, carol, dave
		t.Errorf("COUNT(DISTINCT caller) = %d, want 4", r[0].Int64())
	}
	if r[1].Int64() != 6 {
		t.Errorf("COUNT(caller) = %d, want 6", r[1].Int64())
	}
	if r[2].Int64() != 3 {
		t.Errorf("COUNT(DISTINCT cell_id) = %d, want 3", r[2].Int64())
	}
	// Per-group distinct.
	rs = mustQuery(t, `SELECT call_type, COUNT(DISTINCT cell_id) AS cells FROM CDR
		GROUP BY call_type ORDER BY call_type`)
	want := map[string]int64{"DATA": 2, "SMS": 1, "VOICE": 3}
	for _, r := range rs.Rows {
		if r[1].Int64() != want[r[0].Str()] {
			t.Errorf("%s distinct cells = %d, want %d", r[0].Str(), r[1].Int64(), want[r[0].Str()])
		}
	}
}

func TestFunctionErrors(t *testing.T) {
	eng := NewEngine(testCatalog())
	bad := []string{
		`SELECT NOSUCHFN(caller) FROM CDR`,
		`SELECT HOUR(caller) FROM CDR`,   // not a time
		`SELECT HOUR(ts, ts) FROM CDR`,   // arity
		`SELECT SUBSTR(caller) FROM CDR`, // arity
		`SELECT ABS(call_type) FROM CDR`, // not numeric
	}
	for _, sql := range bad {
		if _, err := eng.Query(sql); err == nil {
			t.Errorf("%s: want error", sql)
		}
	}
}

func TestFunctionsInsideAggregatesAndWhere(t *testing.T) {
	// Aggregate over a scalar function.
	rs := mustQuery(t, `SELECT MAX(LENGTH(caller)) FROM CDR`)
	if rs.Rows[0][0].Int64() != 5 {
		t.Errorf("MAX(LENGTH(caller)) = %v", rs.Rows[0][0])
	}
	// Scalar over an aggregate.
	rs = mustQuery(t, `SELECT ROUND(AVG(duration)) FROM CDR`)
	if rs.Rows[0][0].Float64() != 35 {
		t.Errorf("ROUND(AVG(duration)) = %v", rs.Rows[0][0])
	}
	// Function in WHERE.
	rs = mustQuery(t, `SELECT caller FROM CDR WHERE HOUR(ts) = 16 ORDER BY caller`)
	if len(rs.Rows) != 2 {
		t.Errorf("HOUR filter rows = %d", len(rs.Rows))
	}
}
