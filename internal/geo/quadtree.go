package geo

// Item is a spatial payload stored in a QuadTree: a point plus an opaque
// integer handle (e.g. a cell ID) and an aggregate weight.
type Item struct {
	Pt     Point
	ID     int64
	Weight float64
}

// QuadTree is a point quad-tree with per-node aggregate weights. SHAHED's
// aggregate index (and the optional per-leaf spatial index SPATE discusses
// in §V-A) use it to answer box queries and box aggregations without a
// full scan.
type QuadTree struct {
	bounds   Rect
	capacity int
	root     *qtNode
	size     int
}

type qtNode struct {
	bounds Rect
	items  []Item // leaf payload; nil once split
	kids   *[4]*qtNode
	count  int     // items in this subtree
	weight float64 // sum of weights in this subtree
}

// DefaultNodeCapacity is the leaf split threshold.
const DefaultNodeCapacity = 16

// NewQuadTree builds an empty tree over the given bounds. Capacity <= 0
// selects DefaultNodeCapacity.
func NewQuadTree(bounds Rect, capacity int) *QuadTree {
	if capacity <= 0 {
		capacity = DefaultNodeCapacity
	}
	return &QuadTree{bounds: bounds, capacity: capacity, root: &qtNode{bounds: bounds}}
}

// Bounds returns the tree's coverage rectangle.
func (t *QuadTree) Bounds() Rect { return t.bounds }

// Len returns the number of stored items.
func (t *QuadTree) Len() int { return t.size }

// Insert adds an item. Items outside the tree bounds are rejected.
func (t *QuadTree) Insert(it Item) bool {
	if !t.bounds.Contains(it.Pt) {
		return false
	}
	t.root.insert(it, t.capacity)
	t.size++
	return true
}

// minExtent stops subdividing once nodes are ~1 meter across, preventing
// unbounded recursion on coincident points.
const minExtent = 1e-3

func (n *qtNode) insert(it Item, capacity int) {
	n.count++
	n.weight += it.Weight
	if n.kids == nil {
		ext := n.bounds.MaxX - n.bounds.MinX
		if len(n.items) < capacity || ext <= minExtent {
			n.items = append(n.items, it)
			return
		}
		n.split(capacity)
	}
	n.child(it.Pt).insert(it, capacity)
}

func (n *qtNode) split(capacity int) {
	qs := n.bounds.quadrants()
	kids := &[4]*qtNode{}
	for i := range kids {
		kids[i] = &qtNode{bounds: qs[i]}
	}
	n.kids = kids
	items := n.items
	n.items = nil
	for _, it := range items {
		c := n.child(it.Pt)
		// Reinsert without touching n's own aggregates (already counted).
		c.insert(it, capacity)
	}
}

func (n *qtNode) child(p Point) *qtNode {
	for _, k := range n.kids {
		if k.bounds.Contains(p) {
			return k
		}
	}
	// Floating-point edge cases: fall back to the last quadrant.
	return n.kids[3]
}

// Query appends every item inside box to dst and returns it.
func (t *QuadTree) Query(box Rect, dst []Item) []Item {
	return t.root.query(box, dst)
}

func (n *qtNode) query(box Rect, dst []Item) []Item {
	if n.count == 0 || !n.bounds.Intersects(box) {
		return dst
	}
	if n.kids == nil {
		for _, it := range n.items {
			if box.Contains(it.Pt) {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, k := range n.kids {
		dst = k.query(box, dst)
	}
	return dst
}

// AggregateQuery returns the count and weight sum of all items inside box,
// using subtree aggregates to skip fully covered nodes. This is the
// operation SHAHED's index serves for spatio-temporal aggregate queries.
func (t *QuadTree) AggregateQuery(box Rect) (count int, weight float64) {
	return t.root.aggregate(box)
}

func (n *qtNode) aggregate(box Rect) (int, float64) {
	if n.count == 0 || !n.bounds.Intersects(box) {
		return 0, 0
	}
	if box.Covers(n.bounds) {
		return n.count, n.weight
	}
	if n.kids == nil {
		c, w := 0, 0.0
		for _, it := range n.items {
			if box.Contains(it.Pt) {
				c++
				w += it.Weight
			}
		}
		return c, w
	}
	c, w := 0, 0.0
	for _, k := range n.kids {
		kc, kw := k.aggregate(box)
		c += kc
		w += kw
	}
	return c, w
}

// Depth returns the maximum depth of the tree (root = 1); useful in tests.
func (t *QuadTree) Depth() int { return t.root.depth() }

func (n *qtNode) depth() int {
	if n.kids == nil {
		return 1
	}
	max := 0
	for _, k := range n.kids {
		if d := k.depth(); d > max {
			max = d
		}
	}
	return max + 1
}
