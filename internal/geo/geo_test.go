package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(10, 20, 0, 5) // swapped corners
	want := Rect{MinX: 0, MinY: 5, MaxX: 10, MaxY: 20}
	if r != want {
		t.Fatalf("NewRect normalize: got %v, want %v", r, want)
	}
	if !r.Contains(Point{0, 5}) {
		t.Error("min corner must be inside (half-open)")
	}
	if r.Contains(Point{10, 20}) {
		t.Error("max corner must be outside (half-open)")
	}
	if got := r.Area(); got != 150 {
		t.Errorf("Area = %v, want 150", got)
	}
	if got := r.Center(); got != (Point{5, 12.5}) {
		t.Errorf("Center = %v", got)
	}
}

func TestRectCoversIntersects(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	tests := []struct {
		s                 Rect
		covers, intersect bool
	}{
		{NewRect(1, 1, 9, 9), true, true},
		{NewRect(0, 0, 10, 10), true, true},
		{NewRect(-1, 0, 10, 10), false, true},
		{NewRect(10, 10, 20, 20), false, false}, // touching corner
		{NewRect(5, -5, 15, 5), false, true},
		{NewRect(20, 20, 30, 30), false, false},
	}
	for _, tc := range tests {
		if got := r.Covers(tc.s); got != tc.covers {
			t.Errorf("Covers(%v) = %v, want %v", tc.s, got, tc.covers)
		}
		if got := r.Intersects(tc.s); got != tc.intersect {
			t.Errorf("Intersects(%v) = %v, want %v", tc.s, got, tc.intersect)
		}
	}
}

func TestRectExpand(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	r = r.Expand(Point{5, -3})
	if !r.Contains(Point{5, -3}) {
		t.Errorf("expanded rect %v does not contain point", r)
	}
	if !r.Contains(Point{0.5, 0.5}) {
		t.Error("expansion lost original coverage")
	}
}

func TestQuadrantsPartition(t *testing.T) {
	r := NewRect(0, 0, 8, 8)
	qs := r.quadrants()
	var total float64
	for _, q := range qs {
		total += q.Area()
	}
	if total != r.Area() {
		t.Errorf("quadrant areas sum to %v, want %v", total, r.Area())
	}
	// Every interior point belongs to exactly one quadrant.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := Point{rng.Float64() * 8, rng.Float64() * 8}
		n := 0
		for _, q := range qs {
			if q.Contains(p) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("point %v in %d quadrants", p, n)
		}
	}
}

func randomItems(n int, seed int64, bounds Rect) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Pt: Point{
				bounds.MinX + rng.Float64()*(bounds.MaxX-bounds.MinX),
				bounds.MinY + rng.Float64()*(bounds.MaxY-bounds.MinY),
			},
			ID:     int64(i),
			Weight: rng.Float64() * 10,
		}
	}
	return items
}

func TestQuadTreeQueryMatchesLinearScan(t *testing.T) {
	bounds := NewRect(0, 0, 100, 100)
	items := randomItems(2000, 42, bounds)
	qt := NewQuadTree(bounds, 8)
	for _, it := range items {
		if !qt.Insert(it) {
			t.Fatalf("Insert(%v) rejected", it)
		}
	}
	if qt.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", qt.Len(), len(items))
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		box := NewRect(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		got := qt.Query(box, nil)
		var wantN int
		var wantW float64
		for _, it := range items {
			if box.Contains(it.Pt) {
				wantN++
				wantW += it.Weight
			}
		}
		if len(got) != wantN {
			t.Errorf("Query(%v): got %d items, scan %d", box, len(got), wantN)
		}
		c, w := qt.AggregateQuery(box)
		if c != wantN {
			t.Errorf("AggregateQuery(%v): count %d, want %d", box, c, wantN)
		}
		if diff := w - wantW; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("AggregateQuery(%v): weight %v, want %v", box, w, wantW)
		}
	}
}

func TestQuadTreeRejectsOutside(t *testing.T) {
	qt := NewQuadTree(NewRect(0, 0, 1, 1), 4)
	if qt.Insert(Item{Pt: Point{2, 2}}) {
		t.Error("Insert outside bounds accepted")
	}
	if qt.Len() != 0 {
		t.Error("size changed after rejected insert")
	}
}

func TestQuadTreeCoincidentPoints(t *testing.T) {
	// Many identical points must not recurse forever.
	qt := NewQuadTree(NewRect(0, 0, 1, 1), 2)
	for i := 0; i < 100; i++ {
		qt.Insert(Item{Pt: Point{0.5, 0.5}, ID: int64(i), Weight: 1})
	}
	c, w := qt.AggregateQuery(NewRect(0.4, 0.4, 0.6, 0.6))
	if c != 100 || w != 100 {
		t.Errorf("coincident aggregate = (%d,%v), want (100,100)", c, w)
	}
	if d := qt.Depth(); d > 30 {
		t.Errorf("depth %d too large for coincident points", d)
	}
}

func TestQuadTreeFullCoverFastPath(t *testing.T) {
	bounds := NewRect(0, 0, 64, 64)
	qt := NewQuadTree(bounds, 4)
	items := randomItems(500, 3, bounds)
	for _, it := range items {
		qt.Insert(it)
	}
	c, _ := qt.AggregateQuery(bounds)
	if c != 500 {
		t.Errorf("full-cover count = %d, want 500", c)
	}
}

func TestGridCellIndexRoundTrip(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 80, 75), 16, 15)
	if g.NumCells() != 240 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		p := Point{rng.Float64() * 80, rng.Float64() * 75}
		idx := g.CellIndex(p)
		if idx < 0 || idx >= g.NumCells() {
			t.Fatalf("CellIndex(%v) = %d out of range", p, idx)
		}
		if !g.CellRect(idx).Contains(p) {
			t.Fatalf("CellRect(%d)=%v does not contain %v", idx, g.CellRect(idx), p)
		}
	}
	if g.CellIndex(Point{-1, 0}) != -1 {
		t.Error("outside point should map to -1")
	}
}

func TestGridCellsIntersecting(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 10, 10), 10, 10)
	got := g.CellsIntersecting(NewRect(2.5, 2.5, 4.5, 3.5), nil)
	// x cells 2,3,4 ; y cells 2,3 -> 6 cells
	if len(got) != 6 {
		t.Errorf("CellsIntersecting = %v (len %d), want 6 cells", got, len(got))
	}
	if got := g.CellsIntersecting(NewRect(20, 20, 30, 30), nil); got != nil {
		t.Errorf("disjoint box returned cells %v", got)
	}
	// Whole bounds -> every cell.
	if got := g.CellsIntersecting(g.Bounds(), nil); len(got) != 100 {
		t.Errorf("full box = %d cells, want 100", len(got))
	}
}

func TestGridPropertyEveryIntersectedCellTouchesBox(t *testing.T) {
	g := NewGrid(NewRect(0, 0, 100, 100), 20, 20)
	f := func(a, b, c, d float64) bool {
		box := NewRect(mod(a, 100), mod(b, 100), mod(c, 100), mod(d, 100))
		for _, idx := range g.CellsIntersecting(box, nil) {
			if !g.CellRect(idx).Intersects(box) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mod(v, m float64) float64 {
	v = math.Abs(math.Mod(v, m))
	if math.IsNaN(v) {
		return 0
	}
	return v
}
