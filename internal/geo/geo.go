// Package geo provides the planar spatial primitives used throughout the
// SPATE reproduction: points, rectangles, a uniform grid, and a quad-tree.
//
// Telco records are not point data in the traditional sense — each record is
// linked to a cell ID covering an area of hundreds of meters (paper §II-B).
// Coordinates here are kilometers in a local planar frame covering the
// trace's ~6000 km^2 service region.
package geo

import "fmt"

// Point is a planar location in kilometers.
type Point struct {
	X, Y float64
}

// Rect is an axis-aligned rectangle, half-open on the max edges:
// a point p is inside when MinX <= p.X < MaxX and MinY <= p.Y < MaxY.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect builds a rectangle, normalizing swapped corners.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x2 < x1 {
		x1, x2 = x2, x1
	}
	if y2 < y1 {
		y1, y2 = y2, y1
	}
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// Contains reports whether p lies inside the half-open rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// Covers reports whether r fully contains s.
func (r Rect) Covers(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether the two rectangles overlap with positive area.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX < s.MaxX && s.MinX < r.MaxX && r.MinY < s.MaxY && s.MinY < r.MaxY
}

// Area returns the rectangle's area in km^2.
func (r Rect) Area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Expand grows the rectangle to include p (treating the rect as closed).
func (r Rect) Expand(p Point) Rect {
	if p.X < r.MinX {
		r.MinX = p.X
	}
	if p.X >= r.MaxX {
		r.MaxX = nextAfter(p.X)
	}
	if p.Y < r.MinY {
		r.MinY = p.Y
	}
	if p.Y >= r.MaxY {
		r.MaxY = nextAfter(p.Y)
	}
	return r
}

// nextAfter nudges v up by a relative epsilon so a point on the max edge
// lands strictly inside the half-open rect.
func nextAfter(v float64) float64 {
	const eps = 1e-9
	if v == 0 {
		return eps
	}
	if v > 0 {
		return v * (1 + eps)
	}
	return v * (1 - eps)
}

// String renders the rect for diagnostics.
func (r Rect) String() string {
	return fmt.Sprintf("[%.3f,%.3f)x[%.3f,%.3f)", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// SpatialIndex is the read surface shared by the quad-tree and the R-tree
// — the two leaf-index variants the paper names in §V-A. Both answer box
// queries and box aggregations over point items.
type SpatialIndex interface {
	// Query appends every item inside box to dst.
	Query(box Rect, dst []Item) []Item
	// AggregateQuery returns the count and weight sum inside box.
	AggregateQuery(box Rect) (count int, weight float64)
	// Len returns the number of stored items.
	Len() int
}

// Compile-time checks: both index variants satisfy SpatialIndex.
var (
	_ SpatialIndex = (*QuadTree)(nil)
	_ SpatialIndex = (*RTree)(nil)
)

// quadrants splits the rectangle into its four quadrants
// (NW, NE, SW, SE order).
func (r Rect) quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{MinX: r.MinX, MinY: c.Y, MaxX: c.X, MaxY: r.MaxY},
		{MinX: c.X, MinY: c.Y, MaxX: r.MaxX, MaxY: r.MaxY},
		{MinX: r.MinX, MinY: r.MinY, MaxX: c.X, MaxY: c.Y},
		{MinX: c.X, MinY: r.MinY, MaxX: r.MaxX, MaxY: c.Y},
	}
}
