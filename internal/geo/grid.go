package geo

// Grid maps points to uniform cells over a bounding rectangle. SPATE's
// highlight summaries bucket measurements per spatial grid cell so that a
// bounding-box predicate can be answered from aggregates alone.
type Grid struct {
	bounds Rect
	nx, ny int
	cw, ch float64
}

// NewGrid builds an nx-by-ny grid over bounds. Dimensions < 1 are clamped.
func NewGrid(bounds Rect, nx, ny int) Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return Grid{
		bounds: bounds,
		nx:     nx,
		ny:     ny,
		cw:     (bounds.MaxX - bounds.MinX) / float64(nx),
		ch:     (bounds.MaxY - bounds.MinY) / float64(ny),
	}
}

// Bounds returns the covered rectangle.
func (g Grid) Bounds() Rect { return g.bounds }

// Dims returns the grid dimensions (nx, ny).
func (g Grid) Dims() (int, int) { return g.nx, g.ny }

// NumCells returns nx*ny.
func (g Grid) NumCells() int { return g.nx * g.ny }

// CellIndex returns the flat cell index containing p, or -1 when p is
// outside the grid bounds.
func (g Grid) CellIndex(p Point) int {
	if !g.bounds.Contains(p) {
		return -1
	}
	ix := int((p.X - g.bounds.MinX) / g.cw)
	iy := int((p.Y - g.bounds.MinY) / g.ch)
	if ix >= g.nx {
		ix = g.nx - 1
	}
	if iy >= g.ny {
		iy = g.ny - 1
	}
	return iy*g.nx + ix
}

// CellRect returns the rectangle of the flat cell index i.
func (g Grid) CellRect(i int) Rect {
	ix, iy := i%g.nx, i/g.nx
	return Rect{
		MinX: g.bounds.MinX + float64(ix)*g.cw,
		MinY: g.bounds.MinY + float64(iy)*g.ch,
		MaxX: g.bounds.MinX + float64(ix+1)*g.cw,
		MaxY: g.bounds.MinY + float64(iy+1)*g.ch,
	}
}

// CellsIntersecting appends the flat indices of every grid cell whose
// rectangle intersects box, in row-major order.
func (g Grid) CellsIntersecting(box Rect, dst []int) []int {
	if !g.bounds.Intersects(box) {
		return dst
	}
	x0 := clamp(int((box.MinX-g.bounds.MinX)/g.cw), 0, g.nx-1)
	x1 := clamp(int((box.MaxX-g.bounds.MinX)/g.cw), 0, g.nx-1)
	y0 := clamp(int((box.MinY-g.bounds.MinY)/g.ch), 0, g.ny-1)
	y1 := clamp(int((box.MaxY-g.bounds.MinY)/g.ch), 0, g.ny-1)
	for iy := y0; iy <= y1; iy++ {
		for ix := x0; ix <= x1; ix++ {
			i := iy*g.nx + ix
			if g.CellRect(i).Intersects(box) {
				dst = append(dst, i)
			}
		}
	}
	return dst
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
