package geo

import (
	"math/rand"
	"testing"
)

func TestRTreeInsertQueryMatchesScan(t *testing.T) {
	bounds := NewRect(0, 0, 100, 100)
	items := randomItems(3000, 11, bounds)
	rt := NewRTree(8)
	for _, it := range items {
		rt.Insert(it)
	}
	if rt.Len() != len(items) {
		t.Fatalf("Len = %d", rt.Len())
	}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		box := NewRect(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		got := rt.Query(box, nil)
		var wantN int
		var wantW float64
		for _, it := range items {
			if box.Contains(it.Pt) {
				wantN++
				wantW += it.Weight
			}
		}
		if len(got) != wantN {
			t.Errorf("Query(%v) = %d items, scan %d", box, len(got), wantN)
		}
		c, w := rt.AggregateQuery(box)
		if c != wantN {
			t.Errorf("AggregateQuery(%v) count = %d, want %d", box, c, wantN)
		}
		if diff := w - wantW; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("AggregateQuery(%v) weight = %v, want %v", box, w, wantW)
		}
	}
}

func TestRTreeBulkLoadMatchesScan(t *testing.T) {
	bounds := NewRect(0, 0, 80, 75)
	items := randomItems(3660, 13, bounds) // the paper's cell count
	rt := BulkLoadRTree(items, 16)
	if rt.Len() != len(items) {
		t.Fatalf("Len = %d", rt.Len())
	}
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 60; trial++ {
		box := NewRect(rng.Float64()*80, rng.Float64()*75, rng.Float64()*80, rng.Float64()*75)
		got := rt.Query(box, nil)
		wantN := 0
		for _, it := range items {
			if box.Contains(it.Pt) {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Errorf("bulk Query(%v) = %d, scan %d", box, len(got), wantN)
		}
	}
	// STR packing yields a shallow, balanced tree.
	if d := rt.Depth(); d > 4 {
		t.Errorf("bulk-loaded depth = %d for 3660 items", d)
	}
}

func TestRTreeAgreesWithQuadTree(t *testing.T) {
	bounds := NewRect(0, 0, 64, 64)
	items := randomItems(1500, 15, bounds)
	rt := BulkLoadRTree(items, 8)
	qt := NewQuadTree(bounds, 8)
	for _, it := range items {
		qt.Insert(it)
	}
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 40; trial++ {
		box := NewRect(rng.Float64()*64, rng.Float64()*64, rng.Float64()*64, rng.Float64()*64)
		rc, rw := rt.AggregateQuery(box)
		qc, qw := qt.AggregateQuery(box)
		if rc != qc {
			t.Errorf("count: rtree %d vs quadtree %d on %v", rc, qc, box)
		}
		if diff := rw - qw; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("weight: rtree %v vs quadtree %v", rw, qw)
		}
	}
}

func TestRTreeEmptyAndEdge(t *testing.T) {
	rt := NewRTree(0) // default fanout
	if got := rt.Query(NewRect(0, 0, 1, 1), nil); got != nil {
		t.Error("empty tree returned items")
	}
	if c, w := rt.AggregateQuery(NewRect(0, 0, 1, 1)); c != 0 || w != 0 {
		t.Error("empty aggregate nonzero")
	}
	if BulkLoadRTree(nil, 4).Len() != 0 {
		t.Error("bulk load of nothing")
	}
	// Single item.
	rt.Insert(Item{Pt: Point{0.5, 0.5}, ID: 1, Weight: 2})
	if c, w := rt.AggregateQuery(NewRect(0, 0, 1, 1)); c != 1 || w != 2 {
		t.Errorf("single item aggregate = %d/%v", c, w)
	}
	if c, _ := rt.AggregateQuery(NewRect(2, 2, 3, 3)); c != 0 {
		t.Error("miss returned items")
	}
}

func TestRTreeCoincidentPoints(t *testing.T) {
	rt := NewRTree(4)
	for i := 0; i < 200; i++ {
		rt.Insert(Item{Pt: Point{5, 5}, ID: int64(i), Weight: 1})
	}
	c, w := rt.AggregateQuery(NewRect(4, 4, 6, 6))
	if c != 200 || w != 200 {
		t.Errorf("coincident = %d/%v", c, w)
	}
}

func BenchmarkRTreeQuery(b *testing.B) {
	bounds := NewRect(0, 0, 100, 100)
	items := randomItems(10000, 17, bounds)
	rt := BulkLoadRTree(items, 16)
	box := NewRect(20, 20, 40, 40)
	b.ResetTimer()
	var out []Item
	for i := 0; i < b.N; i++ {
		out = rt.Query(box, out[:0])
	}
}

func BenchmarkQuadTreeQuery(b *testing.B) {
	bounds := NewRect(0, 0, 100, 100)
	items := randomItems(10000, 17, bounds)
	qt := NewQuadTree(bounds, 16)
	for _, it := range items {
		qt.Insert(it)
	}
	box := NewRect(20, 20, 40, 40)
	b.ResetTimer()
	var out []Item
	for i := 0; i < b.N; i++ {
		out = qt.Query(box, out[:0])
	}
}
