package geo

import "sort"

// RTree is an R-tree over point items with per-node aggregate counts and
// weights — the alternative leaf spatial index the paper names in §V-A
// ("an additional spatial index (e.g., R-tree or quad-tree variant)").
// It supports incremental insertion (quadratic-split R-tree) and STR bulk
// loading for static sets such as the cell inventory.
type RTree struct {
	root *rtNode
	size int
	// min/max children per node.
	minEntries, maxEntries int
}

type rtNode struct {
	bounds Rect
	leaf   bool
	items  []Item    // when leaf
	kids   []*rtNode // when internal
	count  int
	weight float64
}

// NewRTree returns an empty tree. maxEntries <= 0 selects 8.
func NewRTree(maxEntries int) *RTree {
	if maxEntries <= 1 {
		maxEntries = 8
	}
	min := maxEntries * 2 / 5
	if min < 1 {
		min = 1
	}
	return &RTree{
		root:       &rtNode{leaf: true},
		minEntries: min,
		maxEntries: maxEntries,
	}
}

// Len returns the number of stored items.
func (t *RTree) Len() int { return t.size }

// Bounds returns the root bounding rectangle (zero when empty).
func (t *RTree) Bounds() Rect { return t.root.bounds }

func pointRect(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

func union(a, b Rect) Rect {
	if a == (Rect{}) {
		return b
	}
	if b == (Rect{}) {
		return a
	}
	if b.MinX < a.MinX {
		a.MinX = b.MinX
	}
	if b.MinY < a.MinY {
		a.MinY = b.MinY
	}
	if b.MaxX > a.MaxX {
		a.MaxX = b.MaxX
	}
	if b.MaxY > a.MaxY {
		a.MaxY = b.MaxY
	}
	return a
}

func area(r Rect) float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// enlargement is the area growth of r needed to cover s.
func enlargement(r, s Rect) float64 {
	return area(union(r, s)) - area(r)
}

// rectContains tests containment treating item rects as closed points.
func rectContains(box Rect, p Point) bool {
	return p.X >= box.MinX && p.X < box.MaxX && p.Y >= box.MinY && p.Y < box.MaxY
}

// rectIntersectsClosed tests a closed node MBR against a half-open query
// box.
func rectIntersectsClosed(mbr, box Rect) bool {
	return mbr.MinX < box.MaxX && box.MinX <= mbr.MaxX &&
		mbr.MinY < box.MaxY && box.MinY <= mbr.MaxY
}

// Insert adds an item.
func (t *RTree) Insert(it Item) {
	t.size++
	split := t.insert(t.root, it)
	if split != nil {
		// Grow a new root.
		old := t.root
		t.root = &rtNode{
			leaf:   false,
			kids:   []*rtNode{old, split},
			bounds: union(old.bounds, split.bounds),
			count:  old.count + split.count,
			weight: old.weight + split.weight,
		}
	}
}

// insert adds it under n, returning a new sibling when n split.
func (t *RTree) insert(n *rtNode, it Item) *rtNode {
	n.bounds = union(n.bounds, pointRect(it.Pt))
	n.count++
	n.weight += it.Weight
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > t.maxEntries {
			return t.splitLeaf(n)
		}
		return nil
	}
	// Choose the subtree needing least enlargement (ties: smaller area).
	best := n.kids[0]
	bestGrow := enlargement(best.bounds, pointRect(it.Pt))
	for _, k := range n.kids[1:] {
		g := enlargement(k.bounds, pointRect(it.Pt))
		if g < bestGrow || (g == bestGrow && area(k.bounds) < area(best.bounds)) {
			best, bestGrow = k, g
		}
	}
	if split := t.insert(best, it); split != nil {
		n.kids = append(n.kids, split)
		if len(n.kids) > t.maxEntries {
			return t.splitInternal(n)
		}
	}
	return nil
}

// splitLeaf performs a quadratic split of an overfull leaf, mutating n and
// returning the new sibling.
func (t *RTree) splitLeaf(n *rtNode) *rtNode {
	items := n.items
	// Pick the two seeds wasting the most area if grouped.
	si, sj := 0, 1
	worst := -1.0
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			w := area(union(pointRect(items[i].Pt), pointRect(items[j].Pt)))
			if w > worst {
				worst, si, sj = w, i, j
			}
		}
	}
	a := &rtNode{leaf: true}
	b := &rtNode{leaf: true}
	addItem := func(dst *rtNode, it Item) {
		dst.items = append(dst.items, it)
		dst.bounds = union(dst.bounds, pointRect(it.Pt))
		dst.count++
		dst.weight += it.Weight
	}
	addItem(a, items[si])
	addItem(b, items[sj])
	for k, it := range items {
		if k == si || k == sj {
			continue
		}
		// Honor minimum fill.
		remaining := len(items) - k // rough; assignment below still balances
		_ = remaining
		switch {
		case len(a.items)+1 <= t.minEntries && len(b.items) >= t.minEntries:
			addItem(a, it)
		case len(b.items)+1 <= t.minEntries && len(a.items) >= t.minEntries:
			addItem(b, it)
		default:
			if enlargement(a.bounds, pointRect(it.Pt)) <= enlargement(b.bounds, pointRect(it.Pt)) {
				addItem(a, it)
			} else {
				addItem(b, it)
			}
		}
	}
	*n = *a
	return b
}

// splitInternal splits an overfull internal node.
func (t *RTree) splitInternal(n *rtNode) *rtNode {
	kids := n.kids
	si, sj := 0, 1
	worst := -1.0
	for i := 0; i < len(kids); i++ {
		for j := i + 1; j < len(kids); j++ {
			w := area(union(kids[i].bounds, kids[j].bounds))
			if w > worst {
				worst, si, sj = w, i, j
			}
		}
	}
	a := &rtNode{}
	b := &rtNode{}
	addKid := func(dst *rtNode, k *rtNode) {
		dst.kids = append(dst.kids, k)
		dst.bounds = union(dst.bounds, k.bounds)
		dst.count += k.count
		dst.weight += k.weight
	}
	addKid(a, kids[si])
	addKid(b, kids[sj])
	for k, kid := range kids {
		if k == si || k == sj {
			continue
		}
		switch {
		case len(a.kids)+1 <= t.minEntries && len(b.kids) >= t.minEntries:
			addKid(a, kid)
		case len(b.kids)+1 <= t.minEntries && len(a.kids) >= t.minEntries:
			addKid(b, kid)
		default:
			if enlargement(a.bounds, kid.bounds) <= enlargement(b.bounds, kid.bounds) {
				addKid(a, kid)
			} else {
				addKid(b, kid)
			}
		}
	}
	*n = *a
	return b
}

// BulkLoadRTree builds a tree from items with Sort-Tile-Recursive packing:
// near-full leaves and a balanced structure, ideal for the static cell
// inventory.
func BulkLoadRTree(items []Item, maxEntries int) *RTree {
	t := NewRTree(maxEntries)
	if len(items) == 0 {
		return t
	}
	t.size = len(items)
	// STR: sort by x, cut into vertical slices, sort each by y, pack.
	sorted := make([]Item, len(items))
	copy(sorted, items)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pt.X < sorted[j].Pt.X })
	per := t.maxEntries
	nLeaves := (len(sorted) + per - 1) / per
	nSlices := intSqrtCeil(nLeaves)
	sliceSize := ((len(sorted) + nSlices - 1) / nSlices)

	var leaves []*rtNode
	for s := 0; s < len(sorted); s += sliceSize {
		e := s + sliceSize
		if e > len(sorted) {
			e = len(sorted)
		}
		slice := sorted[s:e]
		sort.Slice(slice, func(i, j int) bool { return slice[i].Pt.Y < slice[j].Pt.Y })
		for o := 0; o < len(slice); o += per {
			oe := o + per
			if oe > len(slice) {
				oe = len(slice)
			}
			leaf := &rtNode{leaf: true}
			for _, it := range slice[o:oe] {
				leaf.items = append(leaf.items, it)
				leaf.bounds = union(leaf.bounds, pointRect(it.Pt))
				leaf.count++
				leaf.weight += it.Weight
			}
			leaves = append(leaves, leaf)
		}
	}
	// Pack upward until a single root remains.
	level := leaves
	for len(level) > 1 {
		var next []*rtNode
		for s := 0; s < len(level); s += per {
			e := s + per
			if e > len(level) {
				e = len(level)
			}
			n := &rtNode{}
			for _, k := range level[s:e] {
				n.kids = append(n.kids, k)
				n.bounds = union(n.bounds, k.bounds)
				n.count += k.count
				n.weight += k.weight
			}
			next = append(next, n)
		}
		level = next
	}
	t.root = level[0]
	return t
}

func intSqrtCeil(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Query appends every item inside the half-open box to dst.
func (t *RTree) Query(box Rect, dst []Item) []Item {
	if t.size == 0 {
		return dst
	}
	return t.root.query(box, dst)
}

func (n *rtNode) query(box Rect, dst []Item) []Item {
	if !rectIntersectsClosed(n.bounds, box) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if rectContains(box, it.Pt) {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, k := range n.kids {
		dst = k.query(box, dst)
	}
	return dst
}

// AggregateQuery returns the count and weight of items inside box, using
// subtree aggregates when a node's MBR is fully covered.
func (t *RTree) AggregateQuery(box Rect) (int, float64) {
	if t.size == 0 {
		return 0, 0
	}
	return t.root.aggregate(box)
}

func (n *rtNode) aggregate(box Rect) (int, float64) {
	if !rectIntersectsClosed(n.bounds, box) {
		return 0, 0
	}
	// MBRs are closed; full coverage check must keep the half-open query
	// semantics: the MBR's max corner must be strictly inside.
	if box.MinX <= n.bounds.MinX && box.MinY <= n.bounds.MinY &&
		n.bounds.MaxX < box.MaxX && n.bounds.MaxY < box.MaxY {
		return n.count, n.weight
	}
	if n.leaf {
		c, w := 0, 0.0
		for _, it := range n.items {
			if rectContains(box, it.Pt) {
				c++
				w += it.Weight
			}
		}
		return c, w
	}
	c, w := 0, 0.0
	for _, k := range n.kids {
		kc, kw := k.aggregate(box)
		c += kc
		w += kw
	}
	return c, w
}

// Depth returns the tree height (root = 1).
func (t *RTree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.kids[0] {
		d++
	}
	return d
}
