package raw

import (
	"testing"
	"time"

	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

func newWorld(t *testing.T) (*gen.Generator, *Store, gen.Config) {
	t.Helper()
	cfg := gen.DefaultConfig(0.002)
	cfg.Antennas = 15
	cfg.Users = 100
	cfg.CDRPerEpoch = 60
	cfg.NMSReportsPerCell = 0.5
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 2, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(fs, g.CellTable())
	if err != nil {
		t.Fatal(err)
	}
	return g, s, cfg
}

func ingest(t *testing.T, g *gen.Generator, s *Store, start time.Time, n int) int {
	t.Helper()
	rows := 0
	e0 := telco.EpochOf(start)
	for i := 0; i < n; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		rep, err := s.Ingest(sn)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Bytes == 0 || rep.Rows == 0 {
			t.Fatalf("report = %+v", rep)
		}
		rows += rep.Rows
	}
	return rows
}

func TestIngestAndScanAll(t *testing.T) {
	g, s, cfg := newWorld(t)
	total := ingest(t, g, s, cfg.Start, 3)
	w := telco.NewTimeRange(cfg.Start, cfg.Start.Add(24*time.Hour))
	got := 0
	err := s.Scan(w, nil, func(name string, tab *telco.Table) error {
		got += tab.Len()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != total {
		t.Errorf("scanned %d rows, ingested %d", got, total)
	}
}

func TestScanFiltersWindowAndTables(t *testing.T) {
	g, s, cfg := newWorld(t)
	ingest(t, g, s, cfg.Start, 4)
	// Only the second epoch's window.
	w := telco.NewTimeRange(cfg.Start.Add(30*time.Minute), cfg.Start.Add(60*time.Minute))
	byTable := map[string]int{}
	err := s.Scan(w, []string{"CDR"}, func(name string, tab *telco.Table) error {
		byTable[name] += tab.Len()
		tsIdx := tab.Schema.FieldIndex(telco.AttrTS)
		for _, r := range tab.Rows {
			if !w.Contains(r[tsIdx].Time()) {
				t.Fatal("row outside window")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if byTable["NMS"] != 0 {
		t.Error("table filter ignored")
	}
	if byTable["CDR"] == 0 {
		t.Error("no CDR rows in window")
	}
}

func TestSpaceIsUncompressed(t *testing.T) {
	g, s, cfg := newWorld(t)
	ingest(t, g, s, cfg.Start, 2)
	if s.Space() == 0 {
		t.Error("zero space after ingest")
	}
	// Uncompressed: stored bytes are within a few percent of text size.
	var text int64
	for _, fi := range s.FS().List("/raw/spate/data/") {
		text += fi.Size
	}
	if text == 0 {
		t.Error("no data files")
	}
}
