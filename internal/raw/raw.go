// Package raw implements the RAW baseline of the paper's evaluation
// (§VII-A): "the default solution that stores the telco snapshots as data
// files on the HDFS file system without any compression, indexing or
// decaying". Queries over RAW scan the stored files and filter records —
// there is no index to prune by time or space.
package raw

import (
	"fmt"
	"time"

	"spate/internal/dfs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// Store is a RAW ingestion target over a DFS cluster.
type Store struct {
	fs *dfs.Cluster
}

// Open creates a RAW store and persists the cell inventory uncompressed.
func Open(fs *dfs.Cluster, cellTable *telco.Table) (*Store, error) {
	s := &Store{fs: fs}
	if !fs.Exists("/raw/meta/CELL") {
		if err := fs.WriteFile("/raw/meta/CELL", []byte(cellTable.Text())); err != nil {
			return nil, fmt.Errorf("raw: persist cell table: %w", err)
		}
	}
	return s, nil
}

// FS returns the underlying cluster.
func (s *Store) FS() *dfs.Cluster { return s.fs }

// Report describes one RAW ingestion.
type Report struct {
	Epoch telco.Epoch
	Rows  int
	Bytes int64
	Total time.Duration
}

// dataPath mirrors SPATE's layout under /raw so the two stores can share a
// cluster in tests without colliding.
func dataPath(e telco.Epoch, table string) string {
	return "/raw" + snapshot.DataPath(e, table)
}

// Ingest writes each table of the snapshot as an uncompressed text file.
func (s *Store) Ingest(snap *snapshot.Snapshot) (Report, error) {
	start := time.Now()
	rep := Report{Epoch: snap.Epoch, Rows: snap.Rows()}
	for _, name := range snap.TableNames() {
		text, err := snap.EncodeTable(name)
		if err != nil {
			return rep, fmt.Errorf("raw: encode %s: %w", name, err)
		}
		if err := s.fs.WriteFile(dataPath(snap.Epoch, name), text); err != nil {
			return rep, fmt.Errorf("raw: store %s: %w", name, err)
		}
		rep.Bytes += int64(len(text))
	}
	rep.Total = time.Since(start)
	return rep, nil
}

// Scan reads every stored file of the named tables and invokes fn per
// (table name, parsed table). RAW has no index: the window is applied by
// filtering records, not by pruning files, and every stored byte is read.
func (s *Store) Scan(w telco.TimeRange, tables []string, fn func(string, *telco.Table) error) error {
	want := func(name string) bool {
		if len(tables) == 0 {
			return true
		}
		for _, t := range tables {
			if t == name {
				return true
			}
		}
		return false
	}
	for _, fi := range s.fs.List("/raw/spate/data/") {
		name := tableOf(fi.Path)
		if !want(name) {
			continue
		}
		data, err := s.fs.ReadFile(fi.Path)
		if err != nil {
			return fmt.Errorf("raw: read %s: %w", fi.Path, err)
		}
		tab, err := snapshot.DecodeTable(name, data)
		if err != nil {
			return fmt.Errorf("raw: decode %s: %w", fi.Path, err)
		}
		filtered := filterWindow(tab, w)
		if filtered.Len() == 0 {
			continue
		}
		if err := fn(name, filtered); err != nil {
			return err
		}
	}
	return nil
}

// tableOf extracts the table name (final path segment).
func tableOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// filterWindow drops records outside w by their ts attribute.
func filterWindow(t *telco.Table, w telco.TimeRange) *telco.Table {
	tsIdx := t.Schema.FieldIndex(telco.AttrTS)
	if tsIdx < 0 {
		return t
	}
	out := telco.NewTable(t.Schema)
	for _, r := range t.Rows {
		if r[tsIdx].IsNull() || w.Contains(r[tsIdx].Time()) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Space returns the bytes RAW occupies (logical, pre-replication).
func (s *Store) Space() int64 {
	var n int64
	for _, fi := range s.fs.List("/raw/") {
		n += fi.Size
	}
	return n
}
