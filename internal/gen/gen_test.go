package gen

import (
	"testing"
	"time"

	"spate/internal/entropy"
	"spate/internal/telco"
)

func smallConfig() Config {
	cfg := DefaultConfig(0.01)
	cfg.Antennas = 40
	cfg.Users = 500
	cfg.CDRPerEpoch = 300
	cfg.NMSReportsPerCell = 2
	return cfg
}

func TestTopologyShape(t *testing.T) {
	g := New(smallConfig())
	cells := g.Cells()
	if len(cells) != 40*3 {
		t.Fatalf("cells = %d, want 120", len(cells))
	}
	region := g.Config().Region
	ids := map[int64]bool{}
	for _, c := range cells {
		if !region.Contains(c.Pt) {
			t.Errorf("cell %d outside region: %v", c.ID, c.Pt)
		}
		if ids[c.ID] {
			t.Errorf("duplicate cell id %d", c.ID)
		}
		ids[c.ID] = true
		switch c.Tech {
		case "GSM", "UMTS", "LTE":
		default:
			t.Errorf("cell %d has unknown tech %q", c.ID, c.Tech)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig()
	g1, g2 := New(cfg), New(cfg)
	e := telco.EpochOf(cfg.Start)
	a := g1.CDRTable(e).Text()
	b := g2.CDRTable(e).Text()
	if a != b {
		t.Error("same config produced different CDR snapshots")
	}
	na := g1.NMSTable(e).Text()
	nb := g2.NMSTable(e).Text()
	if na != nb {
		t.Error("same config produced different NMS snapshots")
	}
	// Different epochs must differ.
	if a == g1.CDRTable(e+1).Text() {
		t.Error("different epochs produced identical snapshots")
	}
}

func TestCDRRecordsWellFormed(t *testing.T) {
	g := New(smallConfig())
	e := telco.EpochOf(g.Config().Start.Add(9 * time.Hour)) // morning load
	tab := g.CDRTable(e)
	if tab.Len() == 0 {
		t.Fatal("empty CDR snapshot")
	}
	cellIDs := map[int64]bool{}
	for _, c := range g.Cells() {
		cellIDs[c.ID] = true
	}
	for _, r := range tab.Rows {
		ts := r.Get(telco.CDRSchema, telco.AttrTS).Time()
		if !e.Contains(ts) {
			t.Fatalf("record ts %v outside epoch %v", ts, e)
		}
		if !cellIDs[r.Get(telco.CDRSchema, telco.AttrCellID).Int64()] {
			t.Fatalf("record references unknown cell")
		}
		if d := r.Get(telco.CDRSchema, telco.AttrDuration).Int64(); d < 0 {
			t.Fatalf("negative duration %d", d)
		}
		// Every record must round-trip through the wire form.
		if _, err := telco.DecodeLine(telco.CDRSchema, r.Line()); err != nil {
			t.Fatalf("round trip: %v", err)
		}
	}
}

func TestNMSVolumeDominatesCDR(t *testing.T) {
	// The paper's trace has ~12x more NMS than CDR records and OSS data is
	// >97% of the volume; verify NMS outweighs CDR in record count.
	cfg := smallConfig()
	cfg.NMSReportsPerCell = 17
	cfg.CDRPerEpoch = 100
	g := New(cfg)
	e := telco.EpochOf(cfg.Start.Add(10 * time.Hour))
	cdr, nms := g.CDRTable(e).Len(), g.NMSTable(e).Len()
	if nms <= cdr {
		t.Errorf("NMS (%d) should dominate CDR (%d)", nms, cdr)
	}
}

func TestLoadFactorShape(t *testing.T) {
	monday := time.Date(2016, 1, 18, 0, 0, 0, 0, time.UTC)
	morning := LoadFactor(monday.Add(9 * time.Hour))
	night := LoadFactor(monday.Add(2 * time.Hour))
	if morning <= night {
		t.Errorf("morning load %v should exceed night load %v", morning, night)
	}
	sunday := time.Date(2016, 1, 24, 9, 0, 0, 0, time.UTC)
	if LoadFactor(sunday) >= morning {
		t.Errorf("sunday load should be below weekday morning load")
	}
}

func TestCDREntropyProfileMatchesFigure4(t *testing.T) {
	// The headline property of Figure 4: most of the ~200 CDR attributes
	// have entropy < 1 bit and some have exactly 0.
	g := New(smallConfig())
	tab := g.CDRTable(telco.EpochOf(g.Config().Start.Add(9 * time.Hour)))
	sum := entropy.Summarize(entropy.OfTable(tab))
	if sum.Attrs != telco.NumCDRAttrs {
		t.Fatalf("attrs = %d", sum.Attrs)
	}
	if frac := float64(sum.BelowOne) / float64(sum.Attrs); frac < 0.5 {
		t.Errorf("only %.0f%% of CDR attributes below 1 bit; paper shape wants most", frac*100)
	}
	if sum.Zero == 0 {
		t.Error("no zero-entropy CDR attributes; paper shape wants some")
	}
}

func TestCommuterMobilityShape(t *testing.T) {
	// Working-hour activity must concentrate at workplace cells: the same
	// population produces a different spatial distribution at 10:00 than
	// at 22:00 (the traffic-proxy property trafficmap builds on).
	g := New(smallConfig())
	day := g.Config().Start // a Monday
	workEpoch := telco.EpochOf(day.Add(10 * time.Hour))
	nightEpoch := telco.EpochOf(day.Add(22 * time.Hour))
	dist := func(e telco.Epoch) map[int64]int {
		out := map[int64]int{}
		for _, r := range g.CDRTable(e).Rows {
			out[r.Get(telco.CDRSchema, telco.AttrCellID).Int64()]++
		}
		return out
	}
	work, night := dist(workEpoch), dist(nightEpoch)
	if len(work) == 0 || len(night) == 0 {
		t.Fatal("empty distributions")
	}
	// The two distributions differ materially (L1 distance over the union
	// normalized by total mass > 0.3).
	total := 0
	diff := 0
	keys := map[int64]bool{}
	for k := range work {
		keys[k] = true
	}
	for k := range night {
		keys[k] = true
	}
	for k := range keys {
		diff += abs(work[k] - night[k])
		total += work[k] + night[k]
	}
	if frac := float64(diff) / float64(total); frac < 0.3 {
		t.Errorf("work/night cell distributions too similar: L1 frac %.2f", frac)
	}
	// Weekend working hours look like home time, not office time.
	sunday := telco.EpochOf(day.AddDate(0, 0, 6).Add(10 * time.Hour))
	_ = sunday // distributional check above suffices; weekend epochs exist
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestCellTableMatchesSchema(t *testing.T) {
	g := New(smallConfig())
	tab := g.CellTable()
	if tab.Len() != len(g.Cells()) {
		t.Fatalf("cell table len %d, want %d", tab.Len(), len(g.Cells()))
	}
	for _, r := range tab.Rows {
		if _, err := telco.DecodeLine(telco.CellSchema, r.Line()); err != nil {
			t.Fatalf("cell row round trip: %v", err)
		}
	}
}

func TestMorningSnapshotsBiggerThanNight(t *testing.T) {
	g := New(smallConfig())
	day := g.Config().Start
	morning := g.CDRTable(telco.EpochOf(day.Add(9 * time.Hour))).Len()
	night := g.CDRTable(telco.EpochOf(day.Add(2 * time.Hour))).Len()
	if morning <= night {
		t.Errorf("morning snapshot (%d rows) should exceed night (%d rows)", morning, night)
	}
}
