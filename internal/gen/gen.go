// Package gen synthesizes telco traces with the statistical shape of the
// 5 GB anonymized dataset evaluated in the SPATE paper: ~200-attribute CDR
// records dominated by blank/near-constant columns, NMS performance counters
// per cell per epoch at roughly 12x the CDR volume, a static CELL inventory
// of sectored antennas over a ~6000 km^2 region, and diurnal/weekly load
// curves that drive the paper's day-period (Fig. 7/8) and day-of-week
// (Fig. 9/10) experiment partitions.
//
// Generation is deterministic: the same Config yields byte-identical
// snapshots, and each epoch is generated independently (random access).
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"spate/internal/geo"
	"spate/internal/telco"
)

// Config parameterizes a synthetic trace. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Seed drives all pseudo-randomness.
	Seed int64
	// Start is the first epoch boundary of the trace.
	Start time.Time
	// Users is the subscriber population (paper: ~300K).
	Users int
	// Antennas is the number of base stations (paper: 1192).
	Antennas int
	// SectorsPerAntenna controls cells per antenna (paper: 3660/1192 ~ 3).
	SectorsPerAntenna int
	// Region is the service area (paper: ~6000 km^2).
	Region geo.Rect
	// CDRPerEpoch is the mean CDR record count of an average-load epoch.
	CDRPerEpoch int
	// NMSReportsPerCell is the mean NMS report count per cell per epoch.
	NMSReportsPerCell float64
}

// DefaultConfig returns the paper-shaped configuration at the given scale
// in (0,1]. Scale 1 approximates the full trace: 1.7M CDR + 21M NMS over
// one week (336 epochs) -> ~5060 CDR and ~62500 NMS per epoch.
func DefaultConfig(scale float64) Config {
	if scale <= 0 {
		scale = 1
	}
	// Antennas shrink as sqrt(scale) (coverage density), so the per-cell
	// NMS report rate shrinks by the other sqrt(scale) factor to preserve
	// the paper's ~12:1 NMS:CDR record ratio at every scale.
	return Config{
		Seed:              1,
		Start:             time.Date(2016, 1, 18, 0, 0, 0, 0, time.UTC), // a Monday
		Users:             max(50, int(300_000*scale)),
		Antennas:          max(8, int(1192*math.Sqrt(scale))),
		SectorsPerAntenna: 3,
		Region:            geo.NewRect(0, 0, 80, 75), // 6000 km^2
		CDRPerEpoch:       max(20, int(5060*scale)),
		NMSReportsPerCell: 17 * math.Sqrt(scale),
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Cell describes one sector of an antenna: the spatial anchor every telco
// record is linked to.
type Cell struct {
	ID      int64
	Antenna int64
	Tech    string // GSM | UMTS | LTE
	Pt      geo.Point
	Azimuth int
	RangeM  int
	HeightM int
	PowerD  int
	BSC     int64
}

// Generator produces snapshots of a synthetic trace.
type Generator struct {
	cfg   Config
	cells []Cell
	// cellPop holds cumulative Zipf-like popularity weights over cells for
	// sampling where traffic happens (urban cells are hotter).
	cellPop []float64
	// userHome and userWork anchor each user to a home and a workplace
	// cell, so identifiers correlate with space and commuting produces the
	// home->work cell flows real CDR streams show (the traffic-proxy
	// property smart-city systems build on, paper refs [3], [6]).
	userHome []int
	userWork []int
}

// New builds a generator, synthesizing the cell topology from cfg.
func New(cfg Config) *Generator {
	g := &Generator{cfg: cfg}
	g.buildTopology()
	return g
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Cells returns the static cell inventory.
func (g *Generator) Cells() []Cell { return g.cells }

// buildTopology places antennas as a mixture of urban clusters plus a rural
// scatter, then fans each antenna into sectored cells.
func (g *Generator) buildTopology() {
	rng := rand.New(rand.NewSource(g.cfg.Seed))
	r := g.cfg.Region
	w, h := r.MaxX-r.MinX, r.MaxY-r.MinY

	// Three urban centers hold ~70% of antennas.
	type cluster struct {
		c      geo.Point
		sigma  float64
		weight float64
	}
	clusters := []cluster{
		{geo.Point{X: r.MinX + 0.30*w, Y: r.MinY + 0.40*h}, 4.0, 0.40},
		{geo.Point{X: r.MinX + 0.65*w, Y: r.MinY + 0.60*h}, 3.0, 0.20},
		{geo.Point{X: r.MinX + 0.55*w, Y: r.MinY + 0.25*h}, 2.5, 0.10},
	}
	techs := []string{"GSM", "UMTS", "LTE"}
	cellID := int64(1000)
	for a := 0; a < g.cfg.Antennas; a++ {
		var pt geo.Point
		u := rng.Float64()
		placed := false
		acc := 0.0
		for _, cl := range clusters {
			acc += cl.weight
			if u < acc {
				for {
					pt = geo.Point{
						X: cl.c.X + rng.NormFloat64()*cl.sigma,
						Y: cl.c.Y + rng.NormFloat64()*cl.sigma,
					}
					if r.Contains(pt) {
						break
					}
				}
				placed = true
				break
			}
		}
		if !placed { // rural scatter
			pt = geo.Point{
				X: r.MinX + rng.Float64()*w,
				Y: r.MinY + rng.Float64()*h,
			}
		}
		tech := techs[rng.Intn(len(techs))]
		sectors := g.cfg.SectorsPerAntenna
		if sectors < 1 {
			sectors = 1
		}
		for s := 0; s < sectors; s++ {
			g.cells = append(g.cells, Cell{
				ID:      cellID,
				Antenna: int64(a + 1),
				Tech:    tech,
				Pt:      pt,
				Azimuth: s * (360 / sectors),
				RangeM:  300 + rng.Intn(1500),
				HeightM: 15 + rng.Intn(40),
				PowerD:  20 + rng.Intn(23),
				BSC:     int64(a/50 + 1),
			})
			cellID++
		}
	}

	// Zipf-ish popularity over cells: popularity ~ 1/rank^0.8 after a
	// random shuffle so hot cells are spread across clusters.
	perm := rng.Perm(len(g.cells))
	pop := make([]float64, len(g.cells))
	for rank, idx := range perm {
		pop[idx] = 1 / math.Pow(float64(rank+1), 0.8)
	}
	g.cellPop = make([]float64, len(pop))
	acc := 0.0
	for i, p := range pop {
		acc += p
		g.cellPop[i] = acc
	}

	g.userHome = make([]int, g.cfg.Users)
	g.userWork = make([]int, g.cfg.Users)
	for u := range g.userHome {
		g.userHome[u] = g.sampleCell(rng)
		g.userWork[u] = g.sampleCell(rng)
	}
}

// activeCell places a user at call time: commuters (4 of 5 users) sit at
// their workplace cell on weekday working hours and at home otherwise,
// with a roaming fraction sampled by cell popularity.
func (g *Generator) activeCell(rng *rand.Rand, user int, at time.Time) int {
	if rng.Float64() < 0.15 {
		return g.sampleCell(rng)
	}
	h := at.Hour()
	wd := at.Weekday()
	working := h >= 9 && h < 17 && wd != time.Saturday && wd != time.Sunday
	if working && user%5 != 0 {
		return g.userWork[user]
	}
	return g.userHome[user]
}

// sampleCell draws a cell index from the popularity distribution.
func (g *Generator) sampleCell(rng *rand.Rand) int {
	total := g.cellPop[len(g.cellPop)-1]
	u := rng.Float64() * total
	lo, hi := 0, len(g.cellPop)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cellPop[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LoadFactor is the traffic multiplier at time t: a diurnal curve (morning
// busiest, night quietest) times a weekly curve (weekdays > weekend). The
// paper's Morning/Afternoon/Evening/Night and Mon..Sun dataset partitions
// observe exactly this variation.
func LoadFactor(t time.Time) float64 {
	var diurnal float64
	switch h := t.Hour(); {
	case h >= 5 && h < 12: // morning
		diurnal = 1.25
	case h >= 12 && h < 17: // afternoon
		diurnal = 1.05
	case h >= 17 && h < 21: // evening
		diurnal = 0.90
	default: // night 21-05
		diurnal = 0.35
	}
	var weekly float64
	switch t.Weekday() {
	case time.Saturday:
		weekly = 0.85
	case time.Sunday:
		weekly = 0.70
	default:
		weekly = 1.0 + 0.02*float64(t.Weekday()) // slight ramp Mon..Fri
	}
	return diurnal * weekly
}

// CellTable renders the static inventory as a CELL table.
func (g *Generator) CellTable() *telco.Table {
	t := telco.NewTable(telco.CellSchema)
	for _, c := range g.cells {
		t.Append(telco.Record{
			telco.Int(c.ID),
			telco.Int(c.Antenna),
			telco.String(c.Tech),
			telco.Float(round3(c.Pt.X)),
			telco.Float(round3(c.Pt.Y)),
			telco.Int(int64(c.Azimuth)),
			telco.Int(int64(c.RangeM)),
			telco.Int(int64(c.HeightM)),
			telco.Int(int64(c.PowerD)),
			telco.Int(c.BSC),
		})
	}
	return t
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// epochRNG derives the deterministic RNG for one epoch.
func (g *Generator) epochRNG(e telco.Epoch) *rand.Rand {
	return rand.New(rand.NewSource(g.cfg.Seed*1_000_003 + int64(e)))
}

// CDRTable generates the CDR batch of one epoch.
func (g *Generator) CDRTable(e telco.Epoch) *telco.Table {
	rng := g.epochRNG(e)
	start := e.Start()
	n := poissonish(rng, float64(g.cfg.CDRPerEpoch)*LoadFactor(start))
	t := telco.NewTable(telco.CDRSchema)
	for i := 0; i < n; i++ {
		t.Append(g.cdrRecord(rng, start))
	}
	return t
}

var callTypes = []string{"VOICE", "VOICE", "VOICE", "SMS", "SMS", "DATA", "MMS"}

// cdrRecord builds one ~200-attribute CDR row.
func (g *Generator) cdrRecord(rng *rand.Rand, epochStart time.Time) telco.Record {
	rec := make(telco.Record, telco.NumCDRAttrs)
	ts := epochStart.Add(time.Duration(rng.Int63n(int64(telco.EpochDuration))))
	caller := rng.Intn(g.cfg.Users)
	callee := rng.Intn(g.cfg.Users)
	cellIdx := g.activeCell(rng, caller, ts)
	callType := callTypes[rng.Intn(len(callTypes))]
	duration := int64(0)
	if callType == "VOICE" {
		duration = 5 + int64(rng.ExpFloat64()*120)
	}
	up, down := int64(0), int64(0)
	if callType == "DATA" {
		up = int64(rng.ExpFloat64() * 40_000)
		down = int64(rng.ExpFloat64() * 400_000)
	}
	result := "OK"
	switch r := rng.Float64(); {
	case r < 0.020:
		result = "DROP"
	case r < 0.045:
		result = "BUSY"
	case r < 0.055:
		result = "FAIL"
	}
	rec[0] = telco.Time(ts)
	rec[1] = telco.String(phoneNumber(caller))
	rec[2] = telco.String(phoneNumber(callee))
	rec[3] = telco.Int(g.cells[cellIdx].ID)
	rec[4] = telco.String(callType)
	rec[5] = telco.Int(duration)
	rec[6] = telco.Int(up)
	rec[7] = telco.Int(down)
	rec[8] = telco.String(result)
	rec[9] = telco.String(imei(caller))
	g.fillTailAttrs(rec, rng)
	return rec
}

// fillTailAttrs populates the 190 synthetic operational attributes with the
// entropy profile of Figure 4: most blank or constant (entropy ~0), a few
// low-cardinality counters.
func (g *Generator) fillTailAttrs(rec telco.Record, rng *rand.Rand) {
	for i := 10; i < telco.NumCDRAttrs; i++ {
		switch i % 4 {
		case 0, 1: // optional flags, blank ~97% of the time
			if rng.Float64() < 0.97 {
				rec[i] = telco.Null
			} else {
				rec[i] = telco.String(flagValues[i%len(flagValues)][rng.Intn(2)])
			}
		case 2: // skewed small counters
			rec[i] = telco.Int(int64(smallCounter(rng, i)))
		default: // per-attribute constants (entropy exactly 0)
			rec[i] = telco.String(constValues[i%len(constValues)])
		}
	}
}

var flagValues = [][2]string{
	{"Y", "N"}, {"A", "B"}, {"ON", "OFF"}, {"T", "F"}, {"1", "0"},
}

var constValues = []string{"DEF", "STD", "NONE", "V1", "GSM-A", "PLAN0", "X"}

// smallCounter draws a geometric-ish small integer whose skew varies by
// attribute position, giving the 0.5–2 bit band of Figure 4.
func smallCounter(rng *rand.Rand, attr int) int {
	p := 0.5 + 0.4*float64(attr%5)/5 // stop probability in (0.5,0.9)
	n := 0
	for rng.Float64() > p && n < 15 {
		n++
	}
	return n
}

// phoneNumber renders a stable pseudonymized MSISDN for a user index.
func phoneNumber(user int) string {
	return fmt.Sprintf("357%08d", user+1)
}

// imei renders a stable device identifier for a user index.
func imei(user int) string {
	return fmt.Sprintf("35%013d", int64(user)*7919+13)
}

// NMSTable generates the NMS batch of one epoch: aggregated performance
// counters per cell, volume ~12x CDR as in the paper's trace.
func (g *Generator) NMSTable(e telco.Epoch) *telco.Table {
	rng := g.epochRNG(e + 1<<40) // decouple from the CDR stream
	start := e.Start()
	load := LoadFactor(start)
	t := telco.NewTable(telco.NMSSchema)
	// NMS reports arrive on fixed 5-minute measurement cycles, so their
	// timestamps take only six distinct values per epoch.
	const reportCycle = 5 * time.Minute
	slots := int64(telco.EpochDuration / reportCycle)
	for _, c := range g.cells {
		n := poissonish(rng, g.cfg.NMSReportsPerCell*load)
		for i := 0; i < n; i++ {
			ts := start.Add(time.Duration(rng.Int63n(slots)) * reportCycle)
			attempts := 1 + rng.Intn(int(40*load)+1)
			drops := 0
			if attempts > 0 {
				drops = binomialish(rng, attempts, 0.02)
			}
			// Counters are quantized the way NMS equipment reports them:
			// durations to 0.1s, throughput in 100 kbps steps, RSSI in
			// 0.5 dBm steps — which is also what makes real OSS logs so
			// compressible (paper Figure 4 / Table I).
			t.Append(telco.Record{
				telco.Time(ts),
				telco.Int(c.ID),
				telco.Int(int64(drops)),
				telco.Int(int64(attempts)),
				telco.Float(math.Round(30 + rng.ExpFloat64()*90)),
				telco.Int(int64(200 + 100*rng.Intn(199))),
				telco.Float(-110 + 0.5*float64(rng.Intn(101))),
				telco.Int(int64(binomialish(rng, attempts, 0.01))),
			})
		}
	}
	return t
}

// poissonish approximates a Poisson draw with mean m (normal approximation
// above 30, Knuth below).
func poissonish(rng *rand.Rand, m float64) int {
	if m <= 0 {
		return 0
	}
	if m > 30 {
		v := int(m + rng.NormFloat64()*math.Sqrt(m) + 0.5)
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-m)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// binomialish draws Binomial(n, p) by direct simulation (n is small here).
func binomialish(rng *rand.Rand, n int, p float64) int {
	c := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			c++
		}
	}
	return c
}
