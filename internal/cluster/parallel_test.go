package cluster

import (
	"context"
	"reflect"
	"testing"
	"time"

	"spate/internal/core"
	"spate/internal/obs"
	"spate/internal/telco"
)

// TestClusterParallelScanParity is the cluster half of the parallel-scan
// parity contract: two identical 4-shard clusters, one with sequential
// shard engines and one scanning with 8 workers per query, must return
// identical coordinator answers — merged aggregates, cell series and
// exact rows alike. The coordinator's chronological merge relies on every
// shard emitting tables in its sequential order, so this pins exactly the
// invariant the order-preserving scheduler exists for.
func TestClusterParallelScanParity(t *testing.T) {
	g, snaps, window := testTrace(t, 4)

	start := func(workers int) *Local {
		lc, err := StartLocal(Config{Shards: 4, Obs: obs.NewRegistry()}, g.CellTable(), LocalOptions{
			Dir:    t.TempDir(),
			Engine: core.Options{Obs: obs.NewNoop(), ScanWorkers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lc.Close() })
		ctx := context.Background()
		for _, sn := range snaps {
			if err := lc.Coordinator.Ingest(ctx, sn); err != nil {
				t.Fatal(err)
			}
		}
		if err := lc.Coordinator.FinishIngest(ctx); err != nil {
			t.Fatal(err)
		}
		return lc
	}
	seqC := start(1)
	parC := start(8)

	ctx := context.Background()
	queries := []core.Query{
		{Window: window, ExactRows: true},
		{Window: telco.TimeRange{From: window.From.Add(6 * time.Hour), To: window.From.Add(60 * time.Hour)},
			ExactRows: true, Tables: []string{"CDR"}},
		{Window: telco.TimeRange{From: window.From.Add(24 * time.Hour), To: window.From.Add(72 * time.Hour)}},
	}
	for i, q := range queries {
		seq, err := seqC.Coordinator.Explore(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		par, err := parC.Coordinator.Explore(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Partial || par.Partial {
			t.Fatalf("query %d: partial answer (seq=%v par=%v)", i, seq.Partial, par.Partial)
		}
		if !reflect.DeepEqual(seq.Summary, par.Summary) {
			t.Errorf("query %d: summaries differ (seq rows=%d par rows=%d)",
				i, seq.Summary.Rows, par.Summary.Rows)
		}
		if !reflect.DeepEqual(seq.Cells, par.Cells) {
			t.Errorf("query %d: cell series differ (%d vs %d)", i, len(seq.Cells), len(par.Cells))
		}
		if !reflect.DeepEqual(seq.Highlights, par.Highlights) {
			t.Errorf("query %d: highlights differ", i)
		}
		if !reflect.DeepEqual(seq.Rows, par.Rows) {
			t.Errorf("query %d: exact rows differ", i)
		}
		if seq.ServedPeriod != par.ServedPeriod || seq.ScannedLeaves != par.ScannedLeaves ||
			seq.DecayedLeaves != par.DecayedLeaves || seq.ShardsQueried != par.ShardsQueried {
			t.Errorf("query %d: scan counters differ: seq{%v %d %d %d} par{%v %d %d %d}",
				i, seq.ServedPeriod, seq.ScannedLeaves, seq.DecayedLeaves, seq.ShardsQueried,
				par.ServedPeriod, par.ScannedLeaves, par.DecayedLeaves, par.ShardsQueried)
		}
		if i == 0 {
			// The merged profile takes the max fan-out across shards and
			// sums their dispatched units.
			if par.Profile.ScanWorkers != 8 {
				t.Errorf("cluster profile ScanWorkers = %d, want 8", par.Profile.ScanWorkers)
			}
			if par.Profile.ParallelUnits == 0 {
				t.Error("cluster profile ParallelUnits = 0 on an exact-row query")
			}
		}
	}
}
