package cluster

import (
	"fmt"
	"sort"

	"spate/internal/geo"
	"spate/internal/telco"
)

// ShardMap is the partitioning function of the cluster: it assigns every
// snapshot epoch to a time shard (round-robin over contiguous epoch
// blocks) and, when a spatial split is configured, every cell to a
// vertical band of the plane. A (time shard, band) pair is a "slot" — the
// unit a replica group serves.
//
// A map built from discovered node windows (join mode) instead addresses
// shards by explicit per-shard time ranges.
type ShardMap struct {
	// Shards is the number of time shards N.
	Shards int
	// BlockEpochs is the contiguous epochs per block.
	BlockEpochs int
	// Bands holds the half-open X intervals of the spatial sub-split, in
	// band order; len(Bands) == 1 means no split.
	Bands []Band
	// Windows, when non-empty, switches the map to explicit-window
	// addressing (join mode): time shard i owns Windows[i] and the block
	// round-robin is unused.
	Windows []telco.TimeRange
}

// Band is one vertical strip [MinX, MaxX) of the cell plane.
type Band struct {
	MinX, MaxX float64
}

// NewShardMap builds the block round-robin map of a config. When
// cfg.SpatialSplit > 1, bands divide [minX, maxX) of the cell inventory
// equally; cells is consulted only for its X extent.
func NewShardMap(cfg Config, cells []geo.Point) *ShardMap {
	cfg = cfg.withDefaults()
	m := &ShardMap{Shards: cfg.Shards, BlockEpochs: cfg.BlockEpochs}
	s := cfg.SpatialSplit
	if s <= 1 || len(cells) == 0 {
		m.Bands = []Band{{MinX: -1e18, MaxX: 1e18}}
		return m
	}
	lo, hi := cells[0].X, cells[0].X
	for _, p := range cells[1:] {
		if p.X < lo {
			lo = p.X
		}
		if p.X > hi {
			hi = p.X
		}
	}
	w := (hi - lo) / float64(s)
	for i := 0; i < s; i++ {
		b := Band{MinX: lo + float64(i)*w, MaxX: lo + float64(i+1)*w}
		if i == 0 {
			b.MinX = -1e18
		}
		if i == s-1 {
			b.MaxX = 1e18
		}
		m.Bands = append(m.Bands, b)
	}
	return m
}

// WindowShardMap builds an explicit-window map (join mode): shard i owns
// windows[i]. No spatial split.
func WindowShardMap(windows []telco.TimeRange) *ShardMap {
	return &ShardMap{
		Shards:  len(windows),
		Bands:   []Band{{MinX: -1e18, MaxX: 1e18}},
		Windows: append([]telco.TimeRange(nil), windows...),
	}
}

// NumBands returns the spatial fan-out per time shard.
func (m *ShardMap) NumBands() int { return len(m.Bands) }

// NumSlots returns the total slot count (time shards x bands).
func (m *ShardMap) NumSlots() int { return m.Shards * len(m.Bands) }

// Slot flattens a (time shard, band) pair into a slot index.
func (m *ShardMap) Slot(timeShard, band int) int { return timeShard*len(m.Bands) + band }

// SlotShard returns the time shard a slot belongs to.
func (m *ShardMap) SlotShard(slot int) int { return slot / len(m.Bands) }

// TimeShardOf returns the time shard owning an epoch (block round-robin).
func (m *ShardMap) TimeShardOf(e telco.Epoch) int {
	b := int64(e) / int64(m.BlockEpochs)
	return int(((b % int64(m.Shards)) + int64(m.Shards)) % int64(m.Shards))
}

// BandOf returns the band index of a planar location.
func (m *ShardMap) BandOf(pt geo.Point) int {
	for i, b := range m.Bands {
		if pt.X >= b.MinX && pt.X < b.MaxX {
			return i
		}
	}
	return len(m.Bands) - 1
}

// BandsFor returns the band indices a query box intersects; the zero box
// (no spatial predicate) selects every band.
func (m *ShardMap) BandsFor(box geo.Rect) []int {
	out := make([]int, 0, len(m.Bands))
	everywhere := box == (geo.Rect{})
	for i, b := range m.Bands {
		if everywhere || (box.MinX < b.MaxX && b.MinX < box.MaxX) {
			out = append(out, i)
		}
	}
	return out
}

// TimeShardsFor returns the time shards owning data inside w, in shard
// order.
func (m *ShardMap) TimeShardsFor(w telco.TimeRange) []int {
	if len(m.Windows) > 0 {
		var out []int
		for i, sw := range m.Windows {
			if sw.Overlaps(w) {
				out = append(out, i)
			}
		}
		return out
	}
	seen := make(map[int]bool, m.Shards)
	var out []int
	for _, b := range m.blocksIn(w) {
		s := m.TimeShardOf(telco.Epoch(b * int64(m.BlockEpochs)))
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
		if len(out) == m.Shards {
			break
		}
	}
	sort.Ints(out)
	return out
}

// OwnedRanges returns the time-ranges of w that timeShard owns, coalesced
// in chronological order — the Missing enumeration a degraded Result
// carries for a failed shard.
func (m *ShardMap) OwnedRanges(timeShard int, w telco.TimeRange) []telco.TimeRange {
	if len(m.Windows) > 0 {
		if timeShard < len(m.Windows) {
			if r, ok := intersect(m.Windows[timeShard], w); ok {
				return []telco.TimeRange{r}
			}
		}
		return nil
	}
	var out []telco.TimeRange
	for _, b := range m.blocksIn(w) {
		if m.TimeShardOf(telco.Epoch(b*int64(m.BlockEpochs))) != timeShard {
			continue
		}
		blockRange := telco.TimeRange{
			From: telco.Epoch(b * int64(m.BlockEpochs)).Start(),
			To:   telco.Epoch((b + 1) * int64(m.BlockEpochs)).Start(),
		}
		r, ok := intersect(blockRange, w)
		if !ok {
			continue
		}
		if n := len(out); n > 0 && out[n-1].To.Equal(r.From) {
			out[n-1].To = r.To // coalesce adjacent blocks
		} else {
			out = append(out, r)
		}
	}
	return out
}

// blocksIn lists the block indices overlapping w in order.
func (m *ShardMap) blocksIn(w telco.TimeRange) []int64 {
	if !w.From.Before(w.To) {
		return nil
	}
	first := int64(telco.EpochOf(w.From)) / int64(m.BlockEpochs)
	var out []int64
	for b := first; telco.Epoch(b * int64(m.BlockEpochs)).Start().Before(w.To); b++ {
		out = append(out, b)
	}
	return out
}

func intersect(a, b telco.TimeRange) (telco.TimeRange, bool) {
	lo, hi := a.From, a.To
	if b.From.After(lo) {
		lo = b.From
	}
	if b.To.Before(hi) {
		hi = b.To
	}
	if !lo.Before(hi) {
		return telco.TimeRange{}, false
	}
	return telco.TimeRange{From: lo, To: hi}, true
}

func (m *ShardMap) validate() error {
	if m.Shards <= 0 {
		return fmt.Errorf("cluster: shard map has no shards")
	}
	if len(m.Bands) == 0 {
		return fmt.Errorf("cluster: shard map has no bands")
	}
	if len(m.Windows) == 0 && m.BlockEpochs <= 0 {
		return fmt.Errorf("cluster: shard map needs BlockEpochs or Windows")
	}
	return nil
}
