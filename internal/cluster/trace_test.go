package cluster

import (
	"context"
	"testing"
	"time"

	"spate/internal/core"
	"spate/internal/obs"
	"spate/internal/telco"
)

// collectSpans walks a span tree and returns every node named name.
func collectSpans(j obs.SpanJSON, name string) []obs.SpanJSON {
	var out []obs.SpanJSON
	if j.Name == name {
		out = append(out, j)
	}
	for _, c := range j.Children {
		out = append(out, collectSpans(c, name)...)
	}
	return out
}

// TestClusterMergedTraceAndProfileParity is the tracing acceptance test: a
// 4-shard exploration must yield ONE coordinator-rooted trace with a remote
// rpc_explore subtree per shard (each carrying the node's scan spans), and
// the merged profile's storage counters must equal a single engine fed the
// same snapshots, bit for bit.
func TestClusterMergedTraceAndProfileParity(t *testing.T) {
	g, snaps, window := testTrace(t, 4)
	eng := newRefEngine(t, g)
	for _, sn := range snaps {
		if _, err := eng.Ingest(sn); err != nil {
			t.Fatal(err)
		}
	}
	eng.FinishIngest()

	// Coordinator and nodes deliberately use SEPARATE tracers: the only way
	// shard spans can appear under the coordinator root is over the RPC
	// trace propagation, as in a real multi-process deployment.
	coordTracer := obs.NewTracer(16)
	nodeTracer := obs.NewTracer(64)
	lc, err := StartLocal(
		Config{Shards: 4, Obs: obs.NewRegistry(), Tracer: coordTracer},
		g.CellTable(),
		LocalOptions{Dir: t.TempDir(), Engine: core.Options{Obs: obs.NewRegistry(), Tracer: nodeTracer}},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	ctx := context.Background()
	for _, sn := range snaps {
		if err := lc.Coordinator.Ingest(ctx, sn); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.Coordinator.FinishIngest(ctx); err != nil {
		t.Fatal(err)
	}

	q := core.Query{Window: window, ExactRows: true, Tables: []string{"CDR"}}
	single, err := eng.Explore(q)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := lc.Coordinator.Explore(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Partial {
		t.Fatalf("unexpected partial result: %v", cres.Missing)
	}

	// --- One merged trace, coordinator-rooted. ---
	if cres.TraceID == "" {
		t.Fatal("cluster result carries no trace id")
	}
	root, ok := coordTracer.Find(cres.TraceID)
	if !ok {
		t.Fatalf("trace %s not retrievable from the coordinator tracer", cres.TraceID)
	}
	if root.Name != "cluster_explore" {
		t.Fatalf("trace root = %q, want cluster_explore", root.Name)
	}
	slots := collectSpans(root, "slot_explore")
	if len(slots) != 4 {
		t.Fatalf("trace has %d slot spans, want 4", len(slots))
	}
	remotes := collectSpans(root, "rpc_explore")
	if len(remotes) != 4 {
		t.Fatalf("trace has %d stitched shard subtrees, want 4", len(remotes))
	}
	for _, rm := range remotes {
		if !rm.Remote {
			t.Fatalf("shard subtree not flagged remote: %+v", rm)
		}
		parts := collectSpans(rm, "explore_parts")
		if len(parts) != 1 || len(parts[0].Children) == 0 {
			t.Fatalf("shard subtree carries no scan spans: %+v", rm)
		}
		if len(collectSpans(rm, "row_fetch")) != 1 {
			t.Fatalf("shard subtree missing row_fetch span: %+v", rm)
		}
	}

	// --- Merged profile equals the single engine, bit for bit. ---
	sp, cp := single.Profile, cres.Profile
	if len(cp.Shards) != 4 {
		t.Fatalf("profile has %d shard entries, want 4", len(cp.Shards))
	}
	type pair struct {
		name      string
		got, want int
	}
	for _, c := range []pair{
		{"LeavesScanned", cp.LeavesScanned, sp.LeavesScanned},
		{"LeavesPruned", cp.LeavesPruned, sp.LeavesPruned},
		{"ChunksScanned", cp.ChunksScanned, sp.ChunksScanned},
		{"ChunksPrunedZone", cp.ChunksPrunedZone, sp.ChunksPrunedZone},
		{"ChunksPrunedBloom", cp.ChunksPrunedBloom, sp.ChunksPrunedBloom},
		{"CacheHits", cp.CacheHits, sp.CacheHits},
		{"CacheMisses", cp.CacheMisses, sp.CacheMisses},
		{"DFSReads", cp.DFSReads, sp.DFSReads},
	} {
		if c.got != c.want {
			t.Errorf("%s: cluster=%d single=%d", c.name, c.got, c.want)
		}
	}
	if cp.InflatedBytes != sp.InflatedBytes {
		t.Errorf("InflatedBytes: cluster=%d single=%d", cp.InflatedBytes, sp.InflatedBytes)
	}

	// Shard entries sum to the merged totals.
	var sum core.Profile
	for _, s := range cp.Shards {
		if s.Missing {
			t.Fatalf("healthy run reported a missing shard: %+v", s)
		}
		sum.Add(s.Profile)
	}
	if sum.ChunksScanned != cp.ChunksScanned || sum.InflatedBytes != cp.InflatedBytes {
		t.Errorf("shard profiles do not sum to the merge: sum=%+v merged=%+v", sum, cp)
	}
}

// TestClusterTracePartialShard kills one shard mid-explore: the merged
// trace must mark the missing subtree (annotated, not dropped) while the
// profile sums the surviving shards.
func TestClusterTracePartialShard(t *testing.T) {
	g, snaps, window := testTrace(t, 2)
	coordTracer := obs.NewTracer(16)
	lc, err := StartLocal(
		Config{
			Shards:         2,
			ExploreTimeout: 150 * time.Millisecond,
			Retries:        -1, // fail fast into degradation
			Obs:            obs.NewRegistry(),
			Tracer:         coordTracer,
		},
		g.CellTable(),
		LocalOptions{Dir: t.TempDir(), Engine: core.Options{Obs: obs.NewNoop()}},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	ctx := context.Background()
	for _, sn := range snaps {
		if err := lc.Coordinator.Ingest(ctx, sn); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.Coordinator.FinishIngest(ctx); err != nil {
		t.Fatal(err)
	}

	m := lc.Coordinator.Map()
	day1 := snaps[telco.EpochsPerDay].Epoch
	dead := m.TimeShardOf(day1)
	lc.Node(m.Slot(dead, 0), 0).SetExploreDelay(2 * time.Second)

	// Trim the window off the day boundaries so the edges descend to leaf
	// scans — the surviving shard then has profiled storage work to sum.
	w := telco.TimeRange{From: window.From.Add(time.Hour), To: window.To.Add(-time.Hour)}
	res, err := lc.Coordinator.Explore(ctx, core.Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || res.ShardsFailed != 1 {
		t.Fatalf("partial=%v failed=%d, want one dead shard", res.Partial, res.ShardsFailed)
	}

	root, ok := coordTracer.Find(res.TraceID)
	if !ok {
		t.Fatalf("partial trace %s not retained", res.TraceID)
	}
	if attr := root.Attrs["partial"]; attr != "true" {
		t.Errorf("root not annotated partial: %v", root.Attrs)
	}
	slots := collectSpans(root, "slot_explore")
	if len(slots) != 2 {
		t.Fatalf("trace kept %d slot spans, want 2 (missing subtree dropped?)", len(slots))
	}
	var missing, healthy int
	for _, s := range slots {
		if s.Attrs["missing"] == "true" {
			missing++
			if s.Error == "" {
				t.Errorf("missing slot span carries no error: %+v", s)
			}
		} else {
			healthy++
		}
	}
	if missing != 1 || healthy != 1 {
		t.Fatalf("missing=%d healthy=%d slot spans, want 1/1", missing, healthy)
	}

	// The profile annotates the dead shard and sums only the survivors.
	if len(res.Profile.Shards) != 2 {
		t.Fatalf("profile shard entries = %d, want 2", len(res.Profile.Shards))
	}
	var sum core.Profile
	var missingEntries int
	for _, s := range res.Profile.Shards {
		if s.Missing {
			missingEntries++
			if s.Error == "" {
				t.Errorf("missing shard entry carries no error: %+v", s)
			}
			continue
		}
		sum.Add(s.Profile)
	}
	if missingEntries != 1 {
		t.Fatalf("profile marks %d shards missing, want 1", missingEntries)
	}
	if sum.LeavesScanned != res.Profile.LeavesScanned || sum.ChunksScanned != res.Profile.ChunksScanned {
		t.Errorf("surviving shards do not sum to the merged profile: sum=%+v merged=%+v", sum, res.Profile)
	}
	if res.Profile.LeavesScanned == 0 {
		t.Error("partial profile counts no surviving work")
	}
}
