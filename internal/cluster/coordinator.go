package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"spate/internal/core"
	"spate/internal/geo"
	"spate/internal/highlights"
	"spate/internal/scanspec"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// Coordinator is the thin distribution layer in front of the shard nodes:
// it routes ingests to the replica group owning each epoch (write-all) and
// scatters explorations to the slots a query's window and box touch,
// gathering their summary parts into one flat chronological merge
// (read-any, hedged across replicas).
type Coordinator struct {
	cfg   Config
	smap  *ShardMap
	nodes [][]string // slot-major: nodes[slot][replica] base URLs
	cl    *client
	cells map[int64]geo.Point
	cellQ geo.SpatialIndex
	met   *clusterMetrics
}

// Result is a scatter-gathered exploration answer. It mirrors the
// single-engine core.Result for the fields a UI renders, plus the
// degradation contract: a Result with Partial set is a correct answer for
// the window minus the Missing ranges.
type Result struct {
	// Summary aggregates the window restricted to the box's cells.
	Summary *highlights.Summary
	// Cells is the per-cell breakdown inside the box.
	Cells []core.CellSeries
	// Highlights are extracted from the merged window summary with the
	// coordinator's θ.
	Highlights []highlights.Highlight
	// Rows holds exact records per table when requested.
	Rows map[string]*telco.Table
	// ServedPeriod is the period the aggregates describe.
	ServedPeriod telco.TimeRange

	// Partial marks a degraded answer: at least one shard failed all its
	// retries and its data is absent from the aggregates.
	Partial bool
	// Missing enumerates the window time-ranges owned by failed shards, in
	// chronological order per shard.
	Missing []telco.TimeRange

	// ScannedLeaves and DecayedLeaves sum the shards' reports.
	ScannedLeaves int
	DecayedLeaves int
	// ShardsQueried and ShardsFailed count time shards touched by the
	// window and those that failed after retries.
	ShardsQueried int
	ShardsFailed  int
	// HedgeWins counts slot reads won by a hedged replica request; Retries
	// counts extra attempts spent.
	HedgeWins int
	Retries   int

	// TraceID identifies the distributed trace of this exploration ("" when
	// tracing is disabled); /api/trace?id= returns the merged tree.
	TraceID string
	// Profile totals the surviving shards' scan cost, with the per-shard
	// split in Profile.Shards (failed slots appear with Missing/Error set
	// and a zero profile).
	Profile core.Profile
}

// NewCoordinator wires a coordinator for the given topology. nodes is
// slot-major — nodes[slot] lists the replica base URLs (http://host:port)
// serving that slot, slot = timeShard*bands + band. cellTable is the same
// cell inventory the shard engines were opened with; the coordinator needs
// it to restrict merged summaries spatially, exactly like a single engine.
func NewCoordinator(cfg Config, m *ShardMap, nodes [][]string, cellTable *telco.Table) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if err := m.validate(); err != nil {
		return nil, err
	}
	if len(nodes) != m.NumSlots() {
		return nil, fmt.Errorf("cluster: topology has %d replica groups, shard map needs %d", len(nodes), m.NumSlots())
	}
	for slot, urls := range nodes {
		if len(urls) == 0 {
			return nil, fmt.Errorf("cluster: slot %d has no replicas", slot)
		}
	}
	c := &Coordinator{
		cfg:   cfg,
		smap:  m,
		nodes: nodes,
		cl:    newClient(),
		cells: make(map[int64]geo.Point),
		met:   newClusterMetrics(cfg.Obs, m.Shards),
	}
	idIdx := cellTable.Schema.FieldIndex(telco.AttrCellID)
	xIdx := cellTable.Schema.FieldIndex("x_km")
	yIdx := cellTable.Schema.FieldIndex("y_km")
	if idIdx < 0 || xIdx < 0 || yIdx < 0 {
		return nil, fmt.Errorf("cluster: cell table %q lacks cell_id/x_km/y_km", cellTable.Schema.Name)
	}
	bounds := geo.NewRect(0, 0, 1, 1)
	first := true
	for _, r := range cellTable.Rows {
		pt := geo.Point{X: r[xIdx].Float64(), Y: r[yIdx].Float64()}
		c.cells[r[idIdx].Int64()] = pt
		if first {
			bounds = geo.NewRect(pt.X, pt.Y, pt.X+1e-6, pt.Y+1e-6)
			first = false
		} else {
			bounds = bounds.Expand(pt)
		}
	}
	qt := geo.NewQuadTree(bounds, 0)
	for id, pt := range c.cells {
		qt.Insert(geo.Item{Pt: pt, ID: id, Weight: 1})
	}
	c.cellQ = qt
	return c, nil
}

// Map exposes the coordinator's shard map.
func (c *Coordinator) Map() *ShardMap { return c.smap }

// Ingest routes one snapshot to the replica group(s) owning its epoch:
// the time shard is the epoch's block owner, and under a spatial split
// each band slot receives only the rows of cells inside its band. Every
// replica of a touched slot is written (write-all) with bounded retries;
// any replica failing all attempts fails the ingest.
func (c *Coordinator) Ingest(ctx context.Context, snap *snapshot.Snapshot) error {
	shard := c.smap.TimeShardOf(snap.Epoch)
	start := time.Now()
	reqs, err := c.splitSnapshot(snap)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(reqs)*c.cfg.Replicas)
	for band, req := range reqs {
		if req == nil {
			continue // no rows for this band
		}
		slot := c.smap.Slot(shard, band)
		for _, url := range c.nodes[slot] {
			wg.Add(1)
			go func(url string, req *ingestRequest) {
				defer wg.Done()
				if err := c.writeReplica(ctx, shard, url, req); err != nil {
					errc <- err
				}
			}(url, req)
		}
	}
	wg.Wait()
	close(errc)
	c.met.ingests.Inc()
	c.met.ingestSec[shard].Observe(time.Since(start).Seconds())
	return <-errc // nil when no replica failed
}

// splitSnapshot renders the per-band ingest requests of one snapshot —
// a single request holding every table when there is no spatial split.
func (c *Coordinator) splitSnapshot(snap *snapshot.Snapshot) ([]*ingestRequest, error) {
	names := snap.TableNames()
	if c.smap.NumBands() == 1 {
		req := &ingestRequest{Epoch: int64(snap.Epoch), Tables: make(map[string][]byte, len(names))}
		for _, name := range names {
			data, err := snap.EncodeTable(name)
			if err != nil {
				return nil, err
			}
			req.Tables[name] = data
		}
		return []*ingestRequest{req}, nil
	}
	// Spatial split: route each row to the band of its cell. Rows of
	// unknown cells land in band 0 so nothing is dropped.
	split := make([]*snapshot.Snapshot, c.smap.NumBands())
	for _, name := range names {
		src := snap.Table(name)
		cellIdx := src.Schema.FieldIndex(telco.AttrCellID)
		parts := make([]*telco.Table, len(split))
		for i := range parts {
			parts[i] = telco.NewTable(src.Schema)
		}
		for _, row := range src.Rows {
			band := 0
			if cellIdx >= 0 {
				if pt, ok := c.cells[row[cellIdx].Int64()]; ok {
					band = c.smap.BandOf(pt)
				}
			}
			parts[band].Append(row)
		}
		for band, t := range parts {
			if split[band] == nil {
				split[band] = snapshot.New(snap.Epoch)
			}
			split[band].Add(t)
		}
	}
	reqs := make([]*ingestRequest, len(split))
	for band, s := range split {
		if s == nil {
			continue
		}
		req := &ingestRequest{Epoch: int64(snap.Epoch), Tables: make(map[string][]byte)}
		for _, name := range s.TableNames() {
			data, err := s.EncodeTable(name)
			if err != nil {
				return nil, err
			}
			req.Tables[name] = data
		}
		reqs[band] = req
	}
	return reqs, nil
}

func (c *Coordinator) writeReplica(ctx context.Context, shard int, url string, req *ingestRequest) error {
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.met.retries["ingest"].Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			backoff *= 2
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.IngestTimeout)
		var resp ingestResponse
		err := c.cl.post(actx, url, "/rpc/ingest", req, &resp)
		cancel()
		if err == nil {
			return nil
		}
		c.met.shardErrors[shard].Inc()
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return lastErr
}

// Append routes streaming rows to the slots owning them — the time shard
// is each row's epoch block owner, the band its cell's under a spatial
// split — and writes every replica of a touched slot (write-all, bounded
// retries), mirroring Ingest so streamed and batch-loaded data land on
// the same nodes. Rows travel as wire-text lines and apply through each
// node's WAL + memtable, so they are explorable when Append returns.
// A replica refusing for backpressure surfaces as core.ErrBackpressure,
// rows of already-sealed epochs as core.ErrStaleEpoch.
func (c *Coordinator) Append(ctx context.Context, table string, recs []telco.Record) (int, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	schema := telco.SchemaByName(table)
	if schema == nil {
		return 0, fmt.Errorf("cluster: unknown table %q", table)
	}
	tsIdx := schema.FieldIndex(telco.AttrTS)
	if tsIdx < 0 {
		return 0, fmt.Errorf("cluster: table %q has no timestamp attribute", table)
	}
	cellIdx := schema.FieldIndex(telco.AttrCellID)
	bySlot := make(map[int][]string)
	for _, rec := range recs {
		if len(rec) != len(schema.Fields) {
			return 0, fmt.Errorf("cluster: %s row has %d fields, want %d", table, len(rec), len(schema.Fields))
		}
		if rec[tsIdx].IsNull() {
			return 0, fmt.Errorf("cluster: %s row lacks a timestamp", table)
		}
		shard := c.smap.TimeShardOf(telco.EpochOf(rec[tsIdx].Time()))
		band := 0
		if c.smap.NumBands() > 1 && cellIdx >= 0 {
			// Unknown cells land in band 0, like splitSnapshot.
			if pt, ok := c.cells[rec[cellIdx].Int64()]; ok {
				band = c.smap.BandOf(pt)
			}
		}
		slot := c.smap.Slot(shard, band)
		bySlot[slot] = append(bySlot[slot], rec.Line())
	}
	var wg sync.WaitGroup
	errc := make(chan error, len(bySlot)*c.cfg.Replicas)
	for slot, lines := range bySlot {
		req := &appendRequest{Table: table, Rows: lines}
		shard := c.smap.SlotShard(slot)
		for _, url := range c.nodes[slot] {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				if err := c.appendReplica(ctx, shard, url, req); err != nil {
					errc <- err
				}
			}(url)
		}
	}
	wg.Wait()
	close(errc)
	c.met.appends.Inc()
	if err := <-errc; err != nil {
		return 0, err
	}
	return len(recs), nil
}

// appendReplica writes one slot's append batch to one replica with
// bounded retries, translating the peer's typed refusals (429
// backpressure, 409 stale/finalized) back into their sentinel errors.
func (c *Coordinator) appendReplica(ctx context.Context, shard int, url string, req *appendRequest) error {
	backoff := c.cfg.RetryBackoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			c.met.retries["append"].Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			backoff *= 2
		}
		actx, cancel := context.WithTimeout(ctx, c.cfg.IngestTimeout)
		var resp appendResponse
		err := c.cl.post(actx, url, "/rpc/append", req, &resp)
		cancel()
		if err == nil {
			return nil
		}
		c.met.shardErrors[shard].Inc()
		lastErr = err
		if httpStatus(err) == http.StatusConflict {
			break // stale epoch / finalized store: retrying cannot help
		}
		if ctx.Err() != nil {
			break
		}
	}
	switch httpStatus(lastErr) {
	case http.StatusTooManyRequests:
		// Re-type the shard's refusal so errors.Is(err, ErrBackpressure)
		// still matches and the shard's Retry-After hint survives the hop
		// (the HTTP layer surfaces it to the originating client).
		return fmt.Errorf("%w: %v", &core.BackpressureError{RetryAfter: retryAfterOf(lastErr)}, lastErr)
	case http.StatusConflict:
		return fmt.Errorf("%w: %v", core.ErrStaleEpoch, lastErr)
	}
	return lastErr
}

// FlushStreams broadcasts a seal-all to every node's streamer: each
// drains its pending appends and seals every buffered epoch into leaves.
// Nodes without a streamer refuse with 503, which is tolerated — a mixed
// batch/stream topology flushes the streaming nodes and skips the rest.
func (c *Coordinator) FlushStreams(ctx context.Context) error {
	req := &appendRequest{Seal: true}
	var wg sync.WaitGroup
	errc := make(chan error, len(c.nodes)*c.cfg.Replicas)
	for _, urls := range c.nodes {
		for _, url := range urls {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				var resp appendResponse
				if err := c.cl.post(ctx, url, "/rpc/append", req, &resp); err != nil {
					if httpStatus(err) == http.StatusServiceUnavailable {
						return // batch-only node: nothing to flush
					}
					errc <- err
				}
			}(url)
		}
	}
	wg.Wait()
	close(errc)
	return <-errc
}

// FinishIngest broadcasts the ingest-finished seal to every node so open
// day/month/year nodes materialize their summaries.
func (c *Coordinator) FinishIngest(ctx context.Context) error {
	var wg sync.WaitGroup
	errc := make(chan error, len(c.nodes)*c.cfg.Replicas)
	for _, urls := range c.nodes {
		for _, url := range urls {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				if err := c.cl.post(ctx, url, "/rpc/finish", struct{}{}, nil); err != nil {
					errc <- err
				}
			}(url)
		}
	}
	wg.Wait()
	close(errc)
	return <-errc
}

// Explore evaluates Q(a, b, w) across the cluster: the window selects the
// time shards to scatter to, the box selects the bands, each slot is read
// from any replica (hedged, with bounded retries), and the gathered
// summary parts fold in one flat chronological merge — the association
// order a single engine uses, so the aggregates match it bit for bit.
// Shards that fail every attempt degrade the answer instead of failing it:
// Partial is set and their owned window ranges are listed in Missing. Only
// when every touched shard fails does Explore return an error.
func (c *Coordinator) Explore(ctx context.Context, q core.Query) (*Result, error) {
	shards := c.smap.TimeShardsFor(q.Window)
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: empty window")
	}
	bands := c.smap.BandsFor(q.Box)
	c.met.explores.Inc()

	// Root the distributed trace: every slot RPC below runs under a child
	// span whose identity travels in the X-Spate-Trace header, so the
	// shard-side subtrees returned on the responses stitch into one
	// coordinator-rooted tree.
	ctx, span := c.cfg.Tracer.StartSpan(ctx, "cluster_explore")
	defer span.End()
	span.SetAttr("shards", strconv.Itoa(len(shards)))
	span.SetAttr("bands", strconv.Itoa(len(bands)))

	req := exploreRequest{
		FromUnix: q.Window.From.Unix(),
		ToUnix:   q.Window.To.Unix(),
		Rows:     q.ExactRows,
		Tables:   q.Tables,
	}
	if q.Box != (geo.Rect{}) {
		req.Boxed = true
		req.MinX, req.MinY, req.MaxX, req.MaxY = q.Box.MinX, q.Box.MinY, q.Box.MaxX, q.Box.MaxY
	}

	type slotResult struct {
		resp     *exploreResponse
		retries  int
		hedgeWin bool
		latency  time.Duration
		err      error
	}
	results := make([]slotResult, len(shards)*len(bands))
	var wg sync.WaitGroup
	for si, shard := range shards {
		for bi, band := range bands {
			wg.Add(1)
			go func(i, slot, shard, band int) {
				defer wg.Done()
				// Each slot gets its own child span: its id rides out in the
				// RPC header, and the shard's recorded subtree is grafted
				// back under it. A failed slot keeps its span — annotated,
				// not dropped — so a partial answer's trace shows the hole.
				sctx, sspan := c.cfg.Tracer.StartSpan(ctx, "slot_explore")
				sspan.SetAttr("shard", strconv.Itoa(shard))
				sspan.SetAttr("band", strconv.Itoa(band))
				r := &results[i]
				t0 := time.Now()
				r.resp, r.retries, r.hedgeWin, r.err = c.exploreSlot(sctx, slot, req)
				r.latency = time.Since(t0)
				if r.err != nil {
					sspan.SetError(r.err)
					sspan.SetAttr("missing", "true")
				} else if r.resp.Trace != nil {
					sspan.AttachRemote(*r.resp.Trace)
				}
				if r.retries > 0 {
					sspan.SetAttr("retries", strconv.Itoa(r.retries))
				}
				if r.hedgeWin {
					sspan.SetAttr("hedge_win", "true")
				}
				sspan.End()
			}(si*len(bands)+bi, c.smap.Slot(shard, band), shard, band)
		}
	}
	wg.Wait()

	res := &Result{ServedPeriod: q.Window, ShardsQueried: len(shards), TraceID: span.TraceID()}
	res.Profile.TraceID = res.TraceID
	failed := make(map[int]bool)
	leaves, live := 0, 0
	var parts []*highlights.Summary
	var firstErr error
	for i, r := range results {
		shard := shards[i/len(bands)]
		band := bands[i%len(bands)]
		res.Retries += r.retries
		sp := core.ShardProfile{
			Shard:     shard,
			Band:      band,
			LatencyMS: float64(r.latency) / float64(time.Millisecond),
			Retries:   r.retries,
			HedgeWin:  r.hedgeWin,
		}
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			failed[shard] = true
			sp.Missing = true
			sp.Error = r.err.Error()
			res.Profile.Shards = append(res.Profile.Shards, sp)
			continue
		}
		if r.hedgeWin {
			res.HedgeWins++
			c.met.hedgeWins.Inc()
		}
		res.ScannedLeaves += r.resp.Scanned
		res.DecayedLeaves += r.resp.Decayed
		leaves += r.resp.Leaves
		live += r.resp.Live
		if r.resp.Profile != nil {
			sp.Profile = *r.resp.Profile
			res.Profile.Add(sp.Profile)
		}
		res.Profile.Shards = append(res.Profile.Shards, sp)
		for _, blob := range r.resp.Parts {
			p, err := highlights.Decode(blob)
			if err != nil {
				err = fmt.Errorf("cluster: shard %d part: %w", shard, err)
				span.SetError(err)
				return nil, err
			}
			parts = append(parts, p)
		}
	}
	if len(failed) == len(shards) {
		err := fmt.Errorf("cluster: all %d shards failed: %w", len(shards), firstErr)
		span.SetError(err)
		return nil, err
	}
	if len(failed) == 0 && leaves == 0 && live == 0 {
		// Every reachable shard is empty — no sealed leaves and no unsealed
		// memtable rows anywhere — mirror the single engine.
		return nil, fmt.Errorf("core: no data ingested")
	}

	// One flat chronological fold, exactly like a monolithic engine's merge
	// stage. Parts from different slots are disjoint in time (or disjoint
	// in cells under a spatial split), so ordering by period start
	// reproduces the single engine's association order.
	sort.SliceStable(parts, func(i, j int) bool { return parts[i].Period.From.Before(parts[j].Period.From) })
	merged := highlights.Merge(q.Window, parts...)
	res.Summary, res.Cells = c.restrictToBox(merged, q)
	res.Highlights = merged.Extract(c.cfg.Theta)

	if q.ExactRows {
		res.Rows = make(map[string]*telco.Table)
		for _, r := range results {
			if r.err != nil {
				continue
			}
			for name, data := range r.resp.Rows {
				t, err := snapshot.DecodeTable(name, data)
				if err != nil {
					return nil, fmt.Errorf("cluster: rows table %q: %w", name, err)
				}
				if dst, ok := res.Rows[name]; ok {
					for _, row := range t.Rows {
						dst.Append(row)
					}
				} else {
					res.Rows[name] = t
				}
			}
		}
	}

	if len(failed) > 0 {
		res.Partial = true
		res.ShardsFailed = len(failed)
		c.met.partials.Inc()
		order := make([]int, 0, len(failed))
		for s := range failed {
			order = append(order, s)
		}
		sort.Ints(order)
		for _, s := range order {
			c.met.shardMiss[s].Inc()
			res.Missing = append(res.Missing, c.smap.OwnedRanges(s, q.Window)...)
		}
		span.SetAttr("partial", "true")
	}
	// A caller-side profile (e.g. EXPLAIN ANALYZE over the cluster catalog)
	// absorbs the shard totals and the per-shard split.
	if p := core.ProfileFromContext(ctx); p != nil {
		p.Add(res.Profile)
		p.Shards = append(p.Shards, res.Profile.Shards...)
	}
	return res, nil
}

// AggregatePartials evaluates a pushed-down aggregate spec across the
// cluster: every slot the window touches folds the spec over its shard's
// rows (hedged, bounded retries) and the partials merge key-wise — partial
// aggregate merging is associative and commutative, so the merged answer
// matches a single engine over the union of the shards bit for bit. Unlike
// Explore, a shard failing all its retries fails the whole call: SQL
// answers must be complete or absent.
func (c *Coordinator) AggregatePartials(ctx context.Context, w telco.TimeRange, table string, spec *scanspec.Spec) ([]scanspec.Partial, error) {
	if !spec.IsAggregate() {
		return nil, fmt.Errorf("cluster: AggregatePartials needs an aggregate spec")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c.met.explores.Inc()
	req := exploreRequest{FromUnix: w.From.Unix(), ToUnix: w.To.Unix(), AggTable: table, Spec: spec}
	resps, err := c.scatterStrict(ctx, w, req, "cluster_aggregate")
	if err != nil {
		return nil, err
	}
	var merged []scanspec.Partial
	for _, r := range resps {
		merged = scanspec.Merge(merged, r.Partials)
	}
	return merged, nil
}

// ScanRows runs the exact-row path alone across the cluster with an
// optional pushdown spec: shards pre-filter rows on the spec's predicates
// and exact window, decode only referenced column streams on v3 leaves,
// and ship the surviving rows, which concatenate shard-major per table
// (the SQL executor imposes any ordering itself). Like AggregatePartials
// — and unlike Explore — any shard failing all retries fails the call.
func (c *Coordinator) ScanRows(ctx context.Context, w telco.TimeRange, tables []string, spec *scanspec.Spec) (map[string]*telco.Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c.met.explores.Inc()
	req := exploreRequest{FromUnix: w.From.Unix(), ToUnix: w.To.Unix(), Rows: true, Tables: tables, Spec: spec}
	resps, err := c.scatterStrict(ctx, w, req, "cluster_scan_rows")
	if err != nil {
		return nil, err
	}
	out := make(map[string]*telco.Table)
	for _, r := range resps {
		for name, data := range r.Rows {
			t, err := snapshot.DecodeTable(name, data)
			if err != nil {
				return nil, fmt.Errorf("cluster: rows table %q: %w", name, err)
			}
			if dst, ok := out[name]; ok {
				for _, row := range t.Rows {
					dst.Append(row)
				}
			} else {
				out[name] = t
			}
		}
	}
	return out, nil
}

// scatterStrict scatters one request to every slot the window touches
// (all bands — the SQL paths carry no spatial predicate) and gathers the
// responses, failing the whole call when any slot fails after retries.
// Shard profiles fold into the caller's context profile with a per-shard
// split, so EXPLAIN ANALYZE over the cluster catalog reports the scatter.
func (c *Coordinator) scatterStrict(ctx context.Context, w telco.TimeRange, req exploreRequest, op string) ([]*exploreResponse, error) {
	shards := c.smap.TimeShardsFor(w)
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: empty window")
	}
	bands := c.smap.BandsFor(geo.Rect{})
	ctx, span := c.cfg.Tracer.StartSpan(ctx, op)
	defer span.End()
	span.SetAttr("shards", strconv.Itoa(len(shards)))

	type slotResult struct {
		resp    *exploreResponse
		retries int
		hedge   bool
		latency time.Duration
		err     error
	}
	results := make([]slotResult, len(shards)*len(bands))
	var wg sync.WaitGroup
	for si, shard := range shards {
		for bi, band := range bands {
			wg.Add(1)
			go func(i, slot, shard, band int) {
				defer wg.Done()
				sctx, sspan := c.cfg.Tracer.StartSpan(ctx, "slot_explore")
				sspan.SetAttr("shard", strconv.Itoa(shard))
				sspan.SetAttr("band", strconv.Itoa(band))
				r := &results[i]
				t0 := time.Now()
				r.resp, r.retries, r.hedge, r.err = c.exploreSlot(sctx, slot, req)
				r.latency = time.Since(t0)
				if r.err != nil {
					sspan.SetError(r.err)
				} else if r.resp.Trace != nil {
					sspan.AttachRemote(*r.resp.Trace)
				}
				sspan.End()
			}(si*len(bands)+bi, c.smap.Slot(shard, band), shard, band)
		}
	}
	wg.Wait()

	prof := core.ProfileFromContext(ctx)
	if prof != nil && prof.TraceID == "" {
		prof.TraceID = span.TraceID()
	}
	out := make([]*exploreResponse, 0, len(results))
	for i, r := range results {
		shard := shards[i/len(bands)]
		if r.err != nil {
			err := fmt.Errorf("cluster: shard %d failed after %d retries: %w", shard, r.retries, r.err)
			span.SetError(err)
			return nil, err
		}
		if r.hedge {
			c.met.hedgeWins.Inc()
		}
		if prof != nil {
			sp := core.ShardProfile{
				Shard:     shard,
				Band:      bands[i%len(bands)],
				LatencyMS: float64(r.latency) / float64(time.Millisecond),
				Retries:   r.retries,
				HedgeWin:  r.hedge,
			}
			if r.resp.Profile != nil {
				sp.Profile = *r.resp.Profile
				prof.Add(sp.Profile)
			}
			prof.Shards = append(prof.Shards, sp)
		}
		out = append(out, r.resp)
	}
	return out, nil
}

// exploreSlot reads one slot with bounded retries; each attempt hedges
// across the slot's replicas.
func (c *Coordinator) exploreSlot(ctx context.Context, slot int, req exploreRequest) (*exploreResponse, int, bool, error) {
	shard := c.smap.SlotShard(slot)
	start := time.Now()
	defer func() { c.met.exploreSec[shard].Observe(time.Since(start).Seconds()) }()
	backoff := c.cfg.RetryBackoff
	retries := 0
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			retries++
			c.met.retries["explore"].Inc()
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, retries, false, ctx.Err()
			}
			backoff *= 2
		}
		resp, hedgeWin, err := c.hedgedExplore(ctx, slot, req, attempt)
		if err == nil {
			return resp, retries, hedgeWin, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, retries, false, lastErr
}

// hedgedExplore performs one read attempt against a slot's replica group:
// the first replica is asked immediately, and every HedgeDelay without an
// answer the next replica is asked too (a hedge); a replica that fails
// fast triggers the next immediately (a failover). The first success wins.
// The winning read reports whether it was a hedge — a request launched on
// delay while an earlier one was still pending.
func (c *Coordinator) hedgedExplore(ctx context.Context, slot int, req exploreRequest, attempt int) (*exploreResponse, bool, error) {
	urls := c.nodes[slot]
	shard := c.smap.SlotShard(slot)
	actx, cancel := context.WithTimeout(ctx, c.cfg.ExploreTimeout)
	defer cancel()

	type reply struct {
		resp  *exploreResponse
		err   error
		hedge bool
	}
	ch := make(chan reply, len(urls))
	launch := func(i int, hedge bool) {
		// Successive attempts rotate the replica asked first.
		url := urls[(attempt+i)%len(urls)]
		go func() {
			var er exploreResponse
			err := c.cl.post(actx, url, "/rpc/explore", req, &er)
			ch <- reply{&er, err, hedge}
		}()
	}
	launch(0, false)
	launched, failed := 1, 0
	var hedgeC <-chan time.Time
	var timer *time.Timer
	if len(urls) > 1 {
		timer = time.NewTimer(c.cfg.HedgeDelay)
		defer timer.Stop()
		hedgeC = timer.C
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.resp, r.hedge, nil
			}
			c.met.shardErrors[shard].Inc()
			if firstErr == nil {
				firstErr = r.err
			}
			failed++
			if launched < len(urls) {
				launch(launched, false) // fast failover
				launched++
			} else if failed == launched {
				return nil, false, firstErr
			}
		case <-hedgeC:
			if launched < len(urls) {
				c.met.hedged.Inc()
				launch(launched, true)
				launched++
			}
			if launched < len(urls) {
				timer.Reset(c.cfg.HedgeDelay)
			} else {
				hedgeC = nil
			}
		case <-actx.Done():
			return nil, false, actx.Err()
		}
	}
}

// Health polls every node, keyed by base URL.
func (c *Coordinator) Health(ctx context.Context) map[string]error {
	out := make(map[string]error)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, urls := range c.nodes {
		for _, url := range urls {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				var resp healthResponse
				err := c.cl.get(ctx, url, "/rpc/health", &resp)
				mu.Lock()
				if _, dup := out[url]; !dup {
					out[url] = err
				}
				mu.Unlock()
			}(url)
		}
	}
	wg.Wait()
	return out
}

// restrictToBox mirrors the single engine's spatial restriction: keep the
// box's cells and rebuild the window aggregates from the per-cell
// breakdown, rendering the per-cell series view alongside.
func (c *Coordinator) restrictToBox(m *highlights.Summary, q core.Query) (*highlights.Summary, []core.CellSeries) {
	var inBox map[int64]bool
	out := m
	if q.Box != (geo.Rect{}) {
		inBox = make(map[int64]bool)
		for _, it := range c.cellQ.Query(q.Box, nil) {
			inBox[it.ID] = true
		}
		out = m.Restrict(func(id int64) bool { return inBox[id] })
	}
	want := make(map[highlights.AttrRef]bool, len(q.Attrs))
	for _, a := range q.Attrs {
		want[a] = true
	}
	var cells []core.CellSeries
	for id, cs := range m.Cells {
		if inBox != nil && !inBox[id] {
			continue
		}
		loc, ok := c.cells[id]
		if !ok {
			continue
		}
		series := core.CellSeries{CellID: id, Loc: loc, Rows: cs.Rows,
			Attr: make(map[highlights.AttrRef]*highlights.Stats)}
		for ref, st := range cs.Num {
			if len(want) == 0 || want[ref] {
				series.Attr[ref] = st
			}
		}
		cells = append(cells, series)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].CellID < cells[j].CellID })
	return out, cells
}
