// Lifecycle maintenance across the cluster: every shard node may carry its
// own lifecycle.Manager (its engine, its DFS, its schedule), and the
// coordinator fans status probes and manual runs out to all of them. Fan-
// outs follow the PR-2 degradation contract — per-node results plus a
// Partial flag instead of all-or-nothing, so one dead shard doesn't hide
// the maintenance state of the rest of the fleet.

package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"

	"spate/internal/lifecycle"
)

// SetLifecycle attaches a maintenance manager to the node, enabling its
// /rpc/lifecycle surface. The node does not own the manager's schedule —
// callers Start and Close it.
func (n *Node) SetLifecycle(m *lifecycle.Manager) { n.lc.Store(m) }

// Lifecycle returns the attached manager, or nil.
func (n *Node) Lifecycle() *lifecycle.Manager {
	if v := n.lc.Load(); v != nil {
		return v.(*lifecycle.Manager)
	}
	return nil
}

// handleLifecycle is the node-side maintenance RPC: GET returns the
// manager's status; POST runs ?action=trigger&job=<name> (the default
// action), pause, or resume.
func (n *Node) handleLifecycle(w http.ResponseWriter, r *http.Request) {
	m := n.Lifecycle()
	if m == nil {
		rpcError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: no lifecycle manager on this node"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, m.Status())
	case http.MethodPost:
		switch action := r.URL.Query().Get("action"); action {
		case "pause":
			m.Pause()
			writeJSON(w, m.Status())
		case "resume":
			m.Resume()
			writeJSON(w, m.Status())
		case "", "trigger":
			rec, err := m.Trigger(r.URL.Query().Get("job"))
			if err != nil {
				rpcError(w, http.StatusInternalServerError, err)
				return
			}
			writeJSON(w, rec)
		default:
			rpcError(w, http.StatusBadRequest, fmt.Errorf("cluster: unknown action %q", action))
		}
	default:
		rpcError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET or POST required"))
	}
}

// NodeLifecycle is one node's slice of a cluster-wide lifecycle fan-out.
type NodeLifecycle struct {
	URL    string            `json:"url"`
	Status *lifecycle.Status `json:"status,omitempty"`
	// Record is the run produced by a trigger fan-out (absent on status
	// probes and failed nodes).
	Record *lifecycle.RunRecord `json:"record,omitempty"`
	Error  string               `json:"error,omitempty"`
}

// LifecycleSweep aggregates a fan-out across the fleet. Partial follows
// the exploration degradation contract: some nodes answered, some did not,
// and the per-node slices say which.
type LifecycleSweep struct {
	Nodes   []NodeLifecycle `json:"nodes"`
	Failed  int             `json:"failed"`
	Partial bool            `json:"partial"`
}

// LifecycleStatus probes every node's maintenance state. It fails only
// when every node does; otherwise failures are carried per node.
func (c *Coordinator) LifecycleStatus(ctx context.Context) (LifecycleSweep, error) {
	return c.lifecycleFanout(ctx, func(ctx context.Context, base string, nl *NodeLifecycle) error {
		var st lifecycle.Status
		if err := c.cl.get(ctx, base, "/rpc/lifecycle", &st); err != nil {
			return err
		}
		nl.Status = &st
		return nil
	})
}

// RunLifecycle triggers the named job synchronously on every node,
// tolerating partial completion: nodes that fail (unreachable, no manager,
// job error) are reported alongside the runs that finished.
func (c *Coordinator) RunLifecycle(ctx context.Context, job string) (LifecycleSweep, error) {
	path := "/rpc/lifecycle?action=trigger&job=" + url.QueryEscape(job)
	return c.lifecycleFanout(ctx, func(ctx context.Context, base string, nl *NodeLifecycle) error {
		var rec lifecycle.RunRecord
		if err := c.cl.post(ctx, base, path, struct{}{}, &rec); err != nil {
			return err
		}
		nl.Record = &rec
		return nil
	})
}

// PauseLifecycle pauses (or resumes) scheduling fleet-wide.
func (c *Coordinator) PauseLifecycle(ctx context.Context, pause bool) (LifecycleSweep, error) {
	action := "pause"
	if !pause {
		action = "resume"
	}
	return c.lifecycleFanout(ctx, func(ctx context.Context, base string, nl *NodeLifecycle) error {
		var st lifecycle.Status
		if err := c.cl.post(ctx, base, "/rpc/lifecycle?action="+action, struct{}{}, &st); err != nil {
			return err
		}
		nl.Status = &st
		return nil
	})
}

func (c *Coordinator) lifecycleFanout(ctx context.Context, call func(context.Context, string, *NodeLifecycle) error) (LifecycleSweep, error) {
	urls := make([]string, 0, len(c.nodes)*c.cfg.Replicas)
	seen := make(map[string]bool)
	for _, group := range c.nodes {
		for _, u := range group {
			if !seen[u] {
				seen[u] = true
				urls = append(urls, u)
			}
		}
	}
	sort.Strings(urls)
	sweep := LifecycleSweep{Nodes: make([]NodeLifecycle, len(urls))}
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			nl := &sweep.Nodes[i]
			nl.URL = u
			if err := call(ctx, u, nl); err != nil {
				nl.Error = err.Error()
			}
		}(i, u)
	}
	wg.Wait()
	var firstErr string
	for _, nl := range sweep.Nodes {
		if nl.Error != "" {
			sweep.Failed++
			if firstErr == "" {
				firstErr = nl.Error
			}
		}
	}
	sweep.Partial = sweep.Failed > 0 && sweep.Failed < len(sweep.Nodes)
	if len(sweep.Nodes) > 0 && sweep.Failed == len(sweep.Nodes) {
		return sweep, fmt.Errorf("cluster: lifecycle fan-out failed on all %d nodes: %s", sweep.Failed, firstErr)
	}
	return sweep, nil
}
