package cluster

import (
	"context"
	"testing"
	"time"

	"spate/internal/core"
	"spate/internal/obs"
	"spate/internal/telco"
)

// BenchmarkClusterExplore measures scatter-gather exploration latency for a
// single-shard versus a four-shard topology over the same two-day trace,
// and reports how often the hedged replica read beat the primary. Windows
// rotate across iterations so each scatter exercises the shard fan-out
// rather than a single repeated plan.
func BenchmarkClusterExplore(b *testing.B) {
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"shards=1", 1},
		{"shards=4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			g, snaps, window := testTrace(b, 2)
			lc := startTestCluster(b, Config{
				Shards:     bc.shards,
				Replicas:   2,
				HedgeDelay: 2 * time.Millisecond,
				Obs:        obs.NewNoop(),
			}, g, snaps)
			ctx := context.Background()

			e0 := telco.EpochOf(window.From)
			span := int(window.To.Sub(window.From) / telco.EpochDuration)
			hedgeWins := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := telco.TimeRange{
					From: (e0 + telco.Epoch(i%8)).Start(),
					To:   (e0 + telco.Epoch(span-i%16)).Start(),
				}
				res, err := lc.Coordinator.Explore(ctx, core.Query{Window: w})
				if err != nil {
					b.Fatal(err)
				}
				hedgeWins += res.HedgeWins
			}
			b.StopTimer()
			b.ReportMetric(float64(hedgeWins)/float64(b.N), "hedgewins/op")
		})
	}
}
