// Package cluster runs N SPATE engine shards behind a coordinator,
// turning the single-process engine into a horizontally sharded service —
// the multi-node deployment shape of the paper's HDFS/Spark substrate,
// rebuilt stdlib-only.
//
// The snapshot space is partitioned by time: contiguous blocks of epochs
// (default one day, so shard-local day summaries stay bit-identical to a
// monolithic engine's) are assigned round-robin to shards, optionally
// sub-split spatially into vertical bands of the cell plane. Each shard is
// served by R replica nodes; every node is a plain core.Engine behind a
// small HTTP/JSON RPC surface (/rpc/ingest, /rpc/explore, /rpc/health,
// /rpc/finish).
//
// The coordinator keeps the distribution layer deliberately thin (the
// Spark-vs-Unicage lesson of arXiv:2212.13647): predicates are pushed to
// shards — a shard only sees queries whose window overlaps blocks it owns
// and whose box intersects its band — and only mergeable highlight
// summaries travel back (the interactive-latency recipe of
// arXiv:1709.08001). Exploration fans out scatter-gather with per-shard
// context deadlines, bounded retries with exponential backoff, and hedged
// reads against replica shards. When a shard misses its deadline after all
// retries, the merged Result degrades gracefully: Partial is set and the
// shard's owned time-ranges inside the window are enumerated in Missing
// instead of failing the whole query.
//
// Because shards return their summary *parts* (day summaries, edge leaves)
// rather than a pre-merged aggregate, the coordinator can fold every part
// in one flat chronological Merge — the exact association order a single
// engine uses — so a scatter-gathered answer reproduces the monolithic
// answer bit for bit, not merely within float tolerance.
package cluster

import (
	"time"

	"spate/internal/core"
	"spate/internal/obs"
	"spate/internal/telco"
)

// Config parameterizes a cluster topology and its coordinator policies.
// The zero value selects 4 time shards, no replication, day-sized blocks
// and no spatial sub-split.
type Config struct {
	// Shards is the number of time shards N (default 4).
	Shards int
	// Replicas is the number of replica nodes per shard R (default 1).
	// Ingest writes to every replica (write-all); exploration reads from
	// any (read-one), hedging across them.
	Replicas int
	// BlockEpochs is the number of contiguous epochs per shard block
	// (default 48 = one day). Day-aligned blocks keep shard-local day
	// summaries identical to a monolithic engine's, which is what makes
	// scatter-gathered aggregates bit-exact.
	BlockEpochs int
	// SpatialSplit sub-splits each time shard into this many vertical
	// bands of the cell plane (default 1 = no spatial split). Box queries
	// only fan out to bands the box intersects.
	SpatialSplit int
	// ExploreTimeout is the per-attempt deadline of one shard exploration
	// RPC (default 2s).
	ExploreTimeout time.Duration
	// IngestTimeout is the per-attempt deadline of one replica ingest RPC
	// (default 30s).
	IngestTimeout time.Duration
	// HedgeDelay is how long the coordinator waits on one replica before
	// hedging the same read to the next (default ExploreTimeout/10).
	// Meaningless with Replicas == 1.
	HedgeDelay time.Duration
	// Retries is the number of additional attempts after a failed shard
	// call (default 2). Each attempt re-dials the replica set.
	Retries int
	// RetryBackoff is the base backoff before the first retry, doubling
	// per attempt (default 25ms).
	RetryBackoff time.Duration
	// Theta is the coordinator's highlight-extraction threshold over the
	// merged window summary (default core.DefaultTheta).
	Theta float64
	// Obs selects the metrics registry coordinator-side series report
	// into (default obs.Default).
	Obs *obs.Registry
	// Tracer records coordinator-side request traces (default
	// obs.DefaultTracer; nil when Obs is the noop registry). Shard-side
	// subtrees returned on explore RPCs are stitched under it.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.BlockEpochs <= 0 {
		c.BlockEpochs = telco.EpochsPerDay
	}
	if c.SpatialSplit <= 0 {
		c.SpatialSplit = 1
	}
	if c.ExploreTimeout <= 0 {
		c.ExploreTimeout = 2 * time.Second
	}
	if c.IngestTimeout <= 0 {
		c.IngestTimeout = 30 * time.Second
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = c.ExploreTimeout / 10
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.Theta <= 0 {
		c.Theta = core.DefaultTheta
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
	if c.Obs.Noop() {
		c.Tracer = nil
	} else if c.Tracer == nil {
		c.Tracer = obs.DefaultTracer
	}
	return c
}
