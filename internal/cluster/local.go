package cluster

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/geo"
	"spate/internal/lifecycle"
	"spate/internal/serving"
	"spate/internal/telco"
)

// LocalOptions tunes an in-process cluster.
type LocalOptions struct {
	// Dir is the root directory for per-node DFS state; empty creates a
	// temp dir that Close removes.
	Dir string
	// Engine configures every node's engine.
	Engine core.Options
	// DFS configures every node's backing file system; the zero value
	// selects a light single-datanode layout (each cluster node already is
	// the replication unit).
	DFS dfs.Config
	// Lifecycle, when set, attaches a started maintenance manager with
	// this configuration to every node; Close stops them.
	Lifecycle *lifecycle.Config
	// Streaming, when set, opens a streamer on every node (WAL under the
	// node's directory) so /rpc/append is served; Close closes them.
	Streaming *core.StreamerOptions
	// ResultCache, when set, is shared by every node's engine: each gets
	// its own namespace (its slot/replica identity) inside one process-
	// wide byte budget, so hot shards can use cache capacity idle shards
	// are not.
	ResultCache serving.Cache
}

// Local is an in-process cluster: every node is a real core.Engine served
// over real TCP loopback HTTP, so the full RPC path — encoding, deadlines,
// retries, hedging — is exercised inside one test binary.
type Local struct {
	// Coordinator fronts the cluster.
	Coordinator *Coordinator
	// Nodes holds every node, replica-major within slot:
	// Nodes[slot*Replicas+replica].
	Nodes []*Node
	// URLs lists each node's base URL, aligned with Nodes.
	URLs []string

	cfg       Config
	servers   []*http.Server
	managers  []*lifecycle.Manager
	streamers []*core.Streamer
	dir       string
	ownDir    bool
}

// StartLocal boots a full cluster in-process: NumSlots×Replicas engines on
// loopback listeners plus a coordinator wired to them.
func StartLocal(cfg Config, cellTable *telco.Table, opt LocalOptions) (*Local, error) {
	cfg = cfg.withDefaults()
	l := &Local{cfg: cfg, dir: opt.Dir}
	if l.dir == "" {
		dir, err := os.MkdirTemp("", "spate-cluster-*")
		if err != nil {
			return nil, err
		}
		l.dir, l.ownDir = dir, true
	}
	if opt.DFS == (dfs.Config{}) {
		opt.DFS = dfs.Config{DataNodes: 1, Replication: 1}
	}

	m := NewShardMap(cfg, cellPoints(cellTable))
	nodes := make([][]string, m.NumSlots())
	for slot := 0; slot < m.NumSlots(); slot++ {
		for rep := 0; rep < cfg.Replicas; rep++ {
			dir := filepath.Join(l.dir, fmt.Sprintf("slot%02d-r%d", slot, rep))
			fs, err := dfs.NewCluster(dir, opt.DFS)
			if err != nil {
				l.Close()
				return nil, err
			}
			engOpts := opt.Engine
			if opt.ResultCache != nil {
				engOpts.ResultCache = serving.Namespace(opt.ResultCache, fmt.Sprintf("slot%02d-r%d", slot, rep))
			}
			eng, err := core.Open(fs, cellTable, engOpts)
			if err != nil {
				l.Close()
				return nil, err
			}
			node := NewNode(eng)
			if opt.Streaming != nil {
				sopts := *opt.Streaming
				sopts.WALDir = filepath.Join(dir, "wal")
				st, err := eng.OpenStreamer(sopts)
				if err != nil {
					l.Close()
					return nil, err
				}
				node.SetStreamer(st)
				l.streamers = append(l.streamers, st)
			}
			if opt.Lifecycle != nil {
				m := lifecycle.New(eng, *opt.Lifecycle)
				node.SetLifecycle(m)
				m.Start()
				l.managers = append(l.managers, m)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				l.Close()
				return nil, err
			}
			srv := &http.Server{Handler: node.Handler()}
			go srv.Serve(ln)
			l.Nodes = append(l.Nodes, node)
			l.URLs = append(l.URLs, "http://"+ln.Addr().String())
			l.servers = append(l.servers, srv)
			nodes[slot] = append(nodes[slot], l.URLs[len(l.URLs)-1])
		}
	}
	coord, err := NewCoordinator(cfg, m, nodes, cellTable)
	if err != nil {
		l.Close()
		return nil, err
	}
	l.Coordinator = coord
	return l, nil
}

// Node returns the replica'th node of a slot.
func (l *Local) Node(slot, replica int) *Node {
	return l.Nodes[slot*l.cfg.Replicas+replica]
}

// Close stops lifecycle managers, shuts every node server down and
// removes the temp dir when Local created it.
func (l *Local) Close() error {
	for _, m := range l.managers {
		m.Close()
	}
	for _, st := range l.streamers {
		st.Close()
	}
	for _, s := range l.servers {
		s.Close()
	}
	if l.ownDir {
		return os.RemoveAll(l.dir)
	}
	return nil
}

// cellPoints extracts the planar locations of a cell inventory; shard-map
// construction needs only the X extent.
func cellPoints(cellTable *telco.Table) []geo.Point {
	xIdx := cellTable.Schema.FieldIndex("x_km")
	yIdx := cellTable.Schema.FieldIndex("y_km")
	if xIdx < 0 || yIdx < 0 {
		return nil
	}
	pts := make([]geo.Point, 0, len(cellTable.Rows))
	for _, r := range cellTable.Rows {
		pts = append(pts, geo.Point{X: r[xIdx].Float64(), Y: r[yIdx].Float64()})
	}
	return pts
}
