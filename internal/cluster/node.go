package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spate/internal/core"
	"spate/internal/geo"
	"spate/internal/obs"
	"spate/internal/serving"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// Node wraps one core.Engine shard behind the cluster RPC surface. It owns
// no distribution logic: routing, retries and merging are all
// coordinator-side, so a node is just an engine with a wire format.
type Node struct {
	eng *core.Engine
	mux *http.ServeMux

	// ingestMu serializes ingest RPCs — the engine admits one ingester at
	// a time and coordinator retries must observe a settled LastEpoch.
	ingestMu sync.Mutex

	// lc holds the node's optional *lifecycle.Manager (SetLifecycle);
	// atomic so RPC handlers read it without a lock.
	lc atomic.Value

	// streamer holds the node's optional *core.Streamer (SetStreamer);
	// atomic so /rpc/append reads it without a lock.
	streamer atomic.Value

	// Fault injection for tests: exploreDelay stalls /rpc/explore
	// (nanoseconds), failNext fails that many explorations with a 500.
	exploreDelay atomic.Int64
	failNext     atomic.Int64

	// tenants bounds the tenant label of shard request metrics: the node
	// doesn't know the coordinator's tenant configuration, so the first
	// 32 distinct names keep their identity and the rest collapse.
	tenants *serving.LabelSet
}

// NewNode serves eng over the cluster RPC surface.
func NewNode(eng *core.Engine) *Node {
	n := &Node{eng: eng, mux: http.NewServeMux(), tenants: serving.NewLabelSet(32)}
	n.mux.HandleFunc("/rpc/ingest", n.handleIngest)
	n.mux.HandleFunc("/rpc/append", n.handleAppend)
	n.mux.HandleFunc("/rpc/explore", n.handleExplore)
	n.mux.HandleFunc("/rpc/finish", n.handleFinish)
	n.mux.HandleFunc("/rpc/health", n.handleHealth)
	n.mux.HandleFunc("/rpc/lifecycle", n.handleLifecycle)
	return n
}

// Engine exposes the wrapped shard engine.
func (n *Node) Engine() *core.Engine { return n.eng }

// Handler returns the node's RPC handler, mountable under any server.
func (n *Node) Handler() http.Handler { return n.mux }

// SetExploreDelay stalls every subsequent exploration by d (honoring the
// request context) — the test hook that forces a shard past its deadline.
func (n *Node) SetExploreDelay(d time.Duration) { n.exploreDelay.Store(int64(d)) }

// FailNext makes the next k explorations fail with a 500 — the test hook
// for retry and hedge failover paths.
func (n *Node) FailNext(k int) { n.failNext.Store(int64(k)) }

// SetStreamer attaches the node's streaming ingest path; /rpc/append
// serves 503 until one is set.
func (n *Node) SetStreamer(s *core.Streamer) { n.streamer.Store(s) }

// Streamer returns the attached streamer, nil when the node is
// batch-only.
func (n *Node) Streamer() *core.Streamer {
	s, _ := n.streamer.Load().(*core.Streamer)
	return s
}

// liveRows is the node's unsealed memtable row count.
func (n *Node) liveRows() int {
	if s := n.Streamer(); s != nil {
		return int(s.Memtable().Rows())
	}
	return 0
}

// countTenant accounts one shard RPC to the tenant the coordinator
// propagated (the X-Spate-Tenant header), so per-shard load stays
// attributable end to end. The label set bounds cardinality against
// hostile or misconfigured coordinators.
func (n *Node) countTenant(r *http.Request, op string) {
	tenant := n.tenants.Label(serving.TenantFromHeader(r.Header))
	n.eng.Obs().Counter("spate_serving_shard_requests_total",
		"Shard RPCs served, by originating tenant and operation.",
		"tenant", tenant, "op", op).Inc()
}

// handleAppend serves the streaming write path: rows append through the
// node's Streamer (WAL + memtable) and are explorable when the response
// returns. Backpressure maps to 429 with a Retry-After hint; rows of
// already-sealed epochs and finalized stores map to 409 — both typed so
// the coordinator and clients can branch without string matching.
func (n *Node) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rpcError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	n.countTenant(r, "append")
	st := n.Streamer()
	if st == nil {
		rpcError(w, http.StatusServiceUnavailable, fmt.Errorf("cluster: node has no streamer (start with streaming enabled)"))
		return
	}
	var req appendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	rows := 0
	if len(req.Rows) > 0 {
		schema := telco.SchemaByName(req.Table)
		if schema == nil {
			rpcError(w, http.StatusBadRequest, fmt.Errorf("cluster: unknown table %q", req.Table))
			return
		}
		recs := make([]telco.Record, 0, len(req.Rows))
		for _, line := range req.Rows {
			rec, err := telco.DecodeLine(schema, line)
			if err != nil {
				rpcError(w, http.StatusBadRequest, err)
				return
			}
			recs = append(recs, rec)
		}
		if err := st.Append(r.Context(), req.Table, recs); err != nil {
			switch {
			case errors.Is(err, core.ErrBackpressure):
				serving.WriteRetryAfter(w.Header(), serving.RetryAfterFromError(err, time.Second))
				rpcError(w, http.StatusTooManyRequests, err)
			case errors.Is(err, core.ErrStaleEpoch), errors.Is(err, core.ErrFinalized):
				rpcError(w, http.StatusConflict, err)
			default:
				rpcError(w, http.StatusInternalServerError, err)
			}
			return
		}
		rows = len(recs)
	}
	if req.Seal {
		if err := st.SealAll(r.Context()); err != nil {
			rpcError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, appendResponse{Rows: rows})
}

func (n *Node) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rpcError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	n.ingestMu.Lock()
	defer n.ingestMu.Unlock()
	// Idempotent replay: the engine rejects out-of-order epochs, and a
	// coordinator only re-sends an epoch after a lost response, so an epoch
	// at or before the last ingested one is a duplicate, not an error.
	if last, ok := n.eng.LastEpoch(); ok && telco.Epoch(req.Epoch) <= last {
		writeJSON(w, ingestResponse{Duplicate: true})
		return
	}
	snap := snapshot.New(telco.Epoch(req.Epoch))
	for name, data := range req.Tables {
		t, err := snapshot.DecodeTable(name, data)
		if err != nil {
			rpcError(w, http.StatusBadRequest, err)
			return
		}
		snap.Add(t)
	}
	rep, err := n.eng.IngestContext(r.Context(), snap)
	if err != nil {
		rpcError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, ingestResponse{Rows: rep.Rows})
}

func (n *Node) handleExplore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rpcError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	n.countTenant(r, "explore")
	if d := time.Duration(n.exploreDelay.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			rpcError(w, http.StatusServiceUnavailable, r.Context().Err())
			return
		}
	}
	if k := n.failNext.Load(); k > 0 && n.failNext.CompareAndSwap(k, k-1) {
		rpcError(w, http.StatusInternalServerError, fmt.Errorf("cluster: injected fault"))
		return
	}
	var req exploreRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		rpcError(w, http.StatusBadRequest, err)
		return
	}
	// Root a shard-local span continuing the coordinator's trace (when the
	// request carries one) and accrue the shard-local cost profile; both
	// ride back on the response for coordinator-side stitching.
	ctx := obs.ContextWithTraceHeader(r.Context(), r.Header)
	ctx, span := n.eng.Tracer().StartSpan(ctx, "rpc_explore")
	defer span.End()
	ctx, prof := core.ContextWithProfile(ctx)

	resp := exploreResponse{Parts: [][]byte{}, Leaves: n.eng.Snapshots(), Live: n.liveRows()}
	if resp.Leaves == 0 && resp.Live == 0 {
		// An empty shard legitimately owns no data in any window; the
		// coordinator decides whether the cluster as a whole is empty.
		span.SetAttr("empty", "true")
		writeJSON(w, resp)
		return
	}
	win := telco.TimeRange{
		From: time.Unix(req.FromUnix, 0).UTC(),
		To:   time.Unix(req.ToUnix, 0).UTC(),
	}
	if req.AggTable != "" {
		// Aggregate mode: fold the spec shard-side and ship partials — no
		// summary parts, no rows.
		partials, err := n.eng.AggregatePartials(ctx, win, req.AggTable, req.Spec)
		if err != nil {
			span.SetError(err)
			rpcError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Partials = partials
		resp.Profile = prof
		if span != nil {
			span.SetAttr("partials", strconv.Itoa(len(partials)))
			span.End()
			j := span.JSON()
			resp.Trace = &j
		}
		writeJSON(w, resp)
		return
	}
	parts, diag, err := n.eng.ExploreParts(ctx, win)
	if err != nil {
		span.SetError(err)
		rpcError(w, http.StatusInternalServerError, err)
		return
	}
	resp.Scanned, resp.Decayed = diag.ScannedLeaves, diag.DecayedLeaves
	for _, p := range parts {
		blob, err := p.Encode()
		if err != nil {
			span.SetError(err)
			rpcError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Parts = append(resp.Parts, blob)
	}
	if req.Rows {
		q := core.Query{Window: win, Tables: req.Tables, ExactRows: true}
		if req.Boxed {
			q.Box = geo.NewRect(req.MinX, req.MinY, req.MaxX, req.MaxY)
		}
		var tables map[string]*telco.Table
		var err error
		if req.Spec != nil && !req.Boxed {
			// Spec-carrying row request (the SQL scan path never sets a
			// box): pre-filter rows and decode only referenced columns.
			tables = make(map[string]*telco.Table)
			err = n.eng.ScanTablesSpec(ctx, win, req.Tables, req.Spec, func(name string, t *telco.Table) error {
				if dst, ok := tables[name]; ok {
					dst.Rows = append(dst.Rows, t.Rows...)
				} else {
					tables[name] = t
				}
				return nil
			})
		} else {
			tables, err = n.eng.FetchRows(ctx, q)
		}
		if err != nil {
			span.SetError(err)
			rpcError(w, http.StatusInternalServerError, err)
			return
		}
		resp.Rows = make(map[string][]byte, len(tables))
		for name, t := range tables {
			var buf bytes.Buffer
			if err := t.WriteText(&buf); err != nil {
				span.SetError(err)
				rpcError(w, http.StatusInternalServerError, err)
				return
			}
			resp.Rows[name] = buf.Bytes()
		}
	}
	resp.Profile = prof
	if span != nil {
		span.SetAttr("leaves_scanned", strconv.Itoa(diag.ScannedLeaves))
		span.End() // fix the duration before rendering
		j := span.JSON()
		resp.Trace = &j
	}
	writeJSON(w, resp)
}

func (n *Node) handleFinish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rpcError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	n.ingestMu.Lock()
	n.eng.FinishIngest()
	n.ingestMu.Unlock()
	writeJSON(w, struct{}{})
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{OK: true, Snapshots: n.eng.Snapshots(), LastEpoch: -1}
	if last, ok := n.eng.LastEpoch(); ok {
		resp.LastEpoch = int64(last)
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func rpcError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}
