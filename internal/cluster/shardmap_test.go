package cluster

import (
	"reflect"
	"testing"
	"time"

	"spate/internal/geo"
	"spate/internal/telco"
)

func day(n int) time.Time {
	return time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestTimeShardRoundRobin(t *testing.T) {
	m := NewShardMap(Config{Shards: 4}, nil)
	if m.BlockEpochs != telco.EpochsPerDay {
		t.Fatalf("BlockEpochs = %d, want %d", m.BlockEpochs, telco.EpochsPerDay)
	}
	// Every epoch of one day lands on one shard; consecutive days rotate.
	for d := 0; d < 8; d++ {
		want := m.TimeShardOf(telco.EpochOf(day(d)))
		for e := 0; e < telco.EpochsPerDay; e++ {
			got := m.TimeShardOf(telco.EpochOf(day(d)) + telco.Epoch(e))
			if got != want {
				t.Fatalf("day %d epoch %d: shard %d, want %d", d, e, got, want)
			}
		}
		next := m.TimeShardOf(telco.EpochOf(day(d + 1)))
		if next != (want+1)%4 {
			t.Fatalf("day %d shard %d, day %d shard %d: not round-robin", d, want, d+1, next)
		}
	}
}

func TestTimeShardsFor(t *testing.T) {
	m := NewShardMap(Config{Shards: 4}, nil)
	w := telco.TimeRange{From: day(0), To: day(2)} // two days, two shards
	got := m.TimeShardsFor(w)
	if len(got) != 2 {
		t.Fatalf("TimeShardsFor(%v) = %v, want 2 shards", w, got)
	}
	all := m.TimeShardsFor(telco.TimeRange{From: day(0), To: day(10)})
	if !reflect.DeepEqual(all, []int{0, 1, 2, 3}) {
		t.Fatalf("TimeShardsFor(10 days) = %v, want all shards", all)
	}
	if got := m.TimeShardsFor(telco.TimeRange{From: day(1), To: day(1)}); got != nil {
		t.Fatalf("empty window selected shards %v", got)
	}
}

func TestOwnedRangesCoalesce(t *testing.T) {
	// With 2 shards, shard owning day 0 also owns day 2: disjoint ranges.
	m := NewShardMap(Config{Shards: 2}, nil)
	s0 := m.TimeShardOf(telco.EpochOf(day(0)))
	w := telco.TimeRange{From: day(0), To: day(3)}
	got := m.OwnedRanges(s0, w)
	want := []telco.TimeRange{
		{From: day(0), To: day(1)},
		{From: day(2), To: day(3)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OwnedRanges = %v, want %v", got, want)
	}
	// A single shard owns every day: the whole window coalesces to one range.
	m1 := NewShardMap(Config{Shards: 1}, nil)
	got = m1.OwnedRanges(0, w)
	if !reflect.DeepEqual(got, []telco.TimeRange{w}) {
		t.Fatalf("OwnedRanges single shard = %v, want [%v]", got, w)
	}
	// Window edges inside blocks clip to the window.
	half := day(0).Add(12 * time.Hour)
	got = m.OwnedRanges(s0, telco.TimeRange{From: half, To: day(1)})
	if !reflect.DeepEqual(got, []telco.TimeRange{{From: half, To: day(1)}}) {
		t.Fatalf("clipped OwnedRanges = %v", got)
	}
	// A shard owning nothing in the window reports nothing.
	s1 := (s0 + 1) % 2
	if got := m.OwnedRanges(s1, telco.TimeRange{From: day(0), To: day(1)}); got != nil {
		t.Fatalf("foreign shard owns %v", got)
	}
}

func TestSpatialBands(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 5}, {X: 20, Y: 9}}
	m := NewShardMap(Config{Shards: 2, SpatialSplit: 2}, pts)
	if m.NumBands() != 2 || m.NumSlots() != 4 {
		t.Fatalf("bands=%d slots=%d", m.NumBands(), m.NumSlots())
	}
	if b := m.BandOf(geo.Point{X: 3, Y: 1}); b != 0 {
		t.Fatalf("BandOf(x=3) = %d, want 0", b)
	}
	if b := m.BandOf(geo.Point{X: 17, Y: 1}); b != 1 {
		t.Fatalf("BandOf(x=17) = %d, want 1", b)
	}
	// Outliers clamp to the edge bands rather than dropping.
	if b := m.BandOf(geo.Point{X: -100, Y: 0}); b != 0 {
		t.Fatalf("BandOf(x=-100) = %d, want 0", b)
	}
	if b := m.BandOf(geo.Point{X: 999, Y: 0}); b != 1 {
		t.Fatalf("BandOf(x=999) = %d, want 1", b)
	}
	// A box inside the left band fans out to band 0 only; the zero box to all.
	if got := m.BandsFor(geo.NewRect(1, 0, 4, 4)); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("BandsFor(left box) = %v", got)
	}
	if got := m.BandsFor(geo.Rect{}); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("BandsFor(everywhere) = %v", got)
	}
	if got := m.BandsFor(geo.NewRect(5, 0, 15, 9)); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("BandsFor(straddling box) = %v", got)
	}
}

func TestWindowShardMap(t *testing.T) {
	m := WindowShardMap([]telco.TimeRange{
		{From: day(0), To: day(2)},
		{From: day(2), To: day(4)},
	})
	w := telco.TimeRange{From: day(1), To: day(3)}
	if got := m.TimeShardsFor(w); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("TimeShardsFor = %v", got)
	}
	got := m.OwnedRanges(1, w)
	if !reflect.DeepEqual(got, []telco.TimeRange{{From: day(2), To: day(3)}}) {
		t.Fatalf("OwnedRanges = %v", got)
	}
	if got := m.OwnedRanges(0, telco.TimeRange{From: day(3), To: day(4)}); got != nil {
		t.Fatalf("shard 0 owns %v outside its window", got)
	}
}

func TestSlotFlattening(t *testing.T) {
	pts := []geo.Point{{X: 0}, {X: 30}}
	m := NewShardMap(Config{Shards: 3, SpatialSplit: 2}, pts)
	seen := make(map[int]bool)
	for s := 0; s < 3; s++ {
		for b := 0; b < 2; b++ {
			slot := m.Slot(s, b)
			if seen[slot] {
				t.Fatalf("slot %d assigned twice", slot)
			}
			seen[slot] = true
			if m.SlotShard(slot) != s {
				t.Fatalf("SlotShard(%d) = %d, want %d", slot, m.SlotShard(slot), s)
			}
		}
	}
	if len(seen) != m.NumSlots() {
		t.Fatalf("%d distinct slots, want %d", len(seen), m.NumSlots())
	}
}
