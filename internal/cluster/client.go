package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"spate/internal/obs"
	"spate/internal/serving"
)

// statusError carries a peer's HTTP status alongside its error envelope,
// so the coordinator can translate typed conditions (backpressure 429,
// stale/finalized 409) back into their sentinel errors. retryAfter keeps
// the peer's Retry-After hint, so a shard's honest backoff propagates
// through the coordinator to the originating client.
type statusError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *statusError) Error() string { return e.msg }

// httpStatus extracts the peer status from a client error, 0 when the
// error was not an HTTP status failure.
func httpStatus(err error) int {
	var se *statusError
	if errors.As(err, &se) {
		return se.code
	}
	return 0
}

// retryAfterOf extracts the peer's Retry-After hint from a client error,
// 0 when it carried none.
func retryAfterOf(err error) time.Duration {
	var se *statusError
	if errors.As(err, &se) {
		return se.retryAfter
	}
	return 0
}

// client is the coordinator's HTTP side: one shared transport, JSON in,
// JSON out, errors surfaced from the peer's error envelope.
type client struct {
	hc *http.Client
}

func newClient() *client {
	return &client{hc: &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

// post sends req as JSON to base+path and decodes the JSON response into
// resp. Deadlines and cancellation ride on ctx.
func (c *client) post(ctx context.Context, base, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("cluster: marshal %s: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("cluster: request %s: %w", path, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	// Propagate the caller's trace identity so shard-side spans stitch
	// into the coordinator-rooted trace, and the tenant identity so
	// per-shard load stays attributable to the tenant that caused it.
	obs.InjectTrace(ctx, hreq.Header)
	serving.InjectTenant(ctx, hreq.Header)
	return c.do(hreq, path, base, resp)
}

// get fetches base+path and decodes the JSON response into resp.
func (c *client) get(ctx context.Context, base, path string, resp any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return fmt.Errorf("cluster: request %s: %w", path, err)
	}
	return c.do(hreq, path, base, resp)
}

func (c *client) do(hreq *http.Request, path, base string, resp any) error {
	hresp, err := c.hc.Do(hreq)
	if err != nil {
		return fmt.Errorf("cluster: %s %s: %w", path, base, err)
	}
	defer func() {
		io.Copy(io.Discard, hresp.Body)
		hresp.Body.Close()
	}()
	if hresp.StatusCode != http.StatusOK {
		var retryAfter time.Duration
		if secs, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
		var e errorResponse
		if json.NewDecoder(hresp.Body).Decode(&e) == nil && e.Error != "" {
			return &statusError{code: hresp.StatusCode, msg: fmt.Sprintf("cluster: %s %s: %s", path, base, e.Error), retryAfter: retryAfter}
		}
		return &statusError{code: hresp.StatusCode, msg: fmt.Sprintf("cluster: %s %s: HTTP %d", path, base, hresp.StatusCode), retryAfter: retryAfter}
	}
	if resp == nil {
		return nil
	}
	if err := json.NewDecoder(hresp.Body).Decode(resp); err != nil {
		return fmt.Errorf("cluster: decode %s %s: %w", path, base, err)
	}
	return nil
}
