package cluster

import (
	"context"
	"testing"

	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/lifecycle"
	"spate/internal/obs"
)

// TestClusterLifecycleSweeps is the fleet-maintenance acceptance path: a
// coordinator fans lifecycle status probes and scrub runs out to every
// shard node, a corrupt replica and a killed shard-local datanode are both
// repaired, and exploration stays non-Partial throughout.
func TestClusterLifecycleSweeps(t *testing.T) {
	g, snaps, window := testTrace(t, 2)
	lc, err := StartLocal(Config{Shards: 2, Obs: obs.NewRegistry()}, g.CellTable(), LocalOptions{
		Dir:       t.TempDir(),
		Engine:    core.Options{Obs: obs.NewNoop()},
		DFS:       dfs.Config{DataNodes: 3, Replication: 2, BlockSize: 1 << 20},
		Lifecycle: &lifecycle.Config{Obs: obs.NewNoop()}, // no intervals: manual fan-outs only
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	ctx := context.Background()
	for _, sn := range snaps {
		if err := lc.Coordinator.Ingest(ctx, sn); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.Coordinator.FinishIngest(ctx); err != nil {
		t.Fatal(err)
	}

	// Every node reports its maintenance roster over the RPC surface.
	st, err := lc.Coordinator.LifecycleStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Failed != 0 || st.Partial || len(st.Nodes) != 2 {
		t.Fatalf("status sweep %+v", st)
	}
	for _, nl := range st.Nodes {
		if nl.Status == nil || len(nl.Status.Jobs) != 3 {
			t.Fatalf("node %s status %+v", nl.URL, nl.Status)
		}
	}

	// Fault round one: corrupt a replica inside shard 0's DFS, then run a
	// fleet-wide scrub. Only the damaged shard should report repairs.
	fs := lc.Node(0, 0).Engine().FS()
	files := fs.List("/spate/data/")
	if len(files) == 0 {
		t.Fatal("shard 0 holds no data files")
	}
	if _, err := fs.CorruptBlock(files[0].Path); err != nil {
		t.Fatal(err)
	}
	sweep, err := lc.Coordinator.RunLifecycle(ctx, lifecycle.JobScrub)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Failed != 0 || sweep.Partial {
		t.Fatalf("scrub sweep degraded: %+v", sweep)
	}
	var corrupt, restored, unrecov int64
	for _, nl := range sweep.Nodes {
		if nl.Record == nil {
			t.Fatalf("node %s returned no run record", nl.URL)
		}
		corrupt += nl.Record.Details["corrupt_replicas"]
		restored += nl.Record.Details["replicas_restored"]
		unrecov += nl.Record.Details["unrecoverable"]
	}
	if corrupt != 1 || restored == 0 || unrecov != 0 {
		t.Fatalf("fleet scrub totals: corrupt=%d restored=%d unrecoverable=%d", corrupt, restored, unrecov)
	}

	// Fault round two: kill a shard-local datanode. Replication was just
	// restored, so every block it held still has a live copy; the next
	// fleet scrub re-replicates them all.
	if err := fs.KillNode(0); err != nil {
		t.Fatal(err)
	}
	if fs.UnderReplicated() == 0 {
		t.Fatal("rig broken: killing a datanode left nothing under-replicated")
	}
	sweep, err = lc.Coordinator.RunLifecycle(ctx, lifecycle.JobScrub)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Failed != 0 || sweep.Partial {
		t.Fatalf("scrub sweep degraded: %+v", sweep)
	}
	restored, unrecov = 0, 0
	for _, nl := range sweep.Nodes {
		restored += nl.Record.Details["replicas_restored"]
		unrecov += nl.Record.Details["unrecoverable"]
	}
	if restored == 0 || unrecov != 0 {
		t.Fatalf("fleet scrub totals after node death: restored=%d unrecoverable=%d", restored, unrecov)
	}
	if n := fs.UnderReplicated(); n != 0 {
		t.Fatalf("%d blocks under-replicated after fleet scrub", n)
	}

	// The repaired cluster answers exploration whole, through storage.
	lc.Node(0, 0).Engine().ClearCache()
	res, err := lc.Coordinator.Explore(ctx, core.Query{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Summary == nil || res.Summary.Rows == 0 {
		t.Fatalf("post-repair explore partial=%v summary=%+v", res.Partial, res.Summary)
	}

	// Pause and resume propagate fleet-wide.
	ps, err := lc.Coordinator.PauseLifecycle(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, nl := range ps.Nodes {
		if nl.Status == nil || !nl.Status.Paused {
			t.Fatalf("node %s not paused: %+v", nl.URL, nl.Status)
		}
	}
	ps, err = lc.Coordinator.PauseLifecycle(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, nl := range ps.Nodes {
		if nl.Status == nil || nl.Status.Paused {
			t.Fatalf("node %s still paused: %+v", nl.URL, nl.Status)
		}
	}

	// An unknown job fails on every node, which the fan-out surfaces as an
	// error rather than an empty sweep.
	if _, err := lc.Coordinator.RunLifecycle(ctx, "defrag"); err == nil {
		t.Fatal("unknown job fan-out did not error")
	}
}
