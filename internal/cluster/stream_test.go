package cluster

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"spate/internal/core"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
	"spate/internal/wal"
)

// startStreamCluster brings up a local cluster with streaming ingest
// enabled on every node.
func startStreamCluster(tb testing.TB, cfg Config, g interface{ CellTable() *telco.Table }) *Local {
	tb.Helper()
	lc, err := StartLocal(cfg, g.CellTable(), LocalOptions{
		Dir:       tb.TempDir(),
		Engine:    core.Options{Obs: obs.NewNoop()},
		Streaming: &core.StreamerOptions{Sync: wal.SyncNone, GroupWindow: time.Millisecond},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { lc.Close() })
	return lc
}

// appendSnapshots streams every row of every snapshot through the
// coordinator's append path, one request per table per epoch.
func appendSnapshots(tb testing.TB, lc *Local, snaps []*snapshot.Snapshot) {
	tb.Helper()
	ctx := context.Background()
	for _, sn := range snaps {
		for _, name := range sn.TableNames() {
			tab := sn.Table(name)
			n, err := lc.Coordinator.Append(ctx, name, tab.Rows)
			if err != nil {
				tb.Fatal(err)
			}
			if n != tab.Len() {
				tb.Fatalf("Append accepted %d rows, want %d", n, tab.Len())
			}
		}
	}
}

// TestClusterStreamMatchesBatchIngest is the distributed parity
// acceptance: a 4-shard cluster fed row-by-row through /rpc/append and
// flushed must answer exploration identically to a 4-shard cluster fed
// whole snapshots through the batch ingest path.
func TestClusterStreamMatchesBatchIngest(t *testing.T) {
	g, snaps, window := testTrace(t, 4)

	// Reference: batch ingest, no finalize (the streamed side stays open).
	batch, err := StartLocal(Config{Shards: 4, Obs: obs.NewRegistry()}, g.CellTable(), LocalOptions{
		Dir:    t.TempDir(),
		Engine: core.Options{Obs: obs.NewNoop()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { batch.Close() })
	ctx := context.Background()
	for _, sn := range snaps {
		if err := batch.Coordinator.Ingest(ctx, sn); err != nil {
			t.Fatal(err)
		}
	}

	streamed := startStreamCluster(t, Config{Shards: 4, Obs: obs.NewRegistry()}, g)
	appendSnapshots(t, streamed, snaps)
	if err := streamed.Coordinator.FlushStreams(ctx); err != nil {
		t.Fatal(err)
	}

	// Day-block routing must land streamed rows on the same shards as
	// batch snapshots: same per-node leaf counts.
	for i := range batch.Nodes {
		b := batch.Nodes[i].Engine().Snapshots()
		s := streamed.Nodes[i].Engine().Snapshots()
		if b != s || s == 0 {
			t.Fatalf("node %d: batch %d leaves, streamed %d", i, b, s)
		}
	}

	windows := []telco.TimeRange{
		window,
		{From: window.From.Add(12 * time.Hour), To: window.To.Add(-12 * time.Hour)},
		{From: window.From.Add(30 * time.Minute), To: window.From.Add(3 * time.Hour)},
	}
	for _, w := range windows {
		q := core.Query{Window: w}
		br, err := batch.Coordinator.Explore(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := streamed.Coordinator.Explore(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Partial {
			t.Fatalf("window %v: streamed cluster degraded (missing %v)", w, sr.Missing)
		}
		if !reflect.DeepEqual(br.Summary, sr.Summary) {
			t.Errorf("window %v: summaries differ: batch rows=%d streamed rows=%d",
				w, br.Summary.Rows, sr.Summary.Rows)
		}
		if !reflect.DeepEqual(br.Cells, sr.Cells) {
			t.Errorf("window %v: cell series differ (%d vs %d cells)",
				w, len(br.Cells), len(sr.Cells))
		}
	}

	// Exact rows survive the distributed stream-then-seal path too.
	w := telco.TimeRange{From: window.From, To: window.From.Add(2 * time.Hour)}
	q := core.Query{Window: w, ExactRows: true, Tables: []string{"CDR"}}
	br, err := batch.Coordinator.Explore(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := streamed.Coordinator.Explore(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	bt, st := br.Rows["CDR"], sr.Rows["CDR"]
	if bt == nil || st == nil || bt.Len() == 0 || bt.Len() != st.Len() {
		t.Fatalf("exact rows differ: batch=%v streamed=%v", bt, st)
	}
}

// TestClusterStreamQueryBeforeSeal: rows appended through the coordinator
// answer distributed exploration before any seal.
func TestClusterStreamQueryBeforeSeal(t *testing.T) {
	g, snaps, _ := testTrace(t, 1)
	lc := startStreamCluster(t, Config{Shards: 2, Obs: obs.NewRegistry()}, g)
	ctx := context.Background()

	sn := snaps[0]
	total := int64(0)
	for _, name := range sn.TableNames() {
		tab := sn.Table(name)
		if _, err := lc.Coordinator.Append(ctx, name, tab.Rows); err != nil {
			t.Fatal(err)
		}
		total += int64(tab.Len())
	}
	// Nothing sealed anywhere.
	for i := range lc.Nodes {
		if n := lc.Nodes[i].Engine().Snapshots(); n != 0 {
			t.Fatalf("node %d sealed %d leaves", i, n)
		}
	}
	w := telco.NewTimeRange(sn.Epoch.Start(), sn.Epoch.End())
	res, err := lc.Coordinator.Explore(ctx, core.Query{Window: w})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary == nil || res.Summary.Rows != total {
		t.Fatalf("pre-seal explore rows = %v, want %d", res.Summary, total)
	}
	if res.Profile.MemEpochs == 0 {
		t.Errorf("profile = %+v: memtable share not reported", res.Profile)
	}
}

// TestClusterAppendValidation: malformed rows are refused before they
// reach any shard, and sealed epochs come back as typed staleness.
func TestClusterAppendValidation(t *testing.T) {
	g, snaps, _ := testTrace(t, 1)
	lc := startStreamCluster(t, Config{Shards: 2, Obs: obs.NewRegistry()}, g)
	ctx := context.Background()

	if _, err := lc.Coordinator.Append(ctx, "NOPE", snaps[0].Table("NMS").Rows); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := lc.Coordinator.Append(ctx, "NMS", []telco.Record{{telco.Int(1)}}); err == nil {
		t.Error("short row accepted")
	}
	// Stream one epoch, seal it, then try to append into it again.
	nms := snaps[0].Table("NMS")
	if _, err := lc.Coordinator.Append(ctx, "NMS", nms.Rows); err != nil {
		t.Fatal(err)
	}
	if err := lc.Coordinator.FlushStreams(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := lc.Coordinator.Append(ctx, "NMS", nms.Rows)
	if !errors.Is(err, core.ErrStaleEpoch) {
		t.Fatalf("append into sealed epoch = %v, want ErrStaleEpoch", err)
	}
}
