package cluster

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/geo"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// testTrace synthesizes a small deterministic trace. The snapshots share
// their tables, so feeding them to both a reference engine and a cluster
// compares identical inputs.
func testTrace(tb testing.TB, days int) (*gen.Generator, []*snapshot.Snapshot, telco.TimeRange) {
	tb.Helper()
	cfg := gen.DefaultConfig(0.004)
	cfg.Antennas = 16
	cfg.Users = 120
	cfg.CDRPerEpoch = 30
	cfg.NMSReportsPerCell = 0.5
	g := gen.New(cfg)
	e0 := telco.EpochOf(cfg.Start)
	n := days * telco.EpochsPerDay
	snaps := make([]*snapshot.Snapshot, 0, n)
	for i := 0; i < n; i++ {
		e := e0 + telco.Epoch(i)
		sn := snapshot.New(e)
		sn.Add(g.CDRTable(e))
		sn.Add(g.NMSTable(e))
		snaps = append(snaps, sn)
	}
	return g, snaps, telco.NewTimeRange(e0.Start(), (e0 + telco.Epoch(n)).Start())
}

func newRefEngine(tb testing.TB, g *gen.Generator) *core.Engine {
	tb.Helper()
	fs, err := dfs.NewCluster(tb.TempDir(), dfs.Config{DataNodes: 1, Replication: 1})
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := core.Open(fs, g.CellTable(), core.Options{Obs: obs.NewNoop()})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

func startTestCluster(tb testing.TB, cfg Config, g *gen.Generator, snaps []*snapshot.Snapshot) *Local {
	tb.Helper()
	lc, err := StartLocal(cfg, g.CellTable(), LocalOptions{
		Dir:    tb.TempDir(),
		Engine: core.Options{Obs: obs.NewNoop()},
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { lc.Close() })
	ctx := context.Background()
	for _, sn := range snaps {
		if err := lc.Coordinator.Ingest(ctx, sn); err != nil {
			tb.Fatal(err)
		}
	}
	if err := lc.Coordinator.FinishIngest(ctx); err != nil {
		tb.Fatal(err)
	}
	return lc
}

// TestClusterExploreMatchesSingleEngine is the identity acceptance test: a
// 4-node cluster ingests the same generated trace as one engine and must
// answer exploration with bit-for-bit identical merged aggregates.
func TestClusterExploreMatchesSingleEngine(t *testing.T) {
	g, snaps, window := testTrace(t, 4)
	eng := newRefEngine(t, g)
	for _, sn := range snaps {
		if _, err := eng.Ingest(sn); err != nil {
			t.Fatal(err)
		}
	}
	eng.FinishIngest()

	lc := startTestCluster(t, Config{Shards: 4, Obs: obs.NewRegistry()}, g, snaps)
	ctx := context.Background()

	// Every node owns exactly one day under the default day-block map.
	for i, node := range lc.Nodes {
		if got := node.Engine().Tree().Len(); got != telco.EpochsPerDay {
			t.Fatalf("node %d holds %d snapshots, want %d", i, got, telco.EpochsPerDay)
		}
	}

	windows := []telco.TimeRange{
		window, // whole trace: day summaries on both sides
		{From: window.From.Add(12 * time.Hour), To: window.To.Add(-12 * time.Hour)},  // edges descend to leaves
		{From: window.From.Add(24 * time.Hour), To: window.From.Add(72 * time.Hour)}, // interior days
	}
	for _, w := range windows {
		q := core.Query{Window: w}
		single, err := eng.Explore(q)
		if err != nil {
			t.Fatal(err)
		}
		cres, err := lc.Coordinator.Explore(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if cres.Partial {
			t.Fatalf("window %v: unexpected partial result (missing %v)", w, cres.Missing)
		}
		if cres.ShardsQueried == 0 {
			t.Fatalf("window %v: no shards queried", w)
		}
		if !reflect.DeepEqual(single.Summary, cres.Summary) {
			t.Errorf("window %v: summaries differ: single rows=%d cluster rows=%d",
				w, single.Summary.Rows, cres.Summary.Rows)
		}
		if !reflect.DeepEqual(single.Cells, cres.Cells) {
			t.Errorf("window %v: cell series differ (%d vs %d cells)",
				w, len(single.Cells), len(cres.Cells))
		}
	}
}

// TestClusterExactRows checks the scatter-gathered row path returns the
// same records as a single engine.
func TestClusterExactRows(t *testing.T) {
	g, snaps, window := testTrace(t, 2)
	eng := newRefEngine(t, g)
	for _, sn := range snaps {
		if _, err := eng.Ingest(sn); err != nil {
			t.Fatal(err)
		}
	}
	eng.FinishIngest()
	lc := startTestCluster(t, Config{Shards: 2, Obs: obs.NewRegistry()}, g, snaps)

	w := telco.TimeRange{From: window.From, To: window.From.Add(3 * time.Hour)}
	q := core.Query{Window: w, ExactRows: true, Tables: []string{"CDR"}}
	single, err := eng.Explore(q)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := lc.Coordinator.Explore(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	st, ct := single.Rows["CDR"], cres.Rows["CDR"]
	if st == nil || ct == nil {
		t.Fatalf("missing CDR rows: single=%v cluster=%v", st != nil, ct != nil)
	}
	if len(st.Rows) == 0 || len(st.Rows) != len(ct.Rows) {
		t.Fatalf("row counts differ: single=%d cluster=%d", len(st.Rows), len(ct.Rows))
	}
}

// TestClusterPartialDegradation forces one shard past its exploration
// deadline: the answer must degrade to Partial with that shard's owned
// time-ranges enumerated, not fail — and fail only when every shard dies.
func TestClusterPartialDegradation(t *testing.T) {
	g, snaps, window := testTrace(t, 2)
	reg := obs.NewRegistry()
	lc := startTestCluster(t, Config{
		Shards:         2,
		ExploreTimeout: 150 * time.Millisecond,
		Retries:        -1, // none: fail fast into degradation
		Obs:            reg,
	}, g, snaps)
	ctx := context.Background()

	m := lc.Coordinator.Map()
	day1 := snaps[telco.EpochsPerDay].Epoch
	slow := m.TimeShardOf(day1)
	lc.Node(m.Slot(slow, 0), 0).SetExploreDelay(2 * time.Second)

	res, err := lc.Coordinator.Explore(ctx, core.Query{Window: window})
	if err != nil {
		t.Fatalf("degraded exploration failed outright: %v", err)
	}
	if !res.Partial || res.ShardsFailed != 1 {
		t.Fatalf("partial=%v failed=%d, want degraded answer", res.Partial, res.ShardsFailed)
	}
	want := m.OwnedRanges(slow, window)
	if !reflect.DeepEqual(res.Missing, want) {
		t.Fatalf("Missing = %v, want %v", res.Missing, want)
	}
	if res.Summary == nil || res.Summary.Rows == 0 {
		t.Fatalf("partial answer carries no aggregates")
	}
	// The surviving shard's day is fully present: the partial answer's rows
	// equal exploring only that day.
	healthy := 1 - slow
	hw := m.OwnedRanges(healthy, window)[0]
	hres, err := lc.Coordinator.Explore(ctx, core.Query{Window: hw})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rows != hres.Summary.Rows {
		t.Fatalf("partial rows = %d, healthy shard rows = %d", res.Summary.Rows, hres.Summary.Rows)
	}

	// Degradation is accounted for.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spate_cluster_partial_results_total 1") {
		t.Fatalf("partial counter not visible in metrics:\n%s", buf.String())
	}

	// With every shard dead the query errors instead of returning an
	// all-missing answer.
	lc.Node(m.Slot(healthy, 0), 0).SetExploreDelay(2 * time.Second)
	if _, err := lc.Coordinator.Explore(ctx, core.Query{Window: window}); err == nil {
		t.Fatal("all-shards-failed exploration succeeded")
	}
}

// TestClusterHedgedRead delays the primary replica: the hedge fired at
// HedgeDelay must win the read from the fast replica.
func TestClusterHedgedRead(t *testing.T) {
	g, snaps, window := testTrace(t, 1)
	reg := obs.NewRegistry()
	lc := startTestCluster(t, Config{
		Shards:         1,
		Replicas:       2,
		HedgeDelay:     20 * time.Millisecond,
		ExploreTimeout: 10 * time.Second,
		Obs:            reg,
	}, g, snaps)

	lc.Node(0, 0).SetExploreDelay(500 * time.Millisecond)
	res, err := lc.Coordinator.Explore(context.Background(), core.Query{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("unexpected partial result: %v", res.Missing)
	}
	if res.HedgeWins < 1 {
		t.Fatalf("HedgeWins = %d, want >= 1", res.HedgeWins)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"spate_cluster_hedged_requests_total", "spate_cluster_hedge_wins_total"} {
		if !strings.Contains(buf.String(), metric+" 1") {
			t.Fatalf("%s not visible in metrics:\n%s", metric, buf.String())
		}
	}
}

// TestClusterRetries injects one transient fault: the bounded retry loop
// must recover and account for the extra attempt.
func TestClusterRetries(t *testing.T) {
	g, snaps, window := testTrace(t, 1)
	reg := obs.NewRegistry()
	lc := startTestCluster(t, Config{
		Shards:       1,
		RetryBackoff: 5 * time.Millisecond,
		Obs:          reg,
	}, g, snaps)

	lc.Node(0, 0).FailNext(1)
	res, err := lc.Coordinator.Explore(context.Background(), core.Query{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Retries != 1 {
		t.Fatalf("partial=%v retries=%d, want clean answer after 1 retry", res.Partial, res.Retries)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `spate_cluster_retries_total{op="explore"} 1`) {
		t.Fatalf("retry counter not visible in metrics:\n%s", buf.String())
	}
}

// TestClusterIngestIdempotent replays a write — retry-after-lost-response
// semantics — and expects a duplicate-success, not an error.
func TestClusterIngestIdempotent(t *testing.T) {
	g, snaps, _ := testTrace(t, 1)
	lc := startTestCluster(t, Config{Shards: 1, Obs: obs.NewRegistry()}, g, snaps)
	before := lc.Node(0, 0).Engine().Tree().Len()
	if err := lc.Coordinator.Ingest(context.Background(), snaps[len(snaps)-1]); err != nil {
		t.Fatalf("replayed ingest: %v", err)
	}
	if got := lc.Node(0, 0).Engine().Tree().Len(); got != before {
		t.Fatalf("replay grew the tree: %d -> %d", before, got)
	}
}

// TestClusterSpatialSplit shards time AND space: row counts (exact
// integers) must survive the band routing, both everywhere and boxed.
func TestClusterSpatialSplit(t *testing.T) {
	g, snaps, window := testTrace(t, 2)
	eng := newRefEngine(t, g)
	for _, sn := range snaps {
		if _, err := eng.Ingest(sn); err != nil {
			t.Fatal(err)
		}
	}
	eng.FinishIngest()
	lc := startTestCluster(t, Config{Shards: 2, SpatialSplit: 2, Obs: obs.NewRegistry()}, g, snaps)
	if got := len(lc.Nodes); got != 4 {
		t.Fatalf("split cluster has %d nodes, want 4", got)
	}
	ctx := context.Background()

	single, err := eng.Explore(core.Query{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := lc.Coordinator.Explore(ctx, core.Query{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if single.Summary.Rows != cres.Summary.Rows {
		t.Fatalf("rows: single=%d cluster=%d", single.Summary.Rows, cres.Summary.Rows)
	}
	if len(single.Cells) != len(cres.Cells) {
		t.Fatalf("cells: single=%d cluster=%d", len(single.Cells), len(cres.Cells))
	}

	// A box over the left half of the plane: only band-0 slots are asked,
	// and the integer row counts still match the single engine.
	var minX, maxX, minY, maxY float64
	first := true
	for _, c := range g.Cells() {
		if first {
			minX, maxX, minY, maxY = c.Pt.X, c.Pt.X, c.Pt.Y, c.Pt.Y
			first = false
			continue
		}
		minX, maxX = min(minX, c.Pt.X), max(maxX, c.Pt.X)
		minY, maxY = min(minY, c.Pt.Y), max(maxY, c.Pt.Y)
	}
	box := geo.NewRect(minX, minY, (minX+maxX)/2, maxY)
	sb, err := eng.Explore(core.Query{Window: window, Box: box})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := lc.Coordinator.Explore(ctx, core.Query{Window: window, Box: box})
	if err != nil {
		t.Fatal(err)
	}
	if sb.Summary.Rows != cb.Summary.Rows {
		t.Fatalf("boxed rows: single=%d cluster=%d", sb.Summary.Rows, cb.Summary.Rows)
	}
	if len(sb.Cells) != len(cb.Cells) {
		t.Fatalf("boxed cells: single=%d cluster=%d", len(sb.Cells), len(cb.Cells))
	}
}

// TestClusterHealth probes every node.
func TestClusterHealth(t *testing.T) {
	g, snaps, _ := testTrace(t, 1)
	lc := startTestCluster(t, Config{Shards: 1, Replicas: 2, Obs: obs.NewRegistry()}, g, snaps)
	probes := lc.Coordinator.Health(context.Background())
	if len(probes) != 2 {
		t.Fatalf("probed %d nodes, want 2", len(probes))
	}
	for url, err := range probes {
		if err != nil {
			t.Fatalf("node %s unhealthy: %v", url, err)
		}
	}
}
