package cluster

// The RPC surface is HTTP + JSON envelopes. Bulk payloads stay in the
// formats the engine already serializes — summaries as gob blobs
// (highlights.Summary.Encode), exact rows as the delimiter-separated wire
// text of snapshot tables — carried as []byte fields, which encoding/json
// transports base64-encoded. Timestamps travel as Unix seconds. Trace
// context propagates out-of-envelope in the X-Spate-Trace header
// (obs.TraceHeader); the shard's recorded subtree rides back inside the
// explore response.

import (
	"spate/internal/core"
	"spate/internal/obs"
	"spate/internal/scanspec"
)

type ingestRequest struct {
	// Epoch is the snapshot's 30-minute cycle number.
	Epoch int64 `json:"epoch"`
	// Tables maps table name to its wire-text encoding.
	Tables map[string][]byte `json:"tables"`
}

type ingestResponse struct {
	Rows int `json:"rows"`
	// Duplicate marks an epoch the node had already ingested; replaying a
	// write (a coordinator retry after a lost response) succeeds as a no-op.
	Duplicate bool `json:"duplicate,omitempty"`
}

type appendRequest struct {
	// Table names the schema; Rows are wire-text record lines.
	Table string   `json:"table,omitempty"`
	Rows  []string `json:"rows,omitempty"`
	// Seal asks the node to seal every buffered epoch after applying the
	// rows — the coordinator's stream-flush broadcast.
	Seal bool `json:"seal,omitempty"`
}

type appendResponse struct {
	Rows int `json:"rows"`
}

type exploreRequest struct {
	FromUnix int64 `json:"from"`
	ToUnix   int64 `json:"to"`
	// Rows requests exact records of the window's non-decayed snapshots.
	Rows   bool     `json:"rows,omitempty"`
	Tables []string `json:"tables,omitempty"`
	// Boxed plus the bounds push the spatial predicate down for the row
	// path (summary parts are never box-restricted shard-side: the
	// coordinator restricts after the merge, like a single engine does).
	Boxed bool    `json:"boxed,omitempty"`
	MinX  float64 `json:"minx,omitempty"`
	MinY  float64 `json:"miny,omitempty"`
	MaxX  float64 `json:"maxx,omitempty"`
	MaxY  float64 `json:"maxy,omitempty"`
	// Spec is the pushed-down column/predicate spec. With Rows it is
	// advisory: the shard pre-filters rows on its predicates and exact
	// window and decodes only referenced column streams (unreferenced
	// columns travel as nulls); the caller re-evaluates its full WHERE.
	// With AggTable it is authoritative (see below).
	Spec *scanspec.Spec `json:"spec,omitempty"`
	// AggTable selects aggregate mode: the shard folds Spec's aggregates
	// over the named table's rows — applying window, RequireTS and every
	// predicate exactly — and responds with Partials instead of summary
	// parts or rows.
	AggTable string `json:"agg_table,omitempty"`
}

type exploreResponse struct {
	// Parts are the shard's summary parts in chronological order, each a
	// gob-encoded highlights.Summary.
	Parts [][]byte `json:"parts"`
	// Leaves is the node's total snapshot count — zero distinguishes "no
	// data at all" from "no data in this window".
	Leaves int `json:"leaves"`
	// Live counts the node's unsealed memtable rows: a streaming node
	// with no sealed leaf yet still holds answerable data.
	Live    int               `json:"live,omitempty"`
	Scanned int               `json:"scanned,omitempty"`
	Decayed int               `json:"decayed,omitempty"`
	Rows    map[string][]byte `json:"rowdata,omitempty"`
	// Partials are the shard's per-group partial aggregates (aggregate
	// mode); the coordinator merges them key-wise across shards.
	Partials []scanspec.Partial `json:"partials,omitempty"`
	// Profile is the shard-local cost breakdown of serving this request.
	Profile *core.Profile `json:"profile,omitempty"`
	// Trace is the shard-local span subtree, returned when the request
	// carried an X-Spate-Trace header so the coordinator can stitch it
	// under its own slot span.
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

type healthResponse struct {
	OK bool `json:"ok"`
	// Snapshots is the node's leaf count.
	Snapshots int `json:"snapshots"`
	// LastEpoch is the most recent ingested cycle, -1 when empty.
	LastEpoch int64 `json:"last_epoch"`
}

type errorResponse struct {
	Error string `json:"error"`
}
