package cluster

import (
	"strconv"

	"spate/internal/obs"
)

// clusterMetrics is the coordinator-side instrument panel. Per-shard
// series are pre-resolved at construction (shard cardinality is fixed by
// the topology) so the hot path only increments.
type clusterMetrics struct {
	explores  *obs.Counter
	ingests   *obs.Counter
	appends   *obs.Counter
	partials  *obs.Counter
	retries   map[string]*obs.Counter // by op
	hedged    *obs.Counter
	hedgeWins *obs.Counter

	// Per time shard, indexed by shard number.
	exploreSec  []*obs.Histogram
	ingestSec   []*obs.Histogram
	shardErrors []*obs.Counter
	shardMiss   []*obs.Counter
}

func newClusterMetrics(r *obs.Registry, shards int) *clusterMetrics {
	m := &clusterMetrics{
		explores:  r.Counter("spate_cluster_explores_total", "Scatter-gather explorations coordinated."),
		ingests:   r.Counter("spate_cluster_ingests_total", "Snapshots routed through the coordinator."),
		appends:   r.Counter("spate_cluster_appends_total", "Streaming append batches routed through the coordinator."),
		partials:  r.Counter("spate_cluster_partial_results_total", "Explorations degraded to a partial result."),
		hedged:    r.Counter("spate_cluster_hedged_requests_total", "Extra replica reads launched by hedging."),
		hedgeWins: r.Counter("spate_cluster_hedge_wins_total", "Explorations won by a hedged replica read."),
		retries: map[string]*obs.Counter{
			"explore": r.Counter("spate_cluster_retries_total", "Shard RPC retry attempts by op.", "op", "explore"),
			"ingest":  r.Counter("spate_cluster_retries_total", "Shard RPC retry attempts by op.", "op", "ingest"),
			"append":  r.Counter("spate_cluster_retries_total", "Shard RPC retry attempts by op.", "op", "append"),
		},
	}
	for s := 0; s < shards; s++ {
		lbl := strconv.Itoa(s)
		m.exploreSec = append(m.exploreSec, r.Histogram("spate_cluster_shard_explore_seconds",
			"Per-shard exploration RPC latency (including retries and hedges).", nil, "shard", lbl))
		m.ingestSec = append(m.ingestSec, r.Histogram("spate_cluster_shard_ingest_seconds",
			"Per-shard ingest RPC latency (including retries).", nil, "shard", lbl))
		m.shardErrors = append(m.shardErrors, r.Counter("spate_cluster_shard_errors_total",
			"Failed shard RPC attempts by shard.", "shard", lbl))
		m.shardMiss = append(m.shardMiss, r.Counter("spate_cluster_shard_missing_total",
			"Explorations in which the shard's data was reported missing.", "shard", lbl))
	}
	return m
}
