package obs

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	tr := NewTracer(4)
	ctx, span := tr.StartSpan(context.Background(), "origin")
	h := http.Header{}
	InjectTrace(ctx, h)
	v := h.Get(TraceHeader)
	if v == "" {
		t.Fatal("InjectTrace wrote no header")
	}
	tid, sid, ok := ExtractTrace(h)
	if !ok {
		t.Fatalf("ExtractTrace rejected %q", v)
	}
	if tid.String() != span.TraceID() || sid.String() != span.SpanID() {
		t.Fatalf("extracted %s/%s, want %s/%s", tid, sid, span.TraceID(), span.SpanID())
	}
	span.End()

	// Malformed headers must be rejected, not half-parsed.
	for _, bad := range []string{"", "xyz", "deadbeef-cafe", span.TraceID(), span.TraceID() + "-zz"} {
		hb := http.Header{}
		if bad != "" {
			hb.Set(TraceHeader, bad)
		}
		if _, _, ok := ExtractTrace(hb); ok {
			t.Errorf("ExtractTrace accepted %q", bad)
		}
	}
}

func TestRemoteParentAdoptsTraceID(t *testing.T) {
	coord := NewTracer(4)
	node := NewTracer(4)
	ctx, parent := coord.StartSpan(context.Background(), "coordinator")

	// Simulate the RPC hop: header out of the coordinator context, into a
	// fresh node-side context.
	h := http.Header{}
	InjectTrace(ctx, h)
	nctx := ContextWithTraceHeader(context.Background(), h)
	_, remote := node.StartSpan(nctx, "rpc_explore")
	if remote.TraceID() != parent.TraceID() {
		t.Fatalf("remote root trace id %s, want %s", remote.TraceID(), parent.TraceID())
	}
	remote.End()
	parent.End()

	j, ok := node.Find(remote.TraceID())
	if !ok {
		t.Fatal("node tracer did not retain the remote-parented root")
	}
	if j.ParentID != parent.SpanID() {
		t.Fatalf("remote root parent %s, want coordinator span %s", j.ParentID, parent.SpanID())
	}
}

func TestAttachRemoteStitchesSubtree(t *testing.T) {
	node := NewTracer(4)
	nctx, nspan := node.StartSpan(context.Background(), "rpc_explore")
	_, child := node.StartSpan(nctx, "explore_parts")
	child.End()
	nspan.End()
	shard := nspan.JSON()

	coord := NewTracer(4)
	cctx, root := coord.StartSpan(context.Background(), "cluster_explore")
	_, slot := coord.StartSpan(cctx, "slot_explore")
	slot.AttachRemote(shard)
	slot.End()
	root.End()

	j, ok := coord.Find(root.TraceID())
	if !ok {
		t.Fatal("coordinator trace not found")
	}
	if len(j.Children) != 1 || j.Children[0].Name != "slot_explore" {
		t.Fatalf("root children = %+v", j.Children)
	}
	sub := j.Children[0].Children
	if len(sub) != 1 || sub[0].Name != "rpc_explore" || !sub[0].Remote {
		t.Fatalf("stitched subtree = %+v", sub)
	}
	if len(sub[0].Children) != 1 || sub[0].Children[0].Name != "explore_parts" {
		t.Fatalf("remote subtree lost its children: %+v", sub[0])
	}
}

func TestSpanCapDropsExcess(t *testing.T) {
	tr := NewTracer(4)
	tr.SetMaxSpansPerTrace(3)
	ctx, root := tr.StartSpan(context.Background(), "root")
	for i := 0; i < 10; i++ {
		_, c := tr.StartSpan(ctx, fmt.Sprintf("child-%d", i))
		c.End()
	}
	root.End()
	j, ok := tr.Find(root.TraceID())
	if !ok {
		t.Fatal("trace not retained")
	}
	if len(j.Children) != 2 { // root + 2 children = cap of 3
		t.Fatalf("retained %d children, want 2", len(j.Children))
	}
	if j.Dropped != 8 {
		t.Fatalf("Dropped = %d, want 8", j.Dropped)
	}
}

func TestRingEvictionReleasesAttrs(t *testing.T) {
	tr := NewTracer(2)
	_, old := tr.StartSpan(context.Background(), "old")
	old.SetAttr("k", "v")
	old.End()
	if j := old.JSON(); j.Attrs["k"] != "v" {
		t.Fatalf("attr lost before eviction: %+v", j)
	}
	// Two more roots evict "old"; release must clear its attribute map so
	// the ring cannot retain arbitrarily large evicted payloads.
	for i := 0; i < 2; i++ {
		_, s := tr.StartSpan(context.Background(), "new")
		s.End()
	}
	if j := old.JSON(); len(j.Attrs) != 0 {
		t.Fatalf("evicted root still holds attrs: %+v", j.Attrs)
	}
}

func TestAddStageAtKeepsExecutionOrder(t *testing.T) {
	tr := NewTracer(2)
	_, span := tr.StartSpan(context.Background(), "explore")
	base := time.Now()
	// Recorded out of duration order on purpose: a long early stage and a
	// short late stage. The JSON waterfall must honor the given starts.
	span.AddStageAt("plan", base, 50*time.Millisecond)
	span.AddStageAt("row_fetch", base.Add(60*time.Millisecond), 5*time.Millisecond)
	span.End()
	j := span.JSON()
	if len(j.Children) != 2 {
		t.Fatalf("stage children = %+v", j.Children)
	}
	if !j.Children[0].Start.Equal(base) {
		t.Errorf("plan start = %v, want %v", j.Children[0].Start, base)
	}
	if !j.Children[1].Start.After(j.Children[0].Start) {
		t.Errorf("stage starts out of order: %v then %v", j.Children[0].Start, j.Children[1].Start)
	}
}

func TestFindMergesSharedTraceRoots(t *testing.T) {
	tr := NewTracer(8)
	ctx, anchor := tr.StartSpan(context.Background(), "cluster_explore")

	// A second root on the same tracer with a remote parent pointing at the
	// anchor — the in-process Local cluster shape, where coordinator and
	// node share one tracer.
	h := http.Header{}
	InjectTrace(ctx, h)
	_, nodeRoot := tr.StartSpan(ContextWithTraceHeader(context.Background(), h), "rpc_explore")
	nodeRoot.End()
	anchor.End()

	j, ok := tr.Find(anchor.TraceID())
	if !ok {
		t.Fatal("merged trace not found")
	}
	if j.Name != "cluster_explore" {
		t.Fatalf("anchor = %q", j.Name)
	}
	var found bool
	for _, c := range j.Children {
		if c.Name == "rpc_explore" {
			found = true
		}
	}
	if !found {
		t.Fatalf("node root not merged under anchor: %+v", j.Children)
	}
}
