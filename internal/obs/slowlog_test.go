package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestSlowQueryLogThresholdAndRing(t *testing.T) {
	reg := NewRegistry()
	l := NewSlowQueryLog(reg, 100*time.Millisecond, 2)
	var buf bytes.Buffer
	l.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))

	if l.Observe("explore", "fast", "", 10*time.Millisecond, nil) {
		t.Fatal("fast query logged as slow")
	}
	if !l.Observe("explore", "q1", "abc123", 150*time.Millisecond, map[string]any{"rows": 7}) {
		t.Fatal("slow query not recorded")
	}
	l.Observe("sql", "q2", "", 200*time.Millisecond, nil)
	l.Observe("sql", "q3", "", 300*time.Millisecond, nil)

	rec := l.Recent()
	if len(rec) != 2 { // ring of 2 keeps the most recent entries
		t.Fatalf("kept %d entries, want 2", len(rec))
	}
	if rec[0].Query != "q3" || rec[1].Query != "q2" {
		t.Fatalf("recent order = %q, %q; want q3, q2", rec[0].Query, rec[1].Query)
	}
	if v := reg.Counter("spate_slow_queries_total", "").Value(); v != 3 {
		t.Fatalf("spate_slow_queries_total = %d, want 3", v)
	}
	out := buf.String()
	if !strings.Contains(out, "slow query") || !strings.Contains(out, "abc123") {
		t.Fatalf("structured log missing entry or trace id:\n%s", out)
	}
}

func TestSlowQueryLogDisabled(t *testing.T) {
	l := NewSlowQueryLog(NewNoop(), 0, 4)
	if l.Observe("explore", "q", "", time.Hour, nil) {
		t.Fatal("disabled threshold still logged")
	}
	l.SetThreshold(time.Millisecond)
	if !l.Observe("explore", "q", "", time.Second, nil) {
		t.Fatal("re-enabled threshold did not log")
	}
	if got := l.Threshold(); got != time.Millisecond {
		t.Fatalf("Threshold = %v", got)
	}

	// Nil receiver is inert, like the rest of the obs surface.
	var nl *SlowQueryLog
	if nl.Observe("x", "y", "", time.Hour, nil) || nl.Recent() != nil {
		t.Fatal("nil SlowQueryLog not inert")
	}
}
