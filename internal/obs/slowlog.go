package obs

import (
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// SlowQuery is one entry of the slow-query log: enough to join the query
// text, its trace (via TraceID), and its profile on one id.
type SlowQuery struct {
	When    time.Time      `json:"when"`
	Kind    string         `json:"kind"` // e.g. "explore", "sql", "http /api/explore"
	Query   string         `json:"query,omitempty"`
	TraceID string         `json:"trace_id,omitempty"`
	Millis  float64        `json:"ms"`
	Detail  map[string]any `json:"detail,omitempty"`
}

// SlowQueryLog records queries whose wall time crosses a threshold into a
// bounded ring, a counter, and a structured slog line carrying the trace id.
type SlowQueryLog struct {
	threshold atomic.Int64 // nanoseconds
	total     *Counter
	logger    *slog.Logger

	mu   sync.Mutex
	keep int
	buf  []SlowQuery
	next int
}

// DefaultSlowThreshold is the initial slow-query threshold.
const DefaultSlowThreshold = 250 * time.Millisecond

// DefaultSlowLog is the process-wide slow-query log, registered on the
// Default registry as spate_slow_queries_total.
var DefaultSlowLog = NewSlowQueryLog(Default, DefaultSlowThreshold, 64)

// NewSlowQueryLog builds a slow-query log keeping the last keep entries and
// counting crossings as spate_slow_queries_total on reg.
func NewSlowQueryLog(reg *Registry, threshold time.Duration, keep int) *SlowQueryLog {
	if keep <= 0 {
		keep = 64
	}
	l := &SlowQueryLog{keep: keep}
	l.threshold.Store(int64(threshold))
	if reg != nil && !reg.Noop() {
		l.total = reg.Counter("spate_slow_queries_total",
			"Queries slower than the slow-query threshold.")
	}
	return l
}

// SetThreshold changes the slow-query threshold; d <= 0 disables logging.
func (l *SlowQueryLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.threshold.Store(int64(d))
}

// Threshold returns the current slow-query threshold.
func (l *SlowQueryLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.threshold.Load())
}

// SetLogger overrides the slog logger (default slog.Default()).
func (l *SlowQueryLog) SetLogger(lg *slog.Logger) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.logger = lg
	l.mu.Unlock()
}

// Observe records one finished query. Queries at or over the threshold are
// appended to the ring, counted, and logged; it reports whether the query
// was slow.
func (l *SlowQueryLog) Observe(kind, query, traceID string, dur time.Duration, detail map[string]any) bool {
	if l == nil {
		return false
	}
	th := time.Duration(l.threshold.Load())
	if th <= 0 || dur < th {
		return false
	}
	if l.total != nil {
		l.total.Inc()
	}
	e := SlowQuery{
		When: time.Now(), Kind: kind, Query: query, TraceID: traceID,
		Millis: float64(dur) / float64(time.Millisecond), Detail: detail,
	}
	l.mu.Lock()
	if len(l.buf) < l.keep {
		l.buf = append(l.buf, e)
		l.next = len(l.buf) % l.keep
	} else {
		l.buf[l.next] = e
		l.next = (l.next + 1) % l.keep
	}
	lg := l.logger
	l.mu.Unlock()
	if lg == nil {
		lg = slog.Default()
	}
	args := []any{
		slog.String("kind", kind),
		slog.Duration("duration", dur),
		slog.Duration("threshold", th),
	}
	if query != "" {
		args = append(args, slog.String("query", query))
	}
	if traceID != "" {
		args = append(args, slog.String("trace_id", traceID))
	}
	lg.Warn("slow query", args...)
	return true
}

// Recent returns the retained slow queries, most recent first.
func (l *SlowQueryLog) Recent() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, len(l.buf))
	if len(l.buf) < l.keep {
		for i := len(l.buf) - 1; i >= 0; i-- {
			out = append(out, l.buf[i])
		}
		return out
	}
	for i := 0; i < l.keep; i++ {
		out = append(out, l.buf[(l.next-1-i+2*l.keep)%l.keep])
	}
	return out
}
