package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spate_test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same child.
	if r.Counter("spate_test_ops_total", "ops") != c {
		t.Error("re-lookup returned a different counter")
	}

	g := r.Gauge("spate_test_level", "level")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}

	r.GaugeFunc("spate_test_fn", "fn", func() float64 { return 7 })
	r.GaugeFunc("spate_test_fn", "fn", func() float64 { return 9 }) // newest wins
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "spate_test_fn 9") {
		t.Errorf("gauge func not replaced:\n%s", b.String())
	}
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("spate_test_bytes_total", "bytes", "codec", "gzip")
	z := r.Counter("spate_test_bytes_total", "bytes", "codec", "zstd")
	if a == z {
		t.Fatal("distinct label values share a child")
	}
	a.Add(10)
	z.Add(20)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`spate_test_bytes_total{codec="gzip"} 10`,
		`spate_test_bytes_total{codec="zstd"} 20`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("spate_test_seconds", "lat", []float64{0.1, 0.2, 0.4, 0.8})
	// 100 samples uniform in [0, 0.4): quantiles are predictable.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) * 0.004)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 19.8; got < want-0.01 || got > want+0.01 {
		t.Errorf("sum = %v, want ~%v", got, want)
	}
	// Median of U[0, 0.4) is 0.2; interpolation lands within the second
	// bucket (0.1, 0.2].
	if q := h.Quantile(0.5); q < 0.1 || q > 0.25 {
		t.Errorf("p50 = %v, want ~0.2", q)
	}
	if q := h.Quantile(0.99); q < 0.3 || q > 0.4 {
		t.Errorf("p99 = %v, want ~0.4", q)
	}
	// Out-of-range sample lands in +Inf and clamps to the top bound.
	h.Observe(99)
	if q := h.Quantile(1); q != 0.8 {
		t.Errorf("p100 = %v, want clamp to 0.8", q)
	}
	// Empty histogram.
	if q := r.Histogram("spate_test_empty_seconds", "", []float64{1}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

func TestPrometheusExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("spate_demo_ops_total", "Operations.").Add(3)
	r.Gauge("spate_demo_level", "Level.").Set(1.5)
	h := r.Histogram("spate_demo_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP spate_demo_level Level.
# TYPE spate_demo_level gauge
spate_demo_level 1.5
# HELP spate_demo_ops_total Operations.
# TYPE spate_demo_ops_total counter
spate_demo_ops_total 3
# HELP spate_demo_seconds Latency.
# TYPE spate_demo_seconds histogram
spate_demo_seconds_bucket{le="+Inf"} 3
spate_demo_seconds_bucket{le="0.1"} 1
spate_demo_seconds_bucket{le="1"} 2
spate_demo_seconds_count 3
spate_demo_seconds_sum 5.55
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("spate_snap_total", "c", "kind", "x").Add(2)
	h := r.Histogram("spate_snap_seconds", "h", []float64{1, 2})
	h.Observe(0.5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("families = %d", len(snap))
	}
	byName := map[string]Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	c := byName["spate_snap_total"]
	if c.Type != "counter" || len(c.Series) != 1 || c.Series[0].Value != 2 || c.Series[0].Labels["kind"] != "x" {
		t.Errorf("counter snapshot = %+v", c)
	}
	hs := byName["spate_snap_seconds"]
	if hs.Type != "histogram" || hs.Series[0].Count != 1 || hs.Series[0].Quantiles["p50"] == 0 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
}

// TestConcurrentWritersAndScraper exercises the registry under -race:
// parallel increments and observations while a scraper renders.
func TestConcurrentWritersAndScraper(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent scraper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.Snapshot()
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix of pre-resolved and looked-up metrics.
			c := r.Counter("spate_conc_ops_total", "ops")
			h := r.Histogram("spate_conc_seconds", "lat", nil, "worker", []string{"a", "b"}[w%2])
			g := r.Gauge("spate_conc_level", "lvl")
			for i := 0; i < perW; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-6)
				g.Add(1)
				r.Counter("spate_conc_lookup_total", "ops").Inc()
			}
		}(w)
	}
	// Wait for everything; stop the scraper once writers have had time.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-done

	if got := r.Counter("spate_conc_ops_total", "ops").Value(); got != workers*perW {
		t.Errorf("ops = %d, want %d", got, workers*perW)
	}
	if got := r.Counter("spate_conc_lookup_total", "ops").Value(); got != workers*perW {
		t.Errorf("lookup ops = %d, want %d", got, workers*perW)
	}
	var n int64
	n += r.Histogram("spate_conc_seconds", "lat", nil, "worker", "a").Count()
	n += r.Histogram("spate_conc_seconds", "lat", nil, "worker", "b").Count()
	if n != workers*perW {
		t.Errorf("observations = %d, want %d", n, workers*perW)
	}
}

func TestNoopRegistry(t *testing.T) {
	r := NewNoop()
	c := r.Counter("spate_noop_total", "c")
	c.Add(5)
	if c.Value() != 0 {
		t.Error("noop counter advanced")
	}
	h := r.Histogram("spate_noop_seconds", "h", nil)
	h.Observe(1)
	if h.Count() != 0 {
		t.Error("noop histogram advanced")
	}
	g := r.Gauge("spate_noop_level", "g")
	g.Set(3)
	if g.Value() != 0 {
		t.Error("noop gauge advanced")
	}
	// Nil metrics are safe no-ops too (callers may skip wiring).
	var nc *Counter
	nc.Inc()
	var nh *Histogram
	nh.Observe(1)
	nh.ObserveSince(time.Now())
	var ng *Gauge
	ng.Add(1)
}
