package obs

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.StartSpan(context.Background(), "ingest")
	ctx2, child := tr.StartSpan(ctx, "encode")
	_, grand := tr.StartSpan(ctx2, "column")
	grand.End()
	child.End()
	root.AddStage("seal", 3*time.Millisecond)
	root.End()
	root.End() // idempotent

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	j := traces[0]
	if j.Name != "ingest" || len(j.Children) != 2 {
		t.Fatalf("root = %+v", j)
	}
	if j.Children[0].Name != "encode" || len(j.Children[0].Children) != 1 ||
		j.Children[0].Children[0].Name != "column" {
		t.Errorf("child tree = %+v", j.Children)
	}
	if j.Children[1].Name != "seal" || j.Children[1].Millis < 2.9 {
		t.Errorf("stage child = %+v", j.Children[1])
	}
	if j.Millis < 0 {
		t.Errorf("root millis = %v", j.Millis)
	}
}

func TestSpanStages(t *testing.T) {
	tr := NewTracer(4)
	_, s := tr.StartSpan(context.Background(), "explore")
	s.AddStage("plan", time.Millisecond)
	s.AddStage("merge", 2*time.Millisecond)
	got := s.Stages()
	if len(got) != 2 || got[0].Name != "plan" || got[1].Name != "merge" {
		t.Fatalf("stages = %+v", got)
	}
	if got[1].Duration != 2*time.Millisecond {
		t.Errorf("merge duration = %v", got[1].Duration)
	}
	s.End()
}

func TestTracerRingBuffer(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		_, s := tr.StartSpan(context.Background(), fmt.Sprintf("q%d", i))
		s.End()
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring kept %d, want 3", len(traces))
	}
	// Oldest-first of the last three roots.
	for i, want := range []string{"q2", "q3", "q4"} {
		if traces[i].Name != want {
			t.Errorf("traces[%d] = %q, want %q", i, traces[i].Name, want)
		}
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	if ctx == nil {
		t.Fatal("nil tracer dropped the context")
	}
	// All span methods are nil-safe.
	s.AddStage("y", time.Millisecond)
	if st := s.Stages(); st != nil {
		t.Errorf("nil span stages = %+v", st)
	}
	s.End()
	if got := tr.Traces(); got != nil {
		t.Errorf("nil tracer traces = %+v", got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(16)
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				ctx, s := tr.StartSpan(context.Background(), "op")
				_, c := tr.StartSpan(ctx, "inner")
				c.End()
				s.AddStage("stage", time.Microsecond)
				s.End()
				_ = tr.Traces()
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if got := len(tr.Traces()); got != 16 {
		t.Errorf("ring length = %d, want 16", got)
	}
}
