// Package obs is SPATE's stdlib-only observability layer: a process-wide
// metrics registry (atomic counters, gauges and fixed-bucket histograms
// with percentile estimation) plus a lightweight span tracer that records
// per-stage wall-time breakdowns of ingest and exploration requests.
//
// The paper's whole argument is quantitative — ingestion throughput,
// compression ratio per codec, query latency independent of |w|, decay
// space reclaimed — and a production deployment must observe those numbers
// live, not only through one-shot bench harnesses. Every hot path
// (core.Engine, dfs.Cluster, compress codecs, sqlengine, webui) reports
// into the Default registry, which serves Prometheus text format and a
// JSON mirror over HTTP.
//
// Metric names follow spate_<subsystem>_<name>_<unit>, e.g.
// spate_dfs_op_seconds or spate_compress_in_bytes_total.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry all subsystems report to unless
// explicitly configured otherwise.
var Default = NewRegistry()

// Registry holds metric families keyed by name. All methods are safe for
// concurrent use; metric updates are lock-free atomics.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	noop     bool
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// NewNoop returns a registry whose metrics discard every update — the
// baseline for measuring instrumentation overhead, and the off switch for
// embedders that want zero accounting.
func NewNoop() *Registry { return &Registry{families: make(map[string]*family), noop: true} }

// Noop reports whether the registry discards updates.
func (r *Registry) Noop() bool { return r.noop }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// family is one named metric with a fixed label-key set and its children
// (one per label-value combination).
type family struct {
	name      string
	help      string
	kind      metricKind
	labelKeys []string
	buckets   []float64

	mu       sync.Mutex
	children map[string]any // label-values key -> *Counter | *Gauge | func() float64 | *Histogram
	order    []string
}

// splitLabels validates alternating key/value pairs.
func splitLabels(name string, labels []string) (keys, vals []string) {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q: odd label list %v", name, labels))
	}
	for i := 0; i < len(labels); i += 2 {
		keys = append(keys, labels[i])
		vals = append(vals, labels[i+1])
	}
	return keys, vals
}

// getFamily finds or creates the family, enforcing a consistent shape.
func (r *Registry) getFamily(name, help string, kind metricKind, keys []string, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{
				name: name, help: help, kind: kind,
				labelKeys: append([]string(nil), keys...),
				buckets:   append([]float64(nil), buckets...),
				children:  make(map[string]any),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labelKeys) != len(keys) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v%v (was %v%v)",
			name, kind, keys, f.kind, f.labelKeys))
	}
	return f
}

func labelKey(vals []string) string { return strings.Join(vals, "\x00") }

// Counter returns (registering on first use) a monotonically increasing
// counter. labels are alternating key, value pairs and must be consistent
// across calls for the same name.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	keys, vals := splitLabels(name, labels)
	f := r.getFamily(name, help, kindCounter, keys, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(vals)
	if c, ok := f.children[k]; ok {
		return c.(*Counter)
	}
	c := &Counter{noop: r.noop}
	f.children[k] = c
	f.order = append(f.order, k)
	return c
}

// Gauge returns (registering on first use) a settable gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	keys, vals := splitLabels(name, labels)
	f := r.getFamily(name, help, kindGauge, keys, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(vals)
	if g, ok := f.children[k]; ok {
		return g.(*Gauge)
	}
	g := &Gauge{noop: r.noop}
	f.children[k] = g
	f.order = append(f.order, k)
	return g
}

// GaugeFunc registers a gauge evaluated at scrape time. Re-registering the
// same name+labels replaces the callback (the newest owner wins — e.g. a
// fresh dfs.Cluster superseding one from an earlier test).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r.noop {
		return
	}
	keys, vals := splitLabels(name, labels)
	f := r.getFamily(name, help, kindGaugeFunc, keys, nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(vals)
	if _, ok := f.children[k]; !ok {
		f.order = append(f.order, k)
	}
	f.children[k] = fn
}

// Histogram returns (registering on first use) a fixed-bucket histogram.
// buckets are sorted upper bounds; nil selects DurationBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	keys, vals := splitLabels(name, labels)
	f := r.getFamily(name, help, kindHistogram, keys, buckets)
	f.mu.Lock()
	defer f.mu.Unlock()
	k := labelKey(vals)
	if h, ok := f.children[k]; ok {
		return h.(*Histogram)
	}
	h := newHistogram(f.buckets, r.noop)
	f.children[k] = h
	f.order = append(f.order, k)
	return h
}

// --- metric types ---

// Counter is a monotonically increasing integer metric.
type Counter struct {
	noop bool
	v    atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored).
func (c *Counter) Add(n int64) {
	if c == nil || c.noop || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	noop bool
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.noop {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (negative decrements).
func (g *Gauge) Add(delta float64) {
	if g == nil || g.noop {
		return
	}
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DurationBuckets are the default histogram bounds (seconds), spanning
// 10 µs .. 10 s — wide enough for both in-memory index hits and throttled
// DFS scans.
var DurationBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ExpBuckets returns n exponentially growing bounds starting at start.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
type Histogram struct {
	noop    bool
	bounds  []float64      // sorted upper bounds
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	total   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64, noop bool) *Histogram {
	return &Histogram{noop: noop, bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.noop {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || h.noop {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket. With no samples it returns 0; samples in
// the +Inf bucket clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// --- exposition ---

// Series is one labeled time series in a Snapshot.
type Series struct {
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     float64            `json:"value"`
	Count     int64              `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Metric is one family in a Snapshot.
type Metric struct {
	Name   string   `json:"name"`
	Type   string   `json:"type"`
	Help   string   `json:"help,omitempty"`
	Series []Series `json:"series"`
}

// Snapshot returns a point-in-time copy of every metric, for the JSON
// mirror and programmatic scraping.
func (r *Registry) Snapshot() []Metric {
	var out []Metric
	for _, f := range r.sortedFamilies() {
		m := Metric{Name: f.name, Type: f.kind.String(), Help: f.help}
		f.mu.Lock()
		for _, k := range f.order {
			vals := labelVals(k)
			s := Series{Labels: labelMap(f.labelKeys, vals)}
			switch c := f.children[k].(type) {
			case *Counter:
				s.Value = float64(c.Value())
			case *Gauge:
				s.Value = c.Value()
			case func() float64:
				s.Value = c()
			case *Histogram:
				s.Count = c.Count()
				s.Sum = c.Sum()
				s.Value = 0
				s.Quantiles = map[string]float64{
					"p50": c.Quantile(0.50),
					"p90": c.Quantile(0.90),
					"p99": c.Quantile(0.99),
				}
			}
			m.Series = append(m.Series, s)
		}
		f.mu.Unlock()
		out = append(out, m)
	}
	return out
}

func labelVals(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, "\x00")
}

func labelMap(keys, vals []string) map[string]string {
	if len(keys) == 0 {
		return nil
	}
	m := make(map[string]string, len(keys))
	for i, k := range keys {
		if i < len(vals) {
			m[k] = vals[i]
		}
	}
	return m
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders {k="v",...}; extra appends one more pair (for le).
func renderLabels(keys, vals []string, extraK, extraV string) string {
	if len(keys) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(vals[i]))
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraK, escapeLabel(extraV))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
	// (histogram bounds and sums are well within %f precision)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		lines := make([]string, 0, len(f.order))
		for _, k := range f.order {
			vals := labelVals(k)
			switch c := f.children[k].(type) {
			case *Counter:
				lines = append(lines, fmt.Sprintf("%s%s %d", f.name, renderLabels(f.labelKeys, vals, "", ""), c.Value()))
			case *Gauge:
				lines = append(lines, fmt.Sprintf("%s%s %s", f.name, renderLabels(f.labelKeys, vals, "", ""), formatFloat(c.Value())))
			case func() float64:
				lines = append(lines, fmt.Sprintf("%s%s %s", f.name, renderLabels(f.labelKeys, vals, "", ""), formatFloat(c())))
			case *Histogram:
				cum := int64(0)
				for i, b := range c.bounds {
					cum += c.counts[i].Load()
					lines = append(lines, fmt.Sprintf("%s_bucket%s %d", f.name,
						renderLabels(f.labelKeys, vals, "le", formatFloat(b)), cum))
				}
				lines = append(lines, fmt.Sprintf("%s_bucket%s %d", f.name,
					renderLabels(f.labelKeys, vals, "le", "+Inf"), c.Count()))
				lines = append(lines, fmt.Sprintf("%s_sum%s %s", f.name,
					renderLabels(f.labelKeys, vals, "", ""), formatFloat(c.Sum())))
				lines = append(lines, fmt.Sprintf("%s_count%s %d", f.name,
					renderLabels(f.labelKeys, vals, "", ""), c.Count()))
			}
		}
		f.mu.Unlock()
		sort.Strings(lines)
		for _, l := range lines {
			if _, err := io.WriteString(w, l+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
