package obs

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves the registry in Prometheus text exposition format
// (the GET /metrics endpoint).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// StatsHandler serves the registry's JSON mirror (GET /api/stats).
func StatsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
}

// TracesHandler serves the tracer's retained request traces
// (GET /api/trace). With ?id=<32-hex trace id> it returns that single
// trace's merged tree, or 404 if the ring no longer retains it.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			tr, ok := t.Find(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				_ = json.NewEncoder(w).Encode(map[string]string{
					"error": "trace " + id + " not retained",
				})
				return
			}
			_ = json.NewEncoder(w).Encode(tr)
			return
		}
		_ = json.NewEncoder(w).Encode(t.Traces())
	})
}

// SlowLogHandler serves the slow-query ring, most recent first
// (GET /api/slowlog).
func SlowLogHandler(l *SlowQueryLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(l.Recent())
	})
}
