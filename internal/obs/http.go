package obs

import (
	"encoding/json"
	"net/http"
)

// MetricsHandler serves the registry in Prometheus text exposition format
// (the GET /metrics endpoint).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// StatsHandler serves the registry's JSON mirror (GET /api/stats).
func StatsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
}

// TracesHandler serves the tracer's retained request traces
// (GET /api/trace).
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(t.Traces())
	})
}
