package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Stage is one named step of a request with its wall time — the per-stage
// breakdown attached to core.IngestReport and core.Result.
type Stage struct {
	Name     string
	Duration time.Duration
}

// TraceID is a 128-bit request identifier shared by every span of one
// distributed trace, including spans recorded on remote shard nodes.
type TraceID [16]byte

// SpanID is a 64-bit span identifier, unique within its trace.
type SpanID [8]byte

// IsZero reports whether the id is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is unset.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 32 lower-case hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the id as 16 lower-case hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 32 {
		return id, fmt.Errorf("obs: trace id %q: want 32 hex digits", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("obs: trace id %q: %w", s, err)
	}
	return id, nil
}

// ParseSpanID parses 16 hex digits into a SpanID.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("obs: span id %q: want 16 hex digits", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("obs: span id %q: %w", s, err)
	}
	return id, nil
}

// Span and trace ids mix a process-random base with a counter — unique
// without a syscall per span.
var (
	idBase    [2]uint64
	idCounter atomic.Uint64
	idOnce    sync.Once
)

func nextID() uint64 {
	idOnce.Do(func() {
		var b [16]byte
		_, _ = rand.Read(b[:])
		idBase[0] = binary.BigEndian.Uint64(b[0:8])
		idBase[1] = binary.BigEndian.Uint64(b[8:16])
	})
	// SplitMix64 finalizer over a strided counter: well-mixed, collision-free
	// within a process, seeded by the crypto-random base across processes.
	x := idBase[0] + idCounter.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func newTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[0:8], nextID()^idBase[1])
	binary.BigEndian.PutUint64(id[8:16], nextID())
	return id
}

func newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], nextID())
	return id
}

// Attr is one key=value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation in a request's wall-time tree. Spans nest:
// StartSpan under a context carrying a live span creates a child. A root
// span is recorded into its Tracer's ring buffer when it ends. Spans carry
// trace/span identity, key=value attributes and an error status, so spans
// recorded on different processes stitch into one trace.
type Span struct {
	name     string
	start    time.Time
	tracer   *Tracer // non-nil on roots
	parent   *Span
	root     *Span // the trace root in this process (itself for roots)
	traceID  TraceID
	spanID   SpanID
	parentID SpanID // non-zero on roots continuing a remote trace

	// Per-trace span budget, tracked on the root: children beyond maxSpans
	// are timed but not retained, so one pathological request cannot pin
	// unbounded memory in the trace ring.
	maxSpans int
	nspans   atomic.Int64
	dropped  atomic.Int64

	mu       sync.Mutex
	duration time.Duration
	done     bool
	errMsg   string
	attrs    []Attr
	children []*Span
	remote   []SpanJSON // pre-rendered subtrees attached from remote nodes
}

type spanKey struct{}

// remoteRef carries a trace parent extracted from an RPC header.
type remoteRef struct {
	traceID TraceID
	spanID  SpanID
}

type remoteKey struct{}

// DefaultTracer records the most recent request traces process-wide.
var DefaultTracer = NewTracer(64)

// DefaultMaxSpansPerTrace caps how many spans one trace retains.
const DefaultMaxSpansPerTrace = 512

// Tracer keeps a ring buffer of the last N finished root spans.
type Tracer struct {
	mu       sync.Mutex
	cap      int
	maxSpans int
	buf      []*Span
	next     int
}

// NewTracer returns a tracer retaining the last n root traces.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = 16
	}
	return &Tracer{cap: n, maxSpans: DefaultMaxSpansPerTrace}
}

// SetMaxSpansPerTrace caps the spans retained per trace (default 512).
func (t *Tracer) SetMaxSpansPerTrace(n int) {
	if t == nil || n <= 0 {
		return
	}
	t.mu.Lock()
	t.maxSpans = n
	t.mu.Unlock()
}

// StartSpan begins a span named name. If ctx carries a live span the new
// span becomes its child, inheriting the trace id; if ctx instead carries a
// remote trace reference (ContextWithRemote), the new span roots a local
// subtree of that distributed trace. Otherwise it starts a fresh trace.
// Roots are recorded into t when they end. The returned context carries the
// new span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil // tracing disabled; the nil span is a safe no-op
	}
	s := &Span{name: name, start: time.Now(), spanID: newSpanID()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil && !parent.finished() {
		root := parent.root
		if root == nil {
			root = parent
		}
		s.traceID = parent.traceID
		s.parentID = parent.spanID
		s.root = root
		if root.nspans.Add(1) > int64(root.maxSpans) {
			// Over budget: time the operation but keep it out of the tree.
			root.nspans.Add(-1)
			root.dropped.Add(1)
			return context.WithValue(ctx, spanKey{}, s), s
		}
		s.parent = parent
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		s.tracer = t
		s.root = s
		t.mu.Lock()
		s.maxSpans = t.maxSpans
		t.mu.Unlock()
		s.nspans.Store(1)
		if ref, ok := ctx.Value(remoteKey{}).(remoteRef); ok && !ref.traceID.IsZero() {
			s.traceID = ref.traceID
			s.parentID = ref.spanID
		} else {
			s.traceID = newTraceID()
		}
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartSpan begins a span on the DefaultTracer.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return DefaultTracer.StartSpan(ctx, name)
}

// SpanFromContext returns the live span carried by ctx, if any.
func SpanFromContext(ctx context.Context) (*Span, bool) {
	s, ok := ctx.Value(spanKey{}).(*Span)
	return s, ok && s != nil
}

// ContextWithRemote marks ctx with a remote trace parent: the next root
// span started under it joins that trace instead of opening a new one.
func ContextWithRemote(ctx context.Context, traceID TraceID, parent SpanID) context.Context {
	return context.WithValue(ctx, remoteKey{}, remoteRef{traceID: traceID, spanID: parent})
}

// TraceHeader is the HTTP header propagating trace context across the
// cluster RPC: "<32 hex trace id>-<16 hex span id>".
const TraceHeader = "X-Spate-Trace"

// InjectTrace writes ctx's span identity into h for cross-process
// propagation. A ctx without a live span injects nothing.
func InjectTrace(ctx context.Context, h http.Header) {
	s, ok := SpanFromContext(ctx)
	if !ok || s.traceID.IsZero() {
		return
	}
	h.Set(TraceHeader, s.traceID.String()+"-"+s.spanID.String())
}

// ExtractTrace parses the trace header, if present and well-formed.
func ExtractTrace(h http.Header) (TraceID, SpanID, bool) {
	v := h.Get(TraceHeader)
	if len(v) != 32+1+16 || v[32] != '-' {
		return TraceID{}, SpanID{}, false
	}
	tid, err := ParseTraceID(v[:32])
	if err != nil {
		return TraceID{}, SpanID{}, false
	}
	sid, err := ParseSpanID(v[33:])
	if err != nil {
		return TraceID{}, SpanID{}, false
	}
	return tid, sid, true
}

// ContextWithTraceHeader applies an incoming request's trace header to ctx,
// so the handler's spans join the caller's trace.
func ContextWithTraceHeader(ctx context.Context, h http.Header) context.Context {
	if tid, sid, ok := ExtractTrace(h); ok {
		return ContextWithRemote(ctx, tid, sid)
	}
	return ctx
}

func (s *Span) finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// End finishes the span. Root spans are pushed into their tracer's ring.
// End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.duration = time.Since(s.start)
	tr := s.tracer
	s.mu.Unlock()
	if tr != nil {
		tr.record(s)
	}
}

// TraceID returns the span's trace id in hex ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil || s.traceID.IsZero() {
		return ""
	}
	return s.traceID.String()
}

// SpanID returns the span's id in hex ("" for a nil span).
func (s *Span) SpanID() string {
	if s == nil || s.spanID.IsZero() {
		return ""
	}
	return s.spanID.String()
}

// SetAttr annotates the span with a key=value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetError marks the span failed. A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.errMsg = err.Error()
	s.mu.Unlock()
}

// AttachRemote grafts a subtree recorded on another process (typically the
// shard side of an RPC, returned on the response) under this span, so the
// coordinator's trace shows the remote work in place.
func (s *Span) AttachRemote(j SpanJSON) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.remote = append(s.remote, j)
	s.mu.Unlock()
}

// AddStage attaches a completed child span for a stage that finished just
// now, back-dating its start by d. For stages whose time accumulates across
// a loop use AddStageAt with the loop's real first start — back-dating from
// "now" would order stages by duration, not by execution.
func (s *Span) AddStage(name string, d time.Duration) {
	s.AddStageAt(name, time.Now().Add(-d), d)
}

// AddStageAt attaches a completed child span with an explicit start and
// duration — the accrual form for stages that run multiple times (e.g.
// per-table compression inside ingest): start is the real first start, so
// the JSON waterfall keeps execution order.
func (s *Span) AddStageAt(name string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	root := s.root
	if root == nil {
		root = s
	}
	if root.nspans.Add(1) > int64(root.maxSpans) {
		root.nspans.Add(-1)
		root.dropped.Add(1)
		return
	}
	c := &Span{
		name: name, start: start, duration: d, done: true,
		parent: s, root: root, traceID: s.traceID, parentID: s.spanID,
		spanID: newSpanID(),
	}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's wall time (so far, if still live).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.duration
	}
	return time.Since(s.start)
}

// Stages returns the immediate children as a per-stage breakdown.
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stage, 0, len(s.children))
	for _, c := range s.children {
		out = append(out, Stage{Name: c.name, Duration: c.Duration()})
	}
	return out
}

func (t *Tracer) record(s *Span) {
	var evicted *Span
	t.mu.Lock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, s)
		t.next = len(t.buf) % t.cap
	} else {
		evicted = t.buf[t.next]
		t.buf[t.next] = s
		t.next = (t.next + 1) % t.cap
	}
	t.mu.Unlock()
	if evicted != nil {
		// A live child span (e.g. held by a long-running request's context)
		// still references its parents, so the evicted tree may stay
		// reachable; release its attribute and remote payloads so an old
		// trace cannot pin decoded chunk memory.
		evicted.release()
	}
}

// release drops the tree's attribute maps and remote subtrees, keeping only
// the cheap name/duration skeleton.
func (s *Span) release() {
	s.mu.Lock()
	s.attrs = nil
	s.remote = nil
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		c.release()
	}
}

// SpanJSON is the wire form of one trace node (GET /api/trace and the
// cluster RPC's shard-side subtree).
type SpanJSON struct {
	Name     string            `json:"name"`
	TraceID  string            `json:"trace_id,omitempty"`
	SpanID   string            `json:"span_id,omitempty"`
	ParentID string            `json:"parent_id,omitempty"`
	Start    time.Time         `json:"start"`
	Millis   float64           `json:"ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Error    string            `json:"error,omitempty"`
	Dropped  int64             `json:"dropped_spans,omitempty"`
	Remote   bool              `json:"remote,omitempty"`
	Children []SpanJSON        `json:"children,omitempty"`
}

// JSON renders the span subtree, usable while the span is still live.
func (s *Span) JSON() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	return s.toJSON(true)
}

func (s *Span) toJSON(top bool) SpanJSON {
	s.mu.Lock()
	out := SpanJSON{Name: s.name, Start: s.start, SpanID: s.spanID.String()}
	if s.done {
		out.Millis = float64(s.duration) / float64(time.Millisecond)
	} else {
		out.Millis = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if top {
		out.TraceID = s.traceID.String()
		if !s.parentID.IsZero() {
			out.ParentID = s.parentID.String()
		}
	}
	if s.errMsg != "" {
		out.Error = s.errMsg
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	if s.root == s {
		out.Dropped = s.dropped.Load()
	}
	kids := append([]*Span(nil), s.children...)
	remote := append([]SpanJSON(nil), s.remote...)
	s.mu.Unlock()
	for _, c := range kids {
		out.Children = append(out.Children, c.toJSON(false))
	}
	for _, r := range remote {
		r.Remote = true
		out.Children = append(out.Children, r)
	}
	return out
}

// Traces returns the retained root traces, oldest first.
func (t *Tracer) Traces() []SpanJSON {
	if t == nil {
		return nil
	}
	out := make([]SpanJSON, 0, len(t.roots()))
	for _, s := range t.roots() {
		out = append(out, s.toJSON(true))
	}
	return out
}

// Find returns the merged tree of the retained trace with the given hex id.
// Roots recorded for the same trace id (one coordinator plus local shard
// subtrees on a shared tracer) merge under the earliest-started root.
func (t *Tracer) Find(id string) (SpanJSON, bool) {
	if t == nil {
		return SpanJSON{}, false
	}
	var match []*Span
	for _, s := range t.roots() {
		if s.traceID.String() == id {
			match = append(match, s)
		}
	}
	if len(match) == 0 {
		return SpanJSON{}, false
	}
	// The root with no remote parent (or the earliest-started) anchors.
	anchor := 0
	for i, s := range match {
		if s.parentID.IsZero() {
			anchor = i
			break
		}
	}
	out := match[anchor].toJSON(true)
	for i, s := range match {
		if i != anchor {
			out.Children = append(out.Children, s.toJSON(true))
		}
	}
	return out, true
}

func (t *Tracer) roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var roots []*Span
	if len(t.buf) < t.cap {
		roots = append(roots, t.buf...)
	} else {
		roots = append(roots, t.buf[t.next:]...)
		roots = append(roots, t.buf[:t.next]...)
	}
	return roots
}
