package obs

import (
	"context"
	"sync"
	"time"
)

// Stage is one named step of a request with its wall time — the per-stage
// breakdown attached to core.IngestReport and core.Result.
type Stage struct {
	Name     string
	Duration time.Duration
}

// Span is one timed operation in a request's wall-time tree. Spans nest:
// StartSpan under a context carrying a live span creates a child. A root
// span is recorded into its Tracer's ring buffer when it ends.
type Span struct {
	name   string
	start  time.Time
	tracer *Tracer // non-nil on roots
	parent *Span

	mu       sync.Mutex
	duration time.Duration
	done     bool
	children []*Span
}

type spanKey struct{}

// DefaultTracer records the most recent request traces process-wide.
var DefaultTracer = NewTracer(64)

// Tracer keeps a ring buffer of the last N finished root spans.
type Tracer struct {
	mu   sync.Mutex
	cap  int
	buf  []*Span
	next int
}

// NewTracer returns a tracer retaining the last n root traces.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = 16
	}
	return &Tracer{cap: n}
}

// StartSpan begins a span named name. If ctx carries a live span the new
// span becomes its child; otherwise it is a root recorded into t when it
// ends. The returned context carries the new span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil // tracing disabled; the nil span is a safe no-op
	}
	s := &Span{name: name, start: time.Now()}
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil && !parent.finished() {
		s.parent = parent
		parent.mu.Lock()
		parent.children = append(parent.children, s)
		parent.mu.Unlock()
	} else {
		s.tracer = t
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartSpan begins a span on the DefaultTracer.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return DefaultTracer.StartSpan(ctx, name)
}

// SpanFromContext returns the live span carried by ctx, if any.
func SpanFromContext(ctx context.Context) (*Span, bool) {
	s, ok := ctx.Value(spanKey{}).(*Span)
	return s, ok && s != nil
}

func (s *Span) finished() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// End finishes the span. Root spans are pushed into their tracer's ring.
// End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.duration = time.Since(s.start)
	tr := s.tracer
	s.mu.Unlock()
	if tr != nil {
		tr.record(s)
	}
}

// AddStage attaches a completed child span with an explicit duration — for
// stages whose time accumulates across a loop rather than one contiguous
// interval (e.g. per-table compression inside ingest).
func (s *Span) AddStage(name string, d time.Duration) {
	if s == nil {
		return
	}
	c := &Span{name: name, start: time.Now().Add(-d), duration: d, done: true, parent: s}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's wall time (so far, if still live).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.duration
	}
	return time.Since(s.start)
}

// Stages returns the immediate children as a per-stage breakdown.
func (s *Span) Stages() []Stage {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stage, 0, len(s.children))
	for _, c := range s.children {
		out = append(out, Stage{Name: c.name, Duration: c.Duration()})
	}
	return out
}

func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, s)
		t.next = len(t.buf) % t.cap
		return
	}
	t.buf[t.next] = s
	t.next = (t.next + 1) % t.cap
}

// SpanJSON is the wire form of one trace node (GET /api/trace).
type SpanJSON struct {
	Name     string     `json:"name"`
	Start    time.Time  `json:"start"`
	Millis   float64    `json:"ms"`
	Children []SpanJSON `json:"children,omitempty"`
}

func (s *Span) toJSON() SpanJSON {
	s.mu.Lock()
	out := SpanJSON{Name: s.name, Start: s.start}
	if s.done {
		out.Millis = float64(s.duration) / float64(time.Millisecond)
	} else {
		out.Millis = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		out.Children = append(out.Children, c.toJSON())
	}
	return out
}

// Traces returns the retained root traces, oldest first.
func (t *Tracer) Traces() []SpanJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var roots []*Span
	if len(t.buf) < t.cap {
		roots = append(roots, t.buf...)
	} else {
		roots = append(roots, t.buf[t.next:]...)
		roots = append(roots, t.buf[:t.next]...)
	}
	t.mu.Unlock()
	out := make([]SpanJSON, 0, len(roots))
	for _, s := range roots {
		out = append(out, s.toJSON())
	}
	return out
}
