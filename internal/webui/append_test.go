package webui

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/telco"
	"spate/internal/wal"
)

// newStreamServer starts an empty engine in streaming mode behind the UI.
func newStreamServer(t *testing.T) (*httptest.Server, *core.Engine, gen.Config) {
	t.Helper()
	cfg := gen.DefaultConfig(0.002)
	cfg.Antennas = 12
	cfg.Users = 80
	cfg.CDRPerEpoch = 40
	cfg.NMSReportsPerCell = 0.5
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 2, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(fs, g.CellTable(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := eng.OpenStreamer(core.StreamerOptions{
		WALDir: t.TempDir(), Sync: wal.SyncNone, GroupWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	window := telco.NewTimeRange(cfg.Start, cfg.Start.Add(2*time.Hour))
	srv := NewServer(eng, g.Cells(), window)
	srv.SetStreamer(st)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, eng, cfg
}

func postAppend(t *testing.T, url string, req AppendJSON, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/api/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestAppendThenExplore: rows POSTed to /api/append answer /api/explore
// immediately, before any seal, and sealing via the API persists them.
func TestAppendThenExplore(t *testing.T) {
	ts, eng, cfg := newStreamServer(t)
	g := gen.New(cfg)
	e0 := telco.EpochOf(cfg.Start)
	nms := g.NMSTable(e0)
	lines := make([]string, nms.Len())
	for i, r := range nms.Rows {
		lines[i] = r.Line()
	}

	var res AppendResultJSON
	if code := postAppend(t, ts.URL, AppendJSON{Table: "NMS", Rows: lines}, &res); code != 200 {
		t.Fatalf("append status %d", code)
	}
	if res.Rows != len(lines) {
		t.Fatalf("append accepted %d rows, want %d", res.Rows, len(lines))
	}
	// Explorable before any seal.
	if eng.Snapshots() != 0 {
		t.Fatalf("engine sealed %d leaves already", eng.Snapshots())
	}
	var out ExploreJSON
	if code := getJSON(t, ts.URL+"/api/explore", &out); code != 200 {
		t.Fatalf("explore status %d", code)
	}
	if out.Rows != int64(len(lines)) {
		t.Fatalf("explore rows = %d, want %d", out.Rows, len(lines))
	}
	// Seal through the API; the answer must not change.
	if code := postAppend(t, ts.URL, AppendJSON{Seal: true}, nil); code != 200 {
		t.Fatalf("seal status %d", code)
	}
	if eng.Snapshots() != 1 {
		t.Fatalf("engine holds %d leaves after seal, want 1", eng.Snapshots())
	}
	var sealed ExploreJSON
	getJSON(t, ts.URL+"/api/explore", &sealed)
	if sealed.Rows != out.Rows {
		t.Fatalf("rows changed across seal: %d -> %d", out.Rows, sealed.Rows)
	}
}

// TestAppendErrors: typed failures surface as distinct HTTP statuses.
func TestAppendErrors(t *testing.T) {
	ts, _, cfg := newStreamServer(t)
	g := gen.New(cfg)
	e0 := telco.EpochOf(cfg.Start)
	line := g.NMSTable(e0).Rows[0].Line()

	if code := postAppend(t, ts.URL, AppendJSON{Table: "NOPE", Rows: []string{line}}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown table: status %d, want 400", code)
	}
	if code := postAppend(t, ts.URL, AppendJSON{Table: "NMS", Rows: []string{"not|a|row"}}, nil); code != http.StatusBadRequest {
		t.Errorf("bad line: status %d, want 400", code)
	}
	// Seal the epoch, then append into it: stale -> 409.
	if code := postAppend(t, ts.URL, AppendJSON{Table: "NMS", Rows: []string{line}}, nil); code != 200 {
		t.Fatalf("append status %d", code)
	}
	if code := postAppend(t, ts.URL, AppendJSON{Seal: true}, nil); code != 200 {
		t.Fatalf("seal status %d", code)
	}
	if code := postAppend(t, ts.URL, AppendJSON{Table: "NMS", Rows: []string{line}}, nil); code != http.StatusConflict {
		t.Errorf("stale append: status %d, want 409", code)
	}
	// GET is not an append (it falls through to the static UI mux).
	resp, err := http.Get(ts.URL + "/api/append")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Errorf("GET append: status 200, want an error")
	}
}

// TestAppendWithoutStreamer: a batch-mode server refuses appends with 503.
func TestAppendWithoutStreamer(t *testing.T) {
	ts, _ := newTestServer(t)
	if code := postAppend(t, ts.URL, AppendJSON{Table: "NMS", Rows: []string{"x"}}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", code)
	}
}
