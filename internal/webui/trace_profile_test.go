package webui

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"spate/internal/cluster"
	"spate/internal/obs"
	"spate/internal/telco"
)

// TestExploreTraceAndProfile drives /api/explore with profile=1 and checks
// the answer links to a retrievable trace and carries the storage profile.
func TestExploreTraceAndProfile(t *testing.T) {
	ts, cfg := newTestServer(t)

	var out struct {
		Rows     int64  `json:"rows"`
		CacheHit bool   `json:"cache_hit"`
		TraceID  string `json:"trace_id"`
		Profile  *struct {
			ResultCacheHit bool `json:"result_cache_hit"`
		} `json:"profile"`
	}
	u := ts.URL + "/api/explore?profile=1&from=" + cfg.Start.Format(telco.TimeLayout) +
		"&to=" + cfg.Start.Add(45*time.Minute).Format(telco.TimeLayout)
	if code := getJSON(t, u, &out); code != 200 {
		t.Fatalf("explore status %d", code)
	}
	if out.TraceID == "" {
		t.Fatal("explore answer carries no trace_id")
	}
	if out.Profile == nil || out.Profile.ResultCacheHit {
		t.Fatalf("first profile wrong: %+v", out.Profile)
	}

	// The repeat hits the result cache; the profile must say so.
	if code := getJSON(t, u, &out); code != 200 {
		t.Fatalf("repeat explore status %d", code)
	}
	if !out.CacheHit || out.Profile == nil || !out.Profile.ResultCacheHit {
		t.Fatalf("cache hit not reflected in profile: hit=%v profile=%+v", out.CacheHit, out.Profile)
	}

	// Nonzero storage work shows through SQL EXPLAIN ANALYZE, whose row
	// scans must decode leaves (aggregate explores are summary-served, so
	// their storage profile is legitimately empty).
	var sqlOut struct {
		Rows [][]string `json:"rows"`
	}
	if code := getJSON(t, ts.URL+"/api/sql?q=EXPLAIN+ANALYZE+SELECT+COUNT(*)+FROM+CDR", &sqlOut); code != 200 {
		t.Fatalf("sql explain status %d", code)
	}
	var leafLine string
	for _, r := range sqlOut.Rows {
		if strings.HasPrefix(r[0], "leaves: ") {
			leafLine = r[0]
		}
	}
	if leafLine == "" || strings.HasPrefix(leafLine, "leaves: 0 ") {
		t.Fatalf("EXPLAIN ANALYZE reports no leaf scans: %+v", sqlOut.Rows)
	}

	// The trace id resolves to one span tree at /api/trace?id=.
	var tree struct {
		Name     string `json:"name"`
		TraceID  string `json:"trace_id"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if code := getJSON(t, ts.URL+"/api/trace?id="+out.TraceID, &tree); code != 200 {
		t.Fatalf("trace lookup status %d", code)
	}
	if tree.TraceID != out.TraceID || len(tree.Children) == 0 {
		t.Fatalf("trace tree = %+v", tree)
	}

	// An unknown id is a JSON 404, not an empty 200.
	var errBody map[string]string
	if code := getJSON(t, ts.URL+"/api/trace?id=ffffffffffffffffffffffffffffffff", &errBody); code != 404 {
		t.Fatalf("unknown trace id status %d", code)
	}

	// Without profile=1 the profile stays off the wire.
	var plain struct {
		Profile *struct{} `json:"profile"`
	}
	getJSON(t, ts.URL+"/api/explore", &plain)
	if plain.Profile != nil {
		t.Error("profile included without profile=1")
	}
}

// TestSlowQueryLogEndpoint lowers the global threshold so every request
// qualifies, then checks /api/slowlog serves the entries with trace ids and
// /metrics counts them.
func TestSlowQueryLogEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	old := obs.DefaultSlowLog.Threshold()
	obs.DefaultSlowLog.SetThreshold(time.Nanosecond)
	t.Cleanup(func() { obs.DefaultSlowLog.SetThreshold(old) })

	resp, err := http.Get(ts.URL + "/api/explore")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var entries []struct {
		Kind    string  `json:"kind"`
		Query   string  `json:"query"`
		TraceID string  `json:"trace_id"`
		Millis  float64 `json:"ms"`
	}
	if code := getJSON(t, ts.URL+"/api/slowlog", &entries); code != 200 {
		t.Fatalf("slowlog status %d", code)
	}
	var found bool
	for _, e := range entries {
		if e.Kind == "http /api/explore" {
			found = true
			if e.TraceID == "" {
				t.Errorf("slow entry has no trace id: %+v", e)
			}
		}
	}
	if !found {
		t.Fatalf("explore request not in slow log: %+v", entries)
	}
}

// TestClusterSQLAndTrace exercises the cluster server's /api/sql and the
// trace/profile fields on its explore answers.
func TestClusterSQLAndTrace(t *testing.T) {
	ts, _, window := newClusterTestServer(t, cluster.Config{Shards: 2})

	var out struct {
		Rows    int64  `json:"rows"`
		Partial bool   `json:"partial"`
		TraceID string `json:"trace_id"`
		Profile *struct {
			Shards []struct {
				Shard   int  `json:"shard"`
				Missing bool `json:"missing"`
			} `json:"shards"`
		} `json:"profile"`
	}
	u := ts.URL + "/api/explore?profile=1&from=" + window.From.Format("20060102150405") +
		"&to=" + window.To.Format("20060102150405")
	if code := getJSON(t, u, &out); code != 200 {
		t.Fatalf("cluster explore status %d", code)
	}
	if out.Partial {
		t.Fatal("unexpected partial answer")
	}
	if out.TraceID == "" {
		t.Fatal("cluster explore carries no trace_id")
	}
	if out.Profile == nil || len(out.Profile.Shards) == 0 {
		t.Fatalf("cluster profile missing shard entries: %+v", out.Profile)
	}

	// The trace is rooted at the HTTP middleware span; the coordinator's
	// scatter-gather span nests under it.
	var tree struct {
		Name     string `json:"name"`
		Children []struct {
			Name string `json:"name"`
		} `json:"children"`
	}
	if code := getJSON(t, ts.URL+"/api/trace?id="+out.TraceID, &tree); code != 200 {
		t.Fatalf("cluster trace lookup status %d", code)
	}
	var found bool
	for _, c := range tree.Children {
		if c.Name == "cluster_explore" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cluster_explore span not under trace root %q: %+v", tree.Name, tree.Children)
	}

	// SQL over the cluster coordinator.
	var sqlOut struct {
		Cols []string   `json:"cols"`
		Rows [][]string `json:"rows"`
	}
	if code := getJSON(t, ts.URL+"/api/sql?q=SELECT+COUNT(*)+FROM+CDR", &sqlOut); code != 200 {
		t.Fatalf("cluster sql status %d", code)
	}
	if len(sqlOut.Rows) != 1 || sqlOut.Rows[0][0] == "0" {
		t.Fatalf("cluster sql answer = %+v", sqlOut)
	}
}
