package webui

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"spate/internal/cluster"
	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/lifecycle"
	"spate/internal/obs"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// newLifecycleTestServer boots a single-node UI server with (or without) an
// attached maintenance manager.
func newLifecycleTestServer(t *testing.T, attach bool) *httptest.Server {
	t.Helper()
	cfg := gen.DefaultConfig(0.002)
	cfg.Antennas = 12
	cfg.Users = 80
	cfg.CDRPerEpoch = 40
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 2, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(fs, g.CellTable(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0 := telco.EpochOf(cfg.Start)
	for i := 0; i < 2; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		if _, err := eng.Ingest(sn); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(eng, g.Cells(), telco.NewTimeRange(cfg.Start, cfg.Start.Add(time.Hour)))
	if attach {
		m := lifecycle.New(eng, lifecycle.Config{Obs: obs.NewNoop()})
		t.Cleanup(m.Close)
		srv.SetLifecycle(m)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestLifecycleEndpoint covers the single-node /api/lifecycle surface: 503
// without a manager, status and trigger/pause/resume with one.
func TestLifecycleEndpoint(t *testing.T) {
	bare := newLifecycleTestServer(t, false)
	var errBody map[string]any
	if code := getJSON(t, bare.URL+"/api/lifecycle", &errBody); code != http.StatusServiceUnavailable {
		t.Fatalf("detached GET status = %d, want 503", code)
	}

	ts := newLifecycleTestServer(t, true)
	var st lifecycle.Status
	if code := getJSON(t, ts.URL+"/api/lifecycle", &st); code != 200 {
		t.Fatalf("GET status = %d", code)
	}
	if len(st.Jobs) != 3 || st.Paused {
		t.Fatalf("status = %+v", st)
	}

	var rec lifecycle.RunRecord
	if code := postJSON(t, ts.URL+"/api/lifecycle?job="+lifecycle.JobScrub, &rec); code != 200 {
		t.Fatalf("trigger status = %d", code)
	}
	if rec.Job != lifecycle.JobScrub || rec.Err != "" || rec.Details["replicas_checked"] == 0 {
		t.Fatalf("trigger record = %+v", rec)
	}

	if code := postJSON(t, ts.URL+"/api/lifecycle?action=pause", &st); code != 200 || !st.Paused {
		t.Fatalf("pause: code=%d status=%+v", code, st)
	}
	if code := postJSON(t, ts.URL+"/api/lifecycle?action=resume", &st); code != 200 || st.Paused {
		t.Fatalf("resume: code=%d status=%+v", code, st)
	}

	if code := postJSON(t, ts.URL+"/api/lifecycle?job=defrag", &errBody); code != http.StatusInternalServerError {
		t.Fatalf("unknown job status = %d, want 500", code)
	}
	if code := postJSON(t, ts.URL+"/api/lifecycle?action=shred", &errBody); code != http.StatusBadRequest {
		t.Fatalf("unknown action status = %d, want 400", code)
	}

	// The run shows up in the history the panel renders.
	if code := getJSON(t, ts.URL+"/api/lifecycle", &st); code != 200 {
		t.Fatalf("GET status = %d", code)
	}
	if len(st.History) == 0 || st.History[0].Job != lifecycle.JobScrub {
		t.Fatalf("history = %+v", st.History)
	}
}

// TestClusterLifecycleEndpoint checks the cluster server proxies the same
// surface through the coordinator fan-out.
func TestClusterLifecycleEndpoint(t *testing.T) {
	gc := gen.DefaultConfig(0.002)
	gc.Antennas = 12
	gc.Users = 60
	gc.CDRPerEpoch = 20
	g := gen.New(gc)
	lc, err := cluster.StartLocal(cluster.Config{Shards: 2}, g.CellTable(), cluster.LocalOptions{
		Dir:       t.TempDir(),
		Lifecycle: &lifecycle.Config{Obs: obs.NewNoop()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	e0 := telco.EpochOf(gc.Start)
	window := telco.NewTimeRange(e0.Start(), (e0 + 2).Start())
	srv := NewClusterServer(lc.Coordinator, g.Cells(), window)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	var sweep cluster.LifecycleSweep
	if code := getJSON(t, ts.URL+"/api/lifecycle", &sweep); code != 200 {
		t.Fatalf("GET status = %d", code)
	}
	if sweep.Failed != 0 || sweep.Partial || len(sweep.Nodes) != 2 {
		t.Fatalf("status sweep = %+v", sweep)
	}
	for _, nl := range sweep.Nodes {
		if nl.Status == nil || len(nl.Status.Jobs) != 3 {
			t.Fatalf("node %s status = %+v", nl.URL, nl.Status)
		}
	}

	if code := postJSON(t, ts.URL+"/api/lifecycle?job="+lifecycle.JobScrub, &sweep); code != 200 {
		t.Fatalf("trigger status = %d", code)
	}
	if sweep.Failed != 0 || sweep.Partial {
		t.Fatalf("trigger sweep = %+v", sweep)
	}
	for _, nl := range sweep.Nodes {
		if nl.Record == nil || nl.Record.Job != lifecycle.JobScrub {
			t.Fatalf("node %s record = %+v", nl.URL, nl.Record)
		}
	}

	if code := postJSON(t, ts.URL+"/api/lifecycle?action=pause", &sweep); code != 200 {
		t.Fatalf("pause status = %d", code)
	}
	for _, nl := range sweep.Nodes {
		if nl.Status == nil || !nl.Status.Paused {
			t.Fatalf("node %s not paused", nl.URL)
		}
	}
	if code := postJSON(t, ts.URL+"/api/lifecycle?action=resume", &sweep); code != 200 {
		t.Fatalf("resume status = %d", code)
	}

	// An unknown job fails on every node; the proxy degrades to 503.
	var errBody map[string]any
	if code := postJSON(t, ts.URL+"/api/lifecycle?job=defrag", &errBody); code != http.StatusServiceUnavailable {
		t.Fatalf("unknown job status = %d, want 503", code)
	}
}
