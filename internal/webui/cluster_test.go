package webui

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"spate/internal/cluster"
	_ "spate/internal/compress/all"
	"spate/internal/gen"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

// newClusterTestServer boots a 2-shard × 2-replica in-process cluster with
// two days of trace behind a ClusterServer. The coordinator reports into
// obs.Default (the config default), which is the registry the server's
// /metrics endpoint exposes — so hedge and retry counters must show there.
func newClusterTestServer(t *testing.T, cfg cluster.Config) (*httptest.Server, *cluster.Local, telco.TimeRange) {
	t.Helper()
	gc := gen.DefaultConfig(0.002)
	gc.Antennas = 12
	gc.Users = 60
	gc.CDRPerEpoch = 20
	gc.NMSReportsPerCell = 0.25
	g := gen.New(gc)
	lc, err := cluster.StartLocal(cfg, g.CellTable(), cluster.LocalOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	e0 := telco.EpochOf(gc.Start)
	n := 2 * telco.EpochsPerDay
	for i := 0; i < n; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		if err := lc.Coordinator.Ingest(context.Background(), sn); err != nil {
			t.Fatal(err)
		}
	}
	if err := lc.Coordinator.FinishIngest(context.Background()); err != nil {
		t.Fatal(err)
	}
	window := telco.NewTimeRange(e0.Start(), (e0 + telco.Epoch(n)).Start())
	srv := NewClusterServer(lc.Coordinator, g.Cells(), window)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, lc, window
}

func TestClusterServerEndpoints(t *testing.T) {
	cfg := cluster.Config{
		Shards:         2,
		Replicas:       2,
		ExploreTimeout: 500 * time.Millisecond,
		HedgeDelay:     10 * time.Millisecond,
		Retries:        -1, // no retries: a slow slot degrades, it is not re-fought
	}
	ts, lc, window := newClusterTestServer(t, cfg)

	// Healthy scatter-gather over both shards.
	var out ClusterExploreJSON
	if code := getJSON(t, ts.URL+"/api/explore", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Rows == 0 || len(out.Cells) == 0 || out.Partial || out.ShardsQueried != 2 {
		t.Fatalf("explore = %+v", out)
	}

	// A slow primary replica loses to its hedge.
	day0 := cluster.NewShardMap(cluster.Config{Shards: 2}, nil).
		TimeShardOf(telco.EpochOf(window.From))
	lc.Node(day0, 0).SetExploreDelay(300 * time.Millisecond)
	w0 := telco.TimeRange{From: window.From, To: window.From.Add(24 * time.Hour)}
	url := ts.URL + "/api/explore?from=" + w0.From.UTC().Format(telco.TimeLayout) +
		"&to=" + w0.To.UTC().Format(telco.TimeLayout)
	var hedged ClusterExploreJSON
	if code := getJSON(t, url, &hedged); code != 200 {
		t.Fatalf("status %d", code)
	}
	if hedged.HedgeWins == 0 || hedged.Partial {
		t.Fatalf("hedged explore = %+v", hedged)
	}
	lc.Node(day0, 0).SetExploreDelay(0)

	// Both replicas of one shard stall past the deadline: the full-window
	// answer degrades to HTTP 200 with partial:true and the missing day
	// enumerated, instead of failing outright.
	other := 1 - day0
	lc.Node(other, 0).SetExploreDelay(2 * time.Second)
	lc.Node(other, 1).SetExploreDelay(2 * time.Second)
	var partial ClusterExploreJSON
	if code := getJSON(t, ts.URL+"/api/explore", &partial); code != 200 {
		t.Fatalf("status %d", code)
	}
	if !partial.Partial || partial.ShardsFailed != 1 || len(partial.Missing) == 0 {
		t.Fatalf("partial explore = %+v", partial)
	}
	if partial.Rows == 0 || partial.Rows >= out.Rows {
		t.Fatalf("partial rows = %d (full %d)", partial.Rows, out.Rows)
	}
	lc.Node(other, 0).SetExploreDelay(0)
	lc.Node(other, 1).SetExploreDelay(0)

	// The coordinator's counters are visible on this server's /metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	if m := regexp.MustCompile(`(?m)^spate_cluster_hedge_wins_total ([1-9]\d*)$`).
		FindString(metrics); m == "" {
		t.Error("no nonzero spate_cluster_hedge_wins_total in /metrics")
	}
	for _, want := range []string{
		"spate_cluster_hedged_requests_total",
		`spate_cluster_retries_total{op="explore"}`,
		"spate_cluster_partial_results_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Health probes every node.
	var health []NodeHealthJSON
	if code := getJSON(t, ts.URL+"/api/health", &health); code != 200 {
		t.Fatalf("health status %d", code)
	}
	if len(health) != 4 {
		t.Fatalf("health reports %d nodes, want 4", len(health))
	}
	for _, h := range health {
		if !h.OK {
			t.Errorf("node %s unhealthy: %s", h.URL, h.Error)
		}
	}

	// Cells inventory comes from the coordinator's generator config.
	var cells []CellJSON
	if code := getJSON(t, ts.URL+"/api/cells", &cells); code != 200 {
		t.Fatalf("cells status %d", code)
	}
	if len(cells) != 36 {
		t.Errorf("cells = %d, want 36", len(cells))
	}
}
