// Streaming append endpoint of the SPATE-UI: POST /api/append feeds rows
// into the engine's streaming ingest path (WAL + memtable), so they are
// explorable as soon as the response returns — before their epoch seals
// into a compressed leaf. In cluster mode the coordinator routes the rows
// to the slots owning them by the day-block shard map.

package webui

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"spate/internal/core"
	"spate/internal/serving"
	"spate/internal/telco"
)

// AppendJSON is the wire form of a streaming append request.
type AppendJSON struct {
	// Table names the schema; Rows are wire-text record lines (the same
	// delimiter format the snapshot tables use).
	Table string   `json:"table"`
	Rows  []string `json:"rows"`
	// Seal requests a seal of every buffered epoch after the rows apply —
	// the streaming equivalent of finishing a batch load.
	Seal bool `json:"seal,omitempty"`
}

// AppendResultJSON is the wire form of a streaming append answer.
type AppendResultJSON struct {
	Rows int `json:"rows"`
}

// decodeAppendRows parses a request's wire-text lines against its table's
// schema.
func decodeAppendRows(req *AppendJSON) ([]telco.Record, error) {
	if len(req.Rows) == 0 {
		return nil, nil
	}
	schema := telco.SchemaByName(req.Table)
	if schema == nil {
		return nil, fmt.Errorf("unknown table %q", req.Table)
	}
	recs := make([]telco.Record, 0, len(req.Rows))
	for _, line := range req.Rows {
		rec, err := telco.DecodeLine(schema, line)
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// appendErr maps the streaming sentinels onto HTTP: backpressure is 429
// with a Retry-After hint derived from the streamer's actual backlog
// (see core.BackpressureError), stale epochs and finalized stores are
// 409.
func appendErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrBackpressure):
		serving.WriteRetryAfter(w.Header(), serving.RetryAfterFromError(err, time.Second))
		httpErr(w, http.StatusTooManyRequests, err)
	case errors.Is(err, core.ErrStaleEpoch), errors.Is(err, core.ErrFinalized):
		httpErr(w, http.StatusConflict, err)
	default:
		httpErr(w, http.StatusInternalServerError, err)
	}
}

// SetStreamer attaches the engine's streaming ingest path; /api/append
// serves 503 until one is set.
func (s *Server) SetStreamer(st *core.Streamer) { s.streamer = st }

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	st := s.streamer
	if st == nil {
		httpErr(w, http.StatusServiceUnavailable, fmt.Errorf("streaming ingest is not enabled (start with -stream)"))
		return
	}
	var req AppendJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	recs, err := decodeAppendRows(&req)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	if len(recs) > 0 {
		if err := st.Append(r.Context(), req.Table, recs); err != nil {
			appendErr(w, err)
			return
		}
	}
	if req.Seal {
		if err := st.SealAll(r.Context()); err != nil {
			httpErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, AppendResultJSON{Rows: len(recs)})
}

func (s *ClusterServer) handleAppend(w http.ResponseWriter, r *http.Request) {
	var req AppendJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	recs, err := decodeAppendRows(&req)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	n := 0
	if len(recs) > 0 {
		n, err = s.coord.Append(r.Context(), req.Table, recs)
		if err != nil {
			appendErr(w, err)
			return
		}
	}
	if req.Seal {
		if err := s.coord.FlushStreams(r.Context()); err != nil {
			httpErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, AppendResultJSON{Rows: n})
}
