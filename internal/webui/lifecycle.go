// /api/lifecycle — the maintenance daemon's HTTP surface. GET reports the
// scheduler state and recent run history; POST triggers a job by hand
// (?job=decay|scrub|compact) or pauses/resumes the schedule
// (?action=pause|resume). The cluster server proxies the same surface
// through the coordinator's fleet fan-out, so one call maintains every
// shard and partial completion is visible per node.

package webui

import (
	"fmt"
	"net/http"

	"spate/internal/cluster"
	"spate/internal/lifecycle"
)

// SetLifecycle attaches the maintenance manager whose state /api/lifecycle
// serves. Callers own Start/Close.
func (s *Server) SetLifecycle(m *lifecycle.Manager) { s.lc = m }

func (s *Server) handleLifecycleGet(w http.ResponseWriter, _ *http.Request) {
	if s.lc == nil {
		httpErr(w, http.StatusServiceUnavailable, fmt.Errorf("webui: no lifecycle manager attached"))
		return
	}
	writeJSON(w, s.lc.Status())
}

func (s *Server) handleLifecyclePost(w http.ResponseWriter, r *http.Request) {
	if s.lc == nil {
		httpErr(w, http.StatusServiceUnavailable, fmt.Errorf("webui: no lifecycle manager attached"))
		return
	}
	switch action := r.URL.Query().Get("action"); action {
	case "pause":
		s.lc.Pause()
		writeJSON(w, s.lc.Status())
	case "resume":
		s.lc.Resume()
		writeJSON(w, s.lc.Status())
	case "", "trigger":
		rec, err := s.lc.Trigger(r.URL.Query().Get("job"))
		if err != nil {
			httpErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, rec)
	default:
		httpErr(w, http.StatusBadRequest, fmt.Errorf("webui: unknown action %q", action))
	}
}

func (s *ClusterServer) handleLifecycleGet(w http.ResponseWriter, r *http.Request) {
	sweep, err := s.coord.LifecycleStatus(r.Context())
	if err != nil {
		httpErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, sweep)
}

func (s *ClusterServer) handleLifecyclePost(w http.ResponseWriter, r *http.Request) {
	var (
		sweep cluster.LifecycleSweep
		err   error
	)
	switch action := r.URL.Query().Get("action"); action {
	case "pause":
		sweep, err = s.coord.PauseLifecycle(r.Context(), true)
	case "resume":
		sweep, err = s.coord.PauseLifecycle(r.Context(), false)
	case "", "trigger":
		sweep, err = s.coord.RunLifecycle(r.Context(), r.URL.Query().Get("job"))
	default:
		httpErr(w, http.StatusBadRequest, fmt.Errorf("webui: unknown action %q", action))
		return
	}
	if err != nil {
		httpErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, sweep)
}
