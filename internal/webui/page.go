package webui

// indexHTML is the built-in exploration page: a canvas heatmap of per-cell
// activity with window inputs and drag-to-select bounding boxes. Format
// arguments: default from / to timestamps.
const indexHTML = `<!DOCTYPE html>
<html><head><title>SPATE-UI</title><style>
body{font-family:sans-serif;margin:16px;background:#1c1f26;color:#e8e8e8}
canvas{background:#10131a;border:1px solid #444}
input{background:#2a2e38;color:#eee;border:1px solid #555;padding:4px}
button{padding:4px 12px} #hl{font-size:13px;color:#9fd;max-width:800px}
</style></head><body>
<h2>SPATE &mdash; spatio-temporal telco data exploration</h2>
<p>window: <input id="from" value="%s" size="15"> .. <input id="to" value="%s" size="15">
<button onclick="explore()">explore</button>
<span id="meta"></span></p>
<canvas id="map" width="800" height="750" title="drag to select a bounding box"></canvas>
<div id="hl"></div>
<script>
const cv=document.getElementById('map'),ctx=cv.getContext('2d');
const W=80,H=75; let box=null,drag=null;
function px(x){return x/W*cv.width} function py(y){return cv.height-y/H*cv.height}
cv.onmousedown=e=>{drag=[e.offsetX,e.offsetY];}
cv.onmouseup=e=>{ if(!drag)return;
  const x1=drag[0]/cv.width*W,y1=(cv.height-drag[1])/cv.height*H;
  const x2=e.offsetX/cv.width*W,y2=(cv.height-e.offsetY)/cv.height*H;
  if(Math.abs(e.offsetX-drag[0])<5){box=null}else{box=[Math.min(x1,x2),Math.min(y1,y2),Math.max(x1,x2),Math.max(y1,y2)]}
  drag=null; explore(); }
async function explore(){
  let u='/api/explore?from='+document.getElementById('from').value+'&to='+document.getElementById('to').value;
  if(box)u+='&minx='+box[0]+'&miny='+box[1]+'&maxx='+box[2]+'&maxy='+box[3];
  const r=await fetch(u); const d=await r.json();
  if(d.error){document.getElementById('meta').textContent=d.error;return}
  document.getElementById('meta').textContent=
    d.rows+' rows · level '+d.covering_level+(d.cache_hit?' · cache':'')+(d.decayed_leaves?' · '+d.decayed_leaves+' decayed':'');
  ctx.clearRect(0,0,cv.width,cv.height);
  let max=1; for(const c of d.cells||[]) max=Math.max(max,c.rows);
  for(const c of d.cells||[]){
    const t=Math.sqrt(c.rows/max);
    ctx.fillStyle='rgba('+Math.round(255*t)+','+Math.round(80+100*(1-t))+',60,0.75)';
    ctx.beginPath();ctx.arc(px(c.x),py(c.y),2+10*t,0,7);ctx.fill();
  }
  if(box){ctx.strokeStyle='#6cf';ctx.strokeRect(px(box[0]),py(box[3]),px(box[2])-px(box[0]),py(box[1])-py(box[3]))}
  const hl=(d.highlights||[]).map(h=>h.kind==='categorical'
    ?h.attr+'='+h.value+' ('+(100*h.freq).toFixed(2)+'%%)'
    :h.attr+' peak '+h.peak.toFixed(0)).join(' · ');
  document.getElementById('hl').textContent=hl?('highlights: '+hl):'';
}
explore();
</script></body></html>`
