package webui

// indexHTML is the built-in exploration page: a canvas heatmap of per-cell
// activity with window inputs and drag-to-select bounding boxes. Format
// arguments: default from / to timestamps.
const indexHTML = `<!DOCTYPE html>
<html><head><title>SPATE-UI</title><style>
body{font-family:sans-serif;margin:16px;background:#1c1f26;color:#e8e8e8}
canvas{background:#10131a;border:1px solid #444}
input{background:#2a2e38;color:#eee;border:1px solid #555;padding:4px}
button{padding:4px 12px} #hl{font-size:13px;color:#9fd;max-width:800px}
#stats{font-size:12px;color:#bcd;max-width:800px;margin-top:10px;border-top:1px solid #333;padding-top:6px}
#stats b{color:#fd9}
</style></head><body>
<h2>SPATE &mdash; spatio-temporal telco data exploration</h2>
<p>window: <input id="from" value="%s" size="15"> .. <input id="to" value="%s" size="15">
<button onclick="explore()">explore</button>
<span id="meta"></span></p>
<canvas id="map" width="800" height="750" title="drag to select a bounding box"></canvas>
<div id="hl"></div>
<div id="stats">loading stats&hellip;</div>
<script>
const cv=document.getElementById('map'),ctx=cv.getContext('2d');
const W=80,H=75; let box=null,drag=null;
function px(x){return x/W*cv.width} function py(y){return cv.height-y/H*cv.height}
cv.onmousedown=e=>{drag=[e.offsetX,e.offsetY];}
cv.onmouseup=e=>{ if(!drag)return;
  const x1=drag[0]/cv.width*W,y1=(cv.height-drag[1])/cv.height*H;
  const x2=e.offsetX/cv.width*W,y2=(cv.height-e.offsetY)/cv.height*H;
  if(Math.abs(e.offsetX-drag[0])<5){box=null}else{box=[Math.min(x1,x2),Math.min(y1,y2),Math.max(x1,x2),Math.max(y1,y2)]}
  drag=null; explore(); }
async function explore(){
  let u='/api/explore?from='+document.getElementById('from').value+'&to='+document.getElementById('to').value;
  if(box)u+='&minx='+box[0]+'&miny='+box[1]+'&maxx='+box[2]+'&maxy='+box[3];
  const r=await fetch(u); const d=await r.json();
  if(d.error){document.getElementById('meta').textContent=d.error;return}
  document.getElementById('meta').textContent=
    d.rows+' rows · level '+d.covering_level+(d.cache_hit?' · cache':'')+(d.decayed_leaves?' · '+d.decayed_leaves+' decayed':'');
  ctx.clearRect(0,0,cv.width,cv.height);
  let max=1; for(const c of d.cells||[]) max=Math.max(max,c.rows);
  for(const c of d.cells||[]){
    const t=Math.sqrt(c.rows/max);
    ctx.fillStyle='rgba('+Math.round(255*t)+','+Math.round(80+100*(1-t))+',60,0.75)';
    ctx.beginPath();ctx.arc(px(c.x),py(c.y),2+10*t,0,7);ctx.fill();
  }
  if(box){ctx.strokeStyle='#6cf';ctx.strokeRect(px(box[0]),py(box[3]),px(box[2])-px(box[0]),py(box[1])-py(box[3]))}
  const hl=(d.highlights||[]).map(h=>h.kind==='categorical'
    ?h.attr+'='+h.value+' ('+(100*h.freq).toFixed(2)+'%%)'
    :h.attr+' peak '+h.peak.toFixed(0)).join(' · ');
  document.getElementById('hl').textContent=hl?('highlights: '+hl):'';
}
// Live stats panel: poll /api/stats and surface the headline series.
function metric(snap,name){return snap.find(m=>m.name===name)}
function firstVal(snap,name){const m=metric(snap,name);return m&&m.series.length?m.series[0].value:0}
function sumVal(snap,name){const m=metric(snap,name);return m?m.series.reduce((a,s)=>a+s.value,0):0}
function fmtBytes(b){const u=['B','KB','MB','GB','TB'];let i=0;while(b>=1024&&i<u.length-1){b/=1024;i++}return b.toFixed(1)+u[i]}
async function stats(){
  try{
    const r=await fetch('/api/stats'); const snap=await r.json();
    const parts=[];
    parts.push('<b>ingest</b> '+firstVal(snap,'spate_ingest_snapshots_total')+' snaps / '+
      firstVal(snap,'spate_ingest_rows_total')+' rows');
    const ex=metric(snap,'spate_explore_seconds');
    if(ex&&ex.series.length&&ex.series[0].count){
      const s=ex.series[0];
      parts.push('<b>explore</b> '+s.count+' q · p50 '+(1000*s.quantiles.p50).toFixed(1)+
        'ms · p99 '+(1000*s.quantiles.p99).toFixed(1)+'ms');
    }
    const hits=firstVal(snap,'spate_explore_cache_hits_total'),
          miss=firstVal(snap,'spate_explore_cache_misses_total');
    if(hits+miss>0)parts.push('<b>cache</b> '+(100*hits/(hits+miss)).toFixed(0)+'%% hit');
    parts.push('<b>dfs</b> R '+fmtBytes(firstVal(snap,'spate_dfs_read_bytes_total'))+
      ' / W '+fmtBytes(firstVal(snap,'spate_dfs_written_bytes_total'))+
      ' · '+firstVal(snap,'spate_dfs_live_nodes')+' nodes'+
      (firstVal(snap,'spate_dfs_under_replicated_blocks')?' · <b>'+
        firstVal(snap,'spate_dfs_under_replicated_blocks')+' under-replicated</b>':''));
    const cr=metric(snap,'spate_compress_ratio');
    if(cr)parts.push('<b>ratio</b> '+cr.series.map(s=>(s.labels&&s.labels.codec||'?')+' '+s.value.toFixed(2)).join(', '));
    const cc=metric(snap,'spate_column_codec_chunks');
    if(cc&&cc.series.length){
      const byCodec={};
      cc.series.forEach(s=>{const k=s.labels&&s.labels.codec||'?';byCodec[k]=(byCodec[k]||0)+s.value});
      parts.push('<b>columns</b> '+Object.keys(byCodec).sort().map(k=>k+' '+byCodec[k]).join(' · ')+' chunks');
    }
    const pw=firstVal(snap,'spate_scan_parallel_workers'),
          pu=firstVal(snap,'spate_scan_parallel_units_total');
    if(pw>1||pu>0){
      const sf=firstVal(snap,'spate_scan_singleflight_shared_total')+
               firstVal(snap,'spate_result_singleflight_shared_total');
      parts.push('<b>parallel</b> '+pw+' workers · '+pu+' units'+
        (sf?' · '+sf+' shared':''));
    }
    const adm=sumVal(snap,'spate_serving_admitted_total'),
          shed=sumVal(snap,'spate_serving_shed_total');
    if(adm+shed>0)parts.push('<b>serving</b> '+adm+' admitted'+
      (shed?' · <b>'+shed+' shed</b>':''));
    const rce=sumVal(snap,'spate_result_cache_entries'),
          rcb=sumVal(snap,'spate_result_cache_bytes');
    if(rce>0)parts.push('<b>results</b> '+rce+' cached · '+fmtBytes(rcb));
    const dec=firstVal(snap,'spate_decay_bytes_freed_total');
    if(dec)parts.push('<b>decay</b> '+fmtBytes(dec)+' freed');
    const slow=firstVal(snap,'spate_slow_queries_total');
    if(slow)parts.push('<b>slow</b> '+slow+' queries');
    const p99=metric(snap,'spate_http_p99_seconds');
    if(p99&&p99.series.length){
      const worst=p99.series.reduce((a,s)=>s.value>a.value?s:a);
      if(worst.value>0)parts.push('<b>http p99</b> '+(1000*worst.value).toFixed(1)+'ms ('+
        (worst.labels&&worst.labels.endpoint||'?')+')');
    }
    const lcm=metric(snap,'spate_lifecycle_runs_total');
    if(lcm&&lcm.series.length){
      const runs=lcm.series.reduce((a,s)=>a+s.value,0);
      const rep=firstVal(snap,'spate_lifecycle_blocks_repaired_total'),
            mrg=firstVal(snap,'spate_lifecycle_chunks_merged_total');
      if(runs)parts.push('<b>lifecycle</b> '+runs+' runs'+
        (rep?' · '+rep+' replicas repaired':'')+
        (mrg?' · '+mrg+' chunks merged':''));
    }
    document.getElementById('stats').innerHTML=parts.join(' &nbsp;|&nbsp; ');
  }catch(e){}
}
stats(); setInterval(stats,2000);
explore();
</script></body></html>`
