package webui

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"spate/internal/obs"
)

// TestMetricsEndpoint drives one exploration through the HTTP stack and
// asserts /metrics exposes every subsystem's series end-to-end: ingest
// stage histograms, explore latency and cache counters, per-codec
// compression accounting, DFS op latencies and replication gauges, and the
// middleware's per-endpoint request counts.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	// One exploration (a cache miss on this fresh engine) so the explore
	// and HTTP series below have advanced through this very server.
	resp, err := http.Get(ts.URL + "/api/explore")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("explore status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, want := range []string{
		// Ingest pipeline (4 snapshots ingested by newTestServer).
		"# TYPE spate_ingest_stage_seconds histogram",
		`spate_ingest_stage_seconds_bucket{stage="compress"`,
		`spate_ingest_stage_seconds_bucket{stage="dfs_write"`,
		"spate_ingest_snapshots_total",
		// Exploration latency and cache accounting.
		"# TYPE spate_explore_seconds histogram",
		"spate_explore_seconds_count",
		"spate_explore_cache_hits_total",
		"spate_explore_cache_misses_total",
		`spate_explore_stage_seconds_bucket{stage="plan"`,
		// Per-codec compression (default engine codec is gzip).
		`spate_compress_in_bytes_total{codec="gzip"}`,
		`spate_compress_out_bytes_total{codec="gzip"}`,
		`spate_compress_ratio{codec="gzip"}`,
		// DFS op latencies and replication gauges.
		`spate_dfs_op_seconds_bucket{op="write"`,
		"spate_dfs_under_replicated_blocks",
		"spate_dfs_live_nodes",
		"spate_dfs_written_bytes_total",
		// Middleware per-endpoint accounting.
		`spate_http_requests_total{endpoint="/api/explore",code="200"}`,
		`spate_http_request_seconds_count{endpoint="/api/explore"}`,
		"spate_http_in_flight_requests",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Basic exposition shape: every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var snap []obs.Metric
	if code := getJSON(t, ts.URL+"/api/stats", &snap); code != 200 {
		t.Fatalf("status %d", code)
	}
	byName := map[string]obs.Metric{}
	for _, m := range snap {
		byName[m.Name] = m
	}
	ing, ok := byName["spate_ingest_snapshots_total"]
	if !ok || len(ing.Series) == 0 || ing.Series[0].Value < 4 {
		t.Errorf("ingest snapshots = %+v", ing)
	}
	if h, ok := byName["spate_ingest_seconds"]; !ok || h.Series[0].Count < 4 || h.Series[0].Quantiles["p50"] <= 0 {
		t.Errorf("ingest latency = %+v", h)
	}
	// The columnar ingest feed rides along as synthetic families: every
	// series carries table+column labels, codec-chunk counts are labelled
	// with the winning codec, and CDR's ts column must have been seen.
	cc, ok := byName["spate_column_codec_chunks"]
	if !ok || len(cc.Series) == 0 {
		t.Fatalf("column codec chunks = %+v", cc)
	}
	sawTS := false
	for _, s := range cc.Series {
		if s.Labels["table"] == "" || s.Labels["column"] == "" || s.Labels["codec"] == "" {
			t.Errorf("codec series missing labels: %+v", s)
		}
		if s.Value <= 0 {
			t.Errorf("codec series with zero chunks: %+v", s)
		}
		if s.Labels["table"] == "CDR" && s.Labels["column"] == "ts" {
			sawTS = true
		}
	}
	if !sawTS {
		t.Errorf("no CDR ts codec series in %+v", cc.Series)
	}
	ent, ok := byName["spate_column_entropy_bits"]
	if !ok || len(ent.Series) == 0 {
		t.Errorf("column entropy = %+v", ent)
	}
}

func TestTraceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// An uncached explore roots an "http /api/explore" span with the
	// engine's "explore" span nested under it.
	resp, err := http.Get(ts.URL + "/api/explore?minx=1&miny=1&maxx=70&maxy=70")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var traces []obs.SpanJSON
	if code := getJSON(t, ts.URL+"/api/trace", &traces); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(traces) == 0 {
		t.Fatal("no traces retained")
	}
	found := false
	for _, tr := range traces {
		if tr.Name != "http /api/explore" {
			continue
		}
		for _, c := range tr.Children {
			if c.Name == "explore" {
				found = true
				if len(c.Children) == 0 {
					t.Error("explore span has no stage children")
				}
			}
		}
	}
	if !found {
		t.Errorf("no http span with a nested explore span in %d traces", len(traces))
	}
}

// TestMethodNotAllowed verifies API endpoints reject non-GET methods (the
// mux patterns are method-qualified).
func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/api/explore", "/api/sql", "/metrics", "/api/stats"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestErrorContentType verifies error responses carry a JSON Content-Type
// (the header must precede WriteHeader to survive).
func TestErrorContentType(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/explore?from=bogus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error content type %q, want application/json", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "error") {
		t.Errorf("error body %q has no error field", body)
	}
}

// TestMiddlewareRecordsRequests checks the per-endpoint counter advances
// for exactly the endpoints hit, with junk paths folded into "other".
func TestMiddlewareRecordsRequests(t *testing.T) {
	ts, _ := newTestServer(t)
	before := obs.Default.Counter("spate_http_requests_total", "",
		"endpoint", "/api/cells", "code", "200").Value()
	beforeOther := obs.Default.Counter("spate_http_requests_total", "",
		"endpoint", "other", "code", "404").Value()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL + "/api/cells")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/definitely/not/a/route")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	after := obs.Default.Counter("spate_http_requests_total", "",
		"endpoint", "/api/cells", "code", "200").Value()
	if after-before != 3 {
		t.Errorf("cells requests counted = %d, want 3", after-before)
	}
	afterOther := obs.Default.Counter("spate_http_requests_total", "",
		"endpoint", "other", "code", "404").Value()
	if afterOther-beforeOther != 1 {
		t.Errorf("junk-path requests counted = %d, want 1", afterOther-beforeOther)
	}
}
