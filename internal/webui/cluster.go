// Cluster mode of the SPATE-UI: the same exploration API served by a
// coordinator scattering Q(a, b, w) over shard nodes instead of one local
// engine. The JSON surface adds the partial-result contract — a degraded
// answer carries partial:true plus the missing time-ranges — so clients
// can render what arrived and show what didn't.

package webui

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"time"

	"spate/internal/cluster"
	"spate/internal/core"
	"spate/internal/gen"
	"spate/internal/obs"
	"spate/internal/serving"
	"spate/internal/sqlengine"
	"spate/internal/tasks"
	"spate/internal/telco"
)

// ClusterServer exposes a cluster coordinator over the SPATE-UI HTTP API.
type ClusterServer struct {
	coord  *cluster.Coordinator
	sql    *sqlengine.Engine
	cells  []gen.Cell
	window telco.TimeRange
	mux    *http.ServeMux

	obs      *obs.Registry
	tracer   *obs.Tracer
	inflight *obs.Gauge
	handler  http.Handler
}

// NewClusterServer wraps a coordinator whose nodes are already serving.
// cells may be nil; window is the trace's span, used as the default
// exploration window.
func NewClusterServer(coord *cluster.Coordinator, cells []gen.Cell, window telco.TimeRange) *ClusterServer {
	s := &ClusterServer{
		coord:  coord,
		sql:    sqlengine.NewEngine(tasks.Catalog(tasks.Cluster{C: coord})),
		cells:  cells,
		window: window,
		mux:    http.NewServeMux(),
		obs:    obs.Default,
		tracer: obs.DefaultTracer,
	}
	s.inflight = s.obs.Gauge("spate_http_in_flight_requests", "HTTP requests currently being served.")
	s.mux.HandleFunc("GET /", s.handleIndex)
	s.mux.HandleFunc("GET /api/cells", s.handleCells)
	s.mux.HandleFunc("GET /api/explore", s.handleExplore)
	s.mux.HandleFunc("POST /api/append", s.handleAppend)
	s.mux.HandleFunc("GET /api/sql", s.handleSQL)
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/lifecycle", s.handleLifecycleGet)
	s.mux.HandleFunc("POST /api/lifecycle", s.handleLifecyclePost)
	s.mux.Handle("GET /metrics", obs.MetricsHandler(s.obs))
	s.mux.Handle("GET /api/stats", obs.StatsHandler(s.obs))
	s.mux.Handle("GET /api/trace", obs.TracesHandler(s.tracer))
	s.mux.Handle("GET /api/slowlog", obs.SlowLogHandler(obs.DefaultSlowLog))
	s.handler = metricsMiddleware(s.obs, s.tracer, s.inflight, s.mux)
	return s
}

// handleSQL serves SPATE-SQL over the cluster: scans fan out through the
// coordinator and must be complete (a degraded scatter-gather fails the
// query rather than returning a silent subset).
func (s *ClusterServer) handleSQL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpErr(w, http.StatusBadRequest, fmt.Errorf("missing q parameter"))
		return
	}
	rs, err := s.sql.QueryContext(r.Context(), q)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	rows := make([][]string, len(rs.Rows))
	for i, row := range rs.Rows {
		rows[i] = make([]string, len(row))
		for j, v := range row {
			rows[i][j] = v.Format()
		}
	}
	writeJSON(w, map[string]any{"cols": rs.Cols, "rows": rows})
}

// Handler returns the HTTP handler with the metrics middleware applied.
func (s *ClusterServer) Handler() http.Handler { return s.handler }

// SetAdmission fronts the cluster API with a serving-tier admission
// controller (see Server.SetAdmission). The tenant stamped into the
// request context propagates into shard RPCs through the cluster
// client. Call before Handler is used; not safe to swap while serving.
func (s *ClusterServer) SetAdmission(ctl *serving.Controller) {
	s.handler = metricsMiddleware(s.obs, s.tracer, s.inflight, ctl.Middleware(s.mux))
}

// WindowJSON is one half-open time range on the wire.
type WindowJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// ClusterExploreJSON is the wire form of a scatter-gathered exploration
// answer. Partial answers are HTTP 200: the aggregates are correct for the
// window minus the missing ranges, and the client decides how to degrade.
type ClusterExploreJSON struct {
	Rows       int64             `json:"rows"`
	Decayed    int               `json:"decayed_leaves"`
	Cells      []ExploreCellJSON `json:"cells"`
	Highlights []HighlightJSON   `json:"highlights"`

	Partial       bool         `json:"partial"`
	Missing       []WindowJSON `json:"missing,omitempty"`
	ShardsQueried int          `json:"shards_queried"`
	ShardsFailed  int          `json:"shards_failed,omitempty"`
	HedgeWins     int          `json:"hedge_wins,omitempty"`
	Retries       int          `json:"retries,omitempty"`

	// TraceID links the answer to the coordinator-rooted span tree at
	// /api/trace?id= (shard subtrees stitched in).
	TraceID string `json:"trace_id,omitempty"`
	// Profile is the merged per-query profile with per-shard breakdown,
	// included when the request carries profile=1.
	Profile *core.Profile `json:"profile,omitempty"`
}

func (s *ClusterServer) handleExplore(w http.ResponseWriter, r *http.Request) {
	win, err := parseWindowQuery(r, s.window)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	q := core.Query{Window: win, Box: parseBoxQuery(r)}
	res, err := s.coord.Explore(r.Context(), q)
	if err != nil {
		httpErr(w, http.StatusInternalServerError, err)
		return
	}
	out := ClusterExploreJSON{
		Rows:          res.Summary.Rows,
		Decayed:       res.DecayedLeaves,
		Cells:         cellsJSON(res.Cells, r.URL.Query().Get("attr")),
		Highlights:    highlightsJSON(res.Highlights),
		Partial:       res.Partial,
		ShardsQueried: res.ShardsQueried,
		ShardsFailed:  res.ShardsFailed,
		HedgeWins:     res.HedgeWins,
		Retries:       res.Retries,
		TraceID:       res.TraceID,
	}
	if r.URL.Query().Get("profile") == "1" {
		p := res.Profile
		out.Profile = &p
	}
	for _, m := range res.Missing {
		out.Missing = append(out.Missing, WindowJSON{
			From: m.From.Format(telco.TimeLayout),
			To:   m.To.Format(telco.TimeLayout),
		})
	}
	writeJSON(w, out)
}

// NodeHealthJSON is one node's probe result in /api/health.
type NodeHealthJSON struct {
	URL   string `json:"url"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

func (s *ClusterServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	probes := s.coord.Health(ctx)
	out := make([]NodeHealthJSON, 0, len(probes))
	for url, err := range probes {
		h := NodeHealthJSON{URL: url, OK: err == nil}
		if err != nil {
			h.Error = err.Error()
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	writeJSON(w, out)
}

func (s *ClusterServer) handleCells(w http.ResponseWriter, _ *http.Request) {
	out := make([]CellJSON, 0, len(s.cells))
	for _, c := range s.cells {
		out = append(out, CellJSON{ID: c.ID, X: c.Pt.X, Y: c.Pt.Y, Tech: c.Tech})
	}
	writeJSON(w, out)
}

func (s *ClusterServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, indexHTML,
		s.window.From.Format(telco.TimeLayout), s.window.To.Format(telco.TimeLayout))
}
