package webui

import (
	"fmt"
	"net/http"
	"time"

	"spate/internal/core"
	"spate/internal/highlights"
	"spate/internal/telco"
)

// Template queries (paper §VI-B): the SPATE-UI "query bar that enables the
// execution of template queries for drop calls and downflux/upflux,
// heatmap statistics (e.g., showing the RSSi signal intensity around
// antennas)". Each template is a canned Q(a, b, w) whose per-cell series
// selects the relevant counter.

// templateSpec maps a template name to its attribute and reduction.
type templateSpec struct {
	attr highlights.AttrRef
	// stat selects which statistic of the attribute renders per cell:
	// "sum" (counters) or "mean" (signal levels).
	stat string
	desc string
}

var templates = map[string]templateSpec{
	"dropcalls": {highlights.AttrRef{Table: "NMS", Attr: "drop_calls"}, "sum",
		"dropped calls per cell"},
	"downflux": {highlights.AttrRef{Table: "CDR", Attr: telco.AttrDownflux}, "sum",
		"download bytes per cell"},
	"upflux": {highlights.AttrRef{Table: "CDR", Attr: telco.AttrUpflux}, "sum",
		"upload bytes per cell"},
	"rssi": {highlights.AttrRef{Table: "NMS", Attr: "rssi_dbm"}, "mean",
		"mean RSSI signal intensity per cell"},
}

// TemplateNames lists the available template queries.
func TemplateNames() []string {
	return []string{"dropcalls", "downflux", "upflux", "rssi"}
}

func (s *Server) handleTemplate(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	spec, ok := templates[name]
	if !ok {
		httpErr(w, http.StatusBadRequest,
			fmt.Errorf("unknown template %q (have %v)", name, TemplateNames()))
		return
	}
	win, err := s.parseWindow(r)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.Explore(core.Query{Window: win, Attrs: []highlights.AttrRef{spec.attr}})
	if err != nil {
		httpErr(w, http.StatusInternalServerError, err)
		return
	}
	out := struct {
		Template string            `json:"template"`
		Desc     string            `json:"desc"`
		Stat     string            `json:"stat"`
		Cells    []ExploreCellJSON `json:"cells"`
	}{Template: name, Desc: spec.desc, Stat: spec.stat}
	for _, cs := range res.Cells {
		st, ok := cs.Attr[spec.attr]
		if !ok {
			continue
		}
		v := st.Sum
		if spec.stat == "mean" {
			v = st.Mean()
		}
		out.Cells = append(out.Cells, ExploreCellJSON{
			ID: cs.CellID, X: cs.Loc.X, Y: cs.Loc.Y, Rows: cs.Rows, Value: v,
		})
	}
	writeJSON(w, out)
}

// Playback (paper §VI-A): "observe the query results as snapshots or as a
// video (i.e., playback highlights in fast-forward)". The endpoint slices
// the window into fixed steps and returns one frame of per-cell activity
// per step; repeated playback of a narrowed window is served from the
// engine's result cache.

// playbackFrame is one step of a playback sequence.
type playbackFrame struct {
	From  string            `json:"from"`
	To    string            `json:"to"`
	Rows  int64             `json:"rows"`
	Cells []ExploreCellJSON `json:"cells"`
}

// maxPlaybackFrames bounds a playback response.
const maxPlaybackFrames = 96

func (s *Server) handlePlayback(w http.ResponseWriter, r *http.Request) {
	win, err := s.parseWindow(r)
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	step := telco.EpochDuration
	if v := r.URL.Query().Get("step"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("bad step %q", v))
			return
		}
		step = d
	}
	if int(win.Duration()/step) > maxPlaybackFrames {
		httpErr(w, http.StatusBadRequest,
			fmt.Errorf("window/step yields more than %d frames; widen the step", maxPlaybackFrames))
		return
	}
	var frames []playbackFrame
	for from := win.From; from.Before(win.To); from = from.Add(step) {
		to := from.Add(step)
		if to.After(win.To) {
			to = win.To
		}
		res, err := s.eng.Explore(core.Query{Window: telco.NewTimeRange(from, to)})
		if err != nil {
			httpErr(w, http.StatusInternalServerError, err)
			return
		}
		fr := playbackFrame{
			From: from.Format(telco.TimeLayout),
			To:   to.Format(telco.TimeLayout),
			Rows: res.Summary.Rows,
		}
		for _, cs := range res.Cells {
			fr.Cells = append(fr.Cells, ExploreCellJSON{
				ID: cs.CellID, X: cs.Loc.X, Y: cs.Loc.Y, Rows: cs.Rows,
			})
		}
		frames = append(frames, fr)
	}
	writeJSON(w, map[string]any{"step": step.String(), "frames": frames})
}
