package webui

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	_ "spate/internal/compress/all"
	"spate/internal/core"
	"spate/internal/dfs"
	"spate/internal/gen"
	"spate/internal/snapshot"
	"spate/internal/telco"
)

func newTestServer(t *testing.T) (*httptest.Server, gen.Config) {
	t.Helper()
	cfg := gen.DefaultConfig(0.002)
	cfg.Antennas = 12
	cfg.Users = 80
	cfg.CDRPerEpoch = 40
	cfg.NMSReportsPerCell = 0.5
	g := gen.New(cfg)
	fs, err := dfs.NewCluster(t.TempDir(), dfs.Config{BlockSize: 1 << 20, DataNodes: 2, Replication: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.Open(fs, g.CellTable(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0 := telco.EpochOf(cfg.Start)
	for i := 0; i < 4; i++ {
		sn := snapshot.New(e0 + telco.Epoch(i))
		sn.Add(g.CDRTable(sn.Epoch))
		sn.Add(g.NMSTable(sn.Epoch))
		if _, err := eng.Ingest(sn); err != nil {
			t.Fatal(err)
		}
	}
	window := telco.NewTimeRange(cfg.Start, cfg.Start.Add(2*time.Hour))
	srv := NewServer(eng, g.Cells(), window)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, cfg
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestCellsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var cells []CellJSON
	if code := getJSON(t, ts.URL+"/api/cells", &cells); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(cells) != 36 {
		t.Errorf("cells = %d, want 36", len(cells))
	}
	for _, c := range cells {
		if c.ID == 0 || (c.Tech != "GSM" && c.Tech != "UMTS" && c.Tech != "LTE") {
			t.Errorf("bad cell %+v", c)
		}
	}
}

func TestExploreEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out ExploreJSON
	if code := getJSON(t, ts.URL+"/api/explore", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out.Rows == 0 || len(out.Cells) == 0 {
		t.Fatalf("explore = %+v", out)
	}
	// A second identical query is a cache hit.
	var again ExploreJSON
	getJSON(t, ts.URL+"/api/explore", &again)
	if !again.CacheHit {
		t.Error("no cache hit on repeated explore")
	}
	// Box restriction.
	var boxed ExploreJSON
	getJSON(t, ts.URL+"/api/explore?minx=0&miny=0&maxx=40&maxy=38", &boxed)
	if boxed.Rows >= out.Rows {
		t.Errorf("boxed rows %d >= all %d", boxed.Rows, out.Rows)
	}
	// Window restriction with a truncated timestamp.
	var windowed ExploreJSON
	code := getJSON(t, ts.URL+"/api/explore?from=2016011800&to=2016011801", &windowed)
	if code != 200 || windowed.Rows == 0 || windowed.Rows >= out.Rows {
		t.Errorf("windowed = %+v (status %d)", windowed, code)
	}
}

func TestExploreBadParams(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]string
	if code := getJSON(t, ts.URL+"/api/explore?from=xx", &out); code != http.StatusBadRequest {
		t.Errorf("bad from: status %d", code)
	}
	if out["error"] == "" {
		t.Error("no error message")
	}
}

func TestSQLEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out struct {
		Cols []string   `json:"cols"`
		Rows [][]string `json:"rows"`
	}
	url := ts.URL + "/api/sql?q=" + strings.ReplaceAll("SELECT call_type, COUNT(*) FROM CDR GROUP BY call_type", " ", "%20")
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Cols) != 2 || len(out.Rows) == 0 {
		t.Errorf("sql = %+v", out)
	}
	var errOut map[string]string
	if code := getJSON(t, ts.URL+"/api/sql?q=NOT%20SQL", &errOut); code != http.StatusBadRequest {
		t.Errorf("bad sql: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/sql", &errOut); code != http.StatusBadRequest {
		t.Errorf("missing q: status %d", code)
	}
}

func TestSpaceEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]float64
	if code := getJSON(t, ts.URL+"/api/space", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if out["raw_bytes"] <= out["comp_bytes"] || out["comp_bytes"] <= 0 {
		t.Errorf("space = %v", out)
	}
}

func TestIndexPage(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "SPATE") || !strings.Contains(body, "canvas") {
		t.Errorf("index page wrong: %.120s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}
	// Unknown paths 404.
	r2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path: status %d", r2.StatusCode)
	}
}

func TestTemplateQueries(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, name := range TemplateNames() {
		var out struct {
			Template string            `json:"template"`
			Stat     string            `json:"stat"`
			Cells    []ExploreCellJSON `json:"cells"`
		}
		if code := getJSON(t, ts.URL+"/api/template?name="+name, &out); code != 200 {
			t.Fatalf("%s: status %d", name, code)
		}
		if out.Template != name || len(out.Cells) == 0 {
			t.Errorf("%s: %+v", name, out)
		}
		if name == "rssi" {
			if out.Stat != "mean" {
				t.Errorf("rssi stat = %s", out.Stat)
			}
			for _, c := range out.Cells {
				if c.Value > -60 || c.Value < -110 {
					t.Errorf("rssi mean %v out of physical range", c.Value)
				}
			}
		}
	}
	var errOut map[string]string
	if code := getJSON(t, ts.URL+"/api/template?name=nope", &errOut); code != http.StatusBadRequest {
		t.Errorf("unknown template: status %d", code)
	}
}

func TestPlayback(t *testing.T) {
	ts, cfg := newTestServer(t)
	_ = cfg
	var out struct {
		Step   string `json:"step"`
		Frames []struct {
			From  string            `json:"from"`
			To    string            `json:"to"`
			Rows  int64             `json:"rows"`
			Cells []ExploreCellJSON `json:"cells"`
		} `json:"frames"`
	}
	if code := getJSON(t, ts.URL+"/api/playback", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Frames) != 4 { // 2h window / 30min epochs
		t.Fatalf("frames = %d, want 4", len(out.Frames))
	}
	var total int64
	for _, fr := range out.Frames {
		total += fr.Rows
		if fr.From >= fr.To {
			t.Errorf("bad frame bounds %s..%s", fr.From, fr.To)
		}
	}
	if total == 0 {
		t.Error("empty playback")
	}
	// Custom step.
	if code := getJSON(t, ts.URL+"/api/playback?step=1h", &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Frames) != 2 {
		t.Errorf("1h frames = %d, want 2", len(out.Frames))
	}
	// Frame-count bound and bad steps are rejected.
	var errOut map[string]string
	if code := getJSON(t, ts.URL+"/api/playback?step=1s", &errOut); code != http.StatusBadRequest {
		t.Errorf("tiny step: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/api/playback?step=banana", &errOut); code != http.StatusBadRequest {
		t.Errorf("bad step: status %d", code)
	}
}

func TestTreeEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var root TreeNodeJSON
	if code := getJSON(t, ts.URL+"/api/tree", &root); code != 200 {
		t.Fatalf("status %d", code)
	}
	if root.Level != "root" || len(root.Children) != 1 {
		t.Fatalf("root = %+v", root)
	}
	year := root.Children[0]
	if year.Level != "year" || len(year.Children) != 1 {
		t.Fatalf("year = %+v", year)
	}
	day := year.Children[0].Children[0]
	if day.Level != "day" || len(day.Children) != 4 {
		t.Fatalf("day = level %s with %d children", day.Level, len(day.Children))
	}
	for _, leaf := range day.Children {
		if leaf.Level != "epoch" || leaf.From == "" {
			t.Errorf("leaf = %+v", leaf)
		}
	}
}

func TestExploreAttrFilter(t *testing.T) {
	ts, _ := newTestServer(t)
	var out ExploreJSON
	url := fmt.Sprintf("%s/api/explore?attr=%s", ts.URL, "NMS.drop_calls")
	if code := getJSON(t, url, &out); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(out.Cells) == 0 {
		t.Fatal("no cells")
	}
}
